file(REMOVE_RECURSE
  "CMakeFiles/test_stab.dir/test_stab.cpp.o"
  "CMakeFiles/test_stab.dir/test_stab.cpp.o.d"
  "test_stab"
  "test_stab.pdb"
  "test_stab[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
