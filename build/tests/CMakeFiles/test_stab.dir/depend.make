# Empty dependencies file for test_stab.
# This may be replaced when dependencies are built.
