# Empty compiler generated dependencies file for test_oracles.
# This may be replaced when dependencies are built.
