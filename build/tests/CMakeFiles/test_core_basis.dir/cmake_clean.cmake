file(REMOVE_RECURSE
  "CMakeFiles/test_core_basis.dir/test_core_basis.cpp.o"
  "CMakeFiles/test_core_basis.dir/test_core_basis.cpp.o.d"
  "test_core_basis"
  "test_core_basis.pdb"
  "test_core_basis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_basis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
