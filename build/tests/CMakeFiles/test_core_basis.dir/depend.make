# Empty dependencies file for test_core_basis.
# This may be replaced when dependencies are built.
