# Empty compiler generated dependencies file for test_core_assertions.
# This may be replaced when dependencies are built.
