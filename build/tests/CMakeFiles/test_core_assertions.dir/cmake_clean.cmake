file(REMOVE_RECURSE
  "CMakeFiles/test_core_assertions.dir/test_core_assertions.cpp.o"
  "CMakeFiles/test_core_assertions.dir/test_core_assertions.cpp.o.d"
  "test_core_assertions"
  "test_core_assertions.pdb"
  "test_core_assertions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_assertions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
