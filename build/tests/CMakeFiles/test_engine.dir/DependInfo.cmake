
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/test_engine.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/test_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/qa_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/qa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transpile/CMakeFiles/qa_transpile.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/qa_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/qa_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stab/CMakeFiles/qa_stab.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/qa_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
