# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_qasm[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_transpile[1]_include.cmake")
include("/root/repo/build/tests/test_core_basis[1]_include.cmake")
include("/root/repo/build/tests/test_core_assertions[1]_include.cmake")
include("/root/repo/build/tests/test_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_algos[1]_include.cmake")
include("/root/repo/build/tests/test_oracles[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_debugger[1]_include.cmake")
include("/root/repo/build/tests/test_runner[1]_include.cmake")
include("/root/repo/build/tests/test_noise[1]_include.cmake")
include("/root/repo/build/tests/test_stab[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
