file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_ghz.dir/bench_table1_ghz.cpp.o"
  "CMakeFiles/bench_table1_ghz.dir/bench_table1_ghz.cpp.o.d"
  "bench_table1_ghz"
  "bench_table1_ghz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ghz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
