file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_dj.dir/bench_fig17_dj.cpp.o"
  "CMakeFiles/bench_fig17_dj.dir/bench_fig17_dj.cpp.o.d"
  "bench_fig17_dj"
  "bench_fig17_dj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_dj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
