# Empty dependencies file for bench_fig17_dj.
# This may be replaced when dependencies are built.
