# Empty dependencies file for bench_noisy_device.
# This may be replaced when dependencies are built.
