file(REMOVE_RECURSE
  "CMakeFiles/bench_noisy_device.dir/bench_noisy_device.cpp.o"
  "CMakeFiles/bench_noisy_device.dir/bench_noisy_device.cpp.o.d"
  "bench_noisy_device"
  "bench_noisy_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noisy_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
