# Empty compiler generated dependencies file for bench_adder_debug.
# This may be replaced when dependencies are built.
