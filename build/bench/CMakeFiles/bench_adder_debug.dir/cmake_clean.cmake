file(REMOVE_RECURSE
  "CMakeFiles/bench_adder_debug.dir/bench_adder_debug.cpp.o"
  "CMakeFiles/bench_adder_debug.dir/bench_adder_debug.cpp.o.d"
  "bench_adder_debug"
  "bench_adder_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adder_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
