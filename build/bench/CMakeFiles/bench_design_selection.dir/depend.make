# Empty dependencies file for bench_design_selection.
# This may be replaced when dependencies are built.
