file(REMOVE_RECURSE
  "CMakeFiles/bench_design_selection.dir/bench_design_selection.cpp.o"
  "CMakeFiles/bench_design_selection.dir/bench_design_selection.cpp.o.d"
  "bench_design_selection"
  "bench_design_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_design_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
