# Empty dependencies file for bench_placement_ablation.
# This may be replaced when dependencies are built.
