file(REMOVE_RECURSE
  "CMakeFiles/bench_qpe_slots.dir/bench_qpe_slots.cpp.o"
  "CMakeFiles/bench_qpe_slots.dir/bench_qpe_slots.cpp.o.d"
  "bench_qpe_slots"
  "bench_qpe_slots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qpe_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
