# Empty dependencies file for bench_qpe_slots.
# This may be replaced when dependencies are built.
