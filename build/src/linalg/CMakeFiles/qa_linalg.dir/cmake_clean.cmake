file(REMOVE_RECURSE
  "CMakeFiles/qa_linalg.dir/eigen.cpp.o"
  "CMakeFiles/qa_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/qa_linalg.dir/gram_schmidt.cpp.o"
  "CMakeFiles/qa_linalg.dir/gram_schmidt.cpp.o.d"
  "CMakeFiles/qa_linalg.dir/matrix.cpp.o"
  "CMakeFiles/qa_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/qa_linalg.dir/states.cpp.o"
  "CMakeFiles/qa_linalg.dir/states.cpp.o.d"
  "CMakeFiles/qa_linalg.dir/vector.cpp.o"
  "CMakeFiles/qa_linalg.dir/vector.cpp.o.d"
  "libqa_linalg.a"
  "libqa_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
