file(REMOVE_RECURSE
  "libqa_linalg.a"
)
