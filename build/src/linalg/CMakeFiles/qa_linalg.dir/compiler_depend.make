# Empty compiler generated dependencies file for qa_linalg.
# This may be replaced when dependencies are built.
