# Empty dependencies file for qa_algos.
# This may be replaced when dependencies are built.
