file(REMOVE_RECURSE
  "libqa_algos.a"
)
