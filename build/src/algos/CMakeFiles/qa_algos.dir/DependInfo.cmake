
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/adder.cpp" "src/algos/CMakeFiles/qa_algos.dir/adder.cpp.o" "gcc" "src/algos/CMakeFiles/qa_algos.dir/adder.cpp.o.d"
  "/root/repo/src/algos/deutsch_jozsa.cpp" "src/algos/CMakeFiles/qa_algos.dir/deutsch_jozsa.cpp.o" "gcc" "src/algos/CMakeFiles/qa_algos.dir/deutsch_jozsa.cpp.o.d"
  "/root/repo/src/algos/grover.cpp" "src/algos/CMakeFiles/qa_algos.dir/grover.cpp.o" "gcc" "src/algos/CMakeFiles/qa_algos.dir/grover.cpp.o.d"
  "/root/repo/src/algos/oracles.cpp" "src/algos/CMakeFiles/qa_algos.dir/oracles.cpp.o" "gcc" "src/algos/CMakeFiles/qa_algos.dir/oracles.cpp.o.d"
  "/root/repo/src/algos/qft.cpp" "src/algos/CMakeFiles/qa_algos.dir/qft.cpp.o" "gcc" "src/algos/CMakeFiles/qa_algos.dir/qft.cpp.o.d"
  "/root/repo/src/algos/qpe.cpp" "src/algos/CMakeFiles/qa_algos.dir/qpe.cpp.o" "gcc" "src/algos/CMakeFiles/qa_algos.dir/qpe.cpp.o.d"
  "/root/repo/src/algos/states.cpp" "src/algos/CMakeFiles/qa_algos.dir/states.cpp.o" "gcc" "src/algos/CMakeFiles/qa_algos.dir/states.cpp.o.d"
  "/root/repo/src/algos/teleport.cpp" "src/algos/CMakeFiles/qa_algos.dir/teleport.cpp.o" "gcc" "src/algos/CMakeFiles/qa_algos.dir/teleport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/qa_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/qa_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
