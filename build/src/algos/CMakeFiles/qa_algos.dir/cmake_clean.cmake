file(REMOVE_RECURSE
  "CMakeFiles/qa_algos.dir/adder.cpp.o"
  "CMakeFiles/qa_algos.dir/adder.cpp.o.d"
  "CMakeFiles/qa_algos.dir/deutsch_jozsa.cpp.o"
  "CMakeFiles/qa_algos.dir/deutsch_jozsa.cpp.o.d"
  "CMakeFiles/qa_algos.dir/grover.cpp.o"
  "CMakeFiles/qa_algos.dir/grover.cpp.o.d"
  "CMakeFiles/qa_algos.dir/oracles.cpp.o"
  "CMakeFiles/qa_algos.dir/oracles.cpp.o.d"
  "CMakeFiles/qa_algos.dir/qft.cpp.o"
  "CMakeFiles/qa_algos.dir/qft.cpp.o.d"
  "CMakeFiles/qa_algos.dir/qpe.cpp.o"
  "CMakeFiles/qa_algos.dir/qpe.cpp.o.d"
  "CMakeFiles/qa_algos.dir/states.cpp.o"
  "CMakeFiles/qa_algos.dir/states.cpp.o.d"
  "CMakeFiles/qa_algos.dir/teleport.cpp.o"
  "CMakeFiles/qa_algos.dir/teleport.cpp.o.d"
  "libqa_algos.a"
  "libqa_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
