file(REMOVE_RECURSE
  "CMakeFiles/qa_synth.dir/cnot_synth.cpp.o"
  "CMakeFiles/qa_synth.dir/cnot_synth.cpp.o.d"
  "CMakeFiles/qa_synth.dir/factorize.cpp.o"
  "CMakeFiles/qa_synth.dir/factorize.cpp.o.d"
  "CMakeFiles/qa_synth.dir/mcgates.cpp.o"
  "CMakeFiles/qa_synth.dir/mcgates.cpp.o.d"
  "CMakeFiles/qa_synth.dir/multiplex.cpp.o"
  "CMakeFiles/qa_synth.dir/multiplex.cpp.o.d"
  "CMakeFiles/qa_synth.dir/stabilizer_prep.cpp.o"
  "CMakeFiles/qa_synth.dir/stabilizer_prep.cpp.o.d"
  "CMakeFiles/qa_synth.dir/state_prep.cpp.o"
  "CMakeFiles/qa_synth.dir/state_prep.cpp.o.d"
  "CMakeFiles/qa_synth.dir/unitary_synth.cpp.o"
  "CMakeFiles/qa_synth.dir/unitary_synth.cpp.o.d"
  "CMakeFiles/qa_synth.dir/zyz.cpp.o"
  "CMakeFiles/qa_synth.dir/zyz.cpp.o.d"
  "libqa_synth.a"
  "libqa_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
