# Empty compiler generated dependencies file for qa_synth.
# This may be replaced when dependencies are built.
