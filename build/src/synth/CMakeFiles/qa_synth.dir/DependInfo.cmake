
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/cnot_synth.cpp" "src/synth/CMakeFiles/qa_synth.dir/cnot_synth.cpp.o" "gcc" "src/synth/CMakeFiles/qa_synth.dir/cnot_synth.cpp.o.d"
  "/root/repo/src/synth/factorize.cpp" "src/synth/CMakeFiles/qa_synth.dir/factorize.cpp.o" "gcc" "src/synth/CMakeFiles/qa_synth.dir/factorize.cpp.o.d"
  "/root/repo/src/synth/mcgates.cpp" "src/synth/CMakeFiles/qa_synth.dir/mcgates.cpp.o" "gcc" "src/synth/CMakeFiles/qa_synth.dir/mcgates.cpp.o.d"
  "/root/repo/src/synth/multiplex.cpp" "src/synth/CMakeFiles/qa_synth.dir/multiplex.cpp.o" "gcc" "src/synth/CMakeFiles/qa_synth.dir/multiplex.cpp.o.d"
  "/root/repo/src/synth/stabilizer_prep.cpp" "src/synth/CMakeFiles/qa_synth.dir/stabilizer_prep.cpp.o" "gcc" "src/synth/CMakeFiles/qa_synth.dir/stabilizer_prep.cpp.o.d"
  "/root/repo/src/synth/state_prep.cpp" "src/synth/CMakeFiles/qa_synth.dir/state_prep.cpp.o" "gcc" "src/synth/CMakeFiles/qa_synth.dir/state_prep.cpp.o.d"
  "/root/repo/src/synth/unitary_synth.cpp" "src/synth/CMakeFiles/qa_synth.dir/unitary_synth.cpp.o" "gcc" "src/synth/CMakeFiles/qa_synth.dir/unitary_synth.cpp.o.d"
  "/root/repo/src/synth/zyz.cpp" "src/synth/CMakeFiles/qa_synth.dir/zyz.cpp.o" "gcc" "src/synth/CMakeFiles/qa_synth.dir/zyz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/qa_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
