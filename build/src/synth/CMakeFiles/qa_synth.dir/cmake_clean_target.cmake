file(REMOVE_RECURSE
  "libqa_synth.a"
)
