file(REMOVE_RECURSE
  "CMakeFiles/qa_sim.dir/density.cpp.o"
  "CMakeFiles/qa_sim.dir/density.cpp.o.d"
  "CMakeFiles/qa_sim.dir/engine.cpp.o"
  "CMakeFiles/qa_sim.dir/engine.cpp.o.d"
  "CMakeFiles/qa_sim.dir/kraus.cpp.o"
  "CMakeFiles/qa_sim.dir/kraus.cpp.o.d"
  "CMakeFiles/qa_sim.dir/noise.cpp.o"
  "CMakeFiles/qa_sim.dir/noise.cpp.o.d"
  "CMakeFiles/qa_sim.dir/statevector.cpp.o"
  "CMakeFiles/qa_sim.dir/statevector.cpp.o.d"
  "libqa_sim.a"
  "libqa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
