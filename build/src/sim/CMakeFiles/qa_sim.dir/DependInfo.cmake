
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/density.cpp" "src/sim/CMakeFiles/qa_sim.dir/density.cpp.o" "gcc" "src/sim/CMakeFiles/qa_sim.dir/density.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/qa_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/qa_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/kraus.cpp" "src/sim/CMakeFiles/qa_sim.dir/kraus.cpp.o" "gcc" "src/sim/CMakeFiles/qa_sim.dir/kraus.cpp.o.d"
  "/root/repo/src/sim/noise.cpp" "src/sim/CMakeFiles/qa_sim.dir/noise.cpp.o" "gcc" "src/sim/CMakeFiles/qa_sim.dir/noise.cpp.o.d"
  "/root/repo/src/sim/statevector.cpp" "src/sim/CMakeFiles/qa_sim.dir/statevector.cpp.o" "gcc" "src/sim/CMakeFiles/qa_sim.dir/statevector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/qa_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qa_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
