# Empty dependencies file for qa_sim.
# This may be replaced when dependencies are built.
