file(REMOVE_RECURSE
  "libqa_sim.a"
)
