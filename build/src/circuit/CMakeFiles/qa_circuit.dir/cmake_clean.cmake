file(REMOVE_RECURSE
  "CMakeFiles/qa_circuit.dir/circuit.cpp.o"
  "CMakeFiles/qa_circuit.dir/circuit.cpp.o.d"
  "CMakeFiles/qa_circuit.dir/qasm.cpp.o"
  "CMakeFiles/qa_circuit.dir/qasm.cpp.o.d"
  "CMakeFiles/qa_circuit.dir/stdgates.cpp.o"
  "CMakeFiles/qa_circuit.dir/stdgates.cpp.o.d"
  "libqa_circuit.a"
  "libqa_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
