file(REMOVE_RECURSE
  "libqa_circuit.a"
)
