# Empty compiler generated dependencies file for qa_circuit.
# This may be replaced when dependencies are built.
