file(REMOVE_RECURSE
  "CMakeFiles/qa_baselines.dir/chi_square.cpp.o"
  "CMakeFiles/qa_baselines.dir/chi_square.cpp.o.d"
  "CMakeFiles/qa_baselines.dir/primitives.cpp.o"
  "CMakeFiles/qa_baselines.dir/primitives.cpp.o.d"
  "CMakeFiles/qa_baselines.dir/stat_assertion.cpp.o"
  "CMakeFiles/qa_baselines.dir/stat_assertion.cpp.o.d"
  "libqa_baselines.a"
  "libqa_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
