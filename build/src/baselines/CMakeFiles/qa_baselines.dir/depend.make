# Empty dependencies file for qa_baselines.
# This may be replaced when dependencies are built.
