file(REMOVE_RECURSE
  "libqa_baselines.a"
)
