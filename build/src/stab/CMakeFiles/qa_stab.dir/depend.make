# Empty dependencies file for qa_stab.
# This may be replaced when dependencies are built.
