file(REMOVE_RECURSE
  "CMakeFiles/qa_stab.dir/observables.cpp.o"
  "CMakeFiles/qa_stab.dir/observables.cpp.o.d"
  "CMakeFiles/qa_stab.dir/pauli.cpp.o"
  "CMakeFiles/qa_stab.dir/pauli.cpp.o.d"
  "CMakeFiles/qa_stab.dir/tableau.cpp.o"
  "CMakeFiles/qa_stab.dir/tableau.cpp.o.d"
  "libqa_stab.a"
  "libqa_stab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_stab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
