
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stab/observables.cpp" "src/stab/CMakeFiles/qa_stab.dir/observables.cpp.o" "gcc" "src/stab/CMakeFiles/qa_stab.dir/observables.cpp.o.d"
  "/root/repo/src/stab/pauli.cpp" "src/stab/CMakeFiles/qa_stab.dir/pauli.cpp.o" "gcc" "src/stab/CMakeFiles/qa_stab.dir/pauli.cpp.o.d"
  "/root/repo/src/stab/tableau.cpp" "src/stab/CMakeFiles/qa_stab.dir/tableau.cpp.o" "gcc" "src/stab/CMakeFiles/qa_stab.dir/tableau.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/qa_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
