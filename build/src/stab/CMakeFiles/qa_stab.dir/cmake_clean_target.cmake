file(REMOVE_RECURSE
  "libqa_stab.a"
)
