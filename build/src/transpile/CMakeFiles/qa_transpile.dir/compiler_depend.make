# Empty compiler generated dependencies file for qa_transpile.
# This may be replaced when dependencies are built.
