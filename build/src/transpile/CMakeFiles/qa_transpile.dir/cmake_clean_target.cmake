file(REMOVE_RECURSE
  "libqa_transpile.a"
)
