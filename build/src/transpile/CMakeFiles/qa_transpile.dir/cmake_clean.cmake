file(REMOVE_RECURSE
  "CMakeFiles/qa_transpile.dir/lower.cpp.o"
  "CMakeFiles/qa_transpile.dir/lower.cpp.o.d"
  "CMakeFiles/qa_transpile.dir/peephole.cpp.o"
  "CMakeFiles/qa_transpile.dir/peephole.cpp.o.d"
  "libqa_transpile.a"
  "libqa_transpile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_transpile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
