file(REMOVE_RECURSE
  "CMakeFiles/qa_common.dir/format.cpp.o"
  "CMakeFiles/qa_common.dir/format.cpp.o.d"
  "CMakeFiles/qa_common.dir/parallel.cpp.o"
  "CMakeFiles/qa_common.dir/parallel.cpp.o.d"
  "libqa_common.a"
  "libqa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
