file(REMOVE_RECURSE
  "libqa_common.a"
)
