# Empty dependencies file for qa_common.
# This may be replaced when dependencies are built.
