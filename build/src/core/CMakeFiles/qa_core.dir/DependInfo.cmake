
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/asserted_program.cpp" "src/core/CMakeFiles/qa_core.dir/asserted_program.cpp.o" "gcc" "src/core/CMakeFiles/qa_core.dir/asserted_program.cpp.o.d"
  "/root/repo/src/core/builders.cpp" "src/core/CMakeFiles/qa_core.dir/builders.cpp.o" "gcc" "src/core/CMakeFiles/qa_core.dir/builders.cpp.o.d"
  "/root/repo/src/core/debugger.cpp" "src/core/CMakeFiles/qa_core.dir/debugger.cpp.o" "gcc" "src/core/CMakeFiles/qa_core.dir/debugger.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/core/CMakeFiles/qa_core.dir/runner.cpp.o" "gcc" "src/core/CMakeFiles/qa_core.dir/runner.cpp.o.d"
  "/root/repo/src/core/state_set.cpp" "src/core/CMakeFiles/qa_core.dir/state_set.cpp.o" "gcc" "src/core/CMakeFiles/qa_core.dir/state_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transpile/CMakeFiles/qa_transpile.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/qa_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/qa_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
