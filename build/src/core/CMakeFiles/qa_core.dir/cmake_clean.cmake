file(REMOVE_RECURSE
  "CMakeFiles/qa_core.dir/asserted_program.cpp.o"
  "CMakeFiles/qa_core.dir/asserted_program.cpp.o.d"
  "CMakeFiles/qa_core.dir/builders.cpp.o"
  "CMakeFiles/qa_core.dir/builders.cpp.o.d"
  "CMakeFiles/qa_core.dir/debugger.cpp.o"
  "CMakeFiles/qa_core.dir/debugger.cpp.o.d"
  "CMakeFiles/qa_core.dir/runner.cpp.o"
  "CMakeFiles/qa_core.dir/runner.cpp.o.d"
  "CMakeFiles/qa_core.dir/state_set.cpp.o"
  "CMakeFiles/qa_core.dir/state_set.cpp.o.d"
  "libqa_core.a"
  "libqa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
