file(REMOVE_RECURSE
  "libqa_core.a"
)
