# Empty compiler generated dependencies file for deutsch_jozsa_bloom.
# This may be replaced when dependencies are built.
