file(REMOVE_RECURSE
  "CMakeFiles/deutsch_jozsa_bloom.dir/deutsch_jozsa_bloom.cpp.o"
  "CMakeFiles/deutsch_jozsa_bloom.dir/deutsch_jozsa_bloom.cpp.o.d"
  "deutsch_jozsa_bloom"
  "deutsch_jozsa_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deutsch_jozsa_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
