file(REMOVE_RECURSE
  "CMakeFiles/adder_recursion_debug.dir/adder_recursion_debug.cpp.o"
  "CMakeFiles/adder_recursion_debug.dir/adder_recursion_debug.cpp.o.d"
  "adder_recursion_debug"
  "adder_recursion_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adder_recursion_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
