# Empty compiler generated dependencies file for adder_recursion_debug.
# This may be replaced when dependencies are built.
