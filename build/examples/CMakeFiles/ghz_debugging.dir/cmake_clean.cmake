file(REMOVE_RECURSE
  "CMakeFiles/ghz_debugging.dir/ghz_debugging.cpp.o"
  "CMakeFiles/ghz_debugging.dir/ghz_debugging.cpp.o.d"
  "ghz_debugging"
  "ghz_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghz_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
