# Empty dependencies file for ghz_debugging.
# This may be replaced when dependencies are built.
