# Empty compiler generated dependencies file for qpe_debugging.
# This may be replaced when dependencies are built.
