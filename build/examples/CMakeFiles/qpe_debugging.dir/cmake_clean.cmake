file(REMOVE_RECURSE
  "CMakeFiles/qpe_debugging.dir/qpe_debugging.cpp.o"
  "CMakeFiles/qpe_debugging.dir/qpe_debugging.cpp.o.d"
  "qpe_debugging"
  "qpe_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpe_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
