file(REMOVE_RECURSE
  "CMakeFiles/noisy_filtering.dir/noisy_filtering.cpp.o"
  "CMakeFiles/noisy_filtering.dir/noisy_filtering.cpp.o.d"
  "noisy_filtering"
  "noisy_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noisy_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
