# Empty dependencies file for noisy_filtering.
# This may be replaced when dependencies are built.
