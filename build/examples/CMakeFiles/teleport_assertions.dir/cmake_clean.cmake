file(REMOVE_RECURSE
  "CMakeFiles/teleport_assertions.dir/teleport_assertions.cpp.o"
  "CMakeFiles/teleport_assertions.dir/teleport_assertions.cpp.o.d"
  "teleport_assertions"
  "teleport_assertions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teleport_assertions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
