# Empty dependencies file for teleport_assertions.
# This may be replaced when dependencies are built.
