/**
 * @file
 * qa_explain: stand-alone CircuitAnalyzer/Router front-end. Reads a
 * QASM circuit, prints its classification, the per-backend capability
 * verdicts, and the routing decision — without executing a shot.
 *
 * Usage:
 *   qa_explain FILE [--noise none|melbourne|depolarizing]
 *             [--p1 X] [--p2 X] [--shots N] [--backend NAME] [--naive]
 *             [--chi N] [--mps-tol X]
 *             [--auto-assert] [--lowering NAME]
 *
 * FILE may be "-" for stdin. --shots feeds the router's density-vs-
 * replay cost model; --backend exercises explicit-override validation
 * (an incapable override is reported, not executed). --auto-assert
 * runs the assertion compiler over the raw circuit first and prints
 * the per-slot lowering table (form, ancillas, gates, sub-circuits)
 * before routing the instrumented variant; --lowering pins the form.
 */
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "acomp/compiler.hpp"
#include "backend/router.hpp"
#include "circuit/qasm.hpp"
#include "common/error.hpp"
#include "sim/noise.hpp"

namespace
{

using namespace qa;

int
usage(int code)
{
    std::cerr << "usage: qa_explain FILE [--noise none|melbourne|"
                 "depolarizing] [--p1 X] [--p2 X]\n"
                 "                  [--shots N] [--backend auto|"
                 "statevector|density_matrix|stabilizer|mps] [--naive]\n"
                 "                  [--no-fusion] [--fusion-max 1|2|3]\n"
                 "                  [--chi N] [--mps-tol X]\n"
                 "                  [--auto-assert] [--lowering auto|swap|"
                 "or|ndd|pauli|pauli_sample]\n"
                 "FILE is a QASM circuit, or - for stdin; prints the "
                 "backend routing decision\n"
                 "and the dense-backend fusion plan without executing.\n"
                 "--auto-assert additionally prints the assertion "
                 "compiler's lowering table and\n"
                 "routes the instrumented circuit\n";
    return code;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string path;
    std::string noise_kind = "none";
    double p1 = 1e-3, p2 = 1e-2;
    int shots = defaults::kShots;
    BackendRequest request = BackendRequest::kAuto;
    bool naive = false;
    bool fusion = defaults::kFusion;
    int fusion_max = defaults::kFusionMaxQubits;
    int mps_chi = defaults::kMpsChi;
    double mps_tol = defaults::kMpsTruncTol;
    bool auto_assert = false;
    acomp::LoweringRequest lowering = acomp::LoweringRequest::kAuto;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--help" || arg == "-h") return usage(0);
        if (arg == "--noise") {
            if (value == nullptr) return usage(2);
            noise_kind = value;
            ++i;
        } else if (arg == "--p1") {
            if (value == nullptr) return usage(2);
            p1 = std::atof(value);
            ++i;
        } else if (arg == "--p2") {
            if (value == nullptr) return usage(2);
            p2 = std::atof(value);
            ++i;
        } else if (arg == "--shots") {
            if (value == nullptr) return usage(2);
            shots = std::atoi(value);
            ++i;
        } else if (arg == "--backend") {
            if (value == nullptr) return usage(2);
            if (!parseBackendRequest(value, &request)) {
                std::cerr << "qa_explain: unknown backend '" << value
                          << "'\n";
                return 2;
            }
            ++i;
        } else if (arg == "--naive") {
            naive = true;
        } else if (arg == "--auto-assert") {
            auto_assert = true;
        } else if (arg == "--lowering") {
            if (value == nullptr) return usage(2);
            if (!acomp::parseLoweringRequest(value, &lowering)) {
                std::cerr << "qa_explain: unknown lowering '" << value
                          << "'\n";
                return 2;
            }
            auto_assert = true; // pinning a form implies the compiler
            ++i;
        } else if (arg == "--chi") {
            if (value == nullptr) return usage(2);
            mps_chi = std::atoi(value);
            ++i;
        } else if (arg == "--mps-tol") {
            if (value == nullptr) return usage(2);
            mps_tol = std::atof(value);
            ++i;
        } else if (arg == "--no-fusion") {
            fusion = false;
        } else if (arg == "--fusion-max") {
            if (value == nullptr) return usage(2);
            fusion_max = std::atoi(value);
            ++i;
        } else if (path.empty() && (arg == "-" || arg[0] != '-')) {
            path = arg;
        } else {
            std::cerr << "qa_explain: unknown option '" << arg << "'\n";
            return usage(2);
        }
    }
    if (path.empty()) return usage(2);

    std::string text;
    if (path == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        text = buffer.str();
    } else {
        std::ifstream in(path);
        if (!in) {
            std::cerr << "qa_explain: cannot open '" << path << "'\n";
            return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    }

    NoiseModel noise;
    if (noise_kind == "melbourne") {
        noise = NoiseModel::ibmqMelbourneLike();
    } else if (noise_kind == "depolarizing") {
        noise = NoiseModel::depolarizing(p1, p2);
    } else if (noise_kind != "none") {
        std::cerr << "qa_explain: unknown noise kind '" << noise_kind
                  << "'\n";
        return 2;
    }

    try {
        std::vector<QasmPos> positions;
        const QuantumCircuit circuit = parseQasm(text, &positions);
        SimOptions options;
        options.shots = shots;
        options.noise = noise.enabled() ? &noise : nullptr;
        options.backend = request;
        options.naive = naive;
        options.fusion = fusion;
        options.fusion_max_qubits = fusion_max;
        options.mps_chi = mps_chi;
        options.mps_trunc_tol = mps_tol;
        if (auto_assert) {
            acomp::AcompOptions aopts;
            aopts.lowering = lowering;
            aopts.backend = request;
            const acomp::CompiledProgram compiled =
                acomp::autoAssert(circuit, aopts, &positions);
            std::cout << acomp::formatLoweringTable(compiled);
            std::cout << backend::explainRouting(compiled.variants[0],
                                                 options);
        } else {
            std::cout << backend::explainRouting(circuit, options);
        }
    } catch (const UserError& err) {
        std::cerr << "qa_explain: " << err.what() << "\n";
        return 1;
    }
    return 0;
}
