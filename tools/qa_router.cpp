/**
 * @file
 * qa_router: fault-tolerant front-end for a sharded qassertd fleet.
 *
 * Speaks the same NDJSON wire protocol as a single qassertd on
 * stdin/stdout, but behind it fork/execs N qassertd shards, routes each
 * job by consistent-hashing its 128-bit structural jobKey (cache
 * affinity: identical circuit structure always lands on the same shard
 * while it is up), probes shard health, fails over a dead shard's
 * keyspace to its ring successors, respawns crashed shards with fresh
 * generation-suffixed journals, and guarantees each admitted job is
 * answered exactly once. See src/fleet/router.hpp for the full
 * contract and DESIGN.md Sec. 13 for the topology.
 *
 * Usage:
 *   qa_router --shards N [--shard-cmd "qassertd --workers 1 ..."]
 *             [--journal-dir DIR] [--vnodes N] [--probe-ms X]
 *             [--ping-timeout-ms X] [--hedge-ms X] [--retries N]
 *             [--no-respawn] [--drain-ms X] [--max-line N]
 *   qa_router --connect host:port,host:port,...
 *             [--connect-timeout-ms X] [--write-timeout-ms X]
 *             [--idle-timeout-ms X] [... same routing flags]
 *
 * --connect switches the fleet to remote TCP shards (qassertd
 * --listen daemons); the shard count is the endpoint count and
 * "respawn" means re-dialing a dead endpoint. Placement knobs (work
 * for both transports):
 *   --spill             skip persistently-overloaded shards (outlier
 *                       detection from pong queue depth + probe RTT)
 *   --adaptive          reweigh ring vnodes from measured per-shard
 *                       service rate
 *   --status-cache-ms X cache the fleet_status body for X ms
 *
 * Extra ops beyond the qassertd set:
 *   {"op":"fleet_status","id":"s1"}  -> per-shard health/counters; the
 *                                       "metrics" op returns the same.
 *
 * SIGTERM/SIGINT, EOF, or {"op":"shutdown"} stop admission, wait for
 * pending jobs (bounded by --drain-ms), drain the shards gracefully,
 * and exit 0. Diagnostics go to stderr; stdout is a pure response
 * stream.
 */
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "fleet/router.hpp"
#include "serve/wire.hpp"

namespace
{

using namespace qa;

volatile std::sig_atomic_t g_signal = 0;

extern "C" void
onDrainSignal(int sig)
{
    g_signal = sig;
}

/** No SA_RESTART: the blocking stdin read must EINTR into the drain. */
void
installDrainHandlers()
{
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = onDrainSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);
}

int
parsePositiveArg(const std::string& flag, const char* value)
{
    if (value == nullptr) {
        std::cerr << "qa_router: " << flag << " needs a value\n";
        std::exit(2);
    }
    const int parsed = std::atoi(value);
    if (parsed <= 0) {
        std::cerr << "qa_router: " << flag << " must be positive, got '"
                  << value << "'\n";
        std::exit(2);
    }
    return parsed;
}

/** Whitespace-split a --shard-cmd string into argv tokens. */
std::vector<std::string>
splitCommand(const std::string& command)
{
    std::vector<std::string> argv;
    std::istringstream in(command);
    std::string token;
    while (in >> token) argv.push_back(token);
    return argv;
}

/** Comma-split a --connect endpoint list. */
std::vector<std::string>
splitEndpoints(const std::string& list)
{
    std::vector<std::string> endpoints;
    std::istringstream in(list);
    std::string item;
    while (std::getline(in, item, ',')) {
        if (!item.empty()) endpoints.push_back(item);
    }
    return endpoints;
}

} // namespace

int
main(int argc, char** argv)
{
    fleet::RouterOptions options;
    std::string shard_cmd = "qassertd";
    double drain_ms = 30000.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--shards") {
            options.shards = size_t(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--shard-cmd") {
            if (value == nullptr) {
                std::cerr << "qa_router: --shard-cmd needs a value\n";
                return 2;
            }
            shard_cmd = value;
            ++i;
        } else if (arg == "--journal-dir") {
            if (value == nullptr) {
                std::cerr << "qa_router: --journal-dir needs a path\n";
                return 2;
            }
            options.journal_dir = value;
            ++i;
        } else if (arg == "--vnodes") {
            options.vnodes = size_t(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--probe-ms") {
            options.probe_interval_ms = double(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--ping-timeout-ms") {
            options.ping_timeout_ms = double(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--hedge-ms") {
            options.hedge_ms = double(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--retries") {
            options.retry.max_attempts = parsePositiveArg(arg, value);
            ++i;
        } else if (arg == "--no-respawn") {
            options.respawn = false;
        } else if (arg == "--connect") {
            if (value == nullptr) {
                std::cerr << "qa_router: --connect needs "
                             "host:port[,host:port...]\n";
                return 2;
            }
            options.connect = splitEndpoints(value);
            if (options.connect.empty()) {
                std::cerr << "qa_router: --connect list is empty\n";
                return 2;
            }
            ++i;
        } else if (arg == "--connect-timeout-ms") {
            options.tcp.connect_timeout_ms =
                double(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--write-timeout-ms") {
            options.tcp.write_timeout_ms =
                double(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--idle-timeout-ms") {
            options.tcp.read_idle_timeout_ms =
                double(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--spill") {
            options.spill = true;
        } else if (arg == "--adaptive") {
            options.adaptive_placement = true;
        } else if (arg == "--adaptive-ms") {
            options.adaptive_interval_ms =
                double(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--status-cache-ms") {
            options.status_cache_ms = double(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--drain-ms") {
            drain_ms = double(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--max-line") {
            options.max_line = size_t(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--help" || arg == "-h") {
            std::cerr
                << "usage: qa_router --shards N [--shard-cmd CMD]"
                   " [--journal-dir DIR]\n"
                   "                 [--vnodes N] [--probe-ms X]"
                   " [--ping-timeout-ms X]\n"
                   "                 [--hedge-ms X] [--retries N]"
                   " [--no-respawn]\n"
                   "                 [--drain-ms X] [--max-line N]\n"
                   "       qa_router --connect host:port,...\n"
                   "                 [--connect-timeout-ms X]"
                   " [--write-timeout-ms X]\n"
                   "                 [--idle-timeout-ms X]"
                   " [--spill] [--adaptive]\n"
                   "                 [--adaptive-ms X]"
                   " [--status-cache-ms X]\n"
                   "NDJSON requests on stdin, one response line per "
                   "request on stdout;\n"
                   "{\"op\":\"fleet_status\"} reports per-shard health "
                   "(see DESIGN.md Sec. 13/15)\n";
            return 0;
        } else {
            std::cerr << "qa_router: unknown option '" << arg << "'\n";
            return 2;
        }
    }
    options.shard_command = splitCommand(shard_cmd);
    if (options.shard_command.empty()) {
        std::cerr << "qa_router: --shard-cmd must not be empty\n";
        return 2;
    }

    // A shard dying between a liveness check and a pipe write must not
    // SIGPIPE-kill the router (ChildProcess sets this too; being
    // explicit in main documents the requirement).
    std::signal(SIGPIPE, SIG_IGN);
    installDrainHandlers();

    fleet::FleetRouter router(options, [](const std::string& line) {
        // FleetRouter serializes emit calls; no extra lock needed.
        std::cout << line << "\n";
        std::cout.flush();
    });
    try {
        router.start();
    } catch (const UserError& err) {
        std::cerr << "qa_router: failed to start fleet: " << err.what()
                  << "\n";
        return 2;
    }
    const size_t nshards =
        options.connect.empty() ? options.shards : options.connect.size();
    std::cerr << "qa_router: ready (" << nshards
              << (options.connect.empty() ? " shard(s), " : " remote shard(s), ")
              << options.vnodes << " vnodes each"
              << (options.journal_dir.empty()
                      ? std::string()
                      : ", journals in " + options.journal_dir)
              << (options.hedge_ms > 0.0 ? ", hedging" : "")
              << (options.spill ? ", spill" : "")
              << (options.adaptive_placement ? ", adaptive" : "") << ")\n";

    std::string line;
    while (g_signal == 0) {
        const serve::ReadLineStatus read =
            serve::readLineBounded(std::cin, &line, options.max_line);
        if (read == serve::ReadLineStatus::kEof) break;
        if (read == serve::ReadLineStatus::kOverflow) {
            std::cout << serve::encodeError(
                             "", ErrorCode::kBadRequest,
                             "input line exceeds the " +
                                 std::to_string(options.max_line) +
                                 "-byte bound; request rejected unread")
                      << "\n";
            std::cout.flush();
            continue;
        }
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        if (!router.handleLine(line)) break; // shutdown op
    }

    if (g_signal != 0) {
        std::cerr << "qa_router: caught "
                  << (g_signal == SIGTERM ? "SIGTERM" : "SIGINT")
                  << "; draining (bound " << drain_ms << "ms)\n";
    }
    if (!router.drainFor(drain_ms)) {
        std::cerr << "qa_router: drain timed out; failing remaining "
                     "jobs\n";
    }
    router.stop();

    const fleet::FleetCounters counters = router.counters();
    std::cerr << "qa_router: done — admitted " << counters.admitted
              << ", ok " << counters.resolved_ok << ", error "
              << counters.resolved_error << ", retried "
              << counters.retried << ", failovers " << counters.failovers
              << ", hedges " << counters.hedges << ", strays "
              << counters.strays << ", no_shard " << counters.no_shard
              << "\n";
    return 0;
}
