/**
 * @file
 * qa_netchaos: a deterministic network-fault-injection TCP proxy.
 *
 * Sits between a qa_router and a `qassertd --listen` shard (or any
 * TCP pair) and applies a seeded NetFaultPlan
 * (src/resilience/netfault.hpp) to the bytes crossing it: connection
 * resets, a global partition window, slow-loris dribbling, partial
 * writes, and black holes. The router on the near side must keep every
 * admitted job resolving exactly once through all of it — that is what
 * scripts/netfleet_smoke.sh asserts.
 *
 * Usage:
 *   qa_netchaos --listen HOST:PORT --target HOST:PORT
 *               [--plan "reset:every=5;partition:at=3000,dur=5000"]
 *               [--seed N] [--port-file PATH]
 *
 * Notes:
 *  - per-connection and per-chunk fault decisions are pure functions of
 *    (seed, connection index[, chunk index]) — rerunning the same plan
 *    against the same connection sequence injects the same faults;
 *  - the partition window is measured from proxy start: connections
 *    alive at its left edge are reset, connections arriving inside it
 *    are black-holed until the right edge, then reset;
 *  - "reset" means RST, not FIN (SO_LINGER 0 close), so the near side
 *    exercises its hard-error path, not its clean-EOF path;
 *  - exits on SIGTERM/SIGINT, resetting every proxied connection.
 */
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/net.hpp"
#include "resilience/netfault.hpp"

namespace
{

using namespace qa;

volatile std::sig_atomic_t g_signal = 0;

extern "C" void
onSignal(int sig)
{
    g_signal = sig;
}

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** RST close: linger time 0 discards the send queue and sends RST. */
void
resetClose(int fd)
{
    if (fd < 0) return;
    struct linger lin;
    lin.l_onoff = 1;
    lin.l_linger = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
    ::close(fd);
}

/** One proxied connection (client fd + upstream fd + pump threads). */
struct ProxyConn
{
    uint64_t index = 0;
    int client_fd = -1;
    int target_fd = -1;
    resilience::NetConnFaults faults;
    double blackhole_until_ms = 0.0; ///< Swallow until (proxy clock).
    std::atomic<bool> dead{false};
    std::atomic<int> pumps_done{0};
    int pumps = 2;
    std::atomic<uint64_t> bytes{0}; ///< Total across both directions.
    std::thread up;                 ///< client -> target
    std::thread down;               ///< target -> client

    void
    kill()
    {
        if (dead.exchange(true)) return;
        // shutdown first so pump threads blocked in poll/read wake;
        // the RST close happens in the joiner (fd stays valid while
        // the pumps might still touch it).
        net::shutdownBoth(client_fd);
        net::shutdownBoth(target_fd);
    }

    /** Both pump threads have returned (clean EOF or killed). */
    bool
    finished() const
    {
        return pumps_done.load() >= pumps;
    }

    ~ProxyConn()
    {
        resetClose(client_fd);
        resetClose(target_fd);
    }
};

struct ProxyState
{
    resilience::NetFaultPlan plan;
    std::chrono::steady_clock::time_point start;
    std::atomic<uint64_t> conns_faulted{0};
    std::atomic<uint64_t> resets{0};
    std::atomic<uint64_t> partial_writes{0};
};

/**
 * Pump one direction, applying slow-loris chunking, partial writes,
 * byte-budget resets, and the blackhole swallow.
 */
void
pump(ProxyState& state, const std::shared_ptr<ProxyConn>& conn,
     int from_fd, int to_fd)
{
    const resilience::NetConnFaults& faults = conn->faults;
    uint64_t chunk_index = conn->index << 20; // per-conn chunk domain
    uint64_t forwarded = 0;
    char buffer[16384];

    // Blackhole: swallow silently until the deadline, then reset.
    if (faults.blackhole) {
        while (!conn->dead.load() && g_signal == 0) {
            if (msSince(state.start) >= conn->blackhole_until_ms) break;
            if (net::pollReadable(from_fd, 50.0)) {
                const ssize_t n = ::read(from_fd, buffer, sizeof buffer);
                if (n == 0) break;
                if (n < 0 && errno != EINTR && errno != EAGAIN &&
                    errno != EWOULDBLOCK) {
                    break;
                }
            }
        }
        state.resets.fetch_add(1);
        conn->kill();
        return;
    }

    while (!conn->dead.load() && g_signal == 0) {
        if (!net::pollReadable(from_fd, 100.0)) continue;
        const ssize_t n = ::read(from_fd, buffer, sizeof buffer);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK) {
                continue;
            }
            break;
        }
        if (n == 0) break;

        size_t off = 0;
        while (off < size_t(n) && !conn->dead.load()) {
            size_t len = size_t(n) - off;
            const bool dribble =
                faults.slowloris &&
                (faults.slowloris_bytes == 0 ||
                 forwarded < faults.slowloris_bytes);
            if (dribble) {
                len = std::min<size_t>(len, faults.slowloris_chunk);
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        faults.slowloris_delay_ms));
            }
            size_t first = len;
            if (len > 1 &&
                state.plan.partialWrite(conn->index, chunk_index)) {
                first = len / 2; // two short writes instead of one
                state.partial_writes.fetch_add(1);
            }
            chunk_index++;
            if (!net::writeAllBounded(to_fd, buffer + off, first,
                                      30000.0)) {
                conn->kill();
                return;
            }
            if (first < len &&
                !net::writeAllBounded(to_fd, buffer + off + first,
                                      len - first, 30000.0)) {
                conn->kill();
                return;
            }
            off += len;
            forwarded += len;
            const uint64_t total = conn->bytes.fetch_add(len) + len;
            if (faults.reset && total >= faults.reset_after_bytes) {
                state.resets.fetch_add(1);
                conn->kill();
                return;
            }
        }
    }
    // Clean EOF from one side: half-close the other so NDJSON drains.
    net::shutdownWrite(to_fd);
}

} // namespace

int
main(int argc, char** argv)
{
    std::string listen_spec;
    std::string target_spec;
    std::string plan_text;
    std::string port_file;
    uint64_t seed = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
        auto need = [&](const char* what) {
            if (value == nullptr) {
                std::cerr << "qa_netchaos: " << arg << " needs " << what
                          << "\n";
                std::exit(2);
            }
            ++i;
            return std::string(value);
        };
        if (arg == "--listen") listen_spec = need("HOST:PORT");
        else if (arg == "--target") target_spec = need("HOST:PORT");
        else if (arg == "--plan") plan_text = need("a fault plan");
        else if (arg == "--seed") seed = std::strtoull(
                 need("a seed").c_str(), nullptr, 10);
        else if (arg == "--port-file") port_file = need("a path");
        else if (arg == "--help" || arg == "-h") {
            std::cerr
                << "usage: qa_netchaos --listen HOST:PORT --target "
                   "HOST:PORT\n"
                   "                   [--plan PLAN] [--seed N] "
                   "[--port-file PATH]\n"
                   "plan grammar: reset:every=K[,after_bytes=N];\n"
                   "              partition:at=MS,dur=MS;\n"
                   "              slowloris:every=K,delay_ms=D[,chunk=C]"
                   "[,bytes=N];\n"
                   "              partial:p=P; blackhole:every=K,dur=MS\n";
            return 0;
        } else {
            std::cerr << "qa_netchaos: unknown option '" << arg << "'\n";
            return 2;
        }
    }
    if (listen_spec.empty() || target_spec.empty()) {
        std::cerr << "qa_netchaos: --listen and --target are required\n";
        return 2;
    }

    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = onSignal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);
    std::signal(SIGPIPE, SIG_IGN);

    ProxyState state;
    net::Endpoint listen_ep;
    net::Endpoint target_ep;
    try {
        listen_ep = net::parseEndpoint(listen_spec);
        target_ep = net::parseEndpoint(target_spec);
        state.plan = resilience::NetFaultPlan::parse(plan_text, seed);
    } catch (const qa::UserError& err) {
        std::cerr << "qa_netchaos: " << err.what() << "\n";
        return 2;
    }

    int bound_port = 0;
    std::string error;
    const int listen_fd = net::tcpListen(listen_ep.host, listen_ep.port,
                                         16, &bound_port, &error);
    if (listen_fd < 0) {
        std::cerr << "qa_netchaos: " << error << "\n";
        return 2;
    }
    if (!port_file.empty()) {
        std::ofstream pf(port_file);
        pf << bound_port << "\n";
        if (!pf) {
            std::cerr << "qa_netchaos: cannot write port file '"
                      << port_file << "'\n";
            return 2;
        }
    }
    state.start = std::chrono::steady_clock::now();
    std::cerr << "qa_netchaos: " << listen_ep.host << ":" << bound_port
              << " -> " << target_ep.str() << " ["
              << state.plan.describe() << "]\n";

    std::vector<std::shared_ptr<ProxyConn>> conns;
    uint64_t next_index = 0;
    bool partition_tripped = false;

    while (g_signal == 0) {
        // Partition left edge: reset everything alive, exactly once.
        const double now_ms = msSince(state.start);
        if (state.plan.hasPartition() && !partition_tripped &&
            now_ms >= state.plan.partitionAtMs()) {
            partition_tripped = true;
            size_t killed = 0;
            for (const auto& conn : conns) {
                if (!conn->dead.load()) {
                    conn->kill();
                    killed++;
                }
            }
            state.resets.fetch_add(killed);
            std::cerr << "qa_netchaos: partition open (" << killed
                      << " connections reset)\n";
        }

        const int client_fd = net::tcpAccept(listen_fd, 100.0);
        if (client_fd == -2) break;
        // Reap finished connections as we go.
        for (size_t i = 0; i < conns.size();) {
            if (conns[i]->finished()) {
                if (conns[i]->up.joinable()) conns[i]->up.join();
                if (conns[i]->down.joinable()) conns[i]->down.join();
                conns.erase(conns.begin() + long(i));
            } else {
                ++i;
            }
        }
        if (client_fd == -1) continue;

        auto conn = std::make_shared<ProxyConn>();
        conn->index = next_index++;
        conn->client_fd = client_fd;
        conn->faults = state.plan.connFaults(conn->index);

        if (conn->faults.blackhole) {
            conn->blackhole_until_ms =
                msSince(state.start) + conn->faults.blackhole_dur_ms;
        }
        if (state.plan.inPartition(msSince(state.start))) {
            // Arrived inside the window: black-hole until its end.
            conn->faults.blackhole = true;
            conn->blackhole_until_ms = state.plan.partitionEndMs();
        }

        if (!conn->faults.blackhole) {
            conn->target_fd = net::tcpConnect(target_ep.host,
                                              target_ep.port, 1000.0);
            if (conn->target_fd < 0) {
                std::cerr << "qa_netchaos: upstream connect failed\n";
                resetClose(conn->client_fd);
                conn->client_fd = -1;
                continue;
            }
        }
        if (conn->faults.any()) state.conns_faulted.fetch_add(1);

        auto self = conn; // keep alive for both pumps
        conn->pumps = conn->faults.blackhole ? 1 : 2;
        conn->up = std::thread([&state, self] {
            pump(state, self, self->client_fd, self->target_fd);
            self->pumps_done.fetch_add(1);
        });
        if (!conn->faults.blackhole) {
            conn->down = std::thread([&state, self] {
                pump(state, self, self->target_fd, self->client_fd);
                self->pumps_done.fetch_add(1);
            });
        }
        conns.push_back(std::move(conn));
    }

    for (const auto& conn : conns) conn->kill();
    for (const auto& conn : conns) {
        if (conn->up.joinable()) conn->up.join();
        if (conn->down.joinable()) conn->down.join();
    }
    net::closeQuiet(listen_fd);
    std::cerr << "qa_netchaos: done (" << next_index << " connections, "
              << state.conns_faulted.load() << " faulted, "
              << state.resets.load() << " resets, "
              << state.partial_writes.load() << " partial writes)\n";
    return 0;
}
