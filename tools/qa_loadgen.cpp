/**
 * @file
 * qa_loadgen: deterministic load generator for qassertd / qa_router.
 *
 * Spawns the target (--target-cmd, default a plain qassertd) as a child
 * on a pipe pair, drives it with NDJSON run requests drawn from a
 * catalog of distinct circuits, and measures end-to-end latency and
 * throughput from the client's side of the wire — the number a fleet
 * operator actually sees.
 *
 * Workload model:
 *  - **Zipf circuit popularity** (--zipf S over --circuits M): a few
 *    hot circuits dominate, the tail is cold — the distribution that
 *    makes result-cache affinity matter, since only a shard that keeps
 *    seeing the same hot key benefits from its cache.
 *  - **Closed loop** (--mode closed --concurrency C): C requests in
 *    flight at all times; the next request leaves when a response
 *    arrives. Measures sustainable throughput.
 *  - **Open loop** (--mode open --rate R --burst B): bursts of B
 *    requests every B/R seconds on a fixed schedule, regardless of
 *    responses — the arrival process does not slow down because the
 *    server is struggling, so queueing shows up in the tail latencies
 *    instead of being hidden by backpressure.
 *  - **Chaos** (--kill-shard K --kill-after N): after the N-th
 *    response, SIGKILL shard K of a qa_router target (pid discovered
 *    via fleet_status) and keep loading through the failover.
 *
 * Exit code is non-zero when any request went unanswered (lost) or the
 * wire saw duplicate response ids — the loadgen doubles as the fleet's
 * exactly-once checker. Results are emitted as one JSON line on stdout
 * (and appended to --out PATH when given) for BENCH_PR7.json.
 *
 * --digest adds a "digest" field: a 128-bit order-independent hash of
 * every response's *deterministic* payload (timing fields queue_ms /
 * exec_ms and the placement-dependent cache_hit flag are stripped, the
 * rest is hashed keyed by the request id, and the per-response hashes
 * are XOR-combined so arrival order does not matter). Two runs with the
 * same seed against the same fleet must produce equal digests even when
 * one ran under qa_netchaos and the other did not — the bit-identity
 * check behind scripts/netfleet_smoke.sh.
 */
#include <sys/types.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "fleet/process.hpp"
#include "serve/json.hpp"
#include "serve/wire.hpp"

namespace
{

using namespace qa;
using SteadyClock = std::chrono::steady_clock;

uint64_t
splitmix64(uint64_t& state)
{
    state += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

int
parsePositiveArg(const std::string& flag, const char* value)
{
    if (value == nullptr) {
        std::cerr << "qa_loadgen: " << flag << " needs a value\n";
        std::exit(2);
    }
    const int parsed = std::atoi(value);
    if (parsed <= 0) {
        std::cerr << "qa_loadgen: " << flag << " must be positive, got '"
                  << value << "'\n";
        std::exit(2);
    }
    return parsed;
}

std::vector<std::string>
splitCommand(const std::string& command)
{
    std::vector<std::string> argv;
    std::istringstream in(command);
    std::string token;
    while (in >> token) argv.push_back(token);
    return argv;
}

/**
 * Catalog circuit i: a GHZ chain whose width cycles 2..9 and whose
 * tail of X gates grows with i/8 — every index yields a structurally
 * distinct circuit (distinct jobKey), all of them Clifford so the
 * stabilizer fast path keeps per-job cost low and the harness measures
 * serving, not simulation.
 */
std::string
catalogQasm(size_t i)
{
    const size_t width = 2 + (i % 8);
    std::ostringstream qasm;
    qasm << "OPENQASM 2.0;\nqreg q[" << width << "];\ncreg c[" << width
         << "];\nh q[0];\n";
    for (size_t k = 1; k < width; ++k) {
        qasm << "cx q[0],q[" << k << "];\n";
    }
    for (size_t k = 0; k < i / 8; ++k) {
        qasm << "x q[" << (k % width) << "];\n";
    }
    for (size_t k = 0; k < width; ++k) {
        qasm << "measure q[" << k << "] -> c[" << k << "];\n";
    }
    return qasm.str();
}

/** Zipf(s) sampler over [0, n) via inverse CDF on a prefix-sum table. */
class ZipfSampler
{
  public:
    ZipfSampler(size_t n, double s)
    {
        cdf_.reserve(n);
        double total = 0.0;
        for (size_t i = 0; i < n; ++i) {
            total += 1.0 / std::pow(double(i + 1), s);
            cdf_.push_back(total);
        }
        for (double& c : cdf_) c /= total;
    }

    size_t
    sample(uint64_t& rng) const
    {
        const double u =
            double(splitmix64(rng) >> 11) * (1.0 / 9007199254740992.0);
        const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        return size_t(it - cdf_.begin());
    }

  private:
    std::vector<double> cdf_;
};

double
percentile(std::vector<double>& sorted, double q)
{
    if (sorted.empty()) return 0.0;
    const size_t idx = std::min(sorted.size() - 1,
                                size_t(q * double(sorted.size())));
    return sorted[idx];
}

/**
 * Drop one "key":value pair (and its separating comma) from a JSON
 * object rendered on one line. Value-shape agnostic for scalar values
 * (number, bool, string without embedded commas/braces) — which covers
 * every volatile field the wire emits. No-op when the key is absent.
 */
std::string
stripField(const std::string& json, const std::string& key)
{
    const std::string needle = "\"" + key + "\":";
    const size_t at = json.find(needle);
    if (at == std::string::npos) return json;
    size_t end = at + needle.size();
    while (end < json.size() && json[end] != ',' && json[end] != '}') {
        ++end;
    }
    size_t begin = at;
    if (end < json.size() && json[end] == ',') {
        ++end; // drop the trailing comma ...
    } else if (begin > 0 && json[begin - 1] == ',') {
        --begin; // ... or the leading one for a last field
    }
    return json.substr(0, begin) + json.substr(end);
}

/**
 * Hash of one response's deterministic payload, keyed by the request
 * id so digests detect id/payload cross-wiring, not just multiset
 * equality of payloads.
 */
Hash128
responseDigest(const std::string& id, const std::string& line)
{
    std::string cleaned = stripField(line, "queue_ms");
    cleaned = stripField(cleaned, "exec_ms");
    cleaned = stripField(cleaned, "cache_hit");
    HashStream hs(0xd16357ULL);
    hs.str(id).str(cleaned);
    return hs.digest();
}

} // namespace

int
main(int argc, char** argv)
{
    std::string target_cmd = "qassertd";
    std::string mode = "closed";
    std::string label;
    std::string out_path;
    size_t jobs = 200;
    size_t circuits = 32;
    double zipf_s = 1.1;
    int concurrency = 8;
    double rate = 100.0;
    int burst = 4;
    int shots = 256;
    uint64_t seed = 0x10adULL;
    int kill_shard = -1;
    size_t kill_after = 0;
    double drain_wait_ms = 60000.0;
    bool digest = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--target-cmd") {
            if (value == nullptr) return 2;
            target_cmd = value;
            ++i;
        } else if (arg == "--mode") {
            if (value == nullptr) return 2;
            mode = value;
            ++i;
        } else if (arg == "--label") {
            if (value == nullptr) return 2;
            label = value;
            ++i;
        } else if (arg == "--out") {
            if (value == nullptr) return 2;
            out_path = value;
            ++i;
        } else if (arg == "--jobs") {
            jobs = size_t(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--circuits") {
            circuits = size_t(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--zipf") {
            if (value == nullptr) return 2;
            zipf_s = std::atof(value);
            ++i;
        } else if (arg == "--concurrency") {
            concurrency = parsePositiveArg(arg, value);
            ++i;
        } else if (arg == "--rate") {
            rate = double(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--burst") {
            burst = parsePositiveArg(arg, value);
            ++i;
        } else if (arg == "--shots") {
            shots = parsePositiveArg(arg, value);
            ++i;
        } else if (arg == "--seed") {
            if (value == nullptr) return 2;
            seed = uint64_t(std::atoll(value));
            ++i;
        } else if (arg == "--kill-shard") {
            if (value == nullptr) return 2;
            kill_shard = std::atoi(value);
            ++i;
        } else if (arg == "--kill-after") {
            kill_after = size_t(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--drain-wait-ms") {
            drain_wait_ms = double(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--digest") {
            digest = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cerr
                << "usage: qa_loadgen [--target-cmd CMD] [--mode "
                   "closed|open]\n"
                   "                  [--jobs N] [--circuits M] [--zipf "
                   "S] [--shots N]\n"
                   "                  [--concurrency C | --rate R "
                   "--burst B]\n"
                   "                  [--kill-shard K --kill-after N]"
                   " [--digest]\n"
                   "                  [--label S] [--out PATH] [--seed "
                   "N]\n";
            return 0;
        } else {
            std::cerr << "qa_loadgen: unknown option '" << arg << "'\n";
            return 2;
        }
    }
    if (mode != "closed" && mode != "open") {
        std::cerr << "qa_loadgen: --mode must be closed or open\n";
        return 2;
    }

    std::signal(SIGPIPE, SIG_IGN);

    // Pre-build the request catalog: deterministic, and out of the
    // timed path.
    const ZipfSampler sampler(circuits, zipf_s);
    std::vector<std::string> catalog(circuits);
    for (size_t i = 0; i < circuits; ++i) {
        catalog[i] = "\"qasm\":\"" + serve::jsonEscape(catalogQasm(i)) +
                     "\",\"shots\":" + std::to_string(shots) +
                     ",\"seed\":" + std::to_string(1000 + i) +
                     ",\"assert_clbits\":[[0]]";
    }
    uint64_t rng = seed;
    std::vector<size_t> pick(jobs);
    for (size_t i = 0; i < jobs; ++i) pick[i] = sampler.sample(rng);

    fleet::ChildProcess target(splitCommand(target_cmd));

    std::mutex mutex;
    std::condition_variable cv;
    size_t answered = 0;
    size_t ok = 0;
    size_t errors = 0;
    size_t duplicates = 0;
    std::vector<pid_t> shard_pids;
    std::vector<SteadyClock::time_point> sent_at(jobs);
    std::vector<double> latency_ms(jobs, -1.0);
    Hash128 combined_digest; // XOR-combined: order-independent.

    std::thread reader([&] {
        fleet::LineReader lines(target.readFd());
        std::string line;
        while (lines.next(&line) != fleet::LineReader::Status::kEof) {
            std::string id;
            if (!serve::peekResponseId(line, &id)) continue;
            if (id == "!status") {
                // fleet_status reply: harvest shard pids for the chaos
                // kill.
                try {
                    const serve::JsonValue parsed =
                        serve::JsonValue::parse(line);
                    const serve::JsonValue* fleet = parsed.find("fleet");
                    const serve::JsonValue* shard =
                        fleet ? fleet->find("shard") : nullptr;
                    std::lock_guard<std::mutex> lock(mutex);
                    shard_pids.clear();
                    if (shard != nullptr) {
                        for (const serve::JsonValue& s : shard->asArray()) {
                            shard_pids.push_back(
                                pid_t(s.numberOr("pid", -1.0)));
                        }
                    }
                } catch (const UserError&) {}
                cv.notify_all();
                continue;
            }
            if (id.size() < 2 || id[0] != 'j') continue;
            const size_t index = size_t(std::atoll(id.c_str() + 1));
            if (index >= jobs) continue;
            const bool is_ok =
                line.find("\"status\":\"ok\"") != std::string::npos;
            std::lock_guard<std::mutex> lock(mutex);
            if (latency_ms[index] >= 0.0) {
                duplicates++; // exactly-once violation; fail at exit
                continue;
            }
            latency_ms[index] =
                std::chrono::duration<double, std::milli>(
                    SteadyClock::now() - sent_at[index])
                    .count();
            if (digest) {
                const Hash128 h = responseDigest(id, line);
                combined_digest.hi ^= h.hi;
                combined_digest.lo ^= h.lo;
            }
            answered++;
            if (is_ok) ok++;
            else errors++;
            cv.notify_all();
        }
        cv.notify_all();
    });

    if (kill_shard >= 0) {
        // Discover shard pids up front; the reply also proves the
        // router is up before the clock starts.
        target.writeLine("{\"op\":\"fleet_status\",\"id\":\"!status\"}");
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait_for(lock, std::chrono::seconds(10),
                    [&] { return !shard_pids.empty(); });
        if (size_t(kill_shard) >= shard_pids.size()) {
            std::cerr << "qa_loadgen: --kill-shard " << kill_shard
                      << " out of range (fleet has " << shard_pids.size()
                      << " shard(s))\n";
            return 2;
        }
    }

    const SteadyClock::time_point t0 = SteadyClock::now();
    bool killed = false;
    auto maybeKill = [&](size_t answered_now) {
        if (kill_shard < 0 || killed || answered_now < kill_after) return;
        killed = true;
        const pid_t pid = shard_pids[size_t(kill_shard)];
        std::cerr << "qa_loadgen: SIGKILL shard " << kill_shard << " (pid "
                  << pid << ") after " << answered_now << " responses\n";
        ::kill(pid, SIGKILL);
    };

    if (mode == "closed") {
        for (size_t i = 0; i < jobs; ++i) {
            {
                std::unique_lock<std::mutex> lock(mutex);
                // Outstanding = sent (i) - answered; keep it below C.
                cv.wait(lock, [&] {
                    return i - answered < size_t(concurrency);
                });
                maybeKill(answered);
                sent_at[i] = SteadyClock::now();
            }
            target.writeLine("{\"id\":\"j" + std::to_string(i) + "\"," +
                             catalog[pick[i]] + "}");
        }
    } else {
        const double gap_ms = double(burst) / rate * 1000.0;
        SteadyClock::time_point next = t0;
        size_t i = 0;
        while (i < jobs) {
            std::this_thread::sleep_until(next);
            next += std::chrono::duration_cast<SteadyClock::duration>(
                std::chrono::duration<double, std::milli>(gap_ms));
            for (int b = 0; b < burst && i < jobs; ++b, ++i) {
                {
                    std::lock_guard<std::mutex> lock(mutex);
                    maybeKill(answered);
                    sent_at[i] = SteadyClock::now();
                }
                target.writeLine("{\"id\":\"j" + std::to_string(i) +
                                 "\"," + catalog[pick[i]] + "}");
            }
        }
    }

    // Drain: all responses in, bounded.
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait_for(
            lock,
            std::chrono::duration_cast<SteadyClock::duration>(
                std::chrono::duration<double, std::milli>(drain_wait_ms)),
            [&] { return answered >= jobs; });
    }
    const double duration_ms =
        std::chrono::duration<double, std::milli>(SteadyClock::now() - t0)
            .count();

    target.writeLine("{\"op\":\"shutdown\"}");
    target.closeStdin();
    reader.join();
    target.forceReap();

    size_t lost = 0;
    std::vector<double> sorted;
    sorted.reserve(jobs);
    double sum = 0.0;
    for (size_t i = 0; i < jobs; ++i) {
        if (latency_ms[i] < 0.0) {
            lost++;
            continue;
        }
        sorted.push_back(latency_ms[i]);
        sum += latency_ms[i];
    }
    std::sort(sorted.begin(), sorted.end());

    std::ostringstream result;
    result << "{\"label\":\"" << serve::jsonEscape(label)
           << "\",\"mode\":\"" << mode << "\",\"jobs\":" << jobs
           << ",\"circuits\":" << circuits << ",\"zipf\":"
           << serve::jsonNumber(zipf_s) << ",\"shots\":" << shots
           << ",\"concurrency\":" << concurrency
           << ",\"rate\":" << serve::jsonNumber(rate)
           << ",\"burst\":" << burst << ",\"answered\":" << answered
           << ",\"ok\":" << ok << ",\"errors\":" << errors
           << ",\"lost\":" << lost << ",\"duplicates\":" << duplicates
           << ",\"killed_shard\":" << kill_shard
           << ",\"duration_ms\":" << serve::jsonNumber(duration_ms)
           << ",\"jobs_per_sec\":"
           << serve::jsonNumber(duration_ms > 0.0
                                    ? double(answered) * 1000.0 /
                                          duration_ms
                                    : 0.0)
           << ",\"latency_ms\":{\"mean\":"
           << serve::jsonNumber(sorted.empty() ? 0.0
                                               : sum / double(sorted.size()))
           << ",\"p50\":" << serve::jsonNumber(percentile(sorted, 0.50))
           << ",\"p90\":" << serve::jsonNumber(percentile(sorted, 0.90))
           << ",\"p99\":" << serve::jsonNumber(percentile(sorted, 0.99))
           << ",\"p999\":" << serve::jsonNumber(percentile(sorted, 0.999))
           << ",\"max\":"
           << serve::jsonNumber(sorted.empty() ? 0.0 : sorted.back())
           << "}";
    if (digest) {
        result << ",\"digest\":\"" << combined_digest.str() << "\"";
    }
    result << "}";
    std::cout << result.str() << "\n";
    if (!out_path.empty()) {
        std::ofstream out(out_path, std::ios::app);
        out << result.str() << "\n";
    }

    if (lost > 0 || duplicates > 0) {
        std::cerr << "qa_loadgen: FAILED — " << lost << " lost, "
                  << duplicates << " duplicate response(s)\n";
        return 1;
    }
    std::cerr << "qa_loadgen: all " << jobs
              << " jobs answered exactly once\n";
    return 0;
}
