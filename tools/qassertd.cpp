/**
 * @file
 * qassertd: the assertion service front-end. Speaks newline-delimited
 * JSON over stdin/stdout (protocol: serve/wire.hpp) and drives the
 * in-process Scheduler — batching, priorities, the cross-job result
 * cache, per-job deadlines, worker supervision, and transient-failure
 * retries all come from there.
 *
 * Usage:
 *   qassertd [--workers N] [--queue N] [--cache N] [--max-line N]
 *            [--retries N] [--stall-ms X] [--breaker] [--auto-assert]
 *            [--journal PATH] [--sync-every N] [--drain-ms X]
 *            [--listen HOST:PORT] [--port-file PATH]
 *   qassertd --replay PATH
 *   qassertd --explain PATH      # classify + route a QASM file, no run
 *
 * --listen serves the same NDJSON protocol over TCP instead of stdin:
 * any number of concurrent connections (each a remote qa_router, or a
 * plain netcat), one reader thread per connection, responses written to
 * the connection the request arrived on. Port 0 binds an ephemeral
 * port; --port-file writes the actually bound port to PATH (how test
 * harnesses avoid port races). A shutdown request on any connection —
 * or SIGTERM/SIGINT — drains the whole daemon; a connection closing
 * only ends that connection.
 *
 * --auto-assert defaults every request that does not name the field to
 * {"auto_assert":true}: raw circuits get assertion-compiler invariants
 * discovered, lowered, and checked (serve/job.hpp). Requests that do
 * carry the field keep their own value. Also applies to --explain.
 *
 * Behaviour:
 *  - every input line is one request; every response is one line
 *    tagged with the request's id, emitted in completion order;
 *  - input lines are bounded (--max-line, default 1 MiB); an oversize
 *    line is consumed and rejected with {"code":"bad_request"} without
 *    ever being buffered whole;
 *  - admission rejections ({"code":"queue_full"}, {"code":"shedding"})
 *    are immediate — the reader never blocks on a full queue, callers
 *    are expected to retry with backoff;
 *  - with --journal, every admitted run request is appended to a
 *    crash-safe NDJSON journal *before* it enters the scheduler, and a
 *    completion record (with the result's payload hash) follows when it
 *    resolves — `--replay` re-executes the journal deterministically
 *    (exit 0 bit-identical, 1 mismatch, 3 cleanly cancelled by a drain
 *    signal);
 *  - {"op":"ping"} is answered on the read loop with queue depth and
 *    in-flight count — the fleet router's health probe;
 *  - SIGTERM/SIGINT, EOF, or {"op":"shutdown"} stop admission, drain
 *    in-flight work (bounded by --drain-ms), flush the journal, and
 *    exit 0 after printing a final metrics summary.
 *
 * Diagnostics (startup banner, shutdown summary) go to stderr so stdout
 * stays a pure response stream.
 */
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>

#include "acomp/compiler.hpp"
#include "backend/router.hpp"
#include "circuit/qasm.hpp"
#include "common/error.hpp"
#include "common/net.hpp"
#include "resilience/journal.hpp"
#include "serve/listen.hpp"
#include "serve/replay.hpp"
#include "serve/scheduler.hpp"
#include "serve/wire.hpp"

namespace
{

using namespace qa;
using namespace qa::serve;

volatile std::sig_atomic_t g_signal = 0;

extern "C" void
onDrainSignal(int sig)
{
    g_signal = sig;
}

/**
 * Install SIGTERM/SIGINT handlers *without* SA_RESTART, so the blocking
 * stdin read fails with EINTR and the main loop falls through to the
 * graceful-drain path instead of dying mid-job.
 */
void
installDrainHandlers()
{
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = onDrainSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);
}

/** Serializes response lines from concurrent worker callbacks. */
class ResponseWriter
{
  public:
    void
    writeLine(const std::string& line)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::cout << line << "\n";
        std::cout.flush();
    }

  private:
    std::mutex mutex_;
};

int
parsePositiveArg(const std::string& flag, const char* value)
{
    if (value == nullptr) {
        std::cerr << "qassertd: " << flag << " needs a value\n";
        std::exit(2);
    }
    const int parsed = std::atoi(value);
    if (parsed <= 0) {
        std::cerr << "qassertd: " << flag << " must be positive, got '"
                  << value << "'\n";
        std::exit(2);
    }
    return parsed;
}

/**
 * `--replay PATH`: serve/replay.hpp does the work; this wrapper maps
 * the report to exit codes. Drain handlers are installed by main()
 * *before* this runs — the fix for the drain-mid-replay race: a
 * SIGTERM/SIGINT used to hit default dispositions and kill the process
 * mid-replay (possibly mid-line); now the replay loop polls the signal
 * flag between jobs and aborts cleanly, journal intact, exit code 3.
 */
int
replayJournalCli(const std::string& path)
{
    ReplayOptions options;
    options.cancel = &g_signal;
    ReplayReport report;
    try {
        report = replayJournal(path, std::cout, std::cerr, options);
    } catch (const UserError& err) {
        std::cerr << "qassertd: replay failed: " << err.what() << "\n";
        return 1;
    }
    switch (report.status) {
    case ReplayStatus::kOk: return 0;
    case ReplayStatus::kHashMismatch: return 1;
    case ReplayStatus::kInterrupted: return 3;
    }
    return 1;
}

/**
 * `--explain PATH`: parse a QASM file ("-" = stdin), print the circuit
 * classification, per-backend capability verdicts, and the routing
 * decision to stdout — without executing a single shot.
 */
int
explainFile(const std::string& path, bool auto_assert)
{
    std::string text;
    if (path == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        text = buffer.str();
    } else {
        std::ifstream in(path);
        if (!in) {
            std::cerr << "qassertd: cannot open '" << path << "'\n";
            return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    }
    try {
        std::vector<QasmPos> positions;
        const QuantumCircuit circuit = parseQasm(text, &positions);
        if (auto_assert) {
            // Compile first, route the instrumented variant 0: that is
            // the circuit an auto_assert run actually executes.
            const acomp::CompiledProgram compiled =
                acomp::autoAssert(circuit, acomp::AcompOptions{},
                                  &positions);
            std::cout << acomp::formatLoweringTable(compiled);
            std::cout << backend::explainRouting(compiled.variants[0],
                                                 SimOptions{});
        } else {
            std::cout << backend::explainRouting(circuit, SimOptions{});
        }
    } catch (const UserError& err) {
        std::cerr << "qassertd: " << err.what() << "\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    SchedulerOptions options;
    std::string journal_path;
    std::string replay_path;
    std::string explain_path;
    std::string listen_spec;
    std::string port_file;
    bool auto_assert = false;
    size_t max_line = size_t(1) << 20;
    size_t sync_every = 8;
    double drain_ms = 30000.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--workers") {
            options.workers = parsePositiveArg(arg, value);
            ++i;
        } else if (arg == "--queue") {
            options.queue_capacity =
                size_t(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--cache") {
            if (value == nullptr) {
                std::cerr << "qassertd: --cache needs a value\n";
                return 2;
            }
            options.cache_capacity = size_t(std::atoi(value)); // 0 = off
            ++i;
        } else if (arg == "--max-line") {
            max_line = size_t(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--retries") {
            options.retry.max_attempts = parsePositiveArg(arg, value);
            ++i;
        } else if (arg == "--stall-ms") {
            options.supervisor.stall_timeout_ms =
                double(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--breaker") {
            options.breaker.enabled = true;
        } else if (arg == "--auto-assert") {
            auto_assert = true;
        } else if (arg == "--journal") {
            if (value == nullptr) {
                std::cerr << "qassertd: --journal needs a path\n";
                return 2;
            }
            journal_path = value;
            ++i;
        } else if (arg == "--sync-every") {
            sync_every = size_t(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--drain-ms") {
            drain_ms = double(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--listen") {
            if (value == nullptr) {
                std::cerr << "qassertd: --listen needs HOST:PORT "
                             "(port 0 = ephemeral)\n";
                return 2;
            }
            listen_spec = value;
            ++i;
        } else if (arg == "--port-file") {
            if (value == nullptr) {
                std::cerr << "qassertd: --port-file needs a path\n";
                return 2;
            }
            port_file = value;
            ++i;
        } else if (arg == "--replay") {
            if (value == nullptr) {
                std::cerr << "qassertd: --replay needs a path\n";
                return 2;
            }
            replay_path = value;
            ++i;
        } else if (arg == "--explain") {
            if (value == nullptr) {
                std::cerr << "qassertd: --explain needs a path "
                             "(or - for stdin)\n";
                return 2;
            }
            explain_path = value;
            ++i;
        } else if (arg == "--help" || arg == "-h") {
            std::cerr
                << "usage: qassertd [--workers N] [--queue N] [--cache N]"
                   " [--max-line N]\n"
                   "                [--retries N] [--stall-ms X]"
                   " [--breaker] [--auto-assert]\n"
                   "                [--journal PATH] [--sync-every N]"
                   " [--drain-ms X]\n"
                   "                [--listen HOST:PORT] [--port-file "
                   "PATH]\n"
                   "       qassertd --replay PATH\n"
                   "       qassertd --explain PATH   (QASM file, - for "
                   "stdin; routes without executing)\n"
                   "NDJSON requests on stdin, one response line per "
                   "request on stdout (see DESIGN.md Sec. 9/10/11)\n";
            return 0;
        } else {
            std::cerr << "qassertd: unknown option '" << arg << "'\n";
            return 2;
        }
    }

    // Before replay, not just before serving: replay must see drain
    // signals too (clean abort between jobs instead of a default kill).
    installDrainHandlers();

    if (!replay_path.empty()) return replayJournalCli(replay_path);
    if (!explain_path.empty()) {
        return explainFile(explain_path, auto_assert);
    }

    std::unique_ptr<resilience::Journal> journal;
    if (!journal_path.empty()) {
        try {
            resilience::JournalOptions jopts;
            jopts.sync_every = sync_every;
            journal = std::make_unique<resilience::Journal>(journal_path,
                                                            jopts);
        } catch (const UserError& err) {
            std::cerr << "qassertd: " << err.what() << "\n";
            return 2;
        }
    }

    Scheduler scheduler(options);
    LineService::Options service_options;
    service_options.auto_assert = auto_assert;
    LineService service(scheduler, journal.get(), service_options);

    if (!listen_spec.empty()) {
        // TCP front-end: same LineService, sockets instead of stdin.
        SocketServer::Options sopts;
        try {
            const net::Endpoint endpoint = net::parseEndpoint(listen_spec);
            sopts.host = endpoint.host;
            sopts.port = endpoint.port;
        } catch (const UserError& err) {
            std::cerr << "qassertd: " << err.what() << "\n";
            return 2;
        }
        sopts.max_line = max_line;
        SocketServer server(service, sopts);
        std::string error;
        if (!server.start(&error)) {
            std::cerr << "qassertd: " << error << "\n";
            return 2;
        }
        if (!port_file.empty()) {
            std::ofstream pf(port_file);
            pf << server.port() << "\n";
            if (!pf) {
                std::cerr << "qassertd: cannot write port file '"
                          << port_file << "'\n";
                return 2;
            }
        }
        std::cerr << "qassertd: listening on " << sopts.host << ":"
                  << server.port() << " (" << scheduler.workers()
                  << " workers" << (journal ? ", journaled" : "") << ")\n";
        server.run(&g_signal);
        std::cerr << "qassertd: listener stopped ("
                  << server.accepted() << " connections served)\n";
    } else {
        ResponseWriter out;
        std::cerr << "qassertd: ready (" << scheduler.workers()
                  << " workers" << (journal ? ", journaled" : "")
                  << (options.supervisor.stall_timeout_ms > 0.0
                          ? ", supervised"
                          : "")
                  << ")\n";

        std::string line;
        bool shutdown_requested = false;
        while (!shutdown_requested && g_signal == 0) {
            const ReadLineStatus read =
                readLineBounded(std::cin, &line, max_line);
            if (read == ReadLineStatus::kEof) {
                break; // closed pipe, or EINTR from a drain signal
            }
            if (read == ReadLineStatus::kOverflow) {
                out.writeLine(service.overflowError(max_line));
                continue;
            }
            shutdown_requested = !service.handleLine(
                line,
                [&out](const std::string& response) {
                    out.writeLine(response);
                });
        }
    }

    if (g_signal != 0) {
        std::cerr << "qassertd: caught "
                  << (g_signal == SIGTERM ? "SIGTERM" : "SIGINT")
                  << "; draining (bound " << drain_ms << "ms)\n";
    }
    if (!scheduler.drainFor(drain_ms)) {
        std::cerr << "qassertd: drain timed out; cancelling remaining "
                     "jobs\n";
    }
    scheduler.stop();
    if (journal) {
        journal->sync();
        std::cerr << "qassertd: journal flushed ("
                  << journal->recordsWritten() << " records, "
                  << journal->syncsIssued() << " fsyncs)\n";
    }
    const MetricsSnapshot metrics = scheduler.metrics();
    std::cerr << metrics.str();
    return 0;
}
