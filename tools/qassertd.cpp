/**
 * @file
 * qassertd: the assertion service front-end. Speaks newline-delimited
 * JSON over stdin/stdout (protocol: serve/wire.hpp) and drives the
 * in-process Scheduler — batching, priorities, the cross-job result
 * cache, and per-job deadlines all come from there.
 *
 * Usage:
 *   qassertd [--workers N] [--queue N] [--cache N]
 *
 * Behaviour:
 *  - every input line is one request; every response is one line
 *    tagged with the request's id, emitted in completion order;
 *  - admission rejections ({"code":"queue_full"}) are immediate — the
 *    reader never blocks on a full queue, callers are expected to
 *    retry with backoff;
 *  - EOF or {"op":"shutdown"} drains in-flight work and exits 0.
 *
 * Diagnostics (startup banner, shutdown summary) go to stderr so stdout
 * stays a pure response stream.
 */
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>

#include "common/error.hpp"
#include "serve/scheduler.hpp"
#include "serve/wire.hpp"

namespace
{

using namespace qa;
using namespace qa::serve;

/** Serializes response lines from concurrent worker callbacks. */
class ResponseWriter
{
  public:
    void
    writeLine(const std::string& line)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::cout << line << "\n";
        std::cout.flush();
    }

  private:
    std::mutex mutex_;
};

int
parsePositiveArg(const std::string& flag, const char* value)
{
    if (value == nullptr) {
        std::cerr << "qassertd: " << flag << " needs a value\n";
        std::exit(2);
    }
    const int parsed = std::atoi(value);
    if (parsed <= 0) {
        std::cerr << "qassertd: " << flag << " must be positive, got '"
                  << value << "'\n";
        std::exit(2);
    }
    return parsed;
}

} // namespace

int
main(int argc, char** argv)
{
    SchedulerOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--workers") {
            options.workers = parsePositiveArg(arg, value);
            ++i;
        } else if (arg == "--queue") {
            options.queue_capacity =
                size_t(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--cache") {
            if (value == nullptr) {
                std::cerr << "qassertd: --cache needs a value\n";
                return 2;
            }
            options.cache_capacity = size_t(std::atoi(value)); // 0 = off
            ++i;
        } else if (arg == "--help" || arg == "-h") {
            std::cerr << "usage: qassertd [--workers N] [--queue N] "
                         "[--cache N]\n"
                         "NDJSON requests on stdin, one response line "
                         "per request on stdout (see DESIGN.md Sec. 9)\n";
            return 0;
        } else {
            std::cerr << "qassertd: unknown option '" << arg << "'\n";
            return 2;
        }
    }

    Scheduler scheduler(options);
    ResponseWriter out;
    std::cerr << "qassertd: ready (" << scheduler.workers()
              << " workers)\n";

    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

        JsonValue parsed;
        try {
            parsed = JsonValue::parse(line);
        } catch (const UserError& err) {
            out.writeLine(encodeError("", err.code(), err.what()));
            continue;
        }
        const std::string id = requestId(parsed);

        try {
            WireRequest request = buildRequest(parsed);
            if (request.op == RequestOp::kMetrics) {
                out.writeLine(encodeMetrics(scheduler.metrics()));
                continue;
            }
            if (request.op == RequestOp::kShutdown) break;
            scheduler.submit(
                std::move(request.spec), [id, &out](JobResult result) {
                    out.writeLine(encodeResult(id, result));
                });
        } catch (const UserError& err) {
            out.writeLine(encodeError(id, err.code(), err.what()));
        }
    }

    scheduler.drain();
    const MetricsSnapshot metrics = scheduler.metrics();
    std::cerr << metrics.str();
    return 0;
}
