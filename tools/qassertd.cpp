/**
 * @file
 * qassertd: the assertion service front-end. Speaks newline-delimited
 * JSON over stdin/stdout (protocol: serve/wire.hpp) and drives the
 * in-process Scheduler — batching, priorities, the cross-job result
 * cache, per-job deadlines, worker supervision, and transient-failure
 * retries all come from there.
 *
 * Usage:
 *   qassertd [--workers N] [--queue N] [--cache N] [--max-line N]
 *            [--retries N] [--stall-ms X] [--breaker] [--auto-assert]
 *            [--journal PATH] [--sync-every N] [--drain-ms X]
 *   qassertd --replay PATH
 *   qassertd --explain PATH      # classify + route a QASM file, no run
 *
 * --auto-assert defaults every request that does not name the field to
 * {"auto_assert":true}: raw circuits get assertion-compiler invariants
 * discovered, lowered, and checked (serve/job.hpp). Requests that do
 * carry the field keep their own value. Also applies to --explain.
 *
 * Behaviour:
 *  - every input line is one request; every response is one line
 *    tagged with the request's id, emitted in completion order;
 *  - input lines are bounded (--max-line, default 1 MiB); an oversize
 *    line is consumed and rejected with {"code":"bad_request"} without
 *    ever being buffered whole;
 *  - admission rejections ({"code":"queue_full"}, {"code":"shedding"})
 *    are immediate — the reader never blocks on a full queue, callers
 *    are expected to retry with backoff;
 *  - with --journal, every admitted run request is appended to a
 *    crash-safe NDJSON journal *before* it enters the scheduler, and a
 *    completion record (with the result's payload hash) follows when it
 *    resolves — `--replay` re-executes the journal deterministically
 *    (exit 0 bit-identical, 1 mismatch, 3 cleanly cancelled by a drain
 *    signal);
 *  - {"op":"ping"} is answered on the read loop with queue depth and
 *    in-flight count — the fleet router's health probe;
 *  - SIGTERM/SIGINT, EOF, or {"op":"shutdown"} stop admission, drain
 *    in-flight work (bounded by --drain-ms), flush the journal, and
 *    exit 0 after printing a final metrics summary.
 *
 * Diagnostics (startup banner, shutdown summary) go to stderr so stdout
 * stays a pure response stream.
 */
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>

#include "acomp/compiler.hpp"
#include "backend/router.hpp"
#include "circuit/qasm.hpp"
#include "common/error.hpp"
#include "resilience/journal.hpp"
#include "serve/replay.hpp"
#include "serve/scheduler.hpp"
#include "serve/wire.hpp"

namespace
{

using namespace qa;
using namespace qa::serve;

volatile std::sig_atomic_t g_signal = 0;

extern "C" void
onDrainSignal(int sig)
{
    g_signal = sig;
}

/**
 * Install SIGTERM/SIGINT handlers *without* SA_RESTART, so the blocking
 * stdin read fails with EINTR and the main loop falls through to the
 * graceful-drain path instead of dying mid-job.
 */
void
installDrainHandlers()
{
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = onDrainSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);
}

/** Serializes response lines from concurrent worker callbacks. */
class ResponseWriter
{
  public:
    void
    writeLine(const std::string& line)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::cout << line << "\n";
        std::cout.flush();
    }

  private:
    std::mutex mutex_;
};

int
parsePositiveArg(const std::string& flag, const char* value)
{
    if (value == nullptr) {
        std::cerr << "qassertd: " << flag << " needs a value\n";
        std::exit(2);
    }
    const int parsed = std::atoi(value);
    if (parsed <= 0) {
        std::cerr << "qassertd: " << flag << " must be positive, got '"
                  << value << "'\n";
        std::exit(2);
    }
    return parsed;
}

/**
 * `--replay PATH`: serve/replay.hpp does the work; this wrapper maps
 * the report to exit codes. Drain handlers are installed by main()
 * *before* this runs — the fix for the drain-mid-replay race: a
 * SIGTERM/SIGINT used to hit default dispositions and kill the process
 * mid-replay (possibly mid-line); now the replay loop polls the signal
 * flag between jobs and aborts cleanly, journal intact, exit code 3.
 */
int
replayJournalCli(const std::string& path)
{
    ReplayOptions options;
    options.cancel = &g_signal;
    ReplayReport report;
    try {
        report = replayJournal(path, std::cout, std::cerr, options);
    } catch (const UserError& err) {
        std::cerr << "qassertd: replay failed: " << err.what() << "\n";
        return 1;
    }
    switch (report.status) {
    case ReplayStatus::kOk: return 0;
    case ReplayStatus::kHashMismatch: return 1;
    case ReplayStatus::kInterrupted: return 3;
    }
    return 1;
}

/**
 * `--explain PATH`: parse a QASM file ("-" = stdin), print the circuit
 * classification, per-backend capability verdicts, and the routing
 * decision to stdout — without executing a single shot.
 */
int
explainFile(const std::string& path, bool auto_assert)
{
    std::string text;
    if (path == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        text = buffer.str();
    } else {
        std::ifstream in(path);
        if (!in) {
            std::cerr << "qassertd: cannot open '" << path << "'\n";
            return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    }
    try {
        std::vector<QasmPos> positions;
        const QuantumCircuit circuit = parseQasm(text, &positions);
        if (auto_assert) {
            // Compile first, route the instrumented variant 0: that is
            // the circuit an auto_assert run actually executes.
            const acomp::CompiledProgram compiled =
                acomp::autoAssert(circuit, acomp::AcompOptions{},
                                  &positions);
            std::cout << acomp::formatLoweringTable(compiled);
            std::cout << backend::explainRouting(compiled.variants[0],
                                                 SimOptions{});
        } else {
            std::cout << backend::explainRouting(circuit, SimOptions{});
        }
    } catch (const UserError& err) {
        std::cerr << "qassertd: " << err.what() << "\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    SchedulerOptions options;
    std::string journal_path;
    std::string replay_path;
    std::string explain_path;
    bool auto_assert = false;
    size_t max_line = size_t(1) << 20;
    size_t sync_every = 8;
    double drain_ms = 30000.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--workers") {
            options.workers = parsePositiveArg(arg, value);
            ++i;
        } else if (arg == "--queue") {
            options.queue_capacity =
                size_t(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--cache") {
            if (value == nullptr) {
                std::cerr << "qassertd: --cache needs a value\n";
                return 2;
            }
            options.cache_capacity = size_t(std::atoi(value)); // 0 = off
            ++i;
        } else if (arg == "--max-line") {
            max_line = size_t(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--retries") {
            options.retry.max_attempts = parsePositiveArg(arg, value);
            ++i;
        } else if (arg == "--stall-ms") {
            options.supervisor.stall_timeout_ms =
                double(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--breaker") {
            options.breaker.enabled = true;
        } else if (arg == "--auto-assert") {
            auto_assert = true;
        } else if (arg == "--journal") {
            if (value == nullptr) {
                std::cerr << "qassertd: --journal needs a path\n";
                return 2;
            }
            journal_path = value;
            ++i;
        } else if (arg == "--sync-every") {
            sync_every = size_t(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--drain-ms") {
            drain_ms = double(parsePositiveArg(arg, value));
            ++i;
        } else if (arg == "--replay") {
            if (value == nullptr) {
                std::cerr << "qassertd: --replay needs a path\n";
                return 2;
            }
            replay_path = value;
            ++i;
        } else if (arg == "--explain") {
            if (value == nullptr) {
                std::cerr << "qassertd: --explain needs a path "
                             "(or - for stdin)\n";
                return 2;
            }
            explain_path = value;
            ++i;
        } else if (arg == "--help" || arg == "-h") {
            std::cerr
                << "usage: qassertd [--workers N] [--queue N] [--cache N]"
                   " [--max-line N]\n"
                   "                [--retries N] [--stall-ms X]"
                   " [--breaker] [--auto-assert]\n"
                   "                [--journal PATH] [--sync-every N]"
                   " [--drain-ms X]\n"
                   "       qassertd --replay PATH\n"
                   "       qassertd --explain PATH   (QASM file, - for "
                   "stdin; routes without executing)\n"
                   "NDJSON requests on stdin, one response line per "
                   "request on stdout (see DESIGN.md Sec. 9/10/11)\n";
            return 0;
        } else {
            std::cerr << "qassertd: unknown option '" << arg << "'\n";
            return 2;
        }
    }

    // Before replay, not just before serving: replay must see drain
    // signals too (clean abort between jobs instead of a default kill).
    installDrainHandlers();

    if (!replay_path.empty()) return replayJournalCli(replay_path);
    if (!explain_path.empty()) {
        return explainFile(explain_path, auto_assert);
    }

    std::unique_ptr<resilience::Journal> journal;
    if (!journal_path.empty()) {
        try {
            resilience::JournalOptions jopts;
            jopts.sync_every = sync_every;
            journal = std::make_unique<resilience::Journal>(journal_path,
                                                            jopts);
        } catch (const UserError& err) {
            std::cerr << "qassertd: " << err.what() << "\n";
            return 2;
        }
    }

    Scheduler scheduler(options);
    ResponseWriter out;
    std::cerr << "qassertd: ready (" << scheduler.workers() << " workers"
              << (journal ? ", journaled" : "")
              << (options.supervisor.stall_timeout_ms > 0.0 ? ", supervised"
                                                            : "")
              << ")\n";

    uint64_t journal_seq = 0;
    std::string line;
    bool shutdown_requested = false;
    while (!shutdown_requested && g_signal == 0) {
        const ReadLineStatus read =
            readLineBounded(std::cin, &line, max_line);
        if (read == ReadLineStatus::kEof) {
            break; // closed pipe, or EINTR from a drain signal
        }
        if (read == ReadLineStatus::kOverflow) {
            out.writeLine(encodeError(
                "", ErrorCode::kBadRequest,
                "input line exceeds the " + std::to_string(max_line) +
                    "-byte bound; request rejected unread"));
            continue;
        }
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

        JsonValue parsed;
        try {
            parsed = JsonValue::parse(line);
        } catch (const UserError& err) {
            out.writeLine(encodeError("", err.code(), err.what()));
            continue;
        }
        const std::string id = requestId(parsed);

        try {
            WireRequest request = buildRequest(parsed);
            // --auto-assert is a default, not an override: requests
            // that name the field (either value) keep their own.
            if (auto_assert && parsed.find("auto_assert") == nullptr) {
                request.spec.auto_assert = true;
            }
            if (request.op == RequestOp::kPing) {
                // Answered on the read loop, never queued: the fleet
                // router's health prober needs pongs even when every
                // worker is busy and the queue is full.
                out.writeLine(encodePing(id, scheduler.queueDepth(),
                                         scheduler.inFlight()));
                continue;
            }
            if (request.op == RequestOp::kMetrics) {
                out.writeLine(encodeMetrics(scheduler.metrics()));
                continue;
            }
            if (request.op == RequestOp::kExplain) {
                // Route without executing: same analysis the scheduler
                // path runs, zero shots.
                SimOptions sim;
                sim.shots = request.spec.shots;
                sim.seed = request.spec.seed;
                sim.noise = request.spec.noise.enabled()
                                ? &request.spec.noise
                                : nullptr;
                sim.backend = request.spec.backend;
                if (request.spec.auto_assert) {
                    // Compile, then route the instrumented variant 0 —
                    // the circuit an auto_assert run would execute.
                    // kUnsupportedAssertion propagates to the outer
                    // catch and becomes a typed error line.
                    acomp::AcompOptions aopts;
                    aopts.lowering = request.spec.assert_lowering;
                    aopts.backend = request.spec.backend;
                    const acomp::CompiledProgram compiled =
                        acomp::autoAssert(
                            request.spec.circuit, aopts,
                            request.spec.qasm_positions.empty()
                                ? nullptr
                                : &request.spec.qasm_positions);
                    out.writeLine(encodeExplain(
                        id,
                        backend::routeShots(compiled.variants[0], sim),
                        &compiled));
                    continue;
                }
                out.writeLine(encodeExplain(
                    id,
                    backend::routeShots(request.spec.circuit, sim)));
                continue;
            }
            if (request.op == RequestOp::kShutdown) {
                shutdown_requested = true;
                continue;
            }
            const uint64_t seq = journal_seq++;
            // Write-ahead: the accept record hits the journal before
            // the scheduler sees the job, so a crash between the two
            // replays the job instead of losing it.
            if (journal) journal->appendAccept(seq, line);
            resilience::Journal* journal_raw = journal.get();
            try {
                scheduler.submit(
                    std::move(request.spec),
                    [id, seq, &out, journal_raw](JobResult result) {
                        if (journal_raw != nullptr) {
                            journal_raw->appendComplete(
                                seq, jobStatusName(result.status),
                                payloadHash(result).str());
                        }
                        out.writeLine(encodeResult(id, result));
                    });
            } catch (const UserError&) {
                // Admission refused after the write-ahead record: close
                // the journal entry so replay does not resurrect a job
                // the caller saw rejected.
                if (journal) journal->appendComplete(seq, "rejected", "");
                throw;
            }
        } catch (const UserError& err) {
            // Saturation rejections carry the scheduler's own estimate
            // of when a resubmission could succeed, so routers and
            // well-behaved clients back off instead of hammering.
            out.writeLine(encodeError(id, err.code(), err.what(),
                                      scheduler.retryAfterMsHint(
                                          err.code())));
        }
    }

    if (g_signal != 0) {
        std::cerr << "qassertd: caught "
                  << (g_signal == SIGTERM ? "SIGTERM" : "SIGINT")
                  << "; draining (bound " << drain_ms << "ms)\n";
    }
    if (!scheduler.drainFor(drain_ms)) {
        std::cerr << "qassertd: drain timed out; cancelling remaining "
                     "jobs\n";
    }
    scheduler.stop();
    if (journal) {
        journal->sync();
        std::cerr << "qassertd: journal flushed ("
                  << journal->recordsWritten() << " records, "
                  << journal->syncsIssued() << " fsyncs)\n";
    }
    const MetricsSnapshot metrics = scheduler.metrics();
    std::cerr << metrics.str();
    return 0;
}
