#include "linalg/states.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/eigen.hpp"
#include "linalg/gram_schmidt.hpp"

namespace qa
{

int
qubitCountForDim(size_t dim)
{
    QA_REQUIRE(dim > 0, "dimension must be positive");
    int bits = 0;
    while ((size_t(1) << bits) < dim) ++bits;
    QA_REQUIRE((size_t(1) << bits) == dim,
               "dimension must be a power of two");
    return bits;
}

CMatrix
densityFromPure(const CVector& psi)
{
    CVector v = psi.normalized();
    return CMatrix::outer(v, v);
}

CMatrix
densityFromMixture(const std::vector<CVector>& states,
                   const std::vector<double>& probs)
{
    QA_REQUIRE(!states.empty(), "mixture needs at least one state");
    std::vector<double> p = probs;
    if (p.empty()) {
        p.assign(states.size(), 1.0 / double(states.size()));
    }
    QA_REQUIRE(p.size() == states.size(),
               "probability list length mismatch");
    double total = 0.0;
    for (double x : p) {
        QA_REQUIRE(x >= 0.0, "mixture probabilities must be non-negative");
        total += x;
    }
    QA_REQUIRE(total > 0.0, "mixture probabilities sum to zero");

    const size_t dim = states[0].dim();
    CMatrix rho(dim, dim);
    for (size_t i = 0; i < states.size(); ++i) {
        QA_REQUIRE(states[i].dim() == dim, "mixture dimension mismatch");
        rho += densityFromPure(states[i]) * Complex(p[i] / total, 0.0);
    }
    return rho;
}

CMatrix
partialTrace(const CMatrix& rho, const std::vector<int>& keep)
{
    QA_REQUIRE(rho.rows() == rho.cols(), "density matrix must be square");
    const int n = qubitCountForDim(rho.rows());

    std::vector<bool> kept(n, false);
    for (int q : keep) {
        QA_REQUIRE(q >= 0 && q < n, "partialTrace qubit index out of range");
        QA_REQUIRE(!kept[q], "partialTrace qubit listed twice");
        kept[q] = true;
    }
    std::vector<int> traced;
    for (int q = 0; q < n; ++q) {
        if (!kept[q]) traced.push_back(q);
    }

    const int nk = int(keep.size());
    const int nt = int(traced.size());
    const size_t dim_k = size_t(1) << nk;
    const size_t dim_t = size_t(1) << nt;

    // Compose a full n-qubit index from a kept-subsystem index and a
    // traced-subsystem index. Qubit q occupies bit (n-1-q) of the full
    // index (qubit 0 = MSB).
    auto fullIndex = [&](size_t k_idx, size_t t_idx) {
        size_t full = 0;
        for (int i = 0; i < nk; ++i) {
            size_t bit = (k_idx >> (nk - 1 - i)) & 1;
            full |= bit << (n - 1 - keep[i]);
        }
        for (int i = 0; i < nt; ++i) {
            size_t bit = (t_idx >> (nt - 1 - i)) & 1;
            full |= bit << (n - 1 - traced[i]);
        }
        return full;
    };

    CMatrix out(dim_k, dim_k);
    for (size_t r = 0; r < dim_k; ++r) {
        for (size_t c = 0; c < dim_k; ++c) {
            Complex sum = 0.0;
            for (size_t t = 0; t < dim_t; ++t) {
                sum += rho(fullIndex(r, t), fullIndex(c, t));
            }
            out(r, c) = sum;
        }
    }
    return out;
}

double
purity(const CMatrix& rho)
{
    return (rho * rho).trace().real();
}

double
fidelity(const CVector& psi, const CVector& phi)
{
    return std::norm(psi.normalized().inner(phi.normalized()));
}

double
fidelity(const CMatrix& rho, const CVector& psi)
{
    CVector v = psi.normalized();
    return v.inner(rho * v).real();
}

double
traceDistance(const CMatrix& rho, const CMatrix& sigma)
{
    CMatrix diff = rho - sigma;
    EigenResult eig = eigHermitian(diff);
    double sum = 0.0;
    for (double lambda : eig.values) sum += std::abs(lambda);
    return 0.5 * sum;
}

CVector
randomState(int num_qubits, Rng& rng)
{
    QA_REQUIRE(num_qubits >= 1, "need at least one qubit");
    const size_t dim = size_t(1) << num_qubits;
    CVector v(dim);
    for (size_t i = 0; i < dim; ++i) {
        v[i] = Complex(rng.normal(), rng.normal());
    }
    return v.normalized();
}

CMatrix
randomUnitary(size_t dim, Rng& rng)
{
    std::vector<CVector> cols;
    cols.reserve(dim);
    for (size_t c = 0; c < dim; ++c) {
        CVector v(dim);
        for (size_t i = 0; i < dim; ++i) {
            v[i] = Complex(rng.normal(), rng.normal());
        }
        cols.push_back(v);
    }
    std::vector<CVector> ortho = orthonormalize(cols);
    // Ginibre columns are almost surely independent; regenerate on the
    // measure-zero failure path.
    while (ortho.size() < dim) {
        CVector v(dim);
        for (size_t i = 0; i < dim; ++i) {
            v[i] = Complex(rng.normal(), rng.normal());
        }
        ortho.push_back(v);
        ortho = orthonormalize(ortho);
    }
    return basisToUnitary(ortho);
}

CMatrix
randomDensity(int num_qubits, size_t rank, Rng& rng)
{
    const size_t dim = size_t(1) << num_qubits;
    QA_REQUIRE(rank >= 1 && rank <= dim, "rank out of range");
    std::vector<CVector> raw;
    for (size_t i = 0; i < rank; ++i) {
        raw.push_back(randomState(num_qubits, rng));
    }
    std::vector<CVector> ortho = orthonormalize(raw);
    while (ortho.size() < rank) {
        ortho.push_back(randomState(num_qubits, rng));
        ortho = orthonormalize(ortho);
    }
    std::vector<double> probs;
    for (size_t i = 0; i < rank; ++i) {
        probs.push_back(rng.uniform(0.1, 1.0));
    }
    return densityFromMixture(ortho, probs);
}

} // namespace qa
