/**
 * @file
 * Gram-Schmidt orthonormalization and orthonormal basis completion.
 *
 * Basis completion is the first step of both the SWAP-based and NDD-based
 * precise assertions (Sec. IV-B / V-A): given the asserted state |psi_0>,
 * find an orthonormal basis {|psi_i>} that contains it; U^-1 then maps
 * that basis to the computational basis (Appendix B).
 */
#ifndef QA_LINALG_GRAM_SCHMIDT_HPP
#define QA_LINALG_GRAM_SCHMIDT_HPP

#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace qa
{

/**
 * Orthonormalize a list of vectors with modified Gram-Schmidt.
 *
 * Vectors that are (numerically) linearly dependent on earlier ones are
 * dropped, so the result may be shorter than the input.
 */
std::vector<CVector>
orthonormalize(const std::vector<CVector>& vectors, double eps = 1e-9);

/**
 * Extend an orthonormal (or orthonormalizable) seed set to a complete
 * orthonormal basis of C^dim by sweeping standard basis vectors.
 *
 * The seed vectors (after orthonormalization) come first in the result,
 * preserving their order; the completion fills the remaining dimensions.
 */
std::vector<CVector>
completeBasis(const std::vector<CVector>& seed, size_t dim,
              double eps = 1e-9);

/**
 * Build the unitary whose i-th column is basis[i].
 *
 * With basis completion this is exactly the paper's U: it maps the
 * computational basis state |i> onto |psi_i>, so U^-1 = U^dagger maps
 * |psi_0> back to |0...0> (Appendix B proposition).
 */
CMatrix basisToUnitary(const std::vector<CVector>& basis);

} // namespace qa

#endif // QA_LINALG_GRAM_SCHMIDT_HPP
