#include "linalg/gram_schmidt.hpp"

#include "common/error.hpp"

namespace qa
{

std::vector<CVector>
orthonormalize(const std::vector<CVector>& vectors, double eps)
{
    std::vector<CVector> basis;
    for (const CVector& input : vectors) {
        CVector v = input;
        // Two passes of modified Gram-Schmidt for numerical stability.
        for (int pass = 0; pass < 2; ++pass) {
            for (const CVector& b : basis) {
                v -= b * b.inner(v);
            }
        }
        if (v.norm() > eps) {
            basis.push_back(v.normalized());
        }
    }
    return basis;
}

std::vector<CVector>
completeBasis(const std::vector<CVector>& seed, size_t dim, double eps)
{
    for (const CVector& v : seed) {
        QA_REQUIRE(v.dim() == dim, "seed vector dimension mismatch");
    }
    std::vector<CVector> basis = orthonormalize(seed, eps);
    QA_REQUIRE(basis.size() <= dim, "seed spans more than the space");

    for (size_t i = 0; i < dim && basis.size() < dim; ++i) {
        CVector candidate = CVector::basisState(dim, i);
        for (int pass = 0; pass < 2; ++pass) {
            for (const CVector& b : basis) {
                candidate -= b * b.inner(candidate);
            }
        }
        if (candidate.norm() > eps) {
            basis.push_back(candidate.normalized());
        }
    }
    QA_ASSERT(basis.size() == dim, "basis completion failed to reach dim");
    return basis;
}

CMatrix
basisToUnitary(const std::vector<CVector>& basis)
{
    QA_REQUIRE(!basis.empty(), "empty basis");
    const size_t dim = basis[0].dim();
    QA_REQUIRE(basis.size() == dim, "basis must be complete");
    CMatrix u(dim, dim);
    for (size_t c = 0; c < dim; ++c) {
        QA_REQUIRE(basis[c].dim() == dim, "basis vector dimension mismatch");
        u.setColumn(c, basis[c]);
    }
    QA_ASSERT(u.isUnitary(1e-7), "basis columns are not orthonormal");
    return u;
}

} // namespace qa
