/**
 * @file
 * Dense complex matrix used for gate unitaries and density matrices.
 */
#ifndef QA_LINALG_MATRIX_HPP
#define QA_LINALG_MATRIX_HPP

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "linalg/types.hpp"
#include "linalg/vector.hpp"

namespace qa
{

/**
 * Dense complex matrix, row-major.
 *
 * Sized for quantum work at assertion scale (dimension <= a few hundred):
 * plain O(n^3) multiplication, no blocking. Correctness and clarity over
 * raw speed; the simulators apply gates without materializing full-system
 * matrices, so this class only sees small operands.
 */
class CMatrix
{
  public:
    /** Zero matrix of the given shape. */
    CMatrix(size_t rows = 0, size_t cols = 0)
        : rows_(rows), cols_(cols), data_(rows * cols)
    {}

    /** Construct from nested initializer lists (row by row). */
    CMatrix(std::initializer_list<std::initializer_list<Complex>> rows);

    /** Identity matrix of dimension n. */
    static CMatrix identity(size_t n);

    /** Outer product |u><v|. */
    static CMatrix outer(const CVector& u, const CVector& v);

    /** Diagonal matrix from the given entries. */
    static CMatrix diagonal(const std::vector<Complex>& entries);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    Complex& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
    const Complex&
    operator()(size_t r, size_t c) const
    {
        return data_[r * cols_ + c];
    }

    CMatrix operator+(const CMatrix& rhs) const;
    CMatrix operator-(const CMatrix& rhs) const;
    CMatrix operator*(const CMatrix& rhs) const;
    CMatrix operator*(Complex scalar) const;
    CMatrix& operator+=(const CMatrix& rhs);
    CMatrix& operator*=(Complex scalar);

    /** Matrix-vector product. */
    CVector operator*(const CVector& v) const;

    /** Conjugate transpose. */
    CMatrix dagger() const;

    /** Transpose without conjugation. */
    CMatrix transpose() const;

    /** Entry-wise complex conjugate. */
    CMatrix conjugate() const;

    /** Tensor (Kronecker) product: this (x) rhs. */
    CMatrix tensor(const CMatrix& rhs) const;

    /** Trace (requires square). */
    Complex trace() const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** True if this * this^dagger ~= I. */
    bool isUnitary(double eps = kLooseEps) const;

    /** True if this ~= this^dagger. */
    bool isHermitian(double eps = kLooseEps) const;

    /** True if square, Hermitian, unit trace, and PSD eigenvalues. */
    bool isDensityMatrix(double eps = 1e-6) const;

    /** Entry-wise approximate equality. */
    bool approxEquals(const CMatrix& other, double eps = kLooseEps) const;

    /**
     * Approximate equality up to global phase: whether there is a
     * unit-modulus c with this ~= c * other.
     */
    bool equalsUpToPhase(const CMatrix& other, double eps = kLooseEps) const;

    /** Extract column c as a vector. */
    CVector column(size_t c) const;

    /** Extract row r as a vector (not conjugated). */
    CVector row(size_t r) const;

    /** Set column c from a vector. */
    void setColumn(size_t c, const CVector& v);

    /** Multi-line human-readable rendering. */
    std::string toString(int precision = 4) const;

  private:
    size_t rows_;
    size_t cols_;
    std::vector<Complex> data_;
};

/** Left scalar multiplication. */
inline CMatrix
operator*(Complex scalar, const CMatrix& m)
{
    return m * scalar;
}

/** Kronecker product convenience wrapper. */
inline CMatrix
kron(const CMatrix& a, const CMatrix& b)
{
    return a.tensor(b);
}

} // namespace qa

#endif // QA_LINALG_MATRIX_HPP
