/**
 * @file
 * Quantum-state utilities on top of the raw linear algebra: density
 * matrices, partial trace, fidelity measures, and random-state generation.
 *
 * Qubit ordering convention (used consistently across qassert): qubit 0 is
 * the most significant bit of a basis index, matching the paper's ket
 * notation |q0 q1 q2>.
 */
#ifndef QA_LINALG_STATES_HPP
#define QA_LINALG_STATES_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace qa
{

/** Number of qubits for a dimension that must be a power of two. */
int qubitCountForDim(size_t dim);

/** Density matrix |psi><psi| of a pure state (normalizes the input). */
CMatrix densityFromPure(const CVector& psi);

/** Equal- or given-weight mixture sum_i p_i |psi_i><psi_i|. */
CMatrix densityFromMixture(const std::vector<CVector>& states,
                           const std::vector<double>& probs = {});

/**
 * Partial trace: keep the listed qubits (in the order given) and trace out
 * the rest.
 *
 * @param rho Density matrix over n qubits (dimension 2^n).
 * @param keep Distinct qubit indices in [0, n) to retain.
 * @return Density matrix of dimension 2^keep.size().
 */
CMatrix partialTrace(const CMatrix& rho, const std::vector<int>& keep);

/** Tr(rho^2); 1 for pure states, < 1 for proper mixtures. */
double purity(const CMatrix& rho);

/** |<psi|phi>|^2 for pure states. */
double fidelity(const CVector& psi, const CVector& phi);

/** <psi|rho|psi> for a pure state against a density matrix. */
double fidelity(const CMatrix& rho, const CVector& psi);

/** Trace distance (1/2)||rho - sigma||_1 between density matrices. */
double traceDistance(const CMatrix& rho, const CMatrix& sigma);

/** Haar-ish random pure state of n qubits (Gaussian amplitudes). */
CVector randomState(int num_qubits, Rng& rng);

/** Random unitary of the given dimension (QR of a Ginibre matrix). */
CMatrix randomUnitary(size_t dim, Rng& rng);

/**
 * Random rank-t density matrix over n qubits: t Haar-ish random pure
 * states mixed with random weights after orthonormalization.
 */
CMatrix randomDensity(int num_qubits, size_t rank, Rng& rng);

} // namespace qa

#endif // QA_LINALG_STATES_HPP
