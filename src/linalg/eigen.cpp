#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace qa
{

namespace
{

/** Sum of squared magnitudes of strictly-off-diagonal entries. */
double
offDiagonalNormSq(const CMatrix& a)
{
    double sum = 0.0;
    for (size_t r = 0; r < a.rows(); ++r) {
        for (size_t c = 0; c < a.cols(); ++c) {
            if (r != c) sum += std::norm(a(r, c));
        }
    }
    return sum;
}

} // namespace

EigenResult
eigHermitian(const CMatrix& a, double eps)
{
    QA_REQUIRE(a.rows() == a.cols(), "eigHermitian requires a square matrix");
    QA_REQUIRE(a.isHermitian(1e-8), "eigHermitian requires a Hermitian matrix");

    const size_t n = a.rows();
    CMatrix m = a;
    CMatrix v = CMatrix::identity(n);

    const int max_sweeps = 100;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        if (offDiagonalNormSq(m) < eps * eps) break;
        for (size_t p = 0; p < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                Complex b = m(p, q);
                double bmag = std::abs(b);
                if (bmag < 1e-300) continue;
                double phi = std::arg(b);
                double app = m(p, p).real();
                double aqq = m(q, q).real();
                double theta = 0.5 * std::atan2(2.0 * bmag, app - aqq);
                double c = std::cos(theta);
                double s = std::sin(theta);
                Complex e_pos(std::cos(phi), std::sin(phi));
                Complex e_neg = std::conj(e_pos);

                // Column update: M <- M J, V <- V J where
                // J[p][p]=c, J[q][p]=s*e^{-i phi},
                // J[p][q]=-s*e^{i phi}, J[q][q]=c.
                for (size_t i = 0; i < n; ++i) {
                    Complex mp = m(i, p), mq = m(i, q);
                    m(i, p) = c * mp + s * e_neg * mq;
                    m(i, q) = -s * e_pos * mp + c * mq;
                    Complex vp = v(i, p), vq = v(i, q);
                    v(i, p) = c * vp + s * e_neg * vq;
                    v(i, q) = -s * e_pos * vp + c * vq;
                }
                // Row update: M <- J^dagger M.
                for (size_t j = 0; j < n; ++j) {
                    Complex mp = m(p, j), mq = m(q, j);
                    m(p, j) = c * mp + s * e_pos * mq;
                    m(q, j) = -s * e_neg * mp + c * mq;
                }
            }
        }
    }

    QA_ASSERT(offDiagonalNormSq(m) < 1e-16 || offDiagonalNormSq(m) < eps,
              "Jacobi eigendecomposition did not converge");

    // Sort eigenpairs by descending eigenvalue.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t i, size_t j) {
        return m(i, i).real() > m(j, j).real();
    });

    EigenResult result;
    result.values.resize(n);
    result.vectors = CMatrix(n, n);
    for (size_t k = 0; k < n; ++k) {
        result.values[k] = m(order[k], order[k]).real();
        result.vectors.setColumn(k, v.column(order[k]));
    }
    return result;
}

size_t
rankPsd(const CMatrix& a, double eps)
{
    EigenResult eig = eigHermitian(a);
    size_t rank = 0;
    for (double lambda : eig.values) {
        if (lambda > eps) ++rank;
    }
    return rank;
}

} // namespace qa
