/**
 * @file
 * Core scalar types and numeric tolerances for the linear-algebra layer.
 */
#ifndef QA_LINALG_TYPES_HPP
#define QA_LINALG_TYPES_HPP

#include <complex>

namespace qa
{

/** Complex scalar used throughout qassert. */
using Complex = std::complex<double>;

/** Default absolute tolerance for floating-point comparisons. */
inline constexpr double kEps = 1e-9;

/** Looser tolerance for quantities accumulated over many operations. */
inline constexpr double kLooseEps = 1e-7;

/** The imaginary unit. */
inline constexpr Complex kI{0.0, 1.0};

/** True if |a - b| <= eps. */
inline bool
approxEqual(double a, double b, double eps = kEps)
{
    return std::abs(a - b) <= eps;
}

/** True if |a - b| <= eps in the complex plane. */
inline bool
approxEqual(Complex a, Complex b, double eps = kEps)
{
    return std::abs(a - b) <= eps;
}

} // namespace qa

#endif // QA_LINALG_TYPES_HPP
