/**
 * @file
 * Thin singular value decomposition built on the Jacobi Hermitian
 * eigensolver (linalg/eigen.hpp): A = U diag(sigma) V^dagger with only
 * the numerically nonzero singular triplets kept.
 *
 * The MPS backend's two-site updates are the hot caller: the
 * decomposition of the (2*chi_left) x (2*chi_right) theta matrix is what
 * truncation and canonicalization are made of. The implementation
 * diagonalizes the smaller Gram matrix (A A^dagger or A^dagger A) and
 * recovers the other factor by projection, so the Jacobi sweep cost is
 * O(min(m,n)^3) rather than O(max(m,n)^3). Deterministic: no RNG, no
 * parallelism — safe for the router/cache determinism contract.
 */
#ifndef QA_LINALG_SVD_HPP
#define QA_LINALG_SVD_HPP

#include <vector>

#include "linalg/matrix.hpp"

namespace qa
{

/** Thin SVD: a = u * diag(sigma) * vdag, with rank() kept triplets. */
struct SvdResult
{
    /** m x k matrix of left singular vectors (orthonormal columns). */
    CMatrix u;

    /** The k singular values, descending, all > 0. */
    std::vector<double> sigma;

    /** k x n matrix of conjugated right singular vectors (rows). */
    CMatrix vdag;

    size_t rank() const { return sigma.size(); }
};

/**
 * Decompose `a`, dropping singular values with sigma^2 below
 * `rel_cutoff` times the largest sigma^2 (numerical rank). A zero
 * matrix yields rank 0. Gram-based: small singular values carry
 * roughly half the precision of a direct bidiagonalization, which is
 * ample for Schmidt spectra feeding chi-square-level statistics.
 */
SvdResult svdThin(const CMatrix& a, double rel_cutoff = 1e-24);

} // namespace qa

#endif // QA_LINALG_SVD_HPP
