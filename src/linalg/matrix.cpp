#include "linalg/matrix.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/format.hpp"
#include "linalg/eigen.hpp"

namespace qa
{

CMatrix::CMatrix(std::initializer_list<std::initializer_list<Complex>> rows)
    : rows_(rows.size()), cols_(0)
{
    QA_REQUIRE(rows_ > 0, "matrix initializer must be non-empty");
    cols_ = rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
        QA_REQUIRE(row.size() == cols_, "ragged matrix initializer");
        for (const Complex& x : row) data_.push_back(x);
    }
}

CMatrix
CMatrix::identity(size_t n)
{
    CMatrix m(n, n);
    for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

CMatrix
CMatrix::outer(const CVector& u, const CVector& v)
{
    CMatrix m(u.dim(), v.dim());
    for (size_t r = 0; r < u.dim(); ++r) {
        for (size_t c = 0; c < v.dim(); ++c) {
            m(r, c) = u[r] * std::conj(v[c]);
        }
    }
    return m;
}

CMatrix
CMatrix::diagonal(const std::vector<Complex>& entries)
{
    CMatrix m(entries.size(), entries.size());
    for (size_t i = 0; i < entries.size(); ++i) m(i, i) = entries[i];
    return m;
}

CMatrix
CMatrix::operator+(const CMatrix& rhs) const
{
    CMatrix out(*this);
    out += rhs;
    return out;
}

CMatrix
CMatrix::operator-(const CMatrix& rhs) const
{
    QA_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
               "matrix subtraction shape mismatch");
    CMatrix out(rows_, cols_);
    for (size_t i = 0; i < data_.size(); ++i) {
        out.data_[i] = data_[i] - rhs.data_[i];
    }
    return out;
}

CMatrix
CMatrix::operator*(const CMatrix& rhs) const
{
    QA_REQUIRE(cols_ == rhs.rows_, "matrix multiplication shape mismatch");
    CMatrix out(rows_, rhs.cols_);
    for (size_t r = 0; r < rows_; ++r) {
        for (size_t k = 0; k < cols_; ++k) {
            Complex a = (*this)(r, k);
            if (a == Complex(0.0)) continue;
            for (size_t c = 0; c < rhs.cols_; ++c) {
                out(r, c) += a * rhs(k, c);
            }
        }
    }
    return out;
}

CMatrix
CMatrix::operator*(Complex scalar) const
{
    CMatrix out(*this);
    out *= scalar;
    return out;
}

CMatrix&
CMatrix::operator+=(const CMatrix& rhs)
{
    QA_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
               "matrix addition shape mismatch");
    for (size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
    return *this;
}

CMatrix&
CMatrix::operator*=(Complex scalar)
{
    for (Complex& x : data_) x *= scalar;
    return *this;
}

CVector
CMatrix::operator*(const CVector& v) const
{
    QA_REQUIRE(cols_ == v.dim(), "matrix-vector shape mismatch");
    CVector out(rows_);
    for (size_t r = 0; r < rows_; ++r) {
        Complex sum = 0.0;
        for (size_t c = 0; c < cols_; ++c) sum += (*this)(r, c) * v[c];
        out[r] = sum;
    }
    return out;
}

CMatrix
CMatrix::dagger() const
{
    CMatrix out(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r) {
        for (size_t c = 0; c < cols_; ++c) {
            out(c, r) = std::conj((*this)(r, c));
        }
    }
    return out;
}

CMatrix
CMatrix::transpose() const
{
    CMatrix out(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r) {
        for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    }
    return out;
}

CMatrix
CMatrix::conjugate() const
{
    CMatrix out(rows_, cols_);
    for (size_t i = 0; i < data_.size(); ++i) {
        out.data_[i] = std::conj(data_[i]);
    }
    return out;
}

CMatrix
CMatrix::tensor(const CMatrix& rhs) const
{
    CMatrix out(rows_ * rhs.rows_, cols_ * rhs.cols_);
    for (size_t r = 0; r < rows_; ++r) {
        for (size_t c = 0; c < cols_; ++c) {
            Complex a = (*this)(r, c);
            if (a == Complex(0.0)) continue;
            for (size_t rr = 0; rr < rhs.rows_; ++rr) {
                for (size_t cc = 0; cc < rhs.cols_; ++cc) {
                    out(r * rhs.rows_ + rr, c * rhs.cols_ + cc) =
                        a * rhs(rr, cc);
                }
            }
        }
    }
    return out;
}

Complex
CMatrix::trace() const
{
    QA_REQUIRE(rows_ == cols_, "trace requires a square matrix");
    Complex sum = 0.0;
    for (size_t i = 0; i < rows_; ++i) sum += (*this)(i, i);
    return sum;
}

double
CMatrix::frobeniusNorm() const
{
    double sum = 0.0;
    for (const Complex& x : data_) sum += std::norm(x);
    return std::sqrt(sum);
}

bool
CMatrix::isUnitary(double eps) const
{
    if (rows_ != cols_) return false;
    CMatrix prod = (*this) * dagger();
    return prod.approxEquals(identity(rows_), eps);
}

bool
CMatrix::isHermitian(double eps) const
{
    if (rows_ != cols_) return false;
    return approxEquals(dagger(), eps);
}

bool
CMatrix::isDensityMatrix(double eps) const
{
    if (rows_ != cols_) return false;
    if (!isHermitian(eps)) return false;
    if (std::abs(trace() - Complex(1.0)) > eps) return false;
    EigenResult eig = eigHermitian(*this);
    for (double lambda : eig.values) {
        if (lambda < -eps) return false;
    }
    return true;
}

bool
CMatrix::approxEquals(const CMatrix& other, double eps) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_) return false;
    for (size_t i = 0; i < data_.size(); ++i) {
        if (std::abs(data_[i] - other.data_[i]) > eps) return false;
    }
    return true;
}

bool
CMatrix::equalsUpToPhase(const CMatrix& other, double eps) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_) return false;
    // Find the largest-magnitude entry of `other` to estimate the phase.
    size_t best = 0;
    double best_mag = 0.0;
    for (size_t i = 0; i < data_.size(); ++i) {
        double mag = std::abs(other.data_[i]);
        if (mag > best_mag) {
            best_mag = mag;
            best = i;
        }
    }
    if (best_mag <= eps) return frobeniusNorm() <= eps;
    Complex phase = data_[best] / other.data_[best];
    double pmag = std::abs(phase);
    if (std::abs(pmag - 1.0) > eps) return false;
    for (size_t i = 0; i < data_.size(); ++i) {
        if (std::abs(data_[i] - phase * other.data_[i]) > eps) return false;
    }
    return true;
}

CVector
CMatrix::column(size_t c) const
{
    QA_REQUIRE(c < cols_, "column index out of range");
    CVector v(rows_);
    for (size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
    return v;
}

CVector
CMatrix::row(size_t r) const
{
    QA_REQUIRE(r < rows_, "row index out of range");
    CVector v(cols_);
    for (size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
    return v;
}

void
CMatrix::setColumn(size_t c, const CVector& v)
{
    QA_REQUIRE(c < cols_ && v.dim() == rows_, "setColumn shape mismatch");
    for (size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

std::string
CMatrix::toString(int precision) const
{
    std::ostringstream oss;
    for (size_t r = 0; r < rows_; ++r) {
        oss << "[ ";
        for (size_t c = 0; c < cols_; ++c) {
            oss << formatComplex((*this)(r, c), precision);
            if (c + 1 < cols_) oss << ", ";
        }
        oss << " ]\n";
    }
    return oss.str();
}

} // namespace qa
