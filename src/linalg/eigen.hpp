/**
 * @file
 * Hermitian eigendecomposition via the complex two-sided Jacobi method.
 *
 * This is the numerical core behind the paper's mixed-state machinery
 * (Sec. IV-C / V-B): density matrices are Hermitian PSD, so their
 * eigendecomposition coincides with the SVD the paper describes, and the
 * eigenvectors give the orthonormal "correct"-state basis.
 */
#ifndef QA_LINALG_EIGEN_HPP
#define QA_LINALG_EIGEN_HPP

#include <vector>

#include "linalg/matrix.hpp"

namespace qa
{

/** Result of a Hermitian eigendecomposition: A = V diag(values) V^dagger. */
struct EigenResult
{
    /** Real eigenvalues, sorted in descending order. */
    std::vector<double> values;

    /** Unitary matrix whose columns are the matching eigenvectors. */
    CMatrix vectors;
};

/**
 * Diagonalize a Hermitian matrix with cyclic complex Jacobi sweeps.
 *
 * @param a Hermitian matrix (validated up to tolerance).
 * @param eps Convergence threshold on the off-diagonal Frobenius norm.
 * @return Eigenvalues (descending) and an orthonormal eigenvector matrix.
 */
EigenResult eigHermitian(const CMatrix& a, double eps = 1e-12);

/** Numerical rank of a PSD matrix: eigenvalues above `eps`. */
size_t rankPsd(const CMatrix& a, double eps = 1e-8);

} // namespace qa

#endif // QA_LINALG_EIGEN_HPP
