#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/eigen.hpp"

namespace qa
{

namespace
{

/** Keep eigenpairs with value > rel_cutoff * values[0] (PSD input). */
size_t
numericalRank(const std::vector<double>& values, double rel_cutoff)
{
    if (values.empty() || values[0] <= 0.0) return 0;
    const double floor = values[0] * rel_cutoff;
    size_t rank = 0;
    while (rank < values.size() && values[rank] > floor) ++rank;
    return rank;
}

} // namespace

SvdResult
svdThin(const CMatrix& a, double rel_cutoff)
{
    const size_t m = a.rows();
    const size_t n = a.cols();
    QA_REQUIRE(m > 0 && n > 0, "svdThin needs a non-empty matrix");

    SvdResult out;
    if (m <= n) {
        // Gram on the row side: A A^dagger = U diag(sigma^2) U^dagger.
        const EigenResult eig = eigHermitian(a * a.dagger());
        const size_t k = numericalRank(eig.values, rel_cutoff);
        out.sigma.resize(k);
        out.u = CMatrix(m, k);
        for (size_t j = 0; j < k; ++j) {
            out.sigma[j] = std::sqrt(std::max(eig.values[j], 0.0));
            for (size_t i = 0; i < m; ++i) {
                out.u(i, j) = eig.vectors(i, j);
            }
        }
        // V^dagger = diag(1/sigma) U^dagger A.
        out.vdag = CMatrix(k, n);
        for (size_t j = 0; j < k; ++j) {
            const double inv = 1.0 / out.sigma[j];
            for (size_t c = 0; c < n; ++c) {
                Complex acc = 0.0;
                for (size_t i = 0; i < m; ++i) {
                    acc += std::conj(out.u(i, j)) * a(i, c);
                }
                out.vdag(j, c) = acc * inv;
            }
        }
    } else {
        // Gram on the column side: A^dagger A = V diag(sigma^2) V^dagger.
        const EigenResult eig = eigHermitian(a.dagger() * a);
        const size_t k = numericalRank(eig.values, rel_cutoff);
        out.sigma.resize(k);
        out.vdag = CMatrix(k, n);
        for (size_t j = 0; j < k; ++j) {
            out.sigma[j] = std::sqrt(std::max(eig.values[j], 0.0));
            for (size_t c = 0; c < n; ++c) {
                out.vdag(j, c) = std::conj(eig.vectors(c, j));
            }
        }
        // U = A V diag(1/sigma).
        out.u = CMatrix(m, k);
        for (size_t j = 0; j < k; ++j) {
            const double inv = 1.0 / out.sigma[j];
            for (size_t i = 0; i < m; ++i) {
                Complex acc = 0.0;
                for (size_t c = 0; c < n; ++c) {
                    acc += a(i, c) * eig.vectors(c, j);
                }
                out.u(i, j) = acc * inv;
            }
        }
    }
    return out;
}

} // namespace qa
