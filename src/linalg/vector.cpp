#include "linalg/vector.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/format.hpp"

namespace qa
{

CVector
CVector::basisState(size_t dim, size_t index)
{
    QA_REQUIRE(index < dim, "basis index out of range");
    CVector v(dim);
    v[index] = 1.0;
    return v;
}

double
CVector::norm() const
{
    double sum = 0.0;
    for (const Complex& a : data_) sum += std::norm(a);
    return std::sqrt(sum);
}

CVector
CVector::normalized() const
{
    double n = norm();
    QA_REQUIRE(n > kEps, "cannot normalize a (near-)zero vector");
    return *this * Complex(1.0 / n, 0.0);
}

Complex
CVector::inner(const CVector& other) const
{
    QA_REQUIRE(dim() == other.dim(), "inner product dimension mismatch");
    Complex sum = 0.0;
    for (size_t i = 0; i < dim(); ++i) {
        sum += std::conj(data_[i]) * other[i];
    }
    return sum;
}

CVector
CVector::operator+(const CVector& rhs) const
{
    CVector out(*this);
    out += rhs;
    return out;
}

CVector
CVector::operator-(const CVector& rhs) const
{
    CVector out(*this);
    out -= rhs;
    return out;
}

CVector
CVector::operator*(Complex scalar) const
{
    CVector out(*this);
    out *= scalar;
    return out;
}

CVector&
CVector::operator+=(const CVector& rhs)
{
    QA_REQUIRE(dim() == rhs.dim(), "vector addition dimension mismatch");
    for (size_t i = 0; i < dim(); ++i) data_[i] += rhs[i];
    return *this;
}

CVector&
CVector::operator-=(const CVector& rhs)
{
    QA_REQUIRE(dim() == rhs.dim(), "vector subtraction dimension mismatch");
    for (size_t i = 0; i < dim(); ++i) data_[i] -= rhs[i];
    return *this;
}

CVector&
CVector::operator*=(Complex scalar)
{
    for (Complex& a : data_) a *= scalar;
    return *this;
}

CVector
CVector::tensor(const CVector& rhs) const
{
    CVector out(dim() * rhs.dim());
    for (size_t i = 0; i < dim(); ++i) {
        for (size_t j = 0; j < rhs.dim(); ++j) {
            out[i * rhs.dim() + j] = data_[i] * rhs[j];
        }
    }
    return out;
}

bool
CVector::approxEquals(const CVector& other, double eps) const
{
    if (dim() != other.dim()) return false;
    for (size_t i = 0; i < dim(); ++i) {
        if (std::abs(data_[i] - other[i]) > eps) return false;
    }
    return true;
}

bool
CVector::equalsUpToPhase(const CVector& other, double eps) const
{
    if (dim() != other.dim()) return false;
    // |<this|other>| == |this||other| iff the vectors are parallel.
    Complex ip = inner(other);
    double lhs = std::abs(ip);
    double rhs = norm() * other.norm();
    return std::abs(lhs - rhs) <= eps;
}

std::string
CVector::toString(int precision) const
{
    // Render only in ket notation when the dimension is a power of two.
    size_t d = dim();
    int bits = 0;
    while ((1ULL << bits) < d) ++bits;
    bool is_pow2 = (1ULL << bits) == d;

    std::ostringstream oss;
    bool first = true;
    const double snap = 0.5 * std::pow(10.0, -precision);
    for (size_t i = 0; i < d; ++i) {
        if (std::abs(data_[i]) < snap) continue;
        if (!first) oss << " + ";
        oss << "(" << formatComplex(data_[i], precision) << ")";
        if (is_pow2) {
            oss << "|" << formatBits(i, bits) << ">";
        } else {
            oss << "e" << i;
        }
        first = false;
    }
    if (first) oss << "0";
    return oss.str();
}

} // namespace qa
