/**
 * @file
 * Dense complex vector used for quantum state vectors.
 */
#ifndef QA_LINALG_VECTOR_HPP
#define QA_LINALG_VECTOR_HPP

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "linalg/types.hpp"

namespace qa
{

/**
 * Dense complex column vector.
 *
 * Amplitude ordering follows the usual big-endian qubit convention used in
 * the paper: for an n-qubit state, index i's binary expansion b_{n-1}...b_0
 * lists qubit 0 first (qubit 0 is the most significant bit). Helpers that
 * care about qubit order document it explicitly.
 */
class CVector
{
  public:
    /** Zero vector of the given dimension. */
    explicit CVector(size_t dim = 0) : data_(dim) {}

    /** Construct from an explicit amplitude list. */
    CVector(std::initializer_list<Complex> amps) : data_(amps) {}

    /** Construct from a std::vector of amplitudes. */
    explicit CVector(std::vector<Complex> amps) : data_(std::move(amps)) {}

    /** Computational basis state |index> of the given dimension. */
    static CVector basisState(size_t dim, size_t index);

    size_t dim() const { return data_.size(); }
    Complex& operator[](size_t i) { return data_[i]; }
    const Complex& operator[](size_t i) const { return data_[i]; }
    const std::vector<Complex>& data() const { return data_; }
    std::vector<Complex>& data() { return data_; }

    /** Euclidean (l2) norm. */
    double norm() const;

    /** Scale so the norm is one. Requires a nonzero vector. */
    CVector normalized() const;

    /** Inner product <this|other> (conjugate-linear in this). */
    Complex inner(const CVector& other) const;

    CVector operator+(const CVector& rhs) const;
    CVector operator-(const CVector& rhs) const;
    CVector operator*(Complex scalar) const;
    CVector& operator+=(const CVector& rhs);
    CVector& operator-=(const CVector& rhs);
    CVector& operator*=(Complex scalar);

    /** Tensor product: this (x) rhs. */
    CVector tensor(const CVector& rhs) const;

    /** Entry-wise approximate equality. */
    bool approxEquals(const CVector& other, double eps = kLooseEps) const;

    /**
     * Approximate equality up to a global phase, i.e. whether there is a
     * unit-modulus c with this ~= c * other. Both vectors should be
     * normalized for the tolerance to be meaningful.
     */
    bool equalsUpToPhase(const CVector& other, double eps = kLooseEps) const;

    /** Human-readable rendering, e.g. "(0.7071)|00> + (0.7071)|11>". */
    std::string toString(int precision = 4) const;

  private:
    std::vector<Complex> data_;
};

/** Left scalar multiplication. */
inline CVector
operator*(Complex scalar, const CVector& v)
{
    return v * scalar;
}

} // namespace qa

#endif // QA_LINALG_VECTOR_HPP
