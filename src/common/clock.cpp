#include "common/clock.hpp"

namespace qa
{

namespace
{

class RealSteadyClock : public Clock
{
  public:
    TimePoint
    now() const override
    {
        return std::chrono::steady_clock::now();
    }
};

} // namespace

Clock&
steadyClock()
{
    static RealSteadyClock clock;
    return clock;
}

} // namespace qa
