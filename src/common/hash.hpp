/**
 * @file
 * Order-sensitive structural hashing for cache keys.
 *
 * The serve layer keys its cross-job result cache on a canonical hash of
 * (circuit, noise model, execution options). Collisions silently return
 * the wrong cached Counts, so the key is 128 bits: two independent
 * splitmix64-based accumulators whose joint collision probability is
 * negligible at any realistic cache size. Hashing is structural and
 * deterministic across runs and platforms with IEEE-754 doubles — no
 * pointers, no iteration-order dependence, no address-seeded state.
 */
#ifndef QA_COMMON_HASH_HPP
#define QA_COMMON_HASH_HPP

#include <bit>
#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>

#include "common/rng.hpp"

namespace qa
{

/** 128-bit structural fingerprint (value type, usable as a map key). */
struct Hash128
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool
    operator==(const Hash128& rhs) const
    {
        return hi == rhs.hi && lo == rhs.lo;
    }

    bool operator!=(const Hash128& rhs) const { return !(*this == rhs); }

    /** Render as 32 hex digits (for logs and wire responses). */
    std::string
    str() const
    {
        std::ostringstream oss;
        oss << std::hex << std::setfill('0') << std::setw(16) << hi
            << std::setw(16) << lo;
        return oss.str();
    }
};

/** std::unordered_map hasher for Hash128 keys. */
struct Hash128Hasher
{
    size_t
    operator()(const Hash128& h) const
    {
        // hi already has full avalanche; fold in lo cheaply.
        return size_t(h.hi ^ (h.lo * 0x9E3779B97F4A7C15ULL));
    }
};

/**
 * Incremental structural hasher. Absorb the fields of a structure in a
 * fixed documented order; equal structures yield equal digests, and the
 * two lanes are decorrelated so a collision in one is independent of the
 * other.
 */
class HashStream
{
  public:
    explicit HashStream(uint64_t seed = 0)
        : a_(splitmix64(seed ^ 0x7061737331ULL)),
          b_(splitmix64(seed ^ 0x7061737332ULL))
    {}

    HashStream&
    u64(uint64_t v)
    {
        a_ = splitmix64(a_ ^ v);
        b_ = splitmix64(b_ + 0x9E3779B97F4A7C15ULL + v);
        return *this;
    }

    HashStream& i64(int64_t v) { return u64(uint64_t(v)); }

    /** Hash a double by bit pattern; -0.0 is canonicalized to +0.0. */
    HashStream&
    f64(double v)
    {
        if (v == 0.0) v = 0.0; // collapse -0.0 and +0.0
        return u64(std::bit_cast<uint64_t>(v));
    }

    /** Length-prefixed so "ab","c" and "a","bc" differ. */
    HashStream&
    str(const std::string& s)
    {
        u64(s.size());
        uint64_t word = 0;
        int packed = 0;
        for (char c : s) {
            word = (word << 8) | uint64_t(uint8_t(c));
            if (++packed == 8) {
                u64(word);
                word = 0;
                packed = 0;
            }
        }
        if (packed > 0) u64(word);
        return *this;
    }

    Hash128
    digest() const
    {
        return {splitmix64(a_), splitmix64(b_)};
    }

  private:
    uint64_t a_;
    uint64_t b_;
};

} // namespace qa

#endif // QA_COMMON_HASH_HPP
