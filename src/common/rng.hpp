/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in qassert (shot sampling, trajectory noise,
 * random-state generation in tests) draws from an explicitly seeded Rng so
 * that experiments and tests are bit-reproducible.
 */
#ifndef QA_COMMON_RNG_HPP
#define QA_COMMON_RNG_HPP

#include <cstdint>
#include <random>
#include <vector>

namespace qa
{

/**
 * splitmix64 finalizer: a strong 64-bit bit mixer. Used to derive
 * decorrelated seeds for counter-based RNG sub-streams (nearby inputs
 * map to statistically independent outputs).
 */
inline uint64_t
splitmix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/**
 * Seedable random source wrapping a 64-bit Mersenne Twister.
 *
 * Thin value type: copyable, and copies evolve independently, which lets a
 * caller fork reproducible sub-streams for parallel shots.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (no default: determinism by design). */
    explicit Rng(uint64_t seed) : engine_(seed) {}

    /**
     * Counter-based sub-stream: the source for stream `stream` of a run
     * seeded with `seed`. A stream's state depends only on (seed, stream)
     * — never on how many draws other streams consumed — so a parallel
     * shot loop that gives shot i stream i is deterministic regardless of
     * thread count or scheduling.
     */
    static Rng
    forStream(uint64_t seed, uint64_t stream)
    {
        return Rng(splitmix64(seed + 0x9E3779B97F4A7C15ULL * stream));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Standard normal sample. */
    double
    normal()
    {
        return std::normal_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t
    index(uint64_t n)
    {
        return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
    }

    /** Bernoulli trial with success probability p. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    /**
     * Sample an index from an unnormalized non-negative weight vector.
     * Returns weights.size()-1 if rounding pushes the draw past the end.
     */
    size_t
    discrete(const std::vector<double>& weights)
    {
        double total = 0.0;
        for (double w : weights) total += w;
        double draw = uniform() * total;
        double acc = 0.0;
        for (size_t i = 0; i < weights.size(); ++i) {
            acc += weights[i];
            if (draw < acc) return i;
        }
        return weights.empty() ? 0 : weights.size() - 1;
    }

    /** Underlying engine, for std distributions not wrapped above. */
    std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace qa

#endif // QA_COMMON_RNG_HPP
