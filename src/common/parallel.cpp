#include "common/parallel.hpp"

#include <atomic>

namespace qa
{

namespace
{

/** 0 means "use the hardware default". */
std::atomic<int> g_kernel_threads{0};

thread_local int t_serial_depth = 0;

} // namespace

int
kernelThreads()
{
    const int cap = g_kernel_threads.load(std::memory_order_relaxed);
    if (cap > 0) return cap;
    // hardware_concurrency() is a syscall on glibc (~2 us); calling it
    // per gate kernel dominated small-state sweeps (the BENCH_PR1
    // BM_StatevectorLayers 1-CPU regression). The topology never
    // changes mid-process, so resolve it once.
    static const int hw = [] {
        const unsigned n = std::thread::hardware_concurrency();
        return n == 0 ? 1 : int(n);
    }();
    return hw;
}

void
setKernelThreads(int n)
{
    g_kernel_threads.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

bool
inSerialKernelScope()
{
    return t_serial_depth > 0;
}

SerialKernelScope::SerialKernelScope() { ++t_serial_depth; }

SerialKernelScope::~SerialKernelScope() { --t_serial_depth; }

void
FirstException::capture() noexcept
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!first_) {
        first_ = std::current_exception();
        armed_.store(true, std::memory_order_release);
    }
}

void
FirstException::rethrow() const
{
    if (first_) std::rethrow_exception(first_);
}

} // namespace qa
