#include "common/net.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.hpp"

namespace qa
{
namespace net
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

double
remainingMs(SteadyClock::time_point deadline)
{
    return std::chrono::duration<double, std::milli>(deadline -
                                                     SteadyClock::now())
        .count();
}

/** Numeric-IPv4/localhost resolution into a sockaddr_in. */
bool
resolveV4(const std::string& host, int port, sockaddr_in* addr)
{
    std::memset(addr, 0, sizeof(*addr));
    addr->sin_family = AF_INET;
    addr->sin_port = htons(uint16_t(port));
    const std::string name =
        (host.empty() || host == "localhost") ? "127.0.0.1" : host;
    return ::inet_pton(AF_INET, name.c_str(), &addr->sin_addr) == 1;
}

void
setCloexec(int fd)
{
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
}

void
setNodelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/** One poll() bounded by `timeout_ms` (<0 = forever), EINTR retried. */
int
pollOnce(int fd, short events, double timeout_ms)
{
    const bool forever = timeout_ms < 0.0;
    const SteadyClock::time_point deadline =
        SteadyClock::now() +
        std::chrono::duration_cast<SteadyClock::duration>(
            std::chrono::duration<double, std::milli>(
                forever ? 0.0 : timeout_ms));
    for (;;) {
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = events;
        pfd.revents = 0;
        int wait = -1;
        if (!forever) {
            const double left = remainingMs(deadline);
            if (left <= 0.0) return 0;
            wait = int(left) + 1;
        }
        const int r = ::poll(&pfd, 1, wait);
        if (r < 0) {
            if (errno == EINTR) continue;
            return -1;
        }
        if (r == 0) {
            if (forever) continue;
            return 0;
        }
        return 1;
    }
}

} // namespace

Endpoint
parseEndpoint(const std::string& text)
{
    Endpoint ep;
    std::string port_text = text;
    const size_t colon = text.rfind(':');
    if (colon != std::string::npos) {
        ep.host = text.substr(0, colon);
        port_text = text.substr(colon + 1);
    }
    if (ep.host.empty()) ep.host = "127.0.0.1";
    QA_REQUIRE(!port_text.empty() &&
                   port_text.find_first_not_of("0123456789") ==
                       std::string::npos,
               "malformed endpoint '" + text +
                   "' (expected host:port with a numeric port)");
    const long port = std::strtol(port_text.c_str(), nullptr, 10);
    QA_REQUIRE(port >= 0 && port <= 65535,
               "endpoint '" + text + "' port out of range");
    ep.port = int(port);
    return ep;
}

int
tcpListen(const std::string& host, int port, int backlog, int* bound_port,
          std::string* error)
{
    sockaddr_in addr;
    if (!resolveV4(host, port, &addr)) {
        if (error) *error = "cannot resolve host '" + host + "'";
        return -1;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error) *error = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    setCloexec(fd);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        if (error) *error = std::string("bind: ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (::listen(fd, backlog) != 0) {
        if (error) *error = std::string("listen: ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (bound_port != nullptr) {
        sockaddr_in bound;
        socklen_t len = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
            0) {
            *bound_port = int(ntohs(bound.sin_port));
        } else {
            *bound_port = port;
        }
    }
    return fd;
}

int
tcpConnect(const std::string& host, int port, double timeout_ms)
{
    sockaddr_in addr;
    if (!resolveV4(host, port, &addr)) return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    setCloexec(fd);
    if (!setNonBlocking(fd, true)) {
        ::close(fd);
        return -1;
    }
    const int r =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (r != 0) {
        if (errno != EINPROGRESS) {
            ::close(fd);
            return -1;
        }
        if (pollOnce(fd, POLLOUT, timeout_ms) != 1) {
            ::close(fd); // handshake timed out or poll failed
            return -1;
        }
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
            soerr != 0) {
            ::close(fd); // refused, unreachable, reset mid-handshake
            return -1;
        }
    }
    setNodelay(fd);
    return fd; // stays non-blocking: reads/writes are poll-bounded
}

int
tcpAccept(int listen_fd, double timeout_ms)
{
    const int ready = pollOnce(listen_fd, POLLIN, timeout_ms);
    if (ready == 0) return -1;
    if (ready < 0) return -2;
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0) {
            setCloexec(fd);
            setNodelay(fd);
            return fd;
        }
        if (errno == EINTR) continue;
        // The ready connection vanished (peer RST between poll and
        // accept): report as a timeout so the caller's loop re-polls.
        if (errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == ECONNABORTED) {
            return -1;
        }
        return -2;
    }
}

bool
pollReadable(int fd, double timeout_ms)
{
    return pollOnce(fd, POLLIN, timeout_ms) == 1;
}

bool
writeAllBounded(int fd, const char* data, size_t len, double timeout_ms)
{
    if (fd < 0) return false;
    const SteadyClock::time_point deadline =
        SteadyClock::now() +
        std::chrono::duration_cast<SteadyClock::duration>(
            std::chrono::duration<double, std::milli>(
                timeout_ms > 0.0 ? timeout_ms : 0.0));
    size_t off = 0;
    while (off < len) {
        const ssize_t n = ::write(fd, data + off, len - off);
        if (n > 0) {
            off += size_t(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (timeout_ms <= 0.0) return false;
            const double left = remainingMs(deadline);
            if (left <= 0.0) return false; // slow-loris peer: give up
            if (pollOnce(fd, POLLOUT, left) != 1) return false;
            continue;
        }
        return false; // EPIPE/ECONNRESET/...: peer is gone
    }
    return true;
}

void
shutdownWrite(int fd)
{
    if (fd >= 0) ::shutdown(fd, SHUT_WR);
}

void
shutdownBoth(int fd)
{
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void
closeQuiet(int fd)
{
    if (fd >= 0) ::close(fd);
}

bool
setNonBlocking(int fd, bool enabled)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0) return false;
    const int next = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    return ::fcntl(fd, F_SETFL, next) >= 0;
}

} // namespace net
} // namespace qa
