/**
 * @file
 * Formatting helpers: complex numbers, bitstrings, and aligned text tables
 * used by the benchmark harness and the examples to print paper-style rows.
 */
#ifndef QA_COMMON_FORMAT_HPP
#define QA_COMMON_FORMAT_HPP

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

namespace qa
{

/** Format a complex amplitude as "a+bi" with small values snapped to zero. */
std::string formatComplex(std::complex<double> value, int precision = 4);

/** Format integer `value` as an n-bit binary string, MSB first. */
std::string formatBits(uint64_t value, int bits);

/** Format a double with fixed precision. */
std::string formatDouble(double value, int precision = 4);

/** Format a fraction as a percentage string, e.g. "36.2%". */
std::string formatPercent(double fraction, int precision = 1);

/**
 * Minimal aligned text table for paper-style output.
 *
 * Usage:
 *   TextTable t({"Assertion type", "Bug1", "Bug2", "#CX"});
 *   t.addRow({"SWAP-based precise", "True", "True", "10"});
 *   std::cout << t.render();
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Render with column alignment, a header rule, and outer borders. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace qa

#endif // QA_COMMON_FORMAT_HPP
