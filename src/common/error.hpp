/**
 * @file
 * Error-handling primitives shared by every qassert module.
 *
 * Two failure categories, mirroring the gem5 fatal/panic split:
 *  - UserError: the caller violated a documented precondition (bad qubit
 *    index, non-unitary matrix, unassertable state set, ...). Recoverable
 *    by fixing the call site.
 *  - InternalError: a qassert invariant broke; indicates a library bug.
 */
#ifndef QA_COMMON_ERROR_HPP
#define QA_COMMON_ERROR_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace qa
{

/** Exception for caller mistakes (bad arguments, violated preconditions). */
class UserError : public std::runtime_error
{
  public:
    explicit UserError(const std::string& msg)
        : std::runtime_error("qassert user error: " + msg)
    {}
};

/** Exception for broken internal invariants (library bugs). */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string& msg)
        : std::logic_error("qassert internal error: " + msg)
    {}
};

namespace detail
{

/** Builds the exception message with file/line context and throws. */
template <typename Exc>
[[noreturn]] inline void
throwWithContext(const char* file, int line, const std::string& msg)
{
    std::ostringstream oss;
    oss << msg << " [" << file << ":" << line << "]";
    throw Exc(oss.str());
}

} // namespace detail

} // namespace qa

/** Throw qa::UserError when a documented precondition fails. */
#define QA_REQUIRE(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::qa::detail::throwWithContext<::qa::UserError>(                \
                __FILE__, __LINE__, std::string(msg));                      \
        }                                                                   \
    } while (0)

/** Throw qa::InternalError when a library invariant fails. */
#define QA_ASSERT(cond, msg)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::qa::detail::throwWithContext<::qa::InternalError>(            \
                __FILE__, __LINE__, std::string(msg));                      \
        }                                                                   \
    } while (0)

/** Unconditionally throw qa::UserError with a streamed message. */
#define QA_FAIL(msg)                                                        \
    ::qa::detail::throwWithContext<::qa::UserError>(                        \
        __FILE__, __LINE__, std::string(msg))

#endif // QA_COMMON_ERROR_HPP
