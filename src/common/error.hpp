/**
 * @file
 * Error-handling primitives shared by every qassert module.
 *
 * Two failure categories, mirroring the gem5 fatal/panic split:
 *  - UserError: the caller violated a documented precondition (bad qubit
 *    index, non-unitary matrix, unassertable state set, ...). Recoverable
 *    by fixing the call site.
 *  - InternalError: a qassert invariant broke; indicates a library bug.
 *
 * UserErrors additionally carry an ErrorCode so machine consumers (the
 * fault-injection campaign runner, policy drivers, CI harnesses) can
 * classify failures without parsing message text.
 */
#ifndef QA_COMMON_ERROR_HPP
#define QA_COMMON_ERROR_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace qa
{

/**
 * Machine-readable failure classification carried by UserError.
 * Extend rather than reuse: a code's meaning is frozen once tests or
 * campaign reports depend on it.
 */
enum class ErrorCode
{
    kGeneric,           ///< Unclassified precondition failure.
    kBadFaultSite,      ///< Injection site does not address a gate.
    kUnsupportedFault,  ///< Fault kind not applicable to the site.
    kInvalidNoiseModel, ///< Noise model failed validate-on-use.
    kPolicyUnsupported, ///< Recovery policy incompatible with the slots.
    kPolicyExhausted,   ///< Bounded retries used up without a pass.
    kQasmSyntax,        ///< Malformed QASM input.
    kDeadlineExpired,   ///< Deadline elapsed before any work completed.
    kWorkerFailure,     ///< A parallel worker failed; first cause chained.
    kQueueFull,         ///< Service admission queue at capacity.
    kServiceStopped,    ///< Submission to a stopped/stopping service.
    kBadRequest,        ///< Malformed service request (wire protocol).
    kWorkerLost,        ///< Scheduler worker wedged/died while executing.
    kShedding,          ///< Circuit breaker open; load shed at admission.
    kJournalCorrupt,    ///< Journal record damaged beyond the torn tail.
    kNoShardAvailable,  ///< Fleet router found no live shard for a job.
    kUnsupportedAssertion ///< Assertion projector admits no lowering
                          ///< under the requested knobs (acomp).
};

/** Stable human-readable name of an error code. */
const char* errorCodeName(ErrorCode code);

/** Exception for caller mistakes (bad arguments, violated preconditions). */
class UserError : public std::runtime_error
{
  public:
    explicit UserError(const std::string& msg,
                       ErrorCode code = ErrorCode::kGeneric)
        : std::runtime_error("qassert user error: " + msg), code_(code)
    {}

    /** Machine-readable classification of the failure. */
    ErrorCode code() const { return code_; }

  private:
    ErrorCode code_;
};

/** Exception for broken internal invariants (library bugs). */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string& msg)
        : std::logic_error("qassert internal error: " + msg)
    {}
};

namespace detail
{

/** Builds the exception message with file/line context and throws. */
template <typename Exc>
[[noreturn]] inline void
throwWithContext(const char* file, int line, const std::string& msg)
{
    std::ostringstream oss;
    oss << msg << " [" << file << ":" << line << "]";
    throw Exc(oss.str());
}

/** UserError variant preserving the machine-readable code. */
[[noreturn]] inline void
throwUserWithContext(const char* file, int line, ErrorCode code,
                     const std::string& msg)
{
    std::ostringstream oss;
    oss << msg << " [" << file << ":" << line << "]";
    throw UserError(oss.str(), code);
}

} // namespace detail

} // namespace qa

/** Throw qa::UserError when a documented precondition fails. */
#define QA_REQUIRE(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::qa::detail::throwWithContext<::qa::UserError>(                \
                __FILE__, __LINE__, std::string(msg));                      \
        }                                                                   \
    } while (0)

/** QA_REQUIRE carrying a machine-readable ErrorCode. */
#define QA_REQUIRE_CODE(cond, code, msg)                                    \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::qa::detail::throwUserWithContext(__FILE__, __LINE__, (code),  \
                                               std::string(msg));           \
        }                                                                   \
    } while (0)

/** Throw qa::InternalError when a library invariant fails. */
#define QA_ASSERT(cond, msg)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::qa::detail::throwWithContext<::qa::InternalError>(            \
                __FILE__, __LINE__, std::string(msg));                      \
        }                                                                   \
    } while (0)

/** Unconditionally throw qa::UserError with a streamed message. */
#define QA_FAIL(msg)                                                        \
    ::qa::detail::throwWithContext<::qa::UserError>(                        \
        __FILE__, __LINE__, std::string(msg))

/** QA_FAIL carrying a machine-readable ErrorCode. */
#define QA_FAIL_CODE(code, msg)                                             \
    ::qa::detail::throwUserWithContext(__FILE__, __LINE__, (code),          \
                                       std::string(msg))

#endif // QA_COMMON_ERROR_HPP
