/**
 * @file
 * Minimal data-parallel loop support for the simulation kernels.
 *
 * Two knobs cooperate here:
 *  - a process-wide cap on kernel threads (defaults to the hardware
 *    concurrency), and
 *  - a per-thread SerialKernelScope guard that the shot-engine workers
 *    hold, so per-shot evolution never nests a second thread pool inside
 *    the already-parallel shot loop.
 *
 * All loops are exception-safe: an exception thrown inside a worker is
 * captured, every thread is joined, and the first exception (in capture
 * order) is rethrown on the calling thread instead of escaping a
 * std::thread body and terminating the process.
 */
#ifndef QA_COMMON_PARALLEL_HPP
#define QA_COMMON_PARALLEL_HPP

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace qa
{

/**
 * Process-wide cap on threads used by data-parallel kernels.
 * Defaults to std::thread::hardware_concurrency (at least 1).
 */
int kernelThreads();

/** Override the kernel-thread cap; n <= 0 restores the hardware default. */
void setKernelThreads(int n);

/** True while the calling thread must keep kernels serial. */
bool inSerialKernelScope();

/**
 * RAII guard forcing kernels serial on the current thread. Shot-engine
 * workers hold one for their lifetime: the shot loop is the outer
 * parallelism, so the gate kernels it calls must not spawn again.
 */
class SerialKernelScope
{
  public:
    SerialKernelScope();
    ~SerialKernelScope();
    SerialKernelScope(const SerialKernelScope&) = delete;
    SerialKernelScope& operator=(const SerialKernelScope&) = delete;
};

/**
 * First-exception latch for worker pools: every worker funnels its
 * exception through capture(), the pool owner joins and calls rethrow().
 * armed() lets cooperative workers stop pulling work early once a
 * sibling has failed.
 */
class FirstException
{
  public:
    /** Store std::current_exception() if no exception is held yet. */
    void capture() noexcept;

    /** True once any worker captured an exception. */
    bool armed() const { return armed_.load(std::memory_order_acquire); }

    /** Rethrow the stored exception; no-op when none was captured. */
    void rethrow() const;

  private:
    std::mutex mutex_;
    std::exception_ptr first_;
    std::atomic<bool> armed_{false};
};

/**
 * RAII joiner for worker pools: guarantees every thread in the owned
 * vector is joined before the scope unwinds, whichever path exits it.
 * Without this, an exception between spawning and the explicit join —
 * most plausibly std::system_error from a failed thread creation —
 * destroys a vector of joinable threads (std::terminate) while the
 * workers still reference stack state that is being unwound. Declare
 * the joiner immediately after the pool and *after* any state the
 * workers capture, so destruction joins the threads while that state
 * is still alive.
 */
class ThreadJoiner
{
  public:
    explicit ThreadJoiner(std::vector<std::thread>& pool) : pool_(pool) {}

    ~ThreadJoiner() { joinAll(); }

    ThreadJoiner(const ThreadJoiner&) = delete;
    ThreadJoiner& operator=(const ThreadJoiner&) = delete;

    /** Join every joinable thread now; idempotent. */
    void
    joinAll()
    {
        for (std::thread& th : pool_) {
            if (th.joinable()) th.join();
        }
    }

  private:
    std::vector<std::thread>& pool_;
};

/**
 * Split [0, n) into contiguous chunks and run body(begin, end) on up to
 * kernelThreads() threads. Runs one inline call when the range is smaller
 * than `grain`, the cap is 1, or the caller holds a SerialKernelScope.
 * Chunks are disjoint; the body must only write state owned by its chunk.
 * If any chunk throws, all threads are joined and the first exception is
 * rethrown on the calling thread.
 */
template <typename Body>
void
parallelFor(uint64_t n, uint64_t grain, const Body& body)
{
    if (n == 0) return;
    int threads = inSerialKernelScope() ? 1 : kernelThreads();
    if (grain > 0) {
        threads = int(std::min<uint64_t>(uint64_t(std::max(threads, 1)),
                                         std::max<uint64_t>(n / grain, 1)));
    }
    if (threads <= 1) {
        body(uint64_t(0), n);
        return;
    }
    const uint64_t chunk = (n + uint64_t(threads) - 1) / uint64_t(threads);
    FirstException failure;
    std::vector<std::thread> pool;
    ThreadJoiner joiner(pool);
    try {
        pool.reserve(size_t(threads) - 1);
        for (int t = 1; t < threads; ++t) {
            const uint64_t begin = chunk * uint64_t(t);
            const uint64_t end = std::min(n, begin + chunk);
            if (begin >= end) break;
            pool.emplace_back([&body, &failure, begin, end] {
                try {
                    body(begin, end);
                } catch (...) {
                    failure.capture();
                }
            });
        }
        body(uint64_t(0), std::min(n, chunk));
    } catch (...) {
        // Spawn failure or inline-chunk exception: record it, then let
        // the joiner wait for the workers already running before the
        // stack state they reference unwinds.
        failure.capture();
    }
    joiner.joinAll();
    failure.rethrow();
}

} // namespace qa

#endif // QA_COMMON_PARALLEL_HPP
