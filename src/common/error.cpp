#include "common/error.hpp"

namespace qa
{

const char*
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::kGeneric:           return "generic";
      case ErrorCode::kBadFaultSite:      return "bad_fault_site";
      case ErrorCode::kUnsupportedFault:  return "unsupported_fault";
      case ErrorCode::kInvalidNoiseModel: return "invalid_noise_model";
      case ErrorCode::kPolicyUnsupported: return "policy_unsupported";
      case ErrorCode::kPolicyExhausted:   return "policy_exhausted";
      case ErrorCode::kQasmSyntax:        return "qasm_syntax";
      case ErrorCode::kDeadlineExpired:   return "deadline_expired";
      case ErrorCode::kWorkerFailure:     return "worker_failure";
      case ErrorCode::kQueueFull:         return "queue_full";
      case ErrorCode::kServiceStopped:    return "service_stopped";
      case ErrorCode::kBadRequest:        return "bad_request";
      case ErrorCode::kWorkerLost:        return "worker_lost";
      case ErrorCode::kShedding:          return "shedding";
      case ErrorCode::kJournalCorrupt:    return "journal_corrupt";
      case ErrorCode::kNoShardAvailable:  return "no_shard_available";
      case ErrorCode::kUnsupportedAssertion:
          return "unsupported_assertion";
    }
    return "unknown";
}

} // namespace qa
