/**
 * @file
 * Clock abstraction for testable timeouts.
 *
 * Every resilience component that compares "now" against a budget
 * (watchdog stall detection, circuit-breaker cooldowns, retry release
 * times) reads time through a Clock* so tests can drive those decisions
 * with a ManualClock instead of real sleeps. Production code passes
 * nullptr and gets the process-wide steady clock.
 *
 * The abstraction deliberately reuses std::chrono::steady_clock's
 * time_point type: manual time stays directly comparable with instants
 * captured elsewhere (condition-variable deadlines, latency math), and
 * no conversion layer is needed at the call sites.
 */
#ifndef QA_COMMON_CLOCK_HPP
#define QA_COMMON_CLOCK_HPP

#include <atomic>
#include <chrono>
#include <cstdint>

namespace qa
{

/** Monotonic time source; see file comment for why it is virtual. */
class Clock
{
  public:
    using TimePoint = std::chrono::steady_clock::time_point;

    virtual ~Clock() = default;

    /** Current monotonic instant. */
    virtual TimePoint now() const = 0;

    /** Milliseconds elapsed from `since` to now() (never negative). */
    double
    elapsedMs(TimePoint since) const
    {
        const double ms =
            std::chrono::duration<double, std::milli>(now() - since)
                .count();
        return ms < 0.0 ? 0.0 : ms;
    }
};

/** The process-wide real steady clock (what `nullptr` resolves to). */
Clock& steadyClock();

/** Resolve an optional clock pointer to a usable clock. */
inline Clock&
resolveClock(Clock* clock)
{
    return clock != nullptr ? *clock : steadyClock();
}

/**
 * Test clock: starts at the real steady clock's current instant (so
 * manual instants stay ordered against real ones captured nearby) and
 * only moves when advanced. Thread-safe; watchdog threads may read it
 * while the test thread advances it.
 */
class ManualClock : public Clock
{
  public:
    ManualClock() : origin_(std::chrono::steady_clock::now()), offset_ns_(0)
    {}

    TimePoint
    now() const override
    {
        return origin_ +
               std::chrono::nanoseconds(
                   offset_ns_.load(std::memory_order_acquire));
    }

    /** Move time forward by `ms` milliseconds. */
    void
    advanceMs(double ms)
    {
        offset_ns_.fetch_add(int64_t(ms * 1e6), std::memory_order_acq_rel);
    }

  private:
    TimePoint origin_;
    std::atomic<int64_t> offset_ns_;
};

} // namespace qa

#endif // QA_COMMON_CLOCK_HPP
