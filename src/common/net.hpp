/**
 * @file
 * Small POSIX TCP helpers shared by the remote-fleet pieces: the
 * qassertd listen loop (serve/listen.hpp), the router's TCP shard
 * transport (fleet/transport.hpp), and the qa_netchaos fault-injection
 * proxy.
 *
 * Design rules that every user of this file relies on:
 *  - **Everything is bounded.** connect, write, and poll all take a
 *    deadline in milliseconds; nothing here blocks forever on a peer
 *    that stopped cooperating (the exact failure qa_netchaos injects).
 *  - **Errors are return values, not exceptions**, except for caller
 *    mistakes (malformed host:port) which throw UserError. A refused
 *    or timed-out connect is an expected runtime event on a fleet —
 *    the caller backs off and retries; it must not unwind the router.
 *  - **Localhost-first.** Host resolution covers numeric IPv4 and
 *    "localhost"; the fleet protocol is plaintext NDJSON and is meant
 *    for loopback or trusted-network hops only (DESIGN.md Sec. 15).
 */
#ifndef QA_COMMON_NET_HPP
#define QA_COMMON_NET_HPP

#include <cstdint>
#include <string>

namespace qa
{
namespace net
{

/** A parsed "host:port" endpoint. */
struct Endpoint
{
    std::string host = "127.0.0.1";
    int port = 0;

    std::string str() const { return host + ":" + std::to_string(port); }
};

/**
 * Parse "host:port" (host optional: ":9000" and "9000" mean
 * 127.0.0.1). Throws UserError(kBadRequest) on malformed input or a
 * port outside [0, 65535].
 */
Endpoint parseEndpoint(const std::string& text);

/**
 * Bind + listen on `host:port` (port 0 = ephemeral). Returns the
 * listening fd (CLOEXEC, SO_REUSEADDR) and stores the actually bound
 * port in `*bound_port`. Returns -1 with `*error` filled on failure.
 */
int tcpListen(const std::string& host, int port, int backlog,
              int* bound_port, std::string* error);

/**
 * Connect to `host:port` with a bounded handshake (non-blocking
 * connect + poll). Returns a connected fd (CLOEXEC, TCP_NODELAY,
 * left non-blocking) or -1 on refusal/timeout/resolution failure.
 */
int tcpConnect(const std::string& host, int port, double timeout_ms);

/**
 * Accept one connection, waiting at most `timeout_ms` (<0 = forever).
 * Returns the connection fd (CLOEXEC), -1 on timeout, -2 on a real
 * accept error (listener broken), and retries EINTR/transient errors
 * within the deadline.
 */
int tcpAccept(int listen_fd, double timeout_ms);

/** Wait for readability; true when `fd` is readable within the bound.
 * `timeout_ms` < 0 waits forever. EINTR is retried within the bound. */
bool pollReadable(int fd, double timeout_ms);

/**
 * Write all of `data`, tolerating partial writes and EAGAIN on
 * non-blocking fds by polling for writability, bounded by
 * `timeout_ms` (<= 0: a single non-blocking pass must succeed).
 * False when the peer is gone or the deadline passed with bytes
 * still unwritten — the caller treats the stream as dead.
 */
bool writeAllBounded(int fd, const char* data, size_t len,
                     double timeout_ms);

/** Half-close or full-close shutdown that never throws. */
void shutdownWrite(int fd);
void shutdownBoth(int fd);

/** close() that tolerates fd < 0 and EINTR. */
void closeQuiet(int fd);

/** Set/clear O_NONBLOCK; returns false on fcntl failure. */
bool setNonBlocking(int fd, bool enabled);

} // namespace net
} // namespace qa

#endif // QA_COMMON_NET_HPP
