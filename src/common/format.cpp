#include "format.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "error.hpp"

namespace qa
{

std::string
formatComplex(std::complex<double> value, int precision)
{
    const double snap = 0.5 * std::pow(10.0, -precision);
    double re = std::abs(value.real()) < snap ? 0.0 : value.real();
    double im = std::abs(value.imag()) < snap ? 0.0 : value.imag();
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision);
    if (im == 0.0) {
        oss << re;
    } else if (re == 0.0) {
        oss << im << "i";
    } else {
        oss << re << (im < 0 ? "-" : "+") << std::abs(im) << "i";
    }
    return oss.str();
}

std::string
formatBits(uint64_t value, int bits)
{
    std::string out(static_cast<size_t>(bits), '0');
    for (int i = 0; i < bits; ++i) {
        if ((value >> (bits - 1 - i)) & 1ULL) out[i] = '1';
    }
    return out;
}

std::string
formatDouble(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
formatPercent(double fraction, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision)
        << fraction * 100.0 << "%";
    return oss.str();
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    QA_REQUIRE(!header_.empty(), "table header must be non-empty");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    QA_REQUIRE(row.size() == header_.size(),
               "row arity does not match header");
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c) {
        widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto renderRow = [&](const std::vector<std::string>& row) {
        std::ostringstream oss;
        oss << "|";
        for (size_t c = 0; c < row.size(); ++c) {
            oss << " " << row[c]
                << std::string(widths[c] - row[c].size(), ' ') << " |";
        }
        oss << "\n";
        return oss.str();
    };

    std::ostringstream rule;
    rule << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
        rule << std::string(widths[c] + 2, '-') << "+";
    }
    rule << "\n";

    std::ostringstream out;
    out << rule.str() << renderRow(header_) << rule.str();
    for (const auto& row : rows_) out << renderRow(row);
    out << rule.str();
    return out.str();
}

} // namespace qa
