#include "acomp/generator.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/error.hpp"
#include "stab/clifford.hpp"
#include "stab/tableau.hpp"

namespace qa
{
namespace acomp
{

namespace
{

/** Union-find over qubit indices for connectivity grouping. */
struct UnionFind
{
    std::vector<int> parent;

    explicit UnionFind(int n) : parent(size_t(n))
    {
        for (int i = 0; i < n; ++i) parent[size_t(i)] = i;
    }

    int find(int a)
    {
        while (parent[size_t(a)] != a) {
            parent[size_t(a)] = parent[size_t(parent[size_t(a)])];
            a = parent[size_t(a)];
        }
        return a;
    }

    void unite(int a, int b) { parent[size_t(find(a))] = find(b); }
};

/** Scan result over the raw circuit's analyzable Clifford prefix. */
struct PrefixScan
{
    /** First index past the prefix (first measure/reset/non-Clifford). */
    size_t end = 0;

    /** Barrier indices inside the prefix (candidate cuts). */
    std::vector<size_t> barrier_cuts;

    /** Qubits touched by at least one prefix gate, per cut position. */
    std::vector<bool> touched_at_end;
};

PrefixScan
scanPrefix(const QuantumCircuit& raw)
{
    PrefixScan scan;
    scan.touched_at_end.assign(size_t(raw.numQubits()), false);
    const std::vector<Instruction>& instrs = raw.instructions();
    size_t i = 0;
    for (; i < instrs.size(); ++i) {
        const Instruction& instr = instrs[i];
        if (instr.type == OpType::kBarrier) {
            if (i > 0) scan.barrier_cuts.push_back(i);
            continue;
        }
        if (instr.type != OpType::kGate) break;
        if (!recognizeClifford(instr).has_value()) break;
        for (int q : instr.qubits) scan.touched_at_end[size_t(q)] = true;
    }
    scan.end = i;
    return scan;
}

/** Tableau after the prefix instructions in [0, cut). */
StabilizerTableau
tableauAt(const QuantumCircuit& raw, size_t cut)
{
    StabilizerTableau tab(raw.numQubits());
    const std::vector<Instruction>& instrs = raw.instructions();
    for (size_t i = 0; i < cut; ++i) {
        const Instruction& instr = instrs[i];
        if (instr.type == OpType::kBarrier) continue;
        const std::optional<CliffordAction> action =
            recognizeClifford(instr);
        QA_ASSERT(action.has_value(), "prefix scan admitted a gate the "
                                      "tableau cannot apply");
        tab.applyClifford(*action, instr.qubits);
    }
    return tab;
}

/** Restrict a global Pauli to the listed qubits (support must fit). */
PauliString
localizePauli(const PauliString& global, const std::vector<int>& qubits)
{
    PauliString local(int(qubits.size()));
    local.setPhase(global.phase());
    for (size_t j = 0; j < qubits.size(); ++j) {
        local.setX(int(j), global.x(qubits[j]));
        local.setZ(int(j), global.z(qubits[j]));
    }
    return local;
}

/** Build the tableau-derived sites for one cut position. */
std::vector<AssertionSite>
sitesAtCut(const QuantumCircuit& raw, size_t cut)
{
    const int n = raw.numQubits();
    const StabilizerTableau tab = tableauAt(raw, cut);

    std::vector<bool> touched(size_t(n), false);
    for (size_t i = 0; i < cut; ++i) {
        const Instruction& instr = raw.instructions()[i];
        if (instr.type != OpType::kGate) continue;
        for (int q : instr.qubits) touched[size_t(q)] = true;
    }

    // Stabilizer row q is the image of the initial Z_q; untouched rows
    // are still exactly Z_q and carry no information worth asserting.
    UnionFind uf(n);
    std::vector<PauliString> rows;
    std::vector<int> row_qubit;
    for (int q = 0; q < n; ++q) {
        if (!touched[size_t(q)]) continue;
        PauliString row = tab.stabilizer(q);
        for (int p = 0; p < n; ++p) {
            if ((row.x(p) || row.z(p)) && p != q) uf.unite(q, p);
        }
        rows.push_back(std::move(row));
        row_qubit.push_back(q);
    }

    // One site per multi-qubit component; singleton rows pool into one
    // classical and one superposition site per cut.
    std::vector<int> classical_qubits, superpos_qubits;
    std::vector<PauliString> classical_rows, superpos_rows;
    std::map<int, std::vector<size_t>> components;
    for (size_t r = 0; r < rows.size(); ++r) {
        components[uf.find(row_qubit[r])].push_back(r);
    }

    std::vector<AssertionSite> sites;
    for (const auto& [rep, members] : components) {
        if (members.size() == 1) {
            const size_t r = members[0];
            const int q = row_qubit[r];
            if (rows[r].x(q)) {
                superpos_qubits.push_back(q);
                superpos_rows.push_back(rows[r]);
            } else {
                classical_qubits.push_back(q);
                classical_rows.push_back(rows[r]);
            }
            continue;
        }
        AssertionSite site;
        site.position = cut;
        site.invariant = InvariantClass::kEntangled;
        for (const size_t r : members) {
            site.qubits.push_back(row_qubit[r]);
        }
        std::sort(site.qubits.begin(), site.qubits.end());
        for (const size_t r : members) {
            site.generators.push_back(localizePauli(rows[r], site.qubits));
        }
        sites.push_back(std::move(site));
    }
    if (!classical_qubits.empty()) {
        AssertionSite site;
        site.position = cut;
        site.invariant = InvariantClass::kClassical;
        site.qubits = classical_qubits;
        for (const PauliString& row : classical_rows) {
            site.generators.push_back(localizePauli(row, site.qubits));
        }
        sites.push_back(std::move(site));
    }
    if (!superpos_qubits.empty()) {
        AssertionSite site;
        site.position = cut;
        site.invariant = InvariantClass::kSuperposition;
        site.qubits = superpos_qubits;
        for (const PauliString& row : superpos_rows) {
            site.generators.push_back(localizePauli(row, site.qubits));
        }
        sites.push_back(std::move(site));
    }
    return sites;
}

/** True for a 1-qubit Clifford mapping Z -> +X and X -> +Z (H-like). */
bool
isHadamardLike(const CliffordAction& action)
{
    if (action.arity != 1) return false;
    const PauliString& zi = action.z_images[0];
    const PauliString& xi = action.x_images[0];
    return zi.phase() == 0 && zi.x(0) && !zi.z(0) && //
           xi.phase() == 0 && !xi.x(0) && xi.z(0);
}

/**
 * GHZ preparation idiom: a Hadamard-like gate on a fresh qubit feeding
 * a CX fan-out tree onto fresh targets. Returns the site asserting the
 * generators the pattern promises; stray 1-qubit Pauli gates on the
 * entangled qubits are tolerated (and thereby *checked* at runtime
 * instead of absorbed); anything else touching the component vetoes
 * the idiom.
 */
std::optional<AssertionSite>
recognizeGhzIdiom(const QuantumCircuit& raw, size_t prefix_end)
{
    const std::vector<Instruction>& instrs = raw.instructions();
    std::vector<bool> touched(size_t(raw.numQubits()), false);

    // Root: the first Hadamard-like gate landing on a fresh qubit.
    int root = -1;
    size_t start = 0;
    for (size_t i = 0; i < prefix_end; ++i) {
        const Instruction& instr = instrs[i];
        if (instr.type != OpType::kGate) continue;
        if (instr.arity() == 1 && !touched[size_t(instr.qubits[0])]) {
            const std::optional<CliffordAction> action =
                recognizeClifford(instr);
            if (action.has_value() && isHadamardLike(*action)) {
                root = instr.qubits[0];
                start = i;
            }
        }
        for (int q : instr.qubits) touched[size_t(q)] = true;
        if (root >= 0) break;
    }
    if (root < 0) return std::nullopt;

    std::set<int> entangled{root};
    for (size_t i = start + 1; i < prefix_end; ++i) {
        const Instruction& instr = instrs[i];
        if (instr.type != OpType::kGate) continue;
        bool overlap = false;
        for (int q : instr.qubits) overlap |= entangled.count(q) != 0;
        if (!overlap) {
            for (int q : instr.qubits) touched[size_t(q)] = true;
            continue;
        }
        if (instr.name == "cx" && instr.arity() == 2 &&
            entangled.count(instr.qubits[0]) != 0 &&
            entangled.count(instr.qubits[1]) == 0 &&
            !touched[size_t(instr.qubits[1])]) {
            entangled.insert(instr.qubits[1]);
            touched[size_t(instr.qubits[1])] = true;
            continue;
        }
        if (instr.arity() == 1 && (instr.name == "x" ||
                                   instr.name == "y" ||
                                   instr.name == "z")) {
            continue; // Candidate fault: leave it out of the invariant.
        }
        return std::nullopt;
    }
    if (entangled.size() < 2) return std::nullopt;

    AssertionSite site;
    site.position = prefix_end;
    site.invariant = InvariantClass::kEntangled;
    site.qubits.assign(entangled.begin(), entangled.end());
    const int k = int(site.qubits.size());
    int root_local = 0;
    for (int j = 0; j < k; ++j) {
        if (site.qubits[size_t(j)] == root) root_local = j;
    }
    PauliString xall(k);
    for (int j = 0; j < k; ++j) xall.setX(j, true);
    site.generators.push_back(std::move(xall));
    for (int j = 0; j < k; ++j) {
        if (j == root_local) continue;
        PauliString zz(k);
        zz.setZ(root_local, true);
        zz.setZ(j, true);
        site.generators.push_back(std::move(zz));
    }
    return site;
}

/** Anchor a site to the source statement at its insertion point. */
void
anchorSite(AssertionSite& site, const QuantumCircuit& raw,
           const std::vector<QasmPos>* positions)
{
    if (positions == nullptr || positions->empty()) return;
    const size_t idx = std::min(site.position, raw.size() - 1);
    if (idx < positions->size()) {
        site.source_line = (*positions)[idx].line;
        site.source_col = (*positions)[idx].col;
    }
}

} // namespace

std::vector<AssertionSite>
generateAssertions(const QuantumCircuit& raw, const GeneratorOptions& opts,
                   const std::vector<QasmPos>* positions)
{
    QA_REQUIRE(opts.max_slots >= 1, "generator needs max_slots >= 1");
    std::vector<AssertionSite> sites;
    if (raw.numQubits() == 0 || raw.size() == 0) return sites;

    const PrefixScan scan = scanPrefix(raw);
    if (scan.end == 0) return sites;

    std::set<int> idiom_qubits;
    if (opts.idiom_ghz) {
        std::optional<AssertionSite> idiom =
            recognizeGhzIdiom(raw, scan.end);
        if (idiom.has_value()) {
            idiom_qubits.insert(idiom->qubits.begin(),
                                idiom->qubits.end());
            sites.push_back(std::move(*idiom));
        }
    }

    // End-of-prefix cut first (strongest invariants), then barrier cuts
    // from latest to earliest; qubits the idiom claimed stay its own.
    std::vector<size_t> cuts{scan.end};
    if (opts.cut_at_barriers) {
        for (auto it = scan.barrier_cuts.rbegin();
             it != scan.barrier_cuts.rend(); ++it) {
            if (*it != scan.end) cuts.push_back(*it);
        }
    }
    for (const size_t cut : cuts) {
        if (int(sites.size()) >= opts.max_slots) break;
        for (AssertionSite& site : sitesAtCut(raw, cut)) {
            if (int(sites.size()) >= opts.max_slots) break;
            bool claimed = false;
            for (int q : site.qubits) {
                claimed |= idiom_qubits.count(q) != 0;
            }
            if (claimed) continue;
            sites.push_back(std::move(site));
        }
    }

    for (AssertionSite& site : sites) anchorSite(site, raw, positions);
    std::sort(sites.begin(), sites.end(),
              [](const AssertionSite& a, const AssertionSite& b) {
                  if (a.position != b.position) {
                      return a.position < b.position;
                  }
                  return a.qubits < b.qubits;
              });
    return sites;
}

} // namespace acomp
} // namespace qa
