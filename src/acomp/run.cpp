#include "acomp/run.hpp"

#include "common/error.hpp"

namespace qa
{
namespace acomp
{

PolicyOutcome
runLowered(const CompiledProgram& compiled, const SimOptions& options,
           const PolicyOptions& popts)
{
    QA_REQUIRE(!compiled.variants.empty(),
               "runLowered needs a compiled program");
    std::vector<std::vector<int>> slot_clbits;
    for (const SlotSummary& slot : compiled.slots) {
        slot_clbits.push_back(slot.clbits);
    }
    return runVariantsPolicy(compiled.variants, slot_clbits,
                             compiled.program_clbits,
                             compiled.repair_supported, options, popts);
}

} // namespace acomp
} // namespace qa
