/**
 * @file
 * Assertion-compiler vocabulary: the executable lowering forms an
 * assertion slot can take, the assertion sites the compiler consumes,
 * and the stabilizer-generator extraction that decides whether a slot
 * can drop its ancillas entirely.
 *
 * A slot's projector admits up to two families of executable forms:
 *  - the unitary designs of the paper (SWAP Sec. IV, logical-OR
 *    Sec. IV-E, NDD Sec. V), which need ancilla qubits and a synthesized
 *    basis change; and
 *  - Pauli parity measurements (Proq-style projector decomposition,
 *    PAPERS.md 1911.12855): when the correct subspace is a stabilizer
 *    subspace, its projector factors as prod_j (I + S_j)/2 over signed
 *    Pauli generators S_j, each measurable ancilla-free with the
 *    synth/pauli_gadget.hpp parity gadget.
 *
 * The compiler (compiler.hpp) picks among the capable forms with the
 * backend router's cost weights.
 */
#ifndef QA_ACOMP_LOWERING_HPP
#define QA_ACOMP_LOWERING_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/state_set.hpp"
#include "stab/pauli.hpp"

namespace qa
{
namespace acomp
{

/** Executable form a lowered assertion slot took. */
enum class LoweringForm
{
    kSwap,         ///< SWAP-based unitary design (paper Sec. IV).
    kOr,           ///< Logical-OR unitary design (paper Sec. IV-E).
    kNdd,          ///< NDD unitary design (paper Sec. V).
    kPauliMeasure, ///< All stabilizer generators measured inline
                   ///< (ancilla-free, one clbit per generator).
    kPauliSample   ///< One generator per sub-circuit variant, sampled
                   ///< round-robin across shots (one shared clbit).
};

/** Stable wire/log name of a lowering form. */
const char* formName(LoweringForm form);

/** What the caller may request for lowering. */
enum class LoweringRequest
{
    kAuto,         ///< Cost model picks the cheapest capable form.
    kSwap,
    kOr,
    kNdd,
    kPauliMeasure,
    kPauliSample
};

/** Stable wire/log name of a lowering request. */
const char* loweringRequestName(LoweringRequest request);

/** Parse a wire lowering name; returns false on an unknown name. */
bool parseLoweringRequest(const std::string& name, LoweringRequest* out);

/** Invariant class an assertion site checks (quAssert's taxonomy). */
enum class InvariantClass
{
    kUserState,     ///< Caller-supplied StateSet target.
    kClassical,     ///< Qubits deterministically in a basis state.
    kSuperposition, ///< Qubits in |+>/|-> product states.
    kEntangled      ///< Multi-qubit stabilizer invariant (GHZ-like).
};

/** Stable wire/log name of an invariant class. */
const char* invariantClassName(InvariantClass klass);

/**
 * One assertion insertion point the compiler lowers: "before raw
 * instruction `position`, the state of `qubits` satisfies this
 * invariant". Exactly one of `set` (dense target, user sites) or
 * `generators` (signed Pauli stabilizers local over `qubits`,
 * generated sites) describes the invariant; a user site whose subspace
 * is stabilizer gets generators derived on demand.
 */
struct AssertionSite
{
    /** Insert before raw.instructions()[position] (== size: at end). */
    size_t position = 0;

    /** Program qubits under test, ascending. */
    std::vector<int> qubits;

    /** Dense assertion target (null for generated sites). */
    std::shared_ptr<const StateSet> set;

    /** Signed Pauli stabilizer generators, local over `qubits`. */
    std::vector<PauliString> generators;

    /** Invariant class (kUserState for caller-supplied sites). */
    InvariantClass invariant = InvariantClass::kUserState;

    /** Source anchor for diagnostics (0 = unknown). */
    int source_line = 0;
    int source_col = 0;
};

/**
 * Extract signed Pauli stabilizer generators for a correct subspace,
 * local over subspace.n qubits: the subspace is exactly the joint +1
 * eigenspace of the returned generators. Returns nullopt when the
 * subspace is not a stabilizer subspace (then only the unitary designs
 * apply). Three extraction paths, tried in order:
 *  1. affine computational-basis sets: basis indices form a coset
 *     x0 + D of an F2-linear space; generators are (-1)^{h.x0} Z^h for
 *     a null-space basis h of D (CNOT-free to measure);
 *  2. Clifford conjugation: push Z through the buildBasisChange
 *     circuit for each flag qubit when every basis-change gate is
 *     recognizably Clifford;
 *  3. exhaustive signed-Pauli search with symplectic reduction for
 *     small n (cross-validation fallback).
 * A full-rank subspace returns an empty generator list (nothing to
 * measure); the compiler rejects it like the unitary builders do.
 */
std::optional<std::vector<PauliString>>
stabilizerGenerators(const CorrectSubspace& subspace);

/** Per-slot lowering record reported on results and explain output. */
struct SlotSummary
{
    LoweringForm form = LoweringForm::kPauliMeasure;
    InvariantClass invariant = InvariantClass::kUserState;

    /** Raw-instruction insertion point the slot guards. */
    size_t position = 0;

    /** Program qubits under test. */
    std::vector<int> qubits;

    /** Classical bits recording the slot verdict (all-zero = pass). */
    std::vector<int> clbits;

    /** Ancilla qubits the form consumed (empty for Pauli forms). */
    std::vector<int> ancillas;

    /** Instruction / CX count of the inserted fragment (variant 0). */
    int gates = 0;
    int cx = 0;

    /** Sub-circuit variants the slot spreads across (1 unless
     *  kPauliSample). */
    int sub_circuits = 1;

    /** Stabilizer generator count (0 for unitary forms). */
    int generators = 0;

    /** Source anchor of the guarded statement (0 = unknown). */
    int source_line = 0;
    int source_col = 0;
};

} // namespace acomp
} // namespace qa

#endif // QA_ACOMP_LOWERING_HPP
