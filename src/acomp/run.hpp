/**
 * @file
 * Execution of compiled (lowered) assertion programs: a thin adapter
 * from acomp::CompiledProgram to the core policy runner's
 * variant-aware shot loop.
 */
#ifndef QA_ACOMP_RUN_HPP
#define QA_ACOMP_RUN_HPP

#include "acomp/compiler.hpp"
#include "core/runner.hpp"

namespace qa
{
namespace acomp
{

/**
 * Run a compiled program under an assertion policy: shot s executes
 * variant s % variants.size(), slot verdicts come from the compiled
 * slot clbits (all-zero = pass), and the accepted program histogram is
 * the marginal over the raw circuit's own clbits. Deterministic across
 * thread counts like runAssertedPolicy. kRepair requires
 * compiled.repair_supported (all-SWAP slots, single variant).
 */
PolicyOutcome runLowered(const CompiledProgram& compiled,
                         const SimOptions& options,
                         const PolicyOptions& policy = {});

} // namespace acomp
} // namespace qa

#endif // QA_ACOMP_RUN_HPP
