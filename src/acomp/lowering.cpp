#include "acomp/lowering.hpp"

#include <cstdint>

#include "common/error.hpp"
#include "core/builders.hpp"
#include "stab/clifford.hpp"
#include "stab/observables.hpp"

namespace qa
{
namespace acomp
{

const char*
formName(LoweringForm form)
{
    switch (form) {
      case LoweringForm::kSwap:         return "swap";
      case LoweringForm::kOr:           return "or";
      case LoweringForm::kNdd:          return "ndd";
      case LoweringForm::kPauliMeasure: return "pauli";
      case LoweringForm::kPauliSample:  return "pauli_sample";
    }
    return "unknown";
}

const char*
loweringRequestName(LoweringRequest request)
{
    switch (request) {
      case LoweringRequest::kAuto:         return "auto";
      case LoweringRequest::kSwap:         return "swap";
      case LoweringRequest::kOr:           return "or";
      case LoweringRequest::kNdd:          return "ndd";
      case LoweringRequest::kPauliMeasure: return "pauli";
      case LoweringRequest::kPauliSample:  return "pauli_sample";
    }
    return "unknown";
}

bool
parseLoweringRequest(const std::string& name, LoweringRequest* out)
{
    if (name == "auto") { *out = LoweringRequest::kAuto; return true; }
    if (name == "swap") { *out = LoweringRequest::kSwap; return true; }
    if (name == "or")   { *out = LoweringRequest::kOr; return true; }
    if (name == "ndd")  { *out = LoweringRequest::kNdd; return true; }
    if (name == "pauli" || name == "pauli_measure") {
        *out = LoweringRequest::kPauliMeasure;
        return true;
    }
    if (name == "pauli_sample") {
        *out = LoweringRequest::kPauliSample;
        return true;
    }
    return false;
}

const char*
invariantClassName(InvariantClass klass)
{
    switch (klass) {
      case InvariantClass::kUserState:     return "user_state";
      case InvariantClass::kClassical:     return "classical";
      case InvariantClass::kSuperposition: return "superposition";
      case InvariantClass::kEntangled:     return "entangled";
    }
    return "unknown";
}

namespace
{

/** popcount for the F2 index masks. */
int
parity64(uint64_t v)
{
    int p = 0;
    while (v != 0) {
        p ^= 1;
        v &= v - 1;
    }
    return p;
}

/**
 * F2 row space kept in reduced row-echelon form: every stored row's
 * pivot (lowest set bit) appears in no other row, so null-space vectors
 * can be read off pivot-by-pivot.
 */
struct F2Rref
{
    std::vector<uint64_t> rows;

    /** Reduce `v` against every stored pivot. */
    uint64_t reduce(uint64_t v) const
    {
        for (uint64_t r : rows) {
            const uint64_t pivot = r & ~(r - 1);
            if ((v & pivot) != 0) v ^= r;
        }
        return v;
    }

    /** Insert `v`'s residual; returns false when v was dependent. */
    bool insert(uint64_t v)
    {
        v = reduce(v);
        if (v == 0) return false;
        const uint64_t pivot = v & ~(v - 1);
        for (uint64_t& r : rows) {
            if ((r & pivot) != 0) r ^= v;
        }
        rows.push_back(v);
        return true;
    }
};

/**
 * Affine computational-basis path: indices = x0 + D for an F2-linear D.
 * Generators are (-1)^{h.x0} Z^h over a null-space basis of D. Index
 * bit (n-1-q) addresses qubit q (qubit 0 is the MSB).
 */
std::optional<std::vector<PauliString>>
affineGenerators(const CorrectSubspace& subspace)
{
    const int n = subspace.n;
    if (n > 63) return std::nullopt;
    const std::vector<uint64_t>& indices = subspace.basis_indices;
    const uint64_t x0 = indices[0];

    // Row-reduce the difference set; D must be exactly its span.
    F2Rref span;
    for (uint64_t idx : indices) span.insert(idx ^ x0);
    if ((uint64_t(1) << span.rows.size()) != indices.size()) {
        return std::nullopt; // Not XOR-closed around x0.
    }

    // Null space of the span: pivots determine, free bits generate.
    uint64_t pivots = 0;
    for (uint64_t r : span.rows) pivots |= r & ~(r - 1);
    std::vector<PauliString> gens;
    for (int f = 0; f < n; ++f) {
        const uint64_t fbit = uint64_t(1) << f;
        if ((pivots & fbit) != 0) continue;
        uint64_t h = fbit;
        for (uint64_t r : span.rows) {
            const uint64_t pivot = r & ~(r - 1);
            if ((r & fbit) != 0) h |= pivot;
        }
        PauliString g(n);
        for (int q = 0; q < n; ++q) {
            if ((h >> (n - 1 - q)) & 1) g.setZ(q, true);
        }
        g.setPhase(parity64(h & x0) != 0 ? 2 : 0);
        gens.push_back(std::move(g));
    }
    return gens;
}

/** Brute-force verification budget: 2^n amplitudes per check. */
constexpr int kVerifyMaxQubits = 12;

/** True when every basis vector is stabilized by every generator. */
bool
generatorsStabilize(const std::vector<PauliString>& gens,
                    const CorrectSubspace& subspace)
{
    for (const PauliString& g : gens) {
        for (const CVector& v : subspace.basis) {
            if (!stabilizes(g, v)) return false;
        }
    }
    return true;
}

/**
 * Clifford-conjugation path: the correct subspace is u applied to the
 * span of basis states whose flag qubits read |0>, i.e. the joint +1
 * eigenspace of {u Z_f u^dag}. Fails when any basis-change gate is not
 * recognizably Clifford.
 */
std::optional<std::vector<PauliString>>
conjugationGenerators(const CorrectSubspace& subspace)
{
    const int n = subspace.n;
    std::optional<BasisChange> bc;
    try {
        bc = buildBasisChange(subspace.basis, n);
    } catch (const UserError&) {
        return std::nullopt;
    }

    std::vector<PauliString> gens;
    for (int f : bc->flag_qubits) {
        PauliString p(n);
        p.setZ(f, true);
        for (const Instruction& instr : bc->u.instructions()) {
            if (instr.type == OpType::kBarrier) continue;
            const std::optional<CliffordAction> action =
                recognizeClifford(instr);
            if (!action.has_value()) return std::nullopt;
            p = conjugatePauli(p, *action, instr.qubits);
        }
        if (p.phase() != 0 && p.phase() != 2) return std::nullopt;
        gens.push_back(std::move(p));
    }
    if (n <= kVerifyMaxQubits && !generatorsStabilize(gens, subspace)) {
        return std::nullopt;
    }
    return gens;
}

/** Exhaustive-search budget: 4^n signed Paulis times 2^n amplitudes. */
constexpr int kSearchMaxQubits = 6;

/**
 * Exhaustive small-n path: collect every signed Pauli stabilizing the
 * whole basis, require the group order to match 2^{n-m}, and reduce to
 * independent generators by symplectic elimination.
 */
std::optional<std::vector<PauliString>>
searchGenerators(const CorrectSubspace& subspace, int m)
{
    const int n = subspace.n;
    if (n > kSearchMaxQubits) return std::nullopt;

    std::vector<PauliString> stabilizing;
    for (uint64_t bits = 1; bits < (uint64_t(1) << (2 * n)); ++bits) {
        PauliString p(n);
        for (int q = 0; q < n; ++q) {
            p.setX(q, (bits >> q) & 1);
            p.setZ(q, (bits >> (n + q)) & 1);
        }
        bool plus = true, minus = true;
        PauliString neg = p;
        neg.setPhase(2);
        for (const CVector& v : subspace.basis) {
            if (plus) plus = stabilizes(p, v);
            if (minus) minus = stabilizes(neg, v);
            if (!plus && !minus) break;
        }
        if (plus) {
            stabilizing.push_back(std::move(p));
        } else if (minus) {
            stabilizing.push_back(std::move(neg));
        }
    }
    const int want = n - m;
    if (stabilizing.size() + 1 != (uint64_t(1) << want)) {
        return std::nullopt; // Not a stabilizer subspace.
    }

    // Symplectic (x|z) elimination to an independent generating set.
    F2Rref rref;
    std::vector<PauliString> gens;
    for (const PauliString& p : stabilizing) {
        uint64_t v = 0;
        for (int q = 0; q < n; ++q) {
            if (p.x(q)) v |= uint64_t(1) << q;
            if (p.z(q)) v |= uint64_t(1) << (n + q);
        }
        if (!rref.insert(v)) continue;
        gens.push_back(p);
        if (int(gens.size()) == want) break;
    }
    if (int(gens.size()) != want) return std::nullopt;
    return gens;
}

} // namespace

std::optional<std::vector<PauliString>>
stabilizerGenerators(const CorrectSubspace& subspace)
{
    const int n = subspace.n;
    const size_t t = subspace.rank();
    QA_REQUIRE(n > 0 && t > 0, "stabilizerGenerators needs a subspace");
    if ((t & (t - 1)) != 0) return std::nullopt; // Rank not a power of 2.
    int m = 0;
    while ((size_t(1) << m) < t) ++m;
    if (m == n) return std::vector<PauliString>{}; // Full space.

    if (subspace.all_basis_states) {
        const std::optional<std::vector<PauliString>> gens =
            affineGenerators(subspace);
        if (gens.has_value()) return gens;
    }
    const std::optional<std::vector<PauliString>> gens =
        conjugationGenerators(subspace);
    if (gens.has_value()) return gens;
    return searchGenerators(subspace, m);
}

} // namespace acomp
} // namespace qa
