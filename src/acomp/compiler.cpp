#include "acomp/compiler.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <sstream>

#include "backend/analyzer.hpp"
#include "backend/router.hpp"
#include "common/error.hpp"
#include "synth/pauli_gadget.hpp"
#include "transpile/peephole.hpp"

namespace qa
{
namespace acomp
{

namespace
{

/** Diagnostic anchor for one site: slot index, position, source. */
std::string
siteWhere(const AssertionSite& site, size_t index)
{
    std::ostringstream oss;
    oss << "slot " << index << " (insert before instruction "
        << site.position;
    if (site.source_line > 0) {
        oss << ", source " << site.source_line << ":" << site.source_col;
    }
    oss << ")";
    return oss.str();
}

/** The unitary-design dispatch of core/asserted_program.cpp. */
QuantumCircuit
buildUnitaryFragment(const CorrectSubspace& subspace,
                     AssertionDesign design, SwapPlacement placement,
                     const BuildContext& ctx)
{
    switch (design) {
      case AssertionDesign::kSwap:
        return buildSwapAssertion(subspace, ctx, placement);
      case AssertionDesign::kOr:
        return buildOrAssertion(subspace, ctx);
      case AssertionDesign::kNdd:
        return buildNddAssertion(subspace, ctx);
      default:
        break;
    }
    QA_FAIL("acomp lowers to swap/or/ndd unitary designs only");
}

AssertionPlan
planUnitary(const CorrectSubspace& subspace, AssertionDesign design,
            SwapPlacement placement)
{
    switch (design) {
      case AssertionDesign::kSwap:
        return planSwapAssertion(subspace, placement);
      case AssertionDesign::kOr:
        return planOrAssertion(subspace);
      case AssertionDesign::kNdd:
        return planNddAssertion(subspace);
      default:
        break;
    }
    QA_FAIL("acomp lowers to swap/or/ndd unitary designs only");
}

AssertionDesign
designFor(LoweringForm form)
{
    switch (form) {
      case LoweringForm::kSwap: return AssertionDesign::kSwap;
      case LoweringForm::kOr:   return AssertionDesign::kOr;
      case LoweringForm::kNdd:  return AssertionDesign::kNdd;
      default:                  break;
    }
    QA_FAIL("not a unitary lowering form");
}

/** One costed executable form a slot could take. */
struct Candidate
{
    LoweringForm form = LoweringForm::kPauliMeasure;
    double score = 0.0;
    int gates = 0;
    int cx = 0;
    int ancillas = 0;
    AssertionPlan plan;
};

/** A slot's resolved lowering plus the data emission needs. */
struct ResolvedSlot
{
    const AssertionSite* site = nullptr;
    size_t index = 0;
    LoweringForm form = LoweringForm::kPauliMeasure;
    std::vector<PauliString> gens;           // Pauli forms.
    std::optional<CorrectSubspace> subspace; // Unitary forms.
    AssertionPlan plan;                      // Unitary forms.
    int clbit_base = 0;
    int num_clbits = 0;
};

/** Backend kind candidate fragments are weighed under. */
BackendKind
weighKind(BackendRequest request, bool clifford)
{
    switch (request) {
      case BackendRequest::kStatevector:
        return BackendKind::kStatevector;
      case BackendRequest::kDensityMatrix:
        return BackendKind::kDensityMatrix;
      case BackendRequest::kStabilizer:
        return BackendKind::kStabilizer;
      case BackendRequest::kMps:
        return BackendKind::kMps;
      case BackendRequest::kAuto:
        break;
    }
    return clifford ? BackendKind::kStabilizer
                    : BackendKind::kStatevector;
}

/** Cost the Pauli-measure form by building the gadgets on scratch. */
Candidate
costPauli(const AssertionSite& site,
          const std::vector<PauliString>& gens, int raw_qubits,
          bool raw_clifford, BackendRequest request)
{
    Candidate cand;
    cand.form = LoweringForm::kPauliMeasure;
    QuantumCircuit scratch(raw_qubits, int(gens.size()));
    for (size_t j = 0; j < gens.size(); ++j) {
        const PauliGadgetCost cost = appendPauliMeasureGadget(
            scratch, gens[j], site.qubits, int(j));
        cand.gates += cost.gates;
        cand.cx += cost.cx;
    }
    const BackendKind kind = weighKind(request, raw_clifford);
    cand.score = double(cand.gates) *
                 backend::assertionGateWeight(kind, raw_qubits);
    return cand;
}

/** Cost a unitary design on a standalone layout (nullopt: incapable). */
std::optional<Candidate>
costUnitary(const AssertionSite& site, const CorrectSubspace& subspace,
            LoweringForm form, SwapPlacement placement, int raw_qubits,
            bool raw_clifford, BackendRequest request)
{
    Candidate cand;
    cand.form = form;
    try {
        cand.plan = planUnitary(subspace, designFor(form), placement);
        BuildContext ctx;
        ctx.total_qubits = raw_qubits + cand.plan.num_ancillas;
        ctx.total_clbits = cand.plan.num_clbits;
        ctx.qubits = site.qubits;
        for (int a = 0; a < cand.plan.num_ancillas; ++a) {
            ctx.ancillas.push_back(raw_qubits + a);
        }
        for (int c = 0; c < cand.plan.num_clbits; ++c) {
            ctx.clbits.push_back(c);
        }
        for (int q = 0; q < raw_qubits; ++q) {
            if (!std::count(site.qubits.begin(), site.qubits.end(), q)) {
                ctx.free_qubits.push_back(q);
            }
        }
        const QuantumCircuit frag = buildUnitaryFragment(
            subspace, designFor(form), placement, ctx);
        const CircuitCost cost = circuitCost(frag);
        cand.gates = cost.cx + cost.sg + cost.measure;
        cand.cx = cost.cx;
        cand.ancillas = cand.plan.num_ancillas;
        const bool clifford =
            raw_clifford &&
            backend::analyzeCircuit(frag).non_clifford_gates == 0;
        const BackendKind kind = weighKind(request, clifford);
        if (kind == BackendKind::kMps) {
            // The MPS chain lowers arity-3 gadget gates but nothing
            // wider; a form that needs them cannot serve this backend.
            for (const Instruction& instr : frag.instructions()) {
                if (instr.isGate() && instr.arity() > 3) {
                    return std::nullopt;
                }
            }
        }
        cand.score =
            double(cand.gates) *
                backend::assertionGateWeight(
                    kind, raw_qubits + cand.plan.num_ancillas) +
            double(cand.ancillas);
    } catch (const UserError&) {
        return std::nullopt; // Design cannot serve this subspace.
    }
    return cand;
}

/** CX count over an instruction range. */
int
countCxRange(const QuantumCircuit& circuit, size_t from, size_t to)
{
    int cx = 0;
    for (size_t i = from; i < to; ++i) {
        if (circuit.instructions()[i].name == "cx") ++cx;
    }
    return cx;
}

void
validateSite(const AssertionSite& site, size_t index,
             const QuantumCircuit& raw)
{
    const std::string where = siteWhere(site, index);
    QA_REQUIRE(site.position <= raw.size(),
               where + ": position past the end of the circuit");
    QA_REQUIRE(!site.qubits.empty(), where + ": no qubits under test");
    QA_REQUIRE(std::is_sorted(site.qubits.begin(), site.qubits.end()) &&
                   std::adjacent_find(site.qubits.begin(),
                                      site.qubits.end()) ==
                       site.qubits.end(),
               where + ": qubits must be ascending and unique");
    QA_REQUIRE(site.qubits.front() >= 0 &&
                   site.qubits.back() < raw.numQubits(),
               where + ": qubit index out of range");
    QA_REQUIRE(site.set != nullptr || !site.generators.empty(),
               where + ": site needs a StateSet or generators");
    if (site.set != nullptr) {
        QA_REQUIRE(site.set->numQubits() == int(site.qubits.size()),
                   where + ": StateSet width must match the qubit list");
    }
    for (const PauliString& g : site.generators) {
        QA_REQUIRE(g.numQubits() == int(site.qubits.size()),
                   where + ": generator width must match the qubit list");
        QA_REQUIRE(g.phase() == 0 || g.phase() == 2,
                   where + ": generators must be Hermitian (+/-P)");
        QA_REQUIRE(!g.isIdentity(), where + ": identity generator");
    }
}

/** Resolve one site's executable form under the requested knobs. */
ResolvedSlot
resolveSite(const AssertionSite& site, size_t index,
            const QuantumCircuit& raw, bool raw_clifford,
            const AcompOptions& opts)
{
    const std::string where = siteWhere(site, index);
    ResolvedSlot slot;
    slot.site = &site;
    slot.index = index;

    // Available invariant descriptions.
    slot.gens = site.generators;
    if (site.set != nullptr) {
        slot.subspace = analyzeStateSet(*site.set);
        if (slot.gens.empty()) {
            const std::optional<std::vector<PauliString>> derived =
                stabilizerGenerators(*slot.subspace);
            if (derived.has_value()) slot.gens = *derived;
        }
    }
    const bool pauli_ok = !slot.gens.empty();
    const bool unitary_ok = slot.subspace.has_value();

    const auto resolvePauli = [&](LoweringForm form) {
        QA_REQUIRE_CODE(
            pauli_ok, ErrorCode::kUnsupportedAssertion,
            where + ": " + std::string(formName(form)) +
                " lowering needs a stabilizer subspace, but the "
                "projector has no Pauli generator set (request a "
                "unitary form, or auto)");
        slot.form = form;
        slot.num_clbits =
            form == LoweringForm::kPauliSample ? 1 : int(slot.gens.size());
    };
    const auto resolveUnitary = [&](LoweringForm form) {
        QA_REQUIRE_CODE(
            unitary_ok, ErrorCode::kUnsupportedAssertion,
            where + ": " + std::string(formName(form)) +
                " lowering needs a dense StateSet target, but this "
                "slot is described only by stabilizer generators "
                "(request pauli, pauli_sample, or auto)");
        const std::optional<Candidate> cand = costUnitary(
            site, *slot.subspace, form, opts.placement, raw.numQubits(),
            raw_clifford, opts.backend);
        QA_REQUIRE_CODE(cand.has_value(),
                        ErrorCode::kUnsupportedAssertion,
                        where + ": the " +
                            std::string(formName(form)) +
                            " design cannot serve this projector");
        slot.form = form;
        slot.plan = cand->plan;
        slot.num_clbits = cand->plan.num_clbits;
    };

    switch (opts.lowering) {
      case LoweringRequest::kPauliMeasure:
        resolvePauli(LoweringForm::kPauliMeasure);
        return slot;
      case LoweringRequest::kPauliSample:
        resolvePauli(LoweringForm::kPauliSample);
        return slot;
      case LoweringRequest::kSwap:
        resolveUnitary(LoweringForm::kSwap);
        return slot;
      case LoweringRequest::kOr:
        resolveUnitary(LoweringForm::kOr);
        return slot;
      case LoweringRequest::kNdd:
        resolveUnitary(LoweringForm::kNdd);
        return slot;
      case LoweringRequest::kAuto:
        break;
    }

    // kAuto: weigh every capable form and keep the cheapest.
    std::vector<Candidate> candidates;
    if (pauli_ok) {
        candidates.push_back(costPauli(site, slot.gens, raw.numQubits(),
                                       raw_clifford, opts.backend));
    }
    if (unitary_ok) {
        for (const LoweringForm form :
             {LoweringForm::kSwap, LoweringForm::kOr,
              LoweringForm::kNdd}) {
            const std::optional<Candidate> cand = costUnitary(
                site, *slot.subspace, form, opts.placement,
                raw.numQubits(), raw_clifford, opts.backend);
            if (cand.has_value()) candidates.push_back(*cand);
        }
    }
    QA_REQUIRE_CODE(
        !candidates.empty(), ErrorCode::kUnsupportedAssertion,
        where + ": no executable lowering exists for this projector "
                "(not a stabilizer subspace and no unitary design can "
                "serve it — a full-rank projector asserts nothing)");
    const Candidate* best = &candidates[0];
    for (const Candidate& cand : candidates) {
        const bool better =
            cand.score < best->score ||
            (cand.score == best->score &&
             cand.ancillas < best->ancillas);
        if (better) best = &cand;
    }
    slot.form = best->form;
    slot.plan = best->plan;
    slot.num_clbits = best->form == LoweringForm::kPauliMeasure
                          ? int(slot.gens.size())
                          : best->plan.num_clbits;
    return slot;
}

/** Emit one slot's fragment into a variant; fills the summary at v=0. */
void
emitSlot(QuantumCircuit& variant, const ResolvedSlot& slot, size_t v,
         int raw_qubits, int ancilla_pool, SwapPlacement placement,
         SlotSummary* summary)
{
    const AssertionSite& site = *slot.site;
    variant.barrier();
    const size_t start = variant.size();

    switch (slot.form) {
      case LoweringForm::kPauliMeasure:
        for (size_t j = 0; j < slot.gens.size(); ++j) {
            appendPauliMeasureGadget(variant, slot.gens[j], site.qubits,
                                     slot.clbit_base + int(j));
        }
        break;
      case LoweringForm::kPauliSample: {
        const size_t j = v % slot.gens.size();
        appendPauliMeasureGadget(variant, slot.gens[j], site.qubits,
                                 slot.clbit_base);
        break;
      }
      case LoweringForm::kSwap:
      case LoweringForm::kOr:
      case LoweringForm::kNdd: {
        BuildContext ctx;
        ctx.total_qubits = variant.numQubits();
        ctx.total_clbits = variant.numClbits();
        ctx.qubits = site.qubits;
        for (int a = 0; a < slot.plan.num_ancillas; ++a) {
            ctx.ancillas.push_back(raw_qubits + a);
        }
        for (int c = 0; c < slot.plan.num_clbits; ++c) {
            ctx.clbits.push_back(slot.clbit_base + c);
        }
        for (int q = 0; q < raw_qubits; ++q) {
            if (!std::count(site.qubits.begin(), site.qubits.end(),
                            q)) {
                ctx.free_qubits.push_back(q);
            }
        }
        const QuantumCircuit frag = buildUnitaryFragment(
            *slot.subspace, designFor(slot.form), placement, ctx);
        std::vector<int> qmap, cmap;
        for (int q = 0; q < variant.numQubits(); ++q) qmap.push_back(q);
        for (int c = 0; c < variant.numClbits(); ++c) cmap.push_back(c);
        variant.compose(frag, qmap, cmap);
        // Reset before the next slot reuses the pool (measured
        // ancillas hold classical junk).
        for (int a : ctx.ancillas) variant.reset(a);
        break;
      }
    }
    (void)ancilla_pool;

    if (summary != nullptr) {
        summary->form = slot.form;
        summary->invariant = site.invariant;
        summary->position = site.position;
        summary->qubits = site.qubits;
        for (int c = 0; c < slot.num_clbits; ++c) {
            summary->clbits.push_back(slot.clbit_base + c);
        }
        for (int a = 0; a < slot.plan.num_ancillas; ++a) {
            summary->ancillas.push_back(raw_qubits + a);
        }
        summary->gates = int(variant.size() - start);
        summary->cx = countCxRange(variant, start, variant.size());
        summary->generators = int(slot.gens.size());
        summary->source_line = site.source_line;
        summary->source_col = site.source_col;
    }
    variant.barrier();
}

} // namespace

CompiledProgram
compileAssertions(const QuantumCircuit& raw,
                  const std::vector<AssertionSite>& sites,
                  const AcompOptions& opts)
{
    QA_REQUIRE(!sites.empty(), "compileAssertions needs >= 1 site");
    QA_REQUIRE(opts.max_sample_variants >= 1,
               "max_sample_variants must be >= 1");
    for (size_t i = 0; i < sites.size(); ++i) {
        validateSite(sites[i], i, raw);
    }

    const bool raw_clifford =
        backend::analyzeCircuit(raw).non_clifford_gates == 0;

    // Resolve every slot, then lay out clbits / ancillas / variants.
    std::vector<const AssertionSite*> ordered;
    for (const AssertionSite& site : sites) ordered.push_back(&site);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const AssertionSite* a, const AssertionSite* b) {
                         return a->position < b->position;
                     });

    std::vector<ResolvedSlot> slots;
    int clbit_base = raw.numClbits();
    int ancilla_pool = 0;
    size_t num_variants = 1;
    size_t max_gens = 1;
    for (const AssertionSite* site : ordered) {
        ResolvedSlot slot = resolveSite(
            *site, size_t(site - sites.data()), raw, raw_clifford, opts);
        slot.clbit_base = clbit_base;
        clbit_base += slot.num_clbits;
        ancilla_pool =
            std::max(ancilla_pool, slot.plan.num_ancillas);
        if (slot.form == LoweringForm::kPauliSample) {
            num_variants = std::lcm(num_variants, slot.gens.size());
            max_gens = std::max(max_gens, slot.gens.size());
        }
        slots.push_back(std::move(slot));
    }
    if (num_variants > size_t(opts.max_sample_variants)) {
        // lcm blew the cap: the largest generator count still covers
        // every generator of every sampled slot (round-robin, uneven).
        num_variants = max_gens;
    }

    CompiledProgram compiled;
    compiled.raw_qubits = raw.numQubits();
    compiled.raw_clbits = raw.numClbits();
    for (int c = 0; c < raw.numClbits(); ++c) {
        compiled.program_clbits.push_back(c);
    }

    const int total_qubits = raw.numQubits() + ancilla_pool;
    for (size_t v = 0; v < num_variants; ++v) {
        QuantumCircuit variant(total_qubits, clbit_base);
        size_t cursor = 0;
        std::vector<SlotSummary> summaries(slots.size());
        for (size_t i = 0; i <= raw.size(); ++i) {
            while (cursor < slots.size() &&
                   slots[cursor].site->position == i) {
                emitSlot(variant, slots[cursor], v, raw.numQubits(),
                         ancilla_pool, opts.placement,
                         v == 0 ? &summaries[cursor] : nullptr);
                ++cursor;
            }
            if (i < raw.size()) {
                variant.append(raw.instructions()[i]);
            }
        }
        if (v == 0) compiled.slots = std::move(summaries);
        compiled.variants.push_back(std::move(variant));
    }
    for (SlotSummary& summary : compiled.slots) {
        summary.sub_circuits =
            summary.form == LoweringForm::kPauliSample
                ? int(num_variants)
                : 1;
    }

    compiled.repair_supported = num_variants == 1;
    for (const SlotSummary& summary : compiled.slots) {
        compiled.repair_supported &=
            summary.form == LoweringForm::kSwap;
    }
    return compiled;
}

CompiledProgram
autoAssert(const QuantumCircuit& raw, const AcompOptions& opts,
           const std::vector<QasmPos>* positions)
{
    const std::vector<AssertionSite> sites =
        generateAssertions(raw, opts.generator, positions);
    CompiledProgram compiled;
    if (sites.empty()) {
        compiled.variants.push_back(raw);
        compiled.raw_qubits = raw.numQubits();
        compiled.raw_clbits = raw.numClbits();
        for (int c = 0; c < raw.numClbits(); ++c) {
            compiled.program_clbits.push_back(c);
        }
        compiled.repair_supported = true; // No slots ever flag.
    } else {
        compiled = compileAssertions(raw, sites, opts);
    }
    compiled.generated = true;
    return compiled;
}

std::string
formatLoweringTable(const CompiledProgram& compiled)
{
    std::ostringstream out;
    out << "assertion lowering: " << compiled.slots.size()
        << (compiled.slots.size() == 1 ? " slot" : " slots") << ", "
        << compiled.variants.size()
        << (compiled.variants.size() == 1 ? " variant" : " variants")
        << (compiled.generated ? " (auto-generated)" : "") << "\n";
    for (size_t i = 0; i < compiled.slots.size(); ++i) {
        const SlotSummary& s = compiled.slots[i];
        out << "  slot " << i << ": form=" << formName(s.form)
            << " invariant=" << invariantClassName(s.invariant)
            << " position=" << s.position;
        if (s.source_line > 0) {
            out << " source=" << s.source_line << ":" << s.source_col;
        }
        out << " qubits=[";
        for (size_t j = 0; j < s.qubits.size(); ++j) {
            out << (j > 0 ? " " : "") << s.qubits[j];
        }
        out << "] clbits=[";
        for (size_t j = 0; j < s.clbits.size(); ++j) {
            out << (j > 0 ? " " : "") << s.clbits[j];
        }
        out << "] ancillas=" << s.ancillas.size()
            << " gates=" << s.gates << " cx=" << s.cx
            << " generators=" << s.generators
            << " sub_circuits=" << s.sub_circuits << "\n";
    }
    return out.str();
}

} // namespace acomp
} // namespace qa
