/**
 * @file
 * The assertion compiler (DESIGN.md Sec. 14): lower assertion sites —
 * caller-supplied or generator-discovered — into the cheapest capable
 * executable form per slot, producing the instrumented sub-circuit
 * variants the policy runner executes.
 *
 * Form selection extends the backend router's cost model: each
 * candidate form's gate count is weighted by
 * backend::assertionGateWeight under the backend the instrumented
 * circuit would route to. Stabilizer-expressible slots therefore lower
 * to ancilla-free Pauli parity measurements (which keep a Clifford
 * program on the tableau backend); projectors with no stabilizer
 * structure fall back to the paper's unitary designs (SWAP / OR / NDD),
 * ancillas and all. A slot admitting no form under the requested knobs
 * raises UserError(kUnsupportedAssertion) anchored to the source
 * statement — never a silent fallback.
 */
#ifndef QA_ACOMP_COMPILER_HPP
#define QA_ACOMP_COMPILER_HPP

#include <string>
#include <vector>

#include "acomp/generator.hpp"
#include "acomp/lowering.hpp"
#include "circuit/circuit.hpp"
#include "core/builders.hpp"
#include "sim/options.hpp"

namespace qa
{
namespace acomp
{

/** Assertion-compiler knobs. */
struct AcompOptions
{
    /** Requested lowering (kAuto: cost model decides per slot). */
    LoweringRequest lowering = LoweringRequest::kAuto;

    /** Generator knobs (autoAssert only). */
    GeneratorOptions generator;

    /** Backend request the cost model weighs candidates under. */
    BackendRequest backend = BackendRequest::kAuto;

    /** SWAP-design placement (matches AssertedProgram's default). */
    SwapPlacement placement = SwapPlacement::kInvBeforePrepAfter;

    /**
     * Soft cap on kPauliSample sub-circuit variants: the variant count
     * is the lcm of the sampled slots' generator counts when that fits
     * the cap, else the largest generator count (every generator still
     * sampled, just unevenly).
     */
    int max_sample_variants = 16;
};

/** A compiled (instrumented) program ready for the policy runner. */
struct CompiledProgram
{
    /**
     * Instrumented sub-circuit variants; shot s executes variant
     * s % variants.size(). One entry unless a slot lowered to
     * kPauliSample. All variants share qubit/clbit layout.
     */
    std::vector<QuantumCircuit> variants;

    /** Per-slot lowering decisions, in insertion order. */
    std::vector<SlotSummary> slots;

    /** Clbits carrying the raw program's own measurements. */
    std::vector<int> program_clbits;

    /** Raw circuit dimensions (variants may be wider). */
    int raw_qubits = 0;
    int raw_clbits = 0;

    /** True when kRepair is sound: every slot is SWAP-based (state
     *  re-prepared on failure) and there is a single variant. */
    bool repair_supported = false;

    /** True when the sites came from the assertion generator. */
    bool generated = false;
};

/**
 * Lower assertion sites into an instrumented program. Sites may target
 * any raw instruction boundary (position == size(): end of circuit);
 * slot clbits are appended after the raw circuit's own, so the raw
 * program's histogram is the marginal over [0, raw_clbits). Throws
 * UserError(kUnsupportedAssertion) when any site admits no executable
 * form under opts.lowering.
 */
CompiledProgram compileAssertions(const QuantumCircuit& raw,
                                  const std::vector<AssertionSite>& sites,
                                  const AcompOptions& opts = {});

/**
 * Generate-then-compile: discover sites with generateAssertions and
 * lower them. A circuit yielding no sites compiles to a single
 * uninstrumented variant (the raw circuit) with zero slots.
 */
CompiledProgram autoAssert(const QuantumCircuit& raw,
                           const AcompOptions& opts = {},
                           const std::vector<QasmPos>* positions = nullptr);

/**
 * Human-readable per-slot lowering table (form, invariant, position,
 * qubits, clbits, ancillas, gate/CX budget, sub-circuit count) for
 * qa_explain and `qassertd` explain responses.
 */
std::string formatLoweringTable(const CompiledProgram& compiled);

} // namespace acomp
} // namespace qa

#endif // QA_ACOMP_COMPILER_HPP
