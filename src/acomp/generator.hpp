/**
 * @file
 * quAssert-style static assertion generation (PAPERS.md 2303.01487):
 * analyze a raw, assertion-free circuit, discover the state invariants
 * its Clifford prefix establishes, and emit assertion sites at natural
 * cut points for the compiler to lower.
 *
 * Two discovery engines cooperate:
 *  - the stabilizer tableau: the Clifford prefix of the circuit is
 *    simulated symbolically, and the tableau's stabilizer rows at each
 *    cut are exact invariants of the state there. Rows are grouped by
 *    qubit connectivity into classical (weight-1 Z), superposition
 *    (weight-1 X/Y), and entangled (multi-qubit) sites;
 *  - the GHZ preparation idiom: a Hadamard-like gate feeding a CX
 *    fan-out tree is recognized structurally and asserted against the
 *    generators the *pattern* promises (X...X and pairwise Z Z). Unlike
 *    the tableau — which faithfully absorbs every gate, including a
 *    buggy injected Pauli, into its rows — the idiom treats stray
 *    x/y/z gates on entangled qubits as runtime content to be checked,
 *    so source-level Pauli faults inside the preparation are detected
 *    rather than silently folded into the invariant. Hypothesis-based
 *    generation trades false alarms on exotic-but-legal preparations
 *    for exactly this detection power; any non-Pauli extra disables
 *    the idiom and falls back to the tableau.
 */
#ifndef QA_ACOMP_GENERATOR_HPP
#define QA_ACOMP_GENERATOR_HPP

#include <vector>

#include "acomp/lowering.hpp"
#include "circuit/circuit.hpp"
#include "circuit/qasm.hpp"

namespace qa
{
namespace acomp
{

/** Knobs for the assertion generator. */
struct GeneratorOptions
{
    /** Emitted-site cap; the end-of-prefix cut is filled first. */
    int max_slots = 3;

    /** Also cut at explicit barriers inside the Clifford prefix. */
    bool cut_at_barriers = true;

    /** Enable the GHZ preparation-idiom recognizer. */
    bool idiom_ghz = true;
};

/**
 * Discover assertion sites in a raw circuit. Returns sites sorted by
 * insertion position (possibly empty — e.g. a circuit whose very first
 * instruction is non-Clifford). `positions` (when non-null, from
 * parseQasm) anchors each site to a source line/column for
 * diagnostics. The raw circuit is never modified.
 */
std::vector<AssertionSite>
generateAssertions(const QuantumCircuit& raw,
                   const GeneratorOptions& opts = {},
                   const std::vector<QasmPos>* positions = nullptr);

} // namespace acomp
} // namespace qa

#endif // QA_ACOMP_GENERATOR_HPP
