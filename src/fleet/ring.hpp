/**
 * @file
 * Consistent-hash ring mapping 128-bit structural job keys onto shard
 * indices.
 *
 * Each shard owns `vnodes` pseudo-random positions on a 64-bit ring
 * (HashStream over (ring seed, shard, vnode) — deterministic across
 * processes and restarts, so cache affinity survives a router restart).
 * A key routes to the shard owning the first position at or after the
 * key's own position, wrapping at the top.
 *
 * Failover is the ring's whole point: routing takes an `up` predicate
 * and walks clockwise past positions whose shard is not admitting, so a
 * down shard's keyspace spills onto its ring successors — and only its
 * successors; every other shard keeps its keys (and its result-cache
 * affinity). When the shard comes back, the same walk finds it first
 * again and affinity restores by construction: shardFor is a pure
 * function of (ring layout, key, up-set).
 *
 * Load-aware placement (PR 9) weights the ring: a shard measured twice
 * as fast as the fleet mean owns ~twice the vnodes and therefore ~twice
 * the keyspace. Weighting only changes *how many* of a shard's vnodes
 * exist, never *where* they sit — vnode v of shard s hashes from
 * (seed, s, v) alone — so reweighting from w to w' moves only the keys
 * owned by the added/removed tail vnodes and every other key keeps its
 * affinity home. Weights are clamped and quantized by the caller (the
 * router) so jittery load measurements do not churn the ring.
 */
#ifndef QA_FLEET_RING_HPP
#define QA_FLEET_RING_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/hash.hpp"

namespace qa
{
namespace fleet
{

class HashRing
{
  public:
    /**
     * Build the ring for shards [0, nshards). More vnodes flatten the
     * keyspace split (64 per shard keeps the max/min shard share within
     * ~±25% for uniform keys). Throws UserError on nshards == 0.
     */
    explicit HashRing(size_t nshards, size_t vnodes = 64,
                      uint64_t seed = 0x716172696e67ULL); // "qaring"

    /**
     * Weighted ring: shard s owns round(vnodes * weights[s]) vnodes
     * (floored at 1 so every shard keeps at least one ring position and
     * stays reachable by the clockwise walk). `weights.size()` must be
     * `nshards`; an unweighted ring equals weights of all 1.0.
     */
    HashRing(size_t nshards, const std::vector<double>& weights,
             size_t vnodes = 64, uint64_t seed = 0x716172696e67ULL);

    size_t shards() const { return nshards_; }

    /** Ring positions shard `s` currently owns (tests, fleet_status). */
    size_t vnodesOf(size_t shard) const;

    /** Ring-owner shard of `key`, ignoring liveness (the affinity home). */
    size_t shardFor(const Hash128& key) const;

    /**
     * First shard at or after `key`'s position for which `up` returns
     * true; nullopt when no shard passes (all shards down — the caller
     * turns that into a typed kNoShardAvailable error, never a hang).
     */
    std::optional<size_t>
    route(const Hash128& key,
          const std::function<bool(size_t)>& up) const;

    /**
     * Every shard exactly once, in the order the clockwise walk from
     * `key` first meets them: [affinity home, first failover successor,
     * second, ...]. Retries, spillover, and hedged resubmissions all
     * take the next entry, so their target choice is deterministic too.
     */
    std::vector<size_t> preferenceChain(const Hash128& key) const;

  private:
    /** Points sorted by position; .second is the owning shard. */
    std::vector<std::pair<uint64_t, size_t>> points_;
    size_t nshards_;
};

} // namespace fleet
} // namespace qa

#endif // QA_FLEET_RING_HPP
