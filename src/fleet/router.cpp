#include "fleet/router.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>

#include "common/error.hpp"
#include "serve/job.hpp"
#include "serve/wire.hpp"

namespace qa
{
namespace fleet
{

namespace
{

std::chrono::steady_clock::duration
durationMs(double ms)
{
    return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(ms));
}

/**
 * Shard error codes the fleet is allowed to redispatch: refusals
 * (queue_full/shedding — the shard is healthy but saturated),
 * service_stopped (the shard is draining; a sibling is not), and the
 * transient execution failures the scheduler itself would retry. Typed
 * caller mistakes (bad_request, qasm_syntax, ...) fail identically on
 * every shard and are delivered as-is.
 */
bool
fleetRetryableCode(const std::string& name)
{
    if (name == "queue_full" || name == "shedding" ||
        name == "service_stopped") {
        return true;
    }
    ErrorCode code = ErrorCode::kGeneric;
    if (name == "worker_lost") code = ErrorCode::kWorkerLost;
    else if (name == "worker_failure") code = ErrorCode::kWorkerFailure;
    else if (name != "generic") return false;
    return resilience::isTransientError(code);
}

/** Swap the quoted alias id in a shard response for the client's id. */
std::string
rewriteResponseId(const std::string& line, const std::string& alias,
                  const std::string& client_id)
{
    const std::string needle = "\"" + alias + "\"";
    const size_t pos = line.find(needle);
    if (pos == std::string::npos) return line;
    std::string out = line;
    out.replace(pos, needle.size(),
                "\"" + serve::jsonEscape(client_id) + "\"");
    return out;
}

} // namespace

resilience::BreakerOptions
defaultShardBreaker()
{
    resilience::BreakerOptions options;
    options.enabled = true;
    // Shard-sized traffic: a smaller window and sample floor than the
    // in-process scheduler breaker, so a genuinely failing shard trips
    // within a few dozen responses.
    options.window = 32;
    options.min_samples = 8;
    options.failure_threshold = 0.6;
    options.open_cooldown_ms = 500.0;
    options.half_open_probes = 2;
    return options;
}

FleetRouter::FleetRouter(RouterOptions options, Emit emit)
    : options_(std::move(options)), clock_(resolveClock(options_.clock)),
      emit_(std::move(emit)),
      ring_(options_.connect.empty()
                ? (options_.shards == 0 ? 1 : options_.shards)
                : options_.connect.size(),
            options_.vnodes)
{
    if (!options_.connect.empty()) {
        // TCP fleet: one shard per endpoint; the daemons already run.
        options_.shards = options_.connect.size();
        endpoints_.reserve(options_.connect.size());
        for (const std::string& text : options_.connect) {
            endpoints_.push_back(net::parseEndpoint(text));
        }
    } else {
        QA_REQUIRE(!options_.shard_command.empty(),
                   "fleet needs a shard command or endpoints to connect");
    }
    QA_REQUIRE(options_.shards > 0, "fleet needs at least one shard");
    shards_.reserve(options_.shards);
    for (size_t i = 0; i < options_.shards; ++i) {
        auto shard = std::make_unique<Shard>();
        shard->health = HealthTracker(options_.health);
        shard->breaker = std::make_unique<resilience::CircuitBreaker>(
            options_.breaker, options_.clock);
        shards_.push_back(std::move(shard));
    }
}

FleetRouter::~FleetRouter()
{
    stop();
}

std::vector<std::string>
FleetRouter::shardArgv(size_t index, uint64_t generation) const
{
    std::vector<std::string> argv = options_.shard_command;
    if (!options_.journal_dir.empty()) {
        argv.push_back("--journal");
        // Generation-suffixed so a respawned shard gets a fresh file:
        // qassertd journal seqs restart at 0 per process, and appending
        // two processes' records to one file would break replay.
        argv.push_back(options_.journal_dir + "/shard-" +
                       std::to_string(index) + ".g" +
                       std::to_string(generation) + ".ndjson");
    }
    return argv;
}

std::unique_ptr<ShardTransport>
FleetRouter::makeTransport(size_t index, uint64_t generation) const
{
    if (index < endpoints_.size()) {
        // A failed connect still yields a transport — one that EOFs on
        // first read, so the reconnect backoff runs through the same
        // death path as a crashed child.
        return std::make_unique<TcpTransport>(endpoints_[index],
                                              options_.tcp);
    }
    return std::make_unique<PipeTransport>(shardArgv(index, generation));
}

void
FleetRouter::spawnShardLocked(size_t index)
{
    Shard& shard = *shards_[index];
    shard.generation++;
    shard.transport = makeTransport(index, shard.generation);
    shard.alive = true;
    shard.ping_outstanding = false;
    shard.attachment_ping_failures = 0;
    // Probe soon: recovery needs recover_threshold pongs.
    shard.last_probe = clock_.now() - durationMs(options_.probe_interval_ms);
    const uint64_t generation = shard.generation;
    const int fd = shard.transport->readFd();
    const double idle_ms = shard.transport->readIdleTimeoutMs();
    shard.reader = std::thread([this, index, generation, fd, idle_ms] {
        readerLoop(index, generation, fd, idle_ms);
    });
}

void
FleetRouter::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    QA_REQUIRE(!started_, "fleet router already started");
    started_ = true;
    if (!options_.journal_dir.empty()) {
        // Shards open their journal at exec and exit if the directory
        // is missing — which would take the whole fleet down before the
        // first job. Create it here instead of pushing that onto every
        // operator.
        std::error_code ec;
        std::filesystem::create_directories(options_.journal_dir, ec);
        QA_REQUIRE(!ec, "cannot create journal dir '" +
                            options_.journal_dir + "': " + ec.message());
    }
    for (size_t i = 0; i < shards_.size(); ++i) spawnShardLocked(i);
    last_adaptive_ = clock_.now();
    maintenance_ = std::thread([this] { maintenanceLoop(); });
}

void
FleetRouter::readerLoop(size_t index, uint64_t generation, int fd,
                        double idle_timeout_ms)
{
    LineReader reader(fd, options_.max_line, idle_timeout_ms);
    std::string line;
    for (;;) {
        const LineReader::Status status = reader.next(&line);
        if (status == LineReader::Status::kEof) {
            onShardExit(index, generation);
            return;
        }
        if (status == LineReader::Status::kOverflow) {
            std::lock_guard<std::mutex> lock(mutex_);
            shards_[index]->health.onFailure();
            continue;
        }
        if (status == LineReader::Status::kTimeout) {
            // The peer went silent past the idle bound (blackholed
            // socket, wedged daemon). Tear the attachment down; the
            // loop then observes EOF and runs the full death path.
            onReaderTimeout(index, generation);
            continue;
        }
        onShardLine(index, generation, line);
    }
}

void
FleetRouter::onReaderTimeout(size_t index, uint64_t generation)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Shard& shard = *shards_[index];
    if (shard.generation != generation || !shard.transport) return;
    shard.health.onFailure();
    shard.transport->terminate();
}

void
FleetRouter::handlePongLocked(size_t index, const std::string& alias,
                              double queue_depth)
{
    Shard& shard = *shards_[index];
    if (shard.ping_outstanding && shard.ping_id == alias) {
        shard.ping_outstanding = false;
        shard.pings_ok++;
        shard.last_rtt_ms = clock_.elapsedMs(shard.ping_sent);
        shard.queue_depth = queue_depth;
    }
    // Even a late pong (its probe already counted as a timeout) proves
    // the shard is answering — and resets the attachment failure streak
    // the remote teardown path keys on.
    shard.attachment_ping_failures = 0;
    shard.health.onSuccess();
}

void
FleetRouter::onShardLine(size_t index, uint64_t generation,
                         const std::string& line)
{
    std::string alias;
    if (!serve::peekResponseId(line, &alias)) {
        // Not a line any of our encoders produced; full parse for the id.
        try {
            alias = serve::requestId(serve::JsonValue::parse(line));
        } catch (const UserError&) {
            std::lock_guard<std::mutex> lock(mutex_);
            shards_[index]->health.onFailure();
            return;
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    Shard& shard = *shards_[index];
    const bool current = shard.generation == generation;

    if (alias.rfind("!p", 0) == 0) {
        if (current) {
            double queue_depth = shard.queue_depth;
            try {
                const serve::JsonValue parsed =
                    serve::JsonValue::parse(line);
                queue_depth = parsed.numberOr("queue_depth", queue_depth);
            } catch (const UserError&) {
                // Malformed pong still proves liveness; keep old depth.
            }
            handlePongLocked(index, alias, queue_depth);
        }
        return;
    }

    if (!current) {
        // Generation guard: a line surfacing from a superseded
        // attachment (reconnected TCP shard replaying buffered output,
        // zombie child flushing its pipe) must never resolve a job —
        // its aliases already failed over to the current generation.
        counters_.strays++;
        return;
    }

    shard.responses++;
    const PendingPtr job = pending_.find(alias);
    if (!job) {
        // Hedge loser, post-failover duplicate, or stale-generation
        // flush: the job already resolved through another alias.
        counters_.strays++;
        return;
    }

    // Any well-formed response proves the shard is answering.
    shard.health.onSuccess();

    // Classify: error lines may be redispatched instead of delivered.
    bool is_error = false;
    std::string code_name;
    double retry_after_ms = 0.0;
    try {
        const serve::JsonValue parsed = serve::JsonValue::parse(line);
        is_error = parsed.stringOr("status", "ok") == "error";
        if (is_error) {
            code_name = parsed.stringOr("code", "generic");
            retry_after_ms = parsed.numberOr("retry_after_ms", 0.0);
        }
    } catch (const UserError&) {
        shard.health.onFailure();
        counters_.strays++;
        return;
    }

    if (is_error) {
        shard.errors++;
        shard.breaker->recordFailure();
    } else {
        shard.breaker->recordSuccess();
    }

    if (is_error && fleetRetryableCode(code_name) && !draining_) {
        // This dispatch is spent; the job may have a hedge in flight.
        job->awaiting.erase(
            std::remove(job->awaiting.begin(), job->awaiting.end(), index),
            job->awaiting.end());
        if (!job->awaiting.empty()) return;

        // A refusal (queue_full/shedding) is saturation, not failure:
        // rewind placement one step so the retry lands on the same
        // shard once it recovers, keeping the job's cache affinity.
        // Other retryable codes keep the advanced cursor and fail over
        // down the chain.
        if ((code_name == "queue_full" || code_name == "shedding") &&
            job->next_chain > 0) {
            job->next_chain--;
        }

        const double spent = clock_.elapsedMs(job->admitted);
        if (job->dispatches < options_.retry.max_attempts) {
            double backoff = resilience::retryBackoffMs(
                options_.retry, job->seq, job->dispatches);
            // Honour the shard's own estimate when it is the larger.
            if (retry_after_ms > backoff) backoff = retry_after_ms;
            if (job->deadline_ms <= 0.0 ||
                spent + backoff < job->deadline_ms) {
                job->parked = true;
                job->release = clock_.now() + durationMs(backoff);
                counters_.retried++;
                return;
            }
        }
        // Budget exhausted: fall through and deliver the refusal.
    }

    pending_.resolve(alias);
    resolveLocked(job, rewriteResponseId(line, alias, job->client_id),
                  !is_error);
}

void
FleetRouter::resolveLocked(const PendingPtr& job, const std::string& line,
                           bool ok)
{
    if (ok) counters_.resolved_ok++;
    else counters_.resolved_error++;
    (void)job;
    emitLine(line);
    idle_cv_.notify_all();
}

void
FleetRouter::onShardExit(size_t index, uint64_t generation)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Shard& shard = *shards_[index];
    if (shard.generation != generation) return;
    shard.alive = false;
    shard.ping_outstanding = false;
    shard.outlier = false;
    shard.outlier_streak = 0;
    shard.health.onProcessExit();
    shard.transport->noteEof();
    shard.transport->finished(); // reaps a pipe child's zombie now
    shard.respawn_attempts++;
    shard.next_respawn =
        clock_.now() +
        durationMs(resilience::retryBackoffMs(
            options_.respawn_backoff, uint64_t(index),
            std::min(shard.respawn_attempts, 16)));
    if (draining_) return;

    // Failover: every job whose only outstanding dispatch died with the
    // shard gets resubmitted down its preference chain right away.
    for (const PendingPtr& job : pending_.onShard(index)) {
        job->awaiting.erase(
            std::remove(job->awaiting.begin(), job->awaiting.end(), index),
            job->awaiting.end());
        if (!job->awaiting.empty()) continue; // hedge still in flight
        if (job->parked) continue;            // backoff release re-dispatches
        counters_.failovers++;
        dispatchLocked(job, /*hedge=*/false);
    }
}

bool
FleetRouter::dispatchLocked(const PendingPtr& job, bool hedge)
{
    const size_t n = job->chain.size();
    // Pass 0 routes past sustained load outliers (spill); pass 1 takes
    // any admitting shard, so an all-outlier fleet still serves.
    for (int pass = options_.spill ? 0 : 1; pass < 2; ++pass) {
        bool skipped_outlier = false;
        for (size_t tried = 0; tried < n; ++tried) {
            const size_t target =
                job->chain[(job->next_chain + tried) % n];
            Shard& shard = *shards_[target];
            if (!shard.alive) continue;
            if (shard.health.state() == ShardHealth::kDown) continue;
            if (hedge &&
                std::find(job->awaiting.begin(), job->awaiting.end(),
                          target) != job->awaiting.end()) {
                continue;
            }
            if (pass == 0 && shard.outlier) {
                skipped_outlier = true;
                continue;
            }
            if (!shard.breaker->tryAdmit()) continue;

            const std::string alias = pending_.issueAlias(job);
            job->request.set("id", serve::JsonValue::makeString(alias));
            if (!shard.transport->writeLine(job->request.dump())) {
                // Broken pipe / timed-out socket write: the reader's
                // EOF will run the full death path; meanwhile this
                // alias simply never answers (the job resolves through
                // the next dispatch, the alias becomes a stray entry
                // cleaned up at resolution).
                shard.health.onFailure();
                continue;
            }
            job->next_chain += tried + 1;
            shard.forwarded++;
            job->awaiting.push_back(target);
            job->dispatches++;
            job->parked = false;
            job->last_dispatch = clock_.now();
            if (pass == 0 && skipped_outlier) counters_.spills++;
            return true;
        }
        if (pass == 0 && !skipped_outlier) break; // re-walk changes nothing
    }
    job->next_chain += n; // full fruitless walk: keep rotation moving
    if (!hedge) parkOrFailLocked(job);
    return false;
}

void
FleetRouter::parkOrFailLocked(const PendingPtr& job)
{
    // No shard took the job. Park for a jittered backoff while the
    // attempt budget lasts — a respawn or breaker cooldown may be
    // moments away — then fail typed: never hang the client.
    job->parks++;
    const int attempts = job->dispatches + job->parks;
    const double spent = clock_.elapsedMs(job->admitted);
    if (attempts < options_.retry.max_attempts + 1) {
        const double backoff = resilience::retryBackoffMs(
            options_.retry, job->seq, attempts);
        if (job->deadline_ms <= 0.0 || spent + backoff < job->deadline_ms) {
            job->parked = true;
            job->release = clock_.now() + durationMs(backoff);
            return;
        }
    }
    pending_.erase(job);
    counters_.no_shard++;
    resolveLocked(job,
                  serve::encodeError(job->client_id,
                                     ErrorCode::kNoShardAvailable,
                                     "no live shard accepted the job after " +
                                         std::to_string(job->dispatches) +
                                         " dispatches"),
                  false);
}

bool
FleetRouter::handleLine(const std::string& line)
{
    serve::JsonValue parsed;
    try {
        parsed = serve::JsonValue::parse(line);
    } catch (const UserError& e) {
        std::lock_guard<std::mutex> lock(mutex_);
        counters_.rejected++;
        emitLine(serve::encodeError("", e.code(), e.what()));
        return true;
    }
    const std::string id = serve::requestId(parsed);
    const std::string op = parsed.stringOr("op", "run");

    if (op == "shutdown") return false;
    if (op == "ping") {
        std::lock_guard<std::mutex> lock(mutex_);
        size_t in_flight = 0;
        for (const PendingPtr& job : pending_.all()) {
            if (!job->parked) in_flight++;
        }
        emitLine(serve::encodePing(id, pending_.size(), in_flight));
        return true;
    }
    if (op == "metrics" || op == "fleet_status") {
        std::lock_guard<std::mutex> lock(mutex_);
        emitLine(fleetStatusLocked(id));
        return true;
    }

    serve::WireRequest request;
    try {
        request = serve::buildRequest(parsed);
    } catch (const UserError& e) {
        std::lock_guard<std::mutex> lock(mutex_);
        counters_.rejected++;
        emitLine(serve::encodeError(id, e.code(), e.what()));
        return true;
    }

    const Hash128 key = serve::jobKey(request.spec);
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || !started_) {
        counters_.rejected++;
        emitLine(serve::encodeError(id, ErrorCode::kServiceStopped,
                                    "fleet router is not accepting jobs"));
        return true;
    }
    const PendingPtr job =
        pending_.add(id, std::move(parsed), key, request.spec.deadline_ms,
                     ring_.preferenceChain(key), clock_.now());
    counters_.admitted++;
    dispatchLocked(job, /*hedge=*/false);
    return true;
}

void
FleetRouter::maintenanceLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopped_) {
        tick_cv_.wait_for(lock, durationMs(options_.maintenance_tick_ms),
                          [this] { return stopped_; });
        if (stopped_) break;
        maintenanceTickLocked();
    }
}

void
FleetRouter::maintenanceTickLocked()
{
    const Clock::TimePoint now = clock_.now();

    for (size_t i = 0; i < shards_.size(); ++i) {
        Shard& shard = *shards_[i];
        if (!shard.alive) {
            if (shard.transport) shard.transport->finished();
            if (options_.respawn && !draining_ && now >= shard.next_respawn) {
                // The reader that reported this death has finished its
                // last locked call (it set alive = false); joining here
                // only waits for thread teardown. For a pipe this
                // respawns the child; for TCP it re-dials the daemon —
                // same backoff schedule, same fresh generation.
                if (shard.reader.joinable()) shard.reader.join();
                shard.transport.reset();
                spawnShardLocked(i);
                shard.respawns++;
            }
            continue;
        }
        if (shard.transport->remote() &&
            shard.health.state() == ShardHealth::kDown &&
            shard.attachment_ping_failures >=
                uint64_t(options_.health.fail_threshold)) {
            // A remote shard never delivers EOF while the network
            // blackholes it; once probes against *this* connection have
            // kept failing with health down, tear the connection down
            // ourselves so the reader observes EOF and the normal
            // failover + backoff-reconnect path runs. Gating on the
            // attachment's own failures (not just sticky health state)
            // lets a fresh reconnect pong its way back up instead of
            // being recycled before its first probe answer.
            // (terminate is idempotent; the reader exits promptly.)
            shard.transport->terminate();
        }
        if (shard.ping_outstanding &&
            clock_.elapsedMs(shard.ping_sent) > options_.ping_timeout_ms) {
            shard.ping_outstanding = false;
            shard.pings_failed++;
            shard.attachment_ping_failures++;
            shard.health.onFailure();
        }
        if (!shard.ping_outstanding &&
            clock_.elapsedMs(shard.last_probe) >=
                options_.probe_interval_ms) {
            shard.ping_id =
                "!p" + std::to_string(i) + "." + std::to_string(shard.ping_seq++);
            shard.last_probe = now;
            if (shard.transport->writeLine("{\"op\":\"ping\",\"id\":\"" +
                                           shard.ping_id + "\"}")) {
                shard.ping_outstanding = true;
                shard.ping_sent = now;
            } else {
                shard.pings_failed++;
                shard.attachment_ping_failures++;
                shard.health.onFailure();
            }
        }
    }

    if (options_.spill) scoreOutliersLocked();
    if (options_.adaptive_placement &&
        clock_.elapsedMs(last_adaptive_) >= options_.adaptive_interval_ms) {
        adaptiveReweighLocked();
        last_adaptive_ = now;
    }

    for (const PendingPtr& job : pending_.all()) {
        if (job->parked) {
            if (now >= job->release) dispatchLocked(job, /*hedge=*/false);
            continue;
        }
        if (options_.hedge_ms > 0.0 && !job->hedged &&
            job->awaiting.size() == 1 &&
            clock_.elapsedMs(job->last_dispatch) >= options_.hedge_ms) {
            if (dispatchLocked(job, /*hedge=*/true)) {
                job->hedged = true;
                counters_.hedges++;
            }
        }
    }
}

void
FleetRouter::scoreOutliersLocked()
{
    // A shard's load only counts as an outlier against what the *rest*
    // of the fleet reports — fleet-wide saturation is back-pressure,
    // not an outlier — and only after `spill_streak` consecutive
    // outlier-looking probes, so one garbage-collection hiccup on a
    // shard does not bounce its keyspace around the ring.
    for (size_t i = 0; i < shards_.size(); ++i) {
        Shard& shard = *shards_[i];
        if (!shard.alive || shard.health.state() == ShardHealth::kDown) {
            shard.outlier = false;
            shard.outlier_streak = 0;
            continue;
        }
        if (shard.pongs_scored == shard.pings_ok) continue; // no new data
        shard.pongs_scored = shard.pings_ok;

        double peer_depth = 0.0;
        double peer_rtt = 0.0;
        size_t peers = 0;
        for (size_t j = 0; j < shards_.size(); ++j) {
            if (j == i || !shards_[j]->alive) continue;
            peer_depth += shards_[j]->queue_depth;
            peer_rtt += shards_[j]->last_rtt_ms;
            peers++;
        }
        if (peers == 0) { // a one-shard fleet has nothing to spill to
            shard.outlier = false;
            shard.outlier_streak = 0;
            continue;
        }
        peer_depth /= double(peers);
        peer_rtt /= double(peers);

        const bool depth_outlier =
            shard.queue_depth >= options_.spill_min_depth &&
            shard.queue_depth > options_.spill_factor * peer_depth;
        const bool rtt_outlier =
            shard.last_rtt_ms >= options_.spill_min_rtt_ms &&
            shard.last_rtt_ms > options_.spill_factor * peer_rtt;
        if (depth_outlier || rtt_outlier) {
            shard.outlier_streak =
                std::min(shard.outlier_streak + 1, 1 << 20);
            if (shard.outlier_streak >= options_.spill_streak) {
                shard.outlier = true;
            }
        } else {
            shard.outlier_streak = 0;
            shard.outlier = false;
        }
    }
}

void
FleetRouter::adaptiveReweighLocked()
{
    // Measure each live shard's service rate (responses per second
    // since the previous reweigh), smooth it, and re-derive ring
    // weights relative to the fleet mean. Clamping and quantizing the
    // weight means a steady fleet rebuilds nothing, and even a 2x-fast
    // shard moves only the keys its extra tail vnodes claim.
    const double interval_s =
        std::max(1e-3, clock_.elapsedMs(last_adaptive_) / 1000.0);
    double rate_sum = 0.0;
    size_t live = 0;
    for (const auto& shard_ptr : shards_) {
        Shard& shard = *shard_ptr;
        const double delta =
            double(shard.responses - shard.rate_base_responses);
        shard.rate_base_responses = shard.responses;
        const double rate = delta / interval_s;
        shard.service_rate =
            shard.service_rate == 0.0
                ? rate
                : (1.0 - options_.adaptive_alpha) * shard.service_rate +
                      options_.adaptive_alpha * rate;
        if (shard.alive) {
            rate_sum += shard.service_rate;
            live++;
        }
    }
    if (live == 0 || rate_sum <= 0.0) return; // no signal yet

    const double mean = rate_sum / double(live);
    std::vector<double> weights(shards_.size(), 1.0);
    bool changed = false;
    for (size_t i = 0; i < shards_.size(); ++i) {
        Shard& shard = *shards_[i];
        double w = shard.weight;
        if (shard.alive && shard.service_rate > 0.0) {
            w = shard.service_rate / mean;
            w = std::min(2.0, std::max(0.5, w));
            w = double(int(w * 4.0 + 0.5)) / 4.0; // quantize: 1/4 steps
        }
        weights[i] = w;
        if (w != shard.weight) {
            shard.weight = w;
            changed = true;
        }
    }
    if (!changed) return;

    ring_ = HashRing(shards_.size(), weights, options_.vnodes);
    counters_.rebalances++;
    status_cache_valid_ = false;
    // In-flight jobs keep their admission-time chains (their dispatch
    // bookkeeping indexes into them); only new admissions see the
    // reweighted ring. That is the affinity-preserving choice too.
}

bool
FleetRouter::drainFor(double timeout_ms)
{
    std::unique_lock<std::mutex> lock(mutex_);
    return idle_cv_.wait_for(lock, durationMs(timeout_ms),
                             [this] { return pending_.size() == 0; });
}

void
FleetRouter::stop(double shard_grace_ms)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_ || !started_) {
            stopped_ = true;
            return;
        }
        draining_ = true;
        stopped_ = true;
    }
    tick_cv_.notify_all();
    if (maintenance_.joinable()) maintenance_.join();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& shard : shards_) {
            if (shard->alive && shard->transport) {
                // A spawned child is ours to drain and stop; a remote
                // daemon is a shared service — close our connection
                // (it sees EOF and drops the session) but never send
                // it a fleet-wide shutdown.
                if (!shard->transport->remote()) {
                    shard->transport->writeLine("{\"op\":\"shutdown\"}");
                }
                shard->transport->closeWrite();
            }
        }
    }

    // Bounded graceful-exit wait, then hard teardown (SIGKILL for a
    // child, socket shutdown for TCP). No router lock here: readers
    // still need it for their final onShardExit.
    const Clock::TimePoint deadline =
        clock_.now() + durationMs(shard_grace_ms);
    for (const auto& shard : shards_) {
        if (!shard->transport) continue;
        while (!shard->transport->finished() && clock_.now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        shard->transport->terminate();
        if (shard->reader.joinable()) shard->reader.join();
    }

    std::lock_guard<std::mutex> lock(mutex_);
    for (const PendingPtr& job : pending_.all()) {
        pending_.erase(job);
        resolveLocked(job,
                      serve::encodeError(job->client_id,
                                         ErrorCode::kServiceStopped,
                                         "fleet stopped before the job "
                                         "resolved"),
                      false);
    }
}

size_t
FleetRouter::pendingCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_.size();
}

FleetCounters
FleetRouter::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    FleetCounters snapshot = counters_;
    snapshot.status_cache_hits = status_cache_hits_;
    return snapshot;
}

ShardStatus
FleetRouter::shardStatus(size_t index) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    QA_REQUIRE(index < shards_.size(), "shard index out of range");
    const Shard& shard = *shards_[index];
    ShardStatus status;
    status.index = int(index);
    status.pid = shard.transport ? shard.transport->pid() : -1;
    status.alive = shard.alive;
    status.generation = shard.generation;
    status.health = shard.health.state();
    status.breaker = shard.breaker->state();
    status.forwarded = shard.forwarded;
    status.responses = shard.responses;
    status.errors = shard.errors;
    status.pings_ok = shard.pings_ok;
    status.pings_failed = shard.pings_failed;
    status.respawns = shard.respawns;
    status.down_transitions = shard.health.downTransitions();
    status.last_rtt_ms = shard.last_rtt_ms;
    status.transport =
        shard.transport ? shard.transport->kindName()
                        : (index < endpoints_.size() ? "tcp" : "pipe");
    status.attachment =
        shard.transport ? shard.transport->describe()
                        : (index < endpoints_.size()
                               ? endpoints_[index].str()
                               : std::string("unspawned"));
    status.queue_depth = shard.queue_depth;
    status.outlier = shard.outlier;
    status.service_rate = shard.service_rate;
    status.weight = shard.weight;
    status.vnodes = ring_.vnodesOf(index);
    return status;
}

std::string
FleetRouter::fleetStatusJson(const std::string& id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fleetStatusLocked(id);
}

std::string
FleetRouter::fleetStatusLocked(const std::string& id) const
{
    // The id is the only per-request part of the line, so the body is
    // cacheable: under a status-polling load the snapshot is rebuilt at
    // most once per TTL instead of once per request.
    if (options_.status_cache_ms > 0.0 && status_cache_valid_ &&
        clock_.elapsedMs(status_cache_at_) < options_.status_cache_ms) {
        status_cache_hits_++;
        return "{\"id\":\"" + serve::jsonEscape(id) + "\"" +
               status_cache_body_;
    }

    std::ostringstream out;
    out << ",\"status\":\"ok\",\"fleet\":{\"shards\":" << shards_.size()
        << ",\"pending\":" << pending_.size()
        << ",\"admitted\":" << counters_.admitted
        << ",\"resolved_ok\":" << counters_.resolved_ok
        << ",\"resolved_error\":" << counters_.resolved_error
        << ",\"rejected\":" << counters_.rejected
        << ",\"retried\":" << counters_.retried
        << ",\"failovers\":" << counters_.failovers
        << ",\"hedges\":" << counters_.hedges
        << ",\"strays\":" << counters_.strays
        << ",\"no_shard\":" << counters_.no_shard
        << ",\"spills\":" << counters_.spills
        << ",\"rebalances\":" << counters_.rebalances
        << ",\"status_cache_hits\":" << status_cache_hits_
        << ",\"shard\":[";
    for (size_t i = 0; i < shards_.size(); ++i) {
        const Shard& shard = *shards_[i];
        if (i != 0) out << ",";
        out << "{\"index\":" << i << ",\"transport\":\""
            << (shard.transport
                    ? shard.transport->kindName()
                    : (i < endpoints_.size() ? "tcp" : "pipe"))
            << "\",\"attachment\":\""
            << serve::jsonEscape(shard.transport
                                     ? shard.transport->describe()
                                     : std::string("unspawned"))
            << "\",\"pid\":" << (shard.transport ? shard.transport->pid() : -1)
            << ",\"alive\":" << (shard.alive ? "true" : "false")
            << ",\"generation\":" << shard.generation << ",\"state\":\""
            << shardHealthName(shard.health.state()) << "\",\"breaker\":\""
            << resilience::breakerStateName(shard.breaker->state())
            << "\",\"forwarded\":" << shard.forwarded
            << ",\"responses\":" << shard.responses
            << ",\"errors\":" << shard.errors
            << ",\"pings_ok\":" << shard.pings_ok
            << ",\"pings_failed\":" << shard.pings_failed
            << ",\"respawns\":" << shard.respawns
            << ",\"down_transitions\":" << shard.health.downTransitions()
            << ",\"last_rtt_ms\":" << serve::jsonNumber(shard.last_rtt_ms)
            << ",\"queue_depth\":" << serve::jsonNumber(shard.queue_depth)
            << ",\"outlier\":" << (shard.outlier ? "true" : "false")
            << ",\"service_rate\":" << serve::jsonNumber(shard.service_rate)
            << ",\"weight\":" << serve::jsonNumber(shard.weight)
            << ",\"vnodes\":" << ring_.vnodesOf(i) << "}";
    }
    out << "]}}";
    status_cache_body_ = out.str();
    status_cache_at_ = clock_.now();
    status_cache_valid_ = true;
    return "{\"id\":\"" + serve::jsonEscape(id) + "\"" +
           status_cache_body_;
}

void
FleetRouter::emitLine(const std::string& line)
{
    std::lock_guard<std::mutex> lock(emit_mutex_);
    if (emit_) emit_(line);
}

} // namespace fleet
} // namespace qa
