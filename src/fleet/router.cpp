#include "fleet/router.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>

#include "common/error.hpp"
#include "serve/job.hpp"
#include "serve/wire.hpp"

namespace qa
{
namespace fleet
{

namespace
{

std::chrono::steady_clock::duration
durationMs(double ms)
{
    return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(ms));
}

/**
 * Shard error codes the fleet is allowed to redispatch: refusals
 * (queue_full/shedding — the shard is healthy but saturated),
 * service_stopped (the shard is draining; a sibling is not), and the
 * transient execution failures the scheduler itself would retry. Typed
 * caller mistakes (bad_request, qasm_syntax, ...) fail identically on
 * every shard and are delivered as-is.
 */
bool
fleetRetryableCode(const std::string& name)
{
    if (name == "queue_full" || name == "shedding" ||
        name == "service_stopped") {
        return true;
    }
    ErrorCode code = ErrorCode::kGeneric;
    if (name == "worker_lost") code = ErrorCode::kWorkerLost;
    else if (name == "worker_failure") code = ErrorCode::kWorkerFailure;
    else if (name != "generic") return false;
    return resilience::isTransientError(code);
}

/** Swap the quoted alias id in a shard response for the client's id. */
std::string
rewriteResponseId(const std::string& line, const std::string& alias,
                  const std::string& client_id)
{
    const std::string needle = "\"" + alias + "\"";
    const size_t pos = line.find(needle);
    if (pos == std::string::npos) return line;
    std::string out = line;
    out.replace(pos, needle.size(),
                "\"" + serve::jsonEscape(client_id) + "\"");
    return out;
}

} // namespace

resilience::BreakerOptions
defaultShardBreaker()
{
    resilience::BreakerOptions options;
    options.enabled = true;
    // Shard-sized traffic: a smaller window and sample floor than the
    // in-process scheduler breaker, so a genuinely failing shard trips
    // within a few dozen responses.
    options.window = 32;
    options.min_samples = 8;
    options.failure_threshold = 0.6;
    options.open_cooldown_ms = 500.0;
    options.half_open_probes = 2;
    return options;
}

FleetRouter::FleetRouter(RouterOptions options, Emit emit)
    : options_(std::move(options)), clock_(resolveClock(options_.clock)),
      emit_(std::move(emit)),
      ring_(options_.shards == 0 ? 1 : options_.shards, options_.vnodes)
{
    QA_REQUIRE(options_.shards > 0, "fleet needs at least one shard");
    QA_REQUIRE(!options_.shard_command.empty(),
               "fleet needs a shard command");
    shards_.reserve(options_.shards);
    for (size_t i = 0; i < options_.shards; ++i) {
        auto shard = std::make_unique<Shard>();
        shard->health = HealthTracker(options_.health);
        shard->breaker = std::make_unique<resilience::CircuitBreaker>(
            options_.breaker, options_.clock);
        shards_.push_back(std::move(shard));
    }
}

FleetRouter::~FleetRouter()
{
    stop();
}

std::vector<std::string>
FleetRouter::shardArgv(size_t index, uint64_t generation) const
{
    std::vector<std::string> argv = options_.shard_command;
    if (!options_.journal_dir.empty()) {
        argv.push_back("--journal");
        // Generation-suffixed so a respawned shard gets a fresh file:
        // qassertd journal seqs restart at 0 per process, and appending
        // two processes' records to one file would break replay.
        argv.push_back(options_.journal_dir + "/shard-" +
                       std::to_string(index) + ".g" +
                       std::to_string(generation) + ".ndjson");
    }
    return argv;
}

void
FleetRouter::spawnShardLocked(size_t index)
{
    Shard& shard = *shards_[index];
    shard.generation++;
    shard.proc =
        std::make_unique<ChildProcess>(shardArgv(index, shard.generation));
    shard.alive = true;
    shard.ping_outstanding = false;
    // Probe soon: recovery needs recover_threshold pongs.
    shard.last_probe = clock_.now() - durationMs(options_.probe_interval_ms);
    const uint64_t generation = shard.generation;
    const int fd = shard.proc->readFd();
    shard.reader = std::thread(
        [this, index, generation, fd] { readerLoop(index, generation, fd); });
}

void
FleetRouter::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    QA_REQUIRE(!started_, "fleet router already started");
    started_ = true;
    if (!options_.journal_dir.empty()) {
        // Shards open their journal at exec and exit if the directory
        // is missing — which would take the whole fleet down before the
        // first job. Create it here instead of pushing that onto every
        // operator.
        std::error_code ec;
        std::filesystem::create_directories(options_.journal_dir, ec);
        QA_REQUIRE(!ec, "cannot create journal dir '" +
                            options_.journal_dir + "': " + ec.message());
    }
    for (size_t i = 0; i < shards_.size(); ++i) spawnShardLocked(i);
    maintenance_ = std::thread([this] { maintenanceLoop(); });
}

void
FleetRouter::readerLoop(size_t index, uint64_t generation, int fd)
{
    LineReader reader(fd, options_.max_line);
    std::string line;
    for (;;) {
        const LineReader::Status status = reader.next(&line);
        if (status == LineReader::Status::kEof) {
            onShardExit(index, generation);
            return;
        }
        if (status == LineReader::Status::kOverflow) {
            std::lock_guard<std::mutex> lock(mutex_);
            shards_[index]->health.onFailure();
            continue;
        }
        onShardLine(index, generation, line);
    }
}

void
FleetRouter::handlePongLocked(size_t index, const std::string& alias)
{
    Shard& shard = *shards_[index];
    if (shard.ping_outstanding && shard.ping_id == alias) {
        shard.ping_outstanding = false;
        shard.pings_ok++;
        shard.last_rtt_ms = clock_.elapsedMs(shard.ping_sent);
    }
    // Even a late pong (its probe already counted as a timeout) proves
    // the shard is answering.
    shard.health.onSuccess();
}

void
FleetRouter::onShardLine(size_t index, uint64_t generation,
                         const std::string& line)
{
    std::string alias;
    if (!serve::peekResponseId(line, &alias)) {
        // Not a line any of our encoders produced; full parse for the id.
        try {
            alias = serve::requestId(serve::JsonValue::parse(line));
        } catch (const UserError&) {
            std::lock_guard<std::mutex> lock(mutex_);
            shards_[index]->health.onFailure();
            return;
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    Shard& shard = *shards_[index];
    const bool current = shard.generation == generation;

    if (alias.rfind("!p", 0) == 0) {
        if (current) handlePongLocked(index, alias);
        return;
    }

    if (current) shard.responses++;
    const PendingPtr job = pending_.find(alias);
    if (!job) {
        // Hedge loser, post-failover duplicate, or stale-generation
        // flush: the job already resolved through another alias.
        counters_.strays++;
        return;
    }

    // Any well-formed response proves the shard is answering.
    if (current) shard.health.onSuccess();

    // Classify: error lines may be redispatched instead of delivered.
    bool is_error = false;
    std::string code_name;
    double retry_after_ms = 0.0;
    try {
        const serve::JsonValue parsed = serve::JsonValue::parse(line);
        is_error = parsed.stringOr("status", "ok") == "error";
        if (is_error) {
            code_name = parsed.stringOr("code", "generic");
            retry_after_ms = parsed.numberOr("retry_after_ms", 0.0);
        }
    } catch (const UserError&) {
        if (current) shard.health.onFailure();
        counters_.strays++;
        return;
    }

    if (current) {
        if (is_error) {
            shard.errors++;
            shard.breaker->recordFailure();
        } else {
            shard.breaker->recordSuccess();
        }
    }

    if (is_error && fleetRetryableCode(code_name) && !draining_) {
        // This dispatch is spent; the job may have a hedge in flight.
        job->awaiting.erase(
            std::remove(job->awaiting.begin(), job->awaiting.end(), index),
            job->awaiting.end());
        if (!job->awaiting.empty()) return;

        const double spent = clock_.elapsedMs(job->admitted);
        if (job->dispatches < options_.retry.max_attempts) {
            double backoff = resilience::retryBackoffMs(
                options_.retry, job->seq, job->dispatches);
            // Honour the shard's own estimate when it is the larger.
            if (retry_after_ms > backoff) backoff = retry_after_ms;
            if (job->deadline_ms <= 0.0 ||
                spent + backoff < job->deadline_ms) {
                job->parked = true;
                job->release = clock_.now() + durationMs(backoff);
                counters_.retried++;
                return;
            }
        }
        // Budget exhausted: fall through and deliver the refusal.
    }

    pending_.resolve(alias);
    resolveLocked(job, rewriteResponseId(line, alias, job->client_id),
                  !is_error);
}

void
FleetRouter::resolveLocked(const PendingPtr& job, const std::string& line,
                           bool ok)
{
    if (ok) counters_.resolved_ok++;
    else counters_.resolved_error++;
    (void)job;
    emitLine(line);
    idle_cv_.notify_all();
}

void
FleetRouter::onShardExit(size_t index, uint64_t generation)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Shard& shard = *shards_[index];
    if (shard.generation != generation) return;
    shard.alive = false;
    shard.ping_outstanding = false;
    shard.health.onProcessExit();
    shard.proc->tryReap();
    shard.respawn_attempts++;
    shard.next_respawn =
        clock_.now() +
        durationMs(resilience::retryBackoffMs(
            options_.respawn_backoff, uint64_t(index),
            std::min(shard.respawn_attempts, 16)));
    if (draining_) return;

    // Failover: every job whose only outstanding dispatch died with the
    // shard gets resubmitted down its preference chain right away.
    for (const PendingPtr& job : pending_.onShard(index)) {
        job->awaiting.erase(
            std::remove(job->awaiting.begin(), job->awaiting.end(), index),
            job->awaiting.end());
        if (!job->awaiting.empty()) continue; // hedge still in flight
        if (job->parked) continue;            // backoff release re-dispatches
        counters_.failovers++;
        dispatchLocked(job, /*hedge=*/false);
    }
}

bool
FleetRouter::dispatchLocked(const PendingPtr& job, bool hedge)
{
    const size_t n = job->chain.size();
    for (size_t tried = 0; tried < n; ++tried) {
        const size_t target = job->chain[job->next_chain % n];
        job->next_chain++;
        Shard& shard = *shards_[target];
        if (!shard.alive) continue;
        if (shard.health.state() == ShardHealth::kDown) continue;
        if (hedge && std::find(job->awaiting.begin(), job->awaiting.end(),
                               target) != job->awaiting.end()) {
            continue;
        }
        if (!shard.breaker->tryAdmit()) continue;

        const std::string alias = pending_.issueAlias(job);
        job->request.set("id", serve::JsonValue::makeString(alias));
        if (!shard.proc->writeLine(job->request.dump())) {
            // Broken pipe: the reader's EOF will run the full death
            // path; meanwhile this alias simply never answers (the job
            // resolves through the next dispatch, the alias becomes a
            // stray entry cleaned up at resolution).
            shard.health.onFailure();
            continue;
        }
        shard.forwarded++;
        job->awaiting.push_back(target);
        job->dispatches++;
        job->parked = false;
        job->last_dispatch = clock_.now();
        return true;
    }
    if (!hedge) parkOrFailLocked(job);
    return false;
}

void
FleetRouter::parkOrFailLocked(const PendingPtr& job)
{
    // No shard took the job. Park for a jittered backoff while the
    // attempt budget lasts — a respawn or breaker cooldown may be
    // moments away — then fail typed: never hang the client.
    job->parks++;
    const int attempts = job->dispatches + job->parks;
    const double spent = clock_.elapsedMs(job->admitted);
    if (attempts < options_.retry.max_attempts + 1) {
        const double backoff = resilience::retryBackoffMs(
            options_.retry, job->seq, attempts);
        if (job->deadline_ms <= 0.0 || spent + backoff < job->deadline_ms) {
            job->parked = true;
            job->release = clock_.now() + durationMs(backoff);
            return;
        }
    }
    pending_.erase(job);
    counters_.no_shard++;
    resolveLocked(job,
                  serve::encodeError(job->client_id,
                                     ErrorCode::kNoShardAvailable,
                                     "no live shard accepted the job after " +
                                         std::to_string(job->dispatches) +
                                         " dispatches"),
                  false);
}

bool
FleetRouter::handleLine(const std::string& line)
{
    serve::JsonValue parsed;
    try {
        parsed = serve::JsonValue::parse(line);
    } catch (const UserError& e) {
        std::lock_guard<std::mutex> lock(mutex_);
        counters_.rejected++;
        emitLine(serve::encodeError("", e.code(), e.what()));
        return true;
    }
    const std::string id = serve::requestId(parsed);
    const std::string op = parsed.stringOr("op", "run");

    if (op == "shutdown") return false;
    if (op == "ping") {
        std::lock_guard<std::mutex> lock(mutex_);
        size_t in_flight = 0;
        for (const PendingPtr& job : pending_.all()) {
            if (!job->parked) in_flight++;
        }
        emitLine(serve::encodePing(id, pending_.size(), in_flight));
        return true;
    }
    if (op == "metrics" || op == "fleet_status") {
        std::lock_guard<std::mutex> lock(mutex_);
        emitLine(fleetStatusLocked(id));
        return true;
    }

    serve::WireRequest request;
    try {
        request = serve::buildRequest(parsed);
    } catch (const UserError& e) {
        std::lock_guard<std::mutex> lock(mutex_);
        counters_.rejected++;
        emitLine(serve::encodeError(id, e.code(), e.what()));
        return true;
    }

    const Hash128 key = serve::jobKey(request.spec);
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || !started_) {
        counters_.rejected++;
        emitLine(serve::encodeError(id, ErrorCode::kServiceStopped,
                                    "fleet router is not accepting jobs"));
        return true;
    }
    const PendingPtr job =
        pending_.add(id, std::move(parsed), key, request.spec.deadline_ms,
                     ring_.preferenceChain(key), clock_.now());
    counters_.admitted++;
    dispatchLocked(job, /*hedge=*/false);
    return true;
}

void
FleetRouter::maintenanceLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopped_) {
        tick_cv_.wait_for(lock, durationMs(options_.maintenance_tick_ms),
                          [this] { return stopped_; });
        if (stopped_) break;
        maintenanceTickLocked();
    }
}

void
FleetRouter::maintenanceTickLocked()
{
    const Clock::TimePoint now = clock_.now();

    for (size_t i = 0; i < shards_.size(); ++i) {
        Shard& shard = *shards_[i];
        if (!shard.alive) {
            if (shard.proc) shard.proc->tryReap();
            if (options_.respawn && !draining_ && now >= shard.next_respawn) {
                // The reader that reported this death has finished its
                // last locked call (it set alive = false); joining here
                // only waits for thread teardown.
                if (shard.reader.joinable()) shard.reader.join();
                shard.proc.reset();
                spawnShardLocked(i);
                shard.respawns++;
            }
            continue;
        }
        if (shard.ping_outstanding &&
            clock_.elapsedMs(shard.ping_sent) > options_.ping_timeout_ms) {
            shard.ping_outstanding = false;
            shard.pings_failed++;
            shard.health.onFailure();
        }
        if (!shard.ping_outstanding &&
            clock_.elapsedMs(shard.last_probe) >=
                options_.probe_interval_ms) {
            shard.ping_id =
                "!p" + std::to_string(i) + "." + std::to_string(shard.ping_seq++);
            shard.last_probe = now;
            if (shard.proc->writeLine("{\"op\":\"ping\",\"id\":\"" +
                                      shard.ping_id + "\"}")) {
                shard.ping_outstanding = true;
                shard.ping_sent = now;
            } else {
                shard.pings_failed++;
                shard.health.onFailure();
            }
        }
    }

    for (const PendingPtr& job : pending_.all()) {
        if (job->parked) {
            if (now >= job->release) dispatchLocked(job, /*hedge=*/false);
            continue;
        }
        if (options_.hedge_ms > 0.0 && !job->hedged &&
            job->awaiting.size() == 1 &&
            clock_.elapsedMs(job->last_dispatch) >= options_.hedge_ms) {
            if (dispatchLocked(job, /*hedge=*/true)) {
                job->hedged = true;
                counters_.hedges++;
            }
        }
    }
}

bool
FleetRouter::drainFor(double timeout_ms)
{
    std::unique_lock<std::mutex> lock(mutex_);
    return idle_cv_.wait_for(lock, durationMs(timeout_ms),
                             [this] { return pending_.size() == 0; });
}

void
FleetRouter::stop(double shard_grace_ms)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_ || !started_) {
            stopped_ = true;
            return;
        }
        draining_ = true;
        stopped_ = true;
    }
    tick_cv_.notify_all();
    if (maintenance_.joinable()) maintenance_.join();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& shard : shards_) {
            if (shard->alive && shard->proc) {
                shard->proc->writeLine("{\"op\":\"shutdown\"}");
                shard->proc->closeStdin();
            }
        }
    }

    // Bounded graceful-exit wait, then SIGKILL. No router lock here:
    // readers still need it for their final onShardExit.
    const Clock::TimePoint deadline =
        clock_.now() + durationMs(shard_grace_ms);
    for (const auto& shard : shards_) {
        if (!shard->proc) continue;
        while (!shard->proc->tryReap() && clock_.now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        if (!shard->proc->reaped()) shard->proc->forceReap();
        if (shard->reader.joinable()) shard->reader.join();
    }

    std::lock_guard<std::mutex> lock(mutex_);
    for (const PendingPtr& job : pending_.all()) {
        pending_.erase(job);
        resolveLocked(job,
                      serve::encodeError(job->client_id,
                                         ErrorCode::kServiceStopped,
                                         "fleet stopped before the job "
                                         "resolved"),
                      false);
    }
}

size_t
FleetRouter::pendingCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_.size();
}

FleetCounters
FleetRouter::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

ShardStatus
FleetRouter::shardStatus(size_t index) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    QA_REQUIRE(index < shards_.size(), "shard index out of range");
    const Shard& shard = *shards_[index];
    ShardStatus status;
    status.index = int(index);
    status.pid = shard.proc ? shard.proc->pid() : -1;
    status.alive = shard.alive;
    status.generation = shard.generation;
    status.health = shard.health.state();
    status.breaker = shard.breaker->state();
    status.forwarded = shard.forwarded;
    status.responses = shard.responses;
    status.errors = shard.errors;
    status.pings_ok = shard.pings_ok;
    status.pings_failed = shard.pings_failed;
    status.respawns = shard.respawns;
    status.down_transitions = shard.health.downTransitions();
    status.last_rtt_ms = shard.last_rtt_ms;
    return status;
}

std::string
FleetRouter::fleetStatusJson(const std::string& id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fleetStatusLocked(id);
}

std::string
FleetRouter::fleetStatusLocked(const std::string& id) const
{
    std::ostringstream out;
    out << "{\"id\":\"" << serve::jsonEscape(id)
        << "\",\"status\":\"ok\",\"fleet\":{\"shards\":" << shards_.size()
        << ",\"pending\":" << pending_.size()
        << ",\"admitted\":" << counters_.admitted
        << ",\"resolved_ok\":" << counters_.resolved_ok
        << ",\"resolved_error\":" << counters_.resolved_error
        << ",\"rejected\":" << counters_.rejected
        << ",\"retried\":" << counters_.retried
        << ",\"failovers\":" << counters_.failovers
        << ",\"hedges\":" << counters_.hedges
        << ",\"strays\":" << counters_.strays
        << ",\"no_shard\":" << counters_.no_shard << ",\"shard\":[";
    for (size_t i = 0; i < shards_.size(); ++i) {
        const Shard& shard = *shards_[i];
        if (i != 0) out << ",";
        out << "{\"index\":" << i
            << ",\"pid\":" << (shard.proc ? shard.proc->pid() : -1)
            << ",\"alive\":" << (shard.alive ? "true" : "false")
            << ",\"generation\":" << shard.generation << ",\"state\":\""
            << shardHealthName(shard.health.state()) << "\",\"breaker\":\""
            << resilience::breakerStateName(shard.breaker->state())
            << "\",\"forwarded\":" << shard.forwarded
            << ",\"responses\":" << shard.responses
            << ",\"errors\":" << shard.errors
            << ",\"pings_ok\":" << shard.pings_ok
            << ",\"pings_failed\":" << shard.pings_failed
            << ",\"respawns\":" << shard.respawns
            << ",\"down_transitions\":" << shard.health.downTransitions()
            << ",\"last_rtt_ms\":" << serve::jsonNumber(shard.last_rtt_ms)
            << "}";
    }
    out << "]}}";
    return out.str();
}

void
FleetRouter::emitLine(const std::string& line)
{
    std::lock_guard<std::mutex> lock(emit_mutex_);
    if (emit_) emit_(line);
}

} // namespace fleet
} // namespace qa
