#include "fleet/health.hpp"

namespace qa
{
namespace fleet
{

const char*
shardHealthName(ShardHealth health)
{
    switch (health) {
      case ShardHealth::kUp:       return "up";
      case ShardHealth::kDegraded: return "degraded";
      case ShardHealth::kDown:     return "down";
    }
    return "unknown";
}

void
HealthTracker::onSuccess()
{
    consecutive_failures_ = 0;
    if (state_ == ShardHealth::kDown) {
        if (++consecutive_successes_ >= options_.recover_threshold) {
            state_ = ShardHealth::kUp;
            consecutive_successes_ = 0;
        }
        return;
    }
    consecutive_successes_ = 0;
    state_ = ShardHealth::kUp;
}

void
HealthTracker::onFailure()
{
    consecutive_successes_ = 0;
    ++consecutive_failures_;
    if (state_ == ShardHealth::kDown) return;
    if (consecutive_failures_ >= options_.fail_threshold) {
        enterDown();
    } else {
        state_ = ShardHealth::kDegraded;
    }
}

void
HealthTracker::onProcessExit()
{
    consecutive_successes_ = 0;
    consecutive_failures_ = 0;
    if (state_ != ShardHealth::kDown) enterDown();
}

void
HealthTracker::enterDown()
{
    state_ = ShardHealth::kDown;
    consecutive_failures_ = 0;
    consecutive_successes_ = 0;
    ++down_transitions_;
}

} // namespace fleet
} // namespace qa
