/**
 * @file
 * FleetRouter: the multi-process front-end behind the qa_router binary.
 *
 * Topology: the router fork/execs N qassertd shard children (NDJSON
 * over pipes), consistent-hashes each admitted job's 128-bit structural
 * jobKey onto the shard ring (serve-layer cache affinity for free: the
 * same circuit structure always lands on the same shard while it is
 * up), and multiplexes responses back to the client, rewriting its
 * per-dispatch alias ids back to the client's ids.
 *
 * Robustness contract (DESIGN.md Sec. 13):
 *  - **Health probing**: a maintenance thread wire-pings every shard
 *    each probe interval; timeouts and failures drive the per-shard
 *    up/degraded/down state machine (fleet/health.hpp).
 *  - **Failover**: a down shard's keyspace re-hashes to its ring
 *    successors (fleet/ring.hpp); jobs in flight on a dead shard are
 *    resubmitted to the next live shard. Recovery restores affinity by
 *    construction.
 *  - **Per-shard circuit breakers** (resilience/breaker.hpp): a shard
 *    answering with failures trips its breaker and stops receiving
 *    dispatches until its cooldown probe succeeds.
 *  - **Deadline-aware jittered retries** (resilience/retry.hpp):
 *    shard-level refusals (queue_full/shedding/worker_lost/...) are
 *    retried on the ring with counter-based jittered backoff — also
 *    honouring the shard's own retry_after_ms hint — bounded by the
 *    attempt budget and the job's deadline.
 *  - **Hedged resubmission**: optionally, a job stuck past the stall
 *    threshold is duplicated to the next live shard; first response
 *    wins, the loser is dropped as a stray.
 *  - **Exactly-once**: every admitted job resolves to the client
 *    exactly once, through any combination of shard crash, respawn,
 *    retry, and hedging (fleet/pending.hpp is the single resolution
 *    point).
 *  - **All shards down** is a typed kNoShardAvailable error after the
 *    retry budget, never a hang.
 *
 * Threads: the caller's admission thread (handleLine), one reader
 * thread per live shard, and one maintenance thread (probes, backoff
 * releases, hedges, respawns). One router mutex guards all shared
 * state; shard stdin writes take only the per-process pipe mutex.
 */
#ifndef QA_FLEET_ROUTER_HPP
#define QA_FLEET_ROUTER_HPP

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "fleet/health.hpp"
#include "fleet/pending.hpp"
#include "fleet/process.hpp"
#include "fleet/ring.hpp"
#include "resilience/breaker.hpp"
#include "resilience/retry.hpp"

namespace qa
{
namespace fleet
{

/** Per-shard breaker defaults tuned for shard-sized outcome volumes. */
resilience::BreakerOptions defaultShardBreaker();

/** Fleet sizing and behaviour knobs. */
struct RouterOptions
{
    /** argv used to spawn each shard (binary + flags, no journal). */
    std::vector<std::string> shard_command;

    size_t shards = 3;

    /** Ring vnodes per shard. */
    size_t vnodes = 64;

    /**
     * When set, shard i of generation g journals to
     * `<journal_dir>/shard-<i>.g<g>.ndjson`. Fresh file per respawn so
     * every journal replays standalone (seq numbers restart per
     * process).
     */
    std::string journal_dir;

    /** Wire-ping cadence per shard. */
    double probe_interval_ms = 250.0;

    /** Unanswered-ping bound; past it the probe counts as a failure. */
    double ping_timeout_ms = 2000.0;

    /**
     * Hedged-resubmission stall threshold; 0 disables hedging. Only
     * ever one hedge per job, to a shard the job is not already on.
     */
    double hedge_ms = 0.0;

    /** Maintenance loop tick. */
    double maintenance_tick_ms = 10.0;

    /** Respawn dead shards (with backoff); off leaves them down. */
    bool respawn = true;

    /** Fleet-level retry sizing (attempts, jittered backoff). */
    resilience::RetryOptions retry;

    /** Respawn backoff sizing (slower than job retries). */
    resilience::RetryOptions respawn_backoff;

    /** Per-shard circuit breaker. */
    resilience::BreakerOptions breaker = defaultShardBreaker();

    /** Health state-machine thresholds. */
    HealthOptions health;

    /** Bound on client and shard line lengths. */
    size_t max_line = size_t(1) << 20;

    /** Time source; nullptr = the real steady clock. */
    Clock* clock = nullptr;

    RouterOptions()
    {
        respawn_backoff.base_backoff_ms = 50.0;
        respawn_backoff.max_backoff_ms = 2000.0;
    }
};

/** Fleet-wide monotonic counters (one consistent snapshot). */
struct FleetCounters
{
    uint64_t admitted = 0;       ///< Jobs accepted for routing.
    uint64_t resolved_ok = 0;    ///< Responses delivered with status ok.
    uint64_t resolved_error = 0; ///< Error responses delivered.
    uint64_t rejected = 0;       ///< Malformed requests refused at the edge.
    uint64_t retried = 0;        ///< Fleet-level redispatches after refusals.
    uint64_t failovers = 0;      ///< Jobs resubmitted off a dead shard.
    uint64_t hedges = 0;         ///< Hedged duplicates issued.
    uint64_t strays = 0;         ///< Late/duplicate shard responses dropped.
    uint64_t no_shard = 0;       ///< Jobs failed kNoShardAvailable.
};

/** Point-in-time view of one shard (fleet_status, tests). */
struct ShardStatus
{
    int index = 0;
    pid_t pid = -1;
    bool alive = false;
    uint64_t generation = 0;
    ShardHealth health = ShardHealth::kUp;
    resilience::CircuitBreaker::State breaker =
        resilience::CircuitBreaker::State::kClosed;
    uint64_t forwarded = 0;
    uint64_t responses = 0;
    uint64_t errors = 0;
    uint64_t pings_ok = 0;
    uint64_t pings_failed = 0;
    uint64_t respawns = 0;
    uint64_t down_transitions = 0;
    double last_rtt_ms = 0.0;
};

class FleetRouter
{
  public:
    /** Sink for client-facing response lines (no trailing newline). */
    using Emit = std::function<void(const std::string&)>;

    FleetRouter(RouterOptions options, Emit emit);

    /** stop()s: drains nothing by itself — call drainFor first. */
    ~FleetRouter();

    FleetRouter(const FleetRouter&) = delete;
    FleetRouter& operator=(const FleetRouter&) = delete;

    /** Spawn the shards, their readers, and the maintenance thread. */
    void start();

    /**
     * Process one client request line. Returns false when the line was
     * a shutdown request (the caller then drains and stops); every
     * other outcome — including malformed input, which is answered
     * with a typed error — returns true.
     */
    bool handleLine(const std::string& line);

    /**
     * Wait up to `timeout_ms` for every admitted job to resolve.
     * True when the pending table emptied.
     */
    bool drainFor(double timeout_ms);

    /**
     * Stop admission, ask the shards to drain (wire shutdown + stdin
     * EOF, bounded by `shard_grace_ms`, then SIGKILL), join readers and
     * the maintenance thread, and fail any still-pending job with
     * kServiceStopped. Idempotent.
     */
    void stop(double shard_grace_ms = 3000.0);

    size_t shards() const { return options_.shards; }
    size_t pendingCount() const;
    FleetCounters counters() const;
    ShardStatus shardStatus(size_t index) const;

    /** The fleet_status response line (also answers op "metrics"). */
    std::string fleetStatusJson(const std::string& id) const;

  private:
    struct Shard
    {
        std::unique_ptr<ChildProcess> proc;
        std::thread reader;
        uint64_t generation = 0;
        bool alive = false;
        HealthTracker health;
        std::unique_ptr<resilience::CircuitBreaker> breaker;

        bool ping_outstanding = false;
        std::string ping_id;
        uint64_t ping_seq = 0;
        Clock::TimePoint ping_sent;
        Clock::TimePoint last_probe;
        double last_rtt_ms = 0.0;

        int respawn_attempts = 0;
        Clock::TimePoint next_respawn;

        uint64_t forwarded = 0;
        uint64_t responses = 0;
        uint64_t errors = 0;
        uint64_t pings_ok = 0;
        uint64_t pings_failed = 0;
        uint64_t respawns = 0;
    };

    std::vector<std::string> shardArgv(size_t index,
                                       uint64_t generation) const;
    void spawnShardLocked(size_t index);
    void readerLoop(size_t index, uint64_t generation, int fd);
    void onShardLine(size_t index, uint64_t generation,
                     const std::string& line);
    void onShardExit(size_t index, uint64_t generation);
    void handlePongLocked(size_t index, const std::string& alias);

    /**
     * Issue one dispatch of `job` to the first admitting shard on its
     * chain (`hedge` additionally skips shards the job already waits
     * on, and fails soft). Returns false when no shard took it; for
     * non-hedge dispatches the job is then parked for a backoff retry
     * or — budget exhausted — resolved with kNoShardAvailable.
     */
    bool dispatchLocked(const PendingPtr& job, bool hedge);
    void parkOrFailLocked(const PendingPtr& job);
    void resolveLocked(const PendingPtr& job, const std::string& line,
                       bool ok);
    void maintenanceLoop();
    void maintenanceTickLocked();
    std::string fleetStatusLocked(const std::string& id) const;

    void emitLine(const std::string& line);

    RouterOptions options_;
    Clock& clock_;
    Emit emit_;
    HashRing ring_;

    mutable std::mutex mutex_;
    std::condition_variable idle_cv_;  ///< Pending resolutions.
    std::condition_variable tick_cv_;  ///< Maintenance stop wakeups.
    std::vector<std::unique_ptr<Shard>> shards_;
    PendingTable pending_;
    FleetCounters counters_;
    bool draining_ = false;
    bool stopped_ = false;
    bool started_ = false;

    std::thread maintenance_;
    std::mutex emit_mutex_;
};

} // namespace fleet
} // namespace qa

#endif // QA_FLEET_ROUTER_HPP
