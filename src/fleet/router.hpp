/**
 * @file
 * FleetRouter: the multi-process front-end behind the qa_router binary.
 *
 * Topology: the router attaches N qassertd shards — fork/exec'd
 * children on pipes, or remote `qassertd --listen` daemons over TCP
 * (fleet/transport.hpp; both NDJSON) — consistent-hashes each admitted
 * job's 128-bit structural jobKey onto the shard ring (serve-layer
 * cache affinity for free: the same circuit structure always lands on
 * the same shard while it is up), and multiplexes responses back to
 * the client, rewriting its per-dispatch alias ids back to the
 * client's ids.
 *
 * Robustness contract (DESIGN.md Sec. 13):
 *  - **Health probing**: a maintenance thread wire-pings every shard
 *    each probe interval; timeouts and failures drive the per-shard
 *    up/degraded/down state machine (fleet/health.hpp).
 *  - **Failover**: a down shard's keyspace re-hashes to its ring
 *    successors (fleet/ring.hpp); jobs in flight on a dead shard are
 *    resubmitted to the next live shard. Recovery restores affinity by
 *    construction.
 *  - **Per-shard circuit breakers** (resilience/breaker.hpp): a shard
 *    answering with failures trips its breaker and stops receiving
 *    dispatches until its cooldown probe succeeds.
 *  - **Deadline-aware jittered retries** (resilience/retry.hpp):
 *    shard-level refusals (queue_full/shedding/worker_lost/...) are
 *    retried on the ring with counter-based jittered backoff — also
 *    honouring the shard's own retry_after_ms hint — bounded by the
 *    attempt budget and the job's deadline.
 *  - **Hedged resubmission**: optionally, a job stuck past the stall
 *    threshold is duplicated to the next live shard; first response
 *    wins, the loser is dropped as a stray.
 *  - **Exactly-once**: every admitted job resolves to the client
 *    exactly once, through any combination of shard crash, respawn,
 *    retry, and hedging (fleet/pending.hpp is the single resolution
 *    point).
 *  - **All shards down** is a typed kNoShardAvailable error after the
 *    retry budget, never a hang.
 *
 * Remote-fleet additions (DESIGN.md Sec. 15):
 *  - **Reconnect with generation guards**: a dead TCP attachment is
 *    re-dialed on the respawn backoff schedule; each attachment is a
 *    new generation, and responses tagged with a stale generation can
 *    never resolve a job (they count as strays). A reconnected shard
 *    therefore cannot resurrect aliases that already failed over.
 *  - **Bounded socket I/O**: connect, write, and idle-read timeouts on
 *    the TCP path; a wedged remote (partition, slow-loris) surfaces as
 *    a read timeout or health-down, after which the router tears the
 *    connection down itself so the ordinary EOF death path (failover +
 *    backoff reconnect) runs.
 *  - **Load-aware placement**: pong-carried queue depths and probe
 *    RTTs feed an outlier detector; dispatch routes past an "up" shard
 *    whose load is a sustained outlier (spill), and measured service
 *    rates periodically reweight the ring's vnodes (rebalance) so a
 *    consistently faster shard owns more keyspace.
 *  - **Cached fleet_status**: status snapshots are served from a
 *    bounded-staleness cache so status polling cannot contend with
 *    dispatch under load.
 *
 * Threads: the caller's admission thread (handleLine), one reader
 * thread per live shard, and one maintenance thread (probes, backoff
 * releases, hedges, respawns/reconnects). One router mutex guards all
 * shared state; shard writes take only the per-transport write mutex.
 */
#ifndef QA_FLEET_ROUTER_HPP
#define QA_FLEET_ROUTER_HPP

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/net.hpp"
#include "fleet/health.hpp"
#include "fleet/pending.hpp"
#include "fleet/process.hpp"
#include "fleet/ring.hpp"
#include "fleet/transport.hpp"
#include "resilience/breaker.hpp"
#include "resilience/retry.hpp"

namespace qa
{
namespace fleet
{

/** Per-shard breaker defaults tuned for shard-sized outcome volumes. */
resilience::BreakerOptions defaultShardBreaker();

/** Fleet sizing and behaviour knobs. */
struct RouterOptions
{
    /** argv used to spawn each shard (binary + flags, no journal). */
    std::vector<std::string> shard_command;

    /**
     * Remote shards: one "host:port" per shard, each a running
     * `qassertd --listen` daemon. Non-empty switches the whole fleet to
     * TCP transports — `shards` becomes connect.size(), shard_command
     * is unused, and "respawn" means reconnect (the router never owns
     * a remote daemon's lifetime, so stop() closes connections without
     * sending the daemons a shutdown).
     */
    std::vector<std::string> connect;

    size_t shards = 3;

    /** Ring vnodes per shard (at weight 1.0). */
    size_t vnodes = 64;

    /** TCP transport bounds (connect / write / idle-read). */
    TcpTransport::Options tcp;

    /**
     * When set, shard i of generation g journals to
     * `<journal_dir>/shard-<i>.g<g>.ndjson`. Fresh file per respawn so
     * every journal replays standalone (seq numbers restart per
     * process).
     */
    std::string journal_dir;

    /** Wire-ping cadence per shard. */
    double probe_interval_ms = 250.0;

    /** Unanswered-ping bound; past it the probe counts as a failure. */
    double ping_timeout_ms = 2000.0;

    /**
     * Hedged-resubmission stall threshold; 0 disables hedging. Only
     * ever one hedge per job, to a shard the job is not already on.
     */
    double hedge_ms = 0.0;

    /** Maintenance loop tick. */
    double maintenance_tick_ms = 10.0;

    /** Respawn dead shards (with backoff); off leaves them down. */
    bool respawn = true;

    /** Fleet-level retry sizing (attempts, jittered backoff). */
    resilience::RetryOptions retry;

    /** Respawn backoff sizing (slower than job retries). */
    resilience::RetryOptions respawn_backoff;

    /** Per-shard circuit breaker. */
    resilience::BreakerOptions breaker = defaultShardBreaker();

    /** Health state-machine thresholds. */
    HealthOptions health;

    /** Bound on client and shard line lengths. */
    size_t max_line = size_t(1) << 20;

    /**
     * Outlier spill: when enabled, dispatch's first pass skips an "up"
     * shard whose pong queue depth or probe RTT has been an outlier
     * against the rest of the fleet for `spill_streak` consecutive
     * probes (a second pass still allows outliers, so a fleet that is
     * uniformly loaded never rejects work it could do).
     */
    bool spill = false;

    /** Outlier factor over the mean of the *other* shards. */
    double spill_factor = 3.0;

    /** Queue-depth floor below which a shard is never an outlier. */
    double spill_min_depth = 4.0;

    /** RTT floor (ms) below which RTT never marks an outlier. */
    double spill_min_rtt_ms = 50.0;

    /** Consecutive outlier probes before spill starts. */
    int spill_streak = 3;

    /**
     * Load-aware adaptive placement: periodically reweight ring vnodes
     * by each shard's measured service rate (EWMA of responses/s,
     * clamped to [0.5, 2.0] of the fleet mean and quantized to 1/4
     * steps so measurement jitter cannot churn the ring).
     */
    bool adaptive_placement = false;

    /** Reweigh cadence. */
    double adaptive_interval_ms = 2000.0;

    /** Service-rate EWMA smoothing factor. */
    double adaptive_alpha = 0.3;

    /** fleet_status cache TTL; 0 = rebuild the snapshot per request. */
    double status_cache_ms = 0.0;

    /** Time source; nullptr = the real steady clock. */
    Clock* clock = nullptr;

    RouterOptions()
    {
        respawn_backoff.base_backoff_ms = 50.0;
        respawn_backoff.max_backoff_ms = 2000.0;
    }
};

/** Fleet-wide monotonic counters (one consistent snapshot). */
struct FleetCounters
{
    uint64_t admitted = 0;       ///< Jobs accepted for routing.
    uint64_t resolved_ok = 0;    ///< Responses delivered with status ok.
    uint64_t resolved_error = 0; ///< Error responses delivered.
    uint64_t rejected = 0;       ///< Malformed requests refused at the edge.
    uint64_t retried = 0;        ///< Fleet-level redispatches after refusals.
    uint64_t failovers = 0;      ///< Jobs resubmitted off a dead shard.
    uint64_t hedges = 0;         ///< Hedged duplicates issued.
    uint64_t strays = 0;         ///< Late/duplicate shard responses dropped.
    uint64_t no_shard = 0;       ///< Jobs failed kNoShardAvailable.
    uint64_t spills = 0;         ///< Dispatches routed past an outlier shard.
    uint64_t rebalances = 0;     ///< Adaptive ring reweights applied.
    uint64_t status_cache_hits = 0; ///< fleet_status served from cache.
};

/** Point-in-time view of one shard (fleet_status, tests). */
struct ShardStatus
{
    int index = 0;
    pid_t pid = -1;
    bool alive = false;
    uint64_t generation = 0;
    ShardHealth health = ShardHealth::kUp;
    resilience::CircuitBreaker::State breaker =
        resilience::CircuitBreaker::State::kClosed;
    uint64_t forwarded = 0;
    uint64_t responses = 0;
    uint64_t errors = 0;
    uint64_t pings_ok = 0;
    uint64_t pings_failed = 0;
    uint64_t respawns = 0;
    uint64_t down_transitions = 0;
    double last_rtt_ms = 0.0;
    std::string transport;  ///< "pipe" or "tcp".
    std::string attachment; ///< "pid 1234" / "127.0.0.1:9001".
    double queue_depth = 0.0; ///< Last pong-reported queue depth.
    bool outlier = false;     ///< Currently spilled past by dispatch.
    double service_rate = 0.0; ///< EWMA responses/s (adaptive placement).
    double weight = 1.0;       ///< Current ring weight.
    size_t vnodes = 0;         ///< Ring positions currently owned.
};

class FleetRouter
{
  public:
    /** Sink for client-facing response lines (no trailing newline). */
    using Emit = std::function<void(const std::string&)>;

    FleetRouter(RouterOptions options, Emit emit);

    /** stop()s: drains nothing by itself — call drainFor first. */
    ~FleetRouter();

    FleetRouter(const FleetRouter&) = delete;
    FleetRouter& operator=(const FleetRouter&) = delete;

    /** Spawn the shards, their readers, and the maintenance thread. */
    void start();

    /**
     * Process one client request line. Returns false when the line was
     * a shutdown request (the caller then drains and stops); every
     * other outcome — including malformed input, which is answered
     * with a typed error — returns true.
     */
    bool handleLine(const std::string& line);

    /**
     * Wait up to `timeout_ms` for every admitted job to resolve.
     * True when the pending table emptied.
     */
    bool drainFor(double timeout_ms);

    /**
     * Stop admission, ask the shards to drain (wire shutdown + stdin
     * EOF, bounded by `shard_grace_ms`, then SIGKILL), join readers and
     * the maintenance thread, and fail any still-pending job with
     * kServiceStopped. Idempotent.
     */
    void stop(double shard_grace_ms = 3000.0);

    size_t shards() const { return options_.shards; }
    size_t pendingCount() const;
    FleetCounters counters() const;
    ShardStatus shardStatus(size_t index) const;

    /** The fleet_status response line (also answers op "metrics"). */
    std::string fleetStatusJson(const std::string& id) const;

  private:
    struct Shard
    {
        std::unique_ptr<ShardTransport> transport;
        std::thread reader;
        uint64_t generation = 0;
        bool alive = false;
        HealthTracker health;
        std::unique_ptr<resilience::CircuitBreaker> breaker;

        bool ping_outstanding = false;
        std::string ping_id;
        uint64_t ping_seq = 0;
        Clock::TimePoint ping_sent;
        Clock::TimePoint last_probe;
        double last_rtt_ms = 0.0;

        int respawn_attempts = 0;
        Clock::TimePoint next_respawn;

        uint64_t forwarded = 0;
        uint64_t responses = 0;
        uint64_t errors = 0;
        uint64_t pings_ok = 0;
        uint64_t pings_failed = 0;
        uint64_t respawns = 0;

        /**
         * Probe failures observed on the *current* attachment (reset at
         * spawn/reconnect). The remote health-down teardown keys on
         * this, not on the sticky HealthTracker state: a reconnected
         * shard whose health is still recovering from the previous
         * generation's death must get a chance to pong before the
         * maintenance loop may recycle its brand-new connection.
         */
        uint64_t attachment_ping_failures = 0;

        // Outlier spill (pong-fed; evaluated each probe).
        double queue_depth = 0.0;
        uint64_t pongs_scored = 0; ///< pings_ok already folded into streak.
        int outlier_streak = 0;
        bool outlier = false;

        // Adaptive placement (response-rate EWMA; per adaptive tick).
        uint64_t rate_base_responses = 0;
        double service_rate = 0.0;
        double weight = 1.0;
    };

    std::vector<std::string> shardArgv(size_t index,
                                       uint64_t generation) const;
    std::unique_ptr<ShardTransport> makeTransport(size_t index,
                                                  uint64_t generation) const;
    void spawnShardLocked(size_t index);
    void readerLoop(size_t index, uint64_t generation, int fd,
                    double idle_timeout_ms);
    void onShardLine(size_t index, uint64_t generation,
                     const std::string& line);
    void onShardExit(size_t index, uint64_t generation);
    void onReaderTimeout(size_t index, uint64_t generation);
    void handlePongLocked(size_t index, const std::string& alias,
                          double queue_depth);
    void scoreOutliersLocked();
    void adaptiveReweighLocked();

    /**
     * Issue one dispatch of `job` to the first admitting shard on its
     * chain (`hedge` additionally skips shards the job already waits
     * on, and fails soft). Returns false when no shard took it; for
     * non-hedge dispatches the job is then parked for a backoff retry
     * or — budget exhausted — resolved with kNoShardAvailable.
     */
    bool dispatchLocked(const PendingPtr& job, bool hedge);
    void parkOrFailLocked(const PendingPtr& job);
    void resolveLocked(const PendingPtr& job, const std::string& line,
                       bool ok);
    void maintenanceLoop();
    void maintenanceTickLocked();
    std::string fleetStatusLocked(const std::string& id) const;

    void emitLine(const std::string& line);

    RouterOptions options_;
    Clock& clock_;
    Emit emit_;
    HashRing ring_;
    std::vector<net::Endpoint> endpoints_; ///< Non-empty: TCP fleet.

    mutable std::mutex mutex_;
    std::condition_variable idle_cv_;  ///< Pending resolutions.
    std::condition_variable tick_cv_;  ///< Maintenance stop wakeups.
    std::vector<std::unique_ptr<Shard>> shards_;
    PendingTable pending_;
    FleetCounters counters_;
    bool draining_ = false;
    bool stopped_ = false;
    bool started_ = false;

    Clock::TimePoint last_adaptive_;

    // fleet_status cache: the body after the id is identical across
    // requests within the TTL, so only the id gets re-wrapped.
    mutable std::string status_cache_body_;
    mutable Clock::TimePoint status_cache_at_;
    mutable bool status_cache_valid_ = false;
    mutable uint64_t status_cache_hits_ = 0;

    std::thread maintenance_;
    std::mutex emit_mutex_;
};

} // namespace fleet
} // namespace qa

#endif // QA_FLEET_ROUTER_HPP
