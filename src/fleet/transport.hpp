/**
 * @file
 * ShardTransport: the one seam between the fleet router and however a
 * shard is actually reached.
 *
 * PR 7's router talked straight to a fork/exec'd ChildProcess; this
 * file lifts that contract into an interface with two implementations:
 *
 *  - **PipeTransport** — the original topology: a qassertd child on a
 *    pipe pair, spawned and SIGKILL-able by the router. "The shard
 *    died" is process exit, observed as EOF on its stdout.
 *  - **TcpTransport** — a connection to a remote `qassertd --listen`
 *    shard. The router neither spawns nor kills the daemon; "the shard
 *    died" is connection death (EOF, reset, bounded-connect failure,
 *    or a router-initiated teardown after sustained probe timeouts),
 *    and "respawn" is reconnect. A failed connect degrades to an
 *    immediate-EOF stream — exactly the shape an exec failure has on
 *    the pipe path — so the router's death/backoff machinery covers
 *    both transports without caring which it is driving.
 *
 * Robustness contract shared by both (DESIGN.md Sec. 15):
 *  - writeLine never blocks past its bound: pipes report EPIPE, the
 *    socket path enforces a write timeout (a slow-loris peer that
 *    accepts one byte a second fails the write, it does not wedge the
 *    router);
 *  - terminate() guarantees the transport's reader observes EOF soon
 *    after — SIGKILL for a child, socket shutdown() for TCP (closing
 *    the fd alone would NOT unblock a parked reader thread);
 *  - after terminate() or peer EOF, finished() turns true and stays
 *    true; a new generation always gets a brand-new transport, so a
 *    reconnected shard can never resurrect a previous generation's
 *    stream (generation guards live in the router, stream identity
 *    lives here).
 */
#ifndef QA_FLEET_TRANSPORT_HPP
#define QA_FLEET_TRANSPORT_HPP

#include <sys/types.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/net.hpp"
#include "fleet/process.hpp"

namespace qa
{
namespace fleet
{

/** One shard attachment (one generation of one shard). */
class ShardTransport
{
  public:
    virtual ~ShardTransport() = default;

    /**
     * Send one request line (newline appended). Thread safe. False when
     * the stream is dead or the transport's write bound elapsed with
     * bytes still unwritten — the caller records a shard failure.
     */
    virtual bool writeLine(const std::string& line) = 0;

    /** Half-close the request direction (EOF-initiated drain). */
    virtual void closeWrite() = 0;

    /** Fd to hand a LineReader (the response stream). */
    virtual int readFd() const = 0;

    /** Local child pid; -1 for remote shards. */
    virtual pid_t pid() const { return -1; }

    /** True when the shard lives across a network, not a fork. */
    virtual bool remote() const = 0;

    /** Stable wire/log transport name: "pipe" or "tcp". */
    virtual const char* kindName() const = 0;

    /** Human-readable attachment ("pid 1234" / "127.0.0.1:9001"). */
    virtual std::string describe() const = 0;

    /**
     * Kill the attachment now. Must guarantee the reader on readFd()
     * unblocks with EOF promptly. Idempotent and thread safe.
     */
    virtual void terminate() = 0;

    /** The reader saw EOF; lets finished() reflect peer-initiated death. */
    virtual void noteEof() {}

    /** True once the attachment is dead (reaped child / dead socket). */
    virtual bool finished() = 0;

    /** Idle-read bound a LineReader on readFd() should use (0 = none). */
    virtual double readIdleTimeoutMs() const { return 0.0; }
};

/** Spawned-child transport: qassertd on a pipe pair (PR 7 topology). */
class PipeTransport : public ShardTransport
{
  public:
    explicit PipeTransport(std::vector<std::string> argv)
        : child_(std::move(argv))
    {}

    bool writeLine(const std::string& line) override
    {
        return child_.writeLine(line);
    }
    void closeWrite() override { child_.closeStdin(); }
    int readFd() const override { return child_.readFd(); }
    pid_t pid() const override { return child_.pid(); }
    bool remote() const override { return false; }
    const char* kindName() const override { return "pipe"; }
    std::string describe() const override
    {
        return "pid " + std::to_string(child_.pid());
    }
    void terminate() override { child_.forceReap(); }
    bool finished() override { return child_.tryReap(); }

    /** The underlying child (chaos kills, exit-status checks). */
    ChildProcess& child() { return child_; }

  private:
    ChildProcess child_;
};

/** Remote-shard transport: one TCP connection to qassertd --listen. */
class TcpTransport : public ShardTransport
{
  public:
    struct Options
    {
        /** Bounded connect handshake. */
        double connect_timeout_ms = 1000.0;

        /** Bound on one writeLine against a non-draining peer. */
        double write_timeout_ms = 5000.0;

        /** Idle-read bound handed to the reader (0 = unbounded). */
        double read_idle_timeout_ms = 0.0;
    };

    /**
     * Connect to `endpoint` within the bound. A failed connect does NOT
     * throw: the transport comes up already finished() with an
     * immediate-EOF readFd(), so the owner's normal death path (reader
     * EOF -> backoff -> new transport) also covers connect failure.
     */
    TcpTransport(const net::Endpoint& endpoint, const Options& options);

    ~TcpTransport() override;

    TcpTransport(const TcpTransport&) = delete;
    TcpTransport& operator=(const TcpTransport&) = delete;

    bool writeLine(const std::string& line) override;
    void closeWrite() override;
    int readFd() const override;
    bool remote() const override { return true; }
    const char* kindName() const override { return "tcp"; }
    std::string describe() const override { return endpoint_.str(); }
    void terminate() override;
    void noteEof() override { finished_.store(true); }
    bool finished() override { return finished_.load(); }
    double readIdleTimeoutMs() const override
    {
        return options_.read_idle_timeout_ms;
    }

    /** True when the bounded connect succeeded. */
    bool connected() const { return fd_ >= 0; }

  private:
    net::Endpoint endpoint_;
    Options options_;
    int fd_ = -1;          ///< Connected socket (-1: connect failed).
    int eof_pipe_ = -1;    ///< Immediate-EOF stand-in readFd on failure.
    std::atomic<bool> finished_{false};
    std::mutex write_mutex_;
    bool write_closed_ = false;
};

} // namespace fleet
} // namespace qa

#endif // QA_FLEET_TRANSPORT_HPP
