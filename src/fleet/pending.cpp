#include "fleet/pending.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qa
{
namespace fleet
{

PendingPtr
PendingTable::add(std::string client_id, serve::JsonValue request,
                  const Hash128& key, double deadline_ms,
                  std::vector<size_t> chain, Clock::TimePoint now)
{
    QA_REQUIRE(!chain.empty(), "pending job needs a non-empty chain");
    auto job = std::make_shared<PendingJob>();
    job->seq = next_seq_++;
    job->client_id = std::move(client_id);
    job->request = std::move(request);
    job->key = key;
    job->deadline_ms = deadline_ms;
    job->chain = std::move(chain);
    job->admitted = now;
    job->last_dispatch = now;
    jobs_.emplace(job->seq, job);
    return job;
}

std::string
PendingTable::issueAlias(const PendingPtr& job)
{
    std::string alias = "!f" + std::to_string(job->seq) + "." +
                        std::to_string(job->aliases.size());
    job->aliases.push_back(alias);
    aliases_.emplace(alias, job);
    return alias;
}

PendingPtr
PendingTable::find(const std::string& alias) const
{
    const auto it = aliases_.find(alias);
    return it == aliases_.end() ? nullptr : it->second;
}

PendingPtr
PendingTable::resolve(const std::string& alias)
{
    const auto it = aliases_.find(alias);
    if (it == aliases_.end()) return nullptr;
    PendingPtr job = it->second;
    for (const std::string& a : job->aliases) aliases_.erase(a);
    job->aliases.clear();
    jobs_.erase(job->seq);
    return job;
}

void
PendingTable::erase(const PendingPtr& job)
{
    for (const std::string& a : job->aliases) aliases_.erase(a);
    job->aliases.clear();
    jobs_.erase(job->seq);
}

std::vector<PendingPtr>
PendingTable::onShard(size_t shard) const
{
    std::vector<PendingPtr> out;
    for (const auto& [seq, job] : jobs_) {
        if (std::find(job->awaiting.begin(), job->awaiting.end(), shard) !=
            job->awaiting.end()) {
            out.push_back(job);
        }
    }
    return out;
}

std::vector<PendingPtr>
PendingTable::all() const
{
    std::vector<PendingPtr> out;
    out.reserve(jobs_.size());
    for (const auto& [seq, job] : jobs_) out.push_back(job);
    return out;
}

} // namespace fleet
} // namespace qa
