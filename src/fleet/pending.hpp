/**
 * @file
 * Exactly-once bookkeeping for jobs the fleet router has admitted but
 * not yet answered.
 *
 * Every admitted client request becomes one PendingJob. Each dispatch
 * of that job to a shard — the first send, a failover resubmission
 * after a shard death, a spillover retry after queue_full, a hedged
 * duplicate — gets its own router-issued *alias* id ("!f<seq>.<n>"),
 * which is what the shard echoes back. All aliases of a job map to the
 * same entry, and resolve() removes the job *and every alias* in one
 * step: the first response wins, and any later response through another
 * alias (the hedge loser, a zombie shard flushing its pipe) finds
 * nothing and is dropped as a stray. That single-removal point is the
 * fleet-level exactly-once guarantee — no client request is ever
 * answered twice, and none is forgotten (jobs stay in the table until
 * answered or typed-failed).
 *
 * Thread safety: none here by design. The router already serializes
 * admission, responses, and maintenance under one mutex; a second lock
 * inside the table would only add deadlock surface.
 */
#ifndef QA_FLEET_PENDING_HPP
#define QA_FLEET_PENDING_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/hash.hpp"
#include "serve/json.hpp"

namespace qa
{
namespace fleet
{

/** One admitted, unanswered client job. */
struct PendingJob
{
    uint64_t seq = 0;

    /** The id the client sent (restored on the response). */
    std::string client_id;

    /** Parsed original request; the id is rewritten per dispatch. */
    serve::JsonValue request;

    /** Structural job key (routing position). */
    Hash128 key;

    /** Client deadline budget; bounds fleet-level retries. */
    double deadline_ms = 0.0;

    /** Ring preference chain at admission (affinity home first). */
    std::vector<size_t> chain;

    /** Next chain index a fresh dispatch should try. */
    size_t next_chain = 0;

    /** Shards with an outstanding dispatch of this job. */
    std::vector<size_t> awaiting;

    /** Dispatches issued so far (fleet-level attempt count). */
    int dispatches = 0;

    /** Times the job parked because no shard would take a dispatch. */
    int parks = 0;

    /** A hedged duplicate has been issued. */
    bool hedged = false;

    /** Waiting out a retry backoff instead of being in flight. */
    bool parked = false;

    Clock::TimePoint admitted;
    Clock::TimePoint last_dispatch;
    Clock::TimePoint release; ///< Backoff end (valid when parked).

    /** Every alias issued for this job (cleared on resolution). */
    std::vector<std::string> aliases;
};

using PendingPtr = std::shared_ptr<PendingJob>;

class PendingTable
{
  public:
    /** Admit a job; `chain` must be non-empty. */
    PendingPtr add(std::string client_id, serve::JsonValue request,
                   const Hash128& key, double deadline_ms,
                   std::vector<size_t> chain, Clock::TimePoint now);

    /**
     * Mint and register a fresh alias id for one dispatch of `job`.
     * Aliases are "!f<seq>.<n>" — the leading '!' keeps them disjoint
     * from the router's "!p..." ping ids, and no client-chosen id is
     * ever used as a shard-facing key.
     */
    std::string issueAlias(const PendingPtr& job);

    /** The job behind an alias; nullptr for unknown (stray) ids. */
    PendingPtr find(const std::string& alias) const;

    /**
     * Resolve through an alias: removes the job and all of its aliases,
     * returning it — exactly once. A second call through any alias of
     * the same job returns nullptr (the caller counts a stray).
     */
    PendingPtr resolve(const std::string& alias);

    /**
     * Remove a job directly (router-generated resolutions: typed
     * no-shard failures, stop-time kServiceStopped). Same exactly-once
     * cleanup as resolve, keyed by the job instead of an alias — a job
     * that never dispatched has no alias to resolve through.
     */
    void erase(const PendingPtr& job);

    /** Jobs with an outstanding dispatch on `shard` (failover scan). */
    std::vector<PendingPtr> onShard(size_t shard) const;

    /** Every pending job (maintenance scans: backoffs, hedges). */
    std::vector<PendingPtr> all() const;

    /** Pending job count. */
    size_t size() const { return jobs_.size(); }

  private:
    uint64_t next_seq_ = 0;
    std::unordered_map<uint64_t, PendingPtr> jobs_;
    std::unordered_map<std::string, PendingPtr> aliases_;
};

} // namespace fleet
} // namespace qa

#endif // QA_FLEET_PENDING_HPP
