#include "fleet/transport.hpp"

#include <unistd.h>

namespace qa
{
namespace fleet
{

TcpTransport::TcpTransport(const net::Endpoint& endpoint,
                           const Options& options)
    : endpoint_(endpoint), options_(options)
{
    fd_ = net::tcpConnect(endpoint.host, endpoint.port,
                          options.connect_timeout_ms);
    if (fd_ < 0) {
        // Degrade to the exec-failure shape: an fd that EOFs on first
        // read, so the owner's reader runs its ordinary death path.
        int pipe_fds[2] = {-1, -1};
        if (::pipe(pipe_fds) == 0) {
            net::closeQuiet(pipe_fds[1]); // no writer => immediate EOF
            eof_pipe_ = pipe_fds[0];
        }
        finished_.store(true);
    }
}

TcpTransport::~TcpTransport()
{
    terminate();
    net::closeQuiet(fd_);
    net::closeQuiet(eof_pipe_);
    fd_ = -1;
    eof_pipe_ = -1;
}

bool
TcpTransport::writeLine(const std::string& line)
{
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (fd_ < 0 || write_closed_ || finished_.load()) return false;
    std::string buf = line;
    buf.push_back('\n');
    if (net::writeAllBounded(fd_, buf.data(), buf.size(),
                             options_.write_timeout_ms)) {
        return true;
    }
    // A half-written line would desynchronise the NDJSON stream; a
    // write that could not complete within the bound condemns the
    // whole connection, not just this request.
    net::shutdownBoth(fd_);
    finished_.store(true);
    return false;
}

void
TcpTransport::closeWrite()
{
    std::lock_guard<std::mutex> lock(write_mutex_);
    write_closed_ = true;
    net::shutdownWrite(fd_);
}

int
TcpTransport::readFd() const
{
    return fd_ >= 0 ? fd_ : eof_pipe_;
}

void
TcpTransport::terminate()
{
    // shutdown(), not close(): the fd must stay valid while a reader
    // thread may still be blocked in poll/read on it — shutdown wakes
    // that reader with EOF, close would race fd reuse.
    net::shutdownBoth(fd_);
    finished_.store(true);
}

} // namespace fleet
} // namespace qa
