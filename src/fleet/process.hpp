/**
 * @file
 * Child-process plumbing for the fleet: spawn a shard (or a router, for
 * the load generator) with its stdin/stdout attached to pipes, write it
 * NDJSON request lines, and read its NDJSON response lines.
 *
 * The wire protocol is stdin/stdout-based by design (DESIGN.md Sec. 9),
 * so "a shard" is exactly "a qassertd child on a pipe pair": SIGKILLing
 * the child is a faithful shard-crash fault, EOF on its stdout is the
 * death signal, and respawning is fork/exec again. stderr is inherited
 * so shard diagnostics interleave into the parent's log.
 *
 * Robustness details that matter here:
 *  - writes handle EINTR and report (not raise) EPIPE — a dead shard
 *    must never take the router down, so spawn() also forces SIGPIPE to
 *    SIG_IGN process-wide (documented; the tool mains do it too);
 *  - reads handle EINTR and are bounded per line, mirroring
 *    readLineBounded on the serve side, and can additionally enforce an
 *    idle-read timeout so a wedged peer cannot park a reader forever;
 *  - reaping closes the child's stdin pipe fd immediately (a dead
 *    child's write end is pure leak — before this fix an exec-failure
 *    child reaped via tryReap kept both pipe fds open until the
 *    destructor ran), while the stdout fd stays open so a LineReader
 *    can still drain whatever the child flushed before dying;
 *  - the destructor never blocks on a live child: it SIGKILLs and
 *    reaps, because by then the owner has already drained gracefully
 *    or decided not to.
 */
#ifndef QA_FLEET_PROCESS_HPP
#define QA_FLEET_PROCESS_HPP

#include <sys/types.h>

#include <mutex>
#include <string>
#include <vector>

namespace qa
{
namespace fleet
{

/** One spawned child with pipe-attached stdin/stdout. */
class ChildProcess
{
  public:
    /**
     * fork/exec `argv` (argv[0] is the binary path, PATH-resolved via
     * execvp). Throws UserError when the pipes or fork fail; an exec
     * failure surfaces as immediate child exit 127 (EOF on first read).
     */
    explicit ChildProcess(std::vector<std::string> argv);

    /** SIGKILLs and reaps when the child still runs; closes the pipes. */
    ~ChildProcess();

    ChildProcess(const ChildProcess&) = delete;
    ChildProcess& operator=(const ChildProcess&) = delete;

    /**
     * Write one line (newline appended) to the child's stdin. Thread
     * safe (router main + maintenance threads both write). Returns
     * false when the pipe is broken — the caller marks the shard down.
     */
    bool writeLine(const std::string& line);

    /** Close the child's stdin (EOF-initiated drain). Idempotent. */
    void closeStdin();

    pid_t pid() const { return pid_; }

    /** Read end of the child's stdout (for a LineReader). */
    int readFd() const { return out_fd_; }

    /** Send `sig`; no-op once the child is reaped. */
    void signalChild(int sig);

    /**
     * Non-blocking reap; true once the child has been collected. Reaping
     * also closes the (now useless) stdin pipe fd so a collected child
     * — including the exec-failure exit-127 case — leaks nothing while
     * the object lives on. Thread safe.
     */
    bool tryReap();

    /** SIGKILL + blocking reap. Idempotent and thread safe. */
    void forceReap();

    bool reaped() const;

    /** Exit status as waitpid reported it (valid once reaped). */
    int rawStatus() const;

  private:
    bool reapedLocked(int wait_flags);

    pid_t pid_ = -1;
    int in_fd_ = -1;  ///< Write end of the child's stdin.
    int out_fd_ = -1; ///< Read end of the child's stdout.
    bool reaped_ = false;
    int status_ = 0;
    std::mutex write_mutex_;
    mutable std::mutex reap_mutex_;
};

/** Buffered bounded line reader over a raw fd (a ChildProcess stdout). */
class LineReader
{
  public:
    enum class Status
    {
        kOk,      ///< One complete line (newline stripped) in `out`.
        kEof,     ///< Stream ended before any byte of a new line.
        kOverflow, ///< Line exceeded the bound; rest consumed.
        kTimeout  ///< No bytes arrived within the idle-read timeout.
    };

    /**
     * `idle_timeout_ms` bounds how long one next() call may sit waiting
     * for the fd to become readable (0 = wait forever, the pipe-shard
     * default). A wedged peer — a partitioned TCP shard, a child that
     * stopped writing without exiting — surfaces as kTimeout instead of
     * parking the reader thread forever; buffered complete lines are
     * still returned first, and next() may be called again after a
     * timeout (the partial line in the buffer is kept).
     */
    explicit LineReader(int fd, size_t max_len = size_t(1) << 20,
                        double idle_timeout_ms = 0.0)
        : fd_(fd), max_len_(max_len), idle_timeout_ms_(idle_timeout_ms)
    {}

    /** Read the next line; EINTR and EAGAIN are retried (poll-bounded). */
    Status next(std::string* out);

    void setIdleTimeout(double ms) { idle_timeout_ms_ = ms; }

  private:
    int fd_;
    size_t max_len_;
    double idle_timeout_ms_;
    std::string buffer_;
    size_t scanned_ = 0; ///< buffer_ prefix already searched for '\n'.
    bool eof_ = false;
    bool overflow_pending_ = false; ///< Timed out mid-overflow line.
};

} // namespace fleet
} // namespace qa

#endif // QA_FLEET_PROCESS_HPP
