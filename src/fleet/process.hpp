/**
 * @file
 * Child-process plumbing for the fleet: spawn a shard (or a router, for
 * the load generator) with its stdin/stdout attached to pipes, write it
 * NDJSON request lines, and read its NDJSON response lines.
 *
 * The wire protocol is stdin/stdout-based by design (DESIGN.md Sec. 9),
 * so "a shard" is exactly "a qassertd child on a pipe pair": SIGKILLing
 * the child is a faithful shard-crash fault, EOF on its stdout is the
 * death signal, and respawning is fork/exec again. stderr is inherited
 * so shard diagnostics interleave into the parent's log.
 *
 * Robustness details that matter here:
 *  - writes handle EINTR and report (not raise) EPIPE — a dead shard
 *    must never take the router down, so spawn() also forces SIGPIPE to
 *    SIG_IGN process-wide (documented; the tool mains do it too);
 *  - reads handle EINTR and are bounded per line, mirroring
 *    readLineBounded on the serve side;
 *  - the destructor never blocks on a live child: it SIGKILLs and
 *    reaps, because by then the owner has already drained gracefully
 *    or decided not to.
 */
#ifndef QA_FLEET_PROCESS_HPP
#define QA_FLEET_PROCESS_HPP

#include <sys/types.h>

#include <mutex>
#include <string>
#include <vector>

namespace qa
{
namespace fleet
{

/** One spawned child with pipe-attached stdin/stdout. */
class ChildProcess
{
  public:
    /**
     * fork/exec `argv` (argv[0] is the binary path, PATH-resolved via
     * execvp). Throws UserError when the pipes or fork fail; an exec
     * failure surfaces as immediate child exit 127 (EOF on first read).
     */
    explicit ChildProcess(std::vector<std::string> argv);

    /** SIGKILLs and reaps when the child still runs; closes the pipes. */
    ~ChildProcess();

    ChildProcess(const ChildProcess&) = delete;
    ChildProcess& operator=(const ChildProcess&) = delete;

    /**
     * Write one line (newline appended) to the child's stdin. Thread
     * safe (router main + maintenance threads both write). Returns
     * false when the pipe is broken — the caller marks the shard down.
     */
    bool writeLine(const std::string& line);

    /** Close the child's stdin (EOF-initiated drain). Idempotent. */
    void closeStdin();

    pid_t pid() const { return pid_; }

    /** Read end of the child's stdout (for a LineReader). */
    int readFd() const { return out_fd_; }

    /** Send `sig`; no-op once the child is reaped. */
    void signalChild(int sig);

    /** Non-blocking reap; true once the child has been collected. */
    bool tryReap();

    /** SIGKILL + blocking reap. Idempotent. */
    void forceReap();

    bool reaped() const { return reaped_; }

    /** Exit status as waitpid reported it (valid once reaped). */
    int rawStatus() const { return status_; }

  private:
    pid_t pid_ = -1;
    int in_fd_ = -1;  ///< Write end of the child's stdin.
    int out_fd_ = -1; ///< Read end of the child's stdout.
    bool reaped_ = false;
    int status_ = 0;
    std::mutex write_mutex_;
};

/** Buffered bounded line reader over a raw fd (a ChildProcess stdout). */
class LineReader
{
  public:
    enum class Status
    {
        kOk,      ///< One complete line (newline stripped) in `out`.
        kEof,     ///< Stream ended before any byte of a new line.
        kOverflow ///< Line exceeded the bound; rest consumed.
    };

    explicit LineReader(int fd, size_t max_len = size_t(1) << 20)
        : fd_(fd), max_len_(max_len)
    {}

    /** Blocking read of the next line; EINTR is retried. */
    Status next(std::string* out);

  private:
    int fd_;
    size_t max_len_;
    std::string buffer_;
    size_t scanned_ = 0; ///< buffer_ prefix already searched for '\n'.
    bool eof_ = false;
};

} // namespace fleet
} // namespace qa

#endif // QA_FLEET_PROCESS_HPP
