#include "fleet/process.hpp"

#include <csignal>
#include <cstring>

#include <errno.h>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/net.hpp"

namespace qa
{
namespace fleet
{

namespace
{

void
closeQuiet(int& fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

ChildProcess::ChildProcess(std::vector<std::string> argv)
{
    QA_REQUIRE(!argv.empty(), "child process needs a non-empty argv");

    // A shard dying between our liveness check and our write must not
    // SIGPIPE-kill the whole fleet; writeLine reports EPIPE instead.
    std::signal(SIGPIPE, SIG_IGN);

    int to_child[2] = {-1, -1};   // parent writes [1] -> child stdin [0]
    int from_child[2] = {-1, -1}; // child stdout [1] -> parent reads [0]
    if (::pipe(to_child) != 0) {
        QA_FAIL("pipe(to_child) failed: " +
                std::string(std::strerror(errno)));
    }
    if (::pipe(from_child) != 0) {
        ::close(to_child[0]);
        ::close(to_child[1]);
        QA_FAIL("pipe(from_child) failed: " +
                std::string(std::strerror(errno)));
    }

    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (std::string& arg : argv) cargv.push_back(arg.data());
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(to_child[0]);
        ::close(to_child[1]);
        ::close(from_child[0]);
        ::close(from_child[1]);
        QA_FAIL("fork failed: " + std::string(std::strerror(errno)));
    }
    if (pid == 0) {
        // Child: only async-signal-safe calls between fork and exec.
        ::dup2(to_child[0], STDIN_FILENO);
        ::dup2(from_child[1], STDOUT_FILENO);
        ::close(to_child[0]);
        ::close(to_child[1]);
        ::close(from_child[0]);
        ::close(from_child[1]);
        ::execvp(cargv[0], cargv.data());
        _exit(127); // exec failed; parent sees immediate EOF
    }

    pid_ = pid;
    ::close(to_child[0]);
    ::close(from_child[1]);
    in_fd_ = to_child[1];
    out_fd_ = from_child[0];
    // The fds must not leak into sibling shards respawned later: a
    // leaked stdin write-end would keep a drained shard's stdin open
    // forever (no EOF, no exit).
    ::fcntl(in_fd_, F_SETFD, FD_CLOEXEC);
    ::fcntl(out_fd_, F_SETFD, FD_CLOEXEC);
}

ChildProcess::~ChildProcess()
{
    forceReap();
    closeQuiet(in_fd_);
    closeQuiet(out_fd_);
}

bool
ChildProcess::writeLine(const std::string& line)
{
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (in_fd_ < 0) return false;
    std::string buf = line;
    buf.push_back('\n');
    size_t off = 0;
    while (off < buf.size()) {
        const ssize_t n = ::write(in_fd_, buf.data() + off,
                                  buf.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false; // EPIPE et al.: the shard is gone
        }
        off += size_t(n);
    }
    return true;
}

void
ChildProcess::closeStdin()
{
    std::lock_guard<std::mutex> lock(write_mutex_);
    closeQuiet(in_fd_);
}

void
ChildProcess::signalChild(int sig)
{
    std::lock_guard<std::mutex> lock(reap_mutex_);
    if (!reaped_ && pid_ > 0) ::kill(pid_, sig);
}

bool
ChildProcess::reapedLocked(int wait_flags)
{
    if (reaped_) return true;
    int status = 0;
    const pid_t r = ::waitpid(pid_, &status, wait_flags);
    if (r == pid_) {
        reaped_ = true;
        status_ = status;
        // The write end of the dead child's stdin is pure leak from
        // here on (nobody will ever read it); close it now instead of
        // waiting for the destructor — an owner that reaps exec-failure
        // children in a loop must not accumulate pipe fds. The stdout
        // read end stays open: a LineReader may still be draining what
        // the child flushed before dying.
        std::lock_guard<std::mutex> lock(write_mutex_);
        closeQuiet(in_fd_);
    }
    return reaped_;
}

bool
ChildProcess::tryReap()
{
    std::lock_guard<std::mutex> lock(reap_mutex_);
    return reapedLocked(WNOHANG);
}

void
ChildProcess::forceReap()
{
    std::lock_guard<std::mutex> lock(reap_mutex_);
    if (reaped_) return;
    ::kill(pid_, SIGKILL);
    while (!reapedLocked(0) && errno == EINTR) {}
    if (!reaped_) {
        // waitpid failed outright (ECHILD: someone else collected it);
        // treat the child as gone rather than retrying forever.
        reaped_ = true;
        std::lock_guard<std::mutex> wlock(write_mutex_);
        closeQuiet(in_fd_);
    }
}

bool
ChildProcess::reaped() const
{
    std::lock_guard<std::mutex> lock(reap_mutex_);
    return reaped_;
}

int
ChildProcess::rawStatus() const
{
    std::lock_guard<std::mutex> lock(reap_mutex_);
    return status_;
}

LineReader::Status
LineReader::next(std::string* out)
{
    out->clear();
    bool overflow = overflow_pending_; // resumed after a mid-line timeout
    overflow_pending_ = false;
    for (;;) {
        // Scan only bytes not inspected before; a long partial line is
        // not rescanned from the start on every read.
        const size_t nl = buffer_.find('\n', scanned_);
        if (nl != std::string::npos) {
            if (!overflow && nl <= max_len_) {
                out->assign(buffer_, 0, nl);
            } else {
                overflow = true;
            }
            buffer_.erase(0, nl + 1);
            scanned_ = 0;
            return overflow ? Status::kOverflow : Status::kOk;
        }
        scanned_ = buffer_.size();
        if (buffer_.size() > max_len_ && !overflow) {
            overflow = true; // keep consuming to the newline
            buffer_.clear();
            scanned_ = 0;
        }
        if (eof_) {
            if (buffer_.empty()) return Status::kEof;
            // Final unterminated line.
            if (!overflow) out->assign(buffer_);
            buffer_.clear();
            scanned_ = 0;
            return overflow ? Status::kOverflow : Status::kOk;
        }
        if (idle_timeout_ms_ > 0.0 &&
            !net::pollReadable(fd_, idle_timeout_ms_)) {
            // Idle bound hit with no complete line buffered: the peer
            // is wedged (partitioned socket, stalled child). Surface it
            // instead of parking this thread forever; the partial line
            // stays buffered so a later next() resumes cleanly.
            overflow_pending_ = overflow;
            return Status::kTimeout;
        }
        char chunk[4096];
        const ssize_t n = ::read(fd_, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // Non-blocking fd (TCP transport) raced poll; wait for
                // readability — bounded by the idle timeout when set.
                if (idle_timeout_ms_ <= 0.0) {
                    net::pollReadable(fd_, -1.0);
                }
                continue;
            }
            eof_ = true; // treat read errors as stream end
            continue;
        }
        if (n == 0) {
            eof_ = true;
            continue;
        }
        buffer_.append(chunk, size_t(n));
    }
}

} // namespace fleet
} // namespace qa
