#include "fleet/ring.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qa
{
namespace fleet
{

namespace
{

uint64_t
keyPosition(const Hash128& key)
{
    // Both lanes already avalanche; folding them keeps distinct keys
    // with equal hi words apart on the ring.
    return key.hi ^ (key.lo * 0x9E3779B97F4A7C15ULL);
}

} // namespace

HashRing::HashRing(size_t nshards, size_t vnodes, uint64_t seed)
    : nshards_(nshards)
{
    QA_REQUIRE(nshards > 0, "hash ring needs at least one shard");
    QA_REQUIRE(vnodes > 0, "hash ring needs at least one vnode per shard");
    points_.reserve(nshards * vnodes);
    for (size_t shard = 0; shard < nshards; ++shard) {
        for (size_t v = 0; v < vnodes; ++v) {
            HashStream hs(seed);
            hs.u64(shard).u64(v);
            points_.emplace_back(hs.digest().hi, shard);
        }
    }
    std::sort(points_.begin(), points_.end());
}

size_t
HashRing::shardFor(const Hash128& key) const
{
    const uint64_t pos = keyPosition(key);
    auto it = std::lower_bound(
        points_.begin(), points_.end(),
        std::make_pair(pos, size_t(0)),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    if (it == points_.end()) it = points_.begin(); // wrap
    return it->second;
}

std::optional<size_t>
HashRing::route(const Hash128& key,
                const std::function<bool(size_t)>& up) const
{
    for (size_t shard : preferenceChain(key)) {
        if (up(shard)) return shard;
    }
    return std::nullopt;
}

std::vector<size_t>
HashRing::preferenceChain(const Hash128& key) const
{
    const uint64_t pos = keyPosition(key);
    const size_t n = points_.size();
    size_t start = size_t(
        std::lower_bound(
            points_.begin(), points_.end(), std::make_pair(pos, size_t(0)),
            [](const auto& a, const auto& b) { return a.first < b.first; }) -
        points_.begin());
    if (start == n) start = 0; // wrap
    std::vector<size_t> chain;
    chain.reserve(nshards_);
    std::vector<bool> seen(nshards_, false);
    for (size_t step = 0; step < n && chain.size() < nshards_; ++step) {
        const size_t shard = points_[(start + step) % n].second;
        if (!seen[shard]) {
            seen[shard] = true;
            chain.push_back(shard);
        }
    }
    return chain;
}

} // namespace fleet
} // namespace qa
