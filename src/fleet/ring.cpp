#include "fleet/ring.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qa
{
namespace fleet
{

namespace
{

uint64_t
keyPosition(const Hash128& key)
{
    // Both lanes already avalanche; folding them keeps distinct keys
    // with equal hi words apart on the ring.
    return key.hi ^ (key.lo * 0x9E3779B97F4A7C15ULL);
}

} // namespace

HashRing::HashRing(size_t nshards, size_t vnodes, uint64_t seed)
    : HashRing(nshards, std::vector<double>(nshards, 1.0), vnodes, seed)
{}

HashRing::HashRing(size_t nshards, const std::vector<double>& weights,
                   size_t vnodes, uint64_t seed)
    : nshards_(nshards)
{
    QA_REQUIRE(nshards > 0, "hash ring needs at least one shard");
    QA_REQUIRE(vnodes > 0, "hash ring needs at least one vnode per shard");
    QA_REQUIRE(weights.size() == nshards,
               "hash ring needs one weight per shard");
    points_.reserve(nshards * vnodes);
    for (size_t shard = 0; shard < nshards; ++shard) {
        const double w = weights[shard];
        QA_REQUIRE(w > 0.0, "hash ring weights must be positive");
        // Position of vnode v depends only on (seed, shard, v):
        // reweighting grows or trims a shard's vnode tail without
        // moving any surviving point, so most keys keep their home.
        const size_t count = std::max<size_t>(
            1, size_t(double(vnodes) * w + 0.5));
        for (size_t v = 0; v < count; ++v) {
            HashStream hs(seed);
            hs.u64(shard).u64(v);
            points_.emplace_back(hs.digest().hi, shard);
        }
    }
    std::sort(points_.begin(), points_.end());
}

size_t
HashRing::vnodesOf(size_t shard) const
{
    size_t count = 0;
    for (const auto& point : points_) {
        if (point.second == shard) ++count;
    }
    return count;
}

size_t
HashRing::shardFor(const Hash128& key) const
{
    const uint64_t pos = keyPosition(key);
    auto it = std::lower_bound(
        points_.begin(), points_.end(),
        std::make_pair(pos, size_t(0)),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    if (it == points_.end()) it = points_.begin(); // wrap
    return it->second;
}

std::optional<size_t>
HashRing::route(const Hash128& key,
                const std::function<bool(size_t)>& up) const
{
    for (size_t shard : preferenceChain(key)) {
        if (up(shard)) return shard;
    }
    return std::nullopt;
}

std::vector<size_t>
HashRing::preferenceChain(const Hash128& key) const
{
    const uint64_t pos = keyPosition(key);
    const size_t n = points_.size();
    size_t start = size_t(
        std::lower_bound(
            points_.begin(), points_.end(), std::make_pair(pos, size_t(0)),
            [](const auto& a, const auto& b) { return a.first < b.first; }) -
        points_.begin());
    if (start == n) start = 0; // wrap
    std::vector<size_t> chain;
    chain.reserve(nshards_);
    std::vector<bool> seen(nshards_, false);
    for (size_t step = 0; step < n && chain.size() < nshards_; ++step) {
        const size_t shard = points_[(start + step) % n].second;
        if (!seen[shard]) {
            seen[shard] = true;
            chain.push_back(shard);
        }
    }
    return chain;
}

} // namespace fleet
} // namespace qa
