/**
 * @file
 * Per-shard health state machine fed by wire-ping probes and process
 * lifecycle events.
 *
 * Three states, chosen so routing can distinguish "avoid if possible"
 * from "do not send":
 *  - **up**: probes answering; the shard takes its ring keyspace.
 *  - **degraded**: at least one recent probe failed or timed out, but
 *    fewer than `fail_threshold` in a row. Still routable (jobs in
 *    flight are likely fine), but the router counts it and hedging
 *    triggers sooner in spirit — one more failure streak away from down.
 *  - **down**: `fail_threshold` consecutive failures, a process exit,
 *    or a write failure on the shard's stdin. Not routable; its
 *    keyspace re-hashes to ring successors until recovery.
 *
 * Recovery is deliberately conservative: a down shard must answer
 * `recover_threshold` consecutive probes before it is marked up again
 * and takes its keys back — one lucky pong does not un-down a flapping
 * shard. All transitions are pure functions of the event sequence, so
 * the machine is unit-testable without processes or clocks.
 */
#ifndef QA_FLEET_HEALTH_HPP
#define QA_FLEET_HEALTH_HPP

#include <cstdint>

namespace qa
{
namespace fleet
{

/** Routable health of one shard. */
enum class ShardHealth
{
    kUp,
    kDegraded,
    kDown
};

/** Stable wire/log name of a health state. */
const char* shardHealthName(ShardHealth health);

/** Health thresholds. */
struct HealthOptions
{
    /** Consecutive probe failures that take an up/degraded shard down. */
    int fail_threshold = 3;

    /** Consecutive probe successes that bring a down shard back up. */
    int recover_threshold = 2;
};

class HealthTracker
{
  public:
    explicit HealthTracker(HealthOptions options = {})
        : options_(options)
    {}

    /** A probe (or any shard response) succeeded. */
    void onSuccess();

    /** A probe failed or timed out, or a shard write failed. */
    void onFailure();

    /** The shard process exited: down immediately, streaks reset. */
    void onProcessExit();

    ShardHealth state() const { return state_; }

    /** Total entries into kDown (flap visibility). */
    uint64_t downTransitions() const { return down_transitions_; }

    int consecutiveFailures() const { return consecutive_failures_; }

  private:
    void enterDown();

    HealthOptions options_;
    ShardHealth state_ = ShardHealth::kUp;
    int consecutive_failures_ = 0;
    int consecutive_successes_ = 0;
    uint64_t down_transitions_ = 0;
};

} // namespace fleet
} // namespace qa

#endif // QA_FLEET_HEALTH_HPP
