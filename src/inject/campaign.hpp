/**
 * @file
 * Fault-injection campaign runner: sweep (location x fault kind) across
 * a circuit, re-assert each faulted variant, and report per-slot and
 * aggregate detection coverage — the systematic version of the paper's
 * Sec. IX error-injection evaluation.
 *
 * Determinism contract: a seeded campaign is bit-identical for any
 * thread count. Each fault run derives its own seed from (campaign
 * seed, fault index) with the same splitmix64 mixing the engine's
 * counter-based shot streams use, and the underlying shot runs are
 * themselves thread-count independent.
 */
#ifndef QA_INJECT_CAMPAIGN_HPP
#define QA_INJECT_CAMPAIGN_HPP

#include <functional>
#include <string>
#include <vector>

#include "core/asserted_program.hpp"
#include "inject/fault.hpp"
#include "sim/noise.hpp"

namespace qa
{

/** Campaign sweep configuration. */
struct CampaignOptions
{
    /** Fault kinds to sweep (crossed with every applicable location). */
    std::vector<FaultKind> kinds = {FaultKind::kPauliX, FaultKind::kPauliY,
                                    FaultKind::kPauliZ};

    /** Shots per fault run; 0 selects the exact (probability) backend. */
    int shots = 0;

    /** Campaign seed: per-fault run seeds are derived from it. */
    uint64_t seed = 12345;

    /** Worker threads per shot run (0 = hardware concurrency). */
    int num_threads = 0;

    /** Optional noise model active during every run (including the
     *  fault-free baseline). */
    const NoiseModel* noise = nullptr;

    /**
     * A slot detects a fault when its error rate exceeds the fault-free
     * baseline by more than this threshold.
     */
    double detection_threshold = 0.05;

    /**
     * A fault corrupts the output when the total-variation distance
     * between the bare (unasserted) faulted program's output
     * distribution and the bare fault-free one exceeds this threshold.
     * The comparison deliberately excludes the assertion
     * instrumentation: SWAP-based slots repair the state and the others
     * filter it, which would mask exactly the corruption being measured.
     */
    double corruption_threshold = 0.05;

    /** Per-fault-run wall-clock budget in ms; <= 0 runs unbounded. */
    double deadline_ms = 0.0;
};

/** Outcome of one injected fault. */
struct FaultRecord
{
    FaultSpec fault;

    /** Per-slot assertion-error rate (sampled) or probability (exact). */
    std::vector<double> slot_error;

    /** First slot whose error rate exceeded baseline + threshold
     *  (-1 when none did). */
    int detecting_slot = -1;

    /** True when at least one slot flagged the fault. */
    bool detected = false;

    /** True when the fault visibly corrupted the bare (unasserted)
     *  program's output distribution. */
    bool output_corrupted = false;

    /** True when the run's deadline truncated its shots. */
    bool truncated = false;
};

/** Aggregated campaign report. */
struct CampaignReport
{
    /** Fault-free per-slot error rates (the detection baseline). */
    std::vector<double> baseline_slot_error;

    /** One record per injected fault, in enumeration order. */
    std::vector<FaultRecord> records;

    /** Per-slot count of faults the slot detected. */
    std::vector<int> slot_detections;

    /** Per-slot detection coverage: slot_detections / num_faults. */
    std::vector<double> slot_coverage;

    int num_faults = 0;

    /** Faults detected by at least one slot. */
    int num_detected = 0;

    /** Faults that corrupted the program output. */
    int num_corrupting = 0;

    /** Corrupting faults no slot caught — the dangerous silent ones. */
    int num_silent_corrupting = 0;

    /** Aggregate detection coverage over all injected faults. */
    double
    coverage() const
    {
        return num_faults == 0 ? 1.0
                               : double(num_detected) / double(num_faults);
    }

    /** Coverage restricted to output-corrupting faults. */
    double
    corruptingCoverage() const
    {
        return num_corrupting == 0
                   ? 1.0
                   : 1.0 - double(num_silent_corrupting) /
                               double(num_corrupting);
    }

    /** Aligned text table (per-kind rows + totals) for bench output. */
    std::string summary() const;
};

/**
 * Sweeps faults through a program circuit and measures which assertion
 * slots catch them. The asserter callback rebuilds the assertion
 * instrumentation around each faulted program variant, so slots always
 * assert the *intended* states while the program underneath is broken —
 * exactly the deployment scenario runtime assertions target.
 */
class CampaignRunner
{
  public:
    /** Builds the asserted program around a (possibly faulted) copy of
     *  the program circuit. Must insert at least one slot. */
    using Asserter =
        std::function<AssertedProgram(const QuantumCircuit& program)>;

    CampaignRunner(QuantumCircuit program, Asserter asserter);

    /**
     * Convenience campaign: assert that the program's (fault-free) final
     * state survives, then measure every program qubit. The program must
     * be measurement-free.
     */
    static CampaignRunner assertingFinalState(
        const QuantumCircuit& program, AssertionDesign design,
        SwapPlacement placement = SwapPlacement::kInvBeforePrepAfter);

    /** The fault-free program under test. */
    const QuantumCircuit& program() const { return program_; }

    /** Run the sweep. */
    CampaignReport run(const CampaignOptions& options) const;

  private:
    QuantumCircuit program_;
    Asserter asserter_;
};

/** Campaign-driven check of the SlotDebugger localization workflow. */
struct LocalizationReport
{
    int num_faults = 0;

    /** Faults the debugger flagged at all (bugFound()). */
    int num_detected = 0;

    /** Faults whose suspect stage equals the faulted stage. */
    int num_localized = 0;

    /** Total slot evaluations across all debugger runs. */
    int evaluations = 0;

    /** Fraction of detected faults localized to the right stage. */
    double
    localizationRate() const
    {
        return num_detected == 0
                   ? 1.0
                   : double(num_localized) / double(num_detected);
    }
};

/**
 * Inject every (stage x location x kind) fault into the staged program
 * and run SlotDebugger against the fault-free reference each time,
 * checking that the reported suspect stage is the faulted one. Exercises
 * the debugger the way Sec. IX's Fig. 16 workflow is meant to be used.
 */
LocalizationReport checkLocalization(
    const std::vector<QuantumCircuit>& reference,
    const std::vector<FaultKind>& kinds,
    AssertionDesign design = AssertionDesign::kSwap, bool bisect = true);

} // namespace qa

#endif // QA_INJECT_CAMPAIGN_HPP
