/**
 * @file
 * Deterministic gate-level fault model for the injection campaigns that
 * validate the paper's detection-coverage claims (Sec. IX evaluates
 * every assertion design by injecting errors and measuring how often the
 * assertions catch them; Proq [Li et al., ASPLOS 2020] and quAssert
 * [Witharana et al., 2023] evaluate the same way).
 *
 * A fault is a pure circuit transform — no hidden randomness — so a
 * campaign sweep is reproducible instruction by instruction:
 *  - Pauli faults insert X/Y/Z on one qubit after the addressed gate
 *    (the standard discrete error model);
 *  - bit/phase-flip faults insert a parameterized rx/rz rotation,
 *    modelling coherent over/under-rotation; angle = pi reproduces the
 *    exact X/Z flip;
 *  - gate-drop removes the addressed gate, gate-duplicate applies it
 *    twice (the two classic control-fault models).
 */
#ifndef QA_INJECT_FAULT_HPP
#define QA_INJECT_FAULT_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace qa
{

/** Fault family injected at one circuit location. */
enum class FaultKind
{
    kPauliX,        ///< Insert X on `qubit` after the addressed gate.
    kPauliY,        ///< Insert Y on `qubit` after the addressed gate.
    kPauliZ,        ///< Insert Z on `qubit` after the addressed gate.
    kBitFlip,       ///< Insert rx(angle): partial/coherent bit flip.
    kPhaseFlip,     ///< Insert rz(angle): partial/coherent phase flip.
    kGateDrop,      ///< Remove the addressed gate.
    kGateDuplicate  ///< Apply the addressed gate twice.
};

/** Stable human-readable fault-kind name. */
const char* faultKindName(FaultKind kind);

/** True for kinds that act on a specific qubit (Pauli and flip faults). */
bool faultTargetsQubit(FaultKind kind);

/** One addressable fault: (kind, gate instruction, optional qubit). */
struct FaultSpec
{
    FaultKind kind = FaultKind::kPauliX;

    /** Index of the addressed gate instruction in the target circuit
     *  (stage-relative when `stage` >= 0). */
    size_t instr_index = 0;

    /** Target qubit for Pauli/flip faults; ignored otherwise. */
    int qubit = -1;

    /** Rotation angle for kBitFlip/kPhaseFlip (pi = exact flip). */
    double angle = 3.14159265358979323846;

    /** Stage tag for stage-addressed campaigns (-1 = whole circuit). */
    int stage = -1;

    /** Compact description, e.g. "X@12/q3" or "drop@7[stage 2]". */
    std::string describe() const;
};

/**
 * Build a copy of `circuit` with `fault` injected. Throws UserError with
 * ErrorCode::kBadFaultSite when the addressed instruction is not a gate
 * (or out of range), and ErrorCode::kUnsupportedFault when a
 * qubit-targeting fault names an invalid qubit.
 */
QuantumCircuit injectFault(const QuantumCircuit& circuit,
                           const FaultSpec& fault);

/**
 * Enumerate every applicable (location x kind) fault in the circuit:
 * qubit-targeting kinds yield one fault per (gate, touched qubit) pair,
 * structural kinds one per gate. The order is deterministic (instruction
 * index, then kind order, then qubit order).
 */
std::vector<FaultSpec> enumerateFaultSites(
    const QuantumCircuit& circuit, const std::vector<FaultKind>& kinds);

/**
 * Stage-addressed enumeration for debugger-style campaigns: faults of
 * stage s carry `stage = s` and a stage-relative instruction index.
 */
std::vector<FaultSpec> enumerateStageFaultSites(
    const std::vector<QuantumCircuit>& stages,
    const std::vector<FaultKind>& kinds);

} // namespace qa

#endif // QA_INJECT_FAULT_HPP
