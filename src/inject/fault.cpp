#include "inject/fault.hpp"

#include <sstream>

#include "common/error.hpp"

namespace qa
{

const char*
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kPauliX:        return "X";
      case FaultKind::kPauliY:        return "Y";
      case FaultKind::kPauliZ:        return "Z";
      case FaultKind::kBitFlip:       return "bit_flip";
      case FaultKind::kPhaseFlip:     return "phase_flip";
      case FaultKind::kGateDrop:      return "drop";
      case FaultKind::kGateDuplicate: return "dup";
    }
    return "unknown";
}

bool
faultTargetsQubit(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kPauliX:
      case FaultKind::kPauliY:
      case FaultKind::kPauliZ:
      case FaultKind::kBitFlip:
      case FaultKind::kPhaseFlip:
        return true;
      case FaultKind::kGateDrop:
      case FaultKind::kGateDuplicate:
        return false;
    }
    return false;
}

std::string
FaultSpec::describe() const
{
    std::ostringstream oss;
    oss << faultKindName(kind) << '@' << instr_index;
    if (faultTargetsQubit(kind)) oss << "/q" << qubit;
    if (stage >= 0) oss << "[stage " << stage << ']';
    return oss.str();
}

QuantumCircuit
injectFault(const QuantumCircuit& circuit, const FaultSpec& fault)
{
    const auto& instrs = circuit.instructions();
    QA_REQUIRE_CODE(fault.instr_index < instrs.size(),
                    ErrorCode::kBadFaultSite,
                    "fault site " + std::to_string(fault.instr_index) +
                        " is past the end of the circuit");
    QA_REQUIRE_CODE(instrs[fault.instr_index].isGate(),
                    ErrorCode::kBadFaultSite,
                    "fault site " + std::to_string(fault.instr_index) +
                        " does not address a gate instruction");
    if (faultTargetsQubit(fault.kind)) {
        QA_REQUIRE_CODE(
            fault.qubit >= 0 && fault.qubit < circuit.numQubits(),
            ErrorCode::kUnsupportedFault,
            "fault " + fault.describe() + " targets an invalid qubit");
    }

    QuantumCircuit faulted(circuit.numQubits(), circuit.numClbits());
    for (size_t i = 0; i < instrs.size(); ++i) {
        if (i == fault.instr_index && fault.kind == FaultKind::kGateDrop) {
            continue;
        }
        faulted.append(instrs[i]);
        if (i != fault.instr_index) continue;
        switch (fault.kind) {
          case FaultKind::kPauliX:
            faulted.x(fault.qubit);
            break;
          case FaultKind::kPauliY:
            faulted.y(fault.qubit);
            break;
          case FaultKind::kPauliZ:
            faulted.z(fault.qubit);
            break;
          case FaultKind::kBitFlip:
            faulted.rx(fault.qubit, fault.angle);
            break;
          case FaultKind::kPhaseFlip:
            faulted.rz(fault.qubit, fault.angle);
            break;
          case FaultKind::kGateDuplicate:
            faulted.append(instrs[i]);
            break;
          case FaultKind::kGateDrop:
            break;
        }
    }
    return faulted;
}

std::vector<FaultSpec>
enumerateFaultSites(const QuantumCircuit& circuit,
                    const std::vector<FaultKind>& kinds)
{
    std::vector<FaultSpec> faults;
    const auto& instrs = circuit.instructions();
    for (size_t i = 0; i < instrs.size(); ++i) {
        if (!instrs[i].isGate()) continue;
        for (FaultKind kind : kinds) {
            if (faultTargetsQubit(kind)) {
                for (int q : instrs[i].qubits) {
                    FaultSpec fault;
                    fault.kind = kind;
                    fault.instr_index = i;
                    fault.qubit = q;
                    faults.push_back(fault);
                }
            } else {
                FaultSpec fault;
                fault.kind = kind;
                fault.instr_index = i;
                faults.push_back(fault);
            }
        }
    }
    return faults;
}

std::vector<FaultSpec>
enumerateStageFaultSites(const std::vector<QuantumCircuit>& stages,
                         const std::vector<FaultKind>& kinds)
{
    std::vector<FaultSpec> faults;
    for (size_t s = 0; s < stages.size(); ++s) {
        std::vector<FaultSpec> stage_faults =
            enumerateFaultSites(stages[s], kinds);
        for (FaultSpec& fault : stage_faults) {
            fault.stage = int(s);
            faults.push_back(fault);
        }
    }
    return faults;
}

} // namespace qa
