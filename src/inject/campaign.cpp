#include "inject/campaign.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "core/debugger.hpp"
#include "core/runner.hpp"
#include "sim/statevector.hpp"

namespace qa
{

namespace
{

/** Total-variation distance between two outcome distributions. */
double
totalVariation(const Distribution& a, const Distribution& b)
{
    double tv = 0.0;
    for (const auto& [bits, p] : a.probs) {
        tv += std::abs(p - b.probability(bits));
    }
    for (const auto& [bits, q] : b.probs) {
        if (a.probs.find(bits) == a.probs.end()) tv += q;
    }
    return 0.5 * tv;
}

/** Per-run results in one backend-independent shape. */
struct RunResult
{
    std::vector<double> slot_error;
    bool truncated = false;
};

/** Per-fault seed: same splitmix64 mixing as Rng::forStream streams. */
uint64_t
deriveRunSeed(uint64_t campaign_seed, size_t run_index)
{
    return splitmix64(campaign_seed +
                      0x9E3779B97F4A7C15ULL * uint64_t(run_index));
}

/** A copy of `c` that measures every qubit when it measures nothing. */
QuantumCircuit
withMeasurements(const QuantumCircuit& c)
{
    if (c.countMeasure() > 0) return c;
    QuantumCircuit qc(c.numQubits(), c.numQubits());
    std::vector<int> ident;
    for (int q = 0; q < c.numQubits(); ++q) ident.push_back(q);
    qc.compose(c, ident);
    qc.measureAll();
    return qc;
}

/**
 * Output distribution of the bare (unasserted) program. Corruption must
 * be judged against the program alone: the assertion instrumentation
 * filters or even repairs the state (the SWAP design re-prepares the
 * asserted state, Sec. IV), so the post-assertion output would hide
 * exactly the corruption the campaign is trying to attribute.
 */
Distribution
bareProgramDist(const QuantumCircuit& program,
                const CampaignOptions& options, size_t run_index)
{
    const QuantumCircuit measured = withMeasurements(program);
    if (options.shots <= 0) {
        return exactDistribution(measured);
    }
    SimOptions sim;
    sim.shots = options.shots;
    // Offset stream: independent of the asserted runs' seeds.
    sim.seed = deriveRunSeed(~options.seed, run_index);
    sim.noise = options.noise;
    sim.num_threads = options.num_threads;
    sim.deadline_ms = options.deadline_ms;
    const Counts counts = runShots(measured, sim);
    return counts.shots > 0 ? counts.toDistribution() : Distribution{};
}

RunResult
runOnce(const AssertedProgram& asserted, const CampaignOptions& options,
        size_t run_index)
{
    RunResult result;
    if (options.shots <= 0) {
        const AssertionOutcomeExact exact =
            runAssertedExact(asserted, options.noise);
        result.slot_error = exact.slot_error_prob;
        return result;
    }
    SimOptions sim;
    sim.shots = options.shots;
    sim.seed = deriveRunSeed(options.seed, run_index);
    sim.noise = options.noise;
    sim.num_threads = options.num_threads;
    sim.deadline_ms = options.deadline_ms;
    const AssertionOutcome sampled = runAsserted(asserted, sim);
    result.slot_error = sampled.slot_error_rate;
    result.truncated = sampled.raw.truncated;
    return result;
}

} // namespace

CampaignRunner::CampaignRunner(QuantumCircuit program, Asserter asserter)
    : program_(std::move(program)), asserter_(std::move(asserter))
{
    QA_REQUIRE(asserter_ != nullptr, "campaign needs an asserter");
}

CampaignRunner
CampaignRunner::assertingFinalState(const QuantumCircuit& program,
                                    AssertionDesign design,
                                    SwapPlacement placement)
{
    QA_REQUIRE(program.countMeasure() == 0,
               "assertingFinalState needs a measurement-free program");
    const CVector expected = finalState(program).amplitudes();
    std::vector<int> qubits;
    for (int q = 0; q < program.numQubits(); ++q) qubits.push_back(q);
    return CampaignRunner(
        program,
        [expected, qubits, design, placement](const QuantumCircuit& c) {
            AssertedProgram asserted(c);
            asserted.assertState(qubits, StateSet::pure(expected), design,
                                 placement);
            asserted.measureProgram();
            return asserted;
        });
}

CampaignReport
CampaignRunner::run(const CampaignOptions& options) const
{
    CampaignReport report;

    // Fault-free baseline: detection thresholds are measured as excess
    // error over this run, so a noisy baseline doesn't read as coverage.
    const AssertedProgram baseline_prog = asserter_(program_);
    QA_REQUIRE(!baseline_prog.slots().empty(),
               "campaign asserter must insert at least one slot");
    const size_t num_slots = baseline_prog.slots().size();
    const RunResult baseline = runOnce(baseline_prog, options, 0);
    report.baseline_slot_error = baseline.slot_error;
    const Distribution bare_baseline =
        bareProgramDist(program_, options, 0);

    const std::vector<FaultSpec> faults =
        enumerateFaultSites(program_, options.kinds);
    report.num_faults = int(faults.size());
    report.slot_detections.assign(num_slots, 0);
    report.slot_coverage.assign(num_slots, 0.0);
    report.records.reserve(faults.size());

    for (size_t f = 0; f < faults.size(); ++f) {
        const QuantumCircuit faulted = injectFault(program_, faults[f]);
        const AssertedProgram asserted = asserter_(faulted);
        QA_ASSERT(asserted.slots().size() == num_slots,
                  "asserter changed the slot count between runs");
        const RunResult result = runOnce(asserted, options, f + 1);

        FaultRecord record;
        record.fault = faults[f];
        record.slot_error = result.slot_error;
        record.truncated = result.truncated;
        for (size_t s = 0; s < num_slots; ++s) {
            const double excess =
                result.slot_error[s] - report.baseline_slot_error[s];
            if (excess > options.detection_threshold) {
                if (record.detecting_slot < 0) {
                    record.detecting_slot = int(s);
                }
                ++report.slot_detections[s];
            }
        }
        record.detected = record.detecting_slot >= 0;
        record.output_corrupted =
            totalVariation(bareProgramDist(faulted, options, f + 1),
                           bare_baseline) > options.corruption_threshold;

        if (record.detected) ++report.num_detected;
        if (record.output_corrupted) {
            ++report.num_corrupting;
            if (!record.detected) ++report.num_silent_corrupting;
        }
        report.records.push_back(std::move(record));
    }

    for (size_t s = 0; s < num_slots; ++s) {
        report.slot_coverage[s] =
            report.num_faults == 0
                ? 1.0
                : double(report.slot_detections[s]) /
                      double(report.num_faults);
    }
    return report;
}

std::string
CampaignReport::summary() const
{
    // Per-kind aggregation in record order.
    struct KindStats
    {
        int faults = 0;
        int detected = 0;
        int corrupting = 0;
        int silent = 0;
    };
    std::map<std::string, KindStats> by_kind;
    std::vector<std::string> kind_order;
    for (const FaultRecord& record : records) {
        const std::string name = faultKindName(record.fault.kind);
        if (by_kind.find(name) == by_kind.end()) kind_order.push_back(name);
        KindStats& stats = by_kind[name];
        ++stats.faults;
        if (record.detected) ++stats.detected;
        if (record.output_corrupted) {
            ++stats.corrupting;
            if (!record.detected) ++stats.silent;
        }
    }

    TextTable table({"Fault kind", "Injected", "Detected", "Coverage",
                     "Corrupting", "Silent"});
    for (const std::string& name : kind_order) {
        const KindStats& stats = by_kind[name];
        table.addRow({name, std::to_string(stats.faults),
                      std::to_string(stats.detected),
                      formatPercent(stats.faults == 0
                                        ? 1.0
                                        : double(stats.detected) /
                                              double(stats.faults)),
                      std::to_string(stats.corrupting),
                      std::to_string(stats.silent)});
    }
    table.addRow({"total", std::to_string(num_faults),
                  std::to_string(num_detected), formatPercent(coverage()),
                  std::to_string(num_corrupting),
                  std::to_string(num_silent_corrupting)});

    std::string out = table.render();
    TextTable slots({"Slot", "Detections", "Coverage", "Baseline err"});
    for (size_t s = 0; s < slot_coverage.size(); ++s) {
        slots.addRow({std::to_string(s),
                      std::to_string(slot_detections[s]),
                      formatPercent(slot_coverage[s]),
                      formatDouble(baseline_slot_error.empty()
                                       ? 0.0
                                       : baseline_slot_error[s])});
    }
    out += slots.render();
    return out;
}

LocalizationReport
checkLocalization(const std::vector<QuantumCircuit>& reference,
                  const std::vector<FaultKind>& kinds,
                  AssertionDesign design, bool bisect)
{
    QA_REQUIRE(!reference.empty(),
               "localization check needs at least one stage");
    LocalizationReport report;
    const std::vector<FaultSpec> faults =
        enumerateStageFaultSites(reference, kinds);
    report.num_faults = int(faults.size());

    for (const FaultSpec& fault : faults) {
        std::vector<QuantumCircuit> program = reference;
        program[size_t(fault.stage)] =
            injectFault(reference[size_t(fault.stage)], fault);
        const SlotDebugger debugger(std::move(program), reference);
        const SlotDebugReport debug =
            bisect ? debugger.bisect(design) : debugger.run(design);
        report.evaluations += debug.evaluations;
        if (!debug.bugFound()) continue;
        ++report.num_detected;
        if (debug.suspectStage() == fault.stage) ++report.num_localized;
    }
    return report;
}

} // namespace qa
