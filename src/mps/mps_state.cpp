#include "mps/mps_state.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/svd.hpp"

namespace qa
{
namespace mps
{

namespace
{

/** The SWAP unitary used for long-range gate routing. */
const CMatrix&
swapMatrix()
{
    static const CMatrix swap{{1, 0, 0, 0},
                              {0, 0, 1, 0},
                              {0, 1, 0, 0},
                              {0, 0, 0, 1}};
    return swap;
}

/** Pauli X, used by resetQubit's measure-and-correct. */
const CMatrix&
xMatrix()
{
    static const CMatrix x{{0, 1}, {1, 0}};
    return x;
}

/** Conjugate a 4x4 two-qubit unitary by SWAP (exchange the factors). */
CMatrix
conjugateBySwap(const CMatrix& u)
{
    static constexpr size_t perm[4] = {0, 2, 1, 3};
    CMatrix out(4, 4);
    for (size_t r = 0; r < 4; ++r) {
        for (size_t c = 0; c < 4; ++c) {
            out(r, c) = u(perm[r], perm[c]);
        }
    }
    return out;
}

/** Normalize a Schmidt spectrum to unit 2-norm. */
void
normalizeSpectrum(std::vector<double>* sigma)
{
    double sum = 0.0;
    for (double s : *sigma) sum += s * s;
    QA_REQUIRE(sum > 0.0, "MPS bond spectrum collapsed to zero");
    const double inv = 1.0 / std::sqrt(sum);
    for (double& s : *sigma) s *= inv;
}

} // namespace

MpsState::MpsState(int num_qubits, int chi_cap) : chi_cap_(chi_cap)
{
    QA_REQUIRE(num_qubits >= 1, "MpsState needs at least one qubit");
    QA_REQUIRE(chi_cap >= 1, "MPS bond-dimension cap must be >= 1");
    sites_.resize(size_t(num_qubits));
    for (Site& site : sites_) {
        site.t.assign(2, Complex(0.0));
        site.t[0] = 1.0; // |0>
    }
    lambda_.assign(size_t(num_qubits) + 1, {1.0});
}

void
MpsState::apply1q(const CMatrix& u, int qubit)
{
    QA_REQUIRE(qubit >= 0 && qubit < numQubits(),
               "MPS 1q gate qubit out of range");
    QA_REQUIRE(u.rows() == 2 && u.cols() == 2,
               "MPS 1q gate needs a 2x2 unitary");
    Site& site = sites_[size_t(qubit)];
    const int r = site.right;
    for (int a = 0; a < site.left; ++a) {
        for (int b = 0; b < r; ++b) {
            const Complex t0 = site.t[size_t(a * 2 + 0) * size_t(r) + size_t(b)];
            const Complex t1 = site.t[size_t(a * 2 + 1) * size_t(r) + size_t(b)];
            site.t[size_t(a * 2 + 0) * size_t(r) + size_t(b)] =
                u(0, 0) * t0 + u(0, 1) * t1;
            site.t[size_t(a * 2 + 1) * size_t(r) + size_t(b)] =
                u(1, 0) * t0 + u(1, 1) * t1;
        }
    }
}

void
MpsState::apply2q(const CMatrix& u, int q0, int q1)
{
    QA_REQUIRE(q0 != q1, "MPS 2q gate needs distinct qubits");
    QA_REQUIRE(q0 >= 0 && q0 < numQubits() && q1 >= 0 &&
                   q1 < numQubits(),
               "MPS 2q gate qubit out of range");
    QA_REQUIRE(u.rows() == 4 && u.cols() == 4,
               "MPS 2q gate needs a 4x4 unitary");
    const int lo = std::min(q0, q1);
    const int hi = std::max(q0, q1);
    const CMatrix local = q0 < q1 ? u : conjugateBySwap(u);

    // SWAP-route: walk the qubit at `hi` down to site lo+1, apply,
    // walk it back so the qubit -> site map stays the identity.
    for (int s = hi - 1; s > lo; --s) swapSites(s);
    applyTwoSiteGate(local, lo);
    for (int s = lo + 1; s < hi; ++s) swapSites(s);
}

void
MpsState::swapSites(int i)
{
    applyTwoSiteGate(swapMatrix(), i);
}

void
MpsState::applyTwoSiteGate(const CMatrix& u4, int i)
{
    Site& left = sites_[size_t(i)];
    Site& right = sites_[size_t(i) + 1];
    const int cl = left.left;
    const int mid = left.right;
    const int cr = right.right;
    const int rows = cl * 2;
    const int cols = 2 * cr;

    // theta without the left Lambda (Hastings form): B_i contracted
    // with B_{i+1}, indexed [(a,s1), (s2,b)].
    std::vector<Complex> theta_nl(size_t(rows) * size_t(cols), Complex(0.0));
    for (int a = 0; a < cl; ++a) {
        for (int s1 = 0; s1 < 2; ++s1) {
            for (int m = 0; m < mid; ++m) {
                const Complex lt =
                    left.t[size_t(a * 2 + s1) * size_t(mid) + size_t(m)];
                if (lt == Complex(0.0)) continue;
                for (int s2 = 0; s2 < 2; ++s2) {
                    for (int b = 0; b < cr; ++b) {
                        theta_nl[size_t(a * 2 + s1) * size_t(cols) +
                                 size_t(s2 * cr + b)] +=
                            lt * right.t[size_t(m * 2 + s2) * size_t(cr) +
                                         size_t(b)];
                    }
                }
            }
        }
    }

    // Apply the gate on the physical indices.
    std::vector<Complex> gated(size_t(rows) * size_t(cols), Complex(0.0));
    for (int a = 0; a < cl; ++a) {
        for (int b = 0; b < cr; ++b) {
            for (int sp = 0; sp < 4; ++sp) {
                Complex acc = 0.0;
                for (int sq = 0; sq < 4; ++sq) {
                    const Complex coeff = u4(size_t(sp), size_t(sq));
                    if (coeff == Complex(0.0)) continue;
                    acc += coeff *
                           theta_nl[size_t(a * 2 + (sq >> 1)) *
                                        size_t(cols) +
                                    size_t((sq & 1) * cr + b)];
                }
                gated[size_t(a * 2 + (sp >> 1)) * size_t(cols) +
                      size_t((sp & 1) * cr + b)] = acc;
            }
        }
    }

    // Full theta = diag(Lambda_left) * gated; split it with an SVD.
    CMatrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
    for (int a = 0; a < cl; ++a) {
        const double lam = lambda_[size_t(i)][size_t(a)];
        for (int s1 = 0; s1 < 2; ++s1) {
            for (int c = 0; c < cols; ++c) {
                m(size_t(a * 2 + s1), size_t(c)) =
                    lam * gated[size_t(a * 2 + s1) * size_t(cols) +
                                size_t(c)];
            }
        }
    }
    const SvdResult svd = svdThin(m);
    QA_REQUIRE(svd.rank() > 0,
               "MPS two-site update produced a zero-norm state");

    // Truncate to the cap; record the discarded Schmidt weight.
    const size_t k = std::min(svd.rank(), size_t(chi_cap_));
    double total = 0.0;
    double kept = 0.0;
    for (size_t j = 0; j < svd.rank(); ++j) {
        const double w = svd.sigma[j] * svd.sigma[j];
        total += w;
        if (j < k) kept += w;
    }
    stats_.discarded_weight += total > 0.0 ? (total - kept) / total : 0.0;
    stats_.max_bond = std::max(stats_.max_bond, int(k));
    ++stats_.two_site_updates;

    // New bond spectrum (renormalized to unit weight).
    const double inv_norm = 1.0 / std::sqrt(kept);
    std::vector<double>& bond = lambda_[size_t(i) + 1];
    bond.resize(k);
    for (size_t j = 0; j < k; ++j) bond[j] = svd.sigma[j] * inv_norm;

    // New right tensor: the kept rows of V^dagger (right-canonical).
    right.left = int(k);
    right.t.assign(size_t(k) * 2 * size_t(cr), Complex(0.0));
    for (size_t j = 0; j < k; ++j) {
        for (int s2 = 0; s2 < 2; ++s2) {
            for (int b = 0; b < cr; ++b) {
                right.t[(j * 2 + size_t(s2)) * size_t(cr) + size_t(b)] =
                    svd.vdag(j, size_t(s2 * cr + b));
            }
        }
    }

    // New left tensor by the Hastings trick: contract the un-weighted
    // gated theta with V (never divide by Lambda).
    left.right = int(k);
    left.t.assign(size_t(cl) * 2 * k, Complex(0.0));
    for (int a = 0; a < cl; ++a) {
        for (int s1 = 0; s1 < 2; ++s1) {
            for (size_t j = 0; j < k; ++j) {
                Complex acc = 0.0;
                for (int c = 0; c < cols; ++c) {
                    acc += gated[size_t(a * 2 + s1) * size_t(cols) +
                                 size_t(c)] *
                           std::conj(svd.vdag(j, size_t(c)));
                }
                left.t[size_t(a * 2 + s1) * k + j] = acc * inv_norm;
            }
        }
    }
}

int
MpsState::measureCollapse(int qubit, Rng& rng)
{
    QA_REQUIRE(qubit >= 0 && qubit < numQubits(),
               "MPS measurement qubit out of range");
    Site& site = sites_[size_t(qubit)];
    const int r = site.right;

    // Reduced outcome weights from the mixed-canonical environment:
    // Lambda^2-weighted row norms of the site tensor.
    double w[2] = {0.0, 0.0};
    for (int a = 0; a < site.left; ++a) {
        const double lam2 = lambda_[size_t(qubit)][size_t(a)] *
                            lambda_[size_t(qubit)][size_t(a)];
        for (int s = 0; s < 2; ++s) {
            for (int b = 0; b < r; ++b) {
                w[s] += lam2 * std::norm(site.t[size_t(a * 2 + s) *
                                                    size_t(r) +
                                                size_t(b)]);
            }
        }
    }
    const double total = w[0] + w[1];
    const double p0 = total > 0.0 ? w[0] / total : 1.0;
    const int outcome = rng.uniform() < p0 ? 0 : 1;

    // Project out the other branch; canonicalize() restores B-form,
    // the bond spectra, and unit norm in one exact pass.
    for (int a = 0; a < site.left; ++a) {
        for (int b = 0; b < r; ++b) {
            site.t[size_t(a * 2 + (1 - outcome)) * size_t(r) +
                   size_t(b)] = 0.0;
        }
    }
    canonicalize();
    return outcome;
}

void
MpsState::resetQubit(int qubit, Rng& rng)
{
    if (measureCollapse(qubit, rng) == 1) apply1q(xMatrix(), qubit);
}

void
MpsState::canonicalize()
{
    const int n = numQubits();

    // Sweep 1 (left to right): left-canonicalize every site, pushing
    // the residual — and finally the norm and global phase — off the
    // right edge.
    CMatrix carry = CMatrix::identity(1);
    for (int i = 0; i < n; ++i) {
        Site& site = sites_[size_t(i)];
        const int kin = int(carry.rows());
        const int r = site.right;
        CMatrix m(size_t(kin) * 2, size_t(r));
        for (int x = 0; x < kin; ++x) {
            for (int a = 0; a < site.left; ++a) {
                const Complex c = carry(size_t(x), size_t(a));
                if (c == Complex(0.0)) continue;
                for (int s = 0; s < 2; ++s) {
                    for (int b = 0; b < r; ++b) {
                        m(size_t(x * 2 + s), size_t(b)) +=
                            c * site.t[size_t(a * 2 + s) * size_t(r) +
                                       size_t(b)];
                    }
                }
            }
        }
        const SvdResult svd = svdThin(m);
        QA_REQUIRE(svd.rank() > 0,
                   "MPS canonicalization hit a zero-norm state");
        const size_t k = svd.rank();
        site.left = kin;
        site.right = int(k);
        site.t.assign(size_t(kin) * 2 * k, Complex(0.0));
        for (int x = 0; x < kin; ++x) {
            for (int s = 0; s < 2; ++s) {
                for (size_t j = 0; j < k; ++j) {
                    site.t[size_t(x * 2 + s) * k + j] =
                        svd.u(size_t(x * 2 + s), j);
                }
            }
        }
        carry = CMatrix(k, size_t(r));
        for (size_t j = 0; j < k; ++j) {
            for (int b = 0; b < r; ++b) {
                carry(j, size_t(b)) = svd.sigma[j] * svd.vdag(j, size_t(b));
            }
        }
    }
    // carry is now 1x1 = norm * phase; dropping it renormalizes.

    // Sweep 2 (right to left): right-canonicalize and re-derive every
    // bond's Schmidt spectrum (exact — the left environment is
    // left-canonical from sweep 1).
    CMatrix rcarry = CMatrix::identity(1);
    for (int i = n - 1; i >= 0; --i) {
        Site& site = sites_[size_t(i)];
        const int kin = int(rcarry.cols());
        const int l = site.left;
        CMatrix m(size_t(l), 2 * size_t(kin));
        for (int a = 0; a < l; ++a) {
            for (int s = 0; s < 2; ++s) {
                for (int y = 0; y < kin; ++y) {
                    Complex acc = 0.0;
                    for (int b = 0; b < site.right; ++b) {
                        acc += site.t[size_t(a * 2 + s) *
                                          size_t(site.right) +
                                      size_t(b)] *
                               rcarry(size_t(b), size_t(y));
                    }
                    m(size_t(a), size_t(s * kin + y)) = acc;
                }
            }
        }
        const SvdResult svd = svdThin(m);
        QA_REQUIRE(svd.rank() > 0,
                   "MPS canonicalization hit a zero-norm state");
        const size_t k = svd.rank();
        site.left = int(k);
        site.right = kin;
        site.t.assign(k * 2 * size_t(kin), Complex(0.0));
        for (size_t j = 0; j < k; ++j) {
            for (int s = 0; s < 2; ++s) {
                for (int y = 0; y < kin; ++y) {
                    site.t[(j * 2 + size_t(s)) * size_t(kin) +
                           size_t(y)] = svd.vdag(j, size_t(s * kin + y));
                }
            }
        }
        std::vector<double> bond(svd.sigma);
        normalizeSpectrum(&bond);
        lambda_[size_t(i)] = std::move(bond);
        rcarry = CMatrix(size_t(l), k);
        for (int a = 0; a < l; ++a) {
            for (size_t j = 0; j < k; ++j) {
                rcarry(size_t(a), j) = svd.u(size_t(a), j) * svd.sigma[j];
            }
        }
    }
    // rcarry is 1x1 with unit modulus (a global phase); drop it.
    lambda_[0] = {1.0};
    lambda_[size_t(n)] = {1.0};
}

void
MpsState::sampleAll(Rng& rng, std::string* bits) const
{
    const int n = numQubits();
    bits->assign(size_t(n), '0');
    std::vector<Complex> v{1.0};
    std::vector<Complex> next[2];
    for (int i = 0; i < n; ++i) {
        const Site& site = sites_[size_t(i)];
        const int r = site.right;
        double w[2] = {0.0, 0.0};
        for (int s = 0; s < 2; ++s) {
            next[s].assign(size_t(r), Complex(0.0));
            for (int a = 0; a < site.left; ++a) {
                const Complex va = v[size_t(a)];
                if (va == Complex(0.0)) continue;
                for (int b = 0; b < r; ++b) {
                    next[s][size_t(b)] +=
                        va * site.t[size_t(a * 2 + s) * size_t(r) +
                                    size_t(b)];
                }
            }
            for (int b = 0; b < r; ++b) w[s] += std::norm(next[s][size_t(b)]);
        }
        const double total = w[0] + w[1];
        const double p0 = total > 0.0 ? w[0] / total : 1.0;
        const int s = rng.uniform() < p0 ? 0 : 1;
        (*bits)[size_t(i)] = char('0' + s);
        const double inv = 1.0 / std::sqrt(w[s]);
        v = std::move(next[s]);
        for (Complex& c : v) c *= inv;
    }
}

Complex
MpsState::amplitude(const std::string& bits) const
{
    QA_REQUIRE(int(bits.size()) == numQubits(),
               "amplitude bitstring width must match the qubit count");
    std::vector<Complex> v{1.0};
    for (int i = 0; i < numQubits(); ++i) {
        const Site& site = sites_[size_t(i)];
        const int s = bits[size_t(i)] == '1' ? 1 : 0;
        const int r = site.right;
        std::vector<Complex> next(size_t(r), Complex(0.0));
        for (int a = 0; a < site.left; ++a) {
            const Complex va = v[size_t(a)];
            if (va == Complex(0.0)) continue;
            for (int b = 0; b < r; ++b) {
                next[size_t(b)] +=
                    va *
                    site.t[size_t(a * 2 + s) * size_t(r) + size_t(b)];
            }
        }
        v = std::move(next);
    }
    return v[0];
}

} // namespace mps
} // namespace qa
