/**
 * @file
 * Bond-dimension-capped matrix-product-state simulation core
 * (DESIGN.md Sec. 16): the third scaling law next to the 2^n dense
 * engines and the Clifford-only tableau. A pure state over n qubits is
 * held as a chain of site tensors B_i (shape chi_left x 2 x chi_right)
 * in right-canonical B-form plus the Schmidt spectrum Lambda_i of every
 * bond, so storage and gate cost scale with the entanglement the
 * circuit actually creates — O(n * chi^2) amplitudes-equivalent, chi
 * capped by the caller — instead of with 2^n.
 *
 *  - 1q gates are local tensor contractions, O(chi^2); they preserve
 *    canonical form exactly.
 *  - Nearest-neighbor 2q gates contract the two-site theta tensor,
 *    split it with an SVD (linalg/svd.hpp), and keep the top chi
 *    singular values. The discarded Schmidt weight is accumulated in
 *    TruncationStats — the backend's honesty metric. The update uses
 *    the Hastings trick (contract Lambda on the left, never divide by
 *    singular values), so near-zero Schmidt coefficients cannot blow
 *    up numerically.
 *  - Long-range 2q gates are SWAP-routed: the farther qubit is moved
 *    adjacent with nearest-neighbor SWAP updates, the gate applied, and
 *    the moves undone, keeping the qubit -> site map the identity.
 *  - Measurement/reset project a site tensor and re-canonicalize the
 *    chain with two exact SVD sweeps, O(n * chi^3): afterwards every
 *    Lambda is again the true Schmidt spectrum, so later probabilities
 *    and truncations stay correct.
 *  - sampleAll draws one bitstring left-to-right from conditional
 *    single-site probabilities, O(n * chi^2) per shot, valid because
 *    the chain is right-canonical.
 *
 * Determinism: every method is a pure function of the state and the
 * caller's Rng. No globals, no threads, no wall clock.
 */
#ifndef QA_MPS_MPS_STATE_HPP
#define QA_MPS_MPS_STATE_HPP

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace qa
{
namespace mps
{

/** Running record of what the chi cap cost us. */
struct TruncationStats
{
    /**
     * Sum over truncation events of the discarded Schmidt weight
     * (1 - kept_fidelity per event). An upper bound on the total
     * infidelity accumulated by the chi cap; exactly 0.0 when the cap
     * was never binding.
     */
    double discarded_weight = 0.0;

    /** Largest bond dimension the chain actually reached. */
    int max_bond = 1;

    /** Number of two-site SVD updates applied (incl. routing SWAPs). */
    size_t two_site_updates = 0;
};

/** One pure state in capped canonical MPS form, initialized to |0...0>. */
class MpsState
{
  public:
    MpsState(int num_qubits, int chi_cap);

    int numQubits() const { return int(sites_.size()); }
    int chiCap() const { return chi_cap_; }
    const TruncationStats& stats() const { return stats_; }

    /** Apply a 2x2 unitary to one qubit, O(chi^2). */
    void apply1q(const CMatrix& u, int qubit);

    /**
     * Apply a 4x4 unitary to (q0, q1), q0 the most significant bit of
     * the matrix index (the Instruction convention). Non-adjacent pairs
     * are SWAP-routed; each two-site update truncates to the chi cap.
     */
    void apply2q(const CMatrix& u, int q0, int q1);

    /**
     * Measure one qubit in the computational basis: draw the outcome
     * from the reduced density (one uniform from `rng`), project,
     * renormalize, and re-canonicalize the chain. Returns 0 or 1.
     */
    int measureCollapse(int qubit, Rng& rng);

    /** Reset to |0>: measureCollapse, then X when the outcome was 1. */
    void resetQubit(int qubit, Rng& rng);

    /**
     * Sample one computational-basis bitstring (qubit 0 first) by
     * left-to-right conditional probabilities; draws one uniform per
     * qubit. Does not collapse the state.
     */
    void sampleAll(Rng& rng, std::string* bits) const;

    /**
     * Exact amplitude <bits|psi> (qubit 0 = bits[0]), O(n * chi^2).
     * Test/diagnostic helper.
     */
    Complex amplitude(const std::string& bits) const;

  private:
    /** Site tensor, dims (left, 2, right); index (a*2+s)*right + b. */
    struct Site
    {
        int left = 1;
        int right = 1;
        std::vector<Complex> t;
    };

    /** Truncated two-site update at sites (i, i+1), Hastings form. */
    void applyTwoSiteGate(const CMatrix& u4, int i);

    /** SWAP the qubits at sites (i, i+1). */
    void swapSites(int i);

    /**
     * Restore exact canonical form (and unit norm) with a
     * left-canonicalizing sweep followed by a right-canonicalizing
     * sweep that re-derives every Lambda. Rank-revealing only — no chi
     * truncation, no added error.
     */
    void canonicalize();

    int chi_cap_;
    std::vector<Site> sites_;

    /** lambda_[i] = Schmidt spectrum of the bond left of site i;
     *  lambda_[0] and lambda_[n] are the trivial edge bonds {1}. */
    std::vector<std::vector<double>> lambda_;

    TruncationStats stats_;
};

} // namespace mps
} // namespace qa

#endif // QA_MPS_MPS_STATE_HPP
