/**
 * @file
 * Specialized dense amplitude kernels shared by the statevector and
 * density-matrix simulators.
 *
 * Both dense states are flat arrays of complex amplitudes indexed by a
 * bit pattern, so one kernel layer serves them: the statevector passes
 * its 2^n amplitudes directly, and the density matrix passes its
 * row-major 2^n x 2^n storage viewed as a 2^(2n)-entry array (row bits
 * shifted up by n, column bits at the bottom).
 *
 * A kernel call applies a 2^k x 2^k matrix at k explicit bit positions.
 * Dispatch picks a specialization by matrix structure (diagonal,
 * permutation, controlled-1q, dense 1q/2q/3q, generic gather fallback)
 * and, when compiled in and supported by the CPU, an AVX2+FMA variant
 * of the hot dense cases. Scalar fallbacks are always available and
 * produce the same results up to floating-point reassociation.
 *
 * Threading: kernels fan out through parallelFor only when the state
 * has at least kParallelThreshold amplitudes; smaller states (<= ~14
 * qubits) always run inline so per-gate cost never includes thread
 * handshakes (the BENCH_PR1 1-CPU regression).
 */
#ifndef QA_SIM_KERNELS_HPP
#define QA_SIM_KERNELS_HPP

#include <cstddef>
#include <cstdint>

#include "linalg/matrix.hpp"

namespace qa
{

/**
 * Structural class of a gate matrix, used both for kernel dispatch and
 * for the fusion plan reported by explain (kernel mix).
 */
enum class KernelClass
{
    kDiagonal1q,    ///< 2x2 diagonal (z, s, t, rz, phase).
    kPermutation1q, ///< 2x2 anti-diagonal (x, y).
    kGeneral1q,     ///< Dense 2x2 (h, u3, fused 1q runs).
    kDiagonal2q,    ///< 4x4 diagonal (cz, cphase, zz interactions).
    kControlled1q,  ///< 4x4 block I (+) U on either local qubit (cx, cu).
    kPermutation2q, ///< 4x4 with one unit-modulus entry per row (swap).
    kGeneral2q,     ///< Dense 4x4 (fused 2q runs).
    kGeneral3q,     ///< Dense 8x8 (stretch fusion).
    kGenericK       ///< Anything larger: gather/scatter fallback.
};

/** Stable log/wire name of a kernel class. */
const char* kernelClassName(KernelClass klass);

/** Classify a 2^k x 2^k gate matrix by structure. */
KernelClass classifyKernel(const CMatrix& m);

/** True when AVX2 kernels were compiled in (QA_ENABLE_SIMD=ON). */
bool simdCompiledIn();

/** True when AVX2 kernels are compiled in AND this CPU supports them. */
bool simdAvailable();

/**
 * Minimum amplitude count before a dense kernel fans out across
 * threads. Below this the sweep runs inline on the calling thread.
 */
inline constexpr uint64_t kParallelThreshold = uint64_t(1) << 15;

/**
 * Apply the 2^k x 2^k matrix `m` to the amplitude array.
 *
 * @param amps Interleaved complex amplitudes (length `dim`).
 * @param dim  Total amplitude count (power of two).
 * @param m    Gate matrix; row/column index bit j (MSB-first over the k
 *             operand bits) corresponds to global bit `pos[j]`.
 * @param pos  Global bit positions of the operand bits, local-MSB first
 *             (for a statevector: pos[j] = n-1-qubits[j]).
 * @param k    Operand count; requires 2^k == m.rows() and k <= 16.
 * @param simd Allow the AVX2 path when available; false forces scalar.
 */
void applyDenseKernel(Complex* amps, uint64_t dim, const CMatrix& m,
                      const int* pos, size_t k, bool simd);

} // namespace qa

#endif // QA_SIM_KERNELS_HPP
