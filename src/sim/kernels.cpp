/**
 * @file
 * Kernel classification, dispatch, and the scalar kernel family.
 *
 * Scalar kernels spell complex arithmetic out in explicit doubles:
 * std::complex operator* can lower to the __muldc3 libcall (full
 * inf/nan semantics), which is a per-amplitude function call in the
 * hottest loop of the whole system. The explicit form vectorizes and
 * matches the AVX2 leaves up to floating-point reassociation.
 */
#include "sim/kernels.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "sim/kernels_simd.hpp"

namespace qa
{

namespace
{

/** Grain for parallel fan-out, in amplitudes (see kParallelThreshold). */
constexpr uint64_t kKernelGrain = uint64_t(1) << 15;

/** Insert zero bits at positions sp[0] < sp[1] < ... into packed r. */
uint64_t
deposit(uint64_t r, const int* sp, size_t k)
{
    uint64_t out = r;
    for (size_t j = 0; j < k; ++j) {
        const uint64_t low = out & ((uint64_t(1) << sp[j]) - 1);
        out = ((out >> sp[j]) << (sp[j] + 1)) | low;
    }
    return out;
}

/** Amplitude index of the bit-clear member of 1q pair `r`. */
uint64_t
pairBase(uint64_t r, int p)
{
    return ((r >> p) << (p + 1)) | (r & ((uint64_t(1) << p) - 1));
}

/**
 * Chunked sweep over the 2^(n-k) rest indices: inline below the
 * parallel threshold so small states never pay thread handshakes.
 */
template <typename Leaf>
void
forRest(uint64_t dim, size_t k, const Leaf& leaf)
{
    const uint64_t rest = dim >> k;
    if (dim < kParallelThreshold) {
        leaf(uint64_t(0), rest);
        return;
    }
    parallelFor(rest, std::max<uint64_t>(kKernelGrain >> k, 1), leaf);
}

/** Chunked sweep over all dim amplitudes (diagonal kernels). */
template <typename Leaf>
void
forFull(uint64_t dim, const Leaf& leaf)
{
    if (dim < kParallelThreshold) {
        leaf(uint64_t(0), dim);
        return;
    }
    parallelFor(dim, kKernelGrain, leaf);
}

void
scalarK1General(Complex* amps, uint64_t r0, uint64_t r1, int p,
                const Complex* m)
{
    const uint64_t bit = uint64_t(1) << p;
    const double m00r = m[0].real(), m00i = m[0].imag();
    const double m01r = m[1].real(), m01i = m[1].imag();
    const double m10r = m[2].real(), m10i = m[2].imag();
    const double m11r = m[3].real(), m11i = m[3].imag();
    for (uint64_t r = r0; r < r1; ++r) {
        const uint64_t i0 = pairBase(r, p), i1 = i0 | bit;
        const double a0r = amps[i0].real(), a0i = amps[i0].imag();
        const double a1r = amps[i1].real(), a1i = amps[i1].imag();
        amps[i0] = Complex(m00r * a0r - m00i * a0i +
                               m01r * a1r - m01i * a1i,
                           m00r * a0i + m00i * a0r +
                               m01r * a1i + m01i * a1r);
        amps[i1] = Complex(m10r * a0r - m10i * a0i +
                               m11r * a1r - m11i * a1i,
                           m10r * a0i + m10i * a0r +
                               m11r * a1i + m11i * a1r);
    }
}

void
scalarK1Diag(Complex* amps, uint64_t r0, uint64_t r1, int p,
             const Complex* d)
{
    const uint64_t bit = uint64_t(1) << p;
    const double d0r = d[0].real(), d0i = d[0].imag();
    const double d1r = d[1].real(), d1i = d[1].imag();
    for (uint64_t r = r0; r < r1; ++r) {
        const uint64_t i0 = pairBase(r, p), i1 = i0 | bit;
        const double a0r = amps[i0].real(), a0i = amps[i0].imag();
        const double a1r = amps[i1].real(), a1i = amps[i1].imag();
        amps[i0] = Complex(d0r * a0r - d0i * a0i, d0r * a0i + d0i * a0r);
        amps[i1] = Complex(d1r * a1r - d1i * a1i, d1r * a1i + d1i * a1r);
    }
}

void
scalarK1Perm(Complex* amps, uint64_t r0, uint64_t r1, int p,
             const Complex* c)
{
    const uint64_t bit = uint64_t(1) << p;
    const double c01r = c[0].real(), c01i = c[0].imag();
    const double c10r = c[1].real(), c10i = c[1].imag();
    for (uint64_t r = r0; r < r1; ++r) {
        const uint64_t i0 = pairBase(r, p), i1 = i0 | bit;
        const double a0r = amps[i0].real(), a0i = amps[i0].imag();
        const double a1r = amps[i1].real(), a1i = amps[i1].imag();
        amps[i0] = Complex(c01r * a1r - c01i * a1i,
                           c01r * a1i + c01i * a1r);
        amps[i1] = Complex(c10r * a0r - c10i * a0i,
                           c10r * a0i + c10i * a0r);
    }
}

void
scalarCtrl(Complex* amps, uint64_t r0, uint64_t r1, int pc, int pt,
           const Complex* u)
{
    const uint64_t cbit = uint64_t(1) << pc;
    const uint64_t tbit = uint64_t(1) << pt;
    const int sp[2] = {pc < pt ? pc : pt, pc < pt ? pt : pc};
    const double u00r = u[0].real(), u00i = u[0].imag();
    const double u01r = u[1].real(), u01i = u[1].imag();
    const double u10r = u[2].real(), u10i = u[2].imag();
    const double u11r = u[3].real(), u11i = u[3].imag();
    for (uint64_t r = r0; r < r1; ++r) {
        const uint64_t i0 = deposit(r, sp, 2) | cbit, i1 = i0 | tbit;
        const double a0r = amps[i0].real(), a0i = amps[i0].imag();
        const double a1r = amps[i1].real(), a1i = amps[i1].imag();
        amps[i0] = Complex(u00r * a0r - u00i * a0i +
                               u01r * a1r - u01i * a1i,
                           u00r * a0i + u00i * a0r +
                               u01r * a1i + u01i * a1r);
        amps[i1] = Complex(u10r * a0r - u10i * a0i +
                               u11r * a1r - u11i * a1i,
                           u10r * a0i + u10i * a0r +
                               u11r * a1i + u11i * a1r);
    }
}

/**
 * Dense fixed-size kernel for SUBDIM = 2^k groups: gather, multiply,
 * scatter. SUBDIM as a template parameter lets the compiler fully
 * unroll the row/column loops.
 */
template <size_t SUBDIM>
void
scalarDense(Complex* amps, uint64_t r0, uint64_t r1, const int* sp,
            const uint64_t* off, const Complex* m)
{
    double mr[SUBDIM * SUBDIM], mi[SUBDIM * SUBDIM];
    for (size_t e = 0; e < SUBDIM * SUBDIM; ++e) {
        mr[e] = m[e].real();
        mi[e] = m[e].imag();
    }
    constexpr size_t k = SUBDIM == 4 ? 2 : 3;
    for (uint64_t r = r0; r < r1; ++r) {
        const uint64_t base = deposit(r, sp, k);
        double ar[SUBDIM], ai[SUBDIM], outr[SUBDIM], outi[SUBDIM];
        for (size_t s = 0; s < SUBDIM; ++s) {
            const Complex& a = amps[base | off[s]];
            ar[s] = a.real();
            ai[s] = a.imag();
        }
        for (size_t row = 0; row < SUBDIM; ++row) {
            double sr = 0.0, si = 0.0;
            for (size_t col = 0; col < SUBDIM; ++col) {
                const size_t e = row * SUBDIM + col;
                sr += mr[e] * ar[col] - mi[e] * ai[col];
                si += mr[e] * ai[col] + mi[e] * ar[col];
            }
            outr[row] = sr;
            outi[row] = si;
        }
        for (size_t s = 0; s < SUBDIM; ++s) {
            amps[base | off[s]] = Complex(outr[s], outi[s]);
        }
    }
}

/** Generic k-qubit gather/scatter fallback (k >= 4). */
void
scalarGenericK(Complex* amps, uint64_t r0, uint64_t r1, const int* sp,
               const std::vector<uint64_t>& off, const CMatrix& m)
{
    const size_t subdim = off.size();
    const size_t k = size_t(__builtin_ctzll(uint64_t(subdim)));
    std::vector<Complex> gathered(subdim);
    std::vector<uint64_t> indices(subdim);
    for (uint64_t r = r0; r < r1; ++r) {
        const uint64_t base = deposit(r, sp, k);
        for (size_t s = 0; s < subdim; ++s) {
            indices[s] = base | off[s];
            gathered[s] = amps[indices[s]];
        }
        for (size_t row = 0; row < subdim; ++row) {
            Complex sum = 0.0;
            for (size_t col = 0; col < subdim; ++col) {
                sum += m(row, col) * gathered[col];
            }
            amps[indices[row]] = sum;
        }
    }
}

/**
 * Match a controlled-1q pattern: m == I (+) U with the control on one
 * local qubit and its value 1. On success stores the control's local
 * bit (1 = local MSB = qubits[0], 0 = local LSB) and the 2x2 block.
 */
bool
matchControlled(const CMatrix& m, int* control_local, Complex* u)
{
    const Complex zero(0.0), one(1.0);
    // Control on the local MSB: rows/cols 0..1 are identity.
    bool msb = m(0, 0) == one && m(1, 1) == one;
    for (size_t r = 0; r < 4 && msb; ++r) {
        for (size_t c = 0; c < 4; ++c) {
            if ((r < 2 || c < 2) && !(r == c && r < 2) &&
                m(r, c) != zero) {
                msb = false;
                break;
            }
        }
    }
    if (msb) {
        *control_local = 1;
        u[0] = m(2, 2);
        u[1] = m(2, 3);
        u[2] = m(3, 2);
        u[3] = m(3, 3);
        return true;
    }
    // Control on the local LSB: rows/cols 0 and 2 are identity.
    bool lsb = m(0, 0) == one && m(2, 2) == one;
    for (size_t r = 0; r < 4 && lsb; ++r) {
        for (size_t c = 0; c < 4; ++c) {
            const bool fixed_r = r == 0 || r == 2;
            const bool fixed_c = c == 0 || c == 2;
            if ((fixed_r || fixed_c) && !(r == c && fixed_r) &&
                m(r, c) != zero) {
                lsb = false;
                break;
            }
        }
    }
    if (lsb) {
        *control_local = 0;
        u[0] = m(1, 1);
        u[1] = m(1, 3);
        u[2] = m(3, 1);
        u[3] = m(3, 3);
        return true;
    }
    return false;
}

/** One nonzero entry per row and per column. */
bool
isMonomial(const CMatrix& m)
{
    const Complex zero(0.0);
    const size_t dim = m.rows();
    std::vector<int> col_hits(dim, 0);
    for (size_t r = 0; r < dim; ++r) {
        int row_hits = 0;
        for (size_t c = 0; c < dim; ++c) {
            if (m(r, c) != zero) {
                ++row_hits;
                ++col_hits[c];
            }
        }
        if (row_hits != 1) return false;
    }
    for (size_t c = 0; c < dim; ++c) {
        if (col_hits[c] != 1) return false;
    }
    return true;
}

} // namespace

const char*
kernelClassName(KernelClass klass)
{
    switch (klass) {
      case KernelClass::kDiagonal1q:    return "diagonal1q";
      case KernelClass::kPermutation1q: return "permutation1q";
      case KernelClass::kGeneral1q:     return "general1q";
      case KernelClass::kDiagonal2q:    return "diagonal2q";
      case KernelClass::kControlled1q:  return "controlled1q";
      case KernelClass::kPermutation2q: return "permutation2q";
      case KernelClass::kGeneral2q:     return "general2q";
      case KernelClass::kGeneral3q:     return "general3q";
      case KernelClass::kGenericK:      return "generic";
    }
    return "unknown";
}

KernelClass
classifyKernel(const CMatrix& m)
{
    const Complex zero(0.0);
    const size_t dim = m.rows();
    if (dim == 2) {
        if (m(0, 1) == zero && m(1, 0) == zero) {
            return KernelClass::kDiagonal1q;
        }
        if (m(0, 0) == zero && m(1, 1) == zero) {
            return KernelClass::kPermutation1q;
        }
        return KernelClass::kGeneral1q;
    }
    if (dim == 4) {
        bool diag = true;
        for (size_t r = 0; r < 4 && diag; ++r) {
            for (size_t c = 0; c < 4; ++c) {
                if (r != c && m(r, c) != zero) {
                    diag = false;
                    break;
                }
            }
        }
        if (diag) return KernelClass::kDiagonal2q;
        int control = 0;
        Complex u[4];
        if (matchControlled(m, &control, u)) {
            return KernelClass::kControlled1q;
        }
        if (isMonomial(m)) return KernelClass::kPermutation2q;
        return KernelClass::kGeneral2q;
    }
    if (dim == 8) return KernelClass::kGeneral3q;
    return KernelClass::kGenericK;
}

bool
simdCompiledIn()
{
#if defined(QA_SIMD_ENABLED)
    return true;
#else
    return false;
#endif
}

bool
simdAvailable()
{
#if defined(QA_SIMD_ENABLED)
    static const bool ok = __builtin_cpu_supports("avx2") &&
                           __builtin_cpu_supports("fma");
    return ok;
#else
    return false;
#endif
}

void
applyDenseKernel(Complex* amps, uint64_t dim, const CMatrix& m,
                 const int* pos, size_t k, bool simd)
{
    QA_REQUIRE(k >= 1 && k <= 16 && m.rows() == (size_t(1) << k) &&
                   m.cols() == m.rows(),
               "kernel matrix dimension does not match qubit count");
    const bool use_simd = simd && simdAvailable();
    (void)use_simd;

    if (k == 1) {
        const int p = pos[0];
        switch (classifyKernel(m)) {
          case KernelClass::kDiagonal1q: {
            const Complex d[2] = {m(0, 0), m(1, 1)};
            forRest(dim, 1, [&](uint64_t b, uint64_t e) {
#if defined(QA_SIMD_ENABLED)
                if (use_simd) {
                    simd::k1DiagRange(amps, b, e, p, d);
                    return;
                }
#endif
                scalarK1Diag(amps, b, e, p, d);
            });
            return;
          }
          case KernelClass::kPermutation1q: {
            const Complex c[2] = {m(0, 1), m(1, 0)};
            forRest(dim, 1, [&](uint64_t b, uint64_t e) {
#if defined(QA_SIMD_ENABLED)
                if (use_simd) {
                    simd::k1PermRange(amps, b, e, p, c);
                    return;
                }
#endif
                scalarK1Perm(amps, b, e, p, c);
            });
            return;
          }
          default: {
            const Complex mm[4] = {m(0, 0), m(0, 1), m(1, 0), m(1, 1)};
            forRest(dim, 1, [&](uint64_t b, uint64_t e) {
#if defined(QA_SIMD_ENABLED)
                if (use_simd) {
                    simd::k1GeneralRange(amps, b, e, p, mm);
                    return;
                }
#endif
                scalarK1General(amps, b, e, p, mm);
            });
            return;
          }
        }
    }

    if (k == 2) {
        const int p_hi = pos[0], p_lo = pos[1];
        switch (classifyKernel(m)) {
          case KernelClass::kDiagonal2q: {
            const Complex d[4] = {m(0, 0), m(1, 1), m(2, 2), m(3, 3)};
            const double dr[4] = {d[0].real(), d[1].real(), d[2].real(),
                                  d[3].real()};
            const double di[4] = {d[0].imag(), d[1].imag(), d[2].imag(),
                                  d[3].imag()};
            forFull(dim, [&](uint64_t b, uint64_t e) {
                for (uint64_t i = b; i < e; ++i) {
                    const size_t s = ((i >> p_hi) & 1) * 2 +
                                     ((i >> p_lo) & 1);
                    const double ar = amps[i].real(), ai = amps[i].imag();
                    amps[i] = Complex(dr[s] * ar - di[s] * ai,
                                      dr[s] * ai + di[s] * ar);
                }
            });
            return;
          }
          case KernelClass::kControlled1q: {
            int control = 0;
            Complex u[4];
            matchControlled(m, &control, u);
            const int pc = control == 1 ? p_hi : p_lo;
            const int pt = control == 1 ? p_lo : p_hi;
            forRest(dim, 2, [&](uint64_t b, uint64_t e) {
#if defined(QA_SIMD_ENABLED)
                if (use_simd && pc >= 1 && pt >= 1) {
                    simd::kCtrlRange(amps, b, e, pc, pt, u);
                    return;
                }
#endif
                scalarCtrl(amps, b, e, pc, pt, u);
            });
            return;
          }
          default: {
            // Permutation-2q keeps the dense path: a 4x4 gather with
            // mostly-zero rows is already cheap and swap gates are rare.
            const int sp[2] = {p_hi < p_lo ? p_hi : p_lo,
                               p_hi < p_lo ? p_lo : p_hi};
            const uint64_t b_hi = uint64_t(1) << p_hi;
            const uint64_t b_lo = uint64_t(1) << p_lo;
            const uint64_t off[4] = {0, b_lo, b_hi, b_hi | b_lo};
            Complex mm[16];
            for (size_t r = 0; r < 4; ++r) {
                for (size_t c = 0; c < 4; ++c) mm[r * 4 + c] = m(r, c);
            }
            forRest(dim, 2, [&](uint64_t b, uint64_t e) {
#if defined(QA_SIMD_ENABLED)
                if (use_simd && sp[0] >= 1) {
                    const int pp[2] = {p_hi, p_lo};
                    simd::k2GeneralRange(amps, b, e, pp, mm);
                    return;
                }
#endif
                scalarDense<4>(amps, b, e, sp, off, mm);
            });
            return;
          }
        }
    }

    if (k == 3) {
        int sp[3] = {pos[0], pos[1], pos[2]};
        std::sort(sp, sp + 3);
        uint64_t off[8];
        for (uint64_t s = 0; s < 8; ++s) {
            off[s] = (((s >> 2) & 1) << pos[0]) |
                     (((s >> 1) & 1) << pos[1]) | ((s & 1) << pos[2]);
        }
        Complex mm[64];
        for (size_t r = 0; r < 8; ++r) {
            for (size_t c = 0; c < 8; ++c) mm[r * 8 + c] = m(r, c);
        }
        forRest(dim, 3, [&](uint64_t b, uint64_t e) {
#if defined(QA_SIMD_ENABLED)
            if (use_simd && sp[0] >= 1) {
                simd::k3GeneralRange(amps, b, e, pos, mm);
                return;
            }
#endif
            scalarDense<8>(amps, b, e, sp, off, mm);
        });
        return;
    }

    // Generic gather/scatter fallback for k >= 4.
    std::vector<int> sp(pos, pos + k);
    std::sort(sp.begin(), sp.end());
    const size_t subdim = size_t(1) << k;
    std::vector<uint64_t> off(subdim, 0);
    for (uint64_t s = 0; s < subdim; ++s) {
        for (size_t j = 0; j < k; ++j) {
            off[s] |= ((s >> (k - 1 - j)) & 1) << pos[j];
        }
    }
    forRest(dim, k, [&](uint64_t b, uint64_t e) {
        scalarGenericK(amps, b, e, sp.data(), off, m);
    });
}

} // namespace qa
