/**
 * @file
 * Single-qubit Kraus channels used by the noise model.
 */
#ifndef QA_SIM_KRAUS_HPP
#define QA_SIM_KRAUS_HPP

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace qa
{

/**
 * A completely-positive trace-preserving map given by 2x2 Kraus operators
 * (sum_k K_k^dagger K_k = I, validated on construction).
 */
class KrausChannel
{
  public:
    KrausChannel(std::string name, std::vector<CMatrix> ops);

    /**
     * Build a channel without the trace-preservation check, for
     * operators loaded from external calibration data that are only
     * validated at use time (NoiseModel::validate). Shape (2x2,
     * non-empty) is still enforced.
     */
    static KrausChannel raw(std::string name, std::vector<CMatrix> ops);

    const std::string& name() const { return name_; }
    const std::vector<CMatrix>& ops() const { return ops_; }

    /** True when sum_k K_k^dagger K_k == I within `tol`. */
    bool isTracePreserving(double tol = 1e-8) const;

    /** Depolarizing channel with error probability p. */
    static KrausChannel depolarizing(double p);

    /** Amplitude damping with decay probability gamma. */
    static KrausChannel amplitudeDamping(double gamma);

    /** Phase damping with dephasing probability lambda. */
    static KrausChannel phaseDamping(double lambda);

    /** Bit flip (X) with probability p. */
    static KrausChannel bitFlip(double p);

    /** Phase flip (Z) with probability p. */
    static KrausChannel phaseFlip(double p);

  private:
    KrausChannel() = default;

    std::string name_;
    std::vector<CMatrix> ops_;
};

} // namespace qa

#endif // QA_SIM_KRAUS_HPP
