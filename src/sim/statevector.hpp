/**
 * @file
 * Statevector simulator: the workhorse backend for running programs with
 * inserted assertion circuits (the paper's "qasm simulator" substitute).
 *
 * Supports mid-circuit measurement with collapse (the capability real
 * devices lack and assertion circuits are engineered around), shot
 * sampling, trajectory (stochastic Kraus) noise, classical readout error,
 * and an exact branching distribution for deterministic tests.
 */
#ifndef QA_SIM_STATEVECTOR_HPP
#define QA_SIM_STATEVECTOR_HPP

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "linalg/vector.hpp"
#include "sim/fusion.hpp"
#include "sim/noise.hpp"
#include "sim/options.hpp"
#include "sim/result.hpp"

namespace qa
{

/** Mutable n-qubit pure state with gate/measurement/channel application. */
class Statevector
{
  public:
    /** Ground state |0...0> over the given number of qubits. */
    explicit Statevector(int num_qubits);

    /** Adopt explicit amplitudes (dimension must be a power of two). */
    explicit Statevector(CVector amplitudes);

    int numQubits() const { return num_qubits_; }
    const CVector& amplitudes() const { return amps_; }

    /**
     * Allow/forbid the AVX2 kernel path for this state (default on;
     * effective only when compiled in and supported by the CPU). The
     * flag copies with the state, so scratch clones keep the setting.
     */
    void setSimd(bool simd) { simd_ = simd; }
    bool simdEnabled() const { return simd_; }

    /**
     * Apply a 2^k x 2^k unitary (or Kraus operator) to the listed qubits;
     * qubits[0] is the most significant bit of the local index.
     */
    void applyMatrix(const CMatrix& m, const std::vector<int>& qubits);

    /** Apply a gate instruction. */
    void applyGate(const Instruction& instr);

    /** Probability that measuring qubit q yields 1. */
    double probabilityOne(int q) const;

    /** Measure qubit q, collapse, and return the outcome (0 or 1). */
    int measure(int q, Rng& rng);

    /**
     * Project qubit q onto the given outcome and renormalize.
     * Requires the outcome to have nonzero probability.
     */
    void collapse(int q, int outcome);

    /** Reset qubit q to |0> (measure + conditional flip). */
    void reset(int q, Rng& rng);

    /** Sample one stochastic trajectory of a single-qubit Kraus channel. */
    void applyKrausTrajectory(const KrausChannel& channel, int q, Rng& rng);

    /** Reduced 2x2 density matrix of qubit q. */
    CMatrix reducedDensity(int q) const;

    /**
     * Probabilities of all basis outcomes with mass above eps, sorted by
     * ascending basis index.
     */
    std::vector<std::pair<uint64_t, double>>
    basisProbabilities(double eps = 1e-12) const;

    /** basisProbabilities as a map, for callers needing keyed lookup. */
    std::map<uint64_t, double>
    basisProbabilitiesMap(double eps = 1e-12) const;

    /** Sample a full computational-basis outcome without collapsing. */
    uint64_t sampleBasis(Rng& rng) const;

  private:
    int num_qubits_;
    CVector amps_;
    bool simd_ = true;
};

/**
 * Run the circuit `shots` times, sampling measurements (and trajectory
 * noise when a model is given), and histogram the classical bits.
 * Routed entry point (backend/dispatch.cpp): options.backend selects a
 * concrete simulation backend, and kAuto picks the cheapest capable one
 * (Clifford circuits run on the stabilizer tableau at polynomial cost;
 * dense circuits fall back to the statevector engine of sim/engine.hpp,
 * whose deterministic prefix is evolved once and cloned per shot).
 * Results are bit-identical for any thread count on any fixed resolved
 * backend; different backends agree distributionally, not bit-wise.
 */
Counts runShots(const QuantumCircuit& circuit, const SimOptions& options);

/**
 * Exact noiseless outcome distribution: branches on every measurement and
 * reset, so mid-circuit measurements are handled exactly. Intended for
 * circuits with a modest number of measurements.
 */
Distribution exactDistribution(const QuantumCircuit& circuit);

/**
 * Final pure state of a measurement-free, noiseless circuit.
 * Rejects circuits containing measurements or resets. Evolves through
 * the gate-fusion pass with default options; the overload exposes the
 * fusion and SIMD knobs (disable both for a reassociation-free
 * reference evolution in tests).
 */
Statevector finalState(const QuantumCircuit& circuit);
Statevector finalState(const QuantumCircuit& circuit,
                       const FusionOptions& fusion, bool simd = true);

} // namespace qa

#endif // QA_SIM_STATEVECTOR_HPP
