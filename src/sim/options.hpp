/**
 * @file
 * Shot-execution options shared by every simulation backend, plus the
 * backend-selection vocabulary (BackendKind / BackendRequest).
 *
 * This header is the single home of the execution defaults. The serve
 * layer's JobSpec and wire parser defer to `defaults::` instead of
 * repeating literals, so adding an option (like the backend request)
 * cannot leave the engine and the job parser disagreeing about its
 * default.
 */
#ifndef QA_SIM_OPTIONS_HPP
#define QA_SIM_OPTIONS_HPP

#include <cstdint>
#include <string>

namespace qa
{

struct NoiseModel;

/** One concrete simulation backend (see backend/backend.hpp). */
enum class BackendKind
{
    kStatevector,   ///< Dense pure-state evolution, O(2^n) per gate.
    kDensityMatrix, ///< Dense mixed-state evolution, O(4^n) per gate.
    kStabilizer,    ///< Clifford tableau, O(n) per gate / O(n^2) measure.
    kMps            ///< Bond-capped matrix product state, O(chi^3) per 2q gate.
};

/** What a caller may ask for: a concrete backend, or automatic routing. */
enum class BackendRequest
{
    kAuto,          ///< Router picks the cheapest capable backend.
    kStatevector,
    kDensityMatrix,
    kStabilizer,
    kMps
};

/** Stable wire/log name of a backend kind. */
inline const char*
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::kStatevector:   return "statevector";
      case BackendKind::kDensityMatrix: return "density_matrix";
      case BackendKind::kStabilizer:    return "stabilizer";
      case BackendKind::kMps:           return "mps";
    }
    return "unknown";
}

/** Stable wire/log name of a backend request. */
inline const char*
backendRequestName(BackendRequest request)
{
    switch (request) {
      case BackendRequest::kAuto:          return "auto";
      case BackendRequest::kStatevector:   return "statevector";
      case BackendRequest::kDensityMatrix: return "density_matrix";
      case BackendRequest::kStabilizer:    return "stabilizer";
      case BackendRequest::kMps:           return "mps";
    }
    return "unknown";
}

/** Parse a wire backend name; returns false on an unknown name. */
inline bool
parseBackendRequest(const std::string& name, BackendRequest* out)
{
    if (name == "auto") { *out = BackendRequest::kAuto; return true; }
    if (name == "statevector") {
        *out = BackendRequest::kStatevector;
        return true;
    }
    if (name == "density_matrix" || name == "density") {
        *out = BackendRequest::kDensityMatrix;
        return true;
    }
    if (name == "stabilizer") {
        *out = BackendRequest::kStabilizer;
        return true;
    }
    if (name == "mps") {
        *out = BackendRequest::kMps;
        return true;
    }
    return false;
}

/** The execution defaults, shared by SimOptions and serve::JobSpec. */
namespace defaults
{
inline constexpr int kShots = 1024;
inline constexpr uint64_t kSeed = 12345;

/**
 * Engine-level default thread count: 0 picks hardware concurrency.
 * The serve layer overrides this with kServeThreads.
 */
inline constexpr int kSimThreads = 0;

/**
 * Serve-layer default for a job's own shot loop: 1 keeps the
 * scheduler's worker pool as the only parallelism.
 */
inline constexpr int kServeThreads = 1;

inline constexpr double kDeadlineMs = 0.0;
inline constexpr BackendRequest kBackend = BackendRequest::kAuto;

/** Gate fusion on by default; see sim/fusion.hpp. */
inline constexpr bool kFusion = true;

/** Largest qubit union one fused group may cover (2 or 3). */
inline constexpr int kFusionMaxQubits = 2;

/** AVX2 kernels on by default (runtime-dispatched; see sim/kernels.hpp). */
inline constexpr bool kSimd = true;

/**
 * MPS bond-dimension cap: every two-site update keeps at most this many
 * Schmidt coefficients. 64 serves the 30-50 qubit low-entanglement
 * regime with per-gate cost ~2^18 flops.
 */
inline constexpr int kMpsChi = 64;

/**
 * Largest estimated truncation-error bound (from the router's
 * entanglement heuristic) at which the MPS backend is considered
 * capable of a circuit.
 */
inline constexpr double kMpsTruncTol = 1e-6;
} // namespace defaults

/** Options for shot-based simulation. */
struct SimOptions
{
    int shots = defaults::kShots;
    uint64_t seed = defaults::kSeed;
    const NoiseModel* noise = nullptr;

    /**
     * Worker threads for the shot loop: 0 picks hardware_concurrency,
     * 1 runs the loop inline. Seeded runs produce bit-identical Counts
     * for any value (per-shot counter-based RNG streams).
     */
    int num_threads = defaults::kSimThreads;

    /**
     * Skip circuit analysis and replay every instruction each shot on
     * the statevector backend (the pre-engine reference path; kept for
     * tests and benchmarks). Forces statevector routing.
     */
    bool naive = false;

    /**
     * Wall-clock budget in milliseconds; <= 0 runs unbounded. When the
     * budget expires mid-run the engine stops cooperatively, joins every
     * worker, and returns the shots completed so far with
     * Counts::truncated set. Truncated runs are not bit-reproducible
     * (which shots finish depends on timing); completed runs are.
     */
    double deadline_ms = defaults::kDeadlineMs;

    /**
     * Backend selection: kAuto routes to the cheapest capable backend
     * (backend/router.hpp); a concrete request forces that backend and
     * fails with ErrorCode::kBadRequest if it cannot run the circuit.
     */
    BackendRequest backend = defaults::kBackend;

    /**
     * Gate fusion for the dense backends (sim/fusion.hpp): coalesce
     * runs of gates sharing <= fusion_max_qubits qubits into single
     * kernels at prepare time. Off under `naive`, and never applied to
     * gates that receive per-gate Kraus noise (fusion would change
     * gate arity and thus which channel list applies). Results equal
     * the unfused evolution up to floating-point reassociation; fixed
     * seeds keep sampled counts bit-identical across thread counts
     * either way.
     */
    bool fusion = defaults::kFusion;
    int fusion_max_qubits = defaults::kFusionMaxQubits;

    /**
     * Allow the AVX2 amplitude kernels when compiled in and supported
     * by the CPU; false forces the scalar kernels.
     */
    bool simd = defaults::kSimd;

    /**
     * MPS backend bond-dimension cap (chi). Larger values widen the
     * class of circuits the backend can run exactly at the cost of
     * O(chi^3) two-site updates. Part of the routing decision and the
     * serve cache key for MPS-routed jobs.
     */
    int mps_chi = defaults::kMpsChi;

    /**
     * MPS capability tolerance: the router treats the MPS backend as
     * incapable of a circuit whose estimated truncation-error bound
     * exceeds this. Forcing backend=mps past the tolerance is a typed
     * kBadRequest, not a silent fallback.
     */
    double mps_trunc_tol = defaults::kMpsTruncTol;
};

} // namespace qa

#endif // QA_SIM_OPTIONS_HPP
