/**
 * @file
 * Measurement-outcome containers shared by both simulators.
 *
 * Classical bitstrings are rendered with classical bit 0 first, mirroring
 * the qubit-0-is-MSB ket convention, so measuring qubit i into clbit i
 * reproduces the paper's ket labels directly.
 */
#ifndef QA_SIM_RESULT_HPP
#define QA_SIM_RESULT_HPP

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace qa
{

/** Exact outcome distribution: bitstring -> probability. */
struct Distribution
{
    std::map<std::string, double> probs;

    /** Probability mass where `pred(bitstring)` holds. */
    double
    mass(const std::function<bool(const std::string&)>& pred) const
    {
        double total = 0.0;
        for (const auto& [bits, p] : probs) {
            if (pred(bits)) total += p;
        }
        return total;
    }

    /** Probability of one exact bitstring (0 if absent). */
    double
    probability(const std::string& bits) const
    {
        auto it = probs.find(bits);
        return it == probs.end() ? 0.0 : it->second;
    }

    /** Probability that every listed classical bit reads '0'. */
    double
    allZero(const std::vector<int>& clbits) const
    {
        return mass([&](const std::string& bits) {
            for (int c : clbits) {
                if (bits[c] != '0') return false;
            }
            return true;
        });
    }
};

/** Sampled outcome histogram: bitstring -> shot count. */
struct Counts
{
    std::map<std::string, int> map;
    int shots = 0;

    /**
     * True when a deadline cancelled the producing run early: `shots`
     * then holds the number of shots actually completed, and the
     * histogram is a valid (smaller) sample rather than garbage.
     */
    bool truncated = false;

    /** Fraction of shots where `pred(bitstring)` holds. */
    double
    fraction(const std::function<bool(const std::string&)>& pred) const
    {
        if (shots == 0) return 0.0;
        long total = 0;
        for (const auto& [bits, n] : map) {
            if (pred(bits)) total += n;
        }
        return double(total) / double(shots);
    }

    /** Fraction of shots where every listed classical bit reads '0'. */
    double
    fractionAllZero(const std::vector<int>& clbits) const
    {
        return fraction([&](const std::string& bits) {
            for (int c : clbits) {
                if (bits[c] != '0') return false;
            }
            return true;
        });
    }

    /** Convert to a frequency distribution. */
    Distribution
    toDistribution() const
    {
        Distribution d;
        for (const auto& [bits, n] : map) {
            d.probs[bits] = double(n) / double(shots);
        }
        return d;
    }
};

/**
 * Merge `src` into `dst`: entry counts and shot totals add, and the
 * `truncated` flag ORs — a merge of histograms where any contributor
 * was cut short is itself a cut-short sample. This is the one merge
 * used by every shot pool; keeping it here stops per-call-site merge
 * loops from silently dropping the flag or the shot total.
 */
inline void
mergeCounts(Counts& dst, const Counts& src)
{
    for (const auto& [bits, n] : src.map) dst.map[bits] += n;
    dst.shots += src.shots;
    dst.truncated = dst.truncated || src.truncated;
}

/**
 * Keep only the entries where `pred(bitstring)` holds; `shots` becomes
 * the kept total and `truncated` carries over. Compose with
 * marginalCounts for filter-then-project pipelines (e.g. the counts of
 * shots that passed every assertion, restricted to the program bits).
 */
inline Counts
filterCounts(const Counts& counts,
             const std::function<bool(const std::string&)>& pred)
{
    Counts out;
    out.truncated = counts.truncated;
    for (const auto& [bits, n] : counts.map) {
        if (!pred(bits)) continue;
        out.map[bits] = n;
        out.shots += n;
    }
    return out;
}

/** Restrict a counts histogram to the listed classical bits (in order). */
inline Counts
marginalCounts(const Counts& counts, const std::vector<int>& clbits)
{
    Counts out;
    out.shots = counts.shots;
    out.truncated = counts.truncated;
    for (const auto& [bits, n] : counts.map) {
        std::string reduced;
        reduced.reserve(clbits.size());
        for (int c : clbits) reduced.push_back(bits[c]);
        out.map[reduced] += n;
    }
    return out;
}

/** Restrict a distribution to the listed classical bits (in order). */
inline Distribution
marginalDistribution(const Distribution& dist,
                     const std::vector<int>& clbits)
{
    Distribution out;
    for (const auto& [bits, p] : dist.probs) {
        std::string reduced;
        reduced.reserve(clbits.size());
        for (int c : clbits) reduced.push_back(bits[c]);
        out.probs[reduced] += p;
    }
    return out;
}

} // namespace qa

#endif // QA_SIM_RESULT_HPP
