#include "sim/noise.hpp"

#include "common/error.hpp"

namespace qa
{

void
NoiseModel::validate() const
{
    QA_REQUIRE_CODE(readout_p01 >= 0.0 && readout_p01 <= 1.0,
                    ErrorCode::kInvalidNoiseModel,
                    "readout_p01 must lie in [0, 1]");
    QA_REQUIRE_CODE(readout_p10 >= 0.0 && readout_p10 <= 1.0,
                    ErrorCode::kInvalidNoiseModel,
                    "readout_p10 must lie in [0, 1]");
    for (const KrausChannel& channel : noise_1q) {
        QA_REQUIRE_CODE(channel.isTracePreserving(),
                        ErrorCode::kInvalidNoiseModel,
                        "1q channel '" + channel.name() +
                            "' is not trace preserving");
    }
    for (const KrausChannel& channel : noise_2q) {
        QA_REQUIRE_CODE(channel.isTracePreserving(),
                        ErrorCode::kInvalidNoiseModel,
                        "2q channel '" + channel.name() +
                            "' is not trace preserving");
    }
}

Hash128
NoiseModel::fingerprint() const
{
    HashStream stream(0x6e6f697365ULL); // domain tag: "noise"
    const auto absorbChannels =
        [&stream](const std::vector<KrausChannel>& channels) {
            stream.u64(channels.size());
            for (const KrausChannel& channel : channels) {
                const auto& ops = channel.ops();
                stream.u64(ops.size());
                for (const CMatrix& op : ops) {
                    for (size_t r = 0; r < op.rows(); ++r) {
                        for (size_t c = 0; c < op.cols(); ++c) {
                            stream.f64(op(r, c).real());
                            stream.f64(op(r, c).imag());
                        }
                    }
                }
            }
        };
    absorbChannels(noise_1q);
    absorbChannels(noise_2q);
    stream.f64(readout_p01);
    stream.f64(readout_p10);
    return stream.digest();
}

NoiseModel
NoiseModel::ibmqMelbourneLike()
{
    NoiseModel model;
    model.noise_1q.push_back(KrausChannel::depolarizing(0.0010));
    model.noise_1q.push_back(KrausChannel::amplitudeDamping(0.0010));
    model.noise_2q.push_back(KrausChannel::depolarizing(0.0300));
    model.noise_2q.push_back(KrausChannel::amplitudeDamping(0.0030));
    model.readout_p01 = 0.015;
    model.readout_p10 = 0.035;
    return model;
}

NoiseModel
NoiseModel::depolarizing(double p1, double p2)
{
    NoiseModel model;
    if (p1 > 0.0) model.noise_1q.push_back(KrausChannel::depolarizing(p1));
    if (p2 > 0.0) model.noise_2q.push_back(KrausChannel::depolarizing(p2));
    return model;
}

} // namespace qa
