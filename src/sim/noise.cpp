#include "sim/noise.hpp"

#include "common/error.hpp"

namespace qa
{

void
NoiseModel::validate() const
{
    QA_REQUIRE_CODE(readout_p01 >= 0.0 && readout_p01 <= 1.0,
                    ErrorCode::kInvalidNoiseModel,
                    "readout_p01 must lie in [0, 1]");
    QA_REQUIRE_CODE(readout_p10 >= 0.0 && readout_p10 <= 1.0,
                    ErrorCode::kInvalidNoiseModel,
                    "readout_p10 must lie in [0, 1]");
    for (const KrausChannel& channel : noise_1q) {
        QA_REQUIRE_CODE(channel.isTracePreserving(),
                        ErrorCode::kInvalidNoiseModel,
                        "1q channel '" + channel.name() +
                            "' is not trace preserving");
    }
    for (const KrausChannel& channel : noise_2q) {
        QA_REQUIRE_CODE(channel.isTracePreserving(),
                        ErrorCode::kInvalidNoiseModel,
                        "2q channel '" + channel.name() +
                            "' is not trace preserving");
    }
}

NoiseModel
NoiseModel::ibmqMelbourneLike()
{
    NoiseModel model;
    model.noise_1q.push_back(KrausChannel::depolarizing(0.0010));
    model.noise_1q.push_back(KrausChannel::amplitudeDamping(0.0010));
    model.noise_2q.push_back(KrausChannel::depolarizing(0.0300));
    model.noise_2q.push_back(KrausChannel::amplitudeDamping(0.0030));
    model.readout_p01 = 0.015;
    model.readout_p10 = 0.035;
    return model;
}

NoiseModel
NoiseModel::depolarizing(double p1, double p2)
{
    NoiseModel model;
    if (p1 > 0.0) model.noise_1q.push_back(KrausChannel::depolarizing(p1));
    if (p2 > 0.0) model.noise_2q.push_back(KrausChannel::depolarizing(p2));
    return model;
}

} // namespace qa
