#include "sim/noise.hpp"

namespace qa
{

NoiseModel
NoiseModel::ibmqMelbourneLike()
{
    NoiseModel model;
    model.noise_1q.push_back(KrausChannel::depolarizing(0.0010));
    model.noise_1q.push_back(KrausChannel::amplitudeDamping(0.0010));
    model.noise_2q.push_back(KrausChannel::depolarizing(0.0300));
    model.noise_2q.push_back(KrausChannel::amplitudeDamping(0.0030));
    model.readout_p01 = 0.015;
    model.readout_p10 = 0.035;
    return model;
}

NoiseModel
NoiseModel::depolarizing(double p1, double p2)
{
    NoiseModel model;
    if (p1 > 0.0) model.noise_1q.push_back(KrausChannel::depolarizing(p1));
    if (p2 > 0.0) model.noise_2q.push_back(KrausChannel::depolarizing(p2));
    return model;
}

} // namespace qa
