#include "sim/kraus.hpp"

#include <cmath>

#include "circuit/stdgates.hpp"
#include "common/error.hpp"

namespace qa
{

KrausChannel::KrausChannel(std::string name, std::vector<CMatrix> ops)
    : name_(std::move(name)), ops_(std::move(ops))
{
    QA_REQUIRE(!ops_.empty(), "Kraus channel needs at least one operator");
    for (const CMatrix& k : ops_) {
        QA_REQUIRE(k.rows() == 2 && k.cols() == 2,
                   "only single-qubit Kraus operators are supported");
    }
    QA_REQUIRE(isTracePreserving(),
               "Kraus operators are not trace preserving");
}

KrausChannel
KrausChannel::raw(std::string name, std::vector<CMatrix> ops)
{
    KrausChannel channel;
    channel.name_ = std::move(name);
    channel.ops_ = std::move(ops);
    QA_REQUIRE(!channel.ops_.empty(),
               "Kraus channel needs at least one operator");
    for (const CMatrix& k : channel.ops_) {
        QA_REQUIRE(k.rows() == 2 && k.cols() == 2,
                   "only single-qubit Kraus operators are supported");
    }
    return channel;
}

bool
KrausChannel::isTracePreserving(double tol) const
{
    CMatrix sum(2, 2);
    for (const CMatrix& k : ops_) sum += k.dagger() * k;
    return sum.approxEquals(CMatrix::identity(2), tol);
}

KrausChannel
KrausChannel::depolarizing(double p)
{
    QA_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
    Complex c0(std::sqrt(1.0 - p), 0.0);
    Complex c1(std::sqrt(p / 3.0), 0.0);
    return KrausChannel("depolarizing",
                        {gates::i() * c0, gates::x() * c1,
                         gates::y() * c1, gates::z() * c1});
}

KrausChannel
KrausChannel::amplitudeDamping(double gamma)
{
    QA_REQUIRE(gamma >= 0.0 && gamma <= 1.0, "gamma out of range");
    CMatrix k0{{1, 0}, {0, std::sqrt(1.0 - gamma)}};
    CMatrix k1{{0, std::sqrt(gamma)}, {0, 0}};
    return KrausChannel("amplitude_damping", {k0, k1});
}

KrausChannel
KrausChannel::phaseDamping(double lambda)
{
    QA_REQUIRE(lambda >= 0.0 && lambda <= 1.0, "lambda out of range");
    CMatrix k0{{1, 0}, {0, std::sqrt(1.0 - lambda)}};
    CMatrix k1{{0, 0}, {0, std::sqrt(lambda)}};
    return KrausChannel("phase_damping", {k0, k1});
}

KrausChannel
KrausChannel::bitFlip(double p)
{
    QA_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
    Complex c0(std::sqrt(1.0 - p), 0.0);
    Complex c1(std::sqrt(p), 0.0);
    return KrausChannel("bit_flip", {gates::i() * c0, gates::x() * c1});
}

KrausChannel
KrausChannel::phaseFlip(double p)
{
    QA_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
    Complex c0(std::sqrt(1.0 - p), 0.0);
    Complex c1(std::sqrt(p), 0.0);
    return KrausChannel("phase_flip", {gates::i() * c0, gates::z() * c1});
}

} // namespace qa
