/**
 * @file
 * Shot-execution engine backing runShots and every shot-level driver
 * built on top of it (the assertion-policy runner, the fault-injection
 * campaign).
 *
 * Four cooperating layers (see DESIGN.md, "Execution engine"):
 *  1. circuit analysis + prefix caching: the instructions before the
 *     first stochastic point (measurement, reset, or — with an active
 *     noise model — the first gate a Kraus channel applies to) are
 *     shot-invariant, so the prefix state is evolved once and cloned per
 *     shot. When every remaining instruction is a terminal measurement
 *     and no Kraus channel is active, per-shot evolution is skipped
 *     entirely and the final distribution is sampled directly.
 *  2. ShotExecutor: one shot = one call, parameterized only by an RNG
 *     stream, so any driver (plain histogramming, bounded retry,
 *     fault-injection sweeps) can replay shots deterministically.
 *  3. runShotPool: the multi-threaded shot loop with counter-based
 *     per-shot RNG streams (Rng::forStream), first-worker-exception
 *     propagation, and deadline-based cancellation that returns partial
 *     results flagged `truncated` instead of running unbounded.
 *  4. O(log d) sampling from a cumulative-weight table built once per
 *     cached state.
 */
#ifndef QA_SIM_ENGINE_HPP
#define QA_SIM_ENGINE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "sim/fusion.hpp"
#include "sim/noise.hpp"
#include "sim/statevector.hpp"

namespace qa
{

/**
 * Static execution plan for a shot run: where the deterministic prefix
 * ends and whether the terminal-sampling fast path applies.
 */
struct ShotPlan
{
    /** Instructions [0, split) are shot-invariant and evolved once. */
    size_t split = 0;

    /**
     * True when every instruction at/after `split` is a measurement or
     * barrier and no Kraus channel is active: the run reduces to sampling
     * the cached state's basis distribution, with readout error (if any)
     * applied classically to the sampled bits.
     */
    bool terminal_sampling = false;

    /** (qubit, clbit) pairs of the terminal measurements, in order. */
    std::vector<std::pair<int, int>> terminal_measures;

    /** True when gate-level Kraus channels are active. */
    bool kraus_noise = false;

    /** True when classical readout error is active. */
    bool readout_noise = false;
};

/**
 * Analyze a circuit against an (optional, possibly disabled) noise
 * model. The prefix ends at the first measurement or reset, or at the
 * first gate one of the model's Kraus channel lists applies to.
 */
ShotPlan analyzeShotPlan(const QuantumCircuit& circuit,
                         const NoiseModel* noise);

/**
 * Cumulative-weight table over a state's basis probabilities: built once
 * per cached state, each draw costs one uniform plus an O(log d)
 * std::upper_bound instead of an O(d) prefix scan.
 */
class SampleTable
{
  public:
    explicit SampleTable(const Statevector& state);

    /** Sample a basis index from the underlying distribution. */
    uint64_t sample(Rng& rng) const;

  private:
    std::vector<double> cumulative_;
};

/**
 * Reusable single-shot executor: circuit analysis and prefix evolution
 * happen once at construction, then each runOne() call executes exactly
 * one shot whose stochastic draws come from the caller's Rng. The
 * executor holds references to the circuit and noise model; both must
 * outlive it. An active noise model is validated at construction
 * (NoiseModel::validate).
 */
class ShotExecutor
{
  public:
    /**
     * @param circuit Circuit to execute (kept by reference).
     * @param noise Optional noise model; ignored when null or disabled.
     * @param naive Skip circuit analysis and replay every instruction
     *        per shot (the pre-engine reference path; disables fusion).
     * @param fusion Gate-fusion knobs. The deterministic prefix always
     *        fuses when enabled (it contains no noisy gate by
     *        construction); the per-shot suffix fuses only when no
     *        Kraus channels are active, because fusion changes gate
     *        arity and would redirect per-gate noise to the wrong
     *        channel list.
     * @param simd Allow the AVX2 kernels for prefix and scratch states.
     */
    ShotExecutor(const QuantumCircuit& circuit, const NoiseModel* noise,
                 bool naive = false, const FusionOptions& fusion = {},
                 bool simd = true);

    const ShotPlan& plan() const { return plan_; }

    /** What the fusion pass did (prefix + suffix combined). */
    const FusionStats& fusionStats() const { return stats_; }

    /** The cached deterministic-prefix state. */
    const Statevector& prefix() const { return prefix_; }

    /**
     * Scratch state buffer for runOne: one per worker, reused across
     * shots so copy-assignment recycles its allocation.
     */
    Statevector makeScratch() const { return prefix_; }

    /**
     * Execute one shot, drawing from `rng`, and return the classical
     * bitstring. Deterministic given the Rng state; thread-safe for
     * concurrent calls with distinct `scratch` buffers.
     */
    std::string runOne(Rng& rng, Statevector& scratch) const;

  private:
    const QuantumCircuit& circuit_;
    const NoiseModel* noise_;
    ShotPlan plan_;
    Statevector prefix_;
    std::unique_ptr<SampleTable> table_;
    std::string clbits0_;

    /** Post-split instructions runOne replays (fused when allowed). */
    std::vector<Instruction> suffix_;
    FusionStats stats_;
};

/**
 * The statevector engine's shot loop: what runShots executes when the
 * router resolves (or the caller forces) the statevector backend.
 * options.backend is ignored here — this IS the statevector backend.
 */
Counts runShotsStatevector(const QuantumCircuit& circuit,
                           const SimOptions& options);

/**
 * Flip a recorded measurement outcome with the model's asymmetric
 * readout error (one bernoulli draw per configured direction). Shared
 * by every backend so classical readout consumes identical RNG draws
 * regardless of how the quantum outcome was produced.
 */
int applyReadoutError(int outcome, const NoiseModel& noise, Rng& rng);

/** Worker count for a shot loop: <= 0 means hardware concurrency. */
int resolveShotThreads(int requested, int shots);

/** Wall-clock budget for a shot loop; inactive when ms <= 0. */
class ShotDeadline
{
  public:
    explicit ShotDeadline(double ms)
        : active_(ms > 0.0),
          expiry_(std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          ms > 0.0 ? ms : 0.0)))
    {}

    bool active() const { return active_; }

    bool
    expired() const
    {
        return active_ && std::chrono::steady_clock::now() >= expiry_;
    }

  private:
    bool active_;
    std::chrono::steady_clock::time_point expiry_;
};

/** Outcome of one pooled shot loop. */
struct ShotLoopStatus
{
    /** Shots actually executed (== requested unless truncated). */
    int completed = 0;

    /** True when the deadline cancelled the loop before all shots ran. */
    bool truncated = false;
};

/**
 * Run `shots` shot bodies on up to `num_threads` workers, accumulating
 * into per-worker `locals` (resized to the worker count; merging is the
 * caller's job and must be order-insensitive or merged in index order).
 *
 * `make_worker` builds one worker function per pool thread (holding any
 * reusable per-worker buffers); each call worker(shot, local) must
 * depend only on the shot index, which makes the merged result
 * independent of scheduling. Workers pull fixed-size chunks off an
 * atomic cursor.
 *
 * Robustness contract:
 *  - an exception thrown by any worker stops the pool, joins every
 *    thread, and is rethrown on the calling thread;
 *  - when `deadline_ms` > 0 and the budget expires mid-run, workers
 *    stop cooperatively and the status reports the completed count with
 *    `truncated` set — partial results, never leaked threads.
 */
template <typename Local, typename MakeWorker>
ShotLoopStatus
runShotPool(int shots, int num_threads, double deadline_ms,
            std::vector<Local>& locals, const MakeWorker& make_worker)
{
    const ShotDeadline deadline(deadline_ms);
    const int threads = resolveShotThreads(num_threads, shots);
    ShotLoopStatus status;

    if (threads <= 1) {
        locals.clear();
        locals.resize(1);
        auto worker = make_worker();
        for (int s = 0; s < shots; ++s) {
            if (deadline.active() && (s & 63) == 0 && deadline.expired()) {
                break;
            }
            worker(s, locals[0]);
            ++status.completed;
        }
        status.truncated = status.completed < shots;
        return status;
    }

    locals.clear();
    locals.resize(size_t(threads));
    std::atomic<int> cursor{0};
    std::atomic<int> completed{0};
    const int chunk = std::max(1, shots / (threads * 8));
    FirstException failure;
    std::vector<std::thread> pool;
    ThreadJoiner joiner(pool);
    try {
        pool.reserve(size_t(threads));
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([&, t] {
                // The shot loop is the outer parallelism: keep the gate
                // kernels this worker calls serial.
                SerialKernelScope serial;
                int done = 0;
                try {
                    auto worker = make_worker();
                    bool expired = false;
                    while (!expired && !failure.armed()) {
                        if (deadline.expired()) break;
                        const int begin = cursor.fetch_add(chunk);
                        if (begin >= shots) break;
                        const int end = std::min(shots, begin + chunk);
                        for (int s = begin; s < end; ++s) {
                            worker(s, locals[size_t(t)]);
                            ++done;
                            if (deadline.active() && (done & 63) == 0 &&
                                deadline.expired()) {
                                expired = true;
                                break;
                            }
                        }
                    }
                } catch (...) {
                    failure.capture();
                }
                completed.fetch_add(done, std::memory_order_relaxed);
            });
        }
    } catch (...) {
        // Thread creation failed mid-spawn: arm the latch so live
        // workers stop pulling chunks, join them while cursor/locals
        // are still alive, then surface the spawn error.
        failure.capture();
    }
    joiner.joinAll();
    failure.rethrow();
    status.completed = completed.load(std::memory_order_relaxed);
    status.truncated = status.completed < shots;
    return status;
}

} // namespace qa

#endif // QA_SIM_ENGINE_HPP
