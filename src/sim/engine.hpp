/**
 * @file
 * Shot-execution engine backing runShots.
 *
 * Three cooperating layers (see DESIGN.md, "Execution engine"):
 *  1. circuit analysis + prefix caching: the instructions before the
 *     first stochastic point (measurement, reset, or — with an active
 *     noise model — the first gate a Kraus channel applies to) are
 *     shot-invariant, so the prefix state is evolved once and cloned per
 *     shot. When every remaining instruction is a terminal measurement
 *     and no Kraus channel is active, per-shot evolution is skipped
 *     entirely and the final distribution is sampled directly.
 *  2. multi-threaded shot loop with counter-based per-shot RNG streams
 *     (Rng::forStream), so a seeded run produces bit-identical Counts
 *     for any thread count.
 *  3. O(log d) sampling from a cumulative-weight table built once per
 *     cached state.
 */
#ifndef QA_SIM_ENGINE_HPP
#define QA_SIM_ENGINE_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "sim/noise.hpp"
#include "sim/statevector.hpp"

namespace qa
{

/**
 * Static execution plan for a shot run: where the deterministic prefix
 * ends and whether the terminal-sampling fast path applies.
 */
struct ShotPlan
{
    /** Instructions [0, split) are shot-invariant and evolved once. */
    size_t split = 0;

    /**
     * True when every instruction at/after `split` is a measurement or
     * barrier and no Kraus channel is active: the run reduces to sampling
     * the cached state's basis distribution, with readout error (if any)
     * applied classically to the sampled bits.
     */
    bool terminal_sampling = false;

    /** (qubit, clbit) pairs of the terminal measurements, in order. */
    std::vector<std::pair<int, int>> terminal_measures;

    /** True when gate-level Kraus channels are active. */
    bool kraus_noise = false;

    /** True when classical readout error is active. */
    bool readout_noise = false;
};

/**
 * Analyze a circuit against an (optional, possibly disabled) noise
 * model. The prefix ends at the first measurement or reset, or at the
 * first gate one of the model's Kraus channel lists applies to.
 */
ShotPlan analyzeShotPlan(const QuantumCircuit& circuit,
                         const NoiseModel* noise);

/**
 * Cumulative-weight table over a state's basis probabilities: built once
 * per cached state, each draw costs one uniform plus an O(log d)
 * std::upper_bound instead of an O(d) prefix scan.
 */
class SampleTable
{
  public:
    explicit SampleTable(const Statevector& state);

    /** Sample a basis index from the underlying distribution. */
    uint64_t sample(Rng& rng) const;

  private:
    std::vector<double> cumulative_;
};

} // namespace qa

#endif // QA_SIM_ENGINE_HPP
