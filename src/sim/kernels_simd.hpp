/**
 * @file
 * Internal interface between the kernel dispatcher (kernels.cpp) and
 * the AVX2 translation unit (kernels_avx2.cpp, compiled with
 * -mavx2 -mfma when QA_ENABLE_SIMD is on).
 *
 * The dispatcher owns iteration-space decisions (threading, chunking)
 * and hands each leaf a half-open range of "rest" indices — the packed
 * index over the bits NOT touched by the gate. Leaves expand rest
 * indices to amplitude addresses themselves, so a chunk boundary can
 * fall anywhere; each leaf peels unaligned head/tail elements with
 * scalar updates.
 *
 * Contract: every leaf except the 1q family requires all operand bit
 * positions >= 1 (bit 0 free), so adjacent rest indices address
 * adjacent amplitudes and a 256-bit lane holds two neighbouring
 * groups. The dispatcher falls back to scalar code otherwise. Nothing
 * here may be called without a positive simdAvailable() check — the
 * whole TU is compiled with AVX2 codegen enabled.
 */
#ifndef QA_SIM_KERNELS_SIMD_HPP
#define QA_SIM_KERNELS_SIMD_HPP

#include <cstdint>

#include "linalg/types.hpp"

namespace qa
{
namespace simd
{

#if defined(QA_SIMD_ENABLED)

/**
 * Dense 1q kernel over rest indices [r0, r1) of a dim-amplitude state;
 * operand bit position `p` (any value, including 0). `m` is row-major
 * {m00, m01, m10, m11}.
 */
void k1GeneralRange(Complex* amps, uint64_t r0, uint64_t r1, int p,
                    const Complex* m);

/** Diagonal 1q kernel; d = {d0, d1}. */
void k1DiagRange(Complex* amps, uint64_t r0, uint64_t r1, int p,
                 const Complex* d);

/** Anti-diagonal 1q kernel; c = {c01, c10} (new a0 = c01*a1, ...). */
void k1PermRange(Complex* amps, uint64_t r0, uint64_t r1, int p,
                 const Complex* c);

/**
 * Controlled-1q kernel: apply u (row-major 2x2) to the target bit at
 * position `pt` on the subspace where the control bit at `pc` is 1.
 * Requires pc >= 1 and pt >= 1. Rest space is dim/4.
 */
void kCtrlRange(Complex* amps, uint64_t r0, uint64_t r1, int pc, int pt,
                const Complex* u);

/**
 * Dense 2q kernel; pos = {p_hi, p_lo} (local MSB first), both >= 1.
 * m is row-major 4x4. Rest space is dim/4.
 */
void k2GeneralRange(Complex* amps, uint64_t r0, uint64_t r1,
                    const int* pos, const Complex* m);

/**
 * Dense 3q kernel; pos = 3 positions (local MSB first), all >= 1.
 * m is row-major 8x8. Rest space is dim/8.
 */
void k3GeneralRange(Complex* amps, uint64_t r0, uint64_t r1,
                    const int* pos, const Complex* m);

#endif // QA_SIMD_ENABLED

} // namespace simd
} // namespace qa

#endif // QA_SIM_KERNELS_SIMD_HPP
