#include "sim/statevector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/format.hpp"
#include "linalg/states.hpp"
#include "sim/fusion.hpp"
#include "sim/kernels.hpp"

namespace qa
{

namespace
{

/**
 * Bit positions (in the global index) of the listed qubits, preserving
 * the local MSB-first order: local bit j of the gate operand lives at
 * global bit position n-1-qubits[j].
 */
std::vector<int>
bitPositions(const std::vector<int>& qubits, int num_qubits)
{
    std::vector<int> pos(qubits.size());
    for (size_t j = 0; j < qubits.size(); ++j) {
        pos[j] = num_qubits - 1 - qubits[j];
    }
    return pos;
}

} // namespace

Statevector::Statevector(int num_qubits)
    : num_qubits_(num_qubits), amps_(size_t(1) << num_qubits)
{
    QA_REQUIRE(num_qubits >= 1 && num_qubits <= 24,
               "statevector supports 1..24 qubits");
    amps_[0] = 1.0;
}

Statevector::Statevector(CVector amplitudes) : num_qubits_(0),
    amps_(std::move(amplitudes))
{
    num_qubits_ = qubitCountForDim(amps_.dim());
    QA_REQUIRE(std::abs(amps_.norm() - 1.0) < 1e-6,
               "statevector amplitudes must be normalized");
}

void
Statevector::applyMatrix(const CMatrix& m, const std::vector<int>& qubits)
{
    const size_t k = qubits.size();
    QA_REQUIRE(m.rows() == (size_t(1) << k) && m.cols() == m.rows(),
               "matrix dimension does not match qubit count");
    for (int q : qubits) {
        QA_REQUIRE(q >= 0 && q < num_qubits_, "qubit index out of range");
    }
    const std::vector<int> pos = bitPositions(qubits, num_qubits_);
    applyDenseKernel(amps_.data().data(), amps_.dim(), m, pos.data(), k,
                     simd_);
}

void
Statevector::applyGate(const Instruction& instr)
{
    QA_REQUIRE(instr.isGate(), "applyGate needs a gate instruction");
    applyMatrix(instr.matrix, instr.qubits);
}

double
Statevector::probabilityOne(int q) const
{
    QA_REQUIRE(q >= 0 && q < num_qubits_, "qubit index out of range");
    const uint64_t mask = uint64_t(1) << (num_qubits_ - 1 - q);
    double prob = 0.0;
    for (uint64_t i = 0; i < amps_.dim(); ++i) {
        if (i & mask) prob += std::norm(amps_[i]);
    }
    return prob;
}

int
Statevector::measure(int q, Rng& rng)
{
    const double p1 = probabilityOne(q);
    const int outcome = rng.uniform() < p1 ? 1 : 0;
    collapse(q, outcome);
    return outcome;
}

void
Statevector::collapse(int q, int outcome)
{
    QA_REQUIRE(q >= 0 && q < num_qubits_, "qubit index out of range");
    QA_REQUIRE(outcome == 0 || outcome == 1, "outcome must be 0 or 1");
    const uint64_t mask = uint64_t(1) << (num_qubits_ - 1 - q);
    double kept = 0.0;
    for (uint64_t i = 0; i < amps_.dim(); ++i) {
        const bool bit = (i & mask) != 0;
        if (bit != (outcome == 1)) {
            amps_[i] = 0.0;
        } else {
            kept += std::norm(amps_[i]);
        }
    }
    QA_REQUIRE(kept > 1e-14, "collapse onto a zero-probability outcome");
    const Complex scale(1.0 / std::sqrt(kept), 0.0);
    amps_ *= scale;
}

void
Statevector::reset(int q, Rng& rng)
{
    if (measure(q, rng) == 1) {
        applyMatrix(CMatrix{{0, 1}, {1, 0}}, {q});
    }
}

void
Statevector::applyKrausTrajectory(const KrausChannel& channel, int q,
                                  Rng& rng)
{
    const CMatrix rho_q = reducedDensity(q);
    std::vector<double> probs;
    probs.reserve(channel.ops().size());
    double total = 0.0;
    for (const CMatrix& k : channel.ops()) {
        probs.push_back(std::max(0.0, (k.dagger() * k * rho_q)
                                          .trace()
                                          .real()));
        total += probs.back();
    }
    QA_REQUIRE(total > 1e-14,
               "every Kraus branch of channel '" + channel.name() +
                   "' has ~zero probability (state numerically "
                   "degenerate); cannot sample a trajectory");
    const size_t choice = rng.discrete(probs);
    applyMatrix(channel.ops()[choice], {q});
    const double norm = amps_.norm();
    QA_ASSERT(norm > 1e-14, "Kraus trajectory annihilated the state");
    amps_ *= Complex(1.0 / norm, 0.0);
}

CMatrix
Statevector::reducedDensity(int q) const
{
    QA_REQUIRE(q >= 0 && q < num_qubits_, "qubit index out of range");
    const uint64_t mask = uint64_t(1) << (num_qubits_ - 1 - q);
    CMatrix rho(2, 2);
    for (uint64_t i = 0; i < amps_.dim(); ++i) {
        if (amps_[i] == Complex(0.0)) continue;
        const size_t a = (i & mask) ? 1 : 0;
        // Pair index with the bit flipped contributes the off-diagonal.
        const uint64_t j = i ^ mask;
        rho(a, a) += std::norm(amps_[i]);
        rho(a, 1 - a) += amps_[i] * std::conj(amps_[j]);
    }
    return rho;
}

std::vector<std::pair<uint64_t, double>>
Statevector::basisProbabilities(double eps) const
{
    // Appending in index order yields a sorted vector directly; callers
    // that iterate in order pay no red-black-tree overhead.
    std::vector<std::pair<uint64_t, double>> out;
    for (uint64_t i = 0; i < amps_.dim(); ++i) {
        const double p = std::norm(amps_[i]);
        if (p > eps) out.emplace_back(i, p);
    }
    return out;
}

std::map<uint64_t, double>
Statevector::basisProbabilitiesMap(double eps) const
{
    const auto sorted = basisProbabilities(eps);
    return std::map<uint64_t, double>(sorted.begin(), sorted.end());
}

uint64_t
Statevector::sampleBasis(Rng& rng) const
{
    double draw = rng.uniform();
    double acc = 0.0;
    for (uint64_t i = 0; i < amps_.dim(); ++i) {
        acc += std::norm(amps_[i]);
        if (draw < acc) return i;
    }
    return amps_.dim() - 1;
}

// runShots is implemented by the shot-execution engine (sim/engine.cpp).

Distribution
exactDistribution(const QuantumCircuit& circuit)
{
    struct Branch
    {
        Statevector state;
        std::string clbits;
        double prob;
        size_t pc;
    };

    Distribution dist;
    std::vector<Branch> stack;
    stack.push_back(Branch{Statevector(circuit.numQubits()),
                           std::string(size_t(std::max(
                               circuit.numClbits(), 0)), '0'),
                           1.0, 0});

    const auto& instrs = circuit.instructions();
    while (!stack.empty()) {
        Branch branch = std::move(stack.back());
        stack.pop_back();

        bool alive = true;
        while (branch.pc < instrs.size() && alive) {
            const Instruction& instr = instrs[branch.pc];
            ++branch.pc;
            switch (instr.type) {
              case OpType::kGate:
                branch.state.applyGate(instr);
                break;
              case OpType::kBarrier:
                break;
              case OpType::kMeasure:
              case OpType::kReset: {
                const int q = instr.qubits[0];
                const double p1 = branch.state.probabilityOne(q);
                for (int outcome : {0, 1}) {
                    const double p = outcome ? p1 : 1.0 - p1;
                    if (p < 1e-12) continue;
                    Branch next = branch;
                    next.prob *= p;
                    next.state.collapse(q, outcome);
                    if (instr.type == OpType::kMeasure) {
                        next.clbits[instr.cbit] = outcome ? '1' : '0';
                    } else if (outcome == 1) {
                        next.state.applyMatrix(CMatrix{{0, 1}, {1, 0}},
                                               {q});
                    }
                    stack.push_back(std::move(next));
                }
                alive = false;
                break;
              }
            }
        }
        if (alive) {
            dist.probs[branch.clbits] += branch.prob;
        }
    }
    return dist;
}

Statevector
finalState(const QuantumCircuit& circuit)
{
    return finalState(circuit, FusionOptions{});
}

Statevector
finalState(const QuantumCircuit& circuit, const FusionOptions& fusion,
           bool simd)
{
    for (const Instruction& instr : circuit.instructions()) {
        QA_REQUIRE(instr.type == OpType::kGate ||
                       instr.type == OpType::kBarrier,
                   "finalState requires a measurement-free circuit");
    }
    Statevector state(circuit.numQubits());
    state.setSimd(simd);
    const FusedProgram prog = fuseCircuit(circuit, fusion);
    for (const Instruction& instr : prog.instructions) {
        if (instr.type == OpType::kGate) state.applyGate(instr);
    }
    return state;
}

} // namespace qa
