#include "sim/fusion.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sim/kernels.hpp"

namespace qa
{

namespace
{

/** One open (still-growing) fusion group. */
struct OpenGroup
{
    /** Qubit union, ascending (the fused instruction's operand list). */
    std::vector<int> qubits;

    /** Accumulated unitary over `qubits` (MSB-first convention). */
    CMatrix matrix;

    /** Input gates folded in so far. */
    size_t count = 0;

    /** The original instruction, emitted verbatim when count == 1. */
    Instruction original;
};

bool
disjoint(const std::vector<int>& sorted, const std::vector<int>& qubits)
{
    for (int q : qubits) {
        if (std::binary_search(sorted.begin(), sorted.end(), q)) {
            return false;
        }
    }
    return true;
}

std::vector<int>
sortedUnion(const std::vector<int>& sorted, const std::vector<int>& qubits)
{
    std::vector<int> out = sorted;
    for (int q : qubits) {
        const auto it = std::lower_bound(out.begin(), out.end(), q);
        if (it == out.end() || *it != q) out.insert(it, q);
    }
    return out;
}

/** Fold gate `g` into `group`, widening the group to the qubit union. */
void
mergeInto(OpenGroup& group, const Instruction& g,
          const std::vector<int>& union_qubits)
{
    const std::vector<int>& gq =
        group.count == 1 ? group.original.qubits : group.qubits;
    const CMatrix& gm =
        group.count == 1 ? group.original.matrix : group.matrix;
    // g runs after the group: left-multiply its expanded unitary.
    group.matrix = expandToUnion(g.matrix, g.qubits, union_qubits) *
                   expandToUnion(gm, gq, union_qubits);
    group.qubits = union_qubits;
    ++group.count;
}

void
emitGroup(OpenGroup& group, std::vector<Instruction>& out,
          FusionStats& stats)
{
    Instruction instr;
    if (group.count == 1) {
        instr = std::move(group.original);
    } else {
        instr.type = OpType::kGate;
        instr.name = "fused";
        instr.qubits = std::move(group.qubits);
        instr.matrix = std::move(group.matrix);
        ++stats.fused_groups;
        stats.max_group = std::max(stats.max_group, group.count);
    }
    ++stats.gates_out;
    ++stats.kernel_counts[kernelClassName(classifyKernel(instr.matrix))];
    out.push_back(std::move(instr));
}

} // namespace

void
FusionStats::merge(const FusionStats& other)
{
    gates_in += other.gates_in;
    gates_out += other.gates_out;
    fused_groups += other.fused_groups;
    max_group = std::max(max_group, other.max_group);
    for (const auto& [name, n] : other.kernel_counts) {
        kernel_counts[name] += n;
    }
}

CMatrix
expandToUnion(const CMatrix& m, const std::vector<int>& from,
              const std::vector<int>& to)
{
    const size_t kf = from.size();
    const size_t kt = to.size();
    QA_REQUIRE(m.rows() == (size_t(1) << kf) && m.cols() == m.rows(),
               "expandToUnion: matrix does not match operand count");

    // Bit position (within the union index) of each `from` operand:
    // to[j] owns bit kt-1-j of the union index.
    std::vector<int> ubit(kf);
    for (size_t j = 0; j < kf; ++j) {
        const auto it = std::find(to.begin(), to.end(), from[j]);
        QA_REQUIRE(it != to.end(),
                   "expandToUnion: operand missing from the union");
        ubit[j] = int(kt - 1 - size_t(it - to.begin()));
    }
    uint64_t sub_mask = 0;
    for (int b : ubit) sub_mask |= uint64_t(1) << b;

    const uint64_t dim = uint64_t(1) << kt;
    const uint64_t subdim = uint64_t(1) << kf;
    CMatrix out(dim, dim);
    for (uint64_t r = 0; r < dim; ++r) {
        uint64_t rsub = 0;
        for (size_t j = 0; j < kf; ++j) {
            rsub |= ((r >> ubit[j]) & 1) << (kf - 1 - j);
        }
        const uint64_t rest = r & ~sub_mask;
        for (uint64_t csub = 0; csub < subdim; ++csub) {
            uint64_t c = rest;
            for (size_t j = 0; j < kf; ++j) {
                c |= ((csub >> (kf - 1 - j)) & 1) << ubit[j];
            }
            out(r, c) = m(rsub, csub);
        }
    }
    return out;
}

FusedProgram
fuseInstructions(const std::vector<Instruction>& instrs, size_t begin,
                 size_t end, const FusionOptions& options)
{
    const size_t max_qubits =
        size_t(std::clamp(options.max_qubits, 1, 3));
    FusedProgram prog;

    if (!options.enabled) {
        // Pass-through, but still report the stream's execution mix so
        // explain output stays meaningful with fusion off.
        for (size_t i = begin; i < end; ++i) {
            const Instruction& instr = instrs[i];
            if (instr.isGate()) {
                ++prog.stats.gates_in;
                ++prog.stats.gates_out;
                ++prog.stats.kernel_counts[kernelClassName(
                    classifyKernel(instr.matrix))];
            }
            prog.instructions.push_back(instr);
        }
        return prog;
    }

    std::vector<OpenGroup> open;
    const auto flush = [&] {
        for (OpenGroup& group : open) {
            emitGroup(group, prog.instructions, prog.stats);
        }
        open.clear();
    };
    const auto pushNew = [&](const Instruction& g) {
        OpenGroup group;
        group.qubits = g.qubits;
        std::sort(group.qubits.begin(), group.qubits.end());
        group.count = 1;
        group.original = g;
        open.push_back(std::move(group));
    };

    for (size_t i = begin; i < end; ++i) {
        const Instruction& instr = instrs[i];
        if (!instr.isGate()) {
            // Measurement/reset/barrier: a fusion boundary.
            flush();
            prog.instructions.push_back(instr);
            continue;
        }
        ++prog.stats.gates_in;
        if (instr.arity() > max_qubits) {
            flush();
            ++prog.stats.gates_out;
            ++prog.stats.kernel_counts[kernelClassName(
                classifyKernel(instr.matrix))];
            prog.instructions.push_back(instr);
            continue;
        }

        // Scan open groups newest-first. The gate must merge into the
        // most recent group it overlaps (it cannot commute past it);
        // groups it is disjoint from are transparent. A fully disjoint
        // gate folds into the most recent group the union still fits.
        bool handled = false;
        int disjoint_fit = -1;
        for (size_t idx = open.size(); idx-- > 0;) {
            OpenGroup& group = open[idx];
            if (disjoint(group.qubits, instr.qubits)) {
                if (disjoint_fit < 0 &&
                    sortedUnion(group.qubits, instr.qubits).size() <=
                        max_qubits) {
                    disjoint_fit = int(idx);
                }
                continue;
            }
            const std::vector<int> u =
                sortedUnion(group.qubits, instr.qubits);
            if (u.size() <= max_qubits) {
                mergeInto(group, instr, u);
            } else {
                pushNew(instr);
            }
            handled = true;
            break;
        }
        if (!handled) {
            if (disjoint_fit >= 0) {
                OpenGroup& group = open[size_t(disjoint_fit)];
                mergeInto(group, instr,
                          sortedUnion(group.qubits, instr.qubits));
            } else {
                pushNew(instr);
            }
        }
    }
    flush();
    return prog;
}

FusedProgram
fuseCircuit(const QuantumCircuit& circuit, const FusionOptions& options)
{
    const auto& instrs = circuit.instructions();
    return fuseInstructions(instrs, 0, instrs.size(), options);
}

} // namespace qa
