/**
 * @file
 * Gate-level noise model standing in for the paper's `ibmq-melbourne`
 * hardware runs (Sec. IX-B).
 *
 * The substitution rationale (see DESIGN.md): the paper's device results
 * only require that (a) noise produces a baseline assertion-error rate,
 * (b) a program bug raises that rate measurably, and (c) post-selecting
 * on assertion success improves the success rate, with cheaper assertion
 * circuits preserving more fidelity. Any gate-level stochastic channel
 * set with realistic magnitudes reproduces those effects.
 */
#ifndef QA_SIM_NOISE_HPP
#define QA_SIM_NOISE_HPP

#include <vector>

#include "common/hash.hpp"
#include "sim/kraus.hpp"

namespace qa
{

/** Channels applied around gates plus classical readout error. */
struct NoiseModel
{
    /** Channels applied to each qubit touched by a single-qubit gate. */
    std::vector<KrausChannel> noise_1q;

    /** Channels applied to each qubit touched by a multi-qubit gate. */
    std::vector<KrausChannel> noise_2q;

    /** P(read 1 | qubit is 0). */
    double readout_p01 = 0.0;

    /** P(read 0 | qubit is 1); asymmetric and larger on real devices. */
    double readout_p10 = 0.0;

    /** True if any channel or readout error is configured. */
    bool
    enabled() const
    {
        return !noise_1q.empty() || !noise_2q.empty() ||
               readout_p01 > 0.0 || readout_p10 > 0.0;
    }

    /**
     * Validate-on-use check run by the execution engine before the
     * first shot: readout probabilities must lie in [0, 1] and every
     * Kraus channel must be trace preserving. Throws UserError
     * (ErrorCode::kInvalidNoiseModel) naming the offending field or
     * channel. Catches models assembled from external calibration data
     * (KrausChannel::raw) or mutated after construction.
     */
    void validate() const;

    /**
     * Structural fingerprint over every Kraus operator and the readout
     * probabilities: models hash equal exactly when they apply the same
     * channels. Keys the serve layer's cross-job result cache alongside
     * the circuit hash (circuit/hash.hpp).
     */
    Hash128 fingerprint() const;

    /**
     * Calibration-style model with magnitudes typical of the 15-qubit
     * IBM Melbourne generation: ~0.1% 1q depolarizing, ~3% 2q
     * depolarizing, ~1.5%/3.5% asymmetric readout error, light amplitude
     * damping.
     */
    static NoiseModel ibmqMelbourneLike();

    /** Uniform depolarizing-only model (handy for sweeps). */
    static NoiseModel depolarizing(double p1, double p2);
};

} // namespace qa

#endif // QA_SIM_NOISE_HPP
