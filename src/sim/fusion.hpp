/**
 * @file
 * Gate-fusion pass for the dense backends.
 *
 * Runs of gates acting on a small shared qubit set are coalesced into a
 * single 4x4 (or, with max_qubits = 3, 8x8) unitary, so the dense
 * simulators sweep the 2^n amplitudes once per fused group instead of
 * once per gate. The pass runs at PreparedCircuit build time — its cost
 * is amortized across every shot of a job — and is a pure instruction
 * rewrite: fused streams produce final states equal to the unfused ones
 * up to floating-point reassociation (~1e-15 per amplitude).
 *
 * Rules (DESIGN.md Sec. 12):
 *  - only kGate instructions fuse; measurements, resets, and barriers
 *    flush every open group and pass through unchanged;
 *  - a gate merges into the most recent group it shares a qubit with,
 *    provided the qubit union stays within max_qubits; gates commute
 *    trivially past groups they are disjoint from;
 *  - a gate disjoint from every open group may still fold into one when
 *    the union fits (two 1q runs become one 2q kernel: fewer sweeps);
 *  - gates wider than max_qubits flush and pass through unfused;
 *  - callers must not fuse a stream whose gates receive per-gate Kraus
 *    noise: fusion changes gate arity, which would change which channel
 *    list (noise_1q/noise_2q) the noise loop applies.
 */
#ifndef QA_SIM_FUSION_HPP
#define QA_SIM_FUSION_HPP

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "linalg/matrix.hpp"

namespace qa
{

/** Knobs for the fusion pass (SimOptions::fusion mirrors these). */
struct FusionOptions
{
    /** Master switch; false leaves the instruction stream untouched. */
    bool enabled = true;

    /**
     * Largest qubit union a fused group may cover. 2 is the sweet spot
     * (4x4 kernels); 3 is a stretch mode trading kernel cost for fewer
     * sweeps. Clamped to [1, 3] by the pass.
     */
    int max_qubits = 2;
};

/** What the fusion pass did to one instruction stream. */
struct FusionStats
{
    /** Gate instructions that entered the pass. */
    size_t gates_in = 0;

    /** Gate instructions after fusion. */
    size_t gates_out = 0;

    /** Output gates that combine >= 2 input gates. */
    size_t fused_groups = 0;

    /** Largest number of input gates folded into one output gate. */
    size_t max_group = 0;

    /** Kernel class name -> output gate count (the execution mix). */
    std::map<std::string, size_t> kernel_counts;

    /** gates_out / gates_in (1.0 for an empty stream). */
    double
    ratio() const
    {
        return gates_in == 0 ? 1.0
                             : double(gates_out) / double(gates_in);
    }

    /** Accumulate another stream's stats (prefix + suffix). */
    void merge(const FusionStats& other);
};

/** A fused instruction stream plus what the pass did to it. */
struct FusedProgram
{
    std::vector<Instruction> instructions;
    FusionStats stats;
};

/**
 * Fuse instructions [begin, end) of `instrs`. Non-gate instructions
 * pass through in order; gate order is preserved up to exchanges of
 * provably disjoint (trivially commuting) gates. Disabled options
 * return the range unchanged but still report gates_in/gates_out and
 * the kernel mix.
 */
FusedProgram fuseInstructions(const std::vector<Instruction>& instrs,
                              size_t begin, size_t end,
                              const FusionOptions& options);

/** Fuse a whole circuit's instruction stream. */
FusedProgram fuseCircuit(const QuantumCircuit& circuit,
                         const FusionOptions& options);

/**
 * Embed a 2^kf unitary over `from` qubits into the 2^kt space over
 * `to` qubits (every `from` qubit must appear in `to`; both lists use
 * the MSB-first local convention of Instruction::qubits). Identity on
 * the qubits of `to` not in `from`.
 */
CMatrix expandToUnion(const CMatrix& m, const std::vector<int>& from,
                      const std::vector<int>& to);

} // namespace qa

#endif // QA_SIM_FUSION_HPP
