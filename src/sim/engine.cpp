#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sim/result.hpp"

namespace qa
{

namespace
{

/** True if the noise model attaches a Kraus channel to this gate. */
bool
gateIsNoisy(const Instruction& instr, const NoiseModel& noise)
{
    const auto& channels =
        instr.arity() == 1 ? noise.noise_1q : noise.noise_2q;
    return !channels.empty();
}

/** Apply configured noise channels after a gate touching these qubits. */
void
applyGateNoise(Statevector& state, const Instruction& instr,
               const NoiseModel& noise, Rng& rng)
{
    const auto& channels =
        instr.arity() == 1 ? noise.noise_1q : noise.noise_2q;
    for (int q : instr.qubits) {
        for (const KrausChannel& channel : channels) {
            state.applyKrausTrajectory(channel, q, rng);
        }
    }
}

} // namespace

int
applyReadoutError(int outcome, const NoiseModel& noise, Rng& rng)
{
    if (outcome == 0 && noise.readout_p01 > 0.0 &&
        rng.bernoulli(noise.readout_p01)) {
        return 1;
    }
    if (outcome == 1 && noise.readout_p10 > 0.0 &&
        rng.bernoulli(noise.readout_p10)) {
        return 0;
    }
    return outcome;
}

int
resolveShotThreads(int requested, int shots)
{
    int n = requested;
    if (n <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        n = hw == 0 ? 1 : int(hw);
    }
    return std::max(1, std::min(n, shots));
}

ShotPlan
analyzeShotPlan(const QuantumCircuit& circuit, const NoiseModel* noise)
{
    const bool enabled = noise != nullptr && noise->enabled();
    ShotPlan plan;
    plan.kraus_noise = enabled && (!noise->noise_1q.empty() ||
                                   !noise->noise_2q.empty());
    plan.readout_noise = enabled && (noise->readout_p01 > 0.0 ||
                                     noise->readout_p10 > 0.0);

    const auto& instrs = circuit.instructions();
    plan.split = instrs.size();
    for (size_t i = 0; i < instrs.size(); ++i) {
        const Instruction& instr = instrs[i];
        const bool stochastic =
            instr.type == OpType::kMeasure ||
            instr.type == OpType::kReset ||
            (instr.type == OpType::kGate && enabled &&
             gateIsNoisy(instr, *noise));
        if (stochastic) {
            plan.split = i;
            break;
        }
    }

    plan.terminal_sampling = true;
    for (size_t i = plan.split; i < instrs.size(); ++i) {
        const Instruction& instr = instrs[i];
        if (instr.type == OpType::kBarrier) continue;
        if (instr.type != OpType::kMeasure) {
            plan.terminal_sampling = false;
            plan.terminal_measures.clear();
            break;
        }
        plan.terminal_measures.emplace_back(instr.qubits[0], instr.cbit);
    }
    return plan;
}

SampleTable::SampleTable(const Statevector& state)
{
    const CVector& amps = state.amplitudes();
    cumulative_.resize(amps.dim());
    double acc = 0.0;
    for (uint64_t i = 0; i < amps.dim(); ++i) {
        acc += std::norm(amps[i]);
        cumulative_[i] = acc;
    }
    QA_REQUIRE(acc > 1e-14, "sample table over a zero-mass state");
}

uint64_t
SampleTable::sample(Rng& rng) const
{
    const double draw = rng.uniform() * cumulative_.back();
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), draw);
    if (it == cumulative_.end()) return uint64_t(cumulative_.size()) - 1;
    return uint64_t(it - cumulative_.begin());
}

ShotExecutor::ShotExecutor(const QuantumCircuit& circuit,
                           const NoiseModel* noise, bool naive,
                           const FusionOptions& fusion, bool simd)
    : circuit_(circuit),
      noise_(noise != nullptr && noise->enabled() ? noise : nullptr),
      prefix_(circuit.numQubits()),
      clbits0_(size_t(std::max(circuit.numClbits(), 0)), '0')
{
    if (noise_ != nullptr) noise_->validate();
    prefix_.setSimd(simd);

    // The naive plan (split = 0, no fast path) replays every instruction
    // per shot: the reference the cached plan must agree with exactly.
    if (!naive) plan_ = analyzeShotPlan(circuit_, noise_);

    const auto& instrs = circuit_.instructions();
    const bool fuse = fusion.enabled && !naive;

    // Evolve the deterministic prefix once; every shot clones it. The
    // prefix contains no stochastic instruction, so per-shot RNG draws
    // are unaffected by where the split falls. The prefix never holds a
    // noisy gate (that is where the split falls), so it always fuses.
    if (fuse) {
        FusedProgram prog =
            fuseInstructions(instrs, 0, plan_.split, fusion);
        for (const Instruction& instr : prog.instructions) {
            if (instr.type == OpType::kGate) prefix_.applyGate(instr);
        }
        stats_ = std::move(prog.stats);
    } else {
        for (size_t i = 0; i < plan_.split; ++i) {
            if (instrs[i].type == OpType::kGate) {
                prefix_.applyGate(instrs[i]);
            }
        }
    }

    // The per-shot suffix fuses only without Kraus noise: a fused gate
    // has a different arity than its inputs, which would redirect the
    // per-gate noise loop to the wrong channel list (noise_1q/noise_2q).
    if (fuse && !plan_.kraus_noise) {
        FusedProgram prog =
            fuseInstructions(instrs, plan_.split, instrs.size(), fusion);
        suffix_ = std::move(prog.instructions);
        stats_.merge(prog.stats);
    } else {
        suffix_.assign(instrs.begin() + long(plan_.split), instrs.end());
    }

    if (plan_.terminal_sampling) {
        table_ = std::make_unique<SampleTable>(prefix_);
    }
}

std::string
ShotExecutor::runOne(Rng& rng, Statevector& scratch) const
{
    const int n = circuit_.numQubits();
    std::string clbits = clbits0_;

    if (plan_.terminal_sampling) {
        const uint64_t index = table_->sample(rng);
        for (const auto& [q, c] : plan_.terminal_measures) {
            int outcome = int((index >> (n - 1 - q)) & 1);
            if (noise_ != nullptr) {
                outcome = applyReadoutError(outcome, *noise_, rng);
            }
            clbits[size_t(c)] = outcome ? '1' : '0';
        }
        return clbits;
    }

    scratch = prefix_;
    for (const Instruction& instr : suffix_) {
        switch (instr.type) {
          case OpType::kGate:
            scratch.applyGate(instr);
            if (noise_ != nullptr) {
                applyGateNoise(scratch, instr, *noise_, rng);
            }
            break;
          case OpType::kMeasure: {
            int outcome = scratch.measure(instr.qubits[0], rng);
            if (noise_ != nullptr) {
                outcome = applyReadoutError(outcome, *noise_, rng);
            }
            clbits[size_t(instr.cbit)] = outcome ? '1' : '0';
            break;
          }
          case OpType::kReset:
            scratch.reset(instr.qubits[0], rng);
            break;
          case OpType::kBarrier:
            break;
        }
    }
    return clbits;
}

Counts
runShotsStatevector(const QuantumCircuit& circuit,
                    const SimOptions& options)
{
    QA_REQUIRE(options.shots > 0, "need a positive shot count");
    const ShotExecutor executor(
        circuit, options.noise, options.naive,
        FusionOptions{options.fusion, options.fusion_max_qubits},
        options.simd);

    std::vector<Counts> locals;
    const ShotLoopStatus status = runShotPool(
        options.shots, options.num_threads, options.deadline_ms, locals,
        [&]() {
            // One reusable state buffer per worker; copy-assignment in
            // runOne reuses its allocation across shots.
            return [&, scratch = executor.makeScratch()](
                       int shot, Counts& local) mutable {
                Rng rng = Rng::forStream(options.seed, uint64_t(shot));
                ++local.map[executor.runOne(rng, scratch)];
                ++local.shots;
            };
        });

    Counts counts;
    counts.truncated = status.truncated;
    for (const Counts& local : locals) mergeCounts(counts, local);
    QA_REQUIRE(counts.shots == status.completed,
               "shot pool lost track of completed shots");
    return counts;
}

} // namespace qa
