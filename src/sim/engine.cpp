#include "sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "sim/result.hpp"

namespace qa
{

namespace
{

/** True if the noise model attaches a Kraus channel to this gate. */
bool
gateIsNoisy(const Instruction& instr, const NoiseModel& noise)
{
    const auto& channels =
        instr.arity() == 1 ? noise.noise_1q : noise.noise_2q;
    return !channels.empty();
}

/** Apply configured noise channels after a gate touching these qubits. */
void
applyGateNoise(Statevector& state, const Instruction& instr,
               const NoiseModel& noise, Rng& rng)
{
    const auto& channels =
        instr.arity() == 1 ? noise.noise_1q : noise.noise_2q;
    for (int q : instr.qubits) {
        for (const KrausChannel& channel : channels) {
            state.applyKrausTrajectory(channel, q, rng);
        }
    }
}

/** Flip a recorded readout with the configured asymmetric error. */
int
applyReadoutError(int outcome, const NoiseModel& noise, Rng& rng)
{
    if (outcome == 0 && noise.readout_p01 > 0.0 &&
        rng.bernoulli(noise.readout_p01)) {
        return 1;
    }
    if (outcome == 1 && noise.readout_p10 > 0.0 &&
        rng.bernoulli(noise.readout_p10)) {
        return 0;
    }
    return outcome;
}

/** Worker count for the shot loop: 0 means hardware concurrency. */
int
resolveThreads(int requested, int shots)
{
    int n = requested;
    if (n <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        n = hw == 0 ? 1 : int(hw);
    }
    return std::max(1, std::min(n, shots));
}

/**
 * Run `shots` shot bodies on `num_threads` workers and merge the
 * per-worker histograms. `make_worker` builds one worker function
 * (holding any reusable per-worker buffers); each call worker(shot,
 * local) must depend only on the shot index, which makes the merged
 * histogram independent of scheduling. Workers pull fixed-size chunks
 * off an atomic cursor; histogram merging is order-insensitive.
 */
template <typename MakeWorker>
void
runShotLoop(int shots, int num_threads, Counts& counts,
            const MakeWorker& make_worker)
{
    const int threads = resolveThreads(num_threads, shots);
    if (threads <= 1) {
        auto worker = make_worker();
        for (int s = 0; s < shots; ++s) worker(s, counts);
        return;
    }

    std::atomic<int> cursor{0};
    const int chunk = std::max(1, shots / (threads * 8));
    std::vector<Counts> locals;
    locals.resize(size_t(threads));
    std::vector<std::thread> pool;
    pool.reserve(size_t(threads));
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            // The shot loop is the outer parallelism: keep the gate
            // kernels this worker calls serial.
            SerialKernelScope serial;
            auto worker = make_worker();
            for (;;) {
                const int begin = cursor.fetch_add(chunk);
                if (begin >= shots) break;
                const int end = std::min(shots, begin + chunk);
                for (int s = begin; s < end; ++s) worker(s, locals[t]);
            }
        });
    }
    for (std::thread& th : pool) th.join();
    for (const Counts& local : locals) {
        for (const auto& [bits, n] : local.map) counts.map[bits] += n;
    }
}

} // namespace

ShotPlan
analyzeShotPlan(const QuantumCircuit& circuit, const NoiseModel* noise)
{
    const bool enabled = noise != nullptr && noise->enabled();
    ShotPlan plan;
    plan.kraus_noise = enabled && (!noise->noise_1q.empty() ||
                                   !noise->noise_2q.empty());
    plan.readout_noise = enabled && (noise->readout_p01 > 0.0 ||
                                     noise->readout_p10 > 0.0);

    const auto& instrs = circuit.instructions();
    plan.split = instrs.size();
    for (size_t i = 0; i < instrs.size(); ++i) {
        const Instruction& instr = instrs[i];
        const bool stochastic =
            instr.type == OpType::kMeasure ||
            instr.type == OpType::kReset ||
            (instr.type == OpType::kGate && enabled &&
             gateIsNoisy(instr, *noise));
        if (stochastic) {
            plan.split = i;
            break;
        }
    }

    plan.terminal_sampling = true;
    for (size_t i = plan.split; i < instrs.size(); ++i) {
        const Instruction& instr = instrs[i];
        if (instr.type == OpType::kBarrier) continue;
        if (instr.type != OpType::kMeasure) {
            plan.terminal_sampling = false;
            plan.terminal_measures.clear();
            break;
        }
        plan.terminal_measures.emplace_back(instr.qubits[0], instr.cbit);
    }
    return plan;
}

SampleTable::SampleTable(const Statevector& state)
{
    const CVector& amps = state.amplitudes();
    cumulative_.resize(amps.dim());
    double acc = 0.0;
    for (uint64_t i = 0; i < amps.dim(); ++i) {
        acc += std::norm(amps[i]);
        cumulative_[i] = acc;
    }
    QA_REQUIRE(acc > 1e-14, "sample table over a zero-mass state");
}

uint64_t
SampleTable::sample(Rng& rng) const
{
    const double draw = rng.uniform() * cumulative_.back();
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), draw);
    if (it == cumulative_.end()) return uint64_t(cumulative_.size()) - 1;
    return uint64_t(it - cumulative_.begin());
}

Counts
runShots(const QuantumCircuit& circuit, const SimOptions& options)
{
    QA_REQUIRE(options.shots > 0, "need a positive shot count");
    const NoiseModel* noise =
        options.noise != nullptr && options.noise->enabled()
            ? options.noise
            : nullptr;

    // The naive plan (split = 0, no fast path) replays every instruction
    // per shot: the reference the cached plan must agree with exactly.
    ShotPlan plan;
    if (!options.naive) plan = analyzeShotPlan(circuit, noise);

    const auto& instrs = circuit.instructions();

    // Evolve the deterministic prefix once; every shot clones it. The
    // prefix contains no stochastic instruction, so per-shot RNG draws
    // are unaffected by where the split falls.
    Statevector prefix(circuit.numQubits());
    for (size_t i = 0; i < plan.split; ++i) {
        if (instrs[i].type == OpType::kGate) prefix.applyGate(instrs[i]);
    }

    const std::string clbits0(size_t(std::max(circuit.numClbits(), 0)),
                              '0');
    const int n = circuit.numQubits();

    Counts counts;
    counts.shots = options.shots;

    if (plan.terminal_sampling) {
        const SampleTable table(prefix);
        runShotLoop(options.shots, options.num_threads, counts, [&]() {
            return [&](int shot, Counts& local) {
                Rng rng = Rng::forStream(options.seed, uint64_t(shot));
                const uint64_t index = table.sample(rng);
                std::string clbits = clbits0;
                for (const auto& [q, c] : plan.terminal_measures) {
                    int outcome = int((index >> (n - 1 - q)) & 1);
                    if (noise != nullptr) {
                        outcome = applyReadoutError(outcome, *noise, rng);
                    }
                    clbits[c] = outcome ? '1' : '0';
                }
                ++local.map[clbits];
            };
        });
        return counts;
    }

    runShotLoop(options.shots, options.num_threads, counts, [&]() {
        // One reusable state buffer per worker; copy-assignment below
        // reuses its allocation across shots.
        return [&, state = Statevector(prefix)](int shot,
                                                Counts& local) mutable {
            Rng rng = Rng::forStream(options.seed, uint64_t(shot));
            state = prefix;
            std::string clbits = clbits0;
            for (size_t i = plan.split; i < instrs.size(); ++i) {
                const Instruction& instr = instrs[i];
                switch (instr.type) {
                  case OpType::kGate:
                    state.applyGate(instr);
                    if (noise != nullptr) {
                        applyGateNoise(state, instr, *noise, rng);
                    }
                    break;
                  case OpType::kMeasure: {
                    int outcome = state.measure(instr.qubits[0], rng);
                    if (noise != nullptr) {
                        outcome = applyReadoutError(outcome, *noise, rng);
                    }
                    clbits[instr.cbit] = outcome ? '1' : '0';
                    break;
                  }
                  case OpType::kReset:
                    state.reset(instr.qubits[0], rng);
                    break;
                  case OpType::kBarrier:
                    break;
                }
            }
            ++local.map[clbits];
        };
    });
    return counts;
}

} // namespace qa
