#include "sim/density.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/states.hpp"
#include "sim/kernels.hpp"

namespace qa
{

namespace
{

/**
 * Apply `m` to one axis of rho (axis 0 = row index, axis 1 = column
 * index). Row application computes M rho; column application computes
 * rho M^T (note: transpose, not dagger -- callers pass conj(M) to get
 * rho M^dagger).
 *
 * Row-major rho is one flat 2^(2n)-amplitude array whose index packs
 * (row << n) | col, so both axes reuse the statevector kernels: the
 * row axis places qubit q's bit at n + (n-1-q), the column axis at
 * n-1-q. The column sweep applies m row-wise over the column bits of
 * every row r, i.e. rho'(r, :) = (m * rho(r, :)^T)^T = rho * m^T.
 */
void
applyAxis(CMatrix& rho, const CMatrix& m, const std::vector<int>& qubits,
          int num_qubits, int axis, bool simd)
{
    const int shift = axis == 0 ? num_qubits : 0;
    std::vector<int> pos(qubits.size());
    for (size_t j = 0; j < qubits.size(); ++j) {
        pos[j] = shift + num_qubits - 1 - qubits[j];
    }
    const uint64_t dim = uint64_t(rho.rows()) * rho.cols();
    applyDenseKernel(&rho(0, 0), dim, m, pos.data(), qubits.size(), simd);
}

} // namespace

DensityState::DensityState(int num_qubits)
    : num_qubits_(num_qubits),
      rho_(size_t(1) << num_qubits, size_t(1) << num_qubits)
{
    QA_REQUIRE(num_qubits >= 1 && num_qubits <= 12,
               "density simulator supports 1..12 qubits");
    rho_(0, 0) = 1.0;
}

DensityState::DensityState(CMatrix rho) : num_qubits_(0),
    rho_(std::move(rho))
{
    num_qubits_ = qubitCountForDim(rho_.rows());
    QA_REQUIRE(rho_.isDensityMatrix(1e-6),
               "matrix is not a valid density matrix");
}

void
DensityState::applyLeft(const CMatrix& m, const std::vector<int>& qubits)
{
    applyAxis(rho_, m, qubits, num_qubits_, 0, simd_);
}

void
DensityState::applyMatrix(const CMatrix& m, const std::vector<int>& qubits)
{
    for (int q : qubits) {
        QA_REQUIRE(q >= 0 && q < num_qubits_, "qubit index out of range");
    }
    applyAxis(rho_, m, qubits, num_qubits_, 0, simd_);
    applyAxis(rho_, m.conjugate(), qubits, num_qubits_, 1, simd_);
}

void
DensityState::applyGate(const Instruction& instr)
{
    QA_REQUIRE(instr.isGate(), "applyGate needs a gate instruction");
    applyMatrix(instr.matrix, instr.qubits);
}

void
DensityState::applyKraus(const KrausChannel& channel, int q)
{
    CMatrix result(rho_.rows(), rho_.cols());
    for (const CMatrix& k : channel.ops()) {
        CMatrix term = rho_;
        applyAxis(term, k, {q}, num_qubits_, 0, simd_);
        applyAxis(term, k.conjugate(), {q}, num_qubits_, 1, simd_);
        result += term;
    }
    rho_ = std::move(result);
}

double
DensityState::probabilityOne(int q) const
{
    QA_REQUIRE(q >= 0 && q < num_qubits_, "qubit index out of range");
    const uint64_t mask = uint64_t(1) << (num_qubits_ - 1 - q);
    double prob = 0.0;
    for (uint64_t i = 0; i < rho_.rows(); ++i) {
        if (i & mask) prob += rho_(i, i).real();
    }
    return prob;
}

void
DensityState::collapse(int q, int outcome)
{
    QA_REQUIRE(outcome == 0 || outcome == 1, "outcome must be 0 or 1");
    const uint64_t mask = uint64_t(1) << (num_qubits_ - 1 - q);
    double kept = 0.0;
    for (uint64_t r = 0; r < rho_.rows(); ++r) {
        const bool rbit = (r & mask) != 0;
        for (uint64_t c = 0; c < rho_.cols(); ++c) {
            const bool cbit = (c & mask) != 0;
            if (rbit != (outcome == 1) || cbit != (outcome == 1)) {
                rho_(r, c) = 0.0;
            } else if (r == c) {
                kept += rho_(r, c).real();
            }
        }
    }
    QA_REQUIRE(kept > 1e-14, "collapse onto a zero-probability outcome");
    rho_ *= Complex(1.0 / kept, 0.0);
}

namespace
{

void
applyGateNoiseExact(DensityState& state, const Instruction& instr,
                    const NoiseModel& noise)
{
    const auto& channels =
        instr.arity() == 1 ? noise.noise_1q : noise.noise_2q;
    for (int q : instr.qubits) {
        for (const KrausChannel& channel : channels) {
            state.applyKraus(channel, q);
        }
    }
}

} // namespace

Distribution
exactDistributionDM(const QuantumCircuit& circuit, const NoiseModel* noise)
{
    if (noise != nullptr && noise->enabled()) noise->validate();
    struct Branch
    {
        DensityState state;
        std::string clbits;
        double prob;
        size_t pc;
    };

    const bool noisy = noise != nullptr && noise->enabled();
    Distribution dist;
    std::vector<Branch> stack;
    stack.push_back(Branch{DensityState(circuit.numQubits()),
                           std::string(size_t(std::max(
                               circuit.numClbits(), 0)), '0'),
                           1.0, 0});

    const auto& instrs = circuit.instructions();
    while (!stack.empty()) {
        Branch branch = std::move(stack.back());
        stack.pop_back();

        bool alive = true;
        while (branch.pc < instrs.size() && alive) {
            const Instruction& instr = instrs[branch.pc];
            ++branch.pc;
            switch (instr.type) {
              case OpType::kGate:
                branch.state.applyGate(instr);
                if (noisy) {
                    applyGateNoiseExact(branch.state, instr, *noise);
                }
                break;
              case OpType::kBarrier:
                break;
              case OpType::kMeasure:
              case OpType::kReset: {
                const int q = instr.qubits[0];
                const double p1 = branch.state.probabilityOne(q);
                for (int outcome : {0, 1}) {
                    const double p = outcome ? p1 : 1.0 - p1;
                    if (p < 1e-12) continue;
                    Branch next = branch;
                    next.prob *= p;
                    next.state.collapse(q, outcome);
                    if (instr.type == OpType::kReset) {
                        if (outcome == 1) {
                            next.state.applyMatrix(
                                CMatrix{{0, 1}, {1, 0}}, {q});
                        }
                        stack.push_back(std::move(next));
                        continue;
                    }
                    // Fold asymmetric readout error into the classical
                    // record: the collapse is on the true outcome, only
                    // the recorded bit may flip.
                    double flip = 0.0;
                    if (noisy) {
                        flip = outcome ? noise->readout_p10
                                       : noise->readout_p01;
                    }
                    if (flip > 0.0) {
                        Branch flipped = next;
                        flipped.prob *= flip;
                        flipped.clbits[instr.cbit] =
                            outcome ? '0' : '1';
                        stack.push_back(std::move(flipped));
                        next.prob *= 1.0 - flip;
                    }
                    next.clbits[instr.cbit] = outcome ? '1' : '0';
                    stack.push_back(std::move(next));
                }
                alive = false;
                break;
              }
            }
        }
        if (alive) {
            dist.probs[branch.clbits] += branch.prob;
        }
    }
    return dist;
}

CMatrix
finalDensity(const QuantumCircuit& circuit, const NoiseModel* noise)
{
    const bool noisy = noise != nullptr && noise->enabled();
    DensityState state(circuit.numQubits());
    for (const Instruction& instr : circuit.instructions()) {
        QA_REQUIRE(instr.type == OpType::kGate ||
                       instr.type == OpType::kBarrier,
                   "finalDensity requires a measurement-free circuit");
        if (instr.type == OpType::kGate) {
            state.applyGate(instr);
            if (noisy) applyGateNoiseExact(state, instr, *noise);
        }
    }
    return state.rho();
}

} // namespace qa
