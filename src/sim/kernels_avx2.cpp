/**
 * @file
 * AVX2+FMA amplitude kernel leaves. This translation unit is the only
 * one compiled with -mavx2 -mfma; it must stay free of code reachable
 * before the runtime CPU check in kernels.cpp. One 256-bit lane holds
 * two interleaved complex doubles; a complex multiply by a broadcast
 * constant c is
 *
 *   fmaddsub(v, re(c), swap_pairs(v) * im(c))
 *
 * whose even lanes compute ar*cr - ai*ci and odd lanes ai*cr + ar*ci.
 */
#include "sim/kernels_simd.hpp"

#if defined(QA_SIMD_ENABLED)

#include <immintrin.h>

namespace qa
{
namespace simd
{

namespace
{

/** v * c for a broadcast complex constant (cr/ci = set1 of re/im). */
inline __m256d
cmul(__m256d v, __m256d cr, __m256d ci)
{
    const __m256d sw = _mm256_permute_pd(v, 0x5);
    return _mm256_fmaddsub_pd(v, cr, _mm256_mul_pd(sw, ci));
}

/** Insert zero bits at positions sp[0] < sp[1] < ... into packed r. */
inline uint64_t
deposit(uint64_t r, const int* sp, int k)
{
    uint64_t out = r;
    for (int j = 0; j < k; ++j) {
        const uint64_t low = out & ((uint64_t(1) << sp[j]) - 1);
        out = ((out >> sp[j]) << (sp[j] + 1)) | low;
    }
    return out;
}

/** Amplitude index of the bit-clear member of 1q pair `r`. */
inline uint64_t
pairBase(uint64_t r, int p)
{
    return ((r >> p) << (p + 1)) | (r & ((uint64_t(1) << p) - 1));
}

/** Scalar single-pair 1q update (head/tail peeling only). */
inline void
gen1qOne(Complex* amps, uint64_t i0, uint64_t i1, const Complex* m)
{
    const Complex a0 = amps[i0], a1 = amps[i1];
    amps[i0] = m[0] * a0 + m[1] * a1;
    amps[i1] = m[2] * a0 + m[3] * a1;
}

/** Scalar single-group 2q update (head/tail peeling only). */
inline void
k2One(Complex* amps, uint64_t base, const uint64_t* off, const Complex* m)
{
    Complex a[4], o[4];
    for (int s = 0; s < 4; ++s) a[s] = amps[base | off[s]];
    for (int row = 0; row < 4; ++row) {
        o[row] = m[4 * row] * a[0] + m[4 * row + 1] * a[1] +
                 m[4 * row + 2] * a[2] + m[4 * row + 3] * a[3];
    }
    for (int s = 0; s < 4; ++s) amps[base | off[s]] = o[s];
}

/** Scalar single-group 3q update (head/tail peeling only). */
inline void
k3One(Complex* amps, uint64_t base, const uint64_t* off, const Complex* m)
{
    Complex a[8], o[8];
    for (int s = 0; s < 8; ++s) a[s] = amps[base | off[s]];
    for (int row = 0; row < 8; ++row) {
        Complex sum = 0.0;
        for (int col = 0; col < 8; ++col) {
            sum += m[8 * row + col] * a[col];
        }
        o[row] = sum;
    }
    for (int s = 0; s < 8; ++s) amps[base | off[s]] = o[s];
}

} // namespace

void
k1GeneralRange(Complex* amps, uint64_t r0, uint64_t r1, int p,
               const Complex* m)
{
    double* d = reinterpret_cast<double*>(amps);
    if (p == 0) {
        // Each rest index owns one contiguous [a0, a1] lane: multiply
        // by per-half constants and by the lane-swapped vector.
        const __m256d ar = _mm256_set_pd(m[3].real(), m[3].real(),
                                         m[0].real(), m[0].real());
        const __m256d ai = _mm256_set_pd(m[3].imag(), m[3].imag(),
                                         m[0].imag(), m[0].imag());
        const __m256d br = _mm256_set_pd(m[2].real(), m[2].real(),
                                         m[1].real(), m[1].real());
        const __m256d bi = _mm256_set_pd(m[2].imag(), m[2].imag(),
                                         m[1].imag(), m[1].imag());
        for (uint64_t r = r0; r < r1; ++r) {
            const __m256d v = _mm256_loadu_pd(d + 4 * r);
            const __m256d sw = _mm256_permute2f128_pd(v, v, 0x01);
            _mm256_storeu_pd(d + 4 * r,
                             _mm256_add_pd(cmul(v, ar, ai),
                                           cmul(sw, br, bi)));
        }
        return;
    }

    const uint64_t bit = uint64_t(1) << p;
    const __m256d m00r = _mm256_set1_pd(m[0].real());
    const __m256d m00i = _mm256_set1_pd(m[0].imag());
    const __m256d m01r = _mm256_set1_pd(m[1].real());
    const __m256d m01i = _mm256_set1_pd(m[1].imag());
    const __m256d m10r = _mm256_set1_pd(m[2].real());
    const __m256d m10i = _mm256_set1_pd(m[2].imag());
    const __m256d m11r = _mm256_set1_pd(m[3].real());
    const __m256d m11i = _mm256_set1_pd(m[3].imag());

    uint64_t r = r0;
    for (; r < r1 && (r & 1); ++r) {
        const uint64_t i0 = pairBase(r, p);
        gen1qOne(amps, i0, i0 | bit, m);
    }
    for (; r + 2 <= r1; r += 2) {
        const uint64_t i0 = pairBase(r, p);
        const __m256d v0 = _mm256_loadu_pd(d + 2 * i0);
        const __m256d v1 = _mm256_loadu_pd(d + 2 * (i0 | bit));
        const __m256d o0 = _mm256_add_pd(cmul(v0, m00r, m00i),
                                         cmul(v1, m01r, m01i));
        const __m256d o1 = _mm256_add_pd(cmul(v0, m10r, m10i),
                                         cmul(v1, m11r, m11i));
        _mm256_storeu_pd(d + 2 * i0, o0);
        _mm256_storeu_pd(d + 2 * (i0 | bit), o1);
    }
    for (; r < r1; ++r) {
        const uint64_t i0 = pairBase(r, p);
        gen1qOne(amps, i0, i0 | bit, m);
    }
}

void
k1DiagRange(Complex* amps, uint64_t r0, uint64_t r1, int p,
            const Complex* dvals)
{
    double* d = reinterpret_cast<double*>(amps);
    if (p == 0) {
        const __m256d cr = _mm256_set_pd(dvals[1].real(), dvals[1].real(),
                                         dvals[0].real(), dvals[0].real());
        const __m256d ci = _mm256_set_pd(dvals[1].imag(), dvals[1].imag(),
                                         dvals[0].imag(), dvals[0].imag());
        for (uint64_t r = r0; r < r1; ++r) {
            const __m256d v = _mm256_loadu_pd(d + 4 * r);
            _mm256_storeu_pd(d + 4 * r, cmul(v, cr, ci));
        }
        return;
    }

    const uint64_t bit = uint64_t(1) << p;
    const __m256d d0r = _mm256_set1_pd(dvals[0].real());
    const __m256d d0i = _mm256_set1_pd(dvals[0].imag());
    const __m256d d1r = _mm256_set1_pd(dvals[1].real());
    const __m256d d1i = _mm256_set1_pd(dvals[1].imag());

    uint64_t r = r0;
    for (; r < r1 && (r & 1); ++r) {
        const uint64_t i0 = pairBase(r, p);
        amps[i0] *= dvals[0];
        amps[i0 | bit] *= dvals[1];
    }
    for (; r + 2 <= r1; r += 2) {
        const uint64_t i0 = pairBase(r, p);
        const __m256d v0 = _mm256_loadu_pd(d + 2 * i0);
        const __m256d v1 = _mm256_loadu_pd(d + 2 * (i0 | bit));
        _mm256_storeu_pd(d + 2 * i0, cmul(v0, d0r, d0i));
        _mm256_storeu_pd(d + 2 * (i0 | bit), cmul(v1, d1r, d1i));
    }
    for (; r < r1; ++r) {
        const uint64_t i0 = pairBase(r, p);
        amps[i0] *= dvals[0];
        amps[i0 | bit] *= dvals[1];
    }
}

void
k1PermRange(Complex* amps, uint64_t r0, uint64_t r1, int p,
            const Complex* c)
{
    double* d = reinterpret_cast<double*>(amps);
    if (p == 0) {
        const __m256d cr = _mm256_set_pd(c[1].real(), c[1].real(),
                                         c[0].real(), c[0].real());
        const __m256d ci = _mm256_set_pd(c[1].imag(), c[1].imag(),
                                         c[0].imag(), c[0].imag());
        for (uint64_t r = r0; r < r1; ++r) {
            const __m256d v = _mm256_loadu_pd(d + 4 * r);
            const __m256d sw = _mm256_permute2f128_pd(v, v, 0x01);
            _mm256_storeu_pd(d + 4 * r, cmul(sw, cr, ci));
        }
        return;
    }

    const uint64_t bit = uint64_t(1) << p;
    const __m256d c01r = _mm256_set1_pd(c[0].real());
    const __m256d c01i = _mm256_set1_pd(c[0].imag());
    const __m256d c10r = _mm256_set1_pd(c[1].real());
    const __m256d c10i = _mm256_set1_pd(c[1].imag());

    uint64_t r = r0;
    for (; r < r1 && (r & 1); ++r) {
        const uint64_t i0 = pairBase(r, p);
        const Complex a0 = amps[i0];
        amps[i0] = c[0] * amps[i0 | bit];
        amps[i0 | bit] = c[1] * a0;
    }
    for (; r + 2 <= r1; r += 2) {
        const uint64_t i0 = pairBase(r, p);
        const __m256d v0 = _mm256_loadu_pd(d + 2 * i0);
        const __m256d v1 = _mm256_loadu_pd(d + 2 * (i0 | bit));
        _mm256_storeu_pd(d + 2 * i0, cmul(v1, c01r, c01i));
        _mm256_storeu_pd(d + 2 * (i0 | bit), cmul(v0, c10r, c10i));
    }
    for (; r < r1; ++r) {
        const uint64_t i0 = pairBase(r, p);
        const Complex a0 = amps[i0];
        amps[i0] = c[0] * amps[i0 | bit];
        amps[i0 | bit] = c[1] * a0;
    }
}

void
kCtrlRange(Complex* amps, uint64_t r0, uint64_t r1, int pc, int pt,
           const Complex* u)
{
    double* d = reinterpret_cast<double*>(amps);
    const uint64_t cbit = uint64_t(1) << pc;
    const uint64_t tbit = uint64_t(1) << pt;
    const int sp[2] = {pc < pt ? pc : pt, pc < pt ? pt : pc};

    const __m256d u00r = _mm256_set1_pd(u[0].real());
    const __m256d u00i = _mm256_set1_pd(u[0].imag());
    const __m256d u01r = _mm256_set1_pd(u[1].real());
    const __m256d u01i = _mm256_set1_pd(u[1].imag());
    const __m256d u10r = _mm256_set1_pd(u[2].real());
    const __m256d u10i = _mm256_set1_pd(u[2].imag());
    const __m256d u11r = _mm256_set1_pd(u[3].real());
    const __m256d u11i = _mm256_set1_pd(u[3].imag());

    uint64_t r = r0;
    for (; r < r1 && (r & 1); ++r) {
        const uint64_t i0 = deposit(r, sp, 2) | cbit;
        gen1qOne(amps, i0, i0 | tbit, u);
    }
    for (; r + 2 <= r1; r += 2) {
        const uint64_t i0 = deposit(r, sp, 2) | cbit;
        const __m256d v0 = _mm256_loadu_pd(d + 2 * i0);
        const __m256d v1 = _mm256_loadu_pd(d + 2 * (i0 | tbit));
        const __m256d o0 = _mm256_add_pd(cmul(v0, u00r, u00i),
                                         cmul(v1, u01r, u01i));
        const __m256d o1 = _mm256_add_pd(cmul(v0, u10r, u10i),
                                         cmul(v1, u11r, u11i));
        _mm256_storeu_pd(d + 2 * i0, o0);
        _mm256_storeu_pd(d + 2 * (i0 | tbit), o1);
    }
    for (; r < r1; ++r) {
        const uint64_t i0 = deposit(r, sp, 2) | cbit;
        gen1qOne(amps, i0, i0 | tbit, u);
    }
}

void
k2GeneralRange(Complex* amps, uint64_t r0, uint64_t r1, const int* pos,
               const Complex* m)
{
    double* d = reinterpret_cast<double*>(amps);
    const uint64_t b_hi = uint64_t(1) << pos[0];
    const uint64_t b_lo = uint64_t(1) << pos[1];
    const int sp[2] = {pos[0] < pos[1] ? pos[0] : pos[1],
                       pos[0] < pos[1] ? pos[1] : pos[0]};
    const uint64_t off[4] = {0, b_lo, b_hi, b_hi | b_lo};

    __m256d mr[16], mi[16];
    for (int e = 0; e < 16; ++e) {
        mr[e] = _mm256_set1_pd(m[e].real());
        mi[e] = _mm256_set1_pd(m[e].imag());
    }

    uint64_t r = r0;
    for (; r < r1 && (r & 1); ++r) k2One(amps, deposit(r, sp, 2), off, m);
    for (; r + 2 <= r1; r += 2) {
        const uint64_t base = deposit(r, sp, 2);
        __m256d v[4], o[4];
        for (int s = 0; s < 4; ++s) {
            v[s] = _mm256_loadu_pd(d + 2 * (base | off[s]));
        }
        for (int row = 0; row < 4; ++row) {
            __m256d acc = cmul(v[0], mr[4 * row], mi[4 * row]);
            for (int col = 1; col < 4; ++col) {
                acc = _mm256_add_pd(
                    acc, cmul(v[col], mr[4 * row + col],
                              mi[4 * row + col]));
            }
            o[row] = acc;
        }
        for (int s = 0; s < 4; ++s) {
            _mm256_storeu_pd(d + 2 * (base | off[s]), o[s]);
        }
    }
    for (; r < r1; ++r) k2One(amps, deposit(r, sp, 2), off, m);
}

void
k3GeneralRange(Complex* amps, uint64_t r0, uint64_t r1, const int* pos,
               const Complex* m)
{
    double* d = reinterpret_cast<double*>(amps);
    const uint64_t b0 = uint64_t(1) << pos[0];
    const uint64_t b1 = uint64_t(1) << pos[1];
    const uint64_t b2 = uint64_t(1) << pos[2];
    int sp[3] = {pos[0], pos[1], pos[2]};
    // 3-element sort.
    if (sp[0] > sp[1]) { const int t = sp[0]; sp[0] = sp[1]; sp[1] = t; }
    if (sp[1] > sp[2]) { const int t = sp[1]; sp[1] = sp[2]; sp[2] = t; }
    if (sp[0] > sp[1]) { const int t = sp[0]; sp[0] = sp[1]; sp[1] = t; }
    uint64_t off[8];
    for (uint64_t s = 0; s < 8; ++s) {
        off[s] = ((s >> 2) & 1) * b0 + ((s >> 1) & 1) * b1 + (s & 1) * b2;
    }

    __m256d mr[64], mi[64];
    for (int e = 0; e < 64; ++e) {
        mr[e] = _mm256_set1_pd(m[e].real());
        mi[e] = _mm256_set1_pd(m[e].imag());
    }

    uint64_t r = r0;
    for (; r < r1 && (r & 1); ++r) k3One(amps, deposit(r, sp, 3), off, m);
    for (; r + 2 <= r1; r += 2) {
        const uint64_t base = deposit(r, sp, 3);
        __m256d v[8], o[8];
        for (int s = 0; s < 8; ++s) {
            v[s] = _mm256_loadu_pd(d + 2 * (base | off[s]));
        }
        for (int row = 0; row < 8; ++row) {
            __m256d acc = cmul(v[0], mr[8 * row], mi[8 * row]);
            for (int col = 1; col < 8; ++col) {
                acc = _mm256_add_pd(
                    acc, cmul(v[col], mr[8 * row + col],
                              mi[8 * row + col]));
            }
            o[row] = acc;
        }
        for (int s = 0; s < 8; ++s) {
            _mm256_storeu_pd(d + 2 * (base | off[s]), o[s]);
        }
    }
    for (; r < r1; ++r) k3One(amps, deposit(r, sp, 3), off, m);
}

} // namespace simd
} // namespace qa

#endif // QA_SIMD_ENABLED
