/**
 * @file
 * Density-matrix simulator: exact mixed-state evolution with exact noise
 * channels (no trajectory sampling). Used to cross-validate the
 * statevector backend and to compute the reduced/mixed states the paper's
 * mixed-state assertions are built from.
 */
#ifndef QA_SIM_DENSITY_HPP
#define QA_SIM_DENSITY_HPP

#include "circuit/circuit.hpp"
#include "linalg/matrix.hpp"
#include "sim/noise.hpp"
#include "sim/result.hpp"

namespace qa
{

/** Mutable n-qubit density matrix with gate/channel/measurement support. */
class DensityState
{
  public:
    /** Ground state |0...0><0...0|. */
    explicit DensityState(int num_qubits);

    /** Adopt an explicit density matrix (validated). */
    explicit DensityState(CMatrix rho);

    int numQubits() const { return num_qubits_; }
    const CMatrix& rho() const { return rho_; }

    /** Allow/forbid the AVX2 kernel path for this state (default on). */
    void setSimd(bool simd) { simd_ = simd; }
    bool simdEnabled() const { return simd_; }

    /** Conjugate the state by a 2^k unitary on the listed qubits. */
    void applyMatrix(const CMatrix& m, const std::vector<int>& qubits);

    /** Apply a gate instruction. */
    void applyGate(const Instruction& instr);

    /** Apply a single-qubit Kraus channel exactly: rho -> sum K rho K^+. */
    void applyKraus(const KrausChannel& channel, int q);

    /** Probability that measuring qubit q yields 1. */
    double probabilityOne(int q) const;

    /** Project qubit q onto an outcome and renormalize. */
    void collapse(int q, int outcome);

  private:
    /** Apply m to row indices (left multiplication on the subsystem). */
    void applyLeft(const CMatrix& m, const std::vector<int>& qubits);

    int num_qubits_;
    CMatrix rho_;
    bool simd_ = true;
};

/**
 * Exact outcome distribution under the density-matrix backend, branching
 * at measurements/resets; gate noise and readout error (if a model is
 * given) are applied exactly rather than sampled.
 */
Distribution exactDistributionDM(const QuantumCircuit& circuit,
                                 const NoiseModel* noise = nullptr);

/**
 * Final density matrix of a measurement-free circuit, with exact channel
 * noise when a model is given.
 */
CMatrix finalDensity(const QuantumCircuit& circuit,
                     const NoiseModel* noise = nullptr);

} // namespace qa

#endif // QA_SIM_DENSITY_HPP
