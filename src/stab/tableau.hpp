/**
 * @file
 * Aaronson-Gottesman stabilizer tableau: polynomial-time simulation of
 * Clifford circuits. Serves as an independent cross-validation backend
 * for the dense simulators and as the natural representation for the
 * paper's Bell/GHZ/cluster assertion targets.
 */
#ifndef QA_STAB_TABLEAU_HPP
#define QA_STAB_TABLEAU_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "linalg/vector.hpp"
#include "stab/clifford.hpp"
#include "stab/pauli.hpp"

namespace qa
{

/** Stabilizer tableau over n qubits (destabilizers + stabilizers). */
class StabilizerTableau
{
  public:
    /** The |0...0> state: stabilizers Z_q, destabilizers X_q. */
    explicit StabilizerTableau(int n);

    int numQubits() const { return n_; }

    /** @name Clifford gate application */
    ///@{
    void applyH(int q);
    void applyS(int q);
    void applySdg(int q);
    void applyX(int q);
    void applyY(int q);
    void applyZ(int q);
    void applyCx(int control, int target);
    void applyCz(int a, int b);
    void applySwap(int a, int b);
    ///@}

    /**
     * Apply a named Clifford instruction; throws UserError for
     * non-Clifford gates.
     */
    void applyGate(const Instruction& instr);

    /**
     * Apply an arbitrary recognized Clifford gate (stab/clifford.hpp)
     * to the listed qubits by rewriting every row's local Pauli factor
     * as a product of the gate's generator images. O(n) rows, O(1)
     * local work per row for the 1-2 qubit gates recognition admits —
     * O(n) per gate overall, O(n^2) per gate across a full tableau
     * rebuild. qubits[j] corresponds to the action's local qubit j.
     */
    void applyClifford(const CliffordAction& action,
                       const std::vector<int>& qubits);

    /** Measure qubit q in the computational basis (collapsing). */
    int measure(int q, Rng& rng);

    /** True if measuring q has a deterministic outcome. */
    bool isDeterministic(int q) const;

    /** The i-th stabilizer generator. */
    PauliString stabilizer(int i) const;

    /** The i-th destabilizer generator. */
    PauliString destabilizer(int i) const;

    /**
     * Dense statevector of the stabilized state (for n <= ~10): projects
     * a suitable basis state through (I + S_i)/2 for every generator.
     */
    CVector toStatevector() const;

  private:
    /** Row multiplication: row h *= row i (phase-exact). */
    void rowMult(int h, int i);

    int n_;
    // Rows 0..n-1: destabilizers; rows n..2n-1: stabilizers.
    std::vector<std::vector<uint8_t>> x_;
    std::vector<std::vector<uint8_t>> z_;
    std::vector<uint8_t> r_; // sign bit per row (i^2r: 0 => +, 1 => -)
};

/** True when every gate in the circuit is a named Clifford gate. */
bool isCliffordCircuit(const QuantumCircuit& circuit);

/** Run a measurement-free Clifford circuit on |0...0>. */
StabilizerTableau runClifford(const QuantumCircuit& circuit);

} // namespace qa

#endif // QA_STAB_TABLEAU_HPP
