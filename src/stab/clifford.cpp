#include "stab/clifford.hpp"

#include <cmath>
#include <set>
#include <string>

#include "common/error.hpp"

namespace qa
{

namespace
{

/** Local Pauli with the given symplectic bits (phase 0). */
PauliString
localPauli(int k, const std::vector<uint8_t>& xs,
           const std::vector<uint8_t>& zs)
{
    PauliString p(k);
    for (int j = 0; j < k; ++j) {
        p.setX(j, xs[size_t(j)] != 0);
        p.setZ(j, zs[size_t(j)] != 0);
    }
    return p;
}

/** Entry-wise comparison of two equally-shaped matrices. */
bool
matricesClose(const CMatrix& a, const CMatrix& b, double tol)
{
    for (size_t r = 0; r < a.rows(); ++r) {
        for (size_t c = 0; c < a.cols(); ++c) {
            if (std::abs(a(r, c) - b(r, c)) > tol) return false;
        }
    }
    return true;
}

/**
 * Match a dense 2^k x 2^k matrix against the signed Pauli group:
 * iterate the 4^k symplectic candidates with phase + and -, comparing
 * entry-wise. Returns nullopt when nothing matches.
 */
std::optional<PauliString>
matchSignedPauli(const CMatrix& m, int k, double tol)
{
    std::vector<uint8_t> xs(size_t(k), 0), zs(size_t(k), 0);
    const uint32_t combos = uint32_t(1) << (2 * k);
    for (uint32_t bits = 0; bits < combos; ++bits) {
        for (int j = 0; j < k; ++j) {
            xs[size_t(j)] = uint8_t((bits >> (2 * j)) & 1);
            zs[size_t(j)] = uint8_t((bits >> (2 * j + 1)) & 1);
        }
        PauliString candidate = localPauli(k, xs, zs);
        for (int sign = 0; sign < 2; ++sign) {
            candidate.setPhase(sign == 0 ? 0 : 2);
            if (matricesClose(m, candidate.toMatrix(), tol)) {
                return candidate;
            }
        }
    }
    return std::nullopt;
}

} // namespace

std::optional<CliffordAction>
recognizeCliffordMatrix(const CMatrix& u, double tol)
{
    if (u.rows() != u.cols()) return std::nullopt;
    int k = 0;
    if (u.rows() == 2) {
        k = 1;
    } else if (u.rows() == 4) {
        k = 2;
    } else {
        // Conservative: 3+-qubit gates are treated as non-Clifford
        // (none of the circuit builders emit Clifford gates that wide).
        return std::nullopt;
    }

    const CMatrix udag = u.dagger();
    CliffordAction action;
    action.arity = k;
    std::vector<uint8_t> xs(size_t(k), 0), zs(size_t(k), 0);
    for (int j = 0; j < k; ++j) {
        for (int which = 0; which < 2; ++which) {
            std::fill(xs.begin(), xs.end(), uint8_t(0));
            std::fill(zs.begin(), zs.end(), uint8_t(0));
            (which == 0 ? xs : zs)[size_t(j)] = 1;
            const CMatrix generator = localPauli(k, xs, zs).toMatrix();
            const CMatrix image = u * generator * udag;
            std::optional<PauliString> pauli =
                matchSignedPauli(image, k, tol);
            if (!pauli) return std::nullopt;
            (which == 0 ? action.x_images : action.z_images)
                .push_back(std::move(*pauli));
        }
    }
    return action;
}

bool
isNamedCliffordGate(const Instruction& instr)
{
    static const std::set<std::string> named = {
        "id", "x", "y", "z", "h", "s", "sdg", "cx", "cz", "swap"};
    return instr.isGate() && named.count(instr.name) > 0;
}

std::optional<CliffordAction>
recognizeClifford(const Instruction& instr)
{
    if (!instr.isGate()) return std::nullopt;
    return recognizeCliffordMatrix(instr.matrix);
}

} // namespace qa
