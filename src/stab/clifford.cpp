#include "stab/clifford.hpp"

#include <cmath>
#include <set>
#include <string>

#include "common/error.hpp"

namespace qa
{

namespace
{

/** Local Pauli with the given symplectic bits (phase 0). */
PauliString
localPauli(int k, const std::vector<uint8_t>& xs,
           const std::vector<uint8_t>& zs)
{
    PauliString p(k);
    for (int j = 0; j < k; ++j) {
        p.setX(j, xs[size_t(j)] != 0);
        p.setZ(j, zs[size_t(j)] != 0);
    }
    return p;
}

/** Entry-wise comparison of two equally-shaped matrices. */
bool
matricesClose(const CMatrix& a, const CMatrix& b, double tol)
{
    for (size_t r = 0; r < a.rows(); ++r) {
        for (size_t c = 0; c < a.cols(); ++c) {
            if (std::abs(a(r, c) - b(r, c)) > tol) return false;
        }
    }
    return true;
}

/**
 * Match a dense 2^k x 2^k matrix against the signed Pauli group:
 * iterate the 4^k symplectic candidates with phase + and -, comparing
 * entry-wise. Returns nullopt when nothing matches.
 */
std::optional<PauliString>
matchSignedPauli(const CMatrix& m, int k, double tol)
{
    std::vector<uint8_t> xs(size_t(k), 0), zs(size_t(k), 0);
    const uint32_t combos = uint32_t(1) << (2 * k);
    for (uint32_t bits = 0; bits < combos; ++bits) {
        for (int j = 0; j < k; ++j) {
            xs[size_t(j)] = uint8_t((bits >> (2 * j)) & 1);
            zs[size_t(j)] = uint8_t((bits >> (2 * j + 1)) & 1);
        }
        PauliString candidate = localPauli(k, xs, zs);
        for (int sign = 0; sign < 2; ++sign) {
            candidate.setPhase(sign == 0 ? 0 : 2);
            if (matricesClose(m, candidate.toMatrix(), tol)) {
                return candidate;
            }
        }
    }
    return std::nullopt;
}

} // namespace

std::optional<CliffordAction>
recognizeCliffordMatrix(const CMatrix& u, double tol)
{
    if (u.rows() != u.cols()) return std::nullopt;
    int k = 0;
    if (u.rows() == 2) {
        k = 1;
    } else if (u.rows() == 4) {
        k = 2;
    } else {
        // Conservative: 3+-qubit gates are treated as non-Clifford
        // (none of the circuit builders emit Clifford gates that wide).
        return std::nullopt;
    }

    const CMatrix udag = u.dagger();
    CliffordAction action;
    action.arity = k;
    std::vector<uint8_t> xs(size_t(k), 0), zs(size_t(k), 0);
    for (int j = 0; j < k; ++j) {
        for (int which = 0; which < 2; ++which) {
            std::fill(xs.begin(), xs.end(), uint8_t(0));
            std::fill(zs.begin(), zs.end(), uint8_t(0));
            (which == 0 ? xs : zs)[size_t(j)] = 1;
            const CMatrix generator = localPauli(k, xs, zs).toMatrix();
            const CMatrix image = u * generator * udag;
            std::optional<PauliString> pauli =
                matchSignedPauli(image, k, tol);
            if (!pauli) return std::nullopt;
            (which == 0 ? action.x_images : action.z_images)
                .push_back(std::move(*pauli));
        }
    }
    return action;
}

bool
isNamedCliffordGate(const Instruction& instr)
{
    static const std::set<std::string> named = {
        "id", "x", "y", "z", "h", "s", "sdg", "cx", "cz", "swap"};
    return instr.isGate() && named.count(instr.name) > 0;
}

std::optional<CliffordAction>
recognizeClifford(const Instruction& instr)
{
    if (!instr.isGate()) return std::nullopt;
    return recognizeCliffordMatrix(instr.matrix);
}

namespace
{

/** Embed a k-qubit local Pauli onto n qubits via the placement map. */
PauliString
embedPauli(const PauliString& local, int n, const std::vector<int>& qubits)
{
    PauliString out(n);
    out.setPhase(local.phase());
    for (int j = 0; j < local.numQubits(); ++j) {
        out.setX(qubits[size_t(j)], local.x(j));
        out.setZ(qubits[size_t(j)], local.z(j));
    }
    return out;
}

} // namespace

PauliString
conjugatePauli(const PauliString& pauli, const CliffordAction& action,
               const std::vector<int>& qubits)
{
    QA_REQUIRE(int(qubits.size()) == action.arity,
               "conjugatePauli: qubit list does not match the action");
    const int n = pauli.numQubits();

    // Factors outside the gate's support commute with U and survive
    // unchanged; the original phase rides along.
    PauliString out(n);
    out.setPhase(pauli.phase());
    std::vector<bool> local(size_t(n), false);
    for (int q : qubits) {
        QA_REQUIRE(q >= 0 && q < n, "conjugatePauli: qubit out of range");
        local[size_t(q)] = true;
    }
    for (int q = 0; q < n; ++q) {
        if (local[size_t(q)]) continue;
        out.setX(q, pauli.x(q));
        out.setZ(q, pauli.z(q));
    }

    // Each local factor maps to a product of the generator images:
    // X -> x_image, Z -> z_image, Y = i X Z -> i * x_image * z_image.
    // Distinct local qubits' factors act on disjoint wires and commute,
    // so multiplying the images in qubit order is phase-exact.
    for (size_t j = 0; j < qubits.size(); ++j) {
        const int q = qubits[j];
        const bool fx = pauli.x(q);
        const bool fz = pauli.z(q);
        if (!fx && !fz) continue;
        if (fx && fz) out.setPhase(out.phase() + 1); // Y = i X Z
        if (fx) out = out * embedPauli(action.x_images[j], n, qubits);
        if (fz) out = out * embedPauli(action.z_images[j], n, qubits);
    }
    return out;
}

} // namespace qa
