/**
 * @file
 * Pauli strings with phase tracking: the algebra underneath the
 * stabilizer tableau simulator.
 */
#ifndef QA_STAB_PAULI_HPP
#define QA_STAB_PAULI_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace qa
{

/**
 * A phased n-qubit Pauli operator i^phase * P_0 (x) ... (x) P_{n-1},
 * stored in the symplectic (x, z) representation: x_q = 1 selects an X
 * factor on qubit q, z_q = 1 a Z factor, both = Y.
 */
class PauliString
{
  public:
    /** Identity on n qubits. */
    explicit PauliString(int n);

    /** Parse e.g. "+XIZ", "-iYY". */
    static PauliString fromLabel(const std::string& label);

    int numQubits() const { return int(x_.size()); }

    bool x(int q) const { return x_[q]; }
    bool z(int q) const { return z_[q]; }
    void setX(int q, bool v) { x_[q] = v; }
    void setZ(int q, bool v) { z_[q] = v; }

    /** Phase exponent k in i^k, k in {0,1,2,3}. */
    int phase() const { return phase_; }
    void setPhase(int k) { phase_ = ((k % 4) + 4) % 4; }

    /** Multiply by another Pauli (phase-exact). */
    PauliString operator*(const PauliString& rhs) const;

    /** True if the two Paulis commute. */
    bool commutesWith(const PauliString& rhs) const;

    /** True if every factor is I (phase may be nonzero). */
    bool isIdentity() const;

    /** Dense 2^n matrix (for cross-validation at small n). */
    CMatrix toMatrix() const;

    /** Render as e.g. "-iXYZ". */
    std::string toString() const;

    bool operator==(const PauliString& rhs) const;

  private:
    std::vector<uint8_t> x_;
    std::vector<uint8_t> z_;
    int phase_ = 0;
};

} // namespace qa

#endif // QA_STAB_PAULI_HPP
