#include "stab/observables.hpp"

#include "common/error.hpp"
#include "linalg/states.hpp"

namespace qa
{

CVector
applyPauli(const PauliString& pauli, const CVector& psi)
{
    const int n = qubitCountForDim(psi.dim());
    QA_REQUIRE(pauli.numQubits() == n, "Pauli/state size mismatch");

    // X part permutes basis indices; Z part contributes (-1)^(z.x);
    // Y factors add one i per factor (absorbed into the phase below).
    uint64_t flip_mask = 0;
    uint64_t z_mask = 0;
    int y_count = 0;
    for (int q = 0; q < n; ++q) {
        const uint64_t bit = uint64_t(1) << (n - 1 - q);
        if (pauli.x(q)) flip_mask |= bit;
        if (pauli.z(q)) z_mask |= bit;
        if (pauli.x(q) && pauli.z(q)) ++y_count;
    }
    static const Complex powers[4] = {1.0, kI, -1.0, -kI};
    // Y = i X Z applied as (X then Z) contributes i per Y factor; the
    // string's own phase multiplies on top.
    const Complex global =
        powers[(pauli.phase() + y_count) % 4];

    CVector out(psi.dim());
    for (uint64_t i = 0; i < psi.dim(); ++i) {
        if (psi[i] == Complex(0.0)) continue;
        // P|i> = global * (-1)^{z . i} |i ^ flip>.
        const int sign = __builtin_popcountll(i & z_mask) & 1;
        out[i ^ flip_mask] += psi[i] * global *
                              (sign ? Complex(-1.0) : Complex(1.0));
    }
    return out;
}

Complex
pauliExpectation(const PauliString& pauli, const CVector& psi)
{
    const CVector v = psi.normalized();
    return v.inner(applyPauli(pauli, v));
}

bool
stabilizes(const PauliString& pauli, const CVector& psi, double eps)
{
    return applyPauli(pauli, psi.normalized())
        .approxEquals(psi.normalized(), eps);
}

} // namespace qa
