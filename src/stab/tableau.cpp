#include "stab/tableau.hpp"

#include <set>

#include "common/error.hpp"

namespace qa
{

StabilizerTableau::StabilizerTableau(int n)
    : n_(n), x_(2 * n, std::vector<uint8_t>(n, 0)),
      z_(2 * n, std::vector<uint8_t>(n, 0)), r_(2 * n, 0)
{
    QA_REQUIRE(n >= 1 && n <= 4096, "tableau size out of range");
    for (int q = 0; q < n; ++q) {
        x_[q][q] = 1;      // destabilizer X_q
        z_[n + q][q] = 1;  // stabilizer Z_q
    }
}

void
StabilizerTableau::applyH(int q)
{
    for (int i = 0; i < 2 * n_; ++i) {
        r_[i] ^= x_[i][q] & z_[i][q];
        std::swap(x_[i][q], z_[i][q]);
    }
}

void
StabilizerTableau::applyS(int q)
{
    for (int i = 0; i < 2 * n_; ++i) {
        r_[i] ^= x_[i][q] & z_[i][q];
        z_[i][q] ^= x_[i][q];
    }
}

void
StabilizerTableau::applySdg(int q)
{
    // Sdg = Z S: conjugation by Z flips the sign when x = 1.
    applyS(q);
    applyZ(q);
}

void
StabilizerTableau::applyX(int q)
{
    for (int i = 0; i < 2 * n_; ++i) r_[i] ^= z_[i][q];
}

void
StabilizerTableau::applyY(int q)
{
    for (int i = 0; i < 2 * n_; ++i) r_[i] ^= x_[i][q] ^ z_[i][q];
}

void
StabilizerTableau::applyZ(int q)
{
    for (int i = 0; i < 2 * n_; ++i) r_[i] ^= x_[i][q];
}

void
StabilizerTableau::applyCx(int control, int target)
{
    for (int i = 0; i < 2 * n_; ++i) {
        r_[i] ^= x_[i][control] & z_[i][target] &
                 (x_[i][target] ^ z_[i][control] ^ 1);
        x_[i][target] ^= x_[i][control];
        z_[i][control] ^= z_[i][target];
    }
}

void
StabilizerTableau::applyCz(int a, int b)
{
    applyH(b);
    applyCx(a, b);
    applyH(b);
}

void
StabilizerTableau::applySwap(int a, int b)
{
    applyCx(a, b);
    applyCx(b, a);
    applyCx(a, b);
}

void
StabilizerTableau::applyGate(const Instruction& instr)
{
    QA_REQUIRE(instr.isGate(), "applyGate needs a gate instruction");
    const auto& q = instr.qubits;
    if (instr.name == "h") { applyH(q[0]); return; }
    if (instr.name == "s") { applyS(q[0]); return; }
    if (instr.name == "sdg") { applySdg(q[0]); return; }
    if (instr.name == "x") { applyX(q[0]); return; }
    if (instr.name == "y") { applyY(q[0]); return; }
    if (instr.name == "z") { applyZ(q[0]); return; }
    if (instr.name == "id" || instr.name == "barrier") return;
    if (instr.name == "cx") { applyCx(q[0], q[1]); return; }
    if (instr.name == "cz") { applyCz(q[0], q[1]); return; }
    if (instr.name == "swap") { applySwap(q[0], q[1]); return; }
    QA_FAIL("non-Clifford gate '" + instr.name +
            "' in stabilizer simulation");
}

void
StabilizerTableau::applyClifford(const CliffordAction& action,
                                 const std::vector<int>& qubits)
{
    const int k = action.arity;
    QA_REQUIRE(int(qubits.size()) == k,
               "Clifford action arity does not match the qubit list");
    QA_REQUIRE(int(action.x_images.size()) == k &&
                   int(action.z_images.size()) == k,
               "malformed Clifford action");
    for (int q : qubits) {
        QA_REQUIRE(q >= 0 && q < n_, "qubit index out of range");
    }

    for (int i = 0; i < 2 * n_; ++i) {
        // Local factor of row i over the touched qubits, written as
        // i^s * prod_j X_j^x Z_j^z with s = sum x_j z_j (Y = iXZ).
        int s = 0;
        bool any = false;
        PauliString acc(k);
        for (int j = 0; j < k; ++j) {
            const uint8_t lx = x_[i][qubits[size_t(j)]];
            const uint8_t lz = z_[i][qubits[size_t(j)]];
            if (lx && lz) ++s;
            if (lx) {
                acc = acc * action.x_images[size_t(j)];
                any = true;
            }
            if (lz) {
                acc = acc * action.z_images[size_t(j)];
                any = true;
            }
        }
        if (!any) continue;
        acc.setPhase(acc.phase() + s);
        QA_ASSERT(acc.phase() % 2 == 0,
                  "Clifford conjugation left the signed Pauli group");
        for (int j = 0; j < k; ++j) {
            x_[i][qubits[size_t(j)]] = acc.x(j) ? 1 : 0;
            z_[i][qubits[size_t(j)]] = acc.z(j) ? 1 : 0;
        }
        r_[i] ^= uint8_t(acc.phase() / 2);
    }
}

namespace
{

/** Phase exponent of multiplying single-qubit Paulis (see pauli.cpp). */
int
phaseExponent(bool x1, bool z1, bool x2, bool z2)
{
    if (!x1 && !z1) return 0;
    if (x1 && z1) return (z2 ? 1 : 0) - (x2 ? 1 : 0);
    if (x1 && !z1) return z2 ? (x2 ? 1 : -1) : 0;
    return x2 ? (z2 ? -1 : 1) : 0;
}

} // namespace

void
StabilizerTableau::rowMult(int h, int i)
{
    int exponent = 2 * r_[h] + 2 * r_[i];
    for (int q = 0; q < n_; ++q) {
        exponent += phaseExponent(x_[i][q], z_[i][q], x_[h][q], z_[h][q]);
        x_[h][q] ^= x_[i][q];
        z_[h][q] ^= z_[i][q];
    }
    exponent = ((exponent % 4) + 4) % 4;
    QA_ASSERT(exponent % 2 == 0, "stabilizer product left the group");
    r_[h] = uint8_t(exponent / 2);
}

bool
StabilizerTableau::isDeterministic(int q) const
{
    for (int i = n_; i < 2 * n_; ++i) {
        if (x_[i][q]) return false;
    }
    return true;
}

int
StabilizerTableau::measure(int q, Rng& rng)
{
    QA_REQUIRE(q >= 0 && q < n_, "qubit index out of range");
    int p = -1;
    for (int i = n_; i < 2 * n_; ++i) {
        if (x_[i][q]) {
            p = i;
            break;
        }
    }

    if (p >= 0) {
        // Random outcome: update every other anticommuting row.
        for (int i = 0; i < 2 * n_; ++i) {
            if (i != p && x_[i][q]) rowMult(i, p);
        }
        // Destabilizer p-n becomes the old stabilizer row p.
        x_[p - n_] = x_[p];
        z_[p - n_] = z_[p];
        r_[p - n_] = r_[p];
        // New stabilizer: (-1)^outcome Z_q.
        const int outcome = rng.bernoulli(0.5) ? 1 : 0;
        std::fill(x_[p].begin(), x_[p].end(), uint8_t(0));
        std::fill(z_[p].begin(), z_[p].end(), uint8_t(0));
        z_[p][q] = 1;
        r_[p] = uint8_t(outcome);
        return outcome;
    }

    // Deterministic outcome: accumulate the matching stabilizers into a
    // scratch row seeded to identity.
    std::vector<uint8_t> sx(n_, 0), sz(n_, 0);
    int exponent = 0;
    for (int i = 0; i < n_; ++i) {
        if (!x_[i][q]) continue; // destabilizer i anticommutes with Z_q
        exponent += 2 * r_[i + n_];
        for (int qq = 0; qq < n_; ++qq) {
            exponent += phaseExponent(x_[i + n_][qq], z_[i + n_][qq],
                                      sx[qq], sz[qq]);
            sx[qq] ^= x_[i + n_][qq];
            sz[qq] ^= z_[i + n_][qq];
        }
    }
    exponent = ((exponent % 4) + 4) % 4;
    QA_ASSERT(exponent % 2 == 0, "deterministic phase left the group");
    return exponent / 2;
}

PauliString
StabilizerTableau::stabilizer(int i) const
{
    QA_REQUIRE(i >= 0 && i < n_, "stabilizer index out of range");
    PauliString p(n_);
    for (int q = 0; q < n_; ++q) {
        p.setX(q, x_[n_ + i][q]);
        p.setZ(q, z_[n_ + i][q]);
    }
    p.setPhase(2 * r_[n_ + i]);
    return p;
}

PauliString
StabilizerTableau::destabilizer(int i) const
{
    QA_REQUIRE(i >= 0 && i < n_, "destabilizer index out of range");
    PauliString p(n_);
    for (int q = 0; q < n_; ++q) {
        p.setX(q, x_[i][q]);
        p.setZ(q, z_[i][q]);
    }
    p.setPhase(2 * r_[i]);
    return p;
}

CVector
StabilizerTableau::toStatevector() const
{
    QA_REQUIRE(n_ <= 10, "dense conversion supported up to 10 qubits");
    const size_t dim = size_t(1) << n_;
    CMatrix projector = CMatrix::identity(dim);
    for (int i = 0; i < n_; ++i) {
        const CMatrix s = stabilizer(i).toMatrix();
        projector = projector * ((CMatrix::identity(dim) + s) *
                                 Complex(0.5, 0.0));
    }
    for (size_t j = 0; j < dim; ++j) {
        CVector candidate = projector * CVector::basisState(dim, j);
        if (candidate.norm() > 1e-6) return candidate.normalized();
    }
    QA_ASSERT(false, "stabilizer projector annihilated every basis state");
    return CVector(dim);
}

bool
isCliffordCircuit(const QuantumCircuit& circuit)
{
    static const std::set<std::string> clifford = {
        "id", "x", "y", "z", "h", "s", "sdg", "cx", "cz", "swap"};
    for (const Instruction& instr : circuit.instructions()) {
        if (!instr.isGate()) continue;
        if (!clifford.count(instr.name)) return false;
    }
    return true;
}

StabilizerTableau
runClifford(const QuantumCircuit& circuit)
{
    StabilizerTableau tableau(circuit.numQubits());
    for (const Instruction& instr : circuit.instructions()) {
        QA_REQUIRE(instr.type == OpType::kGate ||
                       instr.type == OpType::kBarrier,
                   "runClifford requires a measurement-free circuit");
        if (instr.type == OpType::kGate) tableau.applyGate(instr);
    }
    return tableau;
}

} // namespace qa
