#include "stab/pauli.hpp"

#include "circuit/stdgates.hpp"
#include "common/error.hpp"

namespace qa
{

PauliString::PauliString(int n) : x_(n, 0), z_(n, 0)
{
    QA_REQUIRE(n >= 1, "Pauli string needs at least one qubit");
}

PauliString
PauliString::fromLabel(const std::string& label)
{
    size_t pos = 0;
    int phase = 0;
    if (pos < label.size() && (label[pos] == '+' || label[pos] == '-')) {
        if (label[pos] == '-') phase = 2;
        ++pos;
    }
    if (pos < label.size() && label[pos] == 'i') {
        phase += 1;
        ++pos;
    }
    const std::string body = label.substr(pos);
    QA_REQUIRE(!body.empty(), "empty Pauli label");
    PauliString p(int(body.size()));
    p.setPhase(phase);
    for (size_t q = 0; q < body.size(); ++q) {
        switch (body[q]) {
          case 'I': break;
          case 'X': p.setX(int(q), true); break;
          case 'Z': p.setZ(int(q), true); break;
          case 'Y':
            p.setX(int(q), true);
            p.setZ(int(q), true);
            break;
          default:
            QA_FAIL("invalid Pauli letter in label: " + label);
        }
    }
    return p;
}

namespace
{

/**
 * Phase exponent contribution (power of i) from multiplying the
 * single-qubit Paulis (x1, z1) * (x2, z2) (Aaronson-Gottesman g).
 */
int
phaseExponent(bool x1, bool z1, bool x2, bool z2)
{
    if (!x1 && !z1) return 0;
    if (x1 && z1) return (z2 ? 1 : 0) - (x2 ? 1 : 0);          // Y
    if (x1 && !z1) return z2 ? (x2 ? 1 : -1) : 0;              // X
    return x2 ? (z2 ? -1 : 1) : 0;                             // Z
}

} // namespace

PauliString
PauliString::operator*(const PauliString& rhs) const
{
    QA_REQUIRE(numQubits() == rhs.numQubits(),
               "Pauli multiplication size mismatch");
    PauliString out(numQubits());
    int phase = phase_ + rhs.phase_;
    for (int q = 0; q < numQubits(); ++q) {
        phase += phaseExponent(x_[q], z_[q], rhs.x_[q], rhs.z_[q]);
        out.x_[q] = x_[q] ^ rhs.x_[q];
        out.z_[q] = z_[q] ^ rhs.z_[q];
    }
    out.setPhase(phase);
    return out;
}

bool
PauliString::commutesWith(const PauliString& rhs) const
{
    QA_REQUIRE(numQubits() == rhs.numQubits(),
               "commutation check size mismatch");
    int anticommutations = 0;
    for (int q = 0; q < numQubits(); ++q) {
        const bool sym = (x_[q] && rhs.z_[q]) != (z_[q] && rhs.x_[q]);
        if (sym) ++anticommutations;
    }
    return anticommutations % 2 == 0;
}

bool
PauliString::isIdentity() const
{
    for (int q = 0; q < numQubits(); ++q) {
        if (x_[q] || z_[q]) return false;
    }
    return true;
}

CMatrix
PauliString::toMatrix() const
{
    CMatrix m = CMatrix::identity(1);
    for (int q = 0; q < numQubits(); ++q) {
        CMatrix factor = CMatrix::identity(2);
        if (x_[q] && z_[q]) {
            factor = gates::y();
        } else if (x_[q]) {
            factor = gates::x();
        } else if (z_[q]) {
            factor = gates::z();
        }
        m = kron(m, factor);
    }
    static const Complex powers[4] = {1.0, kI, -1.0, -kI};
    return m * powers[phase_];
}

std::string
PauliString::toString() const
{
    static const char* prefixes[4] = {"+", "+i", "-", "-i"};
    std::string out = prefixes[phase_];
    for (int q = 0; q < numQubits(); ++q) {
        if (x_[q] && z_[q]) {
            out.push_back('Y');
        } else if (x_[q]) {
            out.push_back('X');
        } else if (z_[q]) {
            out.push_back('Z');
        } else {
            out.push_back('I');
        }
    }
    return out;
}

bool
PauliString::operator==(const PauliString& rhs) const
{
    return x_ == rhs.x_ && z_ == rhs.z_ && phase_ == rhs.phase_;
}

} // namespace qa
