/**
 * @file
 * Clifford recognition by conjugation: decide whether an arbitrary gate
 * unitary is a Clifford operation, and if so extract its action on the
 * local Pauli generators so the stabilizer tableau can apply it without
 * knowing the gate's name.
 *
 * This is what lets the stabilizer backend execute gates like rz(pi/2)
 * or a `unitary` instruction that happens to be Clifford: a gate U is
 * Clifford iff U X_j U^dag and U Z_j U^dag are (signed) Paulis for every
 * local generator, and those 2k images are exactly the data the tableau
 * update needs.
 */
#ifndef QA_STAB_CLIFFORD_HPP
#define QA_STAB_CLIFFORD_HPP

#include <optional>
#include <vector>

#include "circuit/instruction.hpp"
#include "stab/pauli.hpp"

namespace qa
{

/**
 * The action of a k-qubit Clifford gate U on the local Pauli
 * generators: x_images[j] = U X_j U^dag and z_images[j] = U Z_j U^dag,
 * each a signed Pauli over the k local qubits (phase 0 or 2, i.e. +/-).
 * Local qubit j corresponds to Instruction::qubits[j] (qubits[0] is the
 * most significant bit of the local index, matching applyMatrix).
 */
struct CliffordAction
{
    int arity = 0;
    std::vector<PauliString> x_images;
    std::vector<PauliString> z_images;
};

/**
 * Recognize a 2^k x 2^k unitary (k = 1 or 2) as a Clifford gate by
 * conjugating every local generator and matching the image against the
 * signed Pauli group entry-wise (tolerance `tol`). Returns nullopt when
 * any image is not a signed Pauli (the gate is not Clifford) or when
 * k > 2. Global phase is irrelevant (conjugation cancels it).
 */
std::optional<CliffordAction>
recognizeCliffordMatrix(const CMatrix& u, double tol = 1e-9);

/**
 * Recognize a gate instruction as Clifford. Named tableau gates (h, s,
 * sdg, x, y, z, cx, cz, swap, id) short-circuit without touching the
 * matrix; anything else goes through recognizeCliffordMatrix. Returns
 * nullopt for non-Clifford gates. Non-gate instructions are rejected.
 */
std::optional<CliffordAction> recognizeClifford(const Instruction& instr);

/**
 * True when the instruction is one of the named gates the tableau
 * applies directly (StabilizerTableau::applyGate's fast path).
 */
bool isNamedCliffordGate(const Instruction& instr);

/**
 * Conjugate an n-qubit Pauli by a k-qubit Clifford gate placed on
 * `qubits` (qubits[j] hosts the action's local qubit j): returns
 * U P U^dag, phase-exact. Factors outside `qubits` pass through;
 * each local X/Z factor is replaced by the action's generator image
 * (Y = i X Z decomposes into both). This is how the assertion compiler
 * pushes stabilizer generators through basis-change circuits without
 * materializing any matrix.
 */
PauliString conjugatePauli(const PauliString& pauli,
                           const CliffordAction& action,
                           const std::vector<int>& qubits);

} // namespace qa

#endif // QA_STAB_CLIFFORD_HPP
