/**
 * @file
 * Pauli observables on statevectors: expectation values computed
 * without materializing dense matrices (the symplectic representation
 * applies factor-by-factor). Useful for checking assertion targets
 * against their stabilizer descriptions.
 */
#ifndef QA_STAB_OBSERVABLES_HPP
#define QA_STAB_OBSERVABLES_HPP

#include "linalg/vector.hpp"
#include "stab/pauli.hpp"

namespace qa
{

/** Apply a Pauli string to a state vector (phase-exact). */
CVector applyPauli(const PauliString& pauli, const CVector& psi);

/** <psi| P |psi> for a normalized state. */
Complex pauliExpectation(const PauliString& pauli, const CVector& psi);

/**
 * True when P stabilizes |psi> (P|psi> = +|psi|> within tolerance) --
 * the membership test behind stabilizer-based assertion targets.
 */
bool stabilizes(const PauliString& pauli, const CVector& psi,
                double eps = 1e-8);

} // namespace qa

#endif // QA_STAB_OBSERVABLES_HPP
