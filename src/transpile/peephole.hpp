/**
 * @file
 * Peephole circuit optimization (in the spirit of the authors' relaxed
 * peephole optimization paper [31]):
 *
 *  - merge adjacent single-qubit gates (dropping phase-identities),
 *  - cancel adjacent multi-qubit gate pairs whose product is identity,
 *  - rewrite h-CZ-h sandwiches into CX (this is what turns the NDD
 *    parity-check assertion into the bare CX-chain circuit of Fig. 14).
 *
 * Gate-count comparisons in the paper's tables are made after
 * optimizeAndLower().
 */
#ifndef QA_TRANSPILE_PEEPHOLE_HPP
#define QA_TRANSPILE_PEEPHOLE_HPP

#include "circuit/circuit.hpp"

namespace qa
{

/** Run merge/cancel/rewrite passes to a fixpoint (bounded). */
QuantumCircuit peepholeOptimize(const QuantumCircuit& circuit);

/** peephole -> lower -> peephole: the standard costing pipeline. */
QuantumCircuit optimizeAndLower(const QuantumCircuit& circuit);

/** Cost of a circuit in the paper's metrics. */
struct CircuitCost
{
    int cx = 0;       ///< CX gates after lowering + optimization.
    int sg = 0;       ///< Single-qubit gates after lowering + optimization.
    int ancilla = 0;  ///< Filled in by the assertion builders.
    int measure = 0;  ///< Measurement count.
};

/** Compute #CX/#SG/#measure of the optimizeAndLower'd circuit. */
CircuitCost circuitCost(const QuantumCircuit& circuit);

} // namespace qa

#endif // QA_TRANSPILE_PEEPHOLE_HPP
