#include "transpile/peephole.hpp"

#include <cmath>
#include <optional>

#include "circuit/stdgates.hpp"
#include "common/error.hpp"
#include "synth/zyz.hpp"
#include "transpile/lower.hpp"

namespace qa
{

namespace
{

/** True if m is a unit-modulus scalar times the identity. */
bool
isPhaseIdentity(const CMatrix& m, double eps = 1e-9)
{
    return m.equalsUpToPhase(CMatrix::identity(m.rows()), eps);
}

/** Index of the last instruction in `out` touching any of the qubits. */
int
lastTouching(const std::vector<Instruction>& out,
             const std::vector<int>& qubits)
{
    for (int i = int(out.size()) - 1; i >= 0; --i) {
        for (int q : out[i].qubits) {
            for (int p : qubits) {
                if (p == q) return i;
            }
        }
    }
    return -1;
}

/** Rename a merged single-qubit instruction from its exact matrix. */
Instruction
makeMerged1q(int qubit, const CMatrix& product)
{
    Instruction instr;
    instr.type = OpType::kGate;
    instr.qubits = {qubit};
    instr.matrix = product;
    const ZyzAngles a = zyzDecompose(product);
    if (std::abs(a.gamma) < 1e-10) {
        instr.name = "p";
        instr.params = {a.beta + a.delta};
    } else {
        instr.name = "u3";
        instr.params = {a.gamma, a.beta, a.delta};
    }
    return instr;
}

/** One merge/cancel sweep; returns true if anything changed. */
bool
mergeCancelPass(std::vector<Instruction>& instrs)
{
    bool changed = false;
    std::vector<Instruction> out;
    out.reserve(instrs.size());

    for (Instruction& instr : instrs) {
        if (instr.type != OpType::kGate) {
            out.push_back(std::move(instr));
            continue;
        }
        const int prev = lastTouching(out, instr.qubits);
        if (prev >= 0 && out[prev].isGate() &&
            out[prev].qubits == instr.qubits) {
            const CMatrix product = instr.matrix * out[prev].matrix;
            if (isPhaseIdentity(product)) {
                out.erase(out.begin() + prev);
                changed = true;
                continue;
            }
            if (instr.arity() == 1) {
                out[prev] = makeMerged1q(instr.qubits[0], product);
                changed = true;
                continue;
            }
        }
        out.push_back(std::move(instr));
    }
    instrs = std::move(out);
    return changed;
}

/** Find the neighbouring instruction touching qubit x before/after i. */
int
neighbourOn(const std::vector<Instruction>& instrs, size_t i, int x,
            int direction)
{
    for (int j = int(i) + direction; j >= 0 && j < int(instrs.size());
         j += direction) {
        for (int q : instrs[j].qubits) {
            if (q == x) return j;
        }
    }
    return -1;
}

/**
 * Rewrite h(x) [cz(x, o1) ... cz(x, ok)] h(x) -> cx(o1, x) ... cx(ok, x).
 * Valid because CZs sharing x commute and H-conjugation turns each into a
 * CX targeting x; applies one run per call.
 */
bool
rewriteCzH(std::vector<Instruction>& instrs)
{
    for (size_t i = 0; i < instrs.size(); ++i) {
        const Instruction& head = instrs[i];
        if (!head.isGate() || head.name != "h") continue;
        const int x = head.qubits[0];

        // Walk the next ops touching x; they must all be cz's with x.
        std::vector<int> cz_indices;
        int j = neighbourOn(instrs, i, x, +1);
        while (j >= 0 && instrs[j].isGate() && instrs[j].name == "cz" &&
               (instrs[j].qubits[0] == x || instrs[j].qubits[1] == x)) {
            cz_indices.push_back(j);
            j = neighbourOn(instrs, size_t(j), x, +1);
        }
        if (cz_indices.empty() || j < 0) continue;
        const bool tail_is_h = instrs[j].isGate() &&
                               instrs[j].name == "h" &&
                               instrs[j].qubits == std::vector<int>{x};
        if (!tail_is_h) continue;

        for (int idx : cz_indices) {
            const int other = instrs[idx].qubits[0] == x
                                  ? instrs[idx].qubits[1]
                                  : instrs[idx].qubits[0];
            Instruction cx_instr;
            cx_instr.type = OpType::kGate;
            cx_instr.name = "cx";
            cx_instr.qubits = {other, x};
            cx_instr.matrix = gates::cx();
            instrs[idx] = std::move(cx_instr);
        }
        // Erase the later h first.
        instrs.erase(instrs.begin() + j);
        instrs.erase(instrs.begin() + i);
        return true;
    }
    return false;
}

} // namespace

QuantumCircuit
peepholeOptimize(const QuantumCircuit& circuit)
{
    std::vector<Instruction> instrs = circuit.instructions();
    for (int pass = 0; pass < 64; ++pass) {
        bool changed = mergeCancelPass(instrs);
        while (rewriteCzH(instrs)) changed = true;
        if (!changed) break;
    }
    QuantumCircuit out(circuit.numQubits(), circuit.numClbits());
    for (Instruction& instr : instrs) out.append(std::move(instr));
    return out;
}

QuantumCircuit
optimizeAndLower(const QuantumCircuit& circuit)
{
    return peepholeOptimize(lowerToBasis(peepholeOptimize(circuit)));
}

CircuitCost
circuitCost(const QuantumCircuit& circuit)
{
    const QuantumCircuit lowered = optimizeAndLower(circuit);
    CircuitCost cost;
    cost.cx = lowered.countCx();
    cost.sg = lowered.countSingleQubit();
    cost.measure = lowered.countMeasure();
    return cost;
}

} // namespace qa
