#include "transpile/lower.hpp"

#include "circuit/stdgates.hpp"
#include "common/error.hpp"
#include "synth/unitary_synth.hpp"
#include "synth/zyz.hpp"

namespace qa
{

namespace
{

/** Standard 6-CX Toffoli decomposition. */
void
lowerCcx(QuantumCircuit& out, int c0, int c1, int t)
{
    out.h(t);
    out.cx(c1, t);
    out.tdg(t);
    out.cx(c0, t);
    out.t(t);
    out.cx(c1, t);
    out.tdg(t);
    out.cx(c0, t);
    out.t(c1);
    out.t(t);
    out.h(t);
    out.cx(c0, c1);
    out.t(c0);
    out.tdg(c1);
    out.cx(c0, c1);
}

void
lowerInstruction(QuantumCircuit& out, const Instruction& g)
{
    const auto& q = g.qubits;
    if (g.arity() == 1) {
        out.append(g);
        return;
    }
    if (g.name == "cx") {
        out.append(g);
        return;
    }
    if (g.name == "cz") {
        out.h(q[1]);
        out.cx(q[0], q[1]);
        out.h(q[1]);
        return;
    }
    if (g.name == "cy") {
        out.sdg(q[1]);
        out.cx(q[0], q[1]);
        out.s(q[1]);
        return;
    }
    if (g.name == "swap") {
        out.cx(q[0], q[1]);
        out.cx(q[1], q[0]);
        out.cx(q[0], q[1]);
        return;
    }
    if (g.name == "crz") {
        const double theta = g.params[0];
        out.rz(q[1], theta / 2);
        out.cx(q[0], q[1]);
        out.rz(q[1], -theta / 2);
        out.cx(q[0], q[1]);
        return;
    }
    if (g.name == "cp") {
        const double lambda = g.params[0];
        out.p(q[0], lambda / 2);
        out.p(q[1], lambda / 2);
        out.cx(q[0], q[1]);
        out.p(q[1], -lambda / 2);
        out.cx(q[0], q[1]);
        return;
    }
    if (g.name == "cu3" || g.name == "ch") {
        // Extract the controlled block (lower-right quadrant) and emit
        // its exact ABC decomposition.
        CMatrix u(2, 2);
        for (size_t r = 0; r < 2; ++r) {
            for (size_t c = 0; c < 2; ++c) {
                u(r, c) = g.matrix(2 + r, 2 + c);
            }
        }
        emitControlledSingleQubit(out, q[0], q[1], u);
        return;
    }
    if (g.name == "ccx") {
        lowerCcx(out, q[0], q[1], q[2]);
        return;
    }
    if (g.name == "ccrz") {
        const double theta = g.params[0];
        // Diagonal CCU: half-angle network; all factors commute.
        out.crz(q[1], q[2], theta / 2);
        out.cx(q[0], q[1]);
        out.crz(q[1], q[2], -theta / 2);
        out.cx(q[0], q[1]);
        out.crz(q[0], q[2], theta / 2);
        return;
    }
    // Opaque multi-qubit gate: synthesize its matrix.
    QuantumCircuit synth(out.numQubits());
    synthesizeUnitaryInto(synth, g.matrix, q);
    for (const Instruction& instr : synth.instructions()) {
        lowerInstruction(out, instr);
    }
}

} // namespace

QuantumCircuit
lowerToBasis(const QuantumCircuit& circuit)
{
    QuantumCircuit out(circuit.numQubits(), circuit.numClbits());
    // Iterate until fixpoint: synthesized sub-circuits can introduce
    // cz/ccx layers of their own.
    QuantumCircuit current = circuit;
    for (int pass = 0; pass < 8 && !isBasisLevel(current); ++pass) {
        QuantumCircuit next(circuit.numQubits(), circuit.numClbits());
        for (const Instruction& instr : current.instructions()) {
            if (instr.type != OpType::kGate) {
                next.append(instr);
            } else {
                lowerInstruction(next, instr);
            }
        }
        current = std::move(next);
    }
    QA_ASSERT(isBasisLevel(current), "lowering did not converge");
    return current;
}

bool
isBasisLevel(const QuantumCircuit& circuit)
{
    for (const Instruction& instr : circuit.instructions()) {
        if (!instr.isGate()) continue;
        if (instr.arity() == 1) continue;
        if (instr.name != "cx") return false;
    }
    return true;
}

} // namespace qa
