/**
 * @file
 * Basis lowering: rewrite a circuit so its gate set is {named
 * single-qubit gates} + CX, the cost basis of the paper's tables
 * (#CX / #SG). Opaque multi-qubit unitaries are synthesized.
 */
#ifndef QA_TRANSPILE_LOWER_HPP
#define QA_TRANSPILE_LOWER_HPP

#include "circuit/circuit.hpp"

namespace qa
{

/**
 * Lower every instruction to single-qubit gates and CX.
 * Measurements, resets, and barriers pass through unchanged.
 */
QuantumCircuit lowerToBasis(const QuantumCircuit& circuit);

/** True if the circuit contains only 1q gates, CX, and non-gate ops. */
bool isBasisLevel(const QuantumCircuit& circuit);

} // namespace qa

#endif // QA_TRANSPILE_LOWER_HPP
