/**
 * @file
 * Stabilizer backend: Clifford circuits on the Aaronson-Gottesman
 * tableau (stab/tableau.hpp), polynomial in the qubit count where the
 * dense engines are exponential.
 *
 * Preparation mirrors the statevector engine's prefix split: the
 * instructions before the first stochastic point (measurement, reset,
 * or a gate with an active Pauli channel) evolve one shared tableau;
 * each shot copies it (O(n^2) bytes) and replays only the stochastic
 * suffix. Gates are applied by name when the tableau knows them and via
 * Clifford recognition (stab/clifford.hpp) otherwise, so rz(pi/2) or a
 * Clifford `unitary` instruction routes here too.
 *
 * Noise: Pauli-mixture Kraus channels are sampled per trajectory as
 * sign-only tableau updates (probabilities are state-independent, which
 * is exactly what recognizePauliChannel certifies); classical readout
 * error reuses the engine's applyReadoutError. Non-Pauli channels and
 * non-Clifford gates are capability violations and throw kBadRequest.
 */
#include "backend/backend.hpp"

#include <algorithm>

#include "backend/analyzer.hpp"
#include "common/error.hpp"
#include "sim/engine.hpp"
#include "stab/tableau.hpp"

namespace qa
{
namespace backend
{

namespace
{

/** One instruction of the per-shot stochastic suffix, pre-resolved. */
struct SuffixOp
{
    enum class Kind
    {
        kNamedGate,    ///< tableau applyGate by name
        kCliffordGate, ///< recognized action via applyClifford
        kMeasure,
        kReset,
    };

    Kind kind = Kind::kNamedGate;
    Instruction instr;    ///< named gates (owned copy; no borrowing)
    CliffordAction action; ///< recognized gates
    std::vector<int> qubits;
    int cbit = -1;
    bool noisy = false;  ///< Pauli channels follow this gate
    bool two_q = false;  ///< which channel list applies
};

class StabilizerPrepared final : public PreparedCircuit
{
  public:
    StabilizerPrepared(const QuantumCircuit& circuit,
                       const NoiseModel* noise)
        : prefix_(std::max(circuit.numQubits(), 1)),
          clbits0_(size_t(std::max(circuit.numClbits(), 0)), '0')
    {
        const NoiseModel* active =
            noise != nullptr && noise->enabled() ? noise : nullptr;
        if (active != nullptr) {
            active->validate();
            readout_p01_ = active->readout_p01;
            readout_p10_ = active->readout_p10;
            adoptChannels(active->noise_1q, &chan1_);
            adoptChannels(active->noise_2q, &chan2_);
        }

        // Resolve every instruction up front (named / recognized /
        // stochastic), rejecting anything outside the Clifford+Pauli
        // capability set with a clear error.
        std::vector<SuffixOp> ops;
        for (const Instruction& instr : circuit.instructions()) {
            switch (instr.type) {
              case OpType::kGate: {
                SuffixOp op;
                op.qubits = instr.qubits;
                op.two_q = instr.arity() != 1;
                op.noisy = !(op.two_q ? chan2_ : chan1_).empty();
                if (isNamedCliffordGate(instr)) {
                    op.kind = SuffixOp::Kind::kNamedGate;
                    op.instr = instr;
                } else {
                    std::optional<CliffordAction> action =
                        recognizeClifford(instr);
                    QA_REQUIRE_CODE(action.has_value(),
                                    ErrorCode::kBadRequest,
                                    "stabilizer backend cannot run "
                                    "non-Clifford gate '" +
                                        instr.name + "'");
                    op.kind = SuffixOp::Kind::kCliffordGate;
                    op.action = std::move(*action);
                }
                ops.push_back(std::move(op));
                break;
              }
              case OpType::kMeasure: {
                SuffixOp op;
                op.kind = SuffixOp::Kind::kMeasure;
                op.qubits = instr.qubits;
                op.cbit = instr.cbit;
                ops.push_back(std::move(op));
                break;
              }
              case OpType::kReset: {
                SuffixOp op;
                op.kind = SuffixOp::Kind::kReset;
                op.qubits = instr.qubits;
                ops.push_back(std::move(op));
                break;
              }
              case OpType::kBarrier:
                break;
            }
        }

        // Deterministic prefix: everything before the first stochastic
        // op evolves the shared tableau once; shots replay the rest.
        size_t split = ops.size();
        for (size_t i = 0; i < ops.size(); ++i) {
            const SuffixOp& op = ops[i];
            const bool stochastic =
                op.kind == SuffixOp::Kind::kMeasure ||
                op.kind == SuffixOp::Kind::kReset ||
                op.noisy;
            if (stochastic) {
                split = i;
                break;
            }
        }
        for (size_t i = 0; i < split; ++i) applyGateOp(prefix_, ops[i]);
        suffix_.assign(std::make_move_iterator(ops.begin() +
                                               long(split)),
                       std::make_move_iterator(ops.end()));
    }

    std::unique_ptr<ShotSampler> makeSampler() const override;

    /** One trajectory: copy the prefix tableau, replay the suffix. */
    std::string
    runShot(StabilizerTableau& scratch, Rng& rng) const
    {
        scratch = prefix_;
        std::string clbits = clbits0_;
        for (const SuffixOp& op : suffix_) {
            switch (op.kind) {
              case SuffixOp::Kind::kNamedGate:
              case SuffixOp::Kind::kCliffordGate:
                applyGateOp(scratch, op);
                if (op.noisy) applyPauliNoise(scratch, op, rng);
                break;
              case SuffixOp::Kind::kMeasure: {
                int outcome = scratch.measure(op.qubits[0], rng);
                if (readout_p01_ > 0.0 || readout_p10_ > 0.0) {
                    outcome = applyReadout(outcome, rng);
                }
                clbits[size_t(op.cbit)] = outcome ? '1' : '0';
                break;
              }
              case SuffixOp::Kind::kReset:
                // Measure-and-correct, matching Statevector::reset.
                if (scratch.measure(op.qubits[0], rng) == 1) {
                    scratch.applyX(op.qubits[0]);
                }
                break;
            }
        }
        return clbits;
    }

    const StabilizerTableau& prefix() const { return prefix_; }

  private:
    static void
    applyGateOp(StabilizerTableau& tableau, const SuffixOp& op)
    {
        if (op.kind == SuffixOp::Kind::kNamedGate) {
            tableau.applyGate(op.instr);
        } else {
            tableau.applyClifford(op.action, op.qubits);
        }
    }

    void
    adoptChannels(const std::vector<KrausChannel>& channels,
                  std::vector<PauliChannel>* out)
    {
        for (const KrausChannel& channel : channels) {
            std::optional<PauliChannel> pauli =
                recognizePauliChannel(channel);
            QA_REQUIRE_CODE(pauli.has_value(), ErrorCode::kBadRequest,
                            "stabilizer backend cannot run non-Pauli "
                            "Kraus channel '" +
                                channel.name() + "'");
            out->push_back(std::move(*pauli));
        }
    }

    /** Sample one Pauli per channel per touched qubit (engine order). */
    void
    applyPauliNoise(StabilizerTableau& tableau, const SuffixOp& op,
                    Rng& rng) const
    {
        const std::vector<PauliChannel>& channels =
            op.two_q ? chan2_ : chan1_;
        for (int q : op.qubits) {
            for (const PauliChannel& channel : channels) {
                const size_t pick = rng.discrete(channel.weights);
                const auto [x, z] = channel.paulis[pick];
                if (x && z) {
                    tableau.applyY(q);
                } else if (x) {
                    tableau.applyX(q);
                } else if (z) {
                    tableau.applyZ(q);
                }
            }
        }
    }

    int
    applyReadout(int outcome, Rng& rng) const
    {
        NoiseModel readout;
        readout.readout_p01 = readout_p01_;
        readout.readout_p10 = readout_p10_;
        return applyReadoutError(outcome, readout, rng);
    }

    StabilizerTableau prefix_;
    std::string clbits0_;
    double readout_p01_ = 0.0;
    double readout_p10_ = 0.0;
    std::vector<PauliChannel> chan1_;
    std::vector<PauliChannel> chan2_;
    std::vector<SuffixOp> suffix_;
};

class StabilizerSampler final : public ShotSampler
{
  public:
    explicit StabilizerSampler(const StabilizerPrepared& prepared)
        : prepared_(prepared), scratch_(prepared.prefix())
    {}

    std::string
    runOne(Rng& rng) override
    {
        return prepared_.runShot(scratch_, rng);
    }

  private:
    const StabilizerPrepared& prepared_;
    StabilizerTableau scratch_;
};

std::unique_ptr<ShotSampler>
StabilizerPrepared::makeSampler() const
{
    return std::make_unique<StabilizerSampler>(*this);
}

class StabilizerBackend final : public Backend
{
  public:
    BackendCapabilities
    capabilities() const override
    {
        BackendCapabilities caps;
        caps.kind = BackendKind::kStabilizer;
        caps.name = backendName(BackendKind::kStabilizer);
        caps.clifford_only = true;
        caps.mid_circuit = true;
        caps.kraus_noise = false;
        caps.pauli_noise = true;
        caps.readout_noise = true;
        caps.max_qubits = 4096; // tableau size bound
        return caps;
    }

    std::shared_ptr<const PreparedCircuit>
    prepare(const QuantumCircuit& circuit,
            const SimOptions& options) const override
    {
        return std::make_shared<StabilizerPrepared>(circuit,
                                                    options.noise);
    }
};

} // namespace

namespace detail
{

const Backend&
stabilizerBackend()
{
    static const StabilizerBackend instance;
    return instance;
}

} // namespace detail

} // namespace backend
} // namespace qa
