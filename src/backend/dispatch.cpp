/**
 * @file
 * Backend registry and the routed shot-execution entry points: the
 * pooled shot loop shared by every backend, prepareRun (route +
 * prepare), and the top-level qa::runShots the rest of the codebase
 * calls.
 */
#include "backend/backend.hpp"

#include "common/error.hpp"
#include "sim/engine.hpp"

namespace qa
{
namespace backend
{

const Backend&
backendFor(BackendKind kind)
{
    switch (kind) {
      case BackendKind::kStatevector:
        return detail::statevectorBackend();
      case BackendKind::kDensityMatrix:
        return detail::densityMatrixBackend();
      case BackendKind::kStabilizer:
        return detail::stabilizerBackend();
      case BackendKind::kMps:
        return detail::mpsBackend();
    }
    QA_FAIL("unknown backend kind");
}

Counts
runPrepared(const PreparedCircuit& prepared, const SimOptions& options)
{
    QA_REQUIRE(options.shots > 0, "need a positive shot count");

    std::vector<Counts> locals;
    const ShotLoopStatus status = runShotPool(
        options.shots, options.num_threads, options.deadline_ms, locals,
        [&]() {
            // One sampler (and its scratch state) per pool worker.
            return [&, sampler = prepared.makeSampler()](
                       int shot, Counts& local) {
                Rng rng = Rng::forStream(options.seed, uint64_t(shot));
                ++local.map[sampler->runOne(rng)];
                ++local.shots;
            };
        });

    Counts counts;
    counts.truncated = status.truncated;
    for (const Counts& local : locals) mergeCounts(counts, local);
    QA_REQUIRE(counts.shots == status.completed,
               "shot pool lost track of completed shots");
    return counts;
}

Counts
Backend::runShots(const QuantumCircuit& circuit,
                  const SimOptions& options) const
{
    return runPrepared(*prepare(circuit, options), options);
}

RoutedRun
prepareRun(const QuantumCircuit& circuit, const SimOptions& options)
{
    RoutedRun run;
    run.choice = routeShots(circuit, options);
    QA_REQUIRE_CODE(run.choice.capable, ErrorCode::kBadRequest,
                    run.choice.reason);
    run.prepared =
        backendFor(run.choice.backend).prepare(circuit, options);
    return run;
}

} // namespace backend

Counts
runShots(const QuantumCircuit& circuit, const SimOptions& options)
{
    const backend::RoutedRun run = backend::prepareRun(circuit, options);
    return backend::runPrepared(*run.prepared, options);
}

} // namespace qa
