/**
 * @file
 * The dense statevector engine behind the Backend interface: a thin
 * adapter over sim/engine.hpp's ShotExecutor, so routed runs keep the
 * prefix cache, the terminal-sampling fast path, and the exact RNG
 * draw sequence of runShotsStatevector.
 */
#include "backend/backend.hpp"

#include "sim/engine.hpp"

namespace qa
{
namespace backend
{

namespace
{

class StatevectorSampler final : public ShotSampler
{
  public:
    explicit StatevectorSampler(const ShotExecutor& executor)
        : executor_(executor), scratch_(executor.makeScratch())
    {}

    std::string
    runOne(Rng& rng) override
    {
        return executor_.runOne(rng, scratch_);
    }

  private:
    const ShotExecutor& executor_;
    Statevector scratch_;
};

class StatevectorPrepared final : public PreparedCircuit
{
  public:
    StatevectorPrepared(const QuantumCircuit& circuit,
                        const SimOptions& options)
        : executor_(circuit, options.noise, options.naive,
                    FusionOptions{options.fusion,
                                  options.fusion_max_qubits},
                    options.simd)
    {}

    std::unique_ptr<ShotSampler>
    makeSampler() const override
    {
        return std::make_unique<StatevectorSampler>(executor_);
    }

  private:
    ShotExecutor executor_;
};

class StatevectorBackend final : public Backend
{
  public:
    BackendCapabilities
    capabilities() const override
    {
        BackendCapabilities caps;
        caps.kind = BackendKind::kStatevector;
        caps.name = backendName(BackendKind::kStatevector);
        caps.clifford_only = false;
        caps.mid_circuit = true;
        caps.kraus_noise = true;
        caps.pauli_noise = true;
        caps.readout_noise = true;
        caps.max_qubits = 0; // memory-bound: 2^n amplitudes
        return caps;
    }

    std::shared_ptr<const PreparedCircuit>
    prepare(const QuantumCircuit& circuit,
            const SimOptions& options) const override
    {
        return std::make_shared<StatevectorPrepared>(circuit, options);
    }
};

} // namespace

namespace detail
{

const Backend&
statevectorBackend()
{
    static const StatevectorBackend instance;
    return instance;
}

} // namespace detail

} // namespace backend
} // namespace qa
