#include "backend/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "stab/clifford.hpp"

namespace qa
{
namespace backend
{

namespace
{

/** How many non-Clifford gates still count as "Clifford plus few". */
constexpr int kFewNonCliffordMax = 8;

/** Cap on the unique-name list so profiles stay small. */
constexpr size_t kMaxNonCliffordNames = 8;

} // namespace

const char*
circuitClassName(CircuitClass klass)
{
    switch (klass) {
      case CircuitClass::kClifford: return "clifford";
      case CircuitClass::kCliffordPlusFew: return "clifford_plus_few";
      case CircuitClass::kGeneral: return "general";
    }
    return "unknown";
}

CircuitProfile
analyzeCircuit(const QuantumCircuit& circuit)
{
    CircuitProfile profile;
    profile.num_qubits = circuit.numQubits();
    profile.num_clbits = circuit.numClbits();

    const auto& instrs = circuit.instructions();
    profile.instructions = instrs.size();

    // Index of the first measurement; instructions after it must all be
    // measure/barrier for the terminal-only shape to hold.
    size_t first_measure = instrs.size();
    bool terminal_only = true;

    for (size_t i = 0; i < instrs.size(); ++i) {
        const Instruction& instr = instrs[i];
        switch (instr.type) {
          case OpType::kGate: {
            ++profile.gates;
            if (first_measure < i) terminal_only = false;
            if (isNamedCliffordGate(instr)) break;
            if (recognizeClifford(instr)) break;
            ++profile.non_clifford_gates;
            auto& names = profile.non_clifford_names;
            if (names.size() < kMaxNonCliffordNames &&
                std::find(names.begin(), names.end(), instr.name) ==
                    names.end()) {
                names.push_back(instr.name);
            }
            break;
          }
          case OpType::kMeasure:
            ++profile.measures;
            if (first_measure == instrs.size()) first_measure = i;
            profile.terminal_measures.emplace_back(instr.qubits[0],
                                                   instr.cbit);
            break;
          case OpType::kReset:
            ++profile.resets;
            terminal_only = false;
            break;
          case OpType::kBarrier:
            break;
        }
    }

    profile.terminal_measure_only = terminal_only && profile.resets == 0;
    if (!profile.terminal_measure_only) profile.terminal_measures.clear();

    if (profile.non_clifford_gates == 0) {
        profile.klass = CircuitClass::kClifford;
    } else if (profile.non_clifford_gates <= kFewNonCliffordMax) {
        profile.klass = CircuitClass::kCliffordPlusFew;
    } else {
        profile.klass = CircuitClass::kGeneral;
    }
    return profile;
}

NoiseProfile
analyzeNoise(const NoiseModel* noise)
{
    NoiseProfile profile;
    if (noise == nullptr || !noise->enabled()) return profile;
    profile.enabled = true;
    profile.kraus = !noise->noise_1q.empty() || !noise->noise_2q.empty();
    profile.readout =
        noise->readout_p01 > 0.0 || noise->readout_p10 > 0.0;
    for (const auto* list : {&noise->noise_1q, &noise->noise_2q}) {
        for (const KrausChannel& channel : *list) {
            if (!recognizePauliChannel(channel)) {
                profile.pauli_only = false;
                return profile;
            }
        }
    }
    return profile;
}

EntanglementProfile
analyzeEntanglement(const QuantumCircuit& circuit)
{
    EntanglementProfile ent;
    const int n = circuit.numQubits();
    if (n < 1) return ent;

    // crossings[k] = multi-qubit gates spanning the cut between sites
    // k and k+1, for 0 <= k < n - 1.
    std::vector<size_t> crossings(n > 1 ? size_t(n - 1) : 0, 0);
    for (const Instruction& instr : circuit.instructions()) {
        if (!instr.isGate()) continue;
        const int arity = int(instr.qubits.size());
        ent.max_gate_arity = std::max(ent.max_gate_arity, arity);
        if (arity < 2) continue;
        const auto [lo_it, hi_it] =
            std::minmax_element(instr.qubits.begin(), instr.qubits.end());
        const int lo = *lo_it;
        const int hi = *hi_it;
        for (int k = lo; k < hi; ++k) ++crossings[size_t(k)];
        const size_t dist = size_t(hi - lo);
        if (dist > 1) ++ent.long_range_gates;
        // One update per gate plus a there-and-back SWAP chain.
        ent.swap_routed_ops += 1 + 2 * (dist - 1);
    }

    for (size_t k = 0; k < crossings.size(); ++k) {
        ent.max_cut_crossings =
            std::max(ent.max_cut_crossings, crossings[k]);
        // Schmidt rank at cut k is capped both by the crossing count
        // (each crossing at most doubles it) and the Hilbert dimension
        // of the smaller side.
        const size_t dim_exp = std::min(k + 1, size_t(n) - k - 1);
        const size_t needed = std::min(crossings[k], dim_exp);
        ent.needed_log2_chi =
            std::max(ent.needed_log2_chi, int(needed));
    }
    return ent;
}

namespace
{

/** floor(log2(chi_cap)) for chi_cap >= 1. */
int
log2Floor(int chi_cap)
{
    int bits = 0;
    while ((1 << (bits + 1)) <= chi_cap) ++bits;
    return bits;
}

} // namespace

int
mpsEffectiveChi(const EntanglementProfile& ent, int chi_cap)
{
    if (chi_cap < 1) chi_cap = 1;
    if (ent.needed_log2_chi >= 30) return chi_cap;
    return std::min(chi_cap, 1 << ent.needed_log2_chi);
}

double
mpsTruncationBound(const EntanglementProfile& ent, int chi_cap)
{
    if (chi_cap < 1) chi_cap = 1;
    const int capbits = log2Floor(chi_cap);
    if (ent.needed_log2_chi <= capbits) return 0.0;
    return 1.0 - std::ldexp(1.0, capbits - ent.needed_log2_chi);
}

std::optional<PauliChannel>
recognizePauliChannel(const KrausChannel& channel)
{
    constexpr double kTol = 1e-9;
    // Single-qubit Paulis in symplectic order (x, z): I, X, Z, Y.
    struct Basis
    {
        uint8_t x, z;
        Complex m[2][2];
    };
    static const Complex kZero(0.0, 0.0), kOne(1.0, 0.0);
    static const Basis kPaulis[4] = {
        {0, 0, {{kOne, kZero}, {kZero, kOne}}},            // I
        {1, 0, {{kZero, kOne}, {kOne, kZero}}},            // X
        {0, 1, {{kOne, kZero}, {kZero, Complex(-1, 0)}}},  // Z
        {1, 1, {{kZero, Complex(0, -1)}, {Complex(0, 1), kZero}}}, // Y
    };

    PauliChannel result;
    for (const CMatrix& op : channel.ops()) {
        if (op.rows() != 2 || op.cols() != 2) return std::nullopt;
        int match = -1;
        Complex coeff;
        for (int p = 0; p < 4; ++p) {
            // c = tr(P^dag K) / 2; P is Hermitian so P^dag = P.
            Complex c(0.0, 0.0);
            for (int r = 0; r < 2; ++r) {
                for (int col = 0; col < 2; ++col) {
                    c += std::conj(kPaulis[p].m[r][col]) *
                         op(size_t(r), size_t(col));
                }
            }
            c *= 0.5;
            if (std::abs(c) <= kTol) continue;
            if (match >= 0) return std::nullopt; // mixes two Paulis
            match = p;
            coeff = c;
        }
        if (match < 0) return std::nullopt; // zero operator
        result.weights.push_back(std::norm(coeff));
        result.paulis.emplace_back(kPaulis[match].x, kPaulis[match].z);
    }
    if (result.weights.empty()) return std::nullopt;
    return result;
}

} // namespace backend
} // namespace qa
