/**
 * @file
 * Per-job backend routing: given a circuit and run options, pick the
 * cheapest capable simulation backend.
 *
 * Routing is a pure function of the circuit structure, the noise model,
 * and the keyed run options (shots, explicit backend request, naive
 * flag) — never of wall-clock, thread count, or RNG state. That makes
 * the decision bit-identically reproducible, which the serve layer
 * relies on when it absorbs the resolved backend into cache keys.
 *
 * routeShots never throws: an explicit request for a backend that
 * cannot run the job comes back with `capable == false` and a reason,
 * and the caller (dispatch / the serve layer) decides how to surface
 * the error. This keeps jobKey() exception-free.
 */
#ifndef QA_BACKEND_ROUTER_HPP
#define QA_BACKEND_ROUTER_HPP

#include <string>

#include "backend/analyzer.hpp"
#include "sim/fusion.hpp"
#include "sim/options.hpp"
#include "sim/statevector.hpp"

namespace qa
{
namespace backend
{

/** The routing decision for one job, recorded in results and metrics. */
struct BackendChoice
{
    /** The resolved backend (the requested one for explicit requests). */
    BackendKind backend = BackendKind::kStatevector;

    /** True when the caller forced the backend instead of auto-routing. */
    bool explicit_request = false;

    /**
     * False when an explicitly requested backend cannot run the job
     * (e.g. stabilizer for a T-gate circuit). Auto-routed choices are
     * always capable. Executing an incapable choice is the caller's
     * error to raise.
     */
    bool capable = true;

    /** Circuit classification behind the decision. */
    CircuitClass klass = CircuitClass::kGeneral;

    /** Non-Clifford gate count found by the analyzer. */
    int non_clifford_gates = 0;

    /**
     * True when the job's options enable gate fusion for the dense
     * backends (options.fusion and not naive). Per-gate Kraus noise
     * still reverts the affected stream to raw gates at prepare time.
     */
    bool fusion_enabled = false;

    /**
     * What the fusion pass does to this circuit's full stream (empty
     * when fusion_enabled is false). Deterministic — safe to absorb
     * into cache keys and explain output.
     */
    FusionStats fusion;

    /**
     * MPS cost-model facts, filled for every routed job (pure function
     * of circuit and options, whatever backend wins): the bond cap a
     * chi-capped run would actually reach, the entanglement width of
     * the 2q-connectivity graph across the line ordering, and the
     * estimated truncation-error bound at the configured cap.
     */
    int mps_chi = 1;
    int mps_ent_width = 0;
    double mps_trunc_bound = 0.0;

    /** Human-readable explanation of the decision (one sentence). */
    std::string reason;
};

/**
 * Route one shot-execution job. Considers, in order: an explicit
 * `options.backend` request (validated, never overridden), the naive
 * replay flag (statevector only), the stabilizer fast path (Clifford
 * circuit, noise absent or Pauli/readout only), the density-matrix
 * backend (non-Pauli channels on a small terminal-measurement circuit
 * where exact channel evolution beats per-shot trajectory replay), and
 * finally the general statevector engine. Never throws.
 */
BackendChoice routeShots(const QuantumCircuit& circuit,
                         const SimOptions& options);

/**
 * Relative cost of executing one extra gate on a backend at the given
 * circuit width: O(n) for the tableau, O(2^n) / O(4^n) for the dense
 * backends (exponents clamped to keep the weight finite). The
 * assertion compiler multiplies a candidate lowering's gate count by
 * this weight — under the backend the instrumented circuit would route
 * to — to compare executable forms on equal footing. Deterministic,
 * like everything else in this header.
 */
double assertionGateWeight(BackendKind kind, int num_qubits);

/**
 * Multi-line human-readable report of the analysis and routing for a
 * job: circuit profile, noise profile, per-backend capability verdicts,
 * and the chosen backend with its reason. Powers `qassertd --explain`
 * and the qa_explain tool; executes nothing.
 */
std::string explainRouting(const QuantumCircuit& circuit,
                           const SimOptions& options);

} // namespace backend
} // namespace qa

#endif // QA_BACKEND_ROUTER_HPP
