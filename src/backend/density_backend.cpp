/**
 * @file
 * Density-matrix backend: evolve rho once through every gate with its
 * noise channels applied exactly (no trajectory sampling), then serve
 * each shot by sampling the final diagonal and applying classical
 * readout error. Capability limits: terminal measurements only, no
 * resets, and a hard qubit cap (4^n matrix entries).
 *
 * Shots are nearly free — one O(log d) cumulative-table draw plus one
 * readout bernoulli per measured bit — which is what makes this backend
 * win for non-Pauli channels on small circuits despite the 4^n state.
 */
#include "backend/backend.hpp"

#include <algorithm>
#include <cmath>

#include "backend/analyzer.hpp"
#include "common/error.hpp"
#include "sim/density.hpp"
#include "sim/engine.hpp"
#include "sim/fusion.hpp"

namespace qa
{
namespace backend
{

namespace
{

constexpr int kMaxQubits = 8;

class DensityPrepared final : public PreparedCircuit
{
  public:
    DensityPrepared(const QuantumCircuit& circuit,
                    const SimOptions& options)
        : num_qubits_(circuit.numQubits()),
          noise_(options.noise != nullptr && options.noise->enabled()
                     ? options.noise
                     : nullptr),
          clbits0_(size_t(std::max(circuit.numClbits(), 0)), '0')
    {
        if (noise_ != nullptr) noise_->validate();

        const CircuitProfile profile = analyzeCircuit(circuit);
        QA_REQUIRE(profile.terminal_measure_only,
                   "density-matrix backend requires terminal-only "
                   "measurements and no resets");
        QA_REQUIRE(num_qubits_ <= kMaxQubits,
                   "density-matrix backend supports at most " +
                       std::to_string(kMaxQubits) + " qubits");
        measures_ = profile.terminal_measures;

        // Fuse only when no per-gate Kraus channel is active: fusion
        // changes gate arity, which would redirect the channel loop
        // below to the wrong list (noise_1q vs noise_2q).
        const bool kraus =
            noise_ != nullptr && (!noise_->noise_1q.empty() ||
                                  !noise_->noise_2q.empty());
        std::vector<Instruction> program;
        if (options.fusion && !kraus) {
            FusedProgram prog = fuseCircuit(
                circuit,
                FusionOptions{true, options.fusion_max_qubits});
            program = std::move(prog.instructions);
        } else {
            program = circuit.instructions();
        }

        // Exact evolution: gate, then that gate's channels on each
        // touched qubit — the same ordering the statevector engine uses
        // for its per-shot trajectories, so distributions match.
        DensityState state(num_qubits_);
        state.setSimd(options.simd);
        for (const Instruction& instr : program) {
            if (instr.type != OpType::kGate) continue;
            state.applyGate(instr);
            if (noise_ == nullptr) continue;
            const auto& channels = instr.arity() == 1
                                       ? noise_->noise_1q
                                       : noise_->noise_2q;
            for (int q : instr.qubits) {
                for (const KrausChannel& channel : channels) {
                    state.applyKraus(channel, q);
                }
            }
        }

        // Cumulative table over the diagonal: each shot is one
        // O(log d) draw. Clamp tiny negative diagonals (roundoff).
        const CMatrix& rho = state.rho();
        const size_t dim = size_t(1) << num_qubits_;
        cumulative_.resize(dim);
        double acc = 0.0;
        for (size_t i = 0; i < dim; ++i) {
            acc += std::max(0.0, rho(i, i).real());
            cumulative_[i] = acc;
        }
        QA_REQUIRE(acc > 1e-14,
                   "density evolution produced a zero-mass diagonal");
    }

    std::unique_ptr<ShotSampler> makeSampler() const override;

    std::string
    sampleShot(Rng& rng) const
    {
        const double draw = rng.uniform() * cumulative_.back();
        const auto it = std::upper_bound(cumulative_.begin(),
                                         cumulative_.end(), draw);
        const uint64_t index =
            it == cumulative_.end()
                ? uint64_t(cumulative_.size()) - 1
                : uint64_t(it - cumulative_.begin());

        std::string clbits = clbits0_;
        for (const auto& [q, c] : measures_) {
            int outcome = int((index >> (num_qubits_ - 1 - q)) & 1);
            if (noise_ != nullptr) {
                outcome = applyReadoutError(outcome, *noise_, rng);
            }
            clbits[size_t(c)] = outcome ? '1' : '0';
        }
        return clbits;
    }

  private:
    int num_qubits_;
    const NoiseModel* noise_;
    std::string clbits0_;
    std::vector<std::pair<int, int>> measures_;
    std::vector<double> cumulative_;
};

class DensitySampler final : public ShotSampler
{
  public:
    explicit DensitySampler(const DensityPrepared& prepared)
        : prepared_(prepared)
    {}

    std::string
    runOne(Rng& rng) override
    {
        return prepared_.sampleShot(rng);
    }

  private:
    const DensityPrepared& prepared_;
};

std::unique_ptr<ShotSampler>
DensityPrepared::makeSampler() const
{
    return std::make_unique<DensitySampler>(*this);
}

class DensityBackend final : public Backend
{
  public:
    BackendCapabilities
    capabilities() const override
    {
        BackendCapabilities caps;
        caps.kind = BackendKind::kDensityMatrix;
        caps.name = backendName(BackendKind::kDensityMatrix);
        caps.clifford_only = false;
        caps.mid_circuit = false;
        caps.kraus_noise = true;
        caps.pauli_noise = true;
        caps.readout_noise = true;
        caps.max_qubits = kMaxQubits;
        return caps;
    }

    std::shared_ptr<const PreparedCircuit>
    prepare(const QuantumCircuit& circuit,
            const SimOptions& options) const override
    {
        return std::make_shared<DensityPrepared>(circuit, options);
    }
};

} // namespace

namespace detail
{

const Backend&
densityMatrixBackend()
{
    static const DensityBackend instance;
    return instance;
}

} // namespace detail

} // namespace backend
} // namespace qa
