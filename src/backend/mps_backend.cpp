/**
 * @file
 * MPS backend: wide low-entanglement circuits on the bond-capped
 * matrix-product-state core (mps/mps_state.hpp), O(chi^3) per two-site
 * update where the dense engines are O(2^n) per instruction.
 *
 * Preparation mirrors the stabilizer backend's prefix split: gates
 * before the first measurement/reset evolve one shared chain; each shot
 * copies it and replays only the stochastic suffix. A second split
 * peels the trailing run of measurements off the suffix: those are
 * served by one left-to-right conditional sample per shot (no collapse,
 * no re-canonicalization), so terminal-measurement circuits never copy
 * the chain at all.
 *
 * Gate set: any 1q/2q gate with a concrete unitary (2q pairs at any
 * distance — MpsState SWAP-routes). 3q gates (ccx, cswap, the SWAP-test
 * assertion ancilla ops) are lowered to the 1q+CX basis at prepare
 * time. Wider gates, and gate-level Kraus channels, are capability
 * violations and throw kBadRequest; classical readout error is applied
 * to recorded bits exactly like the other backends.
 *
 * The truncation contract: every two-site update discards the Schmidt
 * weight beyond the chi cap and accumulates it. truncationError()
 * reports the shared prefix's total — deterministic for any thread
 * count, and exactly 0.0 when the cap never bound.
 */
#include "backend/backend.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "backend/analyzer.hpp"
#include "common/error.hpp"
#include "mps/mps_state.hpp"
#include "sim/engine.hpp"
#include "transpile/lower.hpp"

namespace qa
{
namespace backend
{

namespace
{

/** One instruction of the MPS execution stream, pre-resolved. */
struct MpsOp
{
    enum class Kind
    {
        k1q,
        k2q,
        kMeasure,
        kReset,
    };

    Kind kind = Kind::k1q;
    CMatrix matrix; ///< 2x2 or 4x4 unitary (gates only)
    int q0 = 0;     ///< target / MSB of the 4x4 index
    int q1 = 0;     ///< LSB of the 4x4 index (2q gates)
    int cbit = -1;  ///< destination bit (measures)
};

class MpsPrepared final : public PreparedCircuit
{
  public:
    MpsPrepared(const QuantumCircuit& circuit, const SimOptions& options)
        : prefix_(std::max(circuit.numQubits(), 1),
                  std::max(options.mps_chi, 1)),
          clbits0_(size_t(std::max(circuit.numClbits(), 0)), '0')
    {
        const NoiseModel* noise = options.noise;
        if (noise != nullptr && noise->enabled()) {
            noise->validate();
            QA_REQUIRE_CODE(noise->noise_1q.empty() &&
                                noise->noise_2q.empty(),
                            ErrorCode::kBadRequest,
                            "mps backend cannot run gate-level Kraus "
                            "channels (pure-state chain, no per-gate "
                            "trajectory noise)");
            readout_p01_ = noise->readout_p01;
            readout_p10_ = noise->readout_p10;
        }

        std::vector<MpsOp> ops;
        for (const Instruction& instr : circuit.instructions()) {
            resolveInstruction(instr, circuit.numQubits(), &ops);
        }

        // Deterministic prefix: gates before the first collapse evolve
        // the shared chain once.
        size_t split = ops.size();
        for (size_t i = 0; i < ops.size(); ++i) {
            if (ops[i].kind == MpsOp::Kind::kMeasure ||
                ops[i].kind == MpsOp::Kind::kReset) {
                split = i;
                break;
            }
        }
        for (size_t i = 0; i < split; ++i) applyGateOp(&prefix_, ops[i]);

        // Peel the trailing all-measure run: it is served by one
        // conditional sample instead of per-measure collapse sweeps.
        size_t tail = ops.size();
        while (tail > split &&
               ops[tail - 1].kind == MpsOp::Kind::kMeasure) {
            --tail;
        }
        tail_.assign(ops.begin() + long(tail), ops.end());
        suffix_.assign(std::make_move_iterator(ops.begin() + long(split)),
                       std::make_move_iterator(ops.begin() + long(tail)));
    }

    std::unique_ptr<ShotSampler> makeSampler() const override;

    double
    truncationError() const override
    {
        return prefix_.stats().discarded_weight;
    }

    /** One trajectory: replay the suffix, then sample the tail. */
    std::string
    runShot(mps::MpsState& scratch, Rng& rng) const
    {
        std::string clbits = clbits0_;
        const mps::MpsState* state = &prefix_;
        if (!suffix_.empty()) {
            scratch = prefix_;
            for (const MpsOp& op : suffix_) {
                switch (op.kind) {
                  case MpsOp::Kind::k1q:
                    scratch.apply1q(op.matrix, op.q0);
                    break;
                  case MpsOp::Kind::k2q:
                    scratch.apply2q(op.matrix, op.q0, op.q1);
                    break;
                  case MpsOp::Kind::kMeasure: {
                    int outcome = scratch.measureCollapse(op.q0, rng);
                    outcome = applyReadout(outcome, rng);
                    clbits[size_t(op.cbit)] = outcome ? '1' : '0';
                    break;
                  }
                  case MpsOp::Kind::kReset:
                    scratch.resetQubit(op.q0, rng);
                    break;
                }
            }
            state = &scratch;
        }
        if (!tail_.empty()) {
            std::string bits;
            state->sampleAll(rng, &bits);
            for (const MpsOp& op : tail_) {
                int outcome = bits[size_t(op.q0)] == '1' ? 1 : 0;
                outcome = applyReadout(outcome, rng);
                clbits[size_t(op.cbit)] = outcome ? '1' : '0';
            }
        }
        return clbits;
    }

    const mps::MpsState& prefix() const { return prefix_; }

  private:
    /** Resolve one instruction, lowering 3q gates to the 1q+CX basis. */
    void
    resolveInstruction(const Instruction& instr, int num_qubits,
                       std::vector<MpsOp>* ops)
    {
        switch (instr.type) {
          case OpType::kGate: {
            const int arity = instr.arity();
            if (arity <= 2) {
                QA_REQUIRE_CODE(
                    instr.matrix.rows() == (arity == 1 ? 2u : 4u),
                    ErrorCode::kBadRequest,
                    "mps backend needs a concrete unitary for gate '" +
                        instr.name + "'");
                MpsOp op;
                op.kind = arity == 1 ? MpsOp::Kind::k1q
                                     : MpsOp::Kind::k2q;
                op.matrix = instr.matrix;
                op.q0 = instr.qubits[0];
                if (arity == 2) op.q1 = instr.qubits[1];
                ops->push_back(std::move(op));
                return;
            }
            QA_REQUIRE_CODE(arity == 3, ErrorCode::kBadRequest,
                            "mps backend cannot run " +
                                std::to_string(arity) +
                                "-qubit gate '" + instr.name +
                                "' (max arity 3, lowered)");
            // Lower through the transpiler on a full-width scratch
            // circuit so qubit indices survive unchanged.
            QuantumCircuit wrapper(num_qubits, 0);
            wrapper.append(instr);
            const QuantumCircuit lowered = lowerToBasis(wrapper);
            for (const Instruction& low : lowered.instructions()) {
                QA_REQUIRE(low.isGate() && low.arity() <= 2,
                           "basis lowering produced a non-basis op");
                resolveInstruction(low, num_qubits, ops);
            }
            return;
          }
          case OpType::kMeasure: {
            MpsOp op;
            op.kind = MpsOp::Kind::kMeasure;
            op.q0 = instr.qubits[0];
            op.cbit = instr.cbit;
            ops->push_back(std::move(op));
            return;
          }
          case OpType::kReset: {
            MpsOp op;
            op.kind = MpsOp::Kind::kReset;
            op.q0 = instr.qubits[0];
            ops->push_back(std::move(op));
            return;
          }
          case OpType::kBarrier:
            return;
        }
    }

    static void
    applyGateOp(mps::MpsState* state, const MpsOp& op)
    {
        if (op.kind == MpsOp::Kind::k1q) {
            state->apply1q(op.matrix, op.q0);
        } else {
            state->apply2q(op.matrix, op.q0, op.q1);
        }
    }

    int
    applyReadout(int outcome, Rng& rng) const
    {
        if (readout_p01_ <= 0.0 && readout_p10_ <= 0.0) return outcome;
        NoiseModel readout;
        readout.readout_p01 = readout_p01_;
        readout.readout_p10 = readout_p10_;
        return applyReadoutError(outcome, readout, rng);
    }

    mps::MpsState prefix_;
    std::string clbits0_;
    double readout_p01_ = 0.0;
    double readout_p10_ = 0.0;
    std::vector<MpsOp> suffix_;
    std::vector<MpsOp> tail_;
};

class MpsSampler final : public ShotSampler
{
  public:
    explicit MpsSampler(const MpsPrepared& prepared)
        : prepared_(prepared), scratch_(prepared.prefix())
    {}

    std::string
    runOne(Rng& rng) override
    {
        return prepared_.runShot(scratch_, rng);
    }

  private:
    const MpsPrepared& prepared_;
    mps::MpsState scratch_;
};

std::unique_ptr<ShotSampler>
MpsPrepared::makeSampler() const
{
    return std::make_unique<MpsSampler>(*this);
}

class MpsBackend final : public Backend
{
  public:
    BackendCapabilities
    capabilities() const override
    {
        BackendCapabilities caps;
        caps.kind = BackendKind::kMps;
        caps.name = backendName(BackendKind::kMps);
        caps.clifford_only = false;
        caps.mid_circuit = true;
        caps.kraus_noise = false;
        caps.pauli_noise = false;
        caps.readout_noise = true;
        caps.max_qubits = 4096; // chain-length bound, not memory
        return caps;
    }

    std::shared_ptr<const PreparedCircuit>
    prepare(const QuantumCircuit& circuit,
            const SimOptions& options) const override
    {
        return std::make_shared<MpsPrepared>(circuit, options);
    }
};

} // namespace

namespace detail
{

const Backend&
mpsBackend()
{
    static const MpsBackend instance;
    return instance;
}

} // namespace detail

} // namespace backend
} // namespace qa
