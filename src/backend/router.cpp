#include "backend/router.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace qa
{
namespace backend
{

namespace
{

/**
 * Density-matrix memory wall: 4^n complex doubles. Above this the
 * statevector engine is always preferred, whatever the shot count.
 */
constexpr int kDensityMaxQubits = 8;

/**
 * Below this width the dense statevector engine is comfortable (2^n
 * fits in cache-friendly memory) and its SIMD kernels beat the MPS
 * SVD machinery even on product-ish states, so auto-routing never
 * picks MPS. Explicit `backend=mps` requests ignore this floor.
 */
constexpr int kMpsMinQubits = 24;

/** Deterministic cost estimates used to arbitrate density vs replay. */
struct CostEstimate
{
    double statevector = 0.0;
    double density = 0.0;
};

CostEstimate
estimateCosts(const CircuitProfile& circuit, const NoiseModel* noise,
              int shots, size_t effective_instructions)
{
    const double dim = std::ldexp(1.0, circuit.num_qubits);
    const double work = double(effective_instructions) + 1.0;
    size_t channels = 0;
    if (noise != nullptr) {
        channels = noise->noise_1q.size() + noise->noise_2q.size();
    }
    CostEstimate est;
    // Per-shot replay touches every amplitude per instruction; the
    // density path evolves 4^n entries once, channels included exactly.
    est.statevector = double(shots) * work * dim;
    est.density = work * double(1 + channels) * dim * dim;
    return est;
}

/** Why the stabilizer backend cannot run this job ("" when it can). */
std::string
stabilizerObjection(const CircuitProfile& circuit,
                    const NoiseProfile& noise)
{
    if (circuit.non_clifford_gates > 0) {
        std::ostringstream out;
        out << circuit.non_clifford_gates << " non-Clifford gate"
            << (circuit.non_clifford_gates == 1 ? "" : "s");
        if (!circuit.non_clifford_names.empty()) {
            out << " (first: " << circuit.non_clifford_names.front()
                << ")";
        }
        return out.str();
    }
    if (noise.kraus && !noise.pauli_only) {
        return "non-Pauli Kraus channels in the noise model";
    }
    return "";
}

/** Why the density backend cannot run this job ("" when it can). */
std::string
densityObjection(const CircuitProfile& circuit)
{
    if (!circuit.terminal_measure_only) {
        return "mid-circuit measurements or resets";
    }
    if (circuit.num_qubits > kDensityMaxQubits) {
        std::ostringstream out;
        out << circuit.num_qubits << " qubits exceed the "
            << kDensityMaxQubits << "-qubit density-matrix limit";
        return out.str();
    }
    return "";
}

/** Why the MPS backend cannot run this job ("" when it can). */
std::string
mpsObjection(const EntanglementProfile& ent, const NoiseProfile& noise,
             const SimOptions& options)
{
    if (ent.max_gate_arity > 3) {
        std::ostringstream out;
        out << ent.max_gate_arity
            << "-qubit gates exceed the MPS lowering (max arity 3)";
        return out.str();
    }
    if (noise.kraus) {
        return "gate-level Kraus channels (MPS runs pure-state "
               "trajectories without per-gate noise)";
    }
    const double bound =
        mpsTruncationBound(ent, std::max(1, options.mps_chi));
    if (bound > options.mps_trunc_tol) {
        std::ostringstream out;
        out << "estimated truncation error " << std::scientific
            << std::setprecision(2) << bound
            << " exceeds the mps_tol tolerance " << options.mps_trunc_tol
            << " (entanglement width needs chi ~ 2^"
            << ent.needed_log2_chi << ", cap is "
            << std::max(1, options.mps_chi) << ")";
        return out.str();
    }
    return "";
}

/**
 * Estimated work for an MPS run: chi^3-ish two-site updates for the
 * unitary part, then either cheap left-to-right sampling (terminal
 * measurements) or per-shot suffix replay (mid-circuit collapse).
 */
double
mpsCost(const CircuitProfile& profile, const EntanglementProfile& ent,
        int chi, int shots)
{
    const double chi_d = double(std::max(1, chi));
    const double two_site = double(ent.swap_routed_ops) * chi_d * chi_d *
                            chi_d * 8.0;
    const double one_site = double(profile.gates) * chi_d * chi_d * 2.0;
    const double evolve = two_site + one_site;
    const double sample =
        double(shots) * double(profile.num_qubits) * chi_d * chi_d;
    if (profile.terminal_measure_only) return evolve + sample;
    // Mid-circuit collapse: per-shot replay plus O(n chi^3)
    // re-canonicalization per collapse.
    const double collapses =
        double(profile.measures + profile.resets);
    return double(shots) *
           (evolve + collapses * double(profile.num_qubits) * chi_d *
                         chi_d * chi_d);
}

/** Prefix-aware statevector cost (mirrors the engine's replay split). */
double
statevectorCost(const CircuitProfile& profile, int shots,
                size_t effective_instructions)
{
    const double dim = std::ldexp(1.0, std::min(profile.num_qubits, 60));
    const double work = double(effective_instructions) + 1.0;
    if (profile.terminal_measure_only) {
        // Evolve once, sample the final distribution per shot.
        return work * dim + double(shots) * double(profile.num_qubits);
    }
    return double(shots) * work * dim;
}

std::string
describeNoise(const NoiseProfile& noise)
{
    if (!noise.enabled) return "none";
    std::string desc;
    if (noise.kraus) {
        desc = noise.pauli_only ? "Pauli channels" : "non-Pauli channels";
    }
    if (noise.readout) {
        if (!desc.empty()) desc += " + ";
        desc += "readout error";
    }
    return desc;
}

} // namespace

BackendChoice
routeShots(const QuantumCircuit& circuit, const SimOptions& options)
{
    const CircuitProfile profile = analyzeCircuit(circuit);
    const NoiseProfile noise = analyzeNoise(options.noise);
    const EntanglementProfile ent = analyzeEntanglement(circuit);
    const int chi_cap = std::max(1, options.mps_chi);

    BackendChoice choice;
    choice.klass = profile.klass;
    choice.non_clifford_gates = profile.non_clifford_gates;
    choice.mps_chi = mpsEffectiveChi(ent, chi_cap);
    choice.mps_ent_width = int(ent.max_cut_crossings);
    choice.mps_trunc_bound = mpsTruncationBound(ent, chi_cap);

    // Fusion summary: what the dense backends will execute. Kraus
    // channels revert the noisy stream to raw gates at prepare time,
    // so the cost model only credits fusion when none are active.
    choice.fusion_enabled = options.fusion && !options.naive;
    if (choice.fusion_enabled) {
        choice.fusion =
            fuseCircuit(circuit, FusionOptions{
                                     true, options.fusion_max_qubits})
                .stats;
    }
    size_t effective = profile.instructions;
    if (choice.fusion_enabled && !noise.kraus) {
        effective = profile.instructions - profile.gates +
                    choice.fusion.gates_out;
    }

    const std::string stab_why = stabilizerObjection(profile, noise);
    const std::string dens_why = densityObjection(profile);
    const std::string mps_why = mpsObjection(ent, noise, options);

    if (options.backend != BackendRequest::kAuto) {
        choice.explicit_request = true;
        switch (options.backend) {
          case BackendRequest::kStatevector:
            choice.backend = BackendKind::kStatevector;
            choice.reason = "explicit statevector request";
            break;
          case BackendRequest::kDensityMatrix:
            choice.backend = BackendKind::kDensityMatrix;
            choice.capable = dens_why.empty();
            choice.reason =
                choice.capable
                    ? "explicit density-matrix request"
                    : "density-matrix backend cannot run this job: " +
                          dens_why;
            break;
          case BackendRequest::kStabilizer:
            choice.backend = BackendKind::kStabilizer;
            choice.capable = stab_why.empty();
            choice.reason =
                choice.capable
                    ? "explicit stabilizer request"
                    : "stabilizer backend cannot run this job: " +
                          stab_why;
            break;
          case BackendRequest::kMps:
            choice.backend = BackendKind::kMps;
            choice.capable = mps_why.empty();
            choice.reason =
                choice.capable
                    ? "explicit mps request"
                    : "mps backend cannot run this job: " + mps_why;
            break;
          case BackendRequest::kAuto:
            break;
        }
        return choice;
    }

    if (options.naive) {
        choice.backend = BackendKind::kStatevector;
        choice.reason =
            "naive replay is a statevector-engine diagnostic mode";
        return choice;
    }

    if (stab_why.empty()) {
        choice.backend = BackendKind::kStabilizer;
        choice.reason = "Clifford circuit (noise: " +
                        describeNoise(noise) + "), O(n^2)-per-gate "
                        "tableau simulation";
        return choice;
    }

    // Chi-capped MPS: wide non-Clifford circuits whose entanglement
    // width fits the cap cost O(chi^3) per 2q gate instead of O(2^n)
    // per instruction. Gated on a width floor (dense SIMD wins below
    // it) and an honest cost comparison against the prefix-aware
    // statevector estimate.
    if (mps_why.empty() && !noise.kraus &&
        profile.num_qubits >= kMpsMinQubits) {
        const double mps_est =
            mpsCost(profile, ent, choice.mps_chi, options.shots);
        const double sv_est =
            statevectorCost(profile, options.shots, effective);
        if (mps_est < sv_est) {
            choice.backend = BackendKind::kMps;
            std::ostringstream why;
            why << "wide low-entanglement circuit: chi-capped MPS "
                   "(chi="
                << choice.mps_chi << ", entanglement width "
                << choice.mps_ent_width << ", est truncation bound "
                << std::scientific << std::setprecision(1)
                << choice.mps_trunc_bound
                << ") beats 2^n dense evolution";
            choice.reason = why.str();
            return choice;
        }
    }

    if (noise.kraus && !noise.pauli_only && dens_why.empty()) {
        const CostEstimate est = estimateCosts(
            profile, options.noise, options.shots, effective);
        if (est.density < est.statevector) {
            choice.backend = BackendKind::kDensityMatrix;
            choice.reason =
                "non-Pauli Kraus channels on a small terminal-"
                "measurement circuit: one exact channel evolution is "
                "cheaper than per-shot trajectory replay";
            return choice;
        }
    }

    choice.backend = BackendKind::kStatevector;
    choice.reason = "general circuit: " + stab_why;
    return choice;
}

double
assertionGateWeight(BackendKind kind, int num_qubits)
{
    const int n = std::max(1, num_qubits);
    switch (kind) {
      case BackendKind::kStabilizer:
        // O(n) row update per gate (O(n^2) for measures; gates
        // dominate assertion fragments).
        return double(n);
      case BackendKind::kStatevector:
        // O(2^n) amplitudes per gate; clamp the exponent so the weight
        // stays finite and comparable for wide circuits.
        return std::ldexp(1.0, std::min(n, 48));
      case BackendKind::kDensityMatrix:
        // O(4^n) per gate.
        return std::ldexp(1.0, std::min(2 * n, 60));
      case BackendKind::kMps:
        // O(chi^3) two-site updates: 2^n until the default cap binds,
        // then flat (chi=64 -> 64^3 = 2^18 flops per gate).
        return std::min(std::ldexp(1.0, std::min(n, 48)), 262144.0);
    }
    return 1.0;
}

std::string
explainRouting(const QuantumCircuit& circuit, const SimOptions& options)
{
    const CircuitProfile profile = analyzeCircuit(circuit);
    const NoiseProfile noise = analyzeNoise(options.noise);
    const EntanglementProfile ent = analyzeEntanglement(circuit);
    const BackendChoice choice = routeShots(circuit, options);
    const std::string stab_why = stabilizerObjection(profile, noise);
    const std::string dens_why = densityObjection(profile);
    const std::string mps_why = mpsObjection(ent, noise, options);

    std::ostringstream out;
    out << "circuit: " << profile.num_qubits << " qubits, "
        << profile.gates << " gates, " << profile.measures
        << " measures, " << profile.resets << " resets\n";
    out << "class: " << circuitClassName(profile.klass);
    if (profile.non_clifford_gates > 0) {
        out << " (" << profile.non_clifford_gates
            << " non-Clifford gates";
        if (!profile.non_clifford_names.empty()) {
            out << ":";
            for (const std::string& name : profile.non_clifford_names) {
                out << " " << name;
            }
        }
        out << ")";
    }
    out << "\n";
    out << "measurement shape: "
        << (profile.terminal_measure_only ? "terminal only"
                                          : "mid-circuit")
        << "\n";
    out << "noise: " << describeNoise(noise) << "\n";
    if (!choice.fusion_enabled) {
        out << "fusion: off\n";
    } else {
        const FusionStats& fs = choice.fusion;
        out << "fusion: on (max "
            << std::clamp(options.fusion_max_qubits, 1, 3)
            << " qubits): " << fs.gates_in << " gates -> "
            << fs.gates_out << " kernels (ratio "
            << std::fixed << std::setprecision(2) << fs.ratio()
            << std::defaultfloat << ", " << fs.fused_groups
            << " fused groups, largest " << fs.max_group << ")";
        if (noise.kraus) {
            out << " [Kraus-noisy gates run unfused]";
        }
        out << "\n";
        out << "kernels:";
        for (const auto& [name, n] : fs.kernel_counts) {
            out << " " << name << "=" << n;
        }
        if (fs.kernel_counts.empty()) out << " none";
        out << "\n";
    }
    out << "entanglement: width " << ent.max_cut_crossings
        << " (needs chi ~ 2^" << ent.needed_log2_chi << "), chi cap "
        << std::max(1, options.mps_chi) << " -> effective chi "
        << choice.mps_chi << ", est truncation bound "
        << std::scientific << std::setprecision(2)
        << choice.mps_trunc_bound << std::defaultfloat;
    if (ent.long_range_gates > 0) {
        out << ", " << ent.long_range_gates
            << " SWAP-routed long-range gates";
    }
    out << "\n";
    out << "capable: statevector=yes, density_matrix="
        << (dens_why.empty() ? "yes" : "no (" + dens_why + ")")
        << ", stabilizer="
        << (stab_why.empty() ? "yes" : "no (" + stab_why + ")")
        << ", mps="
        << (mps_why.empty() ? "yes" : "no (" + mps_why + ")") << "\n";
    out << "chosen: " << backendName(choice.backend)
        << (choice.capable ? "" : " [INCAPABLE]") << " — "
        << choice.reason << "\n";
    return out.str();
}

} // namespace backend
} // namespace qa
