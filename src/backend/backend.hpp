/**
 * @file
 * Pluggable simulation-backend subsystem (DESIGN.md Sec. 11).
 *
 * A Backend turns (circuit, options) into a PreparedCircuit — the
 * shot-invariant work done once — and a PreparedCircuit hands out
 * ShotSamplers — the per-worker mutable scratch — so one pooled shot
 * loop (runPrepared) can drive any backend with the engine's
 * counter-based RNG streams. Three implementations are registered:
 *
 *  - statevector: the general dense engine (sim/engine.hpp) with prefix
 *    caching and the terminal-sampling fast path; O(2^n) per gate.
 *  - density_matrix: exact channel evolution of rho with sampling from
 *    the final diagonal; O(4^n) per gate, shots nearly free; terminal
 *    measurements only.
 *  - stabilizer: Aaronson-Gottesman tableau for Clifford circuits
 *    (including recognized-matrix Cliffords and Pauli/readout noise);
 *    O(n) per gate row-update, O(n^2) per measurement.
 *  - mps: bond-dimension-capped matrix product state (mps/mps_state.hpp)
 *    for wide low-entanglement circuits; O(chi^3) per 2q gate, SWAP
 *    routing for long-range pairs, tracked truncation error.
 *
 * Determinism contract: for a fixed resolved backend, counts are
 * bit-identical across thread counts (per-shot RNG streams). Across
 * different backends, counts agree in distribution only — never compare
 * them bit-wise.
 */
#ifndef QA_BACKEND_BACKEND_HPP
#define QA_BACKEND_BACKEND_HPP

#include <memory>
#include <string>

#include "backend/router.hpp"
#include "common/rng.hpp"
#include "sim/options.hpp"
#include "sim/result.hpp"
#include "sim/statevector.hpp"

namespace qa
{
namespace backend
{

/** What a backend can and cannot execute (DESIGN.md capability matrix). */
struct BackendCapabilities
{
    BackendKind kind = BackendKind::kStatevector;
    const char* name = "";

    /** Only Clifford gates (named or matrix-recognized). */
    bool clifford_only = false;

    /** Measurements and resets before the end of the circuit. */
    bool mid_circuit = false;

    /** Arbitrary Kraus channels. */
    bool kraus_noise = false;

    /** Kraus channels restricted to Pauli mixtures. */
    bool pauli_noise = false;

    /** Classical readout error. */
    bool readout_noise = false;

    /** Hard qubit bound (0 = memory-bound only). */
    int max_qubits = 0;
};

/**
 * Per-worker shot sampler: owns the mutable scratch one pool worker
 * needs, so concurrent samplers from the same PreparedCircuit never
 * share state. runOne draws only from the caller's Rng — one shot is
 * deterministic given the stream.
 */
class ShotSampler
{
  public:
    virtual ~ShotSampler() = default;

    /** Execute one shot and return the classical bitstring. */
    virtual std::string runOne(Rng& rng) = 0;
};

/**
 * The shot-invariant preparation of one job on one backend: circuit
 * analysis, prefix/tableau evolution, exact density evolution —
 * whatever the backend computes once and every shot reuses. Immutable
 * after construction; makeSampler() is thread-safe.
 */
class PreparedCircuit
{
  public:
    virtual ~PreparedCircuit() = default;

    virtual std::unique_ptr<ShotSampler> makeSampler() const = 0;

    /**
     * Cumulative truncation error the preparation accepted (discarded
     * Schmidt weight for the MPS backend's shared prefix). Exact
     * backends return 0.0. Deterministic — shot-loop truncation is
     * deliberately not aggregated here, so the value is identical for
     * any thread count.
     */
    virtual double truncationError() const { return 0.0; }
};

/**
 * A simulation backend. Stateless and shared (backendFor returns
 * process-lifetime singletons); all per-job state lives in the
 * PreparedCircuit. prepare() borrows the circuit and options.noise —
 * both must outlive the prepared run — and throws UserError when the
 * job is outside the backend's capabilities (the router exists to avoid
 * that, but direct callers get a clear error).
 */
class Backend
{
  public:
    virtual ~Backend() = default;

    virtual BackendCapabilities capabilities() const = 0;

    virtual std::shared_ptr<const PreparedCircuit>
    prepare(const QuantumCircuit& circuit,
            const SimOptions& options) const = 0;

    /** prepare + runPrepared: the one-call form. */
    Counts runShots(const QuantumCircuit& circuit,
                    const SimOptions& options) const;
};

/** The registered backend singleton for a kind. */
const Backend& backendFor(BackendKind kind);

/**
 * The pooled shot loop over a prepared circuit: runShotPool with one
 * sampler per worker and Rng::forStream(seed, shot) per shot —
 * bit-identical merged counts for any thread count, honoring the
 * deadline contract (partial counts flagged `truncated`).
 */
Counts runPrepared(const PreparedCircuit& prepared,
                   const SimOptions& options);

/** A routed, prepared job: the decision plus the prepared circuit. */
struct RoutedRun
{
    BackendChoice choice;
    std::shared_ptr<const PreparedCircuit> prepared;
};

/**
 * Route and prepare in one step. Throws UserError (kBadRequest) when an
 * explicit backend request cannot run the job; auto routing always
 * succeeds.
 */
RoutedRun prepareRun(const QuantumCircuit& circuit,
                     const SimOptions& options);

namespace detail
{
// Singleton accessors for the registered implementations (one per
// translation unit under src/backend/); reach them via backendFor.
const Backend& statevectorBackend();
const Backend& densityMatrixBackend();
const Backend& stabilizerBackend();
const Backend& mpsBackend();
} // namespace detail

} // namespace backend
} // namespace qa

#endif // QA_BACKEND_BACKEND_HPP
