/**
 * @file
 * Circuit and noise analysis for backend routing: classify a circuit by
 * its Clifford content and measurement structure, and a noise model by
 * whether its channels are Pauli mixtures, so the router can decide
 * which simulation backends are capable of a job and which is cheapest.
 *
 * Everything here is a pure function of the circuit and noise model —
 * no RNG, no clocks, no global state — which is what makes routing
 * decisions bit-identically reproducible and safe to absorb into cache
 * keys.
 */
#ifndef QA_BACKEND_ANALYZER_HPP
#define QA_BACKEND_ANALYZER_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "sim/noise.hpp"

namespace qa
{
namespace backend
{

/** Coarse circuit classification for routing and `--explain` output. */
enum class CircuitClass
{
    kClifford,        ///< every gate is Clifford
    kCliffordPlusFew, ///< a handful of non-Clifford gates
    kGeneral,         ///< substantially non-Clifford
};

const char* circuitClassName(CircuitClass klass);

/** Structural profile of one circuit, computed in a single pass. */
struct CircuitProfile
{
    int num_qubits = 0;
    int num_clbits = 0;
    size_t instructions = 0;
    size_t gates = 0;
    size_t measures = 0;
    size_t resets = 0;

    /** Gates whose unitary is not a recognized Clifford operation. */
    int non_clifford_gates = 0;

    /** Unique non-Clifford gate names, in order of first appearance. */
    std::vector<std::string> non_clifford_names;

    /**
     * True when every measurement sits in a terminal suffix of
     * measure/barrier instructions and the circuit has no resets:
     * exactly the shape density-matrix sampling can serve by reading
     * the final diagonal.
     */
    bool terminal_measure_only = false;

    /** (qubit, clbit) pairs of the terminal measurements, in order. */
    std::vector<std::pair<int, int>> terminal_measures;

    CircuitClass klass = CircuitClass::kGeneral;
};

/** Analyze a circuit; one pass plus Clifford recognition per gate. */
CircuitProfile analyzeCircuit(const QuantumCircuit& circuit);

/** What the active noise model demands of a backend. */
struct NoiseProfile
{
    bool enabled = false;

    /** Gate-level Kraus channels are attached. */
    bool kraus = false;

    /** Classical readout error is attached. */
    bool readout = false;

    /**
     * True when every attached Kraus channel is a probabilistic Pauli
     * mixture (depolarizing, bit/phase flip, ...). Such channels are
     * state-independent, so stabilizer trajectories can apply them as
     * sign-only tableau updates. Meaningless when `kraus` is false.
     */
    bool pauli_only = true;
};

NoiseProfile analyzeNoise(const NoiseModel* noise);

/**
 * Entanglement-growth heuristic for MPS routing: how much bond
 * dimension the line ordering (qubit i <-> site i) plausibly needs.
 *
 * Every multi-qubit gate spanning qubits [lo, hi] crosses the bond cuts
 * lo < k <= hi - 1... more precisely the cuts between sites (k, k+1)
 * for lo <= k < hi, and each crossing can at most double the Schmidt
 * rank at that cut. Exact rank is also bounded by the cut's Hilbert
 * dimension, min(2^(k+1), 2^(n-k-1)). The profile's needed_log2_chi is
 * the max over cuts of min(crossings, dimension exponent): a cheap
 * upper-bound estimate of log2 of the bond dimension an exact MPS run
 * would need.
 */
struct EntanglementProfile
{
    /** Largest per-cut crossing count across the line (graph width). */
    size_t max_cut_crossings = 0;

    /** log2 of the estimated exact bond dimension (see above). */
    int needed_log2_chi = 0;

    /** Widest gate arity seen (MPS lowers arity 3, rejects > 3). */
    int max_gate_arity = 0;

    /** Multi-qubit gates acting on non-adjacent qubit pairs. */
    size_t long_range_gates = 0;

    /**
     * Two-site updates an MPS run would execute: one per adjacent 2q
     * gate plus 2 * (distance - 1) routing SWAPs per long-range gate.
     */
    size_t swap_routed_ops = 0;
};

/** Analyze 2q-gate connectivity across the line ordering; pure. */
EntanglementProfile analyzeEntanglement(const QuantumCircuit& circuit);

/** Bond dimension a chi-capped run would actually reach (<= cap). */
int mpsEffectiveChi(const EntanglementProfile& ent, int chi_cap);

/**
 * Estimated truncation-error bound for running the circuit with the
 * given chi cap: 0.0 when the cap covers the estimated exact bond
 * dimension, else 1 - 2^(log2(cap) - needed_log2_chi) — the Schmidt
 * weight a flat spectrum would lose. Deliberately pessimistic for
 * peaked spectra; it gates *capability*, not correctness.
 */
double mpsTruncationBound(const EntanglementProfile& ent, int chi_cap);

/**
 * A Kraus channel recognized as a Pauli mixture: outcome i applies the
 * single-qubit Pauli with symplectic bits (x, z) = `paulis[i]` with
 * unnormalized weight `weights[i]` (the |c|^2 of K_i = c * P_i).
 */
struct PauliChannel
{
    std::vector<double> weights;
    std::vector<std::pair<uint8_t, uint8_t>> paulis;
};

/**
 * Recognize a single-qubit Kraus channel as a Pauli mixture: each Kraus
 * operator must be a complex multiple of one Pauli (coefficient
 * c = tr(P^dag K) / 2, all other Pauli coefficients ~0). Returns
 * nullopt when any operator mixes Paulis (amplitude damping et al.),
 * whose trajectory probabilities are state-dependent.
 */
std::optional<PauliChannel> recognizePauliChannel(const KrausChannel& channel);

} // namespace backend
} // namespace qa

#endif // QA_BACKEND_ANALYZER_HPP
