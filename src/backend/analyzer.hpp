/**
 * @file
 * Circuit and noise analysis for backend routing: classify a circuit by
 * its Clifford content and measurement structure, and a noise model by
 * whether its channels are Pauli mixtures, so the router can decide
 * which simulation backends are capable of a job and which is cheapest.
 *
 * Everything here is a pure function of the circuit and noise model —
 * no RNG, no clocks, no global state — which is what makes routing
 * decisions bit-identically reproducible and safe to absorb into cache
 * keys.
 */
#ifndef QA_BACKEND_ANALYZER_HPP
#define QA_BACKEND_ANALYZER_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "sim/noise.hpp"

namespace qa
{
namespace backend
{

/** Coarse circuit classification for routing and `--explain` output. */
enum class CircuitClass
{
    kClifford,        ///< every gate is Clifford
    kCliffordPlusFew, ///< a handful of non-Clifford gates
    kGeneral,         ///< substantially non-Clifford
};

const char* circuitClassName(CircuitClass klass);

/** Structural profile of one circuit, computed in a single pass. */
struct CircuitProfile
{
    int num_qubits = 0;
    int num_clbits = 0;
    size_t instructions = 0;
    size_t gates = 0;
    size_t measures = 0;
    size_t resets = 0;

    /** Gates whose unitary is not a recognized Clifford operation. */
    int non_clifford_gates = 0;

    /** Unique non-Clifford gate names, in order of first appearance. */
    std::vector<std::string> non_clifford_names;

    /**
     * True when every measurement sits in a terminal suffix of
     * measure/barrier instructions and the circuit has no resets:
     * exactly the shape density-matrix sampling can serve by reading
     * the final diagonal.
     */
    bool terminal_measure_only = false;

    /** (qubit, clbit) pairs of the terminal measurements, in order. */
    std::vector<std::pair<int, int>> terminal_measures;

    CircuitClass klass = CircuitClass::kGeneral;
};

/** Analyze a circuit; one pass plus Clifford recognition per gate. */
CircuitProfile analyzeCircuit(const QuantumCircuit& circuit);

/** What the active noise model demands of a backend. */
struct NoiseProfile
{
    bool enabled = false;

    /** Gate-level Kraus channels are attached. */
    bool kraus = false;

    /** Classical readout error is attached. */
    bool readout = false;

    /**
     * True when every attached Kraus channel is a probabilistic Pauli
     * mixture (depolarizing, bit/phase flip, ...). Such channels are
     * state-independent, so stabilizer trajectories can apply them as
     * sign-only tableau updates. Meaningless when `kraus` is false.
     */
    bool pauli_only = true;
};

NoiseProfile analyzeNoise(const NoiseModel* noise);

/**
 * A Kraus channel recognized as a Pauli mixture: outcome i applies the
 * single-qubit Pauli with symplectic bits (x, z) = `paulis[i]` with
 * unnormalized weight `weights[i]` (the |c|^2 of K_i = c * P_i).
 */
struct PauliChannel
{
    std::vector<double> weights;
    std::vector<std::pair<uint8_t, uint8_t>> paulis;
};

/**
 * Recognize a single-qubit Kraus channel as a Pauli mixture: each Kraus
 * operator must be a complex multiple of one Pauli (coefficient
 * c = tr(P^dag K) / 2, all other Pauli coefficients ~0). Returns
 * nullopt when any operator mixes Paulis (amplitude damping et al.),
 * whose trajectory probabilities are state-dependent.
 */
std::optional<PauliChannel> recognizePauliChannel(const KrausChannel& channel);

} // namespace backend
} // namespace qa

#endif // QA_BACKEND_ANALYZER_HPP
