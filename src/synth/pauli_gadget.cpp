#include "synth/pauli_gadget.hpp"

#include "common/error.hpp"

namespace qa
{

namespace
{

/** Rotate each X/Y factor of the generator onto Z (or undo it). */
void
appendBasisRotation(QuantumCircuit& circuit, const PauliString& generator,
                    const std::vector<int>& qubits, bool inverse,
                    PauliGadgetCost& cost)
{
    const int k = generator.numQubits();
    for (int j = 0; j < k; ++j) {
        const int q = qubits[size_t(j)];
        if (generator.x(j) && generator.z(j)) {
            // Y factor: C(sdg;h) maps Y -> Z, undone by h;s.
            if (inverse) {
                circuit.h(q);
                circuit.s(q);
            } else {
                circuit.sdg(q);
                circuit.h(q);
            }
            cost.gates += 2;
        } else if (generator.x(j)) {
            // X factor: h maps X -> Z (self-inverse).
            circuit.h(q);
            cost.gates += 1;
        }
    }
}

} // namespace

PauliGadgetCost
appendPauliMeasureGadget(QuantumCircuit& circuit,
                         const PauliString& generator,
                         const std::vector<int>& qubits, int clbit)
{
    const int k = generator.numQubits();
    QA_REQUIRE(size_t(k) == qubits.size(),
               "pauli gadget: generator width must match the qubit list");
    QA_REQUIRE(generator.phase() == 0 || generator.phase() == 2,
               "pauli gadget: generator must be Hermitian (+/-P)");
    for (const int q : qubits) {
        QA_REQUIRE(q >= 0 && q < circuit.numQubits(),
                   "pauli gadget: qubit index out of range");
    }
    QA_REQUIRE(clbit >= 0 && clbit < circuit.numClbits(),
               "pauli gadget: clbit index out of range");

    std::vector<int> support;
    for (int j = 0; j < k; ++j) {
        if (generator.x(j) || generator.z(j)) {
            support.push_back(qubits[size_t(j)]);
        }
    }
    QA_REQUIRE(!support.empty(),
               "pauli gadget: identity generator has no parity to measure");

    PauliGadgetCost cost;
    appendBasisRotation(circuit, generator, qubits, /*inverse=*/false, cost);

    // Fold the Z-parity of the rotated support onto its last qubit.
    for (size_t i = 0; i + 1 < support.size(); ++i) {
        circuit.cx(support[i], support[i + 1]);
        cost.gates += 1;
        cost.cx += 1;
    }

    // A -P generator stabilizes the odd-parity branch; conjugating the
    // measurement with X keeps the |0> = pass convention either way.
    const int parity = support.back();
    const bool negated = generator.phase() == 2;
    if (negated) {
        circuit.x(parity);
        cost.gates += 1;
    }
    circuit.measure(parity, clbit);
    cost.gates += 1;
    if (negated) {
        circuit.x(parity);
        cost.gates += 1;
    }

    for (size_t i = support.size() - 1; i-- > 0;) {
        circuit.cx(support[i], support[i + 1]);
        cost.gates += 1;
        cost.cx += 1;
    }
    appendBasisRotation(circuit, generator, qubits, /*inverse=*/true, cost);
    return cost;
}

} // namespace qa
