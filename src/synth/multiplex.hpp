/**
 * @file
 * Uniformly-controlled (multiplexed) rotations and exact diagonal-unitary
 * synthesis. These are the O(2^n)-CNOT building blocks behind state
 * preparation (Sec. VI-B's state-prep cost argument) and diagonal
 * controlled-U emission for NDD assertions.
 */
#ifndef QA_SYNTH_MULTIPLEX_HPP
#define QA_SYNTH_MULTIPLEX_HPP

#include <vector>

#include "circuit/circuit.hpp"

namespace qa
{

/** Rotation axis for multiplexed rotations. */
enum class RotationAxis
{
    kY,
    kZ
};

/**
 * Append a uniformly-controlled rotation: applies R(angles[w]) to
 * `target` for every control assignment w (controls[0] is the most
 * significant bit of w). angles.size() must be 2^controls.size().
 *
 * Uses the standard CX-conjugated angle-halving recursion; constant
 * angle vectors short-circuit to a single rotation.
 */
void muxRotation(QuantumCircuit& circuit, RotationAxis axis,
                 const std::vector<double>& angles,
                 const std::vector<int>& controls, int target);

/**
 * Append gates realizing diag(e^{i phases[0]}, ..., e^{i phases[2^k-1]})
 * on the listed qubits (qubits[0] = MSB of the index), exact up to one
 * global phase.
 */
void emitDiagonal(QuantumCircuit& circuit,
                  const std::vector<double>& phases,
                  const std::vector<int>& qubits);

} // namespace qa

#endif // QA_SYNTH_MULTIPLEX_HPP
