/**
 * @file
 * State preparation: synthesize a circuit C with C|0...0> = |psi> (up to
 * global phase).
 *
 * This is the paper's U for SWAP-based pure-state assertion (Sec. IV-B).
 * Structure recognizers give the hand-derived costs of the paper's
 * examples; the general path is the multiplexed-rotation disentangling
 * construction with the O(2^n) CNOT scaling cited in Sec. VI-B:
 *
 *  1. computational basis states     -> X gates only
 *  2. product (separable) states     -> one u3 per qubit
 *  3. two-term superpositions a|x> + b|y> (Bell/GHZ family)
 *                                    -> 1 rotation + CX chain (+ X)
 *  4. general states                 -> multiplexed Ry/Rz disentangling
 */
#ifndef QA_SYNTH_STATE_PREP_HPP
#define QA_SYNTH_STATE_PREP_HPP

#include <optional>

#include "circuit/circuit.hpp"
#include "linalg/vector.hpp"

namespace qa
{

/**
 * Build a preparation circuit for `target` over exactly
 * log2(target.dim()) qubits. The result contains only named basis-level
 * gates (x, u3, p, ry, rz, cx).
 */
QuantumCircuit prepareState(const CVector& target);

/**
 * Append a preparation of `target` onto the listed qubits of an existing
 * circuit (qubits[0] = most significant).
 */
void prepareStateInto(QuantumCircuit& circuit, const CVector& target,
                      const std::vector<int>& qubits);

/**
 * Build a unitary over n local qubits mapping |0...0> -> psi0 and
 * |0...01> -> psi1, when both are product states sharing an orthogonal
 * single-qubit factor at some qubit k. Costs O(n) CX: the selector bit
 * is relocated to k and drives one multiplexed single-qubit prep per
 * qubit. Returns nullopt when the structure is absent.
 */
std::optional<QuantumCircuit>
buildProductPairUnitary(const CVector& psi0, const CVector& psi1);

} // namespace qa

#endif // QA_SYNTH_STATE_PREP_HPP
