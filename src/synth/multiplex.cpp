#include "synth/multiplex.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qa
{

namespace
{

constexpr double kAngleEps = 1e-11;

bool
allNear(const std::vector<double>& angles, double value)
{
    for (double a : angles) {
        if (std::abs(a - value) > kAngleEps) return false;
    }
    return true;
}

void
emitRotation(QuantumCircuit& circuit, RotationAxis axis, int target,
             double angle)
{
    if (std::abs(angle) < kAngleEps) return;
    if (axis == RotationAxis::kY) {
        circuit.ry(target, angle);
    } else {
        circuit.rz(target, angle);
    }
}

void
muxImpl(QuantumCircuit& circuit, RotationAxis axis,
        const std::vector<double>& angles, const std::vector<int>& controls,
        int target)
{
    if (controls.empty()) {
        emitRotation(circuit, axis, target, angles[0]);
        return;
    }
    if (allNear(angles, angles[0])) {
        // Same rotation for every control value: no controls needed.
        emitRotation(circuit, axis, target, angles[0]);
        return;
    }
    // Split on the first control c: R(a_w) for c=0, R(b_w) for c=1.
    // With s = (a+b)/2 and d = (a-b)/2, R(s) CX R(d) CX applies R(s+d)=R(a)
    // when c=0 and R(s-d)=R(b) when c=1 (CX conjugation negates the
    // rotation angle for Y and Z axes).
    const size_t half = angles.size() / 2;
    std::vector<double> sum(half), diff(half);
    for (size_t i = 0; i < half; ++i) {
        sum[i] = (angles[i] + angles[i + half]) / 2.0;
        diff[i] = (angles[i] - angles[i + half]) / 2.0;
    }
    const int c = controls[0];
    const std::vector<int> rest(controls.begin() + 1, controls.end());
    const bool diff_zero = allNear(diff, 0.0);

    muxImpl(circuit, axis, sum, rest, target);
    if (!diff_zero) {
        circuit.cx(c, target);
        muxImpl(circuit, axis, diff, rest, target);
        circuit.cx(c, target);
    }
}

} // namespace

void
muxRotation(QuantumCircuit& circuit, RotationAxis axis,
            const std::vector<double>& angles,
            const std::vector<int>& controls, int target)
{
    QA_REQUIRE(angles.size() == (size_t(1) << controls.size()),
               "muxRotation needs 2^k angles");
    muxImpl(circuit, axis, angles, controls, target);
}

void
emitDiagonal(QuantumCircuit& circuit, const std::vector<double>& phases,
             const std::vector<int>& qubits)
{
    QA_REQUIRE(phases.size() == (size_t(1) << qubits.size()),
               "emitDiagonal needs 2^k phases");
    if (qubits.empty()) return;
    if (qubits.size() == 1) {
        const double delta = phases[1] - phases[0];
        if (std::abs(delta) > kAngleEps) circuit.p(qubits[0], delta);
        return;
    }
    // Phase on the first qubit via a multiplexed Rz controlled by the
    // rest; the common phase recurses onto the remaining qubits.
    // Rz(lambda) contributes -lambda/2 on |0> and +lambda/2 on |1>.
    const size_t half = phases.size() / 2;
    std::vector<double> lambda(half), common(half);
    for (size_t i = 0; i < half; ++i) {
        lambda[i] = phases[i + half] - phases[i];
        common[i] = (phases[i] + phases[i + half]) / 2.0;
    }
    const int first = qubits[0];
    const std::vector<int> rest(qubits.begin() + 1, qubits.end());
    muxRotation(circuit, RotationAxis::kZ, lambda, rest, first);
    emitDiagonal(circuit, common, rest);
}

} // namespace qa
