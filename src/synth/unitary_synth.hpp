/**
 * @file
 * General unitary synthesis: decompose an arbitrary 2^n x 2^n unitary
 * into named basis-level gates via two-level (Givens) elimination with
 * Gray-code multi-controlled gates (Nielsen & Chuang Sec. 4.5), with
 * structure recognizers for the cheap cases:
 *
 *  - tensor products of single-qubit unitaries -> per-qubit gates,
 *  - diagonal unitaries                        -> multiplexed Rz network,
 *  - GF(2) affine permutations                 -> X/CNOT-only circuits,
 *
 * plus controlled-unitary emission for the NDD assertion design.
 */
#ifndef QA_SYNTH_UNITARY_SYNTH_HPP
#define QA_SYNTH_UNITARY_SYNTH_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "linalg/matrix.hpp"

namespace qa
{

/** Full 2^n unitary implemented by a measurement-free circuit. */
CMatrix circuitUnitary(const QuantumCircuit& circuit);

/**
 * Append gates realizing `u` on the listed qubits (qubits[0] = MSB),
 * exact up to one global phase. `free_qubits` may be borrowed as dirty
 * ancillas by embedded multi-controlled gates.
 */
void synthesizeUnitaryInto(QuantumCircuit& circuit, const CMatrix& u,
                           const std::vector<int>& qubits,
                           const std::vector<int>& free_qubits = {});

/** Convenience wrapper returning a fresh n-qubit circuit. */
QuantumCircuit synthesizeUnitary(const CMatrix& u);

/**
 * Isometry synthesis: build a circuit whose unitary maps |i> onto
 * columns[i] for i < t (the remaining columns are unconstrained, chosen
 * by the construction). This is what assertion basis changes need --
 * only the correct subspace's image is fixed -- and costs O(t/2^n) of a
 * full unitary synthesis.
 */
void synthesizeIsometryInto(QuantumCircuit& circuit,
                            const std::vector<CVector>& columns,
                            const std::vector<int>& qubits,
                            const std::vector<int>& free_qubits = {});

/** Convenience wrapper returning a fresh n-qubit circuit. */
QuantumCircuit synthesizeIsometry(const std::vector<CVector>& columns,
                                  int n);

/**
 * Append gates realizing a two-level unitary: `w` acts on the amplitude
 * pair (|i>, |j>) and everything else is untouched. Exact including
 * phase.
 */
void emitTwoLevelInto(QuantumCircuit& circuit,
                      const std::vector<int>& qubits, uint64_t i,
                      uint64_t j, const CMatrix& w,
                      const std::vector<int>& free_qubits = {});

/**
 * Append gates realizing controlled-`u` (one control qubit, `u` over
 * `targets`), exact up to global phase. Dispatches on tensor-product and
 * diagonal structure before falling back to synthesizing the full
 * controlled matrix.
 */
void emitControlledUnitary(QuantumCircuit& circuit, int control,
                           const std::vector<int>& targets,
                           const CMatrix& u,
                           const std::vector<int>& free_qubits = {});

} // namespace qa

#endif // QA_SYNTH_UNITARY_SYNTH_HPP
