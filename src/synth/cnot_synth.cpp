#include "synth/cnot_synth.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qa
{

namespace
{

/** Parity of the set bits of x. */
int
parity(uint64_t x)
{
    return __builtin_popcountll(x) & 1;
}

/** Row-reduce a copy of `rows`, returning the rank. */
int
gf2Rank(std::vector<uint64_t> rows)
{
    int rank = 0;
    const int n = int(rows.size());
    for (int col = 0; col < n && rank < n; ++col) {
        int pivot = -1;
        for (int r = rank; r < n; ++r) {
            if ((rows[r] >> col) & 1) {
                pivot = r;
                break;
            }
        }
        if (pivot < 0) continue;
        std::swap(rows[rank], rows[pivot]);
        for (int r = 0; r < n; ++r) {
            if (r != rank && ((rows[r] >> col) & 1)) {
                rows[r] ^= rows[rank];
            }
        }
        ++rank;
    }
    return rank;
}

} // namespace

LinearFunction::LinearFunction(int n, std::vector<uint64_t> rows)
    : n_(n), rows_(std::move(rows))
{
    QA_REQUIRE(n >= 1 && n <= 63, "linear function size out of range");
    QA_REQUIRE(int(rows_.size()) == n, "row count mismatch");
    const uint64_t mask = (uint64_t(1) << n) - 1;
    for (uint64_t row : rows_) {
        QA_REQUIRE((row & ~mask) == 0, "row references bits beyond n");
    }
}

LinearFunction
LinearFunction::identity(int n)
{
    std::vector<uint64_t> rows(n);
    for (int i = 0; i < n; ++i) rows[i] = uint64_t(1) << i;
    return LinearFunction(n, std::move(rows));
}

uint64_t
LinearFunction::apply(uint64_t x) const
{
    uint64_t out = 0;
    for (int i = 0; i < n_; ++i) {
        if (parity(x & rows_[i])) out |= uint64_t(1) << i;
    }
    return out;
}

int
LinearFunction::rank() const
{
    return gf2Rank(rows_);
}

LinearFunction
LinearFunction::inverse() const
{
    // Gauss-Jordan on [M | I].
    std::vector<uint64_t> m = rows_;
    std::vector<uint64_t> inv = identity(n_).rows();
    int row = 0;
    for (int col = 0; col < n_; ++col) {
        int pivot = -1;
        for (int r = row; r < n_; ++r) {
            if ((m[r] >> col) & 1) {
                pivot = r;
                break;
            }
        }
        QA_REQUIRE(pivot >= 0, "linear function is not invertible");
        std::swap(m[row], m[pivot]);
        std::swap(inv[row], inv[pivot]);
        for (int r = 0; r < n_; ++r) {
            if (r != row && ((m[r] >> col) & 1)) {
                m[r] ^= m[row];
                inv[r] ^= inv[row];
            }
        }
        ++row;
    }
    return LinearFunction(n_, std::move(inv));
}

LinearFunction
LinearFunction::compose(const LinearFunction& other) const
{
    QA_REQUIRE(n_ == other.n_, "composition size mismatch");
    // (this o other)(x) = this(other(x)): row i of the result selects the
    // input bits feeding output i through both layers.
    std::vector<uint64_t> rows(n_, 0);
    for (int i = 0; i < n_; ++i) {
        for (int j = 0; j < n_; ++j) {
            if ((rows_[i] >> j) & 1) rows[i] ^= other.rows_[j];
        }
    }
    return LinearFunction(n_, std::move(rows));
}

namespace
{

/**
 * Gaussian elimination without row swaps: when the diagonal bit is
 * missing, XOR a row holding it into the pivot row (one operation
 * instead of a three-operation swap). Returns the (source, target) row
 * operations reducing M to I.
 */
std::vector<std::pair<int, int>>
eliminationOps(std::vector<uint64_t> m, int n)
{
    std::vector<std::pair<int, int>> ops;
    for (int col = 0; col < n; ++col) {
        if (!((m[col] >> col) & 1)) {
            // The donor must come from the not-yet-pivoted rows: pivot
            // rows above may carry bit `col`, but XORing one in would
            // re-pollute the columns already cleaned.
            int donor = -1;
            for (int r = col + 1; r < n; ++r) {
                if ((m[r] >> col) & 1) {
                    donor = r;
                    break;
                }
            }
            QA_REQUIRE(donor >= 0, "linear function is not invertible");
            m[col] ^= m[donor];
            ops.emplace_back(donor, col);
        }
        for (int r = 0; r < n; ++r) {
            if (r != col && ((m[r] >> col) & 1)) {
                m[r] ^= m[col];
                ops.emplace_back(col, r);
            }
        }
    }
    return ops;
}

} // namespace

QuantumCircuit
synthesizeLinear(const LinearFunction& f)
{
    const int n = f.n();

    // E_k ... E_1 M = I implies M = E_1 ... E_k; since a gate sequence
    // g1 g2 ... applies as E_{g_last} ... E_{g_1}, emitting the recorded
    // operations in REVERSE order realizes M. A CNOT circuit reversed
    // realizes the inverse map, so synthesizing M^-1 and reversing gives
    // a second candidate; keep the cheaper one.
    const std::vector<std::pair<int, int>> fwd =
        eliminationOps(f.rows(), n);
    const std::vector<std::pair<int, int>> bwd =
        eliminationOps(f.inverse().rows(), n);

    QuantumCircuit circuit(n);
    if (fwd.size() <= bwd.size()) {
        for (auto it = fwd.rbegin(); it != fwd.rend(); ++it) {
            circuit.cx(it->first, it->second);
        }
    } else {
        // Reversed circuit of M^-1: emit its (already reversed-for-
        // synthesis) ops in forward order.
        for (const auto& op : bwd) {
            circuit.cx(op.first, op.second);
        }
    }
    return circuit;
}

std::optional<AffineCompression>
findAffineCompression(const std::vector<uint64_t>& elements, int n)
{
    if (elements.empty()) return std::nullopt;
    const size_t t = elements.size();
    if ((t & (t - 1)) != 0) return std::nullopt; // not a power of two
    int m = 0;
    while ((size_t(1) << m) < t) ++m;
    if (m > n) return std::nullopt;

    const uint64_t offset = elements[0];

    // Greedily build a GF(2) basis of the difference set.
    std::vector<uint64_t> basis;    // reduced echelon pivots
    std::vector<uint64_t> raw;      // original independent differences
    for (uint64_t e : elements) {
        uint64_t v = e ^ offset;
        uint64_t reduced = v;
        for (uint64_t b : basis) {
            reduced = std::min(reduced, reduced ^ b);
        }
        if (reduced != 0) {
            basis.push_back(reduced);
            raw.push_back(v);
        }
    }
    if (int(raw.size()) != m) return std::nullopt;

    // Verify every element is offset + span(basis): since we found exactly
    // m independent differences out of 2^m distinct elements, membership
    // must be re-checked explicitly.
    auto inSpan = [&](uint64_t v) {
        uint64_t reduced = v;
        for (uint64_t b : basis) {
            reduced = std::min(reduced, reduced ^ b);
        }
        return reduced == 0;
    };
    for (uint64_t e : elements) {
        if (!inSpan(e ^ offset)) return std::nullopt;
    }

    // Parity checks of the subspace: bring the difference basis to
    // reduced row echelon form; pivot columns P carry the data, free
    // columns F become check qubits. For each free column f the check
    // vector c_f has bit f plus, for every pivot p, the bit of f in p's
    // RREF row -- and c_f is orthogonal to the whole subspace.
    std::vector<uint64_t> rref = raw;
    std::vector<int> pivot_cols;
    {
        size_t row = 0;
        for (int col = 0; col < n && row < rref.size(); ++col) {
            size_t pivot = row;
            while (pivot < rref.size() && !((rref[pivot] >> col) & 1)) {
                ++pivot;
            }
            if (pivot == rref.size()) continue;
            std::swap(rref[row], rref[pivot]);
            for (size_t r = 0; r < rref.size(); ++r) {
                if (r != row && ((rref[r] >> col) & 1)) {
                    rref[r] ^= rref[row];
                }
            }
            pivot_cols.push_back(col);
            ++row;
        }
        QA_ASSERT(int(pivot_cols.size()) == m, "RREF rank mismatch");
    }
    std::vector<bool> is_pivot(n, false);
    for (int p : pivot_cols) is_pivot[p] = true;

    // L = identity on pivot qubits; each check qubit f outputs its
    // parity check c_f. Unit-triangular up to reordering => invertible,
    // and synthesizeLinear emits one CX per non-f term of each check.
    std::vector<uint64_t> rows(n, 0);
    for (int j = 0; j < n; ++j) rows[j] = uint64_t(1) << j;
    std::vector<int> check_qubits;
    for (int f = 0; f < n; ++f) {
        if (is_pivot[f]) continue;
        uint64_t check = uint64_t(1) << f;
        for (int i = 0; i < m; ++i) {
            if ((rref[i] >> f) & 1) {
                check |= uint64_t(1) << pivot_cols[i];
            }
        }
        rows[f] = check;
        check_qubits.push_back(f);
    }
    LinearFunction l_fn(n, std::move(rows));
    QA_ASSERT(l_fn.isInvertible(), "check-based map must be invertible");

    // Sanity: every set element maps to 0 on every check qubit.
    for (uint64_t e : elements) {
        const uint64_t img = l_fn.apply(e ^ offset);
        for (int f : check_qubits) {
            QA_ASSERT(!((img >> f) & 1), "check qubit not cleared");
        }
    }

    AffineCompression out{std::move(l_fn), offset, m,
                          std::move(check_qubits)};
    return out;
}

uint64_t
basisIndexToMask(uint64_t index, int n)
{
    uint64_t mask = 0;
    for (int q = 0; q < n; ++q) {
        if ((index >> (n - 1 - q)) & 1) mask |= uint64_t(1) << q;
    }
    return mask;
}

uint64_t
maskToBasisIndex(uint64_t mask, int n)
{
    uint64_t index = 0;
    for (int q = 0; q < n; ++q) {
        if ((mask >> q) & 1) index |= uint64_t(1) << (n - 1 - q);
    }
    return index;
}

} // namespace qa
