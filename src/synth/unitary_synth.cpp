#include "synth/unitary_synth.hpp"

#include <cmath>
#include <optional>

#include "circuit/stdgates.hpp"
#include "common/error.hpp"
#include "linalg/states.hpp"
#include "sim/statevector.hpp"
#include "synth/cnot_synth.hpp"
#include "synth/factorize.hpp"
#include "synth/mcgates.hpp"
#include "synth/multiplex.hpp"
#include "synth/state_prep.hpp"
#include "synth/zyz.hpp"

namespace qa
{

CMatrix
circuitUnitary(const QuantumCircuit& circuit)
{
    const int n = circuit.numQubits();
    const size_t dim = size_t(1) << n;
    CMatrix u(dim, dim);
    for (size_t col = 0; col < dim; ++col) {
        Statevector state(CVector::basisState(dim, col));
        for (const Instruction& instr : circuit.instructions()) {
            QA_REQUIRE(instr.type == OpType::kGate ||
                           instr.type == OpType::kBarrier,
                       "circuitUnitary requires a measurement-free circuit");
            if (instr.type == OpType::kGate) state.applyGate(instr);
        }
        u.setColumn(col, state.amplitudes());
    }
    return u;
}

namespace
{

/**
 * If `u` is a permutation matrix realizing an affine GF(2) map
 * x -> L(x) ^ offset (in qubit-mask space), return (L, offset).
 */
std::optional<std::pair<LinearFunction, uint64_t>>
recognizeAffinePermutation(const CMatrix& u, int n)
{
    const size_t dim = u.rows();
    std::vector<uint64_t> perm(dim);
    for (size_t col = 0; col < dim; ++col) {
        int hits = 0;
        size_t row_hit = 0;
        for (size_t row = 0; row < dim; ++row) {
            const Complex x = u(row, col);
            if (std::abs(x) < 1e-9) continue;
            if (std::abs(x - Complex(1.0)) > 1e-9) return std::nullopt;
            ++hits;
            row_hit = row;
        }
        if (hits != 1) return std::nullopt;
        perm[col] = row_hit;
    }

    // Work in qubit-mask space where linearity is over GF(2).
    auto pi = [&](uint64_t mask) {
        return basisIndexToMask(perm[maskToBasisIndex(mask, n)], n);
    };
    const uint64_t offset = pi(0);
    // Column j of L is pi(e_j) ^ offset.
    std::vector<uint64_t> cols(n);
    for (int j = 0; j < n; ++j) {
        cols[j] = pi(uint64_t(1) << j) ^ offset;
    }
    std::vector<uint64_t> rows(n, 0);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            if ((cols[j] >> i) & 1) rows[i] |= uint64_t(1) << j;
        }
    }
    LinearFunction lin(n, rows);
    if (!lin.isInvertible()) return std::nullopt;
    for (uint64_t mask = 0; mask < dim; ++mask) {
        if ((lin.apply(mask) ^ offset) != pi(mask)) return std::nullopt;
    }
    return std::make_pair(lin, offset);
}

bool
isDiagonal(const CMatrix& u, double eps = 1e-9)
{
    for (size_t r = 0; r < u.rows(); ++r) {
        for (size_t c = 0; c < u.cols(); ++c) {
            if (r != c && std::abs(u(r, c)) > eps) return false;
        }
    }
    return true;
}

/** Two-level elimination record. */
struct Givens
{
    size_t c;
    size_t r;
    CMatrix t;
};

} // namespace

void
emitTwoLevelInto(QuantumCircuit& circuit, const std::vector<int>& qubits,
                 uint64_t i, uint64_t j, const CMatrix& w,
                 const std::vector<int>& free_qubits)
{
    QA_REQUIRE(i != j, "two-level states must differ");
    const int n = int(qubits.size());

    // Local qubits where i and j differ; the last is the rotation target,
    // the rest are walked by a Gray-code chain of pattern-controlled X.
    std::vector<int> diffs;
    for (int q = 0; q < n; ++q) {
        const uint64_t bit = uint64_t(1) << (n - 1 - q);
        if ((i & bit) != (j & bit)) diffs.push_back(q);
    }
    const int qt = diffs.back();
    const uint64_t qt_bit = uint64_t(1) << (n - 1 - qt);

    // Controls for a flip of local qubit dq at chain state `cur`.
    auto chainStep = [&](uint64_t cur, int dq) {
        std::vector<int> controls;
        uint64_t pattern = 0;
        int idx = 0;
        for (int q = 0; q < n; ++q) {
            if (q == dq) continue;
            controls.push_back(qubits[q]);
            if (cur & (uint64_t(1) << (n - 1 - q))) {
                pattern |= uint64_t(1) << idx;
            }
            ++idx;
        }
        std::vector<int> free = free_qubits;
        mcxPattern(circuit, controls, pattern, qubits[dq], free);
    };

    // Walk i toward j on all differing qubits except the target.
    std::vector<std::pair<uint64_t, int>> steps;
    uint64_t cur = i;
    for (size_t d = 0; d + 1 < diffs.size(); ++d) {
        steps.emplace_back(cur, diffs[d]);
        chainStep(cur, diffs[d]);
        cur ^= uint64_t(1) << (n - 1 - diffs[d]);
    }

    // Arrange the 2x2 so row/col 0 matches qt-bit = 0.
    CMatrix m = w;
    if (cur & qt_bit) {
        CMatrix flipped(2, 2);
        for (size_t a = 0; a < 2; ++a) {
            for (size_t b = 0; b < 2; ++b) {
                flipped(a, b) = w(1 - a, 1 - b);
            }
        }
        m = flipped;
    }

    // Pattern-controlled single-qubit gate on the target.
    {
        std::vector<int> controls;
        uint64_t pattern = 0;
        int idx = 0;
        for (int q = 0; q < n; ++q) {
            if (q == qt) continue;
            controls.push_back(qubits[q]);
            if (cur & (uint64_t(1) << (n - 1 - q))) {
                pattern |= uint64_t(1) << idx;
            }
            ++idx;
        }
        mcuPattern(circuit, controls, pattern, qubits[qt], m, free_qubits);
    }

    // Undo the chain.
    for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
        chainStep(it->first, it->second);
    }
}

void
synthesizeUnitaryInto(QuantumCircuit& circuit, const CMatrix& u,
                      const std::vector<int>& qubits,
                      const std::vector<int>& free_qubits)
{
    const int n = qubitCountForDim(u.rows());
    QA_REQUIRE(int(qubits.size()) == n,
               "qubit list does not match unitary size");
    QA_REQUIRE(u.isUnitary(1e-7), "matrix is not unitary");

    if (u.equalsUpToPhase(CMatrix::identity(u.rows()), 1e-9)) return;

    if (n == 1) {
        emitSingleQubit(circuit, qubits[0], u);
        return;
    }

    // Fast path: affine GF(2) permutation -> X/CNOT circuit.
    if (auto affine = recognizeAffinePermutation(u, n)) {
        const QuantumCircuit linear = synthesizeLinear(affine->first);
        circuit.compose(linear, qubits);
        for (int q = 0; q < n; ++q) {
            if ((affine->second >> q) & 1) circuit.x(qubits[q]);
        }
        return;
    }

    // Fast path: tensor product of single-qubit unitaries.
    if (auto factors = tensorFactorize(u)) {
        for (int q = 0; q < n; ++q) {
            emitSingleQubit(circuit, qubits[q], (*factors)[q]);
        }
        return;
    }

    // Fast path: diagonal unitary.
    if (isDiagonal(u)) {
        std::vector<double> phases(u.rows());
        for (size_t i = 0; i < u.rows(); ++i) {
            phases[i] = std::arg(u(i, i));
        }
        emitDiagonal(circuit, phases, qubits);
        return;
    }

    // General path: two-level (Givens) elimination. T_k ... T_1 U = D,
    // so U = T_1^+ ... T_k^+ D; the circuit emits D first and then the
    // daggered eliminations in reverse order.
    const size_t dim = u.rows();
    CMatrix a = u;
    std::vector<Givens> ops;
    for (size_t c = 0; c + 1 < dim; ++c) {
        for (size_t r = dim - 1; r > c; --r) {
            const Complex y = a(r, c);
            if (std::abs(y) < 1e-11) continue;
            const Complex x = a(c, c);
            const double nu =
                std::sqrt(std::norm(x) + std::norm(y));
            CMatrix t{{std::conj(x) / nu, std::conj(y) / nu},
                      {y / nu, -x / nu}};
            for (size_t col = 0; col < dim; ++col) {
                const Complex ac = a(c, col);
                const Complex ar = a(r, col);
                a(c, col) = t(0, 0) * ac + t(0, 1) * ar;
                a(r, col) = t(1, 0) * ac + t(1, 1) * ar;
            }
            ops.push_back(Givens{c, r, t});
        }
    }

    std::vector<double> phases(dim);
    for (size_t i = 0; i < dim; ++i) phases[i] = std::arg(a(i, i));
    emitDiagonal(circuit, phases, qubits);

    for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
        emitTwoLevelInto(circuit, qubits, it->c, it->r, it->t.dagger(),
                         free_qubits);
    }
}

void
synthesizeIsometryInto(QuantumCircuit& circuit,
                       const std::vector<CVector>& columns,
                       const std::vector<int>& qubits,
                       const std::vector<int>& free_qubits)
{
    QA_REQUIRE(!columns.empty(), "isometry needs at least one column");
    const size_t dim = columns[0].dim();
    const int n = qubitCountForDim(dim);
    QA_REQUIRE(int(qubits.size()) == n,
               "qubit list does not match column size");
    const size_t t = columns.size();
    QA_REQUIRE(t <= dim, "more columns than the space dimension");

    // Single column: plain state preparation is near-optimal.
    if (t == 1) {
        prepareStateInto(circuit, columns[0], qubits);
        return;
    }

    // Givens elimination restricted to the t constrained columns:
    // T_k ... T_1 A = [diag(e^{i phi}); 0], so any unitary of the form
    // U = T_1^+ ... T_k^+ D with D = diag(e^{i phi_i}, 1, ...) maps
    // |i> -> columns[i]; emit D first, then the daggered eliminations.
    CMatrix a(dim, t);
    for (size_t c = 0; c < t; ++c) {
        QA_REQUIRE(columns[c].dim() == dim, "ragged isometry columns");
        for (size_t r = 0; r < dim; ++r) a(r, c) = columns[c][r];
    }
    std::vector<Givens> ops;
    for (size_t c = 0; c < t; ++c) {
        for (size_t r = dim - 1; r > c; --r) {
            const Complex y = a(r, c);
            if (std::abs(y) < 1e-11) continue;
            const Complex x = a(c, c);
            const double nu = std::sqrt(std::norm(x) + std::norm(y));
            CMatrix tt{{std::conj(x) / nu, std::conj(y) / nu},
                       {y / nu, -x / nu}};
            for (size_t col = 0; col < t; ++col) {
                const Complex ac = a(c, col);
                const Complex ar = a(r, col);
                a(c, col) = tt(0, 0) * ac + tt(0, 1) * ar;
                a(r, col) = tt(1, 0) * ac + tt(1, 1) * ar;
            }
            ops.push_back(Givens{c, r, tt});
        }
    }
    std::vector<double> phases(dim, 0.0);
    bool any_phase = false;
    for (size_t i = 0; i < t; ++i) {
        phases[i] = std::arg(a(i, i));
        if (std::abs(phases[i]) > 1e-11) any_phase = true;
    }
    if (any_phase) emitDiagonal(circuit, phases, qubits);
    for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
        emitTwoLevelInto(circuit, qubits, it->c, it->r, it->t.dagger(),
                         free_qubits);
    }
}

QuantumCircuit
synthesizeIsometry(const std::vector<CVector>& columns, int n)
{
    QuantumCircuit circuit(n);
    std::vector<int> qubits;
    for (int q = 0; q < n; ++q) qubits.push_back(q);
    synthesizeIsometryInto(circuit, columns, qubits);
    return circuit;
}

QuantumCircuit
synthesizeUnitary(const CMatrix& u)
{
    const int n = qubitCountForDim(u.rows());
    QuantumCircuit circuit(n);
    std::vector<int> qubits;
    for (int q = 0; q < n; ++q) qubits.push_back(q);
    synthesizeUnitaryInto(circuit, u, qubits);
    return circuit;
}

void
emitControlledUnitary(QuantumCircuit& circuit, int control,
                      const std::vector<int>& targets, const CMatrix& u,
                      const std::vector<int>& free_qubits)
{
    const int n = qubitCountForDim(u.rows());
    QA_REQUIRE(int(targets.size()) == n,
               "target list does not match unitary size");

    // Tensor structure: controlled factors compose exactly (each factor's
    // controlled emission is phase-exact).
    if (auto factors = tensorFactorize(u)) {
        for (int q = 0; q < n; ++q) {
            const CMatrix& f = (*factors)[q];
            if (f.approxEquals(CMatrix::identity(2), 1e-11)) continue;
            emitControlledSingleQubit(circuit, control, targets[q], f);
        }
        return;
    }

    // Diagonal U: controlled-diagonal is a diagonal over control+targets.
    if (isDiagonal(u)) {
        std::vector<double> phases(2 * u.rows(), 0.0);
        for (size_t i = 0; i < u.rows(); ++i) {
            phases[u.rows() + i] = std::arg(u(i, i));
        }
        std::vector<int> qubits{control};
        qubits.insert(qubits.end(), targets.begin(), targets.end());
        emitDiagonal(circuit, phases, qubits);
        return;
    }

    // General: synthesize the full controlled matrix (identity outside
    // the active block keeps two-level eliminations confined to it).
    std::vector<int> qubits{control};
    qubits.insert(qubits.end(), targets.begin(), targets.end());
    synthesizeUnitaryInto(circuit, gates::controlled(u), qubits,
                          free_qubits);
}

} // namespace qa
