/**
 * @file
 * Ancilla-free Pauli parity-measurement gadget: the executable form the
 * assertion compiler lowers stabilizer assertion slots to (Proq-style
 * projector decomposition, PAPERS.md 1911.12855).
 *
 * For a signed Pauli generator +/-P the gadget rotates every X/Y factor
 * onto Z, accumulates the Z-parity of the support onto its last qubit
 * with a CX ladder, measures that qubit into one classical bit, and
 * exactly undoes the ladder and rotations. The measurement is
 * non-destructive on the asserted subspace: a +1 eigenstate passes
 * through unchanged, anything else is projected onto the measured
 * eigenspace of the generator. The recorded bit follows the paper's
 * convention: 0 = pass (state stabilized by the signed generator),
 * 1 = assertion error.
 */
#ifndef QA_SYNTH_PAULI_GADGET_HPP
#define QA_SYNTH_PAULI_GADGET_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "stab/pauli.hpp"

namespace qa
{

/** Gate budget one gadget insertion consumed. */
struct PauliGadgetCost
{
    int gates = 0; ///< Instructions appended (measure included).
    int cx = 0;    ///< CX gates within `gates`.
};

/**
 * Append the parity-measurement gadget for `generator` to `circuit`.
 * `generator` is local over qubits.size() wires; qubits[j] is the
 * program qubit hosting local wire j; the outcome lands in `clbit`.
 * The generator must be Hermitian (phase 0 or 2 — i.e. +/-P) and
 * non-identity. All emitted gates are named Cliffords, so a Clifford
 * program stays on the stabilizer backend after insertion.
 */
PauliGadgetCost appendPauliMeasureGadget(QuantumCircuit& circuit,
                                         const PauliString& generator,
                                         const std::vector<int>& qubits,
                                         int clbit);

} // namespace qa

#endif // QA_SYNTH_PAULI_GADGET_HPP
