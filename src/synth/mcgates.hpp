/**
 * @file
 * Multi-controlled gate decompositions (Barenco et al. constructions):
 *  - mcx: multi-controlled X, using dirty-ancilla ladders when spare
 *    qubits are available (linear cost) and the ancilla-free recursive
 *    controlled-sqrt construction otherwise;
 *  - mcu: multi-controlled arbitrary single-qubit unitary, exact
 *    including phases (required inside two-level synthesis);
 *  - open-control ("fires on |0>") variants via X conjugation, the
 *    building block of the paper's logical-OR assertion design.
 */
#ifndef QA_SYNTH_MCGATES_HPP
#define QA_SYNTH_MCGATES_HPP

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "linalg/matrix.hpp"

namespace qa
{

/**
 * Append a multi-controlled X: flips `target` when every control is |1>.
 *
 * @param free_qubits Distinct qubits (not among controls or target) whose
 *        state may be borrowed as dirty ancillas; they are restored.
 */
void mcx(QuantumCircuit& circuit, const std::vector<int>& controls,
         int target, const std::vector<int>& free_qubits = {});

/**
 * Multi-controlled X firing on a per-control bit pattern: control i must
 * read bit i of `pattern` (1 = closed, 0 = open control).
 */
void mcxPattern(QuantumCircuit& circuit, const std::vector<int>& controls,
                uint64_t pattern, int target,
                const std::vector<int>& free_qubits = {});

/**
 * Append a multi-controlled single-qubit unitary, exact including the
 * relative phase (uses the recursive controlled-sqrt construction; the
 * embedded MCX layers may borrow `free_qubits`).
 */
void mcu(QuantumCircuit& circuit, const std::vector<int>& controls,
         int target, const CMatrix& u,
         const std::vector<int>& free_qubits = {});

/** Pattern-controlled variant of mcu (see mcxPattern). */
void mcuPattern(QuantumCircuit& circuit, const std::vector<int>& controls,
                uint64_t pattern, int target, const CMatrix& u,
                const std::vector<int>& free_qubits = {});

} // namespace qa

#endif // QA_SYNTH_MCGATES_HPP
