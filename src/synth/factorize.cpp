#include "synth/factorize.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/states.hpp"

namespace qa
{

namespace
{

/** Extract the (a,b) block of size d from a 2d x 2d matrix. */
CMatrix
block(const CMatrix& u, size_t a, size_t b, size_t d)
{
    CMatrix out(d, d);
    for (size_t r = 0; r < d; ++r) {
        for (size_t c = 0; c < d; ++c) {
            out(r, c) = u(a * d + r, b * d + c);
        }
    }
    return out;
}

} // namespace

std::optional<std::vector<CMatrix>>
tensorFactorize(const CMatrix& u)
{
    QA_REQUIRE(u.rows() == u.cols(), "tensorFactorize needs a square matrix");
    const int n = qubitCountForDim(u.rows());
    if (n == 1) return std::vector<CMatrix>{u};

    const size_t d = u.rows() / 2;

    // Locate the strongest block; if U = A (x) B then U_ab = A[a][b] B.
    size_t best_a = 0, best_b = 0;
    double best_norm = -1.0;
    for (size_t a = 0; a < 2; ++a) {
        for (size_t b = 0; b < 2; ++b) {
            const double norm = block(u, a, b, d).frobeniusNorm();
            if (norm > best_norm) {
                best_norm = norm;
                best_a = a;
                best_b = b;
            }
        }
    }
    if (best_norm < 1e-9) return std::nullopt;

    // Candidate B (phase-ambiguous): normalize to Frobenius norm sqrt(d).
    CMatrix bmat = block(u, best_a, best_b, d) *
                   Complex(std::sqrt(double(d)) / best_norm, 0.0);
    if (!bmat.isUnitary(1e-7)) return std::nullopt;

    // Recover A by projecting each block onto B.
    CMatrix amat(2, 2);
    for (size_t a = 0; a < 2; ++a) {
        for (size_t b = 0; b < 2; ++b) {
            amat(a, b) =
                (bmat.dagger() * block(u, a, b, d)).trace() / double(d);
        }
    }
    if (!amat.isUnitary(1e-7)) return std::nullopt;
    if (!kron(amat, bmat).approxEquals(u, 1e-7)) return std::nullopt;

    auto rest = tensorFactorize(bmat);
    if (!rest) return std::nullopt;
    std::vector<CMatrix> factors{amat};
    factors.insert(factors.end(), rest->begin(), rest->end());
    return factors;
}

std::optional<std::vector<CVector>>
productStateFactorize(const CVector& psi)
{
    const int n = qubitCountForDim(psi.dim());
    CVector v = psi.normalized();
    if (n == 1) return std::vector<CVector>{v};

    const size_t half = v.dim() / 2;
    CVector r0(half), r1(half);
    for (size_t i = 0; i < half; ++i) {
        r0[i] = v[i];
        r1[i] = v[half + i];
    }

    const double n0 = r0.norm();
    const double n1 = r1.norm();
    CVector chi(half);
    Complex a, b;
    if (n0 > 1e-9) {
        chi = r0 * Complex(1.0 / n0, 0.0);
        a = n0;
        b = chi.inner(r1);
        // Verify r1 is parallel to chi.
        if (!(chi * b).approxEquals(r1, 1e-7)) return std::nullopt;
    } else {
        QA_ASSERT(n1 > 1e-9, "zero state in productStateFactorize");
        chi = r1 * Complex(1.0 / n1, 0.0);
        a = 0.0;
        b = n1;
    }

    auto rest = productStateFactorize(chi);
    if (!rest) return std::nullopt;
    std::vector<CVector> factors{CVector{a, b}};
    factors.insert(factors.end(), rest->begin(), rest->end());
    return factors;
}

} // namespace qa
