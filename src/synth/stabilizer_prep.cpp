#include "synth/stabilizer_prep.hpp"

#include <cmath>
#include <map>

#include "common/error.hpp"
#include "linalg/states.hpp"
#include "synth/cnot_synth.hpp"

namespace qa
{

namespace
{

constexpr double kAmpEps = 1e-8;

/** Nearest power-of-i exponent of a unit complex; -1 when off-grid. */
int
phaseQuarter(Complex value)
{
    if (std::abs(std::abs(value) - 1.0) > 1e-6) return -1;
    const double angle = std::arg(value);
    const double quarters = angle / (M_PI / 2.0);
    const double rounded = std::round(quarters);
    if (std::abs(quarters - rounded) > 1e-6) return -1;
    return (int(rounded) % 4 + 4) % 4;
}

} // namespace

std::optional<QuantumCircuit>
stabilizerPrepFromVector(const CVector& psi)
{
    const int n = qubitCountForDim(psi.dim());
    const CVector v = psi.normalized();

    // 1. Uniform-magnitude support of power-of-two size.
    std::vector<uint64_t> support;
    double magnitude = -1.0;
    for (uint64_t i = 0; i < v.dim(); ++i) {
        const double m = std::abs(v[i]);
        if (m < kAmpEps) continue;
        if (magnitude < 0.0) {
            magnitude = m;
        } else if (std::abs(m - magnitude) > 1e-7) {
            return std::nullopt;
        }
        support.push_back(i);
    }
    QA_ASSERT(!support.empty(), "empty state support");
    const size_t t = support.size();
    if ((t & (t - 1)) != 0) return std::nullopt;
    int m = 0;
    while ((size_t(1) << m) < t) ++m;

    // 2. Affine structure in qubit-mask space with RREF pivots.
    std::vector<uint64_t> masks;
    for (uint64_t idx : support) {
        masks.push_back(basisIndexToMask(idx, n));
    }
    uint64_t offset = masks[0];
    std::vector<uint64_t> basis;
    {
        // Greedy XOR basis of the differences.
        for (uint64_t mask : masks) {
            uint64_t reduced = mask ^ offset;
            for (uint64_t b : basis) {
                reduced = std::min(reduced, reduced ^ b);
            }
            if (reduced != 0) basis.push_back(reduced);
        }
        if (int(basis.size()) != m) return std::nullopt;
        // Reduce to RREF (each pivot appears in exactly one vector).
        for (size_t i = 0; i < basis.size(); ++i) {
            for (size_t j = 0; j < basis.size(); ++j) {
                if (i == j) continue;
                const uint64_t pivot =
                    uint64_t(1) << (63 - __builtin_clzll(basis[i]));
                if (basis[j] & pivot) basis[j] ^= basis[i];
            }
        }
        // Membership check for the whole support.
        for (uint64_t mask : masks) {
            uint64_t reduced = mask ^ offset;
            for (uint64_t b : basis) {
                reduced = std::min(reduced, reduced ^ b);
            }
            if (reduced != 0) return std::nullopt;
        }
    }
    std::vector<int> pivots;
    for (uint64_t b : basis) {
        pivots.push_back(63 - __builtin_clzll(b));
    }
    // Normalize the offset to read 0 on every pivot.
    for (size_t i = 0; i < basis.size(); ++i) {
        if ((offset >> pivots[i]) & 1) offset ^= basis[i];
    }

    // 3. Phase structure: f(c) = sum l_i c_i + 2 sum q_ij c_i c_j mod 4.
    auto maskOf = [&](uint64_t coeffs) {
        uint64_t mask = offset;
        for (int i = 0; i < m; ++i) {
            if ((coeffs >> i) & 1) mask ^= basis[i];
        }
        return mask;
    };
    const Complex base = v[maskToBasisIndex(offset, n)];
    auto f = [&](uint64_t coeffs) {
        const Complex amp = v[maskToBasisIndex(maskOf(coeffs), n)];
        return phaseQuarter(amp / base);
    };

    std::vector<int> linear(m, 0);
    for (int i = 0; i < m; ++i) {
        linear[i] = f(uint64_t(1) << i);
        if (linear[i] < 0) return std::nullopt;
    }
    std::vector<std::vector<int>> quad(m, std::vector<int>(m, 0));
    for (int i = 0; i < m; ++i) {
        for (int j = i + 1; j < m; ++j) {
            const int fij = f((uint64_t(1) << i) | (uint64_t(1) << j));
            if (fij < 0) return std::nullopt;
            const int delta = ((fij - linear[i] - linear[j]) % 4 + 4) % 4;
            if (delta % 2 != 0) return std::nullopt;
            quad[i][j] = delta / 2;
        }
    }
    // Verify the quadratic form on the full support.
    for (uint64_t c = 0; c < (uint64_t(1) << m); ++c) {
        int expected = 0;
        for (int i = 0; i < m; ++i) {
            if (!((c >> i) & 1)) continue;
            expected += linear[i];
            for (int j = i + 1; j < m; ++j) {
                if ((c >> j) & 1) expected += 2 * quad[i][j];
            }
        }
        const int got = f(c);
        if (got < 0 || got != ((expected % 4 + 4) % 4)) {
            return std::nullopt;
        }
    }

    // 4. Emit the Clifford preparation.
    QuantumCircuit prep(n);
    for (int q = 0; q < n; ++q) {
        if ((offset >> q) & 1) prep.x(q);
    }
    for (int i = 0; i < m; ++i) {
        prep.h(pivots[i]);
        for (int q = 0; q < n; ++q) {
            if (q != pivots[i] && ((basis[i] >> q) & 1)) {
                prep.cx(pivots[i], q);
            }
        }
    }
    for (int i = 0; i < m; ++i) {
        switch (linear[i]) {
          case 1: prep.s(pivots[i]); break;
          case 2: prep.z(pivots[i]); break;
          case 3: prep.sdg(pivots[i]); break;
          default: break;
        }
    }
    for (int i = 0; i < m; ++i) {
        for (int j = i + 1; j < m; ++j) {
            if (quad[i][j]) prep.cz(pivots[i], pivots[j]);
        }
    }
    return prep;
}

} // namespace qa
