#include "synth/mcgates.hpp"
#include <array>

#include <algorithm>

#include "circuit/stdgates.hpp"
#include "common/error.hpp"
#include "synth/zyz.hpp"

namespace qa
{

namespace
{

/**
 * MCX with k >= 3 controls and at least k-2 dirty ancillas: the classic
 * double Toffoli ladder. Ancilla states are arbitrary and restored.
 */
void
mcxDirtyLadder(QuantumCircuit& circuit, const std::vector<int>& controls,
               int target, const std::vector<int>& dirty)
{
    const int k = int(controls.size());
    QA_ASSERT(k >= 3 && int(dirty.size()) >= k - 2,
              "ladder needs k-2 dirty ancillas");

    // Descending ladder: target fed by (c_{k-1}, d_{k-3}), then each
    // d_{i-1} fed by (c_i, d_{i-2}), down to d_1 fed by (c_2, d_0).
    std::vector<std::array<int, 3>> desc;
    desc.push_back({controls[k - 1], dirty[k - 3], target});
    for (int i = k - 2; i >= 2; --i) {
        desc.push_back({controls[i], dirty[i - 2], dirty[i - 1]});
    }
    const std::array<int, 3> bottom = {controls[0], controls[1], dirty[0]};

    auto emit = [&](const std::array<int, 3>& t) {
        circuit.ccx(t[0], t[1], t[2]);
    };

    // P = desc + bottom + reverse(desc); Q = P without its outer pair.
    for (const auto& t : desc) emit(t);
    emit(bottom);
    for (auto it = desc.rbegin(); it != desc.rend(); ++it) emit(*it);
    for (size_t i = 1; i < desc.size(); ++i) emit(desc[i]);
    emit(bottom);
    for (size_t i = desc.size(); i-- > 1;) emit(desc[i]);
}

void mcxImpl(QuantumCircuit& circuit, const std::vector<int>& controls,
             int target, const std::vector<int>& free_qubits);

/**
 * MCX with one borrowed (dirty) qubit: split the controls in half; each
 * half's MCX borrows the other half (plus target / the dirty qubit) as
 * its own dirty ancillas. Four half-size MCX calls total.
 */
void
mcxOneDirty(QuantumCircuit& circuit, const std::vector<int>& controls,
            int target, int dirty)
{
    const int k = int(controls.size());
    QA_ASSERT(k >= 3, "halving only applies for k >= 3");
    const int h = (k + 1) / 2;
    std::vector<int> g1(controls.begin(), controls.begin() + h);
    std::vector<int> g2(controls.begin() + h, controls.end());

    std::vector<int> free_for_g1 = g2;
    free_for_g1.push_back(target);
    std::vector<int> g2_plus(g2);
    g2_plus.push_back(dirty);

    for (int round = 0; round < 2; ++round) {
        mcxImpl(circuit, g1, dirty, free_for_g1);
        mcxImpl(circuit, g2_plus, target, g1);
    }
}

/**
 * Ancilla-free multi-controlled U via the controlled-sqrt recursion:
 * C^k(U) = C(V)_{c_k,t} MCX(c_1..c_{k-1} -> c_k) C(V^+)_{c_k,t}
 *          MCX(c_1..c_{k-1} -> c_k) C^{k-1}(V)_{c_1..c_{k-1},t}
 * with V = sqrt(U). The MCX layers can borrow the target as dirty.
 */
void
mcuImpl(QuantumCircuit& circuit, const std::vector<int>& controls,
        int target, const CMatrix& u, const std::vector<int>& free_qubits)
{
    const int k = int(controls.size());
    if (k == 0) {
        emitSingleQubit(circuit, target, u);
        return;
    }
    if (k == 1) {
        emitControlledSingleQubit(circuit, controls[0], target, u);
        return;
    }
    const CMatrix v = sqrtUnitary2x2(u);
    const int ck = controls.back();
    std::vector<int> rest(controls.begin(), controls.end() - 1);

    std::vector<int> mcx_free = free_qubits;
    mcx_free.push_back(target);

    emitControlledSingleQubit(circuit, ck, target, v);
    mcxImpl(circuit, rest, ck, mcx_free);
    emitControlledSingleQubit(circuit, ck, target, v.dagger());
    mcxImpl(circuit, rest, ck, mcx_free);
    mcuImpl(circuit, rest, target, v, free_qubits);
}

void
mcxImpl(QuantumCircuit& circuit, const std::vector<int>& controls,
        int target, const std::vector<int>& free_qubits)
{
    const int k = int(controls.size());
    if (k == 0) {
        circuit.x(target);
        return;
    }
    if (k == 1) {
        circuit.cx(controls[0], target);
        return;
    }
    if (k == 2) {
        circuit.ccx(controls[0], controls[1], target);
        return;
    }
    if (int(free_qubits.size()) >= k - 2) {
        std::vector<int> dirty(free_qubits.begin(),
                               free_qubits.begin() + (k - 2));
        mcxDirtyLadder(circuit, controls, target, dirty);
        return;
    }
    if (!free_qubits.empty()) {
        mcxOneDirty(circuit, controls, target, free_qubits[0]);
        return;
    }
    mcuImpl(circuit, controls, target, gates::x(), {});
}

/** Validate that controls, target, and free qubits are all distinct. */
void
checkDisjoint(const std::vector<int>& controls, int target,
              const std::vector<int>& free_qubits)
{
    std::vector<int> all = controls;
    all.push_back(target);
    all.insert(all.end(), free_qubits.begin(), free_qubits.end());
    std::sort(all.begin(), all.end());
    QA_REQUIRE(std::adjacent_find(all.begin(), all.end()) == all.end(),
               "controls, target, and free qubits must be distinct");
}

} // namespace

void
mcx(QuantumCircuit& circuit, const std::vector<int>& controls, int target,
    const std::vector<int>& free_qubits)
{
    checkDisjoint(controls, target, free_qubits);
    mcxImpl(circuit, controls, target, free_qubits);
}

void
mcxPattern(QuantumCircuit& circuit, const std::vector<int>& controls,
           uint64_t pattern, int target,
           const std::vector<int>& free_qubits)
{
    for (size_t i = 0; i < controls.size(); ++i) {
        if (!((pattern >> i) & 1)) circuit.x(controls[i]);
    }
    mcx(circuit, controls, target, free_qubits);
    for (size_t i = 0; i < controls.size(); ++i) {
        if (!((pattern >> i) & 1)) circuit.x(controls[i]);
    }
}

void
mcu(QuantumCircuit& circuit, const std::vector<int>& controls, int target,
    const CMatrix& u, const std::vector<int>& free_qubits)
{
    QA_REQUIRE(u.rows() == 2 && u.cols() == 2 && u.isUnitary(1e-7),
               "mcu needs a 2x2 unitary");
    checkDisjoint(controls, target, free_qubits);
    mcuImpl(circuit, controls, target, u, free_qubits);
}

void
mcuPattern(QuantumCircuit& circuit, const std::vector<int>& controls,
           uint64_t pattern, int target, const CMatrix& u,
           const std::vector<int>& free_qubits)
{
    for (size_t i = 0; i < controls.size(); ++i) {
        if (!((pattern >> i) & 1)) circuit.x(controls[i]);
    }
    mcu(circuit, controls, target, u, free_qubits);
    for (size_t i = 0; i < controls.size(); ++i) {
        if (!((pattern >> i) & 1)) circuit.x(controls[i]);
    }
}

} // namespace qa
