/**
 * @file
 * GF(2) linear-reversible synthesis: CNOT-only circuits for linear
 * boolean bijections, plus the affine-subspace recognizer that gives the
 * paper's cheap approximate-assertion circuits.
 *
 * When an approximate assertion's "correct" set is a set of computational
 * basis states forming an affine subspace (e.g. {|000>, |111>} or
 * {|000>, |011>, |100>, |111>} from Fig. 1), the basis-change U^-1 can be
 * realized purely with X and CNOT gates: map the affine offset away with
 * X, then apply a linear bijection sending the subspace's span onto the
 * trailing qubits so the leading measured qubits read 0.
 *
 * Bit convention in this file: masks index qubits directly (bit j = qubit
 * j), NOT statevector basis indices. Callers convert at the boundary.
 */
#ifndef QA_SYNTH_CNOT_SYNTH_HPP
#define QA_SYNTH_CNOT_SYNTH_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "circuit/circuit.hpp"

namespace qa
{

/** Invertible linear map over GF(2)^n: output bit i = parity of
 *  (inputs & rows[i]). */
class LinearFunction
{
  public:
    /** Construct from explicit rows; validates shape. */
    LinearFunction(int n, std::vector<uint64_t> rows);

    /** Identity map on n bits. */
    static LinearFunction identity(int n);

    int n() const { return n_; }
    const std::vector<uint64_t>& rows() const { return rows_; }

    /** Apply the map to a qubit-mask input. */
    uint64_t apply(uint64_t x) const;

    /** Rank over GF(2); the map is a bijection iff rank == n. */
    int rank() const;

    /** True when the map is invertible. */
    bool isInvertible() const { return rank() == n_; }

    /** Inverse map (requires invertibility). */
    LinearFunction inverse() const;

    /** Composition: this after other. */
    LinearFunction compose(const LinearFunction& other) const;

  private:
    int n_;
    std::vector<uint64_t> rows_;
};

/**
 * Synthesize a CNOT-only circuit implementing the linear bijection on
 * `f.n()` qubits (qubit j carries bit j). Gaussian elimination; O(n^2)
 * CNOTs worst case.
 */
QuantumCircuit synthesizeLinear(const LinearFunction& f);

/** Result of recognizing an affine-subspace basis-state set. */
struct AffineCompression
{
    /** Linear bijection L with, for every v in the set, L(v ^ offset)
     *  reading 0 on every check qubit. Built from the parity checks of
     *  the subspace, so L is identity except that each check qubit
     *  accumulates its parity -- one CX chain per check. */
    LinearFunction map;

    /** Affine offset of the set. */
    uint64_t offset;

    /** log2 of the set size. */
    int m;

    /** The n - m qubits that read |0> exactly on the correct set. */
    std::vector<int> check_qubits;
};

/**
 * If `elements` (qubit-masks, distinct) form an affine subspace of
 * GF(2)^n, return a compression map; otherwise nullopt.
 */
std::optional<AffineCompression>
findAffineCompression(const std::vector<uint64_t>& elements, int n);

/** Convert a statevector basis index (qubit 0 = MSB) to a qubit-mask. */
uint64_t basisIndexToMask(uint64_t index, int n);

/** Convert a qubit-mask back to a statevector basis index. */
uint64_t maskToBasisIndex(uint64_t mask, int n);

} // namespace qa

#endif // QA_SYNTH_CNOT_SYNTH_HPP
