/**
 * @file
 * Stabilizer-state recognition and preparation. A stabilizer state's
 * amplitudes are uniform over an affine GF(2) subspace with phases
 * i^{l(c)} (-1)^{q(c)} for linear l and quadratic q; detecting that
 * structure yields a Clifford preparation circuit (X offsets, H on the
 * subspace pivots, CX fan-outs, S-family phases, CZ couplings) -- the
 * cheapest possible prep for the Bell/GHZ/cluster/graph states the
 * paper's assertions mostly target.
 */
#ifndef QA_SYNTH_STABILIZER_PREP_HPP
#define QA_SYNTH_STABILIZER_PREP_HPP

#include <optional>

#include "circuit/circuit.hpp"
#include "linalg/vector.hpp"

namespace qa
{

/**
 * If `psi` is a stabilizer state (up to global phase), return a Clifford
 * circuit preparing it from |0...0>; otherwise nullopt.
 */
std::optional<QuantumCircuit> stabilizerPrepFromVector(const CVector& psi);

} // namespace qa

#endif // QA_SYNTH_STABILIZER_PREP_HPP
