/**
 * @file
 * Single-qubit unitary decompositions: ZYZ Euler angles, u3 emission, and
 * the ABC decomposition of a controlled single-qubit gate (Barenco et al.,
 * "Elementary gates for quantum computation").
 */
#ifndef QA_SYNTH_ZYZ_HPP
#define QA_SYNTH_ZYZ_HPP

#include "circuit/circuit.hpp"
#include "linalg/matrix.hpp"

namespace qa
{

/** Euler decomposition U = e^{i alpha} Rz(beta) Ry(gamma) Rz(delta). */
struct ZyzAngles
{
    double alpha;
    double beta;
    double gamma;
    double delta;
};

/** Compute the ZYZ Euler angles of a 2x2 unitary. */
ZyzAngles zyzDecompose(const CMatrix& u);

/**
 * Rebuild the matrix from its angles (testing aid).
 */
CMatrix zyzCompose(const ZyzAngles& angles);

/**
 * Append gates realizing the 2x2 unitary `u` on qubit `q`, up to global
 * phase. Emits a single u3 (or nothing when u is a phase times identity).
 */
void emitSingleQubit(QuantumCircuit& circuit, int q, const CMatrix& u);

/**
 * Append gates realizing controlled-`u` (control c, target t) exactly,
 * including the relative phase, via the ABC decomposition:
 * CU = (phase on c) A CX B CX C with A B C = u up to phase and
 * A X B X C = I. Costs at most 2 CX and a handful of 1q gates.
 */
void emitControlledSingleQubit(QuantumCircuit& circuit, int c, int t,
                               const CMatrix& u);

/** Principal square root of a 2x2 unitary (axis-angle halving). */
CMatrix sqrtUnitary2x2(const CMatrix& u);

} // namespace qa

#endif // QA_SYNTH_ZYZ_HPP
