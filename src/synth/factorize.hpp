/**
 * @file
 * Tensor-product structure recognizers. These are the fast paths that
 * reproduce the paper's hand-derived gate counts: a parity-check NDD
 * unitary factors into Z/X factors (n CZ/CX gates), and separable states
 * factor into per-qubit preparations.
 */
#ifndef QA_SYNTH_FACTORIZE_HPP
#define QA_SYNTH_FACTORIZE_HPP

#include <optional>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace qa
{

/**
 * Try to factor a 2^n unitary as a tensor product of n 2x2 unitaries
 * (factors[0] acts on the most significant qubit). Phases are balanced so
 * the product of the factors reproduces `u` exactly.
 */
std::optional<std::vector<CMatrix>> tensorFactorize(const CMatrix& u);

/**
 * Try to factor a 2^n state vector as a tensor product of n single-qubit
 * states (factors[0] is the most significant qubit). Exact up to global
 * phase.
 */
std::optional<std::vector<CVector>>
productStateFactorize(const CVector& psi);

} // namespace qa

#endif // QA_SYNTH_FACTORIZE_HPP
