#include "synth/zyz.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/stdgates.hpp"
#include "common/error.hpp"

namespace qa
{

namespace
{

Complex
expi(double phi)
{
    return Complex(std::cos(phi), std::sin(phi));
}

} // namespace

ZyzAngles
zyzDecompose(const CMatrix& u)
{
    QA_REQUIRE(u.rows() == 2 && u.cols() == 2 && u.isUnitary(1e-7),
               "zyzDecompose needs a 2x2 unitary");
    const Complex u00 = u(0, 0), u01 = u(0, 1);
    const Complex u10 = u(1, 0), u11 = u(1, 1);

    ZyzAngles a{};
    const double m00 = std::abs(u00);
    const double m10 = std::abs(u10);
    a.gamma = 2.0 * std::atan2(m10, m00);

    if (m10 < 1e-10) {
        // Diagonal: U = e^{i alpha} diag(e^{-i beta/2}, e^{i beta/2}).
        a.delta = 0.0;
        a.beta = std::arg(u11) - std::arg(u00);
        a.alpha = std::arg(u00) + a.beta / 2.0;
    } else if (m00 < 1e-10) {
        // Antidiagonal: gamma = pi.
        a.delta = 0.0;
        a.beta = std::arg(u10) - std::arg(-u01);
        a.alpha = std::arg(u10) - a.beta / 2.0;
    } else {
        a.beta = std::arg(u10) - std::arg(u00);
        a.delta = std::arg(u11) - std::arg(u10);
        a.alpha = std::arg(u00) + (a.beta + a.delta) / 2.0;
    }
    return a;
}

CMatrix
zyzCompose(const ZyzAngles& a)
{
    CMatrix m = gates::rz(a.beta) * gates::ry(a.gamma) * gates::rz(a.delta);
    return m * expi(a.alpha);
}

void
emitSingleQubit(QuantumCircuit& circuit, int q, const CMatrix& u)
{
    QA_REQUIRE(u.rows() == 2 && u.cols() == 2 && u.isUnitary(1e-7),
               "emitSingleQubit needs a 2x2 unitary");
    if (u.equalsUpToPhase(CMatrix::identity(2), 1e-9)) return;
    const ZyzAngles a = zyzDecompose(u);
    if (std::abs(a.gamma) < 1e-10) {
        circuit.p(q, a.beta + a.delta);
    } else {
        // u3(theta, phi, lambda) = e^{i(phi+lambda)/2} Rz(phi) Ry(theta)
        // Rz(lambda), so this realizes u up to global phase.
        circuit.u3(q, a.gamma, a.beta, a.delta);
    }
}

void
emitControlledSingleQubit(QuantumCircuit& circuit, int c, int t,
                          const CMatrix& u)
{
    QA_REQUIRE(u.rows() == 2 && u.cols() == 2 && u.isUnitary(1e-7),
               "emitControlledSingleQubit needs a 2x2 unitary");
    if (u.equalsUpToPhase(gates::x(), 1e-9)) {
        // Controlled-X with a phase is CX plus a phase gate on control.
        const double phase = std::arg(u(1, 0));
        circuit.cx(c, t);
        if (std::abs(phase) > 1e-10) circuit.p(c, phase);
        return;
    }
    if (u.equalsUpToPhase(gates::z(), 1e-9)) {
        const double phase = std::arg(u(0, 0));
        circuit.cz(c, t);
        if (std::abs(phase) > 1e-10) circuit.p(c, phase);
        return;
    }

    const ZyzAngles a = zyzDecompose(u);
    // ABC decomposition: with A = Rz(beta) Ry(gamma/2),
    // B = Ry(-gamma/2) Rz(-(delta+beta)/2), C = Rz((delta-beta)/2):
    // A B C = Rz(beta) Ry(gamma) Rz(delta) and A X B X C = I, so
    // CU = P(alpha)_c . A_t . CX . B_t . CX . C_t.
    auto emitRz = [&](double theta) {
        if (std::abs(theta) > 1e-10) circuit.rz(t, theta);
    };
    auto emitRy = [&](double theta) {
        if (std::abs(theta) > 1e-10) circuit.ry(t, theta);
    };

    emitRz((a.delta - a.beta) / 2.0);           // C
    circuit.cx(c, t);
    emitRz(-(a.delta + a.beta) / 2.0);          // B
    emitRy(-a.gamma / 2.0);
    circuit.cx(c, t);
    emitRy(a.gamma / 2.0);                      // A
    emitRz(a.beta);
    if (std::abs(std::remainder(a.alpha, 2 * M_PI)) > 1e-10) {
        circuit.p(c, a.alpha);
    }
}

CMatrix
sqrtUnitary2x2(const CMatrix& u)
{
    QA_REQUIRE(u.rows() == 2 && u.cols() == 2 && u.isUnitary(1e-7),
               "sqrtUnitary2x2 needs a 2x2 unitary");
    const Complex det = u(0, 0) * u(1, 1) - u(0, 1) * u(1, 0);
    const double delta = std::arg(det) / 2.0;
    const CMatrix v = u * expi(-delta);

    double cos_theta = ((v(0, 0) + v(1, 1)) / 2.0).real();
    cos_theta = std::clamp(cos_theta, -1.0, 1.0);
    const double theta = std::acos(cos_theta);
    const double sin_theta = std::sin(theta);

    CMatrix w(2, 2);
    if (std::abs(sin_theta) < 1e-10) {
        if (cos_theta > 0.0) {
            w = CMatrix::identity(2); // V = +I.
        } else {
            // V = -I: pick sqrt = -i Z (squares to -I).
            w = CMatrix{{-kI, 0}, {0, kI}};
        }
    } else {
        // V = cos(theta) I - i sin(theta) (n . sigma).
        CMatrix n_sigma =
            (v - CMatrix::identity(2) * Complex(cos_theta, 0.0)) *
            (Complex(1.0, 0.0) / (-kI * sin_theta));
        w = CMatrix::identity(2) * Complex(std::cos(theta / 2), 0.0) -
            kI * Complex(std::sin(theta / 2), 0.0) * n_sigma;
    }
    return w * expi(delta / 2.0);
}

} // namespace qa
