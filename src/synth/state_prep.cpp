#include "synth/state_prep.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/states.hpp"
#include "linalg/eigen.hpp"
#include "synth/factorize.hpp"
#include "synth/stabilizer_prep.hpp"
#include "synth/zyz.hpp"
#include "synth/multiplex.hpp"

namespace qa
{

namespace
{

constexpr double kAmpEps = 1e-10;

/** Append a preparation of single-qubit state (a, b) from |0>. */
void
emitQubitPrep(QuantumCircuit& circuit, int q, Complex a, Complex b)
{
    const double ma = std::abs(a), mb = std::abs(b);
    if (mb < kAmpEps) return;                  // already |0> (up to phase)
    if (ma < kAmpEps) {
        circuit.x(q);                          // |1> up to phase
        return;
    }
    const double theta = 2.0 * std::atan2(mb, ma);
    const double phi = std::arg(b) - std::arg(a);
    // u3(theta, phi, 0)|0> = (cos(theta/2), e^{i phi} sin(theta/2)).
    circuit.u3(q, theta, phi, 0.0);
}

/** Preparation of a two-term superposition alpha|x> + beta|y>. */
void
emitTwoTermPrep(QuantumCircuit& circuit, const std::vector<int>& qubits,
                uint64_t x, uint64_t y, Complex alpha, Complex beta)
{
    const int n = int(qubits.size());
    // Differing local qubits; pick the first as the rotation pivot and
    // arrange for x to hold 0 there.
    std::vector<int> diff;
    for (int q = 0; q < n; ++q) {
        const uint64_t bit = uint64_t(1) << (n - 1 - q);
        if ((x & bit) != (y & bit)) diff.push_back(q);
    }
    QA_ASSERT(!diff.empty(), "two-term states must differ");
    const int pivot = diff[0];
    const uint64_t pivot_bit = uint64_t(1) << (n - 1 - pivot);
    if (x & pivot_bit) {
        std::swap(x, y);
        std::swap(alpha, beta);
    }

    // X gates reproduce x away from the pivot.
    for (int q = 0; q < n; ++q) {
        if (q == pivot) continue;
        if (x & (uint64_t(1) << (n - 1 - q))) circuit.x(qubits[q]);
    }
    emitQubitPrep(circuit, qubits[pivot], alpha, beta);
    // CX fan-out flips the remaining differing bits on the beta branch.
    for (size_t i = 1; i < diff.size(); ++i) {
        circuit.cx(qubits[pivot], qubits[diff[i]]);
    }
}

/**
 * General path: build the multiplexed-rotation disentangler D (which
 * maps |psi> to |0...0>) on local indices and return it; the caller
 * appends D^-1.
 */
QuantumCircuit
buildDisentangler(const CVector& psi, int n)
{
    QuantumCircuit dis(n);
    std::vector<Complex> amps = psi.data();

    for (int k = n; k >= 1; --k) {
        const size_t half = size_t(1) << (k - 1);
        std::vector<double> lambda(half), theta(half);
        std::vector<Complex> next(half);
        for (size_t w = 0; w < half; ++w) {
            const Complex a = amps[2 * w];
            const Complex b = amps[2 * w + 1];
            const double ma = std::abs(a), mb = std::abs(b);
            double chi;
            if (ma > kAmpEps && mb > kAmpEps) {
                lambda[w] = std::arg(a) - std::arg(b);
                chi = (std::arg(a) + std::arg(b)) / 2.0;
            } else {
                lambda[w] = 0.0;
                chi = ma > mb ? std::arg(a) : std::arg(b);
                if (ma < kAmpEps && mb < kAmpEps) chi = 0.0;
            }
            theta[w] = -2.0 * std::atan2(mb, ma);
            const double r = std::sqrt(ma * ma + mb * mb);
            next[w] = Complex(r * std::cos(chi), r * std::sin(chi));
        }
        std::vector<int> controls;
        for (int q = 0; q < k - 1; ++q) controls.push_back(q);
        muxRotation(dis, RotationAxis::kZ, lambda, controls, k - 1);
        muxRotation(dis, RotationAxis::kY, theta, controls, k - 1);
        amps = std::move(next);
    }
    return dis;
}

} // namespace

std::optional<QuantumCircuit>
buildProductPairUnitary(const CVector& psi0, const CVector& psi1)
{
    const int n = qubitCountForDim(psi0.dim());
    if (psi1.dim() != psi0.dim()) return std::nullopt;
    auto f0 = productStateFactorize(psi0);
    auto f1 = productStateFactorize(psi1);
    if (!f0 || !f1) return std::nullopt;

    int k = -1;
    for (int q = 0; q < n; ++q) {
        if (std::abs((*f0)[q].inner((*f1)[q])) < 1e-9) {
            k = q;
            break;
        }
    }
    if (k < 0) return std::nullopt;

    auto prepMatrix = [](const CVector& v) {
        CMatrix a(2, 2);
        a(0, 0) = v[0];
        a(1, 0) = v[1];
        a(0, 1) = -std::conj(v[1]);
        a(1, 1) = std::conj(v[0]);
        return a;
    };

    QuantumCircuit u(n);
    // The selector is index bit 0 = local qubit n-1; relocate it to k.
    const int s = n - 1;
    if (k != s) {
        u.cx(s, k);
        u.cx(k, s);
    }
    // Multiplexed preps: A0 unconditionally, then controlled A1 A0^-1
    // (exact including phase) selects the second branch.
    for (int q = 0; q < n; ++q) {
        if (q == k) continue;
        const CMatrix a0 = prepMatrix((*f0)[q]);
        const CMatrix a1 = prepMatrix((*f1)[q]);
        emitSingleQubit(u, q, a0);
        const CMatrix delta = a1 * a0.dagger();
        if (!delta.approxEquals(CMatrix::identity(2), 1e-11)) {
            emitControlledSingleQubit(u, k, q, delta);
        }
    }
    // The 2x2 whose columns are the orthogonal factors at k.
    CMatrix vk(2, 2);
    vk(0, 0) = (*f0)[k][0];
    vk(1, 0) = (*f0)[k][1];
    vk(0, 1) = (*f1)[k][0];
    vk(1, 1) = (*f1)[k][1];
    QA_ASSERT(vk.isUnitary(1e-8), "orthogonal factors must be unitary");
    emitSingleQubit(u, k, vk);
    return u;
}

namespace
{

/**
 * Schmidt-rank-2 preparation: if some single-qubit cut decomposes psi as
 * sqrt(l1) u1 (x) w1 + sqrt(l2) u2 (x) w2 with BOTH w_i product states,
 * then psi = U (|0..0> (x) (sqrt(l1)|0> + sqrt(l2)|1>)) for the
 * product-pair unitary U: one rotation plus O(n) CX.
 */
std::optional<QuantumCircuit>
trySchmidtTwoProductPrep(const CVector& v, int n)
{
    if (n < 2) return std::nullopt;
    const size_t dim = v.dim();
    const size_t half = dim / 2;

    for (int k = 0; k < n; ++k) {
        const int shift = n - 1 - k;
        auto at = [&](size_t a, size_t r) {
            // Compose the full index from qubit k's bit and the rest.
            const uint64_t low = r & ((uint64_t(1) << shift) - 1);
            const uint64_t high = r >> shift;
            return v[(high << (shift + 1)) | (a << shift) | low];
        };
        CMatrix rho(2, 2);
        for (size_t a = 0; a < 2; ++a) {
            for (size_t b = 0; b < 2; ++b) {
                Complex sum = 0.0;
                for (size_t r = 0; r < half; ++r) {
                    sum += at(a, r) * std::conj(at(b, r));
                }
                rho(a, b) = sum;
            }
        }
        const EigenResult eig = eigHermitian(rho);
        if (eig.values[1] < 1e-10) continue; // product cut: other paths
        CVector u1 = eig.vectors.column(0);
        CVector u2 = eig.vectors.column(1);

        auto branch = [&](const CVector& u, double lambda) {
            CVector w(half);
            for (size_t r = 0; r < half; ++r) {
                w[r] = (std::conj(u[0]) * at(0, r) +
                        std::conj(u[1]) * at(1, r)) /
                       std::sqrt(lambda);
            }
            return w;
        };
        const CVector w1 = branch(u1, eig.values[0]);
        const CVector w2 = branch(u2, eig.values[1]);
        if (!productStateFactorize(w1) || !productStateFactorize(w2)) {
            continue;
        }

        auto embed = [&](const CVector& u, const CVector& w) {
            CVector full(dim);
            for (size_t a = 0; a < 2; ++a) {
                for (size_t r = 0; r < half; ++r) {
                    const uint64_t low = r & ((uint64_t(1) << shift) - 1);
                    const uint64_t high = r >> shift;
                    full[(high << (shift + 1)) | (a << shift) | low] =
                        u[a] * w[r];
                }
            }
            return full;
        };
        auto pair_u = buildProductPairUnitary(embed(u1, w1),
                                              embed(u2, w2));
        if (!pair_u) continue;

        QuantumCircuit prep(n);
        const double theta = 2.0 * std::atan2(std::sqrt(eig.values[1]),
                                              std::sqrt(eig.values[0]));
        prep.ry(n - 1, theta);
        std::vector<int> ident;
        for (int q = 0; q < n; ++q) ident.push_back(q);
        prep.compose(*pair_u, ident);
        return prep;
    }
    return std::nullopt;
}

} // namespace

void
prepareStateInto(QuantumCircuit& circuit, const CVector& target,
                 const std::vector<int>& qubits)
{
    const int n = qubitCountForDim(target.dim());
    QA_REQUIRE(int(qubits.size()) == n,
               "qubit list does not match state size");
    const CVector v = target.normalized();

    // Collect the non-negligible amplitudes.
    std::vector<uint64_t> support;
    for (uint64_t i = 0; i < v.dim(); ++i) {
        if (std::abs(v[i]) > kAmpEps) support.push_back(i);
    }
    QA_ASSERT(!support.empty(), "state has empty support");

    if (support.size() == 1) {
        // Computational basis state: X gates only.
        for (int q = 0; q < n; ++q) {
            if (support[0] & (uint64_t(1) << (n - 1 - q))) {
                circuit.x(qubits[q]);
            }
        }
        return;
    }
    if (support.size() == 2) {
        emitTwoTermPrep(circuit, qubits, support[0], support[1],
                        v[support[0]], v[support[1]]);
        return;
    }
    if (auto factors = productStateFactorize(v)) {
        for (int q = 0; q < n; ++q) {
            emitQubitPrep(circuit, qubits[q], (*factors)[q][0],
                          (*factors)[q][1]);
        }
        return;
    }
    if (auto stab = stabilizerPrepFromVector(v)) {
        circuit.compose(*stab, qubits);
        return;
    }
    if (auto schmidt = trySchmidtTwoProductPrep(v, n)) {
        circuit.compose(*schmidt, qubits);
        return;
    }

    const QuantumCircuit prep = buildDisentangler(v, n).inverse();
    circuit.compose(prep, qubits);
}

QuantumCircuit
prepareState(const CVector& target)
{
    const int n = qubitCountForDim(target.dim());
    QuantumCircuit circuit(n);
    std::vector<int> qubits;
    for (int q = 0; q < n; ++q) qubits.push_back(q);
    prepareStateInto(circuit, target, qubits);
    return circuit;
}

} // namespace qa
