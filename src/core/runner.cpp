#include "core/runner.hpp"

#include "common/error.hpp"
#include "sim/density.hpp"

namespace qa
{

namespace
{

/** True if every listed clbit reads '0' in the bitstring. */
bool
allZero(const std::string& bits, const std::vector<int>& clbits)
{
    for (int c : clbits) {
        if (bits[c] != '0') return false;
    }
    return true;
}

} // namespace

AssertionOutcome
runAsserted(const AssertedProgram& program, const SimOptions& options)
{
    AssertionOutcome outcome;
    outcome.raw = runShots(program.circuit(), options);

    for (const AssertedProgram::Slot& slot : program.slots()) {
        outcome.slot_error_rate.push_back(outcome.raw.fraction(
            [&](const std::string& bits) {
                return !allZero(bits, slot.clbits);
            }));
    }
    const std::vector<int> assertion_bits = program.assertionClbits();
    outcome.pass_rate = outcome.raw.fractionAllZero(assertion_bits);

    const std::vector<int>& prog_bits = program.programClbits();
    outcome.program_counts = marginalCounts(outcome.raw, prog_bits);

    Counts passed;
    for (const auto& [bits, n] : outcome.raw.map) {
        if (!allZero(bits, assertion_bits)) continue;
        std::string reduced;
        for (int c : prog_bits) reduced.push_back(bits[c]);
        passed.map[reduced] += n;
        passed.shots += n;
    }
    outcome.program_counts_passed = std::move(passed);
    return outcome;
}

AssertionOutcomeExact
runAssertedExact(const AssertedProgram& program, const NoiseModel* noise)
{
    AssertionOutcomeExact outcome;
    outcome.raw = noise != nullptr && noise->enabled()
                      ? exactDistributionDM(program.circuit(), noise)
                      : exactDistribution(program.circuit());

    for (const AssertedProgram::Slot& slot : program.slots()) {
        outcome.slot_error_prob.push_back(outcome.raw.mass(
            [&](const std::string& bits) {
                return !allZero(bits, slot.clbits);
            }));
    }
    const std::vector<int> assertion_bits = program.assertionClbits();
    outcome.pass_prob = outcome.raw.allZero(assertion_bits);

    const std::vector<int>& prog_bits = program.programClbits();
    outcome.program_dist = marginalDistribution(outcome.raw, prog_bits);

    Distribution passed;
    for (const auto& [bits, p] : outcome.raw.probs) {
        if (!allZero(bits, assertion_bits)) continue;
        std::string reduced;
        for (int c : prog_bits) reduced.push_back(bits[c]);
        passed.probs[reduced] += p;
    }
    outcome.program_dist_passed = std::move(passed);
    return outcome;
}

} // namespace qa
