#include "core/runner.hpp"

#include <algorithm>

#include "backend/backend.hpp"
#include "common/error.hpp"
#include "sim/density.hpp"
#include "sim/engine.hpp"

namespace qa
{

namespace
{

/** True if every listed clbit reads '0' in the bitstring. */
bool
allZero(const std::string& bits, const std::vector<int>& clbits)
{
    for (int c : clbits) {
        if (bits[c] != '0') return false;
    }
    return true;
}

/** Restrict a raw bitstring to the program clbits, in order. */
std::string
programBits(const std::string& bits, const std::vector<int>& prog_bits)
{
    std::string reduced;
    reduced.reserve(prog_bits.size());
    for (int c : prog_bits) reduced.push_back(bits[c]);
    return reduced;
}

} // namespace

AssertionOutcome
runAsserted(const AssertedProgram& program, const SimOptions& options)
{
    AssertionOutcome outcome;
    outcome.raw = runShots(program.circuit(), options);

    for (const AssertedProgram::Slot& slot : program.slots()) {
        outcome.slot_error_rate.push_back(outcome.raw.fraction(
            [&](const std::string& bits) {
                return !allZero(bits, slot.clbits);
            }));
    }
    const std::vector<int> assertion_bits = program.assertionClbits();
    outcome.pass_rate = outcome.raw.fractionAllZero(assertion_bits);

    const std::vector<int>& prog_bits = program.programClbits();
    outcome.program_counts = marginalCounts(outcome.raw, prog_bits);

    outcome.program_counts_passed = marginalCounts(
        filterCounts(outcome.raw,
                     [&](const std::string& bits) {
                         return allZero(bits, assertion_bits);
                     }),
        prog_bits);
    return outcome;
}

AssertionOutcomeExact
runAssertedExact(const AssertedProgram& program, const NoiseModel* noise)
{
    AssertionOutcomeExact outcome;
    outcome.raw = noise != nullptr && noise->enabled()
                      ? exactDistributionDM(program.circuit(), noise)
                      : exactDistribution(program.circuit());

    for (const AssertedProgram::Slot& slot : program.slots()) {
        outcome.slot_error_prob.push_back(outcome.raw.mass(
            [&](const std::string& bits) {
                return !allZero(bits, slot.clbits);
            }));
    }
    const std::vector<int> assertion_bits = program.assertionClbits();
    outcome.pass_prob = outcome.raw.allZero(assertion_bits);

    const std::vector<int>& prog_bits = program.programClbits();
    outcome.program_dist = marginalDistribution(outcome.raw, prog_bits);

    Distribution passed;
    for (const auto& [bits, p] : outcome.raw.probs) {
        if (!allZero(bits, assertion_bits)) continue;
        passed.probs[programBits(bits, prog_bits)] += p;
    }
    outcome.program_dist_passed = std::move(passed);
    return outcome;
}

const char*
policyName(AssertionPolicy policy)
{
    switch (policy) {
      case AssertionPolicy::kAbort:   return "abort";
      case AssertionPolicy::kDiscard: return "discard";
      case AssertionPolicy::kRetry:   return "retry";
      case AssertionPolicy::kRepair:  return "repair";
    }
    return "unknown";
}

PolicyOutcome
runAssertedPolicy(const AssertedProgram& program, const SimOptions& options,
                  const PolicyOptions& popts)
{
    bool repair_supported = true;
    for (const AssertedProgram::Slot& slot : program.slots()) {
        if (slot.design != AssertionDesign::kSwap) {
            repair_supported = false;
            QA_REQUIRE_CODE(
                popts.policy != AssertionPolicy::kRepair,
                ErrorCode::kPolicyUnsupported,
                std::string("repair policy requires SWAP-based slots "
                            "(which restore the asserted state); found ") +
                    designName(slot.design));
        }
    }

    std::vector<std::vector<int>> slot_clbits;
    for (const AssertedProgram::Slot& slot : program.slots()) {
        slot_clbits.push_back(slot.clbits);
    }
    return runVariantsPolicy({program.circuit()}, slot_clbits,
                             program.programClbits(), repair_supported,
                             options, popts);
}

PolicyOutcome
runVariantsPolicy(const std::vector<QuantumCircuit>& variants,
                  const std::vector<std::vector<int>>& slot_clbits,
                  const std::vector<int>& program_clbits,
                  bool repair_supported, const SimOptions& options,
                  const PolicyOptions& popts)
{
    QA_REQUIRE(!variants.empty(), "need at least one circuit variant");
    QA_REQUIRE(options.shots > 0, "need a positive shot count");
    QA_REQUIRE(popts.max_attempts >= 1, "max_attempts must be >= 1");
    QA_REQUIRE_CODE(popts.policy != AssertionPolicy::kRepair ||
                        repair_supported,
                    ErrorCode::kPolicyUnsupported,
                    "repair policy requires slots that restore the "
                    "asserted state on every variant");
    for (const QuantumCircuit& variant : variants) {
        QA_REQUIRE(variant.numQubits() == variants[0].numQubits() &&
                       variant.numClbits() == variants[0].numClbits(),
                   "circuit variants must share the register layout");
    }
    const size_t num_variants = variants.size();

    // Route variant 0 once; the remaining variants are prepared on the
    // same resolved backend (forced explicitly) so per-shot counts stay
    // in one determinism domain.
    std::vector<backend::RoutedRun> routed;
    routed.push_back(backend::prepareRun(variants[0], options));
    if (num_variants > 1) {
        SimOptions forced = options;
        switch (routed[0].choice.backend) {
          case BackendKind::kStatevector:
            forced.backend = BackendRequest::kStatevector;
            break;
          case BackendKind::kDensityMatrix:
            forced.backend = BackendRequest::kDensityMatrix;
            break;
          case BackendKind::kStabilizer:
            forced.backend = BackendRequest::kStabilizer;
            break;
          case BackendKind::kMps:
            forced.backend = BackendRequest::kMps;
            break;
        }
        for (size_t v = 1; v < num_variants; ++v) {
            routed.push_back(backend::prepareRun(variants[v], forced));
        }
    }

    PolicyOutcome out;
    out.backend = routed[0].choice;
    for (const backend::RoutedRun& run : routed) {
        out.mps_truncation_error = std::max(
            out.mps_truncation_error, run.prepared->truncationError());
    }
    out.policy = popts.policy;
    out.shots_requested = options.shots;
    out.slot_error_rate.assign(slot_clbits.size(), 0.0);

    std::vector<long> slot_errors(slot_clbits.size(), 0);
    long passed = 0;

    if (popts.policy == AssertionPolicy::kAbort) {
        // Fail-fast is inherently ordered: run shots serially in shot
        // order and stop at the first flagged one, so the abort point is
        // deterministic.
        const ShotDeadline deadline(options.deadline_ms);
        std::vector<std::unique_ptr<backend::ShotSampler>> samplers(
            num_variants);
        for (int s = 0; s < options.shots; ++s) {
            if (deadline.active() && (s & 63) == 0 && deadline.expired()) {
                out.truncated = true;
                break;
            }
            const size_t v = size_t(s) % num_variants;
            if (samplers[v] == nullptr) {
                samplers[v] = routed[v].prepared->makeSampler();
            }
            Rng rng = Rng::forStream(options.seed, uint64_t(s));
            const std::string bits = samplers[v]->runOne(rng);
            ++out.shots_completed;
            bool any = false;
            for (size_t i = 0; i < slot_clbits.size(); ++i) {
                if (!allZero(bits, slot_clbits[i])) {
                    ++slot_errors[i];
                    any = true;
                }
            }
            if (any) {
                out.aborted = true;
                out.abort_shot = s;
                break;
            }
            ++passed;
            ++out.raw.map[bits];
            ++out.shots_accepted;
        }
    } else {
        // Pooled policies: each shot (including its retry attempts) is a
        // self-contained body depending only on the shot index, so the
        // merged result is thread-count independent.
        const int attempts = popts.policy == AssertionPolicy::kRetry
                                 ? popts.max_attempts
                                 : 1;
        struct Local
        {
            Counts raw; ///< raw.shots counts this worker's accepted shots.
            std::vector<long> slot_errors;
            long passed = 0;
            long retries = 0;
            long exhausted = 0;
            long repaired = 0;
        };
        std::vector<Local> locals;
        const ShotLoopStatus status = runShotPool(
            options.shots, options.num_threads, options.deadline_ms,
            locals, [&]() {
                // One sampler per variant per worker, created on first
                // use (a worker that never draws a variant never pays
                // for its scratch).
                auto samplers = std::make_shared<std::vector<
                    std::unique_ptr<backend::ShotSampler>>>(num_variants);
                return [&, samplers](int shot, Local& local) {
                    if (local.slot_errors.empty()) {
                        local.slot_errors.assign(slot_clbits.size(), 0);
                    }
                    const size_t v = size_t(shot) % num_variants;
                    if ((*samplers)[v] == nullptr) {
                        (*samplers)[v] = routed[v].prepared->makeSampler();
                    }
                    backend::ShotSampler& sampler = *(*samplers)[v];
                    std::string bits;
                    bool any = false;
                    for (int a = 0; a < attempts; ++a) {
                        Rng rng = Rng::forStream(
                            options.seed,
                            uint64_t(shot) * uint64_t(attempts) +
                                uint64_t(a));
                        bits = sampler.runOne(rng);
                        any = false;
                        for (size_t i = 0; i < slot_clbits.size(); ++i) {
                            const bool flagged =
                                !allZero(bits, slot_clbits[i]);
                            if (a == 0 && flagged) ++local.slot_errors[i];
                            any |= flagged;
                        }
                        if (a == 0 && !any) ++local.passed;
                        if (!any) break;
                        if (a + 1 < attempts) ++local.retries;
                    }
                    if (popts.policy == AssertionPolicy::kRepair) {
                        // Repair-capable slots re-prepared the asserted
                        // state, so the program output is usable either
                        // way.
                        ++local.raw.map[bits];
                        ++local.raw.shots;
                        if (any) ++local.repaired;
                    } else if (!any) {
                        ++local.raw.map[bits];
                        ++local.raw.shots;
                    } else if (popts.policy == AssertionPolicy::kRetry) {
                        ++local.exhausted;
                    }
                };
            });
        out.shots_completed = status.completed;
        out.truncated = status.truncated;
        for (const Local& local : locals) {
            mergeCounts(out.raw, local.raw);
            for (size_t i = 0; i < local.slot_errors.size(); ++i) {
                slot_errors[i] += local.slot_errors[i];
            }
            passed += local.passed;
            out.retries += int(local.retries);
            out.exhausted += int(local.exhausted);
            out.repaired += int(local.repaired);
        }
        out.shots_accepted = out.raw.shots;
    }

    out.raw.shots = out.shots_accepted;
    if (out.shots_completed > 0) {
        for (size_t i = 0; i < slot_clbits.size(); ++i) {
            out.slot_error_rate[i] =
                double(slot_errors[i]) / double(out.shots_completed);
        }
        out.pass_rate = double(passed) / double(out.shots_completed);
    }

    out.raw.truncated = out.truncated;
    out.program_counts = marginalCounts(out.raw, program_clbits);
    return out;
}

} // namespace qa
