/**
 * @file
 * AssertedProgram: the user-facing assertion API, mirroring the paper's
 *   assert(circuit, qubitList, stateSet, design)
 * call (Sec. VII). A program circuit is extended in place; each
 * assertState() call widens the register with the ancillas its design
 * needs, appends the assertion circuit, and records the slot metadata
 * (design used, measured classical bits, circuit cost). `design = kAuto`
 * reproduces the paper's design = NONE behaviour: estimate all three
 * designs and insert the one with the fewest CX gates.
 */
#ifndef QA_CORE_ASSERTED_PROGRAM_HPP
#define QA_CORE_ASSERTED_PROGRAM_HPP

#include <functional>
#include <vector>

#include "circuit/circuit.hpp"
#include "core/builders.hpp"
#include "core/state_set.hpp"
#include "transpile/peephole.hpp"

namespace qa
{

/** A quantum program with runtime assertions inserted. */
class AssertedProgram
{
  public:
    /** Metadata of one inserted assertion. */
    struct Slot
    {
        AssertionDesign design;       ///< Resolved design (never kAuto).
        std::vector<int> qubits;      ///< Qubits under test.
        std::vector<int> ancillas;    ///< Ancillas allocated for the slot.
        std::vector<int> clbits;      ///< Classical bits holding outcomes.
        CircuitCost cost;             ///< Cost of the assertion fragment.
    };

    /** Wrap a (measurement-free) program circuit. */
    explicit AssertedProgram(const QuantumCircuit& program);

    /** Append more program gates (same width as the original program). */
    void append(const QuantumCircuit& fragment);

    /**
     * Insert an assertion that the listed program qubits are in (resp.
     * within) `set`. Returns the slot index.
     */
    int assertState(const std::vector<int>& qubits, const StateSet& set,
                    AssertionDesign design = AssertionDesign::kAuto,
                    SwapPlacement placement =
                        SwapPlacement::kInvBeforePrepAfter);

    /**
     * Insert a custom assertion fragment (used by the baseline schemes):
     * `builder` receives the allocated context and must return a
     * fragment of matching width whose measured clbits use the |0> =
     * pass convention. Returns the slot index.
     */
    int addCustomAssertion(
        int num_ancillas, int num_clbits,
        const std::function<QuantumCircuit(const BuildContext&)>& builder);

    /** Measure every program qubit into a fresh classical bit. */
    void measureProgram();

    /** The full circuit built so far (program + assertions). */
    const QuantumCircuit& circuit() const { return circ_; }

    int numProgramQubits() const { return program_qubits_; }
    const std::vector<Slot>& slots() const { return slots_; }

    /** Classical bits holding the program's own measurements. */
    const std::vector<int>& programClbits() const { return program_clbits_; }

    /** All classical bits belonging to assertion slots. */
    std::vector<int> assertionClbits() const;

  private:
    void widen(int extra_qubits, int extra_clbits);

    /** Take `count` ancillas from the free pool, widening as needed. */
    std::vector<int> acquireAncillas(int count);

    /** Reset the ancillas to |0> and return them to the pool. */
    void releaseAncillas(const std::vector<int>& ancillas);

    int program_qubits_;
    QuantumCircuit circ_;
    std::vector<Slot> slots_;
    std::vector<int> program_clbits_;
    std::vector<int> ancilla_pool_;
};

/**
 * Estimate the cost of asserting `set` with the given design without
 * inserting anything (used by kAuto and by the cost tables).
 */
CircuitCost estimateAssertionCost(
    const StateSet& set, AssertionDesign design,
    SwapPlacement placement = SwapPlacement::kInvBeforePrepAfter);

} // namespace qa

#endif // QA_CORE_ASSERTED_PROGRAM_HPP
