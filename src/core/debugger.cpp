#include "core/debugger.hpp"

#include "common/error.hpp"
#include "core/runner.hpp"
#include "sim/statevector.hpp"

namespace qa
{

SlotDebugger::SlotDebugger(std::vector<QuantumCircuit> program,
                           std::vector<QuantumCircuit> reference)
    : program_(std::move(program)), reference_(std::move(reference))
{
    QA_REQUIRE(!program_.empty(), "debugger needs at least one stage");
    QA_REQUIRE(program_.size() == reference_.size(),
               "program and reference must have the same stage count");
    const int width = program_[0].numQubits();
    for (const auto& stage : program_) {
        QA_REQUIRE(stage.numQubits() == width,
                   "all program stages must share one width");
        QA_REQUIRE(stage.countMeasure() == 0,
                   "stages must be measurement free");
    }
    for (const auto& stage : reference_) {
        QA_REQUIRE(stage.numQubits() == width,
                   "reference width mismatch");
        QA_REQUIRE(stage.countMeasure() == 0,
                   "reference stages must be measurement free");
    }
}

double
SlotDebugger::slotErrorProb(int slot, AssertionDesign design) const
{
    QA_REQUIRE(slot >= 1 && slot <= numSlots(), "slot out of range");
    const int width = program_[0].numQubits();
    std::vector<int> ident;
    for (int q = 0; q < width; ++q) ident.push_back(q);

    // Expected state: reference prefix (Fig. 16's precalculated V_s).
    QuantumCircuit ref_prefix(width);
    for (int s = 0; s < slot; ++s) ref_prefix.compose(reference_[s], ident);
    const CVector expected = finalState(ref_prefix).amplitudes();

    QuantumCircuit prefix(width);
    for (int s = 0; s < slot; ++s) prefix.compose(program_[s], ident);
    AssertedProgram asserted(prefix);
    asserted.assertState(ident, StateSet::pure(expected), design);
    return runAssertedExact(asserted).slot_error_prob[0];
}

SlotDebugReport
SlotDebugger::run(AssertionDesign design) const
{
    SlotDebugReport report;
    report.slot_error_prob.assign(size_t(numSlots()), -1.0);
    for (int slot = 1; slot <= numSlots(); ++slot) {
        const double err = slotErrorProb(slot, design);
        report.slot_error_prob[slot - 1] = err;
        ++report.evaluations;
        if (err > 1e-9 && report.first_failing_slot < 0) {
            report.first_failing_slot = slot;
        }
    }
    return report;
}

SlotDebugReport
SlotDebugger::bisect(AssertionDesign design) const
{
    SlotDebugReport report;
    report.slot_error_prob.assign(size_t(numSlots()), -1.0);

    auto evaluate = [&](int slot) {
        if (report.slot_error_prob[slot - 1] < 0.0) {
            report.slot_error_prob[slot - 1] =
                slotErrorProb(slot, design);
            ++report.evaluations;
        }
        return report.slot_error_prob[slot - 1] > 1e-9;
    };

    // Find the first failing slot assuming failure is suffix-closed
    // (true whenever stages never map a wrong prefix state back onto
    // the expected one).
    if (!evaluate(numSlots())) {
        // Last slot passes: either the program is clean or a stage
        // re-aligned the state; sweep defensively backwards.
        for (int slot = numSlots() - 1; slot >= 1; --slot) {
            if (evaluate(slot)) {
                report.first_failing_slot = slot;
                // keep searching earlier failures
            } else if (report.first_failing_slot > 0) {
                break;
            }
        }
        return report;
    }

    int lo = 1, hi = numSlots(); // hi fails
    while (lo < hi) {
        const int mid = (lo + hi) / 2;
        if (evaluate(mid)) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    report.first_failing_slot = hi;
    // Verify the neighbour: guards the suffix-closure assumption.
    if (hi > 1 && evaluate(hi - 1)) {
        report.first_failing_slot = hi - 1;
    }
    return report;
}

} // namespace qa
