/**
 * @file
 * SlotDebugger: automation of the paper's Sec. IX debugging workflow.
 * A program is split into stages with an assertion slot after each; the
 * expected slot states are computed from a reference (assumed-correct)
 * implementation, exactly like Fig. 16's precalculated V1..V6. The
 * debugger evaluates the slots (linearly or by bisection) and reports
 * the stage range that must contain the first bug.
 *
 * Localization quality is validated campaign-style: checkLocalization
 * (src/inject/campaign.hpp) injects every (stage x location x kind)
 * fault and checks the reported suspect stage against the injected one.
 */
#ifndef QA_CORE_DEBUGGER_HPP
#define QA_CORE_DEBUGGER_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "core/builders.hpp"

namespace qa
{

/** Localization result. */
struct SlotDebugReport
{
    /** Exact per-slot assertion-error probabilities; slots evaluated
     *  lazily by bisect() hold -1. Index s = slot after stage s. */
    std::vector<double> slot_error_prob;

    /** 1-based first failing slot; -1 when every slot passes. */
    int first_failing_slot = -1;

    /** Number of slot evaluations performed (bisection does O(log S)). */
    int evaluations = 0;

    /** True when a bug was localized. */
    bool bugFound() const { return first_failing_slot > 0; }

    /**
     * The stage index (0-based) whose gates must contain the first
     * divergence: the gates between the last passing slot and the first
     * failing one. Only meaningful when bugFound().
     */
    int
    suspectStage() const
    {
        return first_failing_slot - 1;
    }
};

/** Assertion-driven slot debugger. */
class SlotDebugger
{
  public:
    /**
     * @param program Stages of the program under test (all the same
     *        width; executed in order).
     * @param reference Stages of the bug-free reference implementation
     *        used to precalculate the expected slot states.
     */
    SlotDebugger(std::vector<QuantumCircuit> program,
                 std::vector<QuantumCircuit> reference);

    int numSlots() const { return int(program_.size()); }

    /** Evaluate every slot (the paper's manual process). */
    SlotDebugReport run(AssertionDesign design = AssertionDesign::kSwap)
        const;

    /**
     * Bisect: O(log S) slot evaluations. Sound because a precise
     * assertion slot passes with certainty iff the prefix state is
     * exactly the expected one, and the first divergence persists...
     * ALMOST always: a later stage can in principle map a wrong state
     * back onto the right one, making a later slot pass. bisect()
     * therefore verifies its answer by also checking the slot before
     * the reported one.
     */
    SlotDebugReport bisect(
        AssertionDesign design = AssertionDesign::kSwap) const;

    /** Exact error probability of a single slot (1-based). */
    double slotErrorProb(int slot, AssertionDesign design) const;

  private:
    std::vector<QuantumCircuit> program_;
    std::vector<QuantumCircuit> reference_;
};

} // namespace qa

#endif // QA_CORE_DEBUGGER_HPP
