/**
 * @file
 * Assertion execution and reporting: run an AssertedProgram (sampled or
 * exact, with or without noise), compute per-slot assertion-error rates,
 * and post-select the program's outcomes on assertion success — the
 * error-filtering use of assertions the paper measures in Sec. IX-B.
 */
#ifndef QA_CORE_RUNNER_HPP
#define QA_CORE_RUNNER_HPP

#include "backend/router.hpp"
#include "core/asserted_program.hpp"
#include "sim/noise.hpp"
#include "sim/result.hpp"
#include "sim/statevector.hpp"

namespace qa
{

/** Sampled (shot-based) assertion run report. */
struct AssertionOutcome
{
    /** Fraction of shots where the slot flagged an error. */
    std::vector<double> slot_error_rate;

    /** Fraction of shots where no assertion flagged an error. */
    double pass_rate = 1.0;

    /** Program-clbit histogram over all shots. */
    Counts program_counts;

    /** Program-clbit histogram post-selected on assertion success. */
    Counts program_counts_passed;

    /** Full raw histogram over every classical bit. */
    Counts raw;
};

/** Run with the statevector backend (trajectory noise if configured). */
AssertionOutcome runAsserted(const AssertedProgram& program,
                             const SimOptions& options);

/** Exact (probability) assertion run report. */
struct AssertionOutcomeExact
{
    std::vector<double> slot_error_prob;
    double pass_prob = 1.0;
    Distribution program_dist;
    Distribution program_dist_passed;
    Distribution raw;
};

/**
 * Exact distribution run: statevector branching when `noise` is null,
 * density-matrix evolution with exact channels otherwise.
 */
AssertionOutcomeExact runAssertedExact(const AssertedProgram& program,
                                       const NoiseModel* noise = nullptr);

/**
 * Reaction to a failing assertion slot during a shot run. The paper's
 * evaluation only post-selects (Sec. IX-B error filtering); a hardened
 * runner needs the full range from fail-fast to self-repair.
 */
enum class AssertionPolicy
{
    /** Stop the run at the first shot with a flagged slot. */
    kAbort,

    /** Post-select: drop flagged shots from the program output (the
     *  paper's Sec. IX-B filtering; the default). */
    kDiscard,

    /** Re-execute a flagged shot with fresh per-attempt randomness up
     *  to a bounded attempt count; discard if every attempt flags. */
    kRetry,

    /** Keep flagged shots: valid when every slot uses the SWAP-based
     *  design, which re-prepares the asserted state on the tested
     *  qubits regardless of the measured outcome (Sec. IV), so the
     *  program continued from a repaired state. */
    kRepair
};

/** Human-readable policy name. */
const char* policyName(AssertionPolicy policy);

/** Recovery-policy configuration for runAssertedPolicy. */
struct PolicyOptions
{
    AssertionPolicy policy = AssertionPolicy::kDiscard;

    /** Total attempts per shot under kRetry (>= 1). */
    int max_attempts = 3;
};

/**
 * Shot-level report of a policy run. Detector statistics
 * (slot_error_rate, pass_rate) are always measured on the first attempt
 * of each completed shot; the policy only decides which shots reach the
 * accepted program output.
 */
struct PolicyOutcome
{
    AssertionPolicy policy = AssertionPolicy::kDiscard;

    /** Accepted shots' program-clbit histogram. */
    Counts program_counts;

    /** Accepted shots' full raw histogram (every classical bit). */
    Counts raw;

    /** First-attempt fraction of completed shots flagging each slot. */
    std::vector<double> slot_error_rate;

    /** First-attempt fraction of completed shots with no flagged slot. */
    double pass_rate = 1.0;

    int shots_requested = 0;

    /** Shots whose first attempt executed (deadline may truncate). */
    int shots_completed = 0;

    /** Shots contributing to program_counts / raw. */
    int shots_accepted = 0;

    /** Extra attempts consumed under kRetry. */
    int retries = 0;

    /** kRetry shots discarded after max_attempts flagged attempts. */
    int exhausted = 0;

    /** kRepair shots kept despite at least one flagged slot. */
    int repaired = 0;

    /** True when kAbort stopped the run early. */
    bool aborted = false;

    /** First failing shot index under kAbort (-1 otherwise). */
    int abort_shot = -1;

    /** True when the deadline cancelled the run before all shots ran. */
    bool truncated = false;

    /** Which simulation backend the router resolved for this run. */
    backend::BackendChoice backend;

    /**
     * Cumulative prepare-time truncation error (max across circuit
     * variants) when the run resolved to the MPS backend; 0.0 on the
     * exact backends. Deterministic for any thread count.
     */
    double mps_truncation_error = 0.0;
};

/**
 * Run the program's circuit shot by shot, reacting to flagged assertion
 * slots per `policy`. Seeded runs are bit-identical for any thread
 * count (per-shot/per-attempt counter-based RNG streams) unless
 * truncated by options.deadline_ms. kRepair requires every slot to use
 * the SWAP-based design and throws UserError
 * (ErrorCode::kPolicyUnsupported) otherwise.
 */
PolicyOutcome runAssertedPolicy(const AssertedProgram& program,
                                const SimOptions& options,
                                const PolicyOptions& policy);

/**
 * Generalized policy loop over sub-circuit variants: shot s executes
 * variants[s % variants.size()], slot verdicts are read from
 * `slot_clbits` (all-zero = pass), and the accepted program histogram
 * is the marginal over `program_clbits`. This is the execution engine
 * behind the assertion compiler's kPauliSample lowering (acomp/run.hpp)
 * and the delegation target of runAssertedPolicy (single variant —
 * bit-identical to the historical behavior).
 *
 * Variant 0 is routed normally; the other variants are forced onto the
 * same resolved backend so counts merge under one determinism domain.
 * All variants must share the qubit/clbit layout. kRepair requires
 * `repair_supported` (the caller vouches every slot restores the
 * asserted state) and throws UserError(kPolicyUnsupported) otherwise.
 */
PolicyOutcome runVariantsPolicy(const std::vector<QuantumCircuit>& variants,
                                const std::vector<std::vector<int>>& slot_clbits,
                                const std::vector<int>& program_clbits,
                                bool repair_supported,
                                const SimOptions& options,
                                const PolicyOptions& policy);

} // namespace qa

#endif // QA_CORE_RUNNER_HPP
