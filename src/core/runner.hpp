/**
 * @file
 * Assertion execution and reporting: run an AssertedProgram (sampled or
 * exact, with or without noise), compute per-slot assertion-error rates,
 * and post-select the program's outcomes on assertion success — the
 * error-filtering use of assertions the paper measures in Sec. IX-B.
 */
#ifndef QA_CORE_RUNNER_HPP
#define QA_CORE_RUNNER_HPP

#include "core/asserted_program.hpp"
#include "sim/noise.hpp"
#include "sim/result.hpp"
#include "sim/statevector.hpp"

namespace qa
{

/** Sampled (shot-based) assertion run report. */
struct AssertionOutcome
{
    /** Fraction of shots where the slot flagged an error. */
    std::vector<double> slot_error_rate;

    /** Fraction of shots where no assertion flagged an error. */
    double pass_rate = 1.0;

    /** Program-clbit histogram over all shots. */
    Counts program_counts;

    /** Program-clbit histogram post-selected on assertion success. */
    Counts program_counts_passed;

    /** Full raw histogram over every classical bit. */
    Counts raw;
};

/** Run with the statevector backend (trajectory noise if configured). */
AssertionOutcome runAsserted(const AssertedProgram& program,
                             const SimOptions& options);

/** Exact (probability) assertion run report. */
struct AssertionOutcomeExact
{
    std::vector<double> slot_error_prob;
    double pass_prob = 1.0;
    Distribution program_dist;
    Distribution program_dist_passed;
    Distribution raw;
};

/**
 * Exact distribution run: statevector branching when `noise` is null,
 * density-matrix evolution with exact channels otherwise.
 */
AssertionOutcomeExact runAssertedExact(const AssertedProgram& program,
                                       const NoiseModel* noise = nullptr);

} // namespace qa

#endif // QA_CORE_RUNNER_HPP
