#include "core/asserted_program.hpp"

#include "common/error.hpp"

namespace qa
{

namespace
{

/** Build a standalone assertion fragment for costing or insertion. */
QuantumCircuit
buildFragment(const CorrectSubspace& subspace, AssertionDesign design,
              SwapPlacement placement, const BuildContext& ctx)
{
    switch (design) {
      case AssertionDesign::kSwap:
        return buildSwapAssertion(subspace, ctx, placement);
      case AssertionDesign::kOr:
        return buildOrAssertion(subspace, ctx);
      case AssertionDesign::kNdd:
        return buildNddAssertion(subspace, ctx);
      case AssertionDesign::kProq:
        return buildProqAssertion(subspace, ctx);
      case AssertionDesign::kCustom:
      case AssertionDesign::kAuto:
        break;
    }
    QA_FAIL("buildFragment needs a concrete design");
}

AssertionPlan
planFor(const CorrectSubspace& subspace, AssertionDesign design,
        SwapPlacement placement)
{
    switch (design) {
      case AssertionDesign::kSwap:
        return planSwapAssertion(subspace, placement);
      case AssertionDesign::kOr:
        return planOrAssertion(subspace);
      case AssertionDesign::kNdd:
        return planNddAssertion(subspace);
      case AssertionDesign::kProq:
        return planProqAssertion(subspace);
      case AssertionDesign::kCustom:
      case AssertionDesign::kAuto:
        break;
    }
    QA_FAIL("planFor needs a concrete design");
}

/** Cost a design against a hypothetical standalone layout. */
CircuitCost
costDesign(const CorrectSubspace& subspace, AssertionDesign design,
           SwapPlacement placement, const std::vector<int>& free_qubits,
           int base_qubits)
{
    const AssertionPlan plan = planFor(subspace, design, placement);
    BuildContext ctx;
    ctx.total_qubits = base_qubits + plan.num_ancillas;
    ctx.total_clbits = plan.num_clbits;
    for (int q = 0; q < subspace.n; ++q) ctx.qubits.push_back(q);
    for (int a = 0; a < plan.num_ancillas; ++a) {
        ctx.ancillas.push_back(base_qubits + a);
    }
    for (int c = 0; c < plan.num_clbits; ++c) ctx.clbits.push_back(c);
    ctx.free_qubits = free_qubits;

    const QuantumCircuit frag =
        buildFragment(subspace, design, placement, ctx);
    CircuitCost cost = circuitCost(frag);
    cost.ancilla = plan.num_ancillas;
    return cost;
}

} // namespace

AssertedProgram::AssertedProgram(const QuantumCircuit& program)
    : program_qubits_(program.numQubits()), circ_(program)
{
    QA_REQUIRE(program.countMeasure() == 0,
               "assertions must be inserted before final measurement");
}

void
AssertedProgram::append(const QuantumCircuit& fragment)
{
    QA_REQUIRE(fragment.numQubits() <= circ_.numQubits(),
               "fragment wider than the program");
    std::vector<int> ident;
    for (int q = 0; q < fragment.numQubits(); ++q) ident.push_back(q);
    circ_.compose(fragment, ident);
}

void
AssertedProgram::widen(int extra_qubits, int extra_clbits)
{
    if (extra_qubits == 0 && extra_clbits == 0) return;
    QuantumCircuit wider(circ_.numQubits() + extra_qubits,
                         circ_.numClbits() + extra_clbits);
    std::vector<int> qmap, cmap;
    for (int q = 0; q < circ_.numQubits(); ++q) qmap.push_back(q);
    for (int c = 0; c < circ_.numClbits(); ++c) cmap.push_back(c);
    wider.compose(circ_, qmap, cmap);
    circ_ = std::move(wider);
}

int
AssertedProgram::assertState(const std::vector<int>& qubits,
                             const StateSet& set, AssertionDesign design,
                             SwapPlacement placement)
{
    QA_REQUIRE(int(qubits.size()) == set.numQubits(),
               "qubit list does not match the state size");
    for (int q : qubits) {
        QA_REQUIRE(q >= 0 && q < program_qubits_,
                   "assertions apply to program qubits");
    }
    const CorrectSubspace subspace = analyzeStateSet(set);

    // Program qubits not under test may serve as dirty ancillas.
    std::vector<int> free_qubits;
    for (int q = 0; q < program_qubits_; ++q) {
        bool tested = false;
        for (int t : qubits) tested |= (t == q);
        if (!tested) free_qubits.push_back(q);
    }

    AssertionDesign resolved = design;
    if (design == AssertionDesign::kAuto) {
        // The paper's design = NONE: pick the least CX count.
        const AssertionDesign candidates[] = {AssertionDesign::kSwap,
                                              AssertionDesign::kOr,
                                              AssertionDesign::kNdd};
        int best_cx = -1, best_sg = -1;
        for (AssertionDesign cand : candidates) {
            const CircuitCost cost = costDesign(
                subspace, cand, placement, free_qubits, program_qubits_);
            const bool better =
                best_cx < 0 || cost.cx < best_cx ||
                (cost.cx == best_cx && cost.sg < best_sg);
            if (better) {
                best_cx = cost.cx;
                best_sg = cost.sg;
                resolved = cand;
            }
        }
    }

    const AssertionPlan plan = planFor(subspace, resolved, placement);
    const int first_clbit = circ_.numClbits();
    widen(0, plan.num_clbits);

    BuildContext ctx;
    ctx.qubits = qubits;
    ctx.ancillas = acquireAncillas(plan.num_ancillas);
    ctx.total_qubits = circ_.numQubits();
    ctx.total_clbits = circ_.numClbits();
    for (int c = 0; c < plan.num_clbits; ++c) {
        ctx.clbits.push_back(first_clbit + c);
    }
    ctx.free_qubits = free_qubits;

    const QuantumCircuit frag =
        buildFragment(subspace, resolved, placement, ctx);

    std::vector<int> qmap, cmap;
    for (int q = 0; q < circ_.numQubits(); ++q) qmap.push_back(q);
    for (int c = 0; c < circ_.numClbits(); ++c) cmap.push_back(c);
    circ_.compose(frag, qmap, cmap);
    releaseAncillas(ctx.ancillas);

    Slot slot;
    slot.design = resolved;
    slot.qubits = qubits;
    slot.ancillas = ctx.ancillas;
    slot.clbits = ctx.clbits;
    slot.cost = circuitCost(frag);
    slot.cost.ancilla = plan.num_ancillas;
    slots_.push_back(std::move(slot));
    return int(slots_.size()) - 1;
}

std::vector<int>
AssertedProgram::acquireAncillas(int count)
{
    std::vector<int> out;
    while (int(out.size()) < count && !ancilla_pool_.empty()) {
        out.push_back(ancilla_pool_.back());
        ancilla_pool_.pop_back();
    }
    const int missing = count - int(out.size());
    if (missing > 0) {
        const int first = circ_.numQubits();
        widen(missing, 0);
        for (int a = 0; a < missing; ++a) out.push_back(first + a);
    }
    return out;
}

void
AssertedProgram::releaseAncillas(const std::vector<int>& ancillas)
{
    // Reset before recycling: measured ancillas hold classical junk and
    // the kLarge embedding ancilla may hold residue on error branches.
    for (int a : ancillas) {
        circ_.reset(a);
        ancilla_pool_.push_back(a);
    }
}

void
AssertedProgram::measureProgram()
{
    const int first_clbit = circ_.numClbits();
    widen(0, program_qubits_);
    program_clbits_.clear();
    for (int q = 0; q < program_qubits_; ++q) {
        circ_.measure(q, first_clbit + q);
        program_clbits_.push_back(first_clbit + q);
    }
}

int
AssertedProgram::addCustomAssertion(
    int num_ancillas, int num_clbits,
    const std::function<QuantumCircuit(const BuildContext&)>& builder)
{
    const int first_clbit = circ_.numClbits();
    widen(0, num_clbits);

    BuildContext ctx;
    ctx.ancillas = acquireAncillas(num_ancillas);
    ctx.total_qubits = circ_.numQubits();
    ctx.total_clbits = circ_.numClbits();
    for (int c = 0; c < num_clbits; ++c) {
        ctx.clbits.push_back(first_clbit + c);
    }

    const QuantumCircuit frag = builder(ctx);
    QA_REQUIRE(frag.numQubits() == circ_.numQubits() &&
                   frag.numClbits() == circ_.numClbits(),
               "custom fragment width mismatch");
    std::vector<int> qmap, cmap;
    for (int q = 0; q < circ_.numQubits(); ++q) qmap.push_back(q);
    for (int c = 0; c < circ_.numClbits(); ++c) cmap.push_back(c);
    circ_.compose(frag, qmap, cmap);
    releaseAncillas(ctx.ancillas);

    Slot slot;
    slot.design = AssertionDesign::kCustom;
    slot.ancillas = ctx.ancillas;
    slot.clbits = ctx.clbits;
    slot.cost = circuitCost(frag);
    slot.cost.ancilla = num_ancillas;
    slots_.push_back(std::move(slot));
    return int(slots_.size()) - 1;
}

std::vector<int>
AssertedProgram::assertionClbits() const
{
    std::vector<int> out;
    for (const Slot& slot : slots_) {
        out.insert(out.end(), slot.clbits.begin(), slot.clbits.end());
    }
    return out;
}

CircuitCost
estimateAssertionCost(const StateSet& set, AssertionDesign design,
                      SwapPlacement placement)
{
    QA_REQUIRE(design != AssertionDesign::kAuto,
               "estimate a concrete design");
    const CorrectSubspace subspace = analyzeStateSet(set);
    return costDesign(subspace, design, placement, {}, subspace.n);
}

} // namespace qa
