#include "core/builders.hpp"

#include <cmath>
#include <optional>

#include "common/error.hpp"
#include "linalg/gram_schmidt.hpp"
#include "synth/cnot_synth.hpp"
#include "synth/factorize.hpp"
#include "synth/mcgates.hpp"
#include "synth/zyz.hpp"
#include "synth/multiplex.hpp"
#include "synth/state_prep.hpp"
#include "synth/unitary_synth.hpp"

namespace qa
{

const char*
designName(AssertionDesign design)
{
    switch (design) {
      case AssertionDesign::kSwap: return "swap";
      case AssertionDesign::kOr: return "logical-or";
      case AssertionDesign::kNdd: return "ndd";
      case AssertionDesign::kProq: return "proq";
      case AssertionDesign::kCustom: return "custom";
      case AssertionDesign::kAuto: return "auto";
    }
    return "?";
}

RankRegime
classifyRank(size_t t, int n, int* m)
{
    const size_t full = size_t(1) << n;
    QA_REQUIRE(t >= 1 && t <= full, "rank out of range");
    int floor_log = 0;
    while ((size_t(1) << (floor_log + 1)) <= t) ++floor_log;
    if (m != nullptr) *m = floor_log;
    if (t == full) return RankRegime::kFull;
    if ((t & (t - 1)) == 0) return RankRegime::kPower;
    if (t > full / 2) return RankRegime::kLarge;
    return RankRegime::kBetween;
}

std::pair<std::vector<CVector>, std::vector<CVector>>
buildSupersets(const CorrectSubspace& subspace, int m)
{
    const size_t t = subspace.rank();
    const size_t target = size_t(1) << (m + 1);
    const size_t extra = target - t;
    const size_t dim = size_t(1) << subspace.n;

    const std::vector<CVector> full = completeBasis(subspace.basis, dim);
    QA_REQUIRE(t + 2 * extra <= dim,
               "not enough orthogonal complement for disjoint supersets");

    std::vector<CVector> s1(subspace.basis);
    std::vector<CVector> s2(subspace.basis);
    for (size_t i = 0; i < extra; ++i) {
        s1.push_back(full[t + i]);
        s2.push_back(full[t + extra + i]);
    }
    return {s1, s2};
}

std::vector<CVector>
buildExtendedBasis(const CorrectSubspace& subspace)
{
    const size_t dim = size_t(1) << subspace.n;
    const size_t t = subspace.rank();
    const std::vector<CVector> full = completeBasis(subspace.basis, dim);

    auto embed = [dim](const CVector& v, bool upper_half) {
        CVector out(2 * dim);
        for (size_t i = 0; i < dim; ++i) {
            out[(upper_half ? dim : 0) + i] = v[i];
        }
        return out;
    };

    std::vector<CVector> extended;
    for (size_t i = 0; i < t; ++i) {
        extended.push_back(embed(full[i], false)); // |0>|psi_i>: correct
    }
    for (size_t i = t; i < dim; ++i) {
        extended.push_back(embed(full[i], true)); // |1>|c_j>: virtual
    }
    QA_ASSERT(extended.size() == dim, "extended basis must have rank 2^n");
    return extended;
}

namespace
{

/** Local detection of computational-basis-state vectors. */
bool
collectBasisIndices(const std::vector<CVector>& basis,
                    std::vector<uint64_t>* indices)
{
    indices->clear();
    for (const CVector& b : basis) {
        int hits = 0;
        uint64_t idx = 0;
        for (uint64_t i = 0; i < b.dim(); ++i) {
            if (std::abs(b[i]) > 1e-8) {
                ++hits;
                idx = i;
            }
        }
        if (hits != 1) return false;
        indices->push_back(idx);
    }
    return true;
}


} // namespace

BasisChange
buildBasisChange(const std::vector<CVector>& basis, int n)
{
    QA_REQUIRE(!basis.empty(), "empty basis");
    const size_t dim = size_t(1) << n;

    BasisChange bc{QuantumCircuit(n), QuantumCircuit(n), {}, {}};

    if (basis.size() == 1) {
        bc.u = prepareState(basis[0]);
        bc.uinv = bc.u.inverse();
        for (int q = 0; q < n; ++q) bc.flag_qubits.push_back(q);
        bc.correct_indices = {0};
        return bc;
    }

    // Affine computational-basis sets: X/CNOT-only circuits reading the
    // subspace's parity checks into the check qubits.
    std::vector<uint64_t> indices;
    if (collectBasisIndices(basis, &indices)) {
        std::vector<uint64_t> masks;
        for (uint64_t idx : indices) {
            masks.push_back(basisIndexToMask(idx, n));
        }
        if (auto comp = findAffineCompression(masks, n)) {
            QuantumCircuit uinv(n);
            for (int q = 0; q < n; ++q) {
                if ((comp->offset >> q) & 1) uinv.x(q);
            }
            const QuantumCircuit linear = synthesizeLinear(comp->map);
            std::vector<int> ident;
            for (int q = 0; q < n; ++q) ident.push_back(q);
            uinv.compose(linear, ident);
            bc.uinv = uinv;
            bc.u = uinv.inverse();
            bc.flag_qubits = comp->check_qubits;
            uint64_t flag_mask = 0;
            for (int f : bc.flag_qubits) {
                flag_mask |= uint64_t(1) << (n - 1 - f);
            }
            for (uint64_t i = 0; i < dim; ++i) {
                if ((i & flag_mask) == 0) bc.correct_indices.push_back(i);
            }
            return bc;
        }
    }

    // Rank-2 orthogonal-product fast path: O(n) CX.
    if (auto pair_u = basis.size() == 2
                          ? buildProductPairUnitary(basis[0], basis[1])
                          : std::nullopt) {
        bc.u = std::move(*pair_u);
        bc.uinv = bc.u.inverse();
    } else {
        // General path: synthesize an isometry whose leading columns
        // are the correct states (the remaining columns are
        // unconstrained, which is dramatically cheaper than completing
        // and synthesizing the full 2^n x 2^n unitary).
        bc.u = synthesizeIsometry(basis, n);
        bc.uinv = bc.u.inverse();
    }
    // The correct subspace maps onto the leading column indices; when t
    // is a power of two those indices are exactly the states whose
    // leading n - m qubits read zero.
    const size_t t = basis.size();
    for (uint64_t i = 0; i < t; ++i) bc.correct_indices.push_back(i);
    if ((t & (t - 1)) == 0) {
        int m = 0;
        while ((size_t(1) << m) < t) ++m;
        for (int q = 0; q < n - m; ++q) bc.flag_qubits.push_back(q);
    }
    return bc;
}

namespace
{

/** Optimized 2-CX swap, valid when `anc` is known to be |0>. */
void
emitZeroSwap(QuantumCircuit& frag, int src, int anc)
{
    frag.cx(src, anc);
    frag.cx(anc, src);
}

/**
 * Emit one power-rank SWAP assertion: `basis` has 2^m orthonormal states
 * over ctx.qubits (k = n - m leading qubits are measured via ancillas).
 */
void
emitSwapPower(QuantumCircuit& frag, const std::vector<CVector>& basis,
              const std::vector<int>& qubits,
              const std::vector<int>& ancillas,
              const std::vector<int>& clbits, SwapPlacement placement)
{
    const int n = int(qubits.size());
    int m = 0;
    while ((size_t(1) << m) < basis.size()) ++m;
    const int k = n - m;
    QA_REQUIRE(int(ancillas.size()) >= k && int(clbits.size()) >= k,
               "not enough ancillas/clbits for the SWAP assertion");

    const BasisChange bc = buildBasisChange(basis, n);
    QA_ASSERT(int(bc.flag_qubits.size()) == k,
              "basis change flag count mismatch");
    const bool pure = m == 0;

    if (!pure || placement == SwapPlacement::kInvBeforePrepAfter) {
        // Fig. 3 / Fig. 8 shape: U^-1, optimized swaps of the flag
        // qubits, measure, restore with U.
        frag.compose(bc.uinv, qubits);
        for (int i = 0; i < k; ++i) {
            emitZeroSwap(frag, qubits[bc.flag_qubits[i]], ancillas[i]);
        }
        for (int i = 0; i < k; ++i) {
            frag.measure(ancillas[i], clbits[i]);
        }
        frag.compose(bc.u, qubits);
        return;
    }

    std::vector<int> anc(ancillas.begin(), ancillas.begin() + k);
    switch (placement) {
      case SwapPlacement::kInvBeforePrepBefore:
        // Fig. 6: prepare |psi0> on the ancillas, U^-1 on the tested
        // wires, full swaps; tested wires end up holding |psi0>.
        frag.compose(bc.u, anc);
        frag.compose(bc.uinv, qubits);
        for (int i = 0; i < k; ++i) frag.swap(qubits[i], anc[i]);
        break;
      case SwapPlacement::kInvAfterPrepBefore:
        frag.compose(bc.u, anc);
        for (int i = 0; i < k; ++i) frag.swap(qubits[i], anc[i]);
        frag.compose(bc.uinv, anc);
        break;
      case SwapPlacement::kInvAfterPrepAfter:
        for (int i = 0; i < k; ++i) {
            emitZeroSwap(frag, qubits[i], anc[i]);
        }
        frag.compose(bc.uinv, anc);
        break;
      case SwapPlacement::kInvBeforePrepAfter:
        QA_ASSERT(false, "handled above");
    }
    for (int i = 0; i < k; ++i) {
        frag.measure(anc[i], clbits[i]);
    }
    if (placement == SwapPlacement::kInvAfterPrepAfter) {
        frag.compose(bc.u, qubits);
    }
}

std::vector<int>
subRange(const std::vector<int>& v, size_t begin, size_t count)
{
    QA_ASSERT(begin + count <= v.size(), "subRange out of bounds");
    return std::vector<int>(v.begin() + begin, v.begin() + begin + count);
}

} // namespace

AssertionPlan
planSwapAssertion(const CorrectSubspace& subspace, SwapPlacement)
{
    int m = 0;
    const RankRegime regime = classifyRank(subspace.rank(), subspace.n, &m);
    AssertionPlan plan;
    switch (regime) {
      case RankRegime::kFull:
        QA_FAIL("rank-2^n state sets are unassertable: every state is "
                "'correct'");
      case RankRegime::kPower:
        plan.num_ancillas = subspace.n - m;
        plan.num_clbits = subspace.n - m;
        break;
      case RankRegime::kBetween:
        plan.num_ancillas = 2 * (subspace.n - (m + 1));
        plan.num_clbits = plan.num_ancillas;
        break;
      case RankRegime::kLarge:
        plan.num_ancillas = 2; // embedding qubit + measured swap ancilla
        plan.num_clbits = 1;
        break;
    }
    return plan;
}

QuantumCircuit
buildSwapAssertion(const CorrectSubspace& subspace, const BuildContext& ctx,
                   SwapPlacement placement)
{
    QA_REQUIRE(int(ctx.qubits.size()) == subspace.n,
               "qubit list does not match the state size");
    int m = 0;
    const RankRegime regime = classifyRank(subspace.rank(), subspace.n, &m);
    QuantumCircuit frag(ctx.total_qubits, ctx.total_clbits);

    switch (regime) {
      case RankRegime::kFull:
        QA_FAIL("rank-2^n state sets are unassertable");
      case RankRegime::kPower:
        emitSwapPower(frag, subspace.basis, ctx.qubits, ctx.ancillas,
                      ctx.clbits, placement);
        break;
      case RankRegime::kBetween: {
        const auto supersets = buildSupersets(subspace, m);
        const size_t k = subspace.n - (m + 1);
        emitSwapPower(frag, supersets.first, ctx.qubits,
                      subRange(ctx.ancillas, 0, k),
                      subRange(ctx.clbits, 0, k), placement);
        emitSwapPower(frag, supersets.second, ctx.qubits,
                      subRange(ctx.ancillas, k, k),
                      subRange(ctx.clbits, k, k), placement);
        break;
      }
      case RankRegime::kLarge: {
        const std::vector<CVector> extended = buildExtendedBasis(subspace);
        std::vector<int> ext_qubits{ctx.ancillas[0]};
        ext_qubits.insert(ext_qubits.end(), ctx.qubits.begin(),
                          ctx.qubits.end());
        emitSwapPower(frag, extended, ext_qubits, {ctx.ancillas[1]},
                      {ctx.clbits[0]},
                      SwapPlacement::kInvBeforePrepAfter);
        break;
      }
    }
    return frag;
}

namespace
{

/** Emit one power-rank logical-OR assertion. */
void
emitOrPower(QuantumCircuit& frag, const std::vector<CVector>& basis,
            const std::vector<int>& qubits, int flag, int clbit,
            const std::vector<int>& free_qubits)
{
    const int n = int(qubits.size());
    int m = 0;
    while ((size_t(1) << m) < basis.size()) ++m;
    const int k = n - m;

    const BasisChange bc = buildBasisChange(basis, n);
    QA_ASSERT(int(bc.flag_qubits.size()) == k,
              "basis change flag count mismatch");
    std::vector<int> controls;
    std::vector<bool> is_flag(n, false);
    for (int f : bc.flag_qubits) {
        controls.push_back(qubits[f]);
        is_flag[f] = true;
    }

    frag.compose(bc.uinv, qubits);
    if (k == 1) {
        // A single flag qubit is its own error indicator.
        frag.cx(controls[0], flag);
    } else {
        // Open-controlled MCX fires when all flag qubits are |0> (no
        // error); the X then inverts to the |1> = error convention.
        std::vector<int> free = free_qubits;
        for (int i = 0; i < n; ++i) {
            if (!is_flag[i]) free.push_back(qubits[i]);
        }
        mcxPattern(frag, controls, 0, flag, free);
        frag.x(flag);
    }
    frag.measure(flag, clbit);
    frag.compose(bc.u, qubits);
}

} // namespace

AssertionPlan
planOrAssertion(const CorrectSubspace& subspace)
{
    int m = 0;
    const RankRegime regime = classifyRank(subspace.rank(), subspace.n, &m);
    AssertionPlan plan;
    switch (regime) {
      case RankRegime::kFull:
        QA_FAIL("rank-2^n state sets are unassertable");
      case RankRegime::kPower:
        // The n-controlled OR gate decomposes linearly given one
        // borrowed qubit [5][24]; allocate a helper when the flag MCX
        // is wide and no tested qubit is left over to borrow.
        plan.num_ancillas = (subspace.n - m >= 3 && m == 0) ? 2 : 1;
        plan.num_clbits = 1;
        break;
      case RankRegime::kBetween:
        plan.num_ancillas = 2;
        plan.num_clbits = 2;
        break;
      case RankRegime::kLarge:
        plan.num_ancillas = 2; // embedding qubit + flag
        plan.num_clbits = 1;
        break;
    }
    return plan;
}

QuantumCircuit
buildOrAssertion(const CorrectSubspace& subspace, const BuildContext& ctx)
{
    QA_REQUIRE(int(ctx.qubits.size()) == subspace.n,
               "qubit list does not match the state size");
    int m = 0;
    const RankRegime regime = classifyRank(subspace.rank(), subspace.n, &m);
    QuantumCircuit frag(ctx.total_qubits, ctx.total_clbits);

    switch (regime) {
      case RankRegime::kFull:
        QA_FAIL("rank-2^n state sets are unassertable");
      case RankRegime::kPower: {
        std::vector<int> free = ctx.free_qubits;
        for (size_t a = 1; a < ctx.ancillas.size(); ++a) {
            free.push_back(ctx.ancillas[a]); // helper ancilla
        }
        emitOrPower(frag, subspace.basis, ctx.qubits, ctx.ancillas[0],
                    ctx.clbits[0], free);
        break;
      }
      case RankRegime::kBetween: {
        const auto supersets = buildSupersets(subspace, m);
        emitOrPower(frag, supersets.first, ctx.qubits, ctx.ancillas[0],
                    ctx.clbits[0], ctx.free_qubits);
        emitOrPower(frag, supersets.second, ctx.qubits, ctx.ancillas[1],
                    ctx.clbits[1], ctx.free_qubits);
        break;
      }
      case RankRegime::kLarge: {
        const std::vector<CVector> extended = buildExtendedBasis(subspace);
        std::vector<int> ext_qubits{ctx.ancillas[0]};
        ext_qubits.insert(ext_qubits.end(), ctx.qubits.begin(),
                          ctx.qubits.end());
        emitOrPower(frag, extended, ext_qubits, ctx.ancillas[1],
                    ctx.clbits[0], ctx.free_qubits);
        break;
      }
    }
    return frag;
}

namespace
{

/** Emit one power-rank projective (Proq) assertion. */
void
emitProqPower(QuantumCircuit& frag, const std::vector<CVector>& basis,
              const std::vector<int>& qubits,
              const std::vector<int>& clbits)
{
    const int n = int(qubits.size());
    int m = 0;
    while ((size_t(1) << m) < basis.size()) ++m;
    const int k = n - m;
    QA_REQUIRE(int(clbits.size()) >= k, "not enough clbits for Proq");

    const BasisChange bc = buildBasisChange(basis, n);
    QA_ASSERT(int(bc.flag_qubits.size()) == k,
              "basis change flag count mismatch");
    // Direct mid-circuit projective measurement of the flag qubits,
    // then gates after measurement to restore the basis: exactly the
    // architectural support the paper argues real devices lack.
    frag.compose(bc.uinv, qubits);
    for (int i = 0; i < k; ++i) {
        frag.measure(qubits[bc.flag_qubits[i]], clbits[i]);
    }
    frag.compose(bc.u, qubits);
}

} // namespace

AssertionPlan
planProqAssertion(const CorrectSubspace& subspace)
{
    int m = 0;
    const RankRegime regime = classifyRank(subspace.rank(), subspace.n, &m);
    AssertionPlan plan;
    switch (regime) {
      case RankRegime::kFull:
        QA_FAIL("rank-2^n state sets are unassertable");
      case RankRegime::kPower:
        plan.num_clbits = subspace.n - m;
        break;
      case RankRegime::kBetween:
        plan.num_clbits = 2 * (subspace.n - (m + 1));
        break;
      case RankRegime::kLarge:
        plan.num_ancillas = 1; // embedding qubit only
        plan.num_clbits = 1;
        break;
    }
    return plan;
}

QuantumCircuit
buildProqAssertion(const CorrectSubspace& subspace, const BuildContext& ctx)
{
    QA_REQUIRE(int(ctx.qubits.size()) == subspace.n,
               "qubit list does not match the state size");
    int m = 0;
    const RankRegime regime = classifyRank(subspace.rank(), subspace.n, &m);
    QuantumCircuit frag(ctx.total_qubits, ctx.total_clbits);

    switch (regime) {
      case RankRegime::kFull:
        QA_FAIL("rank-2^n state sets are unassertable");
      case RankRegime::kPower:
        emitProqPower(frag, subspace.basis, ctx.qubits, ctx.clbits);
        break;
      case RankRegime::kBetween: {
        const auto supersets = buildSupersets(subspace, m);
        const size_t k = subspace.n - (m + 1);
        emitProqPower(frag, supersets.first, ctx.qubits,
                      subRange(ctx.clbits, 0, k));
        emitProqPower(frag, supersets.second, ctx.qubits,
                      subRange(ctx.clbits, k, k));
        break;
      }
      case RankRegime::kLarge: {
        const std::vector<CVector> extended = buildExtendedBasis(subspace);
        std::vector<int> ext_qubits{ctx.ancillas[0]};
        ext_qubits.insert(ext_qubits.end(), ctx.qubits.begin(),
                          ctx.qubits.end());
        emitProqPower(frag, extended, ext_qubits, {ctx.clbits[0]});
        break;
      }
    }
    return frag;
}

AssertionPlan
planNddAssertion(const CorrectSubspace& subspace)
{
    const RankRegime regime =
        classifyRank(subspace.rank(), subspace.n, nullptr);
    QA_REQUIRE(regime != RankRegime::kFull,
               "rank-2^n state sets are unassertable");
    AssertionPlan plan;
    plan.num_ancillas = 1;
    plan.num_clbits = 1;
    return plan;
}

QuantumCircuit
buildNddAssertion(const CorrectSubspace& subspace, const BuildContext& ctx)
{
    QA_REQUIRE(int(ctx.qubits.size()) == subspace.n,
               "qubit list does not match the state size");
    const RankRegime regime =
        classifyRank(subspace.rank(), subspace.n, nullptr);
    QA_REQUIRE(regime != RankRegime::kFull,
               "rank-2^n state sets are unassertable");

    // U = 2P - I has eigenvalue +1 on correct states and -1 on incorrect
    // ones; the phase-kickback circuit H . CU . H reads the eigenvalue
    // into the ancilla. A single circuit covers every rank regime.
    const size_t dim = size_t(1) << subspace.n;
    CMatrix u = subspace.projector() * Complex(2.0, 0.0) -
                CMatrix::identity(dim);
    QA_ASSERT(u.isUnitary(1e-7), "2P - I must be unitary");

    QuantumCircuit frag(ctx.total_qubits, ctx.total_clbits);
    const int anc = ctx.ancillas[0];
    frag.h(anc);
    if (tensorFactorize(u).has_value()) {
        // Pauli-tensor structure (parity checks): per-factor controlled
        // gates (the circuits of Fig. 13 / Fig. 14).
        emitControlledUnitary(frag, anc, ctx.qubits, u, ctx.free_qubits);
    } else {
        // General reflection: U = V (2 Pi_t - I) V^dagger with V the
        // basis change, so CU = (I (x) V) . C-D . (I (x) V^dagger) where
        // D = diag(+1 x t, -1 x rest) -- the V layers need no control and
        // the controlled part is a plain diagonal.
        const BasisChange bc = buildBasisChange(subspace.basis, subspace.n);
        std::vector<double> phases(2 * dim, M_PI);
        for (size_t i = 0; i < dim; ++i) phases[i] = 0.0;
        for (uint64_t i : bc.correct_indices) phases[dim + i] = 0.0;
        std::vector<int> diag_qubits{anc};
        diag_qubits.insert(diag_qubits.end(), ctx.qubits.begin(),
                           ctx.qubits.end());
        frag.compose(bc.uinv, ctx.qubits);
        emitDiagonal(frag, phases, diag_qubits);
        frag.compose(bc.u, ctx.qubits);
    }
    frag.h(anc);
    frag.measure(anc, ctx.clbits[0]);
    return frag;
}

} // namespace qa
