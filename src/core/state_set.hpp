/**
 * @file
 * StateSet: the "what to assert" argument of the paper's assertion API
 * (Sec. VII): a single pure state (precise pure assertion), a density
 * matrix (precise mixed assertion), or a set of pure states (approximate
 * assertion / Bloom-filter-style membership check).
 */
#ifndef QA_CORE_STATE_SET_HPP
#define QA_CORE_STATE_SET_HPP

#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace qa
{

/** Kind of assertion target. */
enum class StateSetKind
{
    kPure,        ///< One pure state vector.
    kMixed,       ///< One density matrix.
    kApproximate  ///< A set of pure states (membership check).
};

/** Immutable description of the asserted state(s). */
class StateSet
{
  public:
    /** Precise pure-state assertion target. */
    static StateSet pure(const CVector& psi);

    /** Precise mixed-state assertion target. */
    static StateSet mixed(const CMatrix& rho);

    /** Approximate (set-membership) assertion target. */
    static StateSet approximate(const std::vector<CVector>& states);

    StateSetKind kind() const { return kind_; }
    int numQubits() const { return num_qubits_; }

    /** The pure state (kind() == kPure only). */
    const CVector& pureState() const;

    /** The density matrix (kind() == kMixed only). */
    const CMatrix& density() const;

    /** The member states (kind() == kApproximate only). */
    const std::vector<CVector>& members() const;

  private:
    StateSet() = default;

    StateSetKind kind_ = StateSetKind::kPure;
    int num_qubits_ = 0;
    CVector pure_;
    CMatrix rho_;
    std::vector<CVector> members_;
};

/**
 * The orthonormal "correct" subspace extracted from a StateSet
 * (eigenvectors of the density matrix for mixed states, Sec. IV-C;
 * orthonormalized members for approximate sets, Sec. IV-D).
 */
struct CorrectSubspace
{
    /** Number of qubits under test. */
    int n = 0;

    /** Orthonormal basis of the correct subspace (t states). */
    std::vector<CVector> basis;

    /** Rank t = basis.size(). */
    size_t rank() const { return basis.size(); }

    /** True when every basis vector is a computational basis state. */
    bool all_basis_states = false;

    /** Basis indices of the correct states when all_basis_states. */
    std::vector<uint64_t> basis_indices;

    /** Projector onto the correct subspace. */
    CMatrix projector() const;
};

/**
 * Analyze a StateSet into its correct subspace. Degenerate eigenspaces
 * are re-aligned to computational basis states when the subspace
 * projector is diagonal, which stabilizes the cheap CNOT-only synthesis
 * paths.
 */
CorrectSubspace analyzeStateSet(const StateSet& set);

} // namespace qa

#endif // QA_CORE_STATE_SET_HPP
