#include "core/state_set.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/eigen.hpp"
#include "linalg/gram_schmidt.hpp"
#include "linalg/states.hpp"
#include "synth/factorize.hpp"

namespace qa
{

StateSet
StateSet::pure(const CVector& psi)
{
    StateSet set;
    set.kind_ = StateSetKind::kPure;
    set.num_qubits_ = qubitCountForDim(psi.dim());
    set.pure_ = psi.normalized();
    return set;
}

StateSet
StateSet::mixed(const CMatrix& rho)
{
    QA_REQUIRE(rho.isDensityMatrix(1e-6),
               "mixed assertion target must be a density matrix");
    StateSet set;
    set.kind_ = StateSetKind::kMixed;
    set.num_qubits_ = qubitCountForDim(rho.rows());
    set.rho_ = rho;
    return set;
}

StateSet
StateSet::approximate(const std::vector<CVector>& states)
{
    QA_REQUIRE(!states.empty(),
               "approximate assertion needs at least one state");
    StateSet set;
    set.kind_ = StateSetKind::kApproximate;
    set.num_qubits_ = qubitCountForDim(states[0].dim());
    for (const CVector& s : states) {
        QA_REQUIRE(qubitCountForDim(s.dim()) == set.num_qubits_,
                   "approximate set states must have equal size");
        set.members_.push_back(s.normalized());
    }
    return set;
}

const CVector&
StateSet::pureState() const
{
    QA_REQUIRE(kind_ == StateSetKind::kPure, "not a pure StateSet");
    return pure_;
}

const CMatrix&
StateSet::density() const
{
    QA_REQUIRE(kind_ == StateSetKind::kMixed, "not a mixed StateSet");
    return rho_;
}

const std::vector<CVector>&
StateSet::members() const
{
    QA_REQUIRE(kind_ == StateSetKind::kApproximate,
               "not an approximate StateSet");
    return members_;
}

CMatrix
CorrectSubspace::projector() const
{
    const size_t dim = size_t(1) << n;
    CMatrix p(dim, dim);
    for (const CVector& b : basis) {
        p += CMatrix::outer(b, b);
    }
    return p;
}

namespace
{

constexpr double kRankEps = 1e-8;

/**
 * If the span of `basis` is a coordinate subspace (its projector is
 * diagonal), replace the basis with the computational basis states it
 * spans. This undoes arbitrary rotations inside degenerate eigenspaces
 * and unlocks the CNOT-only synthesis paths.
 *
 * Decided from the projector's diagonal alone, in O(rank * 2^n) time
 * and O(2^n) memory: d(i) = sum_b |b[i]|^2 is the squared norm of the
 * projection of |i>, so d(i) = 1 iff |i> lies in the span. Since
 * tr(P) = rank, every diagonal in {0, 1} forces exactly `rank` ones,
 * and those orthonormal basis states then span the whole subspace —
 * the projector is diagonal without ever materializing the 2^n x 2^n
 * matrix (which made assertions on 16+ qubit states intractable).
 */
void
alignToBasisStates(CorrectSubspace& subspace)
{
    const size_t dim = size_t(1) << subspace.n;
    std::vector<double> diag(dim, 0.0);
    for (const CVector& b : subspace.basis) {
        for (size_t i = 0; i < dim; ++i) diag[i] += std::norm(b[i]);
    }
    std::vector<uint64_t> indices;
    for (size_t i = 0; i < dim; ++i) {
        if (std::abs(diag[i]) <= kRankEps) continue;
        if (std::abs(diag[i] - 1.0) > kRankEps) {
            return; // fractional occupancy: not a coordinate span
        }
        indices.push_back(i);
    }
    if (indices.size() != subspace.basis.size()) return;
    std::vector<CVector> aligned;
    for (uint64_t i : indices) {
        aligned.push_back(CVector::basisState(dim, i));
    }
    subspace.basis = std::move(aligned);
    subspace.all_basis_states = true;
    subspace.basis_indices = std::move(indices);
}

/**
 * Rank-2 realignment: a degenerate eigenvalue pair lets Jacobi return an
 * arbitrary rotation inside the eigenspace. If the 2-dimensional span
 * contains a pair of orthogonal PRODUCT states (the natural shape of
 * "one subsystem entangled with the environment" mixtures, e.g. the QPE
 * counting register), rebase onto them so the cheap O(n)-CX basis-change
 * path applies. The product condition across the first-qubit cut is a
 * complex quadratic in the mixing coefficient; candidates are verified
 * for full productness.
 */
void
alignRank2ToProducts(CorrectSubspace& subspace)
{
    if (subspace.rank() != 2 || subspace.all_basis_states) return;
    const CVector& v1 = subspace.basis[0];
    const CVector& v2 = subspace.basis[1];
    const size_t dim = v1.dim();
    if (dim < 4) return;
    const size_t half = dim / 2;

    // Reshape rows across the first-qubit cut: r0 = v[0..half),
    // r1 = v[half..). Product across the cut <=> all 2x2 minors vanish.
    auto a0 = [&](size_t i) { return v1[i]; };
    auto a1 = [&](size_t i) { return v1[half + i]; };
    auto b0 = [&](size_t i) { return v2[i]; };
    auto b1 = [&](size_t i) { return v2[half + i]; };

    std::vector<CVector> candidates = {v1, v2};
    for (size_t i = 0; i < half && candidates.size() < 6; ++i) {
        for (size_t j = i + 1; j < half && candidates.size() < 6; ++j) {
            // minor(c) = gamma c^2 + beta c + alpha.
            const Complex alpha = a0(i) * a1(j) - a0(j) * a1(i);
            const Complex gamma = b0(i) * b1(j) - b0(j) * b1(i);
            const Complex beta = a0(i) * b1(j) + b0(i) * a1(j) -
                                 a0(j) * b1(i) - b0(j) * a1(i);
            if (std::abs(gamma) < 1e-12 && std::abs(beta) < 1e-12) {
                continue;
            }
            std::vector<Complex> roots;
            if (std::abs(gamma) < 1e-12) {
                roots.push_back(-alpha / beta);
            } else {
                const Complex disc =
                    std::sqrt(beta * beta -
                              Complex(4.0, 0.0) * gamma * alpha);
                roots.push_back((-beta + disc) /
                                (Complex(2.0, 0.0) * gamma));
                roots.push_back((-beta - disc) /
                                (Complex(2.0, 0.0) * gamma));
            }
            for (const Complex& c : roots) {
                if (std::abs(c) > 1e8) continue;
                CVector cand = v1 + v2 * c;
                if (cand.norm() > 1e-9) {
                    candidates.push_back(cand.normalized());
                }
            }
            // One informative minor is enough to seed candidates.
            i = half;
            break;
        }
    }

    for (const CVector& cand : candidates) {
        if (!productStateFactorize(cand)) continue;
        // The orthogonal complement of cand inside the span is unique.
        CVector other = v1 - cand * cand.inner(v1);
        if (other.norm() < 1e-6) {
            other = v2 - cand * cand.inner(v2);
        }
        if (other.norm() < 1e-6) continue;
        other = other.normalized();
        if (!productStateFactorize(other)) continue;
        subspace.basis = {cand, other};
        return;
    }
}

/** Detect whether each basis vector individually is a basis state. */
void
detectBasisStates(CorrectSubspace& subspace)
{
    std::vector<uint64_t> indices;
    for (const CVector& b : subspace.basis) {
        int hits = 0;
        uint64_t idx = 0;
        for (uint64_t i = 0; i < b.dim(); ++i) {
            if (std::abs(b[i]) > 1e-8) {
                ++hits;
                idx = i;
            }
        }
        if (hits != 1) return;
        indices.push_back(idx);
    }
    subspace.all_basis_states = true;
    subspace.basis_indices = std::move(indices);
}

} // namespace

CorrectSubspace
analyzeStateSet(const StateSet& set)
{
    CorrectSubspace subspace;
    subspace.n = set.numQubits();

    switch (set.kind()) {
      case StateSetKind::kPure:
        subspace.basis = {set.pureState()};
        break;
      case StateSetKind::kApproximate:
        // The correct subspace is the span of the members; probabilities
        // are irrelevant for membership (Sec. IV-D).
        subspace.basis = orthonormalize(set.members());
        break;
      case StateSetKind::kMixed: {
        const EigenResult eig = eigHermitian(set.density());
        for (size_t i = 0; i < eig.values.size(); ++i) {
            if (eig.values[i] > kRankEps) {
                subspace.basis.push_back(eig.vectors.column(i));
            }
        }
        break;
      }
    }
    QA_ASSERT(!subspace.basis.empty(), "empty correct subspace");

    detectBasisStates(subspace);
    if (!subspace.all_basis_states) alignToBasisStates(subspace);
    if (!subspace.all_basis_states) alignRank2ToProducts(subspace);
    return subspace;
}

} // namespace qa
