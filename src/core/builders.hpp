/**
 * @file
 * The three systematic assertion-circuit builders of the paper:
 * SWAP-based (Sec. IV), logical-OR-based (Sec. IV-E), and NDD-based
 * (Sec. V), over the shared correct-subspace analysis.
 *
 * All designs use the convention: ancilla measured |0> = pass,
 * |1> = assertion error (Sec. III: |1> is noisier and decays to |0>).
 */
#ifndef QA_CORE_BUILDERS_HPP
#define QA_CORE_BUILDERS_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "core/state_set.hpp"

namespace qa
{

/** Assertion circuit design selector (the API's `design` argument). */
enum class AssertionDesign
{
    kSwap, ///< SWAP-based (Sec. IV).
    kOr,   ///< Logical-OR-based (Sec. IV-E).
    kNdd,  ///< NDD-based (Sec. V).
    kProq, ///< Projection-based baseline [30]: measures program qubits
           ///< directly, requiring the mid-circuit measurement support
           ///< real devices lack (excluded from kAuto for that reason).
    kCustom, ///< User/baseline-supplied fragment (addCustomAssertion).
    kAuto  ///< Estimate the three proposed designs, pick the lowest CX.
};

/** Human-readable design name. */
const char* designName(AssertionDesign design);

/**
 * Placement of U / U^-1 relative to the SWAP layer in the pure-state
 * SWAP design (the paper's four variants; Fig. 3 and Fig. 6 are two of
 * them). Mixed-state SWAP assertions always use the Fig. 8 shape.
 */
enum class SwapPlacement
{
    kInvBeforePrepAfter,  ///< Fig. 3: U^-1 on tested wires, U after the
                          ///< swap on tested wires; 2-CX optimized swaps.
    kInvBeforePrepBefore, ///< Fig. 6: U^-1 on tested wires, U prepared on
                          ///< the ancillas before the swap; full swaps.
    kInvAfterPrepBefore,  ///< U on ancillas before, U^-1 on ancilla wires
                          ///< after the swap; full swaps.
    kInvAfterPrepAfter    ///< 2-CX swaps; U^-1 on ancilla wires after,
                          ///< U on tested wires after.
};

/** Resource plan for one assertion insertion. */
struct AssertionPlan
{
    int num_ancillas = 0;
    int num_clbits = 0;
};

/** Everything a builder needs to emit its fragment. */
struct BuildContext
{
    int total_qubits = 0;  ///< Width of the fragment circuit.
    int total_clbits = 0;  ///< Classical width of the fragment circuit.
    std::vector<int> qubits;      ///< Qubits under test.
    std::vector<int> ancillas;    ///< Allocated ancillas (plan-sized).
    std::vector<int> clbits;      ///< Allocated classical bits.
    std::vector<int> free_qubits; ///< Borrowable dirty ancillas.
};

/** @name SWAP-based design */
///@{
AssertionPlan planSwapAssertion(
    const CorrectSubspace& subspace,
    SwapPlacement placement = SwapPlacement::kInvBeforePrepAfter);

QuantumCircuit buildSwapAssertion(
    const CorrectSubspace& subspace, const BuildContext& ctx,
    SwapPlacement placement = SwapPlacement::kInvBeforePrepAfter);
///@}

/** @name Logical-OR-based design */
///@{
AssertionPlan planOrAssertion(const CorrectSubspace& subspace);
QuantumCircuit buildOrAssertion(const CorrectSubspace& subspace,
                                const BuildContext& ctx);
///@}

/** @name NDD-based design */
///@{
AssertionPlan planNddAssertion(const CorrectSubspace& subspace);
QuantumCircuit buildNddAssertion(const CorrectSubspace& subspace,
                                 const BuildContext& ctx);
///@}

/** @name Projection-based baseline (Proq [30]) */
///@{
AssertionPlan planProqAssertion(const CorrectSubspace& subspace);
QuantumCircuit buildProqAssertion(const CorrectSubspace& subspace,
                                  const BuildContext& ctx);
///@}

/**
 * Basis-change pair shared by the SWAP and OR designs: uinv maps the
 * correct subspace onto the computational states whose leading qubits
 * are |0>, u is its exact inverse. Both act on local qubits [0, n).
 */
struct BasisChange
{
    QuantumCircuit u;
    QuantumCircuit uinv;

    /** Local qubits that read |0> exactly on the correct subspace after
     *  uinv (size n - m for rank-2^m bases; the parity-check pivots on
     *  the cheap affine path, the leading qubits otherwise). */
    std::vector<int> flag_qubits;

    /** Basis indices spanning the image of the correct subspace. */
    std::vector<uint64_t> correct_indices;
};

/**
 * Build the basis change for a rank-2^m correct basis (or rank 1).
 * Dispatches: state preparation for rank 1, X/CNOT-only circuits for
 * affine computational-basis sets, general synthesis otherwise.
 */
BasisChange buildBasisChange(const std::vector<CVector>& basis, int n);

/** Rank-regime classification of Sec. IV-C. */
enum class RankRegime
{
    kPower,   ///< t == 2^m with m <= n-1 (includes t == 1).
    kBetween, ///< 2^m < t < 2^{m+1} with t < 2^{n-1}: two supersets.
    kLarge,   ///< 2^{n-1} < t < 2^n: one extra "virtually correct" qubit.
    kFull     ///< t == 2^n: unassertable.
};

/** Classify the rank; `m` receives floor(log2(t)). */
RankRegime classifyRank(size_t t, int n, int* m);

/**
 * Superset construction for the kBetween regime: two orthonormal bases
 * of size 2^{m+1} whose intersection spans exactly the correct subspace.
 */
std::pair<std::vector<CVector>, std::vector<CVector>>
buildSupersets(const CorrectSubspace& subspace, int m);

/**
 * Extended basis for the kLarge regime: |0>|psi_i> for the t correct
 * states padded with 2^n - t "virtually correct" states |1>|c_j>, giving
 * a rank-2^n subspace over n+1 qubits.
 */
std::vector<CVector> buildExtendedBasis(const CorrectSubspace& subspace);

} // namespace qa

#endif // QA_CORE_BUILDERS_HPP
