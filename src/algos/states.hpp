/**
 * @file
 * Canonical state-preparation circuits and state vectors used across the
 * paper's evaluation: Bell pairs, GHZ, W, and linear cluster states.
 */
#ifndef QA_ALGOS_STATES_HPP
#define QA_ALGOS_STATES_HPP

#include "circuit/circuit.hpp"
#include "linalg/vector.hpp"

namespace qa
{
namespace algos
{

/** The four Bell states. */
enum class BellKind
{
    kPhiPlus,  ///< (|00> + |11>)/sqrt2
    kPhiMinus, ///< (|00> - |11>)/sqrt2
    kPsiPlus,  ///< (|01> + |10>)/sqrt2
    kPsiMinus  ///< (|01> - |10>)/sqrt2
};

/** Two-qubit Bell-pair preparation circuit. */
QuantumCircuit bellPrep(BellKind kind);

/** Bell-state vector. */
CVector bellVector(BellKind kind);

/**
 * n-qubit GHZ preparation, following the paper's Fig. 2 (u2 + CX chain).
 * Optional bug injection reproducing Table I:
 *  bug 1: u2 parameter order swapped -> sign-flipped coefficient;
 *  bug 2: CX chain reordered -> wrong entanglement.
 */
QuantumCircuit ghzPrep(int n, int bug = 0);

/** n-qubit GHZ state vector (|0..0> + |1..1>)/sqrt2. */
CVector ghzVector(int n);

/** n-qubit W state vector (equal superposition of single-excitations). */
CVector wVector(int n);

/** n-qubit W state preparation (via general state synthesis). */
QuantumCircuit wPrep(int n);

/** Linear cluster state: |+>^n then CZ between neighbours. */
QuantumCircuit linearClusterPrep(int n);

/** Linear cluster state vector. */
CVector linearClusterVector(int n);

} // namespace algos
} // namespace qa

#endif // QA_ALGOS_STATES_HPP
