/**
 * @file
 * Deutsch-Jozsa workload for the approximate-assertion case study
 * (Sec. X, Fig. 17, Table IV): black-box oracles writing f(x) into an
 * output qubit, plus the constant/balanced joint-output state sets the
 * paper asserts membership against.
 */
#ifndef QA_ALGOS_DEUTSCH_JOZSA_HPP
#define QA_ALGOS_DEUTSCH_JOZSA_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "linalg/vector.hpp"

namespace qa
{
namespace algos
{

/** Oracle families for an n-input boolean function. */
enum class DjOracle
{
    kConstantZero, ///< f(x) = 0.
    kConstantOne,  ///< f(x) = 1.
    kBalancedMask, ///< f(x) = parity(x & mask), mask != 0.
    kBuggyAnd      ///< f(x) = AND(x): neither constant nor balanced.
};

/**
 * Circuit over n+1 qubits: inputs are qubits [0, n), output is qubit n.
 * Prepares the inputs in |+>^n and writes |x>|f(x)>.
 */
QuantumCircuit djFunctionEval(int n_inputs, DjOracle oracle,
                              uint64_t mask = 0);

/** Joint output-state set of the two constant functions (Table IV). */
std::vector<CVector> djConstantSet(int n_inputs);

/**
 * Joint output-state set of every balanced function (Table IV rows 3-8
 * for n_inputs = 2).
 */
std::vector<CVector> djBalancedSet(int n_inputs);

/** The joint state |x>|f(x)> summed over x in |+>^n, analytically. */
CVector djJointState(int n_inputs, DjOracle oracle, uint64_t mask = 0);

} // namespace algos
} // namespace qa

#endif // QA_ALGOS_DEUTSCH_JOZSA_HPP
