/**
 * @file
 * Quantum phase estimation, the paper's main debugging case study
 * (Sec. IX, Figs. 15-16): n counting qubits + one eigenstate qubit, the
 * controlled-u3 phase-kickback ladder, and the inverse QFT, built stage
 * by stage so assertion slots 1..n+2 can be placed between stages.
 *
 * Bug injection reproduces the paper's three scenarios:
 *  - kFixedAngle (Bug1, Sec. IX-A): the loop index is dropped, so every
 *    controlled rotation uses the base angle;
 *  - kMissingControl (Bug2): "cu3" typed as "u3" -- uncontrolled gates;
 *  - kWrongParamOrder (Sec. IX-B): rotation angle lands in the wrong
 *    u3 parameter slot.
 */
#ifndef QA_ALGOS_QPE_HPP
#define QA_ALGOS_QPE_HPP

#include "circuit/circuit.hpp"
#include "linalg/vector.hpp"

namespace qa
{
namespace algos
{

/** Bug injected into the QPE phase-kickback loop. */
enum class QpeBug
{
    kNone,
    kFixedAngle,
    kMissingControl,
    kWrongParamOrder
};

/** Stage-structured QPE program. */
class QpeProgram
{
  public:
    /**
     * @param counting Number of counting qubits (paper uses 4).
     * @param lambda Eigenphase: U = u3(0, 0, lambda) = p(lambda).
     * @param bug Injected bug (kNone for the reference program).
     */
    QpeProgram(int counting, double lambda, QpeBug bug = QpeBug::kNone);

    int numCounting() const { return counting_; }
    int numQubits() const { return counting_ + 1; }

    /** Stages: 0 = superposition init, 1..n = controlled powers,
     *  n+1 = inverse QFT. */
    int numStages() const { return counting_ + 2; }

    /** Circuit of one stage (width = numQubits()). */
    QuantumCircuit stage(int s) const;

    /** The full program. */
    QuantumCircuit full() const;

    /** Number of assertion slots (paper: n + 2). */
    int numSlots() const { return numStages(); }

    /**
     * Bug-free expected state after the first `slot` stages (the
     * "precalculated state vectors V1..V6" of Fig. 16), slot in
     * [1, numSlots()].
     */
    CVector expectedStateAtSlot(int slot) const;

    /** Bug-free most-likely counting-register outcome (basis index). */
    uint64_t expectedOutcomeIndex() const;

  private:
    int counting_;
    double lambda_;
    QpeBug bug_;
};

/**
 * The Sec. IX-B hardware-experiment variant: U = u3(theta, 0, 0) =
 * Ry(theta), with the eigenstate qubit prepared in Ry's +1 Y-eigenstate
 * (|0> + i|1>)/sqrt2 so it never entangles with the counting register
 * and stays a single-qubit PURE state -- the state the paper's
 * slot-6 single-qubit assertion checks (2 CX + 2 SG SWAP design).
 *
 * @param bug Sec. IX-B's injected bug: the rotation angle lands in the
 *        wrong u3 parameter with base pi/2.
 */
QuantumCircuit qpeRyProgram(int counting, double theta, bool bug = false);

/** The eigenstate (|0> + i|1>)/sqrt2 the Ry-variant ancilla holds. */
CVector qpeRyEigenstate();

} // namespace algos
} // namespace qa

#endif // QA_ALGOS_QPE_HPP
