/**
 * @file
 * Additional phase-kickback workloads from the paper's Sec. VIII list
 * of algorithms sharing the subroutine ("Shor's algorithm, phase
 * estimation, Deutsch algorithm, Bernstein-Vazirani"), plus superdense
 * coding from the entanglement applications of Sec. II-B.
 */
#ifndef QA_ALGOS_ORACLES_HPP
#define QA_ALGOS_ORACLES_HPP

#include <cstdint>

#include "circuit/circuit.hpp"
#include "linalg/vector.hpp"

namespace qa
{
namespace algos
{

/**
 * Bernstein-Vazirani over n input qubits: recovers the hidden mask of
 * f(x) = mask . x in one oracle call. Qubits [0, n) are inputs, qubit n
 * is the phase ancilla (|->). When `buggy_drop_bit` is in [0, n), the
 * oracle omits that bit's CX -- the classic off-by-one oracle bug.
 *
 * The deterministic output equals `mask` on the input register.
 */
QuantumCircuit bernsteinVazirani(int n_inputs, uint64_t mask,
                                 int buggy_drop_bit = -1);

/** The BV pre-measurement state (inputs hold |mask>, ancilla |->). */
CVector bernsteinVaziraniFinalState(int n_inputs, uint64_t mask);

/**
 * Superdense coding: sends two classical bits (b1, b0) through one
 * qubit of a shared Bell pair. Stages:
 *   0: Bell-pair preparation on (0, 1)
 *   1: encoding on qubit 0 (Z^b1 X^b0)
 *   2: decoding Bell measurement rotation
 * Measuring yields |b1 b0> deterministically.
 */
QuantumCircuit superdenseStage(int stage, int b1, int b0);

/** The full superdense-coding program. */
QuantumCircuit superdenseProgram(int b1, int b0);

} // namespace algos
} // namespace qa

#endif // QA_ALGOS_ORACLES_HPP
