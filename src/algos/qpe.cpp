#include "algos/qpe.hpp"

#include <cmath>

#include "algos/qft.hpp"
#include "common/error.hpp"
#include "sim/statevector.hpp"

namespace qa
{
namespace algos
{

QpeProgram::QpeProgram(int counting, double lambda, QpeBug bug)
    : counting_(counting), lambda_(lambda), bug_(bug)
{
    QA_REQUIRE(counting >= 1, "QPE needs at least one counting qubit");
}

QuantumCircuit
QpeProgram::stage(int s) const
{
    QA_REQUIRE(s >= 0 && s < numStages(), "stage index out of range");
    QuantumCircuit qc(numQubits());
    const int ar = counting_; // eigenstate qubit

    if (s == 0) {
        // Superposition precondition on the counting register and the
        // eigenstate superposition (|0> + |1>)/sqrt2 on ar.
        for (int q = 0; q < counting_; ++q) qc.h(q);
        qc.h(ar);
        return qc;
    }
    if (s <= counting_) {
        // Stage s applies the paper's loop iteration j = s - 1: angle
        // 2^j * lambda. Counting qubit q must accumulate phase
        // 2 pi x / 2^{q+1} for the MSB-first inverse QFT to decode x,
        // so the 2^j weight lands on qubit counting - 1 - j (the
        // paper's qr[j] on Qiskit's LSB-first register).
        const int j = s - 1;
        const int q = counting_ - 1 - j;
        const double angle = std::ldexp(lambda_, j);
        switch (bug_) {
          case QpeBug::kNone:
            qc.cu3(q, ar, 0, 0, angle);
            break;
          case QpeBug::kFixedAngle:
            qc.cu3(q, ar, 0, 0, lambda_); // dropped loop index
            break;
          case QpeBug::kMissingControl:
            qc.u3(ar, 0, 0, angle); // "c" missing: uncontrolled
            break;
          case QpeBug::kWrongParamOrder:
            // Sec. IX-B: the angle lands in u3's phi slot with a wrong
            // base angle.
            qc.cu3(q, ar, 0, std::ldexp(M_PI / 2, j), 0);
            break;
        }
        return qc;
    }
    std::vector<int> qubits;
    for (int q = 0; q < counting_; ++q) qubits.push_back(q);
    appendIqft(qc, qubits);
    return qc;
}

QuantumCircuit
QpeProgram::full() const
{
    QuantumCircuit qc(numQubits());
    std::vector<int> ident;
    for (int q = 0; q < numQubits(); ++q) ident.push_back(q);
    for (int s = 0; s < numStages(); ++s) qc.compose(stage(s), ident);
    return qc;
}

CVector
QpeProgram::expectedStateAtSlot(int slot) const
{
    QA_REQUIRE(slot >= 1 && slot <= numSlots(), "slot out of range");
    QpeProgram clean(counting_, lambda_, QpeBug::kNone);
    QuantumCircuit qc(numQubits());
    std::vector<int> ident;
    for (int q = 0; q < numQubits(); ++q) ident.push_back(q);
    for (int s = 0; s < slot; ++s) qc.compose(clean.stage(s), ident);
    return finalState(qc).amplitudes();
}

uint64_t
QpeProgram::expectedOutcomeIndex() const
{
    QpeProgram clean(counting_, lambda_, QpeBug::kNone);
    const CVector state = finalState(clean.full()).amplitudes();
    // Marginalize the eigenstate qubit (LSB of the index).
    const size_t count_dim = size_t(1) << counting_;
    uint64_t best = 0;
    double best_prob = -1.0;
    for (uint64_t c = 0; c < count_dim; ++c) {
        const double p =
            std::norm(state[2 * c]) + std::norm(state[2 * c + 1]);
        if (p > best_prob) {
            best_prob = p;
            best = c;
        }
    }
    return best;
}

QuantumCircuit
qpeRyProgram(int counting, double theta, bool bug)
{
    QuantumCircuit qc(counting + 1);
    const int ar = counting;
    for (int q = 0; q < counting; ++q) qc.h(q);
    // Prepare the Y +1 eigenstate (|0> + i|1>)/sqrt2 = S H |0>.
    qc.h(ar);
    qc.s(ar);
    for (int j = 0; j < counting; ++j) {
        const int q = counting - 1 - j;
        if (bug) {
            qc.cu3(q, ar, 0, std::ldexp(M_PI / 2, j), 0);
        } else {
            qc.cu3(q, ar, std::ldexp(theta, j), 0, 0);
        }
    }
    std::vector<int> qubits;
    for (int q = 0; q < counting; ++q) qubits.push_back(q);
    appendIqft(qc, qubits);
    return qc;
}

CVector
qpeRyEigenstate()
{
    return CVector{Complex(1.0 / std::sqrt(2.0), 0.0),
                   Complex(0.0, 1.0 / std::sqrt(2.0))};
}

} // namespace algos
} // namespace qa
