/**
 * @file
 * Fourier-space controlled adder (Appendix D, Fig. 21): computes
 * qr = a + qr where qr holds an integer encoded in Fourier space. The
 * same subroutine is emitted with 0, 1, or 2 control qubits (the
 * recursion pattern whose copy-paste bug the paper debugs).
 */
#ifndef QA_ALGOS_ADDER_HPP
#define QA_ALGOS_ADDER_HPP

#include "circuit/circuit.hpp"

namespace qa
{
namespace algos
{

/**
 * Append the Fourier-space addition of constant `a` onto the listed
 * target qubits (qubits[0] = most significant Fourier coefficient),
 * optionally controlled.
 *
 * @param controls 0, 1, or 2 control qubit indices.
 * @param buggy Reproduce the Appendix D bug: in the doubly-controlled
 *        branch the rotation lands on qr[j] instead of qr[i].
 */
void appendControlledAdder(QuantumCircuit& circuit,
                           const std::vector<int>& controls,
                           const std::vector<int>& qubits, uint64_t a,
                           bool buggy = false);

/**
 * Full demo program over `width` + controls.size() qubits: QFT-encode
 * `initial`, add `a` (controlled on the given control states), and
 * decode with the inverse QFT. Measuring yields initial + a when the
 * controls are satisfied.
 */
QuantumCircuit adderProgram(int width, uint64_t initial, uint64_t a,
                            int num_controls, bool controls_on,
                            bool buggy = false);

} // namespace algos
} // namespace qa

#endif // QA_ALGOS_ADDER_HPP
