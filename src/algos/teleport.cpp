#include "algos/teleport.hpp"

#include "common/error.hpp"
#include "synth/state_prep.hpp"

namespace qa
{
namespace algos
{

QuantumCircuit
teleportStage(const CVector& payload, int stage, TeleportBug bug)
{
    QA_REQUIRE(payload.dim() == 2, "payload must be a single-qubit state");
    QuantumCircuit qc(3);
    switch (stage) {
      case 0:
        prepareStateInto(qc, payload, {0});
        return qc;
      case 1:
        qc.h(1);
        qc.cx(1, 2);
        if (bug == TeleportBug::kWrongBellPair) qc.x(2);
        return qc;
      case 2:
        // Bell-basis rotation on (0, 1) and deferred corrections.
        qc.cx(0, 1);
        qc.h(0);
        qc.cx(1, 2);
        if (bug != TeleportBug::kMissingZCorrection) qc.cz(0, 2);
        return qc;
      default:
        QA_FAIL("teleportation has stages 0..2");
    }
}

QuantumCircuit
teleportProgram(const CVector& payload, TeleportBug bug)
{
    QuantumCircuit qc(3);
    std::vector<int> ident{0, 1, 2};
    for (int s = 0; s < 3; ++s) {
        qc.compose(teleportStage(payload, s, bug), ident);
    }
    return qc;
}

} // namespace algos
} // namespace qa
