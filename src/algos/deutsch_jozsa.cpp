#include "algos/deutsch_jozsa.hpp"

#include <cmath>

#include "common/error.hpp"
#include "synth/mcgates.hpp"

namespace qa
{
namespace algos
{

QuantumCircuit
djFunctionEval(int n_inputs, DjOracle oracle, uint64_t mask)
{
    QA_REQUIRE(n_inputs >= 1, "need at least one input qubit");
    QuantumCircuit qc(n_inputs + 1);
    const int out = n_inputs;
    for (int q = 0; q < n_inputs; ++q) qc.h(q);

    switch (oracle) {
      case DjOracle::kConstantZero:
        break;
      case DjOracle::kConstantOne:
        qc.x(out);
        break;
      case DjOracle::kBalancedMask:
        QA_REQUIRE(mask != 0 && mask < (uint64_t(1) << n_inputs),
                   "balanced mask must select at least one input");
        for (int q = 0; q < n_inputs; ++q) {
            if ((mask >> q) & 1) qc.cx(q, out);
        }
        break;
      case DjOracle::kBuggyAnd: {
        std::vector<int> controls;
        for (int q = 0; q < n_inputs; ++q) controls.push_back(q);
        mcx(qc, controls, out);
        break;
      }
    }
    return qc;
}

namespace
{

/** Joint state sum_x |x>|f(x)> / 2^{n/2} from a truth table. */
CVector
jointFromTruthTable(int n_inputs, const std::vector<int>& table)
{
    const size_t inputs = size_t(1) << n_inputs;
    CVector v(inputs * 2);
    const double amp = 1.0 / std::sqrt(double(inputs));
    for (size_t x = 0; x < inputs; ++x) {
        v[2 * x + size_t(table[x])] = amp;
    }
    return v;
}

} // namespace

std::vector<CVector>
djConstantSet(int n_inputs)
{
    const size_t inputs = size_t(1) << n_inputs;
    std::vector<CVector> set;
    for (int value : {0, 1}) {
        std::vector<int> table(inputs, value);
        set.push_back(jointFromTruthTable(n_inputs, table));
    }
    return set;
}

std::vector<CVector>
djBalancedSet(int n_inputs)
{
    QA_REQUIRE(n_inputs <= 3,
               "balanced-set enumeration supported up to 3 inputs");
    const size_t inputs = size_t(1) << n_inputs;
    std::vector<CVector> set;
    // Enumerate truth tables with exactly half ones.
    for (uint64_t bits = 0; bits < (uint64_t(1) << inputs); ++bits) {
        if (size_t(__builtin_popcountll(bits)) != inputs / 2) continue;
        std::vector<int> table(inputs);
        for (size_t x = 0; x < inputs; ++x) {
            table[x] = int((bits >> x) & 1);
        }
        set.push_back(jointFromTruthTable(n_inputs, table));
    }
    return set;
}

CVector
djJointState(int n_inputs, DjOracle oracle, uint64_t mask)
{
    const size_t inputs = size_t(1) << n_inputs;
    std::vector<int> table(inputs, 0);
    for (size_t x = 0; x < inputs; ++x) {
        switch (oracle) {
          case DjOracle::kConstantZero:
            table[x] = 0;
            break;
          case DjOracle::kConstantOne:
            table[x] = 1;
            break;
          case DjOracle::kBalancedMask: {
            // mask bit q selects input QUBIT q; qubit q is bit
            // (n_inputs - 1 - q) of the basis index x.
            int parity = 0;
            for (int q = 0; q < n_inputs; ++q) {
                if (((mask >> q) & 1) &&
                    ((x >> (n_inputs - 1 - q)) & 1)) {
                    parity ^= 1;
                }
            }
            table[x] = parity;
            break;
          }
          case DjOracle::kBuggyAnd:
            table[x] = x == inputs - 1 ? 1 : 0;
            break;
        }
    }
    return jointFromTruthTable(n_inputs, table);
}

} // namespace algos
} // namespace qa
