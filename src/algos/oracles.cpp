#include "algos/oracles.hpp"

#include "common/error.hpp"
#include "sim/statevector.hpp"

namespace qa
{
namespace algos
{

QuantumCircuit
bernsteinVazirani(int n_inputs, uint64_t mask, int buggy_drop_bit)
{
    QA_REQUIRE(n_inputs >= 1, "need at least one input qubit");
    QA_REQUIRE(mask < (uint64_t(1) << n_inputs), "mask out of range");
    QuantumCircuit qc(n_inputs + 1);
    const int anc = n_inputs;

    // Superposition precondition + phase ancilla |->.
    for (int q = 0; q < n_inputs; ++q) qc.h(q);
    qc.x(anc);
    qc.h(anc);

    // Oracle: f(x) = mask . x as phase kickback.
    for (int q = 0; q < n_inputs; ++q) {
        if (!((mask >> q) & 1)) continue;
        if (q == buggy_drop_bit) continue;
        qc.cx(q, anc);
    }

    // Decode.
    for (int q = 0; q < n_inputs; ++q) qc.h(q);
    return qc;
}

CVector
bernsteinVaziraniFinalState(int n_inputs, uint64_t mask)
{
    return finalState(bernsteinVazirani(n_inputs, mask)).amplitudes();
}

QuantumCircuit
superdenseStage(int stage, int b1, int b0)
{
    QA_REQUIRE(b0 == 0 || b0 == 1, "b0 must be a bit");
    QA_REQUIRE(b1 == 0 || b1 == 1, "b1 must be a bit");
    QuantumCircuit qc(2);
    switch (stage) {
      case 0:
        qc.h(0);
        qc.cx(0, 1);
        return qc;
      case 1:
        if (b0) qc.x(0);
        if (b1) qc.z(0);
        return qc;
      case 2:
        qc.cx(0, 1);
        qc.h(0);
        return qc;
      default:
        QA_FAIL("superdense coding has stages 0..2");
    }
}

QuantumCircuit
superdenseProgram(int b1, int b0)
{
    QuantumCircuit qc(2);
    std::vector<int> ident{0, 1};
    for (int s = 0; s < 3; ++s) {
        qc.compose(superdenseStage(s, b1, b0), ident);
    }
    return qc;
}

} // namespace algos
} // namespace qa
