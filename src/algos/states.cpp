#include "algos/states.hpp"

#include <cmath>

#include "common/error.hpp"
#include "sim/statevector.hpp"
#include "synth/state_prep.hpp"

namespace qa
{
namespace algos
{

QuantumCircuit
bellPrep(BellKind kind)
{
    QuantumCircuit qc(2);
    qc.h(0);
    qc.cx(0, 1);
    switch (kind) {
      case BellKind::kPhiPlus:
        break;
      case BellKind::kPhiMinus:
        qc.z(0);
        break;
      case BellKind::kPsiPlus:
        qc.x(1);
        break;
      case BellKind::kPsiMinus:
        qc.z(0);
        qc.x(1);
        break;
    }
    return qc;
}

CVector
bellVector(BellKind kind)
{
    const double s = 1.0 / std::sqrt(2.0);
    CVector v(4);
    switch (kind) {
      case BellKind::kPhiPlus: v[0] = s; v[3] = s; break;
      case BellKind::kPhiMinus: v[0] = s; v[3] = -s; break;
      case BellKind::kPsiPlus: v[1] = s; v[2] = s; break;
      case BellKind::kPsiMinus: v[1] = s; v[2] = -s; break;
    }
    return v;
}

QuantumCircuit
ghzPrep(int n, int bug)
{
    QA_REQUIRE(n >= 2, "GHZ needs at least two qubits");
    QuantumCircuit qc(n);
    if (bug == 1) {
        qc.u2(0, M_PI, 0); // swapped u2 arguments: phase-flipped GHZ
    } else {
        qc.u2(0, 0, M_PI); // u2(0, pi) == H
    }
    if (bug == 2 && n >= 3) {
        // Reordered CX chain: the second CX fires before its control is
        // entangled, yielding (|0...0> + |011...;>)-type wrong state.
        for (int q = 1; q + 1 < n; ++q) qc.cx(q, q + 1);
        qc.cx(0, 1);
    } else {
        for (int q = 0; q + 1 < n; ++q) qc.cx(q, q + 1);
    }
    return qc;
}

CVector
ghzVector(int n)
{
    const size_t dim = size_t(1) << n;
    CVector v(dim);
    v[0] = v[dim - 1] = 1.0 / std::sqrt(2.0);
    return v;
}

CVector
wVector(int n)
{
    const size_t dim = size_t(1) << n;
    CVector v(dim);
    const double amp = 1.0 / std::sqrt(double(n));
    for (int q = 0; q < n; ++q) {
        v[size_t(1) << (n - 1 - q)] = amp;
    }
    return v;
}

QuantumCircuit
wPrep(int n)
{
    return prepareState(wVector(n));
}

QuantumCircuit
linearClusterPrep(int n)
{
    QA_REQUIRE(n >= 2, "cluster state needs at least two qubits");
    QuantumCircuit qc(n);
    for (int q = 0; q < n; ++q) qc.h(q);
    for (int q = 0; q + 1 < n; ++q) qc.cz(q, q + 1);
    return qc;
}

CVector
linearClusterVector(int n)
{
    return finalState(linearClusterPrep(n)).amplitudes();
}

} // namespace algos
} // namespace qa
