#include "algos/grover.hpp"

#include <cmath>

#include "common/error.hpp"
#include "synth/mcgates.hpp"

namespace qa
{
namespace algos
{

namespace
{

/** Phase-flip the single basis state `index` (multi-controlled Z). */
void
emitMark(QuantumCircuit& qc, int n, uint64_t index)
{
    // Open controls where the index bit is 0: X-conjugate those qubits,
    // then an (n-1)-controlled Z on the last qubit.
    for (int q = 0; q < n; ++q) {
        if (!((index >> (n - 1 - q)) & 1)) qc.x(q);
    }
    if (n == 1) {
        qc.z(0);
    } else {
        std::vector<int> controls;
        for (int q = 0; q + 1 < n; ++q) controls.push_back(q);
        CMatrix z{{1, 0}, {0, -1}};
        mcu(qc, controls, n - 1, z);
    }
    for (int q = 0; q < n; ++q) {
        if (!((index >> (n - 1 - q)) & 1)) qc.x(q);
    }
}

} // namespace

QuantumCircuit
groverStage(int n, uint64_t target, int stage, GroverBug bug)
{
    QA_REQUIRE(n >= 1 && target < (uint64_t(1) << n),
               "target out of range");
    QuantumCircuit qc(n);
    if (stage == 0) {
        for (int q = 0; q < n; ++q) qc.h(q);
        return qc;
    }
    if (stage % 2 == 1) {
        // Oracle.
        const uint64_t marked = bug == GroverBug::kWrongMark
                                    ? (target ^ 1)
                                    : target;
        emitMark(qc, n, marked);
        return qc;
    }
    // Diffusion: H^n (2|0><0| - I) H^n.
    for (int q = 0; q < n; ++q) qc.h(q);
    if (bug != GroverBug::kMissingDiffusionPhase) {
        emitMark(qc, n, 0);
    }
    for (int q = 0; q < n; ++q) qc.h(q);
    return qc;
}

QuantumCircuit
groverProgram(int n, uint64_t target, int iterations, GroverBug bug)
{
    QuantumCircuit qc(n);
    std::vector<int> ident;
    for (int q = 0; q < n; ++q) ident.push_back(q);
    qc.compose(groverStage(n, target, 0, bug), ident);
    for (int k = 0; k < iterations; ++k) {
        qc.compose(groverStage(n, target, 2 * k + 1, bug), ident);
        qc.compose(groverStage(n, target, 2 * k + 2, bug), ident);
    }
    return qc;
}

CVector
groverExpectedState(int n, uint64_t target, int iterations)
{
    const size_t dim = size_t(1) << n;
    const double theta = std::asin(1.0 / std::sqrt(double(dim)));
    const double angle = double(2 * iterations + 1) * theta;
    CVector v(dim);
    const double rest =
        std::cos(angle) / std::sqrt(double(dim - 1));
    for (size_t i = 0; i < dim; ++i) v[i] = rest;
    v[target] = std::sin(angle);
    return v;
}

int
groverOptimalIterations(int n)
{
    const double theta = std::asin(1.0 / std::sqrt(double(1 << n)));
    return int(std::floor(M_PI / (4.0 * theta)));
}

} // namespace algos
} // namespace qa
