#include "algos/adder.hpp"

#include <cmath>

#include "algos/qft.hpp"
#include "common/error.hpp"

namespace qa
{
namespace algos
{

void
appendControlledAdder(QuantumCircuit& circuit,
                      const std::vector<int>& controls,
                      const std::vector<int>& qubits, uint64_t a,
                      bool buggy)
{
    const int width = int(qubits.size());
    QA_REQUIRE(controls.size() <= 2,
               "the paper's subroutine supports 0, 1, or 2 controls");

    // Paper Fig. 21 loop: paper's qr[i] is the Fourier coefficient with
    // phase denominator 2^{i+1}; after appendQft (MSB-first register,
    // with swaps) that is exactly qubit i.
    auto target = [&](int paper_index) {
        return qubits[paper_index];
    };

    for (int i = width - 1; i >= 0; --i) {
        for (int j = i; j >= 0; --j) {
            if (!((a >> j) & 1)) continue;
            const double angle = M_PI / double(uint64_t(1) << (i - j));
            // The Appendix D bug: in the doubly-controlled branch the
            // programmer wrote qr[j] instead of qr[i].
            const int tq = (buggy && controls.size() == 2) ? target(j)
                                                           : target(i);
            switch (controls.size()) {
              case 0:
                circuit.rz(tq, angle);
                break;
              case 1:
                circuit.crz(controls[0], tq, angle);
                break;
              case 2:
                circuit.ccrz(controls[0], controls[1], tq, angle);
                break;
            }
        }
    }
}

QuantumCircuit
adderProgram(int width, uint64_t initial, uint64_t a, int num_controls,
             bool controls_on, bool buggy)
{
    QA_REQUIRE(width >= 1 && width <= 10, "width out of range");
    QA_REQUIRE(initial < (uint64_t(1) << width), "initial out of range");

    const int total = width + num_controls;
    QuantumCircuit qc(total);

    // Data register: qubits [0, width); controls afterwards.
    std::vector<int> data;
    for (int q = 0; q < width; ++q) data.push_back(q);
    std::vector<int> controls;
    for (int c = 0; c < num_controls; ++c) controls.push_back(width + c);

    // Encode `initial` and move to Fourier space.
    for (int q = 0; q < width; ++q) {
        if ((initial >> (width - 1 - q)) & 1) qc.x(q);
    }
    if (controls_on) {
        for (int c : controls) qc.x(c);
    }
    appendQft(qc, data);
    appendControlledAdder(qc, controls, data, a, buggy);
    appendIqft(qc, data);
    return qc;
}

} // namespace algos
} // namespace qa
