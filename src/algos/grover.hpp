/**
 * @file
 * Grover search. The diffusion operator 2|s><s| - I is exactly the
 * reflection the paper's NDD assertion synthesizes (Sec. V with the
 * roles of "correct" and "incorrect" swapped), and the state after
 * every iteration is known in closed form -- making Grover a natural
 * slot-assertion workload: one precise assertion per iteration.
 */
#ifndef QA_ALGOS_GROVER_HPP
#define QA_ALGOS_GROVER_HPP

#include <cstdint>

#include "circuit/circuit.hpp"
#include "linalg/vector.hpp"

namespace qa
{
namespace algos
{

/** Bug injected into the Grover iteration. */
enum class GroverBug
{
    kNone,
    kMissingDiffusionPhase, ///< The diffusion's central phase is dropped
                            ///< (the X-layer sandwich is emitted empty).
    kWrongMark              ///< The oracle marks target ^ 1 instead.
};

/**
 * Stage circuits over n qubits:
 *   stage 0: uniform superposition;
 *   stage 2k+1: oracle marking `target` (phase flip);
 *   stage 2k+2: diffusion about the mean.
 */
QuantumCircuit groverStage(int n, uint64_t target, int stage,
                           GroverBug bug = GroverBug::kNone);

/** Full program with the given number of iterations. */
QuantumCircuit groverProgram(int n, uint64_t target, int iterations,
                             GroverBug bug = GroverBug::kNone);

/**
 * Closed-form state after `iterations` Grover iterations:
 * sin((2k+1) theta)|target> + cos((2k+1) theta)|rest>,
 * sin(theta) = 2^{-n/2}.
 */
CVector groverExpectedState(int n, uint64_t target, int iterations);

/** The iteration count maximizing the success probability. */
int groverOptimalIterations(int n);

} // namespace algos
} // namespace qa

#endif // QA_ALGOS_GROVER_HPP
