#include "algos/qft.hpp"

#include <cmath>

namespace qa
{
namespace algos
{

void
appendQft(QuantumCircuit& circuit, const std::vector<int>& qubits,
          bool do_swaps)
{
    const int n = int(qubits.size());
    for (int i = 0; i < n; ++i) {
        circuit.h(qubits[i]);
        for (int j = i + 1; j < n; ++j) {
            circuit.cp(qubits[j], qubits[i], M_PI / double(1 << (j - i)));
        }
    }
    if (do_swaps) {
        for (int i = 0; i < n / 2; ++i) {
            circuit.swap(qubits[i], qubits[n - 1 - i]);
        }
    }
}

void
appendIqft(QuantumCircuit& circuit, const std::vector<int>& qubits,
           bool do_swaps)
{
    QuantumCircuit fwd(circuit.numQubits());
    appendQft(fwd, qubits, do_swaps);
    const QuantumCircuit inv = fwd.inverse();
    std::vector<int> ident;
    for (int q = 0; q < circuit.numQubits(); ++q) ident.push_back(q);
    circuit.compose(inv, ident);
}

QuantumCircuit
qft(int n, bool do_swaps)
{
    QuantumCircuit circuit(n);
    std::vector<int> qubits;
    for (int q = 0; q < n; ++q) qubits.push_back(q);
    appendQft(circuit, qubits, do_swaps);
    return circuit;
}

QuantumCircuit
iqft(int n, bool do_swaps)
{
    QuantumCircuit circuit(n);
    std::vector<int> qubits;
    for (int q = 0; q < n; ++q) qubits.push_back(q);
    appendIqft(circuit, qubits, do_swaps);
    return circuit;
}

} // namespace algos
} // namespace qa
