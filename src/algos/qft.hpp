/**
 * @file
 * Quantum Fourier transform circuits (with the inverse used by QPE and
 * the Fourier-space adder of Appendix D).
 */
#ifndef QA_ALGOS_QFT_HPP
#define QA_ALGOS_QFT_HPP

#include "circuit/circuit.hpp"

namespace qa
{
namespace algos
{

/**
 * Append the QFT on the listed qubits (qubits[0] = most significant).
 * @param do_swaps Include the final bit-reversal swap layer.
 */
void appendQft(QuantumCircuit& circuit, const std::vector<int>& qubits,
               bool do_swaps = true);

/** Append the inverse QFT. */
void appendIqft(QuantumCircuit& circuit, const std::vector<int>& qubits,
                bool do_swaps = true);

/** Standalone n-qubit QFT circuit. */
QuantumCircuit qft(int n, bool do_swaps = true);

/** Standalone n-qubit inverse QFT circuit. */
QuantumCircuit iqft(int n, bool do_swaps = true);

} // namespace algos
} // namespace qa

#endif // QA_ALGOS_QFT_HPP
