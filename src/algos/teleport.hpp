/**
 * @file
 * Quantum teleportation in the deferred-measurement form (controlled
 * corrections instead of classically-controlled gates, matching the
 * paper's constraint that real devices only measure at the end).
 * Teleportation is one of the entanglement workloads the paper's
 * related-work section motivates assertions with: the Bell resource
 * pair can be asserted mid-protocol, and the teleported qubit precisely
 * at the end.
 */
#ifndef QA_ALGOS_TELEPORT_HPP
#define QA_ALGOS_TELEPORT_HPP

#include "circuit/circuit.hpp"
#include "linalg/vector.hpp"

namespace qa
{
namespace algos
{

/** Bug injected into the teleportation protocol. */
enum class TeleportBug
{
    kNone,
    kMissingZCorrection, ///< The CZ correction is dropped.
    kWrongBellPair       ///< The resource pair is prepared as Psi+.
};

/**
 * Teleport `payload` (a single-qubit state prepared on qubit 0) onto
 * qubit 2 through a Bell pair on qubits (1, 2). After the protocol
 * qubit 2 holds the payload exactly and qubits (0, 1) are left in
 * |+>|+>.
 *
 * Stages (for slot-style assertion placement):
 *   0: payload preparation on qubit 0
 *   1: Bell-pair preparation on qubits (1, 2)
 *   2: Bell measurement basis rotation + deferred corrections
 */
QuantumCircuit teleportStage(const CVector& payload, int stage,
                             TeleportBug bug = TeleportBug::kNone);

/** The full three-stage program. */
QuantumCircuit teleportProgram(const CVector& payload,
                               TeleportBug bug = TeleportBug::kNone);

} // namespace algos
} // namespace qa

#endif // QA_ALGOS_TELEPORT_HPP
