/**
 * @file
 * Assertion-service job model: what a caller submits (JobSpec), what
 * comes back (JobResult), the canonical cache key over a spec, and the
 * pure execution function the scheduler workers dispatch.
 *
 * Determinism contract: executeJob is a pure function of the spec —
 * every stochastic draw comes from counter-based per-shot RNG streams
 * seeded by `spec.seed` (sim/engine.hpp) — so a job's result is
 * bit-identical regardless of which worker runs it, how many workers
 * the scheduler has, or the order jobs arrive in. The only exception is
 * a deadline truncation (which shots finish depends on wall-clock
 * timing); truncated results are therefore never cached.
 */
#ifndef QA_SERVE_JOB_HPP
#define QA_SERVE_JOB_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "acomp/compiler.hpp"
#include "circuit/circuit.hpp"
#include "circuit/qasm.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "backend/router.hpp"
#include "core/asserted_program.hpp"
#include "core/runner.hpp"
#include "sim/noise.hpp"
#include "sim/options.hpp"
#include "sim/result.hpp"

namespace qa
{
namespace serve
{

/**
 * One unit of service work: a circuit (or a full AssertedProgram), the
 * assertion slots to post-select on, a recovery policy, and the
 * execution knobs (shots, seed, deadline, priority).
 */
struct JobSpec
{
    /**
     * Circuit to execute (assertion fragments already inserted). Ignored
     * when `program` is set.
     */
    QuantumCircuit circuit{1};

    /**
     * Policy-aware path for in-process callers: when set, the job runs
     * runAssertedPolicy over the program (full abort/discard/retry/
     * repair support) instead of plain shot sampling. Shared so queued
     * copies of a job stay cheap.
     */
    std::shared_ptr<const AssertedProgram> program;

    /**
     * Assertion slots for the plain-circuit path: each inner vector
     * lists the classical bits of one slot (|0...0> = pass). The result
     * reports per-slot error rates and a histogram post-selected on
     * every slot passing. Only AssertionPolicy::kDiscard semantics are
     * available on this path; use `program` for the rest.
     */
    std::vector<std::vector<int>> assert_clbits;

    /** Recovery policy (program path; plain path must use kDiscard). */
    AssertionPolicy policy = AssertionPolicy::kDiscard;

    /** Attempt budget per shot under AssertionPolicy::kRetry. */
    int max_attempts = 3;

    /** Gate/readout noise; applied when enabled(). */
    NoiseModel noise;

    /**
     * Simulation-backend request: kAuto lets the router pick the
     * cheapest capable backend; an explicit kind is honored or the job
     * fails with kBadRequest when that backend cannot run it.
     */
    BackendRequest backend = defaults::kBackend;

    int shots = defaults::kShots;
    uint64_t seed = defaults::kSeed;

    /**
     * MPS backend knobs: the bond-dimension cap and the truncation
     * tolerance the router's capability check enforces. The cap is
     * absorbed into the cache key only when the job resolves to the MPS
     * backend (exact backends ignore it); the tolerance gates
     * capability only, and incapable jobs fail un-cached.
     */
    int mps_chi = defaults::kMpsChi;
    double mps_trunc_tol = defaults::kMpsTruncTol;

    /**
     * Threads for the job's own shot loop. The default keeps the
     * scheduler's worker pool as the only parallelism; raise it for
     * huge single jobs on an otherwise idle service.
     */
    int num_threads = defaults::kServeThreads;

    /** Per-job wall-clock budget (PR 2 cooperative cancellation). */
    double deadline_ms = 0.0;

    /** Higher runs first; FIFO within a priority level. */
    int priority = 0;

    /** Opt out of the cross-job result cache for this job. */
    bool use_cache = true;

    /**
     * Assertion-compiler path: treat `circuit` as a raw, assertion-free
     * program, discover invariants with acomp::generateAssertions, and
     * execute the lowered instrumented variants under `policy`.
     * Conflicts with `program` and with explicit `assert_clbits` slots
     * (kBadRequest). Absorbed into the cache key.
     */
    bool auto_assert = false;

    /** Lowering request for auto_assert slots; absorbed into the key. */
    acomp::LoweringRequest assert_lowering = acomp::LoweringRequest::kAuto;

    /**
     * Per-instruction source positions of `circuit` when it arrived as
     * QASM text (wire path) — anchors kUnsupportedAssertion diagnostics
     * and generated-slot reports to the submitted source. Not keyed
     * (pure metadata).
     */
    std::vector<QasmPos> qasm_positions;

    /** Caller-chosen label echoed in the result; not part of the key. */
    std::string tag;
};

/** Terminal state of a job. */
enum class JobStatus
{
    kOk,       ///< Executed (possibly truncated by its deadline).
    kFailed,   ///< Execution threw; see error_code/error_message.
    kCancelled ///< Scheduler stopped before the job ran.
};

/** Stable wire name of a job status. */
const char* jobStatusName(JobStatus status);

/** What the service hands back for one job. */
struct JobResult
{
    JobStatus status = JobStatus::kOk;

    /** Raw histogram over every classical bit (accepted shots). */
    Counts counts;

    /**
     * Program-output histogram: post-selected on all slots passing and
     * restricted to the non-assertion classical bits (plain path), or
     * the policy runner's accepted program counts (program path).
     * Equals `counts` when the job has no assertion slots.
     */
    Counts program_counts;

    /** Fraction of completed shots flagging each slot. */
    std::vector<double> slot_error_rate;

    /** Fraction of completed shots with no flagged slot. */
    double pass_rate = 1.0;

    /** True when the per-job deadline truncated the run. */
    bool truncated = false;

    /** True when the result came from the cross-job cache. */
    bool cache_hit = false;

    /** Which simulation backend the router resolved for this job. */
    backend::BackendChoice backend;

    /**
     * Cumulative truncation error the MPS preparation accepted
     * (discarded Schmidt weight of the shared prefix); 0.0 on exact
     * backends. Part of the deterministic payload.
     */
    double mps_truncation_error = 0.0;

    /** Failure classification when status == kFailed/kCancelled. */
    ErrorCode error_code = ErrorCode::kGeneric;
    std::string error_message;

    /** Milliseconds spent queued before a worker picked the job up. */
    double queue_ms = 0.0;

    /** Milliseconds spent executing (0 on a cache hit). */
    double exec_ms = 0.0;

    /**
     * Lowered assertion slots (auto_assert jobs): form, invariant
     * class, position, and resource budget per generated slot. Empty
     * when the generator found nothing to assert.
     */
    std::vector<acomp::SlotSummary> assertions;

    /** Sub-circuit variants executed round-robin (1 unless a slot
     *  lowered to kPauliSample). */
    int assert_variants = 1;

    /** Echo of JobSpec::tag. */
    std::string tag;
};

/**
 * Canonical cache key: covers everything the result depends on (circuit
 * or program structure, slots, policy, noise fingerprint, shots, seed,
 * and the RESOLVED simulation backend) and nothing it doesn't
 * (num_threads — results are bit-identical for any thread count on a
 * fixed backend — deadline, priority, tag). Cross-thread-count and
 * cross-deadline submissions therefore share cache entries safely.
 *
 * The resolved backend matters because different backends only agree
 * distributionally, not bit-wise. Routing is a pure function of fields
 * already in the key, so auto-routed jobs gain no key entropy: an
 * explicit request for the backend the router would pick anyway hashes
 * identically to the auto submission and shares its cache entry, while
 * forcing a different backend gets its own entry. Never throws — an
 * explicit request for an incapable backend keys on the requested kind
 * (such jobs fail in executeJob and failures are never cached).
 */
Hash128 jobKey(const JobSpec& spec);

/**
 * Execute one job synchronously on the calling thread (the scheduler
 * workers' dispatch target, also usable directly as the uncached
 * reference). Throws UserError on invalid specs (bad noise model,
 * unsupported policy/slot combination, non-positive shots).
 */
JobResult executeJob(const JobSpec& spec);

/**
 * 128-bit digest of a result's deterministic payload: status, counts,
 * program counts, slot error rates, pass rate, truncation flag, and —
 * for failures — the error code. Timing (queue_ms/exec_ms), cache_hit,
 * and the tag are excluded, so two executions of the same JobSpec hash
 * identically. Journal completion records carry this digest; replay
 * recomputes it to prove bit-identical re-execution.
 */
Hash128 payloadHash(const JobResult& result);

} // namespace serve
} // namespace qa

#endif // QA_SERVE_JOB_HPP
