#include "serve/wire.hpp"

#include <istream>
#include <sstream>

#include "circuit/qasm.hpp"
#include "common/error.hpp"

namespace qa
{
namespace serve
{

namespace
{

NoiseModel
decodeNoise(const JsonValue& noise)
{
    if (noise.isNull()) return NoiseModel{};
    std::string kind;
    if (noise.isString()) {
        kind = noise.asString();
    } else if (noise.isObject()) {
        kind = noise.stringOr("kind", "");
    } else {
        QA_FAIL_CODE(ErrorCode::kBadRequest,
                     "noise must be a string or an object");
    }
    if (kind.empty() || kind == "none") return NoiseModel{};
    if (kind == "melbourne" || kind == "ibmq_melbourne") {
        return NoiseModel::ibmqMelbourneLike();
    }
    if (kind == "depolarizing") {
        QA_REQUIRE_CODE(noise.isObject(), ErrorCode::kBadRequest,
                        "depolarizing noise needs p1/p2 fields");
        const double p1 = noise.numberOr("p1", 0.0);
        const double p2 = noise.numberOr("p2", 0.0);
        return NoiseModel::depolarizing(p1, p2);
    }
    QA_FAIL_CODE(ErrorCode::kBadRequest,
                 "unknown noise kind '" + kind +
                     "' (expected none|melbourne|depolarizing)");
}

std::vector<std::vector<int>>
decodeSlots(const JsonValue& slots)
{
    std::vector<std::vector<int>> out;
    for (const JsonValue& slot : slots.asArray()) {
        std::vector<int> clbits;
        for (const JsonValue& bit : slot.asArray()) {
            clbits.push_back(int(bit.asInt()));
        }
        out.push_back(std::move(clbits));
    }
    return out;
}

void
encodeCounts(std::ostringstream& oss, const Counts& counts)
{
    oss << "{";
    bool first = true;
    for (const auto& [bits, n] : counts.map) {
        if (!first) oss << ",";
        first = false;
        oss << "\"" << jsonEscape(bits) << "\":" << n;
    }
    oss << "}";
}

void
encodeIntArray(std::ostringstream& oss, const std::vector<int>& values)
{
    oss << "[";
    for (size_t i = 0; i < values.size(); ++i) {
        if (i) oss << ",";
        oss << values[i];
    }
    oss << "]";
}

/**
 * The assertion compiler's lowering report, shared by run results,
 * replay lines, and auto_assert explains: `,"auto_assert":{...}`.
 */
void
encodeAutoAssert(std::ostringstream& oss,
                 const std::vector<acomp::SlotSummary>& slots,
                 int variants)
{
    oss << ",\"auto_assert\":{\"generated\":" << slots.size()
        << ",\"variants\":" << variants << ",\"slots\":[";
    for (size_t i = 0; i < slots.size(); ++i) {
        const acomp::SlotSummary& slot = slots[i];
        if (i) oss << ",";
        oss << "{\"form\":\"" << acomp::formName(slot.form) << "\""
            << ",\"invariant\":\""
            << acomp::invariantClassName(slot.invariant) << "\""
            << ",\"position\":" << slot.position << ",\"qubits\":";
        encodeIntArray(oss, slot.qubits);
        oss << ",\"clbits\":";
        encodeIntArray(oss, slot.clbits);
        oss << ",\"ancillas\":" << slot.ancillas.size()
            << ",\"gates\":" << slot.gates << ",\"cx\":" << slot.cx
            << ",\"sub_circuits\":" << slot.sub_circuits
            << ",\"generators\":" << slot.generators;
        if (slot.source_line > 0) {
            oss << ",\"source\":{\"line\":" << slot.source_line
                << ",\"col\":" << slot.source_col << "}";
        }
        oss << "}";
    }
    oss << "]}";
}

/** The MPS facts block for results that resolved to the MPS backend. */
void
encodeMpsBlock(std::ostringstream& oss, const JobResult& result)
{
    oss << ",\"mps\":{\"chi\":" << result.backend.mps_chi
        << ",\"ent_width\":" << result.backend.mps_ent_width
        << ",\"trunc_bound\":"
        << jsonNumber(result.backend.mps_trunc_bound)
        << ",\"truncation_error\":"
        << jsonNumber(result.mps_truncation_error) << "}";
}

void
encodeHistogram(std::ostringstream& oss, const char* name,
                const LatencyHistogramSnapshot& hist)
{
    oss << "\"" << name << "\":{\"total\":" << hist.total
        << ",\"mean_ms\":" << jsonNumber(hist.meanMs())
        << ",\"max_ms\":" << jsonNumber(hist.max_ms) << ",\"buckets\":[";
    for (size_t i = 0; i < hist.counts.size(); ++i) {
        if (i) oss << ",";
        oss << hist.counts[i];
    }
    oss << "]}";
}

} // namespace

std::string
requestId(const JsonValue& request)
{
    const JsonValue* id = request.find("id");
    if (id == nullptr) return "";
    if (id->isString()) return id->asString();
    if (id->isNumber()) return jsonNumber(id->asNumber());
    return "";
}

WireRequest
buildRequest(const JsonValue& request)
{
    QA_REQUIRE_CODE(request.isObject(), ErrorCode::kBadRequest,
                    "request must be a JSON object");
    WireRequest out;
    out.id = requestId(request);

    const std::string op = request.stringOr("op", "run");
    if (op == "metrics") {
        out.op = RequestOp::kMetrics;
        return out;
    }
    if (op == "ping") {
        out.op = RequestOp::kPing;
        return out;
    }
    if (op == "shutdown") {
        out.op = RequestOp::kShutdown;
        return out;
    }
    QA_REQUIRE_CODE(op == "run" || op == "explain",
                    ErrorCode::kBadRequest,
                    "unknown op '" + op +
                        "' (expected run|explain|metrics|ping|shutdown)");
    if (op == "explain") out.op = RequestOp::kExplain;

    const JsonValue* qasm = request.find("qasm");
    QA_REQUIRE_CODE(qasm != nullptr && qasm->isString(),
                    ErrorCode::kBadRequest,
                    "run request needs a string 'qasm' field");
    out.spec.circuit =
        parseQasm(qasm->asString(), &out.spec.qasm_positions);
    out.spec.shots = int(request.intOr("shots", out.spec.shots));
    QA_REQUIRE_CODE(out.spec.shots > 0, ErrorCode::kBadRequest,
                    "shots must be positive");
    out.spec.seed = uint64_t(request.intOr("seed", int64_t(out.spec.seed)));
    out.spec.deadline_ms = request.numberOr("deadline_ms", 0.0);
    out.spec.priority = int(request.intOr("priority", 0));
    // Defaults live on JobSpec (sim/options.hpp defaults namespace);
    // the wire layer only overrides what the request names.
    out.spec.num_threads =
        int(request.intOr("threads", out.spec.num_threads));
    out.spec.use_cache = request.boolOr("cache", true);
    const std::string backend =
        request.stringOr("backend", backendRequestName(out.spec.backend));
    QA_REQUIRE_CODE(parseBackendRequest(backend, &out.spec.backend),
                    ErrorCode::kBadRequest,
                    "unknown backend '" + backend +
                        "' (expected auto|statevector|density_matrix|"
                        "stabilizer|mps)");
    out.spec.mps_chi = int(request.intOr("mps_chi", out.spec.mps_chi));
    QA_REQUIRE_CODE(out.spec.mps_chi >= 1 && out.spec.mps_chi <= 1024,
                    ErrorCode::kBadRequest,
                    "mps_chi must be in [1, 1024]");
    out.spec.mps_trunc_tol =
        request.numberOr("mps_tol", out.spec.mps_trunc_tol);
    QA_REQUIRE_CODE(out.spec.mps_trunc_tol >= 0.0, ErrorCode::kBadRequest,
                    "mps_tol must be non-negative");
    out.spec.tag = out.id;
    out.spec.auto_assert = request.boolOr("auto_assert", false);
    const std::string lowering = request.stringOr(
        "assert_lowering",
        acomp::loweringRequestName(out.spec.assert_lowering));
    QA_REQUIRE_CODE(
        acomp::parseLoweringRequest(lowering, &out.spec.assert_lowering),
        ErrorCode::kBadRequest,
        "unknown assert_lowering '" + lowering +
            "' (expected auto|swap|or|ndd|pauli|pauli_sample)");
    if (const JsonValue* slots = request.find("assert_clbits")) {
        out.spec.assert_clbits = decodeSlots(*slots);
    }
    if (const JsonValue* noise = request.find("noise")) {
        out.spec.noise = decodeNoise(*noise);
    }
    return out;
}

WireRequest
parseRequest(const std::string& line)
{
    return buildRequest(JsonValue::parse(line));
}

std::string
encodeResult(const std::string& id, const JobResult& result)
{
    if (result.status != JobStatus::kOk) {
        return encodeError(id.empty() ? result.tag : id, result.error_code,
                           result.error_message);
    }
    std::ostringstream oss;
    oss << "{\"id\":\"" << jsonEscape(id) << "\",\"status\":\"ok\""
        << ",\"cache_hit\":" << (result.cache_hit ? "true" : "false")
        << ",\"backend\":\"" << backendName(result.backend.backend)
        << "\""
        << ",\"shots\":" << result.counts.shots
        << ",\"truncated\":" << (result.truncated ? "true" : "false")
        << ",\"pass_rate\":" << jsonNumber(result.pass_rate);
    oss << ",\"slot_error_rate\":[";
    for (size_t i = 0; i < result.slot_error_rate.size(); ++i) {
        if (i) oss << ",";
        oss << jsonNumber(result.slot_error_rate[i]);
    }
    oss << "]";
    oss << ",\"counts\":";
    encodeCounts(oss, result.counts);
    if (!result.slot_error_rate.empty()) {
        oss << ",\"program_counts\":";
        encodeCounts(oss, result.program_counts);
        oss << ",\"accepted_shots\":" << result.program_counts.shots;
    }
    if (!result.assertions.empty()) {
        encodeAutoAssert(oss, result.assertions, result.assert_variants);
    }
    if (result.backend.backend == BackendKind::kMps) {
        encodeMpsBlock(oss, result);
    }
    oss << ",\"queue_ms\":" << jsonNumber(result.queue_ms)
        << ",\"exec_ms\":" << jsonNumber(result.exec_ms) << "}";
    return oss.str();
}

std::string
encodeReplay(const std::string& id, const JobResult& result)
{
    if (result.status != JobStatus::kOk) {
        return encodeError(id.empty() ? result.tag : id, result.error_code,
                           result.error_message);
    }
    std::ostringstream oss;
    oss << "{\"id\":\"" << jsonEscape(id) << "\",\"status\":\"ok\""
        << ",\"backend\":\"" << backendName(result.backend.backend)
        << "\""
        << ",\"shots\":" << result.counts.shots
        << ",\"truncated\":" << (result.truncated ? "true" : "false")
        << ",\"pass_rate\":" << jsonNumber(result.pass_rate);
    oss << ",\"slot_error_rate\":[";
    for (size_t i = 0; i < result.slot_error_rate.size(); ++i) {
        if (i) oss << ",";
        oss << jsonNumber(result.slot_error_rate[i]);
    }
    oss << "]";
    oss << ",\"counts\":";
    encodeCounts(oss, result.counts);
    if (!result.slot_error_rate.empty()) {
        oss << ",\"program_counts\":";
        encodeCounts(oss, result.program_counts);
        oss << ",\"accepted_shots\":" << result.program_counts.shots;
    }
    if (!result.assertions.empty()) {
        encodeAutoAssert(oss, result.assertions, result.assert_variants);
    }
    if (result.backend.backend == BackendKind::kMps) {
        encodeMpsBlock(oss, result);
    }
    oss << "}";
    return oss.str();
}

std::string
encodeError(const std::string& id, ErrorCode code,
            const std::string& message, double retry_after_ms)
{
    std::ostringstream oss;
    oss << "{\"id\":\"" << jsonEscape(id) << "\",\"status\":\"error\""
        << ",\"code\":\"" << errorCodeName(code) << "\""
        << ",\"message\":\"" << jsonEscape(message) << "\"";
    if (retry_after_ms > 0.0) {
        oss << ",\"retry_after_ms\":" << jsonNumber(retry_after_ms);
    }
    oss << "}";
    return oss.str();
}

std::string
encodePing(const std::string& id, size_t queue_depth, size_t in_flight)
{
    std::ostringstream oss;
    oss << "{\"id\":\"" << jsonEscape(id) << "\",\"status\":\"ok\""
        << ",\"pong\":true,\"queue_depth\":" << queue_depth
        << ",\"in_flight\":" << in_flight << "}";
    return oss.str();
}

bool
peekResponseId(const std::string& line, std::string* id)
{
    static const std::string kPrefix = "{\"id\":\"";
    if (line.compare(0, kPrefix.size(), kPrefix) != 0) return false;
    const size_t start = kPrefix.size();
    const size_t end = line.find('"', start);
    if (end == std::string::npos) return false;
    if (line.find('\\', start) < end) return false; // escaped: full parse
    id->assign(line, start, end - start);
    return true;
}

std::string
encodeExplain(const std::string& id, const backend::BackendChoice& choice,
              const acomp::CompiledProgram* compiled)
{
    std::ostringstream oss;
    oss << "{\"id\":\"" << jsonEscape(id) << "\",\"status\":\"ok\""
        << ",\"class\":\""
        << backend::circuitClassName(choice.klass) << "\""
        << ",\"backend\":\"" << backendName(choice.backend) << "\""
        << ",\"explicit\":" << (choice.explicit_request ? "true" : "false")
        << ",\"capable\":" << (choice.capable ? "true" : "false")
        << ",\"non_clifford_gates\":" << choice.non_clifford_gates
        << ",\"fusion\":{\"enabled\":"
        << (choice.fusion_enabled ? "true" : "false")
        << ",\"gates_in\":" << choice.fusion.gates_in
        << ",\"gates_out\":" << choice.fusion.gates_out
        << ",\"fused_groups\":" << choice.fusion.fused_groups
        << ",\"max_group\":" << choice.fusion.max_group
        << ",\"ratio\":" << jsonNumber(choice.fusion.ratio())
        << ",\"kernels\":{";
    bool first = true;
    for (const auto& [name, n] : choice.fusion.kernel_counts) {
        if (!first) oss << ",";
        first = false;
        oss << "\"" << jsonEscape(name) << "\":" << n;
    }
    oss << "}}"
        << ",\"mps\":{\"chi\":" << choice.mps_chi
        << ",\"ent_width\":" << choice.mps_ent_width
        << ",\"trunc_bound\":" << jsonNumber(choice.mps_trunc_bound)
        << "}"
        << ",\"reason\":\"" << jsonEscape(choice.reason) << "\"";
    if (compiled != nullptr) {
        encodeAutoAssert(oss, compiled->slots,
                         int(compiled->variants.size()));
    }
    oss << "}";
    return oss.str();
}

std::string
encodeMetrics(const MetricsSnapshot& snapshot)
{
    std::ostringstream oss;
    oss << "{\"status\":\"ok\",\"metrics\":{"
        << "\"accepted\":" << snapshot.accepted
        << ",\"rejected\":" << snapshot.rejected
        << ",\"completed\":" << snapshot.completed
        << ",\"failed\":" << snapshot.failed
        << ",\"cancelled\":" << snapshot.cancelled
        << ",\"retried\":" << snapshot.retried
        << ",\"shed\":" << snapshot.shed
        << ",\"worker_lost\":" << snapshot.worker_lost
        << ",\"respawned\":" << snapshot.respawned
        << ",\"queue_depth\":" << snapshot.queue_depth
        << ",\"in_flight\":" << snapshot.in_flight
        << ",\"cache_hits\":" << snapshot.cache_hits
        << ",\"cache_misses\":" << snapshot.cache_misses
        << ",\"cache_insertions\":" << snapshot.cache_insertions
        << ",\"cache_evictions\":" << snapshot.cache_evictions
        << ",\"cache_entries\":" << snapshot.cache_entries
        << ",\"cache_hit_rate\":" << jsonNumber(snapshot.cacheHitRate())
        << ",\"backend_jobs\":{"
        << "\"statevector\":" << snapshot.backend_statevector
        << ",\"density_matrix\":" << snapshot.backend_density_matrix
        << ",\"stabilizer\":" << snapshot.backend_stabilizer
        << ",\"mps\":" << snapshot.backend_mps << "}"
        << ",";
    encodeHistogram(oss, "queue_wait_ms", snapshot.queue_wait);
    oss << ",";
    encodeHistogram(oss, "execute_ms", snapshot.execute);
    oss << "}}";
    return oss.str();
}

ReadLineStatus
readLineBounded(std::istream& in, std::string* out, size_t max_len)
{
    out->clear();
    bool overflow = false;
    for (;;) {
        const int ch = in.get();
        if (ch == std::char_traits<char>::eof()) {
            // EOF (or a failed read, e.g. EINTR from a drain signal)
            // with buffered bytes still yields the partial line.
            if (out->empty() && !overflow) return ReadLineStatus::kEof;
            break;
        }
        if (ch == '\n') break;
        if (overflow) continue; // discard to the terminator
        if (out->size() >= max_len) {
            overflow = true;
            out->clear();
            continue;
        }
        out->push_back(char(ch));
    }
    return overflow ? ReadLineStatus::kOverflow : ReadLineStatus::kOk;
}

} // namespace serve
} // namespace qa
