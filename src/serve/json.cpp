#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace qa
{
namespace serve
{

namespace
{

constexpr int kMaxDepth = 64;

} // namespace

/** Single-pass recursive-descent parser over the document string. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue value = parseValue(0);
        skipSpace();
        require(pos_ == text_.size(), "trailing characters after value");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string& msg) const
    {
        QA_FAIL_CODE(ErrorCode::kBadRequest,
                     "JSON: " + msg + " at offset " +
                         std::to_string(pos_));
    }

    void
    require(bool cond, const std::string& msg) const
    {
        if (!cond) fail(msg);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        require(pos_ < text_.size(), "unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        require(pos_ < text_.size() && text_[pos_] == c,
                std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char* literal)
    {
        size_t n = 0;
        while (literal[n] != '\0') ++n;
        if (text_.compare(pos_, n, literal) != 0) return false;
        pos_ += n;
        return true;
    }

    JsonValue
    parseValue(int depth)
    {
        require(depth < kMaxDepth, "nesting too deep");
        skipSpace();
        const char c = peek();
        if (c == '{') return parseObject(depth);
        if (c == '[') return parseArray(depth);
        if (c == '"') {
            JsonValue v;
            v.kind_ = JsonValue::Kind::kString;
            v.string_ = parseString();
            return v;
        }
        if (consumeLiteral("true")) {
            JsonValue v;
            v.kind_ = JsonValue::Kind::kBool;
            v.bool_ = true;
            return v;
        }
        if (consumeLiteral("false")) {
            JsonValue v;
            v.kind_ = JsonValue::Kind::kBool;
            v.bool_ = false;
            return v;
        }
        if (consumeLiteral("null")) return JsonValue();
        if (c == '-' || (c >= '0' && c <= '9')) return parseNumber();
        fail(std::string("unexpected character '") + c + "'");
    }

    JsonValue
    parseObject(int depth)
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kObject;
        expect('{');
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipSpace();
            require(peek() == '"', "object key must be a string");
            std::string key = parseString();
            skipSpace();
            expect(':');
            // Duplicate keys are ambiguous (last-wins vs first-wins
            // differs between readers); a strict wire protocol rejects
            // them instead of guessing the sender's intent.
            require(v.object_.count(key) == 0,
                    "duplicate object key '" + key + "'");
            v.object_[std::move(key)] = parseValue(depth + 1);
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray(int depth)
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kArray;
        expect('[');
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array_.push_back(parseValue(depth + 1));
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    parseNumber()
    {
        // Walk the JSON number grammar by hand first: strtod alone
        // accepts forms JSON forbids (leading zeros, "1.", ".5", hex,
        // inf/nan) and a strict wire protocol must reject them.
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        require(pos_ < text_.size() && isDigit(text_[pos_]),
                "malformed number");
        if (text_[pos_] == '0') {
            ++pos_;
            require(pos_ >= text_.size() || !isDigit(text_[pos_]),
                    "leading zeros are not allowed");
        } else {
            while (pos_ < text_.size() && isDigit(text_[pos_])) ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            require(pos_ < text_.size() && isDigit(text_[pos_]),
                    "digit required after decimal point");
            while (pos_ < text_.size() && isDigit(text_[pos_])) ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            require(pos_ < text_.size() && isDigit(text_[pos_]),
                    "digit required in exponent");
            while (pos_ < text_.size() && isDigit(text_[pos_])) ++pos_;
        }

        const char* begin = text_.c_str() + start;
        char* end = nullptr;
        const double value = std::strtod(begin, &end);
        require(end == text_.c_str() + pos_, "malformed number");
        require(std::isfinite(value), "number out of range");
        JsonValue v;
        v.kind_ = JsonValue::Kind::kNumber;
        v.number_ = value;
        return v;
    }

    static bool
    isDigit(char c)
    {
        return c >= '0' && c <= '9';
    }

    /** Append a code point as UTF-8. */
    void
    appendUtf8(std::string& out, uint32_t cp)
    {
        if (cp < 0x80) {
            out.push_back(char(cp));
        } else if (cp < 0x800) {
            out.push_back(char(0xC0 | (cp >> 6)));
            out.push_back(char(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(char(0xE0 | (cp >> 12)));
            out.push_back(char(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(char(0x80 | (cp & 0x3F)));
        }
    }

    uint32_t
    parseHex4()
    {
        require(pos_ + 4 <= text_.size(), "truncated \\u escape");
        uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            value <<= 4;
            if (c >= '0' && c <= '9') value |= uint32_t(c - '0');
            else if (c >= 'a' && c <= 'f') value |= uint32_t(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') value |= uint32_t(c - 'A' + 10);
            else fail("invalid \\u escape digit");
        }
        return value;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            require(pos_ < text_.size(), "unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (uint8_t(c) < 0x20) fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            require(pos_ < text_.size(), "truncated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                const uint32_t cp = parseHex4();
                require(cp < 0xD800 || cp > 0xDFFF,
                        "surrogate pairs are not supported");
                appendUtf8(out, cp);
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    const std::string& text_;
    size_t pos_ = 0;
};

JsonValue
JsonValue::parse(const std::string& text)
{
    return JsonParser(text).parseDocument();
}

namespace
{

[[noreturn]] void
wrongKind(const char* wanted)
{
    QA_FAIL_CODE(ErrorCode::kBadRequest,
                 std::string("JSON: expected ") + wanted);
}

} // namespace

bool
JsonValue::asBool() const
{
    if (!isBool()) wrongKind("a boolean");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (!isNumber()) wrongKind("a number");
    return number_;
}

int64_t
JsonValue::asInt() const
{
    const double v = asNumber();
    const double rounded = std::nearbyint(v);
    QA_REQUIRE_CODE(rounded == v && std::abs(v) <= 9.007199254740992e15,
                    ErrorCode::kBadRequest,
                    "JSON: expected an integer");
    return int64_t(rounded);
}

const std::string&
JsonValue::asString() const
{
    if (!isString()) wrongKind("a string");
    return string_;
}

const std::vector<JsonValue>&
JsonValue::asArray() const
{
    if (!isArray()) wrongKind("an array");
    return array_;
}

const std::map<std::string, JsonValue>&
JsonValue::asObject() const
{
    if (!isObject()) wrongKind("an object");
    return object_;
}

const JsonValue*
JsonValue::find(const std::string& key) const
{
    if (!isObject()) return nullptr;
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

double
JsonValue::numberOr(const std::string& key, double fallback) const
{
    const JsonValue* v = find(key);
    return v == nullptr || v->isNull() ? fallback : v->asNumber();
}

int64_t
JsonValue::intOr(const std::string& key, int64_t fallback) const
{
    const JsonValue* v = find(key);
    return v == nullptr || v->isNull() ? fallback : v->asInt();
}

bool
JsonValue::boolOr(const std::string& key, bool fallback) const
{
    const JsonValue* v = find(key);
    return v == nullptr || v->isNull() ? fallback : v->asBool();
}

std::string
JsonValue::stringOr(const std::string& key,
                    const std::string& fallback) const
{
    const JsonValue* v = find(key);
    return v == nullptr || v->isNull() ? fallback : v->asString();
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeNumber(double value)
{
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = value;
    return v;
}

void
JsonValue::set(const std::string& key, JsonValue value)
{
    if (kind_ == Kind::kNull) kind_ = Kind::kObject;
    QA_REQUIRE_CODE(kind_ == Kind::kObject, ErrorCode::kBadRequest,
                    "set() needs an object value");
    object_[key] = std::move(value);
}

std::string
JsonValue::dump() const
{
    std::ostringstream oss;
    switch (kind_) {
      case Kind::kNull:
        oss << "null";
        break;
      case Kind::kBool:
        oss << (bool_ ? "true" : "false");
        break;
      case Kind::kNumber:
        oss << jsonNumber(number_);
        break;
      case Kind::kString:
        oss << "\"" << jsonEscape(string_) << "\"";
        break;
      case Kind::kArray: {
        oss << "[";
        bool first = true;
        for (const JsonValue& v : array_) {
            if (!first) oss << ",";
            first = false;
            oss << v.dump();
        }
        oss << "]";
        break;
      }
      case Kind::kObject: {
        oss << "{";
        bool first = true;
        for (const auto& [key, v] : object_) {
            if (!first) oss << ",";
            first = false;
            oss << "\"" << jsonEscape(key) << "\":" << v.dump();
        }
        oss << "}";
        break;
      }
    }
    return oss.str();
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (uint8_t(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (v == std::nearbyint(v) && std::abs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace serve
} // namespace qa
