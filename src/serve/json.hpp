/**
 * @file
 * Minimal JSON value model and recursive-descent parser for the
 * qassertd wire protocol (newline-delimited JSON). Implemented from
 * scratch like the rest of the stack — the parser covers the full JSON
 * grammar (objects, arrays, strings with escapes incl. \uXXXX basic
 * plane, numbers, booleans, null) with a nesting-depth bound, and every
 * syntax error throws UserError(ErrorCode::kBadRequest) with an offset.
 *
 * Not a streaming parser, not zero-copy, no comments/trailing commas:
 * requests are single lines of a few kilobytes and simplicity wins.
 */
#ifndef QA_SERVE_JSON_HPP
#define QA_SERVE_JSON_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qa
{
namespace serve
{

/** One parsed JSON value (a tagged union over the standard kinds). */
class JsonValue
{
  public:
    enum class Kind
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject
    };

    /** Parse a complete document; trailing garbage is an error. */
    static JsonValue parse(const std::string& text);

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::kNull; }
    bool isBool() const { return kind_ == Kind::kBool; }
    bool isNumber() const { return kind_ == Kind::kNumber; }
    bool isString() const { return kind_ == Kind::kString; }
    bool isArray() const { return kind_ == Kind::kArray; }
    bool isObject() const { return kind_ == Kind::kObject; }

    /** Checked accessors; wrong-kind access throws kBadRequest. */
    bool asBool() const;
    double asNumber() const;
    /** asNumber, additionally requiring an exact integer value. */
    int64_t asInt() const;
    const std::string& asString() const;
    const std::vector<JsonValue>& asArray() const;
    const std::map<std::string, JsonValue>& asObject() const;

    /** Object member lookup; null when absent or not an object. */
    const JsonValue* find(const std::string& key) const;

    /** @name Defaulted object-member readers for optional fields. */
    ///@{
    double numberOr(const std::string& key, double fallback) const;
    int64_t intOr(const std::string& key, int64_t fallback) const;
    bool boolOr(const std::string& key, bool fallback) const;
    std::string stringOr(const std::string& key,
                         const std::string& fallback) const;
    ///@}

    /** @name Construction helpers (used by tests and the router). */
    ///@{
    static JsonValue makeString(std::string s);
    static JsonValue makeNumber(double v);
    ///@}

    /**
     * Set (inserting or replacing) an object member. Turns a null value
     * into an empty object first; any other non-object kind throws
     * kBadRequest. The fleet router uses this to rewrite request ids
     * before forwarding.
     */
    void set(const std::string& key, JsonValue value);

    /**
     * Serialize back to a single-line JSON document. Object members are
     * emitted in key-sorted order (the internal map order), strings via
     * jsonEscape, numbers via jsonNumber — so dump(parse(x)) is stable
     * and dump output always re-parses to an equal value, though it need
     * not be byte-identical to the original text.
     */
    std::string dump() const;

  private:
    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;

    friend class JsonParser;
};

/** Escape a string for embedding in a JSON document (no quotes added). */
std::string jsonEscape(const std::string& s);

/**
 * Render a double the way the wire wants it: integers without a
 * fraction, everything else with enough digits to round-trip.
 */
std::string jsonNumber(double v);

} // namespace serve
} // namespace qa

#endif // QA_SERVE_JSON_HPP
