#include "serve/listen.hpp"

#include <unistd.h>

#include <cerrno>

#include "acomp/compiler.hpp"
#include "backend/router.hpp"
#include "common/error.hpp"
#include "common/net.hpp"
#include "serve/wire.hpp"

namespace qa
{
namespace serve
{

LineService::LineService(Scheduler& scheduler,
                         resilience::Journal* journal,
                         const Options& options)
    : scheduler_(scheduler), journal_(journal), options_(options)
{}

std::string
LineService::overflowError(size_t max_line) const
{
    return encodeError("", ErrorCode::kBadRequest,
                       "input line exceeds the " +
                           std::to_string(max_line) +
                           "-byte bound; request rejected unread");
}

bool
LineService::handleLine(const std::string& line, const Emit& emit)
{
    if (line.find_first_not_of(" \t\r") == std::string::npos) return true;

    JsonValue parsed;
    try {
        parsed = JsonValue::parse(line);
    } catch (const UserError& err) {
        emit(encodeError("", err.code(), err.what()));
        return true;
    }
    const std::string id = requestId(parsed);

    try {
        WireRequest request = buildRequest(parsed);
        // --auto-assert is a default, not an override: requests that
        // name the field (either value) keep their own.
        if (options_.auto_assert &&
            parsed.find("auto_assert") == nullptr) {
            request.spec.auto_assert = true;
        }
        if (request.op == RequestOp::kPing) {
            // Answered on the read loop, never queued: the fleet
            // router's health prober needs pongs even when every
            // worker is busy and the queue is full.
            emit(encodePing(id, scheduler_.queueDepth(),
                            scheduler_.inFlight()));
            return true;
        }
        if (request.op == RequestOp::kMetrics) {
            emit(encodeMetrics(scheduler_.metrics()));
            return true;
        }
        if (request.op == RequestOp::kExplain) {
            // Route without executing: same analysis the scheduler
            // path runs, zero shots.
            SimOptions sim;
            sim.shots = request.spec.shots;
            sim.seed = request.spec.seed;
            sim.noise = request.spec.noise.enabled()
                            ? &request.spec.noise
                            : nullptr;
            sim.backend = request.spec.backend;
            sim.mps_chi = request.spec.mps_chi;
            sim.mps_trunc_tol = request.spec.mps_trunc_tol;
            if (request.spec.auto_assert) {
                // Compile, then route the instrumented variant 0 —
                // the circuit an auto_assert run would execute.
                acomp::AcompOptions aopts;
                aopts.lowering = request.spec.assert_lowering;
                aopts.backend = request.spec.backend;
                const acomp::CompiledProgram compiled = acomp::autoAssert(
                    request.spec.circuit, aopts,
                    request.spec.qasm_positions.empty()
                        ? nullptr
                        : &request.spec.qasm_positions);
                emit(encodeExplain(
                    id, backend::routeShots(compiled.variants[0], sim),
                    &compiled));
                return true;
            }
            emit(encodeExplain(
                id, backend::routeShots(request.spec.circuit, sim)));
            return true;
        }
        if (request.op == RequestOp::kShutdown) return false;

        uint64_t seq = 0;
        {
            // One write-ahead stream across every connection: the seq
            // mint and the accept record must be one atomic step or two
            // connections could interleave them out of order.
            std::lock_guard<std::mutex> lock(journal_mutex_);
            seq = journal_seq_++;
            if (journal_ != nullptr) journal_->appendAccept(seq, line);
        }
        resilience::Journal* journal_raw = journal_;
        try {
            scheduler_.submit(
                std::move(request.spec),
                [id, seq, emit, journal_raw](JobResult result) {
                    if (journal_raw != nullptr) {
                        journal_raw->appendComplete(
                            seq, jobStatusName(result.status),
                            payloadHash(result).str());
                    }
                    emit(encodeResult(id, result));
                });
        } catch (const UserError&) {
            // Admission refused after the write-ahead record: close
            // the journal entry so replay does not resurrect a job
            // the caller saw rejected.
            if (journal_ != nullptr) {
                journal_->appendComplete(seq, "rejected", "");
            }
            throw;
        }
    } catch (const UserError& err) {
        // Saturation rejections carry the scheduler's own estimate of
        // when a resubmission could succeed, so routers and
        // well-behaved clients back off instead of hammering.
        emit(encodeError(id, err.code(), err.what(),
                         scheduler_.retryAfterMsHint(err.code())));
    }
    return true;
}

/**
 * One accepted connection: the reader thread owns the receive side,
 * the locked writer (shared with scheduler callbacks) owns the send
 * side, and the fd is closed only when the last reference — possibly a
 * completion callback firing after the connection died — lets go.
 */
struct SocketServer::Connection
{
    int fd = -1;
    double write_timeout_ms = 10000.0;
    std::thread reader;
    std::mutex write_mutex;
    bool write_dead = false;
    std::atomic<bool> done{false};

    ~Connection()
    {
        net::closeQuiet(fd);
    }

    void
    writeLine(const std::string& line)
    {
        std::lock_guard<std::mutex> lock(write_mutex);
        if (write_dead) return;
        std::string buf = line;
        buf.push_back('\n');
        if (!net::writeAllBounded(fd, buf.data(), buf.size(),
                                  write_timeout_ms)) {
            // Client gone or wedged past the bound: stop writing (the
            // reader will observe the death too) but keep the fd open
            // for the remaining callback holders.
            write_dead = true;
            net::shutdownBoth(fd);
        }
    }

    void
    teardown()
    {
        net::shutdownBoth(fd);
    }
};

namespace
{

/** Bounded poll-driven NDJSON reader for one connection fd. */
class ConnReader
{
  public:
    ConnReader(int fd, size_t max_len, double poll_ms)
        : fd_(fd), max_len_(max_len), poll_ms_(poll_ms)
    {}

    enum class Status
    {
        kOk,
        kEof,
        kOverflow,
        kIdle ///< Poll tick elapsed with no data (caller checks flags).
    };

    Status
    next(std::string* out)
    {
        out->clear();
        for (;;) {
            const size_t nl = buffer_.find('\n', scanned_);
            if (nl != std::string::npos) {
                const bool overflow = overflow_ || nl > max_len_;
                if (!overflow) out->assign(buffer_, 0, nl);
                buffer_.erase(0, nl + 1);
                scanned_ = 0;
                overflow_ = false;
                return overflow ? Status::kOverflow : Status::kOk;
            }
            scanned_ = buffer_.size();
            if (buffer_.size() > max_len_ && !overflow_) {
                overflow_ = true; // keep consuming to the newline
                buffer_.clear();
                scanned_ = 0;
            }
            if (eof_) {
                if (buffer_.empty() && !overflow_) return Status::kEof;
                const bool overflow = overflow_;
                if (!overflow) out->assign(buffer_);
                buffer_.clear();
                overflow_ = false;
                return overflow ? Status::kOverflow : Status::kOk;
            }
            if (!net::pollReadable(fd_, poll_ms_)) return Status::kIdle;
            char chunk[4096];
            const ssize_t n = ::read(fd_, chunk, sizeof chunk);
            if (n < 0) {
                if (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK) {
                    continue;
                }
                eof_ = true;
                continue;
            }
            if (n == 0) {
                eof_ = true;
                continue;
            }
            buffer_.append(chunk, size_t(n));
        }
    }

  private:
    int fd_;
    size_t max_len_;
    double poll_ms_;
    std::string buffer_;
    size_t scanned_ = 0;
    bool eof_ = false;
    bool overflow_ = false;
};

} // namespace

SocketServer::SocketServer(LineService& service, const Options& options)
    : service_(service), options_(options)
{}

SocketServer::~SocketServer()
{
    stop();
    net::closeQuiet(listen_fd_);
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& conn : conns_) {
        conn->teardown();
        if (conn->reader.joinable()) conn->reader.join();
    }
    conns_.clear();
}

bool
SocketServer::start(std::string* error)
{
    listen_fd_ = net::tcpListen(options_.host, options_.port,
                                options_.backlog, &port_, error);
    return listen_fd_ >= 0;
}

void
SocketServer::serveConnection(const std::shared_ptr<Connection>& conn)
{
    ConnReader reader(conn->fd, options_.max_line, options_.poll_ms);
    std::string line;
    bool shutdown_requested = false;
    while (!stopping_.load()) {
        const ConnReader::Status status = reader.next(&line);
        if (status == ConnReader::Status::kIdle) continue;
        if (status == ConnReader::Status::kEof) break;
        if (status == ConnReader::Status::kOverflow) {
            conn->writeLine(service_.overflowError(options_.max_line));
            continue;
        }
        // Completion callbacks capture the connection shared_ptr: the
        // fd stays valid for a late write (job finishing after the
        // client left), and dies with the last in-flight job.
        if (!service_.handleLine(line, [conn](const std::string& out) {
                conn->writeLine(out);
            })) {
            shutdown_requested = true;
            break;
        }
    }
    conn->done.store(true);
    if (shutdown_requested) stop();
}

void
SocketServer::reapFinishedLocked()
{
    for (size_t i = 0; i < conns_.size();) {
        if (conns_[i]->done.load()) {
            if (conns_[i]->reader.joinable()) conns_[i]->reader.join();
            conns_.erase(conns_.begin() + long(i));
        } else {
            ++i;
        }
    }
}

void
SocketServer::run(const volatile std::sig_atomic_t* cancel)
{
    while (!stopping_.load() && (cancel == nullptr || *cancel == 0)) {
        const int fd = net::tcpAccept(listen_fd_, options_.poll_ms);
        if (fd == -1) { // poll tick: reap closed connections, re-check
            std::lock_guard<std::mutex> lock(conns_mutex_);
            reapFinishedLocked();
            continue;
        }
        if (fd == -2) break; // listener broken (or closed under us)
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        conn->write_timeout_ms = options_.write_timeout_ms;
        {
            std::lock_guard<std::mutex> lock(conns_mutex_);
            accepted_++;
            conn->reader =
                std::thread([this, conn] { serveConnection(conn); });
            conns_.push_back(conn);
            reapFinishedLocked();
        }
    }
    stopping_.store(true);

    // Tear every connection down (a blocked reader wakes with EOF) and
    // join. Scheduler callbacks may still hold connection refs; they
    // write into shut-down fds harmlessly.
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& conn : conns_) conn->teardown();
    for (const auto& conn : conns_) {
        if (conn->reader.joinable()) conn->reader.join();
    }
    conns_.clear();
}

void
SocketServer::stop()
{
    stopping_.store(true);
}

} // namespace serve
} // namespace qa
