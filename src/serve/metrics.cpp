#include "serve/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace qa
{
namespace serve
{

const std::vector<double>&
LatencyHistogram::bucketBounds()
{
    static const std::vector<double> bounds = {
        0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
        50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0};
    return bounds;
}

LatencyHistogram::LatencyHistogram()
    : counts_(bucketBounds().size() + 1, 0)
{}

void
LatencyHistogram::record(double ms)
{
    if (ms < 0.0) ms = 0.0;
    const auto& bounds = bucketBounds();
    const size_t bucket = size_t(
        std::upper_bound(bounds.begin(), bounds.end(), ms) - bounds.begin());
    std::lock_guard<std::mutex> lock(mutex_);
    ++counts_[bucket];
    ++total_;
    sum_ms_ += ms;
    max_ms_ = std::max(max_ms_, ms);
}

LatencyHistogramSnapshot
LatencyHistogram::snapshot() const
{
    LatencyHistogramSnapshot snap;
    snap.bounds = bucketBounds();
    std::lock_guard<std::mutex> lock(mutex_);
    snap.counts = counts_;
    snap.total = total_;
    snap.sum_ms = sum_ms_;
    snap.max_ms = max_ms_;
    return snap;
}

MetricsSnapshot
ServiceMetrics::snapshot() const
{
    MetricsSnapshot snap;
    snap.accepted = accepted.load(std::memory_order_relaxed);
    snap.rejected = rejected.load(std::memory_order_relaxed);
    snap.completed = completed.load(std::memory_order_relaxed);
    snap.failed = failed.load(std::memory_order_relaxed);
    snap.cancelled = cancelled.load(std::memory_order_relaxed);
    snap.retried = retried.load(std::memory_order_relaxed);
    snap.shed = shed.load(std::memory_order_relaxed);
    snap.worker_lost = worker_lost.load(std::memory_order_relaxed);
    snap.respawned = respawned.load(std::memory_order_relaxed);
    snap.backend_statevector =
        backend_statevector.load(std::memory_order_relaxed);
    snap.backend_density_matrix =
        backend_density_matrix.load(std::memory_order_relaxed);
    snap.backend_stabilizer =
        backend_stabilizer.load(std::memory_order_relaxed);
    snap.backend_mps = backend_mps.load(std::memory_order_relaxed);
    snap.queue_wait = queue_wait.snapshot();
    snap.execute = execute.snapshot();
    return snap;
}

namespace
{

void
renderHistogram(std::ostream& os, const char* name,
                const LatencyHistogramSnapshot& hist)
{
    os << "  " << name << ": n=" << hist.total << " mean="
       << std::fixed << std::setprecision(3) << hist.meanMs()
       << "ms max=" << hist.max_ms << "ms\n";
}

} // namespace

std::string
MetricsSnapshot::str() const
{
    std::ostringstream oss;
    oss << "service metrics:\n"
        << "  jobs: accepted=" << accepted << " rejected=" << rejected
        << " completed=" << completed << " failed=" << failed
        << " cancelled=" << cancelled << "\n"
        << "  resilience: retried=" << retried << " shed=" << shed
        << " worker_lost=" << worker_lost << " respawned=" << respawned
        << "\n"
        << "  queue: depth=" << queue_depth << " in_flight=" << in_flight
        << "\n"
        << "  cache: hits=" << cache_hits << " misses=" << cache_misses
        << " insertions=" << cache_insertions << " evictions="
        << cache_evictions << " entries=" << cache_entries
        << " hit_rate=" << std::fixed << std::setprecision(3)
        << cacheHitRate() << "\n"
        << "  backends: statevector=" << backend_statevector
        << " density_matrix=" << backend_density_matrix
        << " stabilizer=" << backend_stabilizer
        << " mps=" << backend_mps << "\n";
    renderHistogram(oss, "queue_wait", queue_wait);
    renderHistogram(oss, "execute", execute);
    return oss.str();
}

} // namespace serve
} // namespace qa
