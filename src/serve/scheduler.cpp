#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "sim/engine.hpp"

namespace qa
{
namespace serve
{

namespace
{

Clock::TimePoint
afterMs(Clock& clock, double ms)
{
    return clock.now() +
           std::chrono::duration_cast<Clock::TimePoint::duration>(
               std::chrono::duration<double, std::milli>(ms));
}

} // namespace

Scheduler::Scheduler(SchedulerOptions options)
    : options_(std::move(options)),
      clock_(resolveClock(options_.clock)),
      cache_(options_.cache_capacity),
      breaker_(options_.breaker, options_.clock),
      paused_(options_.start_paused)
{
    QA_REQUIRE(options_.queue_capacity > 0,
               "scheduler needs a positive queue capacity");
    QA_REQUIRE(options_.retry.max_attempts > 0,
               "scheduler needs a positive retry attempt budget");
    int workers = options_.workers;
    if (workers <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        workers = hw == 0 ? 1 : int(hw);
    }
    workers_ = workers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        slots_.resize(size_t(workers));
        for (size_t i = 0; i < slots_.size(); ++i) spawnSlotLocked(i);
    }
    if (options_.supervisor.stall_timeout_ms > 0.0) {
        watchdog_.start([this] { watchdogScan(); },
                        options_.supervisor.poll_interval_ms);
    }
}

Scheduler::~Scheduler() { stop(); }

void
Scheduler::submit(JobSpec spec, JobCallback done)
{
    QA_REQUIRE(done != nullptr, "submit needs a completion callback");
    if (!breaker_.tryAdmit()) {
        metrics_.shed.fetch_add(1, std::memory_order_relaxed);
        QA_FAIL_CODE(ErrorCode::kShedding,
                     "circuit breaker open; load shed at admission "
                     "(retry after the cooldown)");
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_) {
            metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
            QA_FAIL_CODE(ErrorCode::kServiceStopped,
                         "scheduler is stopped; job rejected");
        }
        if (queue_.size() >= options_.queue_capacity) {
            metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
            QA_FAIL_CODE(ErrorCode::kQueueFull,
                         "admission queue full (capacity " +
                             std::to_string(options_.queue_capacity) +
                             "); retry later or raise queue_capacity");
        }
        auto ticket = std::make_shared<Ticket>();
        ticket->priority = spec.priority;
        ticket->spec = std::move(spec);
        ticket->seq = next_seq_++;
        ticket->enqueued = clock_.now();
        ticket->done = std::move(done);
        pushQueueLocked(std::move(ticket));
        metrics_.accepted.fetch_add(1, std::memory_order_relaxed);
        ++unresolved_;
    }
    work_cv_.notify_one();
}

double
Scheduler::retryAfterMsHint(ErrorCode code) const
{
    if (code == ErrorCode::kShedding) return breaker_.retryAfterMs();
    if (code != ErrorCode::kQueueFull) return 0.0;
    const LatencyHistogramSnapshot exec = metrics_.execute.snapshot();
    // No completions observed yet: suggest a token backoff rather than
    // an invented latency.
    double hint = exec.total == 0 ? 10.0 : exec.meanMs() / double(workers_);
    if (hint < 1.0) hint = 1.0;
    if (hint > 10000.0) hint = 10000.0;
    return hint;
}

size_t
Scheduler::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size() + stash_.size();
}

size_t
Scheduler::inFlight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return in_flight_;
}

std::future<JobResult>
Scheduler::submit(JobSpec spec)
{
    auto promise = std::make_shared<std::promise<JobResult>>();
    std::future<JobResult> future = promise->get_future();
    submit(std::move(spec), [promise](JobResult result) {
        promise->set_value(std::move(result));
    });
    return future;
}

void
Scheduler::resume()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    work_cv_.notify_all();
}

void
Scheduler::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    QA_REQUIRE(!paused_, "drain on a paused scheduler would never finish");
    idle_cv_.wait(lock, [this] { return unresolved_ == 0 || stopped_; });
}

bool
Scheduler::drainFor(double timeout_ms)
{
    std::unique_lock<std::mutex> lock(mutex_);
    QA_REQUIRE(!paused_, "drain on a paused scheduler would never finish");
    const auto idle = [this] { return unresolved_ == 0 || stopped_; };
    if (timeout_ms <= 0.0) return idle();
    return idle_cv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(timeout_ms), idle);
}

void
Scheduler::stop()
{
    // The watchdog scan takes mutex_, so stop it before anything else
    // and never while holding the lock.
    watchdog_.stop();

    std::vector<TicketPtr> orphans;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_) return;
        stopped_ = true;
        for (TicketPtr& ticket : queue_) {
            orphans.push_back(std::move(ticket));
        }
        queue_.clear();
        for (StashEntry& entry : stash_) {
            orphans.push_back(std::move(entry.ticket));
        }
        stash_.clear();
    }
    work_cv_.notify_all();
    idle_cv_.notify_all();
    for (Slot& slot : slots_) {
        if (slot.thread.joinable()) slot.thread.join();
    }
    for (std::thread& zombie : zombies_) {
        if (zombie.joinable()) zombie.join();
    }
    zombies_.clear();

    for (TicketPtr& ticket : orphans) {
        JobResult result;
        result.status = JobStatus::kCancelled;
        result.error_code = ErrorCode::kServiceStopped;
        result.error_message = "scheduler stopped before the job ran";
        result.tag = ticket->spec.tag;
        result.queue_ms = clock_.elapsedMs(ticket->enqueued);
        resolveFinal(ticket, std::move(result));
    }
}

MetricsSnapshot
Scheduler::metrics() const
{
    MetricsSnapshot snap = metrics_.snapshot();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        snap.queue_depth = queue_.size() + stash_.size();
        snap.in_flight = in_flight_;
    }
    const CacheStats cache = cache_.stats();
    snap.cache_hits = cache.hits;
    snap.cache_misses = cache.misses;
    snap.cache_insertions = cache.insertions;
    snap.cache_evictions = cache.evictions;
    snap.cache_entries = cache.entries;
    return snap;
}

void
Scheduler::pushQueueLocked(TicketPtr ticket)
{
    queue_.push_back(std::move(ticket));
    std::push_heap(queue_.begin(), queue_.end(), TicketOrder{});
}

void
Scheduler::promoteDueRetriesLocked()
{
    if (stash_.empty()) return;
    const Clock::TimePoint now = clock_.now();
    size_t kept = 0;
    for (size_t i = 0; i < stash_.size(); ++i) {
        if (stash_[i].release <= now) {
            pushQueueLocked(std::move(stash_[i].ticket));
        } else {
            stash_[kept++] = std::move(stash_[i]);
        }
    }
    stash_.resize(kept);
}

void
Scheduler::spawnSlotLocked(size_t slot_index)
{
    Slot& slot = slots_[slot_index];
    ++slot.generation;
    slot.heartbeat =
        std::make_shared<resilience::Heartbeat>(options_.clock);
    slot.running.reset();
    slot.running_attempt = 0;
    const uint64_t generation = slot.generation;
    std::shared_ptr<resilience::Heartbeat> heartbeat = slot.heartbeat;
    slot.thread =
        std::thread([this, slot_index, generation, heartbeat]() mutable {
            workerLoop(slot_index, generation, std::move(heartbeat));
        });
}

void
Scheduler::workerLoop(size_t slot_index, uint64_t generation,
                      std::shared_ptr<resilience::Heartbeat> heartbeat)
{
    // The job pool is the outer parallelism: gate kernels invoked by a
    // job running with num_threads == 1 must stay serial on this thread
    // (jobs that opt into their own shot pool spawn fresh threads, which
    // do not inherit the scope).
    SerialKernelScope serial;
    for (;;) {
        TicketPtr ticket;
        int attempt = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            for (;;) {
                if (stopped_) return;
                if (slots_[slot_index].generation != generation) {
                    return; // replaced by the watchdog; exit quietly
                }
                promoteDueRetriesLocked();
                if (!paused_ && !queue_.empty()) break;
                if (!paused_ && !stash_.empty()) {
                    // A retry is waiting out its backoff; poll so it
                    // promotes promptly without a dedicated timer.
                    work_cv_.wait_for(lock, std::chrono::milliseconds(1));
                } else {
                    work_cv_.wait(lock);
                }
            }
            std::pop_heap(queue_.begin(), queue_.end(), TicketOrder{});
            ticket = std::move(queue_.back());
            queue_.pop_back();
            attempt = ticket->attempt;
            slots_[slot_index].running = ticket;
            slots_[slot_index].running_attempt = attempt;
            heartbeat->beginWork(ticket->seq);
            ++in_flight_;
        }
        JobResult result = runAttempt(*ticket, attempt);
        heartbeat->endWork();
        finishAttempt(slot_index, generation, ticket, attempt,
                      std::move(result));
    }
}

JobResult
Scheduler::runAttempt(const Ticket& ticket, int attempt)
{
    const double queue_ms = clock_.elapsedMs(ticket.enqueued);
    metrics_.queue_wait.record(queue_ms);
    breaker_.observeQueueWait(queue_ms);

    const bool cacheable =
        ticket.spec.use_cache && options_.cache_capacity > 0;
    const Hash128 key = cacheable ? jobKey(ticket.spec) : Hash128{};

    JobResult result;
    bool from_cache = false;
    const Clock::TimePoint exec_start = clock_.now();
    try {
        if (options_.exec_hook) options_.exec_hook(ticket.seq, attempt);
        if (cacheable) {
            if (std::optional<JobResult> hit = cache_.get(key)) {
                result = std::move(*hit);
                from_cache = true;
            }
        }
        if (!from_cache) {
            result = executeJob(ticket.spec);
            metrics_.recordBackend(result.backend.backend);
            if (cacheable) cache_.put(key, result);
        }
    } catch (const UserError& err) {
        result = JobResult{};
        result.status = JobStatus::kFailed;
        result.error_code = err.code();
        result.error_message = err.what();
    } catch (const std::exception& err) {
        result = JobResult{};
        result.status = JobStatus::kFailed;
        result.error_code = ErrorCode::kGeneric;
        result.error_message = err.what();
    }
    if (from_cache) {
        result.exec_ms = 0.0;
    } else {
        result.exec_ms = clock_.elapsedMs(exec_start);
        metrics_.execute.record(result.exec_ms);
    }
    result.cache_hit = from_cache;
    result.queue_ms = queue_ms;
    result.tag = ticket.spec.tag;
    return result;
}

void
Scheduler::finishAttempt(size_t slot_index, uint64_t generation,
                         const TicketPtr& ticket, int attempt,
                         JobResult result)
{
    bool final = false;
    bool stashed = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --in_flight_;
        Slot& slot = slots_[slot_index];
        if (slot.generation == generation) {
            slot.running.reset();
            slot.running_attempt = 0;
        }
        int expected = attempt;
        if (!ticket->claim.compare_exchange_strong(expected, attempt + 1)) {
            // The watchdog reclaimed this attempt while we were running:
            // the job is already retried or failed elsewhere, and this
            // late result must be dropped, not double-delivered.
            return;
        }
        if (result.status == JobStatus::kFailed && !stopped_) {
            const double spent = clock_.elapsedMs(ticket->enqueued);
            const resilience::RetryDecision decision =
                resilience::decideRetry(options_.retry, ticket->seq,
                                        attempt, result.error_code,
                                        ticket->spec.deadline_ms, spent);
            if (decision.retry) {
                ticket->attempt = attempt + 1;
                stash_.push_back(
                    {ticket, afterMs(clock_, decision.backoff_ms)});
                metrics_.retried.fetch_add(1, std::memory_order_relaxed);
                stashed = true;
            }
        }
        if (!stashed) final = true;
    }
    if (stashed) {
        // Wake a parked worker so it switches to the polling wait that
        // promotes the retry once its backoff elapses.
        work_cv_.notify_all();
        return;
    }
    if (final) resolveFinal(ticket, std::move(result));
}

void
Scheduler::resolveFinal(const TicketPtr& ticket, JobResult result)
{
    if (result.status == JobStatus::kOk) {
        metrics_.completed.fetch_add(1, std::memory_order_relaxed);
        breaker_.recordSuccess();
    } else if (result.status == JobStatus::kFailed) {
        metrics_.failed.fetch_add(1, std::memory_order_relaxed);
        breaker_.recordFailure();
    } else {
        metrics_.cancelled.fetch_add(1, std::memory_order_relaxed);
    }
    try {
        ticket->done(std::move(result));
    } catch (...) {
        // The job itself completed; a throwing callback must not kill
        // the worker (std::thread would terminate the process).
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --unresolved_;
    }
    idle_cv_.notify_all();
}

void
Scheduler::watchdogScan()
{
    std::vector<std::pair<TicketPtr, JobResult>> lost;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_) return;
        for (size_t i = 0; i < slots_.size(); ++i) {
            Slot& slot = slots_[i];
            if (!slot.heartbeat || !slot.heartbeat->busy()) continue;
            const double stale = slot.heartbeat->staleMs();
            if (stale <= options_.supervisor.stall_timeout_ms) continue;
            TicketPtr ticket = slot.running;
            if (!ticket) continue;
            const int attempt = slot.running_attempt;
            int expected = attempt;
            if (!ticket->claim.compare_exchange_strong(expected,
                                                       attempt + 1)) {
                continue; // the worker beat us to it; it is not wedged
            }
            metrics_.worker_lost.fetch_add(1, std::memory_order_relaxed);

            // The wedged thread keeps running to completion (its late
            // result loses the claim CAS and is dropped); a fresh worker
            // takes over the slot, and the zombie is joined at stop().
            zombies_.push_back(std::move(slot.thread));
            spawnSlotLocked(i);
            metrics_.respawned.fetch_add(1, std::memory_order_relaxed);

            const double spent = clock_.elapsedMs(ticket->enqueued);
            const resilience::RetryDecision decision =
                resilience::decideRetry(options_.retry, ticket->seq,
                                        attempt, ErrorCode::kWorkerLost,
                                        ticket->spec.deadline_ms, spent);
            if (decision.retry) {
                ticket->attempt = attempt + 1;
                stash_.push_back(
                    {ticket, afterMs(clock_, decision.backoff_ms)});
                metrics_.retried.fetch_add(1, std::memory_order_relaxed);
            } else {
                JobResult result;
                result.status = JobStatus::kFailed;
                result.error_code = ErrorCode::kWorkerLost;
                result.error_message =
                    "worker wedged for " + std::to_string(stale) +
                    "ms; job reclaimed with no retry budget left";
                result.tag = ticket->spec.tag;
                result.queue_ms = spent;
                lost.emplace_back(std::move(ticket), std::move(result));
            }
        }
    }
    work_cv_.notify_all();
    for (auto& [ticket, result] : lost) {
        resolveFinal(ticket, std::move(result));
    }
}

} // namespace serve
} // namespace qa
