#include "serve/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "sim/engine.hpp"

namespace qa
{
namespace serve
{

namespace
{

double
elapsedMs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

Scheduler::Scheduler(SchedulerOptions options)
    : options_(options),
      cache_(options.cache_capacity),
      paused_(options.start_paused)
{
    QA_REQUIRE(options_.queue_capacity > 0,
               "scheduler needs a positive queue capacity");
    int workers = options_.workers;
    if (workers <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        workers = hw == 0 ? 1 : int(hw);
    }
    pool_.reserve(size_t(workers));
    for (int w = 0; w < workers; ++w) {
        pool_.emplace_back([this] { workerLoop(); });
    }
}

Scheduler::~Scheduler() { stop(); }

void
Scheduler::submit(JobSpec spec, JobCallback done)
{
    QA_REQUIRE(done != nullptr, "submit needs a completion callback");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_) {
            metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
            QA_FAIL_CODE(ErrorCode::kServiceStopped,
                         "scheduler is stopped; job rejected");
        }
        if (queue_.size() >= options_.queue_capacity) {
            metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
            QA_FAIL_CODE(ErrorCode::kQueueFull,
                         "admission queue full (capacity " +
                             std::to_string(options_.queue_capacity) +
                             "); retry later or raise queue_capacity");
        }
        Job job;
        job.priority = spec.priority;
        job.spec = std::move(spec);
        job.seq = next_seq_++;
        job.enqueued = std::chrono::steady_clock::now();
        job.done = std::move(done);
        queue_.push_back(std::move(job));
        std::push_heap(queue_.begin(), queue_.end(), JobOrder{});
        metrics_.accepted.fetch_add(1, std::memory_order_relaxed);
    }
    work_cv_.notify_one();
}

std::future<JobResult>
Scheduler::submit(JobSpec spec)
{
    auto promise = std::make_shared<std::promise<JobResult>>();
    std::future<JobResult> future = promise->get_future();
    submit(std::move(spec), [promise](JobResult result) {
        promise->set_value(std::move(result));
    });
    return future;
}

void
Scheduler::resume()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    work_cv_.notify_all();
}

void
Scheduler::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    QA_REQUIRE(!paused_, "drain on a paused scheduler would never finish");
    idle_cv_.wait(lock, [this] {
        return (queue_.empty() && in_flight_ == 0) || stopped_;
    });
}

void
Scheduler::stop()
{
    std::vector<Job> orphans;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_) return;
        stopped_ = true;
        orphans.swap(queue_);
    }
    work_cv_.notify_all();
    idle_cv_.notify_all();
    for (std::thread& worker : pool_) worker.join();
    pool_.clear();

    for (Job& job : orphans) {
        JobResult result;
        result.status = JobStatus::kCancelled;
        result.error_code = ErrorCode::kServiceStopped;
        result.error_message = "scheduler stopped before the job ran";
        result.tag = job.spec.tag;
        result.queue_ms = elapsedMs(job.enqueued);
        metrics_.cancelled.fetch_add(1, std::memory_order_relaxed);
        try {
            job.done(std::move(result));
        } catch (...) {
            // A cancellation callback that throws has nowhere to report;
            // never let it tear down stop().
        }
    }
}

MetricsSnapshot
Scheduler::metrics() const
{
    MetricsSnapshot snap = metrics_.snapshot();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        snap.queue_depth = queue_.size();
        snap.in_flight = in_flight_;
    }
    const CacheStats cache = cache_.stats();
    snap.cache_hits = cache.hits;
    snap.cache_misses = cache.misses;
    snap.cache_entries = cache.entries;
    return snap;
}

void
Scheduler::workerLoop()
{
    // The job pool is the outer parallelism: gate kernels invoked by a
    // job running with num_threads == 1 must stay serial on this thread
    // (jobs that opt into their own shot pool spawn fresh threads, which
    // do not inherit the scope).
    SerialKernelScope serial;
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [this] {
                return stopped_ || (!paused_ && !queue_.empty());
            });
            if (stopped_) return;
            std::pop_heap(queue_.begin(), queue_.end(), JobOrder{});
            job = std::move(queue_.back());
            queue_.pop_back();
            ++in_flight_;
        }
        runJob(std::move(job));
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
        }
        idle_cv_.notify_all();
    }
}

void
Scheduler::runJob(Job job)
{
    const double queue_ms = elapsedMs(job.enqueued);
    metrics_.queue_wait.record(queue_ms);

    const bool cacheable =
        job.spec.use_cache && options_.cache_capacity > 0;
    const Hash128 key = cacheable ? jobKey(job.spec) : Hash128{};

    JobResult result;
    bool from_cache = false;
    if (cacheable) {
        if (std::optional<JobResult> hit = cache_.get(key)) {
            result = std::move(*hit);
            from_cache = true;
        }
    }

    if (!from_cache) {
        const auto exec_start = std::chrono::steady_clock::now();
        try {
            result = executeJob(job.spec);
        } catch (const UserError& err) {
            result = JobResult{};
            result.status = JobStatus::kFailed;
            result.error_code = err.code();
            result.error_message = err.what();
        } catch (const std::exception& err) {
            result = JobResult{};
            result.status = JobStatus::kFailed;
            result.error_code = ErrorCode::kGeneric;
            result.error_message = err.what();
        }
        result.exec_ms = elapsedMs(exec_start);
        metrics_.execute.record(result.exec_ms);
        if (cacheable) cache_.put(key, result);
    } else {
        result.exec_ms = 0.0;
    }

    result.cache_hit = from_cache;
    result.queue_ms = queue_ms;
    result.tag = job.spec.tag;
    if (result.status == JobStatus::kOk) {
        metrics_.completed.fetch_add(1, std::memory_order_relaxed);
    } else {
        metrics_.failed.fetch_add(1, std::memory_order_relaxed);
    }

    try {
        job.done(std::move(result));
    } catch (...) {
        // The job itself completed; a throwing callback must not kill
        // the worker (std::thread would terminate the process).
    }
}

} // namespace serve
} // namespace qa
