/**
 * @file
 * Journal replay as a library: re-execute every accepted request of a
 * crash-safe journal (resilience/journal.hpp) in admission order and
 * emit one timing-free response line each (wire.hpp encodeReplay).
 * Because executeJob is a pure function of the spec, the output is
 * byte-identical no matter when or where the journal was written —
 * including a journal cut short by SIGKILL. Journaled completion
 * records double as an integrity check: a recomputed payload hash that
 * disagrees with the journaled one fails the replay.
 *
 * Extracted from the qassertd main so the **cancellation contract** is
 * unit-testable without signals: replay used to run with default signal
 * dispositions, so a drain signal (SIGTERM during a supervised restart,
 * ^C on an operator console) killed the process mid-replay — possibly
 * mid-line on stdout. Now the daemon installs its drain handlers before
 * replaying and passes the signal flag as `ReplayOptions::cancel`; the
 * loop polls it between jobs and aborts *cleanly*: only complete lines
 * emitted, streams flushed, a typed kInterrupted report, and the
 * journal file untouched (replay only ever reads it).
 */
#ifndef QA_SERVE_REPLAY_HPP
#define QA_SERVE_REPLAY_HPP

#include <csignal>
#include <cstddef>
#include <iosfwd>
#include <string>

namespace qa
{
namespace serve
{

/** How a replay ended. */
enum class ReplayStatus
{
    kOk,          ///< All journaled payloads reproduced bit-identically.
    kInterrupted, ///< Cancelled between jobs; output is a clean prefix.
    kHashMismatch ///< At least one recomputed payload hash disagreed.
};

/** Replay knobs. */
struct ReplayOptions
{
    /**
     * Cooperative cancellation flag (a signal handler's sig_atomic_t),
     * polled between jobs; nullptr = not cancellable. Replay never
     * stops mid-job, so every emitted line is complete.
     */
    const volatile std::sig_atomic_t* cancel = nullptr;
};

/** What happened, for exit codes and tests. */
struct ReplayReport
{
    ReplayStatus status = ReplayStatus::kOk;
    size_t total = 0;      ///< Accepted records found in the journal.
    size_t executed = 0;   ///< Jobs actually re-executed.
    size_t mismatches = 0; ///< Payload-hash disagreements.
    bool torn_tail = false;
};

/**
 * Replay the journal at `path`, writing response lines to `out` and
 * human-readable progress/diagnostics to `diag` (stderr in the daemon).
 * Throws UserError when the journal cannot be opened or scanned.
 */
ReplayReport replayJournal(const std::string& path, std::ostream& out,
                           std::ostream& diag,
                           const ReplayOptions& options = {});

} // namespace serve
} // namespace qa

#endif // QA_SERVE_REPLAY_HPP
