/**
 * @file
 * Lightweight service observability: monotonic job counters and
 * fixed-bucket latency histograms for the queue-wait and execute stages,
 * snapshot on demand (ServiceMetrics::MetricsSnapshot via
 * Scheduler::metrics()).
 *
 * Counters are atomics (hot path: one relaxed increment); histograms
 * take a mutex per record, which is negligible next to the milliseconds
 * of shot execution each record represents.
 */
#ifndef QA_SERVE_METRICS_HPP
#define QA_SERVE_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include <mutex>

#include "sim/options.hpp"

namespace qa
{
namespace serve
{

/** Immutable copy of one latency histogram. */
struct LatencyHistogramSnapshot
{
    /**
     * counts[i] tallies samples in [bounds[i-1], bounds[i]) ms (the
     * first bucket from 0, the last unbounded). bounds has one fewer
     * entry than counts.
     */
    std::vector<double> bounds;
    std::vector<uint64_t> counts;
    uint64_t total = 0;
    double sum_ms = 0.0;
    double max_ms = 0.0;

    double
    meanMs() const
    {
        return total == 0 ? 0.0 : sum_ms / double(total);
    }
};

/** Fixed-bucket latency histogram (roughly log-spaced, 0.1ms .. 5s). */
class LatencyHistogram
{
  public:
    LatencyHistogram();

    void record(double ms);

    LatencyHistogramSnapshot snapshot() const;

    /** The shared bucket upper bounds in milliseconds. */
    static const std::vector<double>& bucketBounds();

  private:
    mutable std::mutex mutex_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
    double sum_ms_ = 0.0;
    double max_ms_ = 0.0;
};

/** Point-in-time view of the whole service (see Scheduler::metrics). */
struct MetricsSnapshot
{
    uint64_t accepted = 0;  ///< Jobs admitted into the queue.
    uint64_t rejected = 0;  ///< Jobs refused at admission (queue full).
    uint64_t completed = 0; ///< Jobs finished with status kOk.
    uint64_t failed = 0;    ///< Jobs finished with status kFailed.
    uint64_t cancelled = 0; ///< Jobs cancelled by stop().

    uint64_t retried = 0;     ///< Attempts re-queued after a transient failure.
    uint64_t shed = 0;        ///< Submissions refused by the circuit breaker.
    uint64_t worker_lost = 0; ///< Attempts reclaimed from a wedged/dead worker.
    uint64_t respawned = 0;   ///< Worker slots restarted by the watchdog.

    size_t queue_depth = 0; ///< Jobs waiting for a worker right now.
    size_t in_flight = 0;   ///< Jobs executing right now.

    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t cache_insertions = 0;
    uint64_t cache_evictions = 0;
    size_t cache_entries = 0;

    /** Executed (non-cache-hit) jobs per resolved simulation backend. */
    uint64_t backend_statevector = 0;
    uint64_t backend_density_matrix = 0;
    uint64_t backend_stabilizer = 0;
    uint64_t backend_mps = 0;

    LatencyHistogramSnapshot queue_wait;
    LatencyHistogramSnapshot execute;

    double
    cacheHitRate() const
    {
        const uint64_t lookups = cache_hits + cache_misses;
        return lookups == 0 ? 0.0 : double(cache_hits) / double(lookups);
    }

    /** Multi-line human-readable rendering (qassertd logs, benches). */
    std::string str() const;
};

/** The mutable counters behind a MetricsSnapshot. */
class ServiceMetrics
{
  public:
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> failed{0};
    std::atomic<uint64_t> cancelled{0};
    std::atomic<uint64_t> retried{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> worker_lost{0};
    std::atomic<uint64_t> respawned{0};

    /** Executed jobs per resolved backend (cache hits not counted). */
    std::atomic<uint64_t> backend_statevector{0};
    std::atomic<uint64_t> backend_density_matrix{0};
    std::atomic<uint64_t> backend_stabilizer{0};
    std::atomic<uint64_t> backend_mps{0};

    LatencyHistogram queue_wait;
    LatencyHistogram execute;

    /** Bump the per-backend executed-job counter. */
    void
    recordBackend(BackendKind kind)
    {
        switch (kind) {
          case BackendKind::kStatevector:
            backend_statevector.fetch_add(1, std::memory_order_relaxed);
            break;
          case BackendKind::kDensityMatrix:
            backend_density_matrix.fetch_add(1,
                                             std::memory_order_relaxed);
            break;
          case BackendKind::kStabilizer:
            backend_stabilizer.fetch_add(1, std::memory_order_relaxed);
            break;
          case BackendKind::kMps:
            backend_mps.fetch_add(1, std::memory_order_relaxed);
            break;
        }
    }

    /** Snapshot the counters; queue/cache fields are the caller's. */
    MetricsSnapshot snapshot() const;
};

} // namespace serve
} // namespace qa

#endif // QA_SERVE_METRICS_HPP
