#include "serve/cache.hpp"

namespace qa
{
namespace serve
{

std::optional<JobResult>
ResultCache::get(const Hash128& key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
}

bool
ResultCache::put(const Hash128& key, const JobResult& result)
{
    if (capacity_ == 0) return false;
    if (result.status != JobStatus::kOk || result.truncated) return false;

    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        // Deterministic execution means a re-computed value is
        // identical; refreshing recency is the only real effect.
        it->second->second = result;
        lru_.splice(lru_.begin(), lru_, it->second);
        return true;
    }
    if (lru_.size() >= capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
    }
    lru_.emplace_front(key, result);
    index_[key] = lru_.begin();
    ++insertions_;
    return true;
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CacheStats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.insertions = insertions_;
    stats.evictions = evictions_;
    stats.entries = lru_.size();
    stats.capacity = capacity_;
    return stats;
}

} // namespace serve
} // namespace qa
