#include "serve/job.hpp"

#include <algorithm>

#include "acomp/run.hpp"
#include "backend/backend.hpp"
#include "circuit/hash.hpp"
#include "common/error.hpp"
#include "sim/statevector.hpp"

namespace qa
{
namespace serve
{

namespace
{

/** True when every classical bit of every slot reads '0' in `bits`. */
bool
allSlotsPass(const std::string& bits,
             const std::vector<std::vector<int>>& slots)
{
    for (const std::vector<int>& slot : slots) {
        for (int c : slot) {
            if (bits[size_t(c)] != '0') return false;
        }
    }
    return true;
}

/** The SimOptions a spec executes (and routes) under. */
SimOptions
specOptions(const JobSpec& spec)
{
    SimOptions options;
    options.shots = spec.shots;
    options.seed = spec.seed;
    options.noise = spec.noise.enabled() ? &spec.noise : nullptr;
    options.num_threads = spec.num_threads;
    options.deadline_ms = spec.deadline_ms;
    options.backend = spec.backend;
    options.mps_chi = spec.mps_chi;
    options.mps_trunc_tol = spec.mps_trunc_tol;
    return options;
}

} // namespace

const char*
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::kOk:        return "ok";
      case JobStatus::kFailed:    return "failed";
      case JobStatus::kCancelled: return "cancelled";
    }
    return "unknown";
}

Hash128
jobKey(const JobSpec& spec)
{
    HashStream stream(0x6a6f62ULL); // domain tag: "job"
    if (spec.program != nullptr) {
        stream.u64(1); // program-path jobs never collide with plain ones
        absorbCircuit(stream, spec.program->circuit());
        const auto& slots = spec.program->slots();
        stream.u64(slots.size());
        for (const AssertedProgram::Slot& slot : slots) {
            stream.i64(int64_t(slot.design));
            stream.u64(slot.qubits.size());
            for (int q : slot.qubits) stream.i64(q);
            stream.u64(slot.clbits.size());
            for (int c : slot.clbits) stream.i64(c);
        }
        const auto& prog_clbits = spec.program->programClbits();
        stream.u64(prog_clbits.size());
        for (int c : prog_clbits) stream.i64(c);
        stream.i64(int64_t(spec.policy));
        stream.i64(spec.max_attempts);
    } else {
        stream.u64(0);
        absorbCircuit(stream, spec.circuit);
        stream.u64(spec.assert_clbits.size());
        for (const std::vector<int>& slot : spec.assert_clbits) {
            stream.u64(slot.size());
            for (int c : slot) stream.i64(c);
        }
        // The plain path only executes under kDiscard (anything else
        // fails, and failures are never cached), so the policy carries
        // no information here — except under auto_assert, where the
        // compiler path honors the full policy range and the lowering
        // request changes the instrumented circuit.
        stream.u64(spec.auto_assert ? 1 : 0);
        if (spec.auto_assert) {
            stream.i64(int64_t(spec.assert_lowering));
            stream.i64(int64_t(spec.policy));
            stream.i64(spec.max_attempts);
        }
    }
    const Hash128 noise = spec.noise.fingerprint();
    stream.u64(noise.hi);
    stream.u64(noise.lo);
    stream.i64(spec.shots);
    stream.u64(spec.seed);

    // The RESOLVED backend: different backends agree only in
    // distribution, so their histograms must never share a cache entry.
    // routeShots is a pure function of fields absorbed above and never
    // throws, so auto-routed jobs add no key entropy and jobKey stays
    // exception-free (the scheduler calls it outside its try block).
    const backend::BackendChoice choice = backend::routeShots(
        spec.program != nullptr ? spec.program->circuit() : spec.circuit,
        specOptions(spec));
    stream.i64(int64_t(choice.backend));
    // The chi cap changes MPS histograms bit-wise but is inert on the
    // exact backends, so it only gains key entropy when MPS resolved.
    if (choice.backend == BackendKind::kMps) stream.i64(spec.mps_chi);
    return stream.digest();
}

JobResult
executeJob(const JobSpec& spec)
{
    const SimOptions options = specOptions(spec);

    JobResult result;
    result.tag = spec.tag;

    if (spec.program != nullptr) {
        QA_REQUIRE_CODE(!spec.auto_assert, ErrorCode::kBadRequest,
                        "auto_assert conflicts with an explicit "
                        "AssertedProgram (the program already carries "
                        "its assertions)");
        PolicyOptions popts;
        popts.policy = spec.policy;
        popts.max_attempts = spec.max_attempts;
        const PolicyOutcome outcome =
            runAssertedPolicy(*spec.program, options, popts);
        result.counts = outcome.raw;
        result.program_counts = outcome.program_counts;
        result.slot_error_rate = outcome.slot_error_rate;
        result.pass_rate = outcome.pass_rate;
        result.truncated = outcome.truncated;
        result.backend = outcome.backend;
        result.mps_truncation_error = outcome.mps_truncation_error;
        return result;
    }

    if (spec.auto_assert) {
        QA_REQUIRE_CODE(spec.assert_clbits.empty(), ErrorCode::kBadRequest,
                        "auto_assert conflicts with explicit "
                        "assert_clbits slots (the compiler allocates "
                        "its own slot clbits)");
        acomp::AcompOptions aopts;
        aopts.lowering = spec.assert_lowering;
        aopts.backend = spec.backend;
        const acomp::CompiledProgram compiled = acomp::autoAssert(
            spec.circuit, aopts,
            spec.qasm_positions.empty() ? nullptr
                                        : &spec.qasm_positions);
        PolicyOptions popts;
        popts.policy = spec.policy;
        popts.max_attempts = spec.max_attempts;
        const PolicyOutcome outcome =
            acomp::runLowered(compiled, options, popts);
        result.counts = outcome.raw;
        result.program_counts = outcome.program_counts;
        result.slot_error_rate = outcome.slot_error_rate;
        result.pass_rate = outcome.pass_rate;
        result.truncated = outcome.truncated;
        result.backend = outcome.backend;
        result.mps_truncation_error = outcome.mps_truncation_error;
        result.assertions = compiled.slots;
        result.assert_variants = int(compiled.variants.size());
        return result;
    }

    const auto& slots = spec.assert_clbits;
    if (!slots.empty()) {
        QA_REQUIRE_CODE(spec.policy == AssertionPolicy::kDiscard,
                        ErrorCode::kPolicyUnsupported,
                        std::string("plain-circuit jobs only support the "
                                    "discard policy, got ") +
                            policyName(spec.policy) +
                            " (submit an AssertedProgram for the rest)");
        for (const std::vector<int>& slot : slots) {
            QA_REQUIRE_CODE(!slot.empty(), ErrorCode::kBadRequest,
                            "assertion slot lists no classical bits");
            for (int c : slot) {
                QA_REQUIRE_CODE(
                    c >= 0 && c < spec.circuit.numClbits(),
                    ErrorCode::kBadRequest,
                    "assertion clbit " + std::to_string(c) +
                        " out of range for " +
                        std::to_string(spec.circuit.numClbits()) +
                        " classical bits");
            }
        }
    }

    // Route explicitly (instead of through qa::runShots) so the job
    // result records the decision; throws kBadRequest when an explicit
    // backend request cannot run the circuit.
    const backend::RoutedRun routed =
        backend::prepareRun(spec.circuit, options);
    result.backend = routed.choice;
    result.mps_truncation_error = routed.prepared->truncationError();
    const Counts raw = backend::runPrepared(*routed.prepared, options);
    result.counts = raw;
    result.truncated = raw.truncated;

    if (slots.empty()) {
        result.program_counts = raw;
        return result;
    }

    result.slot_error_rate.reserve(slots.size());
    for (const std::vector<int>& slot : slots) {
        result.slot_error_rate.push_back(1.0 - raw.fractionAllZero(slot));
    }
    result.pass_rate =
        raw.fraction([&](const std::string& bits) {
            return allSlotsPass(bits, slots);
        });

    // Program bits = every classical bit not owned by a slot, ascending.
    std::vector<bool> is_assert(size_t(spec.circuit.numClbits()), false);
    for (const std::vector<int>& slot : slots) {
        for (int c : slot) is_assert[size_t(c)] = true;
    }
    std::vector<int> program_bits;
    for (int c = 0; c < spec.circuit.numClbits(); ++c) {
        if (!is_assert[size_t(c)]) program_bits.push_back(c);
    }

    result.program_counts = marginalCounts(
        filterCounts(raw,
                     [&](const std::string& bits) {
                         return allSlotsPass(bits, slots);
                     }),
        program_bits);
    return result;
}

namespace
{

void
absorbCounts(HashStream& stream, const Counts& counts)
{
    stream.i64(counts.shots);
    stream.u64(counts.truncated ? 1 : 0);
    stream.u64(counts.map.size());
    for (const auto& [bits, n] : counts.map) { // std::map: sorted order
        stream.str(bits);
        stream.i64(n);
    }
}

} // namespace

Hash128
payloadHash(const JobResult& result)
{
    HashStream stream(0x7061796cULL); // domain tag: "payl"
    stream.i64(int64_t(result.status));
    if (result.status != JobStatus::kOk) {
        stream.i64(int64_t(result.error_code));
        return stream.digest();
    }
    absorbCounts(stream, result.counts);
    absorbCounts(stream, result.program_counts);
    stream.u64(result.slot_error_rate.size());
    for (double rate : result.slot_error_rate) stream.f64(rate);
    stream.f64(result.pass_rate);
    stream.u64(result.truncated ? 1 : 0);
    stream.f64(result.mps_truncation_error);
    stream.u64(result.assertions.size());
    for (const acomp::SlotSummary& slot : result.assertions) {
        stream.i64(int64_t(slot.form));
        stream.i64(int64_t(slot.invariant));
        stream.u64(slot.position);
        stream.u64(slot.clbits.size());
        for (int c : slot.clbits) stream.i64(c);
    }
    stream.i64(result.assert_variants);
    return stream.digest();
}

} // namespace serve
} // namespace qa
