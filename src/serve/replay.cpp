#include "serve/replay.hpp"

#include <ostream>

#include "common/error.hpp"
#include "resilience/journal.hpp"
#include "serve/job.hpp"
#include "serve/wire.hpp"

namespace qa
{
namespace serve
{

ReplayReport
replayJournal(const std::string& path, std::ostream& out,
              std::ostream& diag, const ReplayOptions& options)
{
    const resilience::JournalScan scan = resilience::scanJournal(path);
    ReplayReport report;
    report.total = scan.accepted.size();
    report.torn_tail = scan.torn_tail;
    if (scan.torn_tail) {
        diag << "replay: journal has a torn final record (crash "
                "mid-append); dropped\n";
    }
    diag << "replay: " << scan.accepted.size() << " accepted job(s), "
         << scan.completed.size() << " completion record(s)\n";

    for (const resilience::JournalEntry& entry : scan.accepted) {
        if (options.cancel != nullptr && *options.cancel != 0) {
            report.status = ReplayStatus::kInterrupted;
            out.flush();
            diag << "replay: cancelled after " << report.executed << "/"
                 << report.total
                 << " job(s); output is a clean prefix, journal "
                    "untouched\n";
            return report;
        }

        std::string id;
        JobResult result;
        try {
            const JsonValue parsed = JsonValue::parse(entry.request);
            id = requestId(parsed);
            WireRequest request = buildRequest(parsed);
            result = executeJob(request.spec);
        } catch (const UserError& err) {
            result = JobResult{};
            result.status = JobStatus::kFailed;
            result.error_code = err.code();
            result.error_message = err.what();
        } catch (const std::exception& err) {
            result = JobResult{};
            result.status = JobStatus::kFailed;
            result.error_code = ErrorCode::kGeneric;
            result.error_message = err.what();
        }
        out << encodeReplay(id, result) << "\n";
        report.executed++;

        const auto completed = scan.completed.find(entry.seq);
        if (completed == scan.completed.end()) continue;
        if (completed->second.status != "ok" &&
            completed->second.status != "failed") {
            continue; // rejected/cancelled records carry no payload hash
        }
        const std::string recomputed = payloadHash(result).str();
        if (recomputed != completed->second.hash) {
            diag << "replay: seq " << entry.seq
                 << " payload hash mismatch (journal "
                 << completed->second.hash << ", replay " << recomputed
                 << ")\n";
            report.mismatches++;
        }
    }
    out.flush();
    if (report.mismatches > 0) {
        report.status = ReplayStatus::kHashMismatch;
        diag << "replay: NOT bit-identical (" << report.mismatches
             << " mismatching payload(s))\n";
    } else {
        diag << "replay: done; all journaled payloads reproduced "
                "bit-identically\n";
    }
    return report;
}

} // namespace serve
} // namespace qa
