/**
 * @file
 * qassertd's remote front-end: the shared per-line request service and
 * the TCP accept loop behind `qassertd --listen`.
 *
 * The wire protocol is byte-identical to the stdin/stdout path
 * (serve/wire.hpp) — a connection is just another NDJSON stream — so
 * everything the pipe fleet relies on (immediate queue_full/shedding
 * refusals with retry_after_ms, pings answered on the read loop,
 * write-ahead journaling) behaves the same over a socket. That is what
 * lets the fleet router treat "child on a pipe" and "daemon on a port"
 * as two transports of the same shard (fleet/transport.hpp).
 *
 * Structure:
 *  - **LineService** — one request line in, zero-or-more response lines
 *    out through a caller-supplied emit. Owns the journal sequence (one
 *    write-ahead stream across every connection) and the scheduler
 *    hand-off; used by both the stdin loop and every socket connection,
 *    so the two front-ends cannot drift.
 *  - **SocketServer** — bind/listen/accept with one reader thread per
 *    connection and a per-connection locked writer. The writer is held
 *    by shared_ptr from scheduler completion callbacks, so a connection
 *    that dies mid-job leaves the late result writing into a dead (but
 *    still valid) fd — never a reused descriptor.
 *
 * Shutdown: {"op":"shutdown"} on *any* connection — or the process
 * drain signals — stops the accept loop, tears every connection down,
 * and returns from run(); the caller then drains the scheduler exactly
 * as the stdin path does. EOF on one connection only ends that
 * connection: remote routers come and go, the daemon stays.
 */
#ifndef QA_SERVE_LISTEN_HPP
#define QA_SERVE_LISTEN_HPP

#include <atomic>
#include <csignal>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "resilience/journal.hpp"
#include "serve/scheduler.hpp"

namespace qa
{
namespace serve
{

/** One request line -> response lines, shared by stdin and sockets. */
class LineService
{
  public:
    struct Options
    {
        /** Default auto_assert for requests that omit the field. */
        bool auto_assert = false;
    };

    /** Sink for one response line (no trailing newline). Must be safe
     * to call from scheduler worker threads. */
    using Emit = std::function<void(const std::string&)>;

    /** `journal` may be nullptr (no write-ahead). Not owned. */
    LineService(Scheduler& scheduler, resilience::Journal* journal,
                const Options& options);

    /**
     * Handle one NDJSON request line. Responses go through `emit` —
     * synchronously for protocol ops and rejections, later from a
     * worker thread for admitted runs (emit is copied into the
     * completion callback). Returns false when the line was a shutdown
     * request; every other outcome returns true.
     */
    bool handleLine(const std::string& line, const Emit& emit);

    /** The oversize-line rejection (callers consume the line first). */
    std::string overflowError(size_t max_line) const;

  private:
    Scheduler& scheduler_;
    resilience::Journal* journal_;
    Options options_;
    std::mutex journal_mutex_; ///< seq mint + write-ahead are atomic.
    uint64_t journal_seq_ = 0;
};

/** TCP accept loop serving LineService to any number of connections. */
class SocketServer
{
  public:
    struct Options
    {
        std::string host = "127.0.0.1";
        int port = 0; ///< 0 = ephemeral (read back via port()).
        size_t max_line = size_t(1) << 20;
        int backlog = 16;

        /** Accept/read poll cadence (drain-signal responsiveness). */
        double poll_ms = 200.0;

        /** Bound on one response write to a non-draining client. */
        double write_timeout_ms = 10000.0;
    };

    SocketServer(LineService& service, const Options& options);

    /** stop()s and joins; never blocks on a live client. */
    ~SocketServer();

    SocketServer(const SocketServer&) = delete;
    SocketServer& operator=(const SocketServer&) = delete;

    /** Bind + listen. False (with *error) on failure. */
    bool start(std::string* error);

    /** Actually bound port (after start; ephemeral ports resolved). */
    int port() const { return port_; }

    /**
     * Accept and serve until a shutdown request arrives on some
     * connection, `*cancel` goes non-zero (drain signal), or stop() is
     * called. Joins every connection thread before returning.
     */
    void run(const volatile std::sig_atomic_t* cancel);

    /** Make run() return (callable from any thread). Idempotent. */
    void stop();

    /** Connections accepted over the server's lifetime. */
    uint64_t accepted() const { return accepted_; }

  private:
    struct Connection;

    void serveConnection(const std::shared_ptr<Connection>& conn);
    void reapFinishedLocked();

    LineService& service_;
    Options options_;
    int listen_fd_ = -1;
    int port_ = 0;
    std::atomic<bool> stopping_{false};
    uint64_t accepted_ = 0;

    std::mutex conns_mutex_;
    std::vector<std::shared_ptr<Connection>> conns_;
};

} // namespace serve
} // namespace qa

#endif // QA_SERVE_LISTEN_HPP
