/**
 * @file
 * qassertd wire protocol: newline-delimited JSON requests/responses.
 *
 * Request (one JSON object per line):
 *   {"op": "run",                     // default; also "explain",
 *                                     // "metrics","shutdown"
 *    "id": "job-1",                   // echoed back; optional
 *    "qasm": "OPENQASM 2.0; ...",     // circuit, toQasm-compatible subset
 *    "shots": 1024, "seed": 7,        // optional, defaults as JobSpec
 *    "deadline_ms": 0, "priority": 0,
 *    "threads": 1, "cache": true,
 *    "backend": "auto",               // or statevector|density_matrix|
 *                                     // stabilizer (explicit override)
 *    "assert_clbits": [[0],[1,2]],    // assertion slots (|0..0> = pass)
 *    "auto_assert": true,             // raw circuit: generate + lower
 *                                     // assertions (assertion compiler)
 *    "assert_lowering": "auto",       // or swap|or|ndd|pauli|
 *                                     // pauli_sample (auto_assert only)
 *    "noise": {"kind": "melbourne"}}  // or "none" (default) or
 *                                     // {"kind":"depolarizing",
 *                                     //  "p1":1e-3,"p2":1e-2}
 *
 * Response (one line per request, tagged with the request id):
 *   {"id":"job-1","status":"ok","cache_hit":false,"backend":"stabilizer",
 *    "shots":1024,"truncated":false,"pass_rate":0.98,
 *    "slot_error_rate":[0.02],
 *    "counts":{"00":519,...},"program_counts":{"0":519,...},
 *    "queue_ms":0.1,"exec_ms":3.2}
 *   {"id":"job-2","status":"error","code":"queue_full","message":"..."}
 *
 * auto_assert results additionally carry the compiled lowering report:
 *   "auto_assert":{"generated":2,"variants":1,"slots":[
 *     {"form":"pauli","invariant":"entangled","position":5,
 *      "qubits":[0,1,2],"clbits":[0,1,2],"ancillas":0,"gates":14,
 *      "cx":4,"sub_circuits":1,"generators":3,
 *      "source":{"line":7,"col":1}},...]}
 *
 * An "explain" request takes the same fields as "run" but classifies
 * and routes without executing:
 *   {"id":"e1","status":"ok","class":"clifford","backend":"stabilizer",
 *    "capable":true,"non_clifford_gates":0,"reason":"..."}
 * Under auto_assert the explain response routes the instrumented
 * variant-0 circuit and appends the same "auto_assert" block.
 *
 * Responses are emitted in completion order (the id is the correlation
 * key), which is what lets a single connection keep the whole worker
 * pool busy.
 */
#ifndef QA_SERVE_WIRE_HPP
#define QA_SERVE_WIRE_HPP

#include <iosfwd>
#include <string>

#include "serve/job.hpp"
#include "serve/json.hpp"
#include "serve/metrics.hpp"

namespace qa
{
namespace serve
{

/** Request kinds qassertd understands. */
enum class RequestOp
{
    kRun,     ///< Submit a job.
    kExplain, ///< Classify + route the job without executing it.
    kMetrics, ///< Return a ServiceMetrics snapshot.
    kPing,    ///< Lightweight liveness probe (answered on the read loop).
    kShutdown ///< Drain and exit.
};

/** One decoded request line. */
struct WireRequest
{
    RequestOp op = RequestOp::kRun;
    std::string id;
    JobSpec spec; // populated for kRun
};

/**
 * Best-effort id extraction from an already-parsed request object, so
 * error responses stay correlated even when the rest of the request is
 * malformed. Returns "" when absent.
 */
std::string requestId(const JsonValue& request);

/**
 * Decode a parsed request object. Throws UserError with
 * ErrorCode::kBadRequest (protocol errors) or kQasmSyntax (bad circuit
 * text) — the caller turns those into error responses.
 */
WireRequest buildRequest(const JsonValue& request);

/** Parse + decode one NDJSON line (convenience used by tests). */
WireRequest parseRequest(const std::string& line);

/** Encode a completed job as one response line (no trailing newline). */
std::string encodeResult(const std::string& id, const JobResult& result);

/**
 * Deterministic-payload encoding: encodeResult minus everything that
 * varies run to run (queue_ms/exec_ms timing, cache_hit). Two
 * executions of the same JobSpec produce byte-identical encodeReplay
 * lines — this is what `qassertd --replay` emits and what the
 * kill-and-replay smoke test diffs.
 */
std::string encodeReplay(const std::string& id, const JobResult& result);

/**
 * Encode a failure as one response line (no trailing newline). A
 * positive `retry_after_ms` adds a `"retry_after_ms"` field — the
 * server's own estimate of when a resubmission could succeed, derived
 * from breaker/backoff state. qassertd attaches it to kQueueFull and
 * kShedding rejections so qa_router and well-behaved clients back off
 * instead of hammering a saturated shard.
 */
std::string encodeError(const std::string& id, ErrorCode code,
                        const std::string& message,
                        double retry_after_ms = 0.0);

/**
 * Encode a ping response: `{"id":...,"status":"ok","pong":true,
 * "queue_depth":N,"in_flight":N}`. Cheap enough for the fleet router's
 * health prober to issue every probe interval against every shard.
 */
std::string encodePing(const std::string& id, size_t queue_depth,
                       size_t in_flight);

/**
 * Best-effort extraction of the id of an encoded *response* line
 * without a full JSON parse: every encoder in this file emits
 * `{"id":"..."` first, and router-internal ids never contain escapes.
 * Returns false (and falls back on the caller doing a full parse) when
 * the line does not start that way or the id contains a backslash.
 */
bool peekResponseId(const std::string& line, std::string* id);

/**
 * Encode an "explain" routing decision as one response line. When
 * `compiled` is non-null (auto_assert explains) the line additionally
 * carries the assertion compiler's per-slot lowering report.
 */
std::string encodeExplain(const std::string& id,
                          const backend::BackendChoice& choice,
                          const acomp::CompiledProgram* compiled = nullptr);

/** Encode a metrics snapshot as one response line. */
std::string encodeMetrics(const MetricsSnapshot& snapshot);

/** Outcome of one bounded NDJSON line read. */
enum class ReadLineStatus
{
    kOk,      ///< One complete line (newline stripped) in `out`.
    kEof,     ///< Stream ended (or failed, e.g. EINTR) before any byte.
    kOverflow ///< Line exceeded the bound; rest of the line consumed.
};

/**
 * Read one newline-terminated line of at most `max_len` bytes
 * (excluding the newline). An over-long line is consumed to its
 * terminator — so the stream stays line-synchronised — and reported as
 * kOverflow; the caller responds with a typed kBadRequest instead of
 * buffering an unbounded request.
 */
ReadLineStatus readLineBounded(std::istream& in, std::string* out,
                               size_t max_len);

} // namespace serve
} // namespace qa

#endif // QA_SERVE_WIRE_HPP
